module ironsafe

go 1.22
