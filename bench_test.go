// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (E1-E11 in DESIGN.md) plus the ablation benches for the design
// choices DESIGN.md calls out. Simulated latencies (the figures' y-axes) are
// reported as custom metrics alongside wall time; run with
//
//	go test -bench=. -benchmem
//
// and see cmd/ironsafe-bench for the full parameter sweeps.
package ironsafe_test

import (
	"fmt"
	"testing"

	"ironsafe"
	"ironsafe/internal/bench"
	"ironsafe/internal/pager"
	"ironsafe/internal/securestore"
	"ironsafe/internal/simtime"
	"ironsafe/internal/tee/trustzone"
	"ironsafe/internal/tpch"
)

// benchSF keeps the in-tree benchmarks quick; cmd/ironsafe-bench runs the
// full-size sweeps.
const benchSF = 0.002

var benchData = tpch.Generate(benchSF)

// benchCluster builds a loaded cluster for one mode.
func benchCluster(b *testing.B, mode ironsafe.Mode, tweak func(*ironsafe.Config)) *ironsafe.Cluster {
	b.Helper()
	cfg := ironsafe.Config{Mode: mode}
	if tweak != nil {
		tweak(&cfg)
	}
	c, err := ironsafe.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.LoadTPCHData(benchData); err != nil {
		b.Fatal(err)
	}
	if err := c.SetAccessPolicy("read :- sessionKeyIs(bench)"); err != nil {
		b.Fatal(err)
	}
	return c
}

// runQueryBench loops one query on a cluster, reporting the simulated
// latency the figures plot.
func runQueryBench(b *testing.B, c *ironsafe.Cluster, sql string) {
	b.Helper()
	var sim int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qr, err := c.NewSession("bench").Query(sql)
		if err != nil {
			b.Fatal(err)
		}
		sim += int64(qr.Stats.Cost.Total())
	}
	b.ReportMetric(float64(sim)/float64(b.N)/1e6, "simulated-ms/op")
}

// BenchmarkFig6 (E1): per-query latency in each Table 2 configuration; the
// figure's speedups are the hons/vcs and hos/scs ratios of these series.
func BenchmarkFig6(b *testing.B) {
	queries := []int{1, 3, 6, 12, 14, 19, 21}
	for _, mode := range []ironsafe.Mode{ironsafe.HostOnlyNonSecure, ironsafe.VanillaCS, ironsafe.HostOnlySecure, ironsafe.IronSafe} {
		c := benchCluster(b, mode, nil)
		for _, qn := range queries {
			b.Run(fmt.Sprintf("%s/q%d", mode, qn), func(b *testing.B) {
				runQueryBench(b, c, tpch.Queries[qn])
			})
		}
	}
}

// BenchmarkFig7 (E2): data movement of the split execution; the figure's
// reduction is host-only pages over these shipped bytes.
func BenchmarkFig7(b *testing.B) {
	c := benchCluster(b, ironsafe.IronSafe, nil)
	for _, qn := range []int{3, 6, 14, 19} {
		b.Run(fmt.Sprintf("q%d", qn), func(b *testing.B) {
			var shipped int64
			for i := 0; i < b.N; i++ {
				qr, err := c.NewSession("bench").Query(tpch.Queries[qn])
				if err != nil {
					b.Fatal(err)
				}
				shipped += qr.Stats.BytesShipped
			}
			b.ReportMetric(float64(shipped)/float64(b.N), "bytes-shipped/op")
		})
	}
}

// BenchmarkFig8 (E3): the scs security components the figure's stacked bars
// break down — freshness hashes and page decryptions per query.
func BenchmarkFig8(b *testing.B) {
	c := benchCluster(b, ironsafe.IronSafe, nil)
	for _, qn := range []int{1, 6} {
		b.Run(fmt.Sprintf("q%d", qn), func(b *testing.B) {
			var hashes, decrypts int64
			for i := 0; i < b.N; i++ {
				qr, err := c.NewSession("bench").Query(tpch.Queries[qn])
				if err != nil {
					b.Fatal(err)
				}
				hashes += qr.Stats.Storage.MerkleHashes
				decrypts += qr.Stats.Storage.PagesDecrypted
			}
			b.ReportMetric(float64(hashes)/float64(b.N), "merkle-hashes/op")
			b.ReportMetric(float64(decrypts)/float64(b.N), "decrypts/op")
		})
	}
}

// BenchmarkFig9a (E4): q1 per configuration (input-size axis swept by
// ironsafe-bench -exp fig9a).
func BenchmarkFig9a(b *testing.B) {
	for _, mode := range []ironsafe.Mode{ironsafe.HostOnlySecure, ironsafe.IronSafe, ironsafe.StorageOnlySecure} {
		c := benchCluster(b, mode, func(cfg *ironsafe.Config) {
			if mode == ironsafe.HostOnlySecure {
				cfg.EPCLimitBytes = 4 << 20
			}
		})
		b.Run(mode.String(), func(b *testing.B) {
			runQueryBench(b, c, tpch.Queries[1])
		})
	}
}

// BenchmarkFig9b (E5): the selectivity-tweaked q1 at 10% and 20%.
func BenchmarkFig9b(b *testing.B) {
	c := benchCluster(b, ironsafe.IronSafe, nil)
	for _, pct := range []int{10, 20} {
		q := fmt.Sprintf(`select l_returnflag, count(*) from lineitem
			where l_quantity <= %d group by l_returnflag`, pct/2)
		b.Run(fmt.Sprintf("sel%d", pct), func(b *testing.B) {
			runQueryBench(b, c, q)
		})
	}
}

// BenchmarkFig9c (E6): queries run entirely on the secure storage node.
func BenchmarkFig9c(b *testing.B) {
	c := benchCluster(b, ironsafe.StorageOnlySecure, nil)
	for _, qn := range []int{2, 9} {
		b.Run(fmt.Sprintf("q%d", qn), func(b *testing.B) {
			runQueryBench(b, c, tpch.Queries[qn])
		})
	}
}

// BenchmarkFig10 (E7): scs with varying storage core counts.
func BenchmarkFig10(b *testing.B) {
	for _, cores := range []int{1, 4, 16} {
		c := benchCluster(b, ironsafe.IronSafe, func(cfg *ironsafe.Config) {
			cfg.StorageCores = cores
		})
		b.Run(fmt.Sprintf("cores%d", cores), func(b *testing.B) {
			runQueryBench(b, c, tpch.Queries[6])
		})
	}
}

// BenchmarkFig11 (E8): scs with varying storage memory budgets.
func BenchmarkFig11(b *testing.B) {
	for _, budget := range []int64{8 << 10, 128 << 10} {
		c := benchCluster(b, ironsafe.IronSafe, func(cfg *ironsafe.Config) {
			cfg.StorageMemoryBudget = budget
		})
		b.Run(fmt.Sprintf("budget%dKiB", budget>>10), func(b *testing.B) {
			runQueryBench(b, c, tpch.Queries[3])
		})
	}
}

// BenchmarkFig12 (E9): offload throughput with multiple storage instances.
func BenchmarkFig12(b *testing.B) {
	for _, n := range []int{1, 4} {
		c := benchCluster(b, ironsafe.IronSafe, func(cfg *ironsafe.Config) {
			cfg.StorageNodes = n
		})
		b.Run(fmt.Sprintf("instances%d", n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done := make(chan error, n)
				for j := 0; j < n; j++ {
					srv := c.Storage[j]
					go func() {
						_, err := srv.ExecOffload("SELECT l_orderkey FROM lineitem WHERE l_quantity < 10")
						done <- err
					}()
				}
				for j := 0; j < n; j++ {
					if err := <-done; err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkTable3 (E10): the GDPR anti-pattern paths, enforced vs not.
func BenchmarkTable3(b *testing.B) {
	enforced := benchCluster(b, ironsafe.IronSafe, nil)
	if _, err := enforced.Exec("CREATE TABLE pii (id INTEGER, name VARCHAR(16), expiry DATE)"); err != nil {
		b.Fatal(err)
	}
	if _, err := enforced.Exec("INSERT INTO pii VALUES (1, 'a', '1999-01-01'), (2, 'b', '1994-01-01')"); err != nil {
		b.Fatal(err)
	}
	if err := enforced.SetAccessPolicy("read :- sessionKeyIs(bench) & le(T, expiry)"); err != nil {
		b.Fatal(err)
	}
	b.Run("timely-deletion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := enforced.NewSession("bench").WithAccessDate("1995-06-17").Query("SELECT name FROM pii"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable4 (E11): the storage attestation protocol (challenge, TA
// signing, certificate chain).
func BenchmarkTable4(b *testing.B) {
	c := benchCluster(b, ironsafe.IronSafe, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Storage[0].Attest([]byte("bench-challenge")); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md design choices) ---

// secureStoreForBench builds a loaded secure store with options.
func secureStoreForBench(b *testing.B, opts securestore.Options) (*securestore.Store, *simtime.Meter) {
	b.Helper()
	vendor, err := trustzone.NewVendor("bench")
	if err != nil {
		b.Fatal(err)
	}
	dev, err := trustzone.NewDevice("bench-dev", vendor)
	if err != nil {
		b.Fatal(err)
	}
	atf := vendor.SignImage("atf", "1", []byte("atf"))
	tos := vendor.SignImage("optee", "1", []byte("tos"))
	var m simtime.Meter
	_, nw, err := dev.Boot(atf, tos, trustzone.FirmwareImage{Name: "nw", Version: "1", Code: []byte("nw")}, &m)
	if err != nil {
		b.Fatal(err)
	}
	store, err := securestore.Open(pager.NewMemDevice(), nw, &m, opts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		idx, _ := store.Allocate()
		if err := store.WritePage(idx, []byte(fmt.Sprintf("page %d", i))); err != nil {
			b.Fatal(err)
		}
	}
	return store, &m
}

// BenchmarkAblationMerkleArity compares binary vs wide Merkle trees: wider
// trees shorten the verification path at the cost of larger node recomputes.
func BenchmarkAblationMerkleArity(b *testing.B) {
	for _, arity := range []int{2, 4, 16} {
		store, m := secureStoreForBench(b, securestore.Options{Arity: arity})
		b.Run(fmt.Sprintf("arity%d", arity), func(b *testing.B) {
			base := m.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.ReadPage(uint32(i % 512)); err != nil {
					b.Fatal(err)
				}
			}
			d := m.Snapshot().Sub(base)
			b.ReportMetric(float64(d.MerkleHashes)/float64(b.N), "hashes/op")
		})
	}
}

// BenchmarkAblationFreshnessCache compares the paper's per-read full-path
// verification with verified-subtree caching.
func BenchmarkAblationFreshnessCache(b *testing.B) {
	for _, cached := range []bool{false, true} {
		store, m := secureStoreForBench(b, securestore.Options{CacheVerifiedSubtrees: cached})
		name := "full-path"
		if cached {
			name = "cached-subtrees"
		}
		b.Run(name, func(b *testing.B) {
			base := m.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.ReadPage(uint32(i % 512)); err != nil {
					b.Fatal(err)
				}
			}
			d := m.Snapshot().Sub(base)
			b.ReportMetric(float64(d.MerkleHashes)/float64(b.N), "hashes/op")
		})
	}
}

// BenchmarkAblationPageCipher compares CBC+HMAC-SHA-512 (the paper's
// SQLCipher configuration) with AES-GCM.
func BenchmarkAblationPageCipher(b *testing.B) {
	for _, gcm := range []bool{false, true} {
		store, _ := secureStoreForBench(b, securestore.Options{GCM: gcm})
		name := "cbc-hmac"
		if gcm {
			name = "gcm"
		}
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.ReadPage(uint32(i % 512)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPushdown compares split execution with predicate pushdown
// (the partitioner's default) against shipping whole tables.
func BenchmarkAblationPushdown(b *testing.B) {
	c := benchCluster(b, ironsafe.IronSafe, nil)
	selective := "SELECT sum(l_extendedprice) FROM lineitem WHERE l_quantity < 5"
	whole := "SELECT sum(l_extendedprice) FROM lineitem"
	b.Run("with-pushdown", func(b *testing.B) { runQueryBench(b, c, selective) })
	b.Run("whole-table", func(b *testing.B) { runQueryBench(b, c, whole) })
}

// BenchmarkQueryThroughput measures raw end-to-end queries per second for
// the full authorized path (go test -bench reports ns/op = full pipeline).
func BenchmarkQueryThroughput(b *testing.B) {
	c := benchCluster(b, ironsafe.IronSafe, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.NewSession("bench").Query("SELECT count(*) FROM nation"); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchDataLoaded guards the package-level benchmark fixture.
func TestBenchDataLoaded(t *testing.T) {
	if benchData.TotalRows() == 0 {
		t.Fatal("benchmark data empty")
	}
	if len(bench.DefaultQueries()) != 16 {
		t.Fatal("query set drifted")
	}
}
