package ironsafe

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"ironsafe/internal/hostengine"
	"ironsafe/internal/resilience"
	"ironsafe/internal/securestore"
	"ironsafe/internal/storageengine"
)

// This file is the cluster's anti-entropy repair path: RebuildStorage streams
// a quarantined node's state back from a healthy donor replica, chunk by
// chunk over a dedicated monitor-keyed channel, leaving the target ready for
// the ordinary ReattestStorage readmission gate. A fault at any point leaves
// the target either fully consistent or still quarantined (the on-medium
// rebuild marker fails its integrity sweep) — never half-admitted.

// rebuildChunkPages is how many pages move per transfer chunk. Small enough
// that a chunk (~33 KB sealed in one frame) sits far under the transport
// frame cap, large enough to amortize the per-chunk commit.
const rebuildChunkPages = 8

// RebuildStorage rebuilds the quarantined node id from the live donor. The
// donor's committed state is exported at a transaction boundary, verified
// page by page against the donor's manifest on arrival, and applied through
// the target's journaled commit path under the target's OWN keys — sealed
// records never cross nodes. Each retry attempt handshakes fresh channels
// (a faulted AEAD channel is desynchronized by design) and resumes from the
// target's committed prefix rather than starting over.
//
// Success leaves the target consistent with the donor and restarted, but
// still down: ReattestStorage must pass before it serves again.
func (c *Cluster) RebuildStorage(id, donorID string) error {
	target := c.storageByID(id)
	if target == nil {
		return fmt.Errorf("ironsafe: unknown storage node %q", id)
	}
	donor := c.storageByID(donorID)
	if donor == nil {
		return fmt.Errorf("ironsafe: unknown storage node %q", donorID)
	}
	if id == donorID {
		return fmt.Errorf("ironsafe: node %s cannot donate to itself", id)
	}

	c.nodeMu.Lock()
	switch {
	case !c.down[id]:
		c.nodeMu.Unlock()
		return fmt.Errorf("%w: %s: rebuild refused", ErrNodeNotDown, id)
	case c.down[donorID]:
		c.nodeMu.Unlock()
		return fmt.Errorf("%w: donor %s cannot export", resilience.ErrNodeDown, donorID)
	case c.rebuilding[id] || c.rebuilding[donorID]:
		c.nodeMu.Unlock()
		return fmt.Errorf("ironsafe: rebuild already in flight involving %s/%s", id, donorID)
	}
	c.rebuilding[id] = true
	c.nodeMu.Unlock()
	defer func() {
		c.nodeMu.Lock()
		delete(c.rebuilding, id)
		c.nodeMu.Unlock()
	}()

	// A fresh key for the rebuild control sessions, installed on both ends
	// and revoked when the rebuild resolves either way. The session id's
	// prefix routes it to the rebuild verbs (and ONLY those) on the wire.
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return fmt.Errorf("ironsafe: rebuild session key: %w", err)
	}
	var tag [4]byte
	if _, err := rand.Read(tag[:]); err != nil {
		return fmt.Errorf("ironsafe: rebuild session tag: %w", err)
	}
	sid := storageengine.RebuildSessionPrefix + id + ":" + hex.EncodeToString(tag[:])
	donor.InstallSessionKey(sid, key)
	target.InstallSessionKey(sid, key)
	defer donor.RevokeSessionKey(sid)
	defer target.RevokeSessionKey(sid)

	// Rebuild passes draw on their own deadline budget: a donor in gray
	// failure must not drag the rebuild through unbounded full-pass retries.
	err := resilience.RetryBudgeted(c.res, c.res.OffloadAttempts, c.res.NewQueryBudget(), func(int) error {
		return c.rebuildPass(target, donor, id, donorID, sid, key)
	})
	if err != nil {
		return fmt.Errorf("ironsafe: rebuilding %s from %s: %w", id, donorID, err)
	}
	return nil
}

// rebuildPass runs one complete rebuild attempt: manifest, begin (wipe or
// resume), chunked transfer, finalize.
func (c *Cluster) rebuildPass(target, donor *storageengine.Server, id, donorID, sid string, key []byte) error {
	if !c.cfg.ChannelTransport {
		return rebuildPassDirect(target, donor)
	}
	return c.rebuildPassChannel(target, donor, id, donorID, sid, key)
}

// rebuildPassDirect is the in-process path (no ChannelTransport): the same
// verbs, invoked as method calls.
func rebuildPassDirect(target, donor *storageengine.Server) error {
	manifest, err := donor.ExportRebuildManifest()
	if err != nil {
		return err
	}
	m, err := securestore.DecodeManifest(manifest)
	if err != nil {
		return err
	}
	start, err := target.BeginRebuild(manifest)
	if err != nil {
		return err
	}
	for n := m.NumPages(); start < n; {
		count := min(uint32(rebuildChunkPages), n-start)
		pages, err := donor.ExportRebuildPages(start, count)
		if err != nil {
			return err
		}
		if err := target.ImportRebuildPages(start, pages); err != nil {
			return err
		}
		start += count
	}
	return target.FinalizeRebuild()
}

// rebuildPassChannel moves the state over two fresh monitor-keyed secure
// channels — donor export leg and target import leg — speaking the rebuild
// verbs of the wire protocol. The fault-injection hook sees the legs as
// sites "rebuild:<donor>" and "rebuild:<target>", distinct from query
// channels, so sweeps can fault exactly one leg at exactly one operation.
func (c *Cluster) rebuildPassChannel(target, donor *storageengine.Server, id, donorID, sid string, key []byte) error {
	dn, err := c.dialNodeChannel(donor, storageengine.RebuildSessionPrefix+donorID, sid, key, nil)
	if err != nil {
		return err
	}
	defer dn.Close()
	tn, err := c.dialNodeChannel(target, storageengine.RebuildSessionPrefix+id, sid, key, nil)
	if err != nil {
		return err
	}
	defer tn.Close()

	manifest, err := rebuildCall(dn, "rebuild-manifest", nil, "manifest")
	if err != nil {
		return err
	}
	m, err := securestore.DecodeManifest(manifest)
	if err != nil {
		return err
	}
	beginReply, err := rebuildCall(tn, "rebuild-begin", manifest, "begin-ok")
	if err != nil {
		return err
	}
	if len(beginReply) != 4 {
		return errors.New("ironsafe: malformed rebuild-begin reply")
	}
	start := binary.LittleEndian.Uint32(beginReply)
	for n := m.NumPages(); start < n; {
		count := min(uint32(rebuildChunkPages), n-start)
		var req [8]byte
		binary.LittleEndian.PutUint32(req[:4], start)
		binary.LittleEndian.PutUint32(req[4:], count)
		pages, err := rebuildCall(dn, "rebuild-read", req[:], "pages")
		if err != nil {
			return err
		}
		imp := make([]byte, 4, 4+len(pages))
		binary.LittleEndian.PutUint32(imp, start)
		if _, err := rebuildCall(tn, "rebuild-pages", append(imp, pages...), "ok"); err != nil {
			return err
		}
		start += count
	}
	_, err = rebuildCall(tn, "rebuild-finalize", nil, "ok")
	return err
}

// rebuildCall is one request/response exchange on a rebuild control channel.
func rebuildCall(n *hostengine.RemoteNode, verb string, payload []byte, wantType string) ([]byte, error) {
	if err := n.Conn.Send(verb, payload); err != nil {
		return nil, err
	}
	typ, reply, err := n.Conn.Recv()
	if err != nil {
		return nil, err
	}
	if typ == "error" {
		return nil, fmt.Errorf("ironsafe: %s: storage error: %s", verb, reply)
	}
	if typ != wantType {
		return nil, fmt.Errorf("ironsafe: %s: unexpected reply type %q", verb, typ)
	}
	return reply, nil
}
