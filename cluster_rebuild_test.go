package ironsafe

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ironsafe/internal/hostengine"
	"ironsafe/internal/monitor"
	"ironsafe/internal/securestore"
)

// TestRestartStorageRequiresKill: restarting a live node is a membership
// error, not a silent no-op — the node must be explicitly quarantined first.
func TestRestartStorageRequiresKill(t *testing.T) {
	c := newFlightCluster(t, IronSafe)
	if err := c.RestartStorage("storage-01", nil); !errors.Is(err, ErrNodeNotDown) {
		t.Errorf("restart of live node = %v, want ErrNodeNotDown", err)
	}
	if c.NodeDown("storage-01") {
		t.Error("refused restart marked the node down")
	}
}

// TestEpochFencedZombieReplyRejected: a node that misses its own eviction (a
// zombie that keeps executing) stamps its replies with the stale epoch; the
// host-side fencing wrapper must reject them even though the payload decodes.
func TestEpochFencedZombieReplyRejected(t *testing.T) {
	c, err := NewCluster(Config{Mode: IronSafe, StorageNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Storage[1].DB().Execute(`CREATE TABLE fence (id INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Storage[1].DB().Execute(`INSERT INTO fence VALUES (1)`); err != nil {
		t.Fatal(err)
	}

	f := &fencedNode{StorageNode: &hostengine.LocalNode{Server: c.Storage[1]}, c: c}
	if _, _, err := f.Offload(`SELECT id FROM fence`); err != nil {
		t.Fatalf("pre-eviction offload: %v", err)
	}

	// Evict storage-02. The epoch bump is broadcast to survivors only; the
	// zombie keeps replying at the old epoch and betrays itself.
	c.KillStorage("storage-02")
	if _, _, err := f.Offload(`SELECT id FROM fence`); !errors.Is(err, ErrEpochFenced) {
		t.Fatalf("zombie reply = %v, want ErrEpochFenced", err)
	}

	// Readmission hands the node the current epoch; replies are accepted
	// again.
	if err := c.RestartStorage("storage-02", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.ReattestStorage("storage-02"); err != nil {
		t.Fatal(err)
	}
	res, _, err := f.Offload(`SELECT id FROM fence`)
	if err != nil {
		t.Fatalf("post-readmission offload: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("post-readmission rows = %d, want 1", len(res.Rows))
	}
}

// TestKillReattestMembershipRace hammers the kill/restart/reattest cycle from
// two goroutines (run under -race): the membership transitions must stay
// atomic and the cluster must end in a coherent, queryable state.
func TestKillReattestMembershipRace(t *testing.T) {
	c := newFlightCluster(t, IronSafe)
	const node = "storage-01"

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				c.KillStorage(node)
				// The peer goroutine may have readmitted (ErrNodeNotDown)
				// or be mid-cycle; only membership errors are tolerable.
				if err := c.RestartStorage(node, nil); err != nil && !errors.Is(err, ErrNodeNotDown) {
					t.Errorf("restart: %v", err)
				}
				if err := c.ReattestStorage(node); err != nil && !errors.Is(err, ErrNodeNotReadmitted) {
					t.Errorf("reattest: %v", err)
				}
				_ = c.Epoch()
				_ = c.NodeDown(node)
			}
		}()
	}
	wg.Wait()

	// Settle into the live state and prove the cluster still answers with a
	// verifiable, current-epoch proof.
	if c.NodeDown(node) {
		if err := c.RestartStorage(node, nil); err != nil {
			t.Fatal(err)
		}
		if err := c.ReattestStorage(node); err != nil {
			t.Fatal(err)
		}
	}
	qr, err := c.NewSession("Ka").Query(`SELECT pax FROM flights WHERE dest = 'PT' ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Result.Rows) != 2 {
		t.Errorf("rows = %v", qr.Result.Rows)
	}
	if !monitor.VerifyProof(c.MonitorPublicKey(), &qr.Proof) {
		t.Error("proof does not verify")
	}
	if qr.Proof.Epoch != c.Epoch() {
		t.Errorf("proof bound to epoch %d, cluster at %d", qr.Proof.Epoch, c.Epoch())
	}
}

// TestQuiesceSnapshotRestartUnderCommits: snapshots taken while commits race
// are cleanly stale — restarting from one is either accepted (latest state)
// or refused as a freshness violation, never admitted torn and never
// misclassified as corruption.
func TestQuiesceSnapshotRestartUnderCommits(t *testing.T) {
	c := newFlightCluster(t, IronSafe)
	const node = "storage-01"

	stop := make(chan struct{})
	var inserted atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Exec(fmt.Sprintf(`INSERT INTO flights VALUES (%d, 'w%d', 'FR', 1.00, '1995-08-01')`, 100+i, i)); err != nil {
				t.Errorf("concurrent insert: %v", err)
				return
			}
			inserted.Add(1)
		}
	}()

	var snaps []*MediumSnapshot
	for i := 0; i < 8; i++ {
		snap, err := c.SnapshotStorage(node)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
	}
	close(stop)
	wg.Wait()
	final, err := c.SnapshotStorage(node)
	if err != nil {
		t.Fatal(err)
	}

	c.KillStorage(node)
	for i, snap := range snaps {
		err := c.RestartStorage(node, snap)
		switch {
		case err == nil:
			// The snapshot happened to capture the latest commit; re-kill
			// so the next restore starts from quarantine.
			c.KillStorage(node)
		case errors.Is(err, ErrNodeNotReadmitted) && errors.Is(err, securestore.ErrFreshness):
			// Cleanly stale: refused as a rollback, exactly as required.
		default:
			t.Fatalf("snapshot %d restored torn (not cleanly stale): %v", i, err)
		}
	}

	// The post-quiesce snapshot is the anchored state: readmission succeeds
	// and every committed row survived.
	if err := c.RestartStorage(node, final); err != nil {
		t.Fatal(err)
	}
	if err := c.ReattestStorage(node); err != nil {
		t.Fatal(err)
	}
	qr, err := c.NewSession("Ka").Query(`SELECT id FROM flights`)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 + int(inserted.Load()); len(qr.Result.Rows) != want {
		t.Errorf("rows after readmission = %d, want %d", len(qr.Result.Rows), want)
	}
}

// TestRebuildReadmitsRolledBackNode is the acceptance path end to end: a
// replica rolled back to a stale snapshot is refused readmission, rebuilt
// from a live donor over the authenticated channel, and then passes
// re-attestation and serves offloads with the donor's full state.
func TestRebuildReadmitsRolledBackNode(t *testing.T) {
	c, err := NewCluster(Config{Mode: IronSafe, StorageNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	const donor, target = "storage-01", "storage-02"
	for _, srv := range c.Storage {
		if _, err := srv.DB().Execute(`CREATE TABLE replica (id INTEGER)`); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.DB().Execute(`INSERT INTO replica VALUES (1)`); err != nil {
			t.Fatal(err)
		}
	}
	stale, err := c.SnapshotStorage(target)
	if err != nil {
		t.Fatal(err)
	}
	// Both replicas advance past the snapshot.
	for _, srv := range c.Storage {
		if _, err := srv.DB().Execute(`INSERT INTO replica VALUES (2)`); err != nil {
			t.Fatal(err)
		}
	}

	c.KillStorage(target)
	if err := c.RestartStorage(target, stale); !errors.Is(err, ErrNodeNotReadmitted) {
		t.Fatalf("rolled-back restart = %v, want ErrNodeNotReadmitted", err)
	}
	if err := c.RebuildStorage(target, donor); err != nil {
		t.Fatalf("rebuild from donor: %v", err)
	}
	if err := c.ReattestStorage(target); err != nil {
		t.Fatalf("readmission after rebuild: %v", err)
	}

	n := &hostengine.LocalNode{Server: c.storageByID(target)}
	res, _, err := n.Offload(`SELECT id FROM replica ORDER BY id`)
	if err != nil {
		t.Fatalf("offload after readmission: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rebuilt replica rows = %d, want 2 (donor's full state)", len(res.Rows))
	}
}
