package ironsafe

import (
	"testing"

	"ironsafe/internal/sql/exec"
)

// countingNode is a fake cached storage channel counting Close calls.
type countingNode struct {
	id     string
	closes int
}

func (n *countingNode) NodeID() string                              { return n.id }
func (n *countingNode) Offload(string) (*exec.Result, int64, error) { return nil, 0, nil }
func (n *countingNode) Close() error                                { n.closes++; return nil }

func TestSessionProviderDetachLegQuarantinesCachedChannel(t *testing.T) {
	c, err := NewCluster(Config{Mode: IronSafe})
	if err != nil {
		t.Fatal(err)
	}
	p := c.newSessionProvider([]string{"storage-01"}, "sid", nil)
	loser := &countingNode{id: "storage-01"}
	p.cached["storage-01"] = loser

	settle := p.DetachLeg("storage-01", loser)
	if _, still := p.cached["storage-01"]; still {
		t.Fatal("detached channel still cached: a later Connect would share it with the in-flight loser")
	}

	// A replacement channel cached after the detach must survive both the
	// loser's settle and the end-of-query close — only the detached private
	// channel belongs to the settle.
	fresh := &countingNode{id: "storage-01"}
	p.cached["storage-01"] = fresh
	settle(false, true)
	p.drainWait()
	if loser.closes != 1 {
		t.Errorf("detached channel closed %d times, want exactly once at settle", loser.closes)
	}
	if fresh.closes != 0 {
		t.Error("loser settle closed the replacement channel")
	}

	// The loser's failure reached the breaker (two more failures open it).
	c.Health().Report("storage-01", false)
	c.Health().Report("storage-01", false)
	if !c.Health().Open("storage-01") {
		t.Error("detached loser's failure never fed the circuit breaker")
	}

	// close() tears down only what is cached.
	p.close()
	if fresh.closes != 1 {
		t.Errorf("close() closed the cached channel %d times, want once", fresh.closes)
	}

	// Detaching a node that is no longer the cached channel (Report evicted
	// it and a fresh one replaced it) must leave the replacement alone, but
	// still close the orphaned loser channel and balance drain accounting.
	orphan := &countingNode{id: "storage-01"}
	current := &countingNode{id: "storage-01"}
	p.cached["storage-01"] = current
	settle = p.DetachLeg("storage-01", orphan)
	if p.cached["storage-01"] != current {
		t.Error("detach with a stale node evicted the current cached channel")
	}
	settle(true, false)
	p.drainWait()
	if orphan.closes != 1 {
		t.Errorf("orphaned loser channel closed %d times, want once", orphan.closes)
	}
	if current.closes != 0 {
		t.Error("stale-node settle closed the current cached channel")
	}
}
