package ironsafe

import (
	"fmt"

	"ironsafe/internal/ingest"
)

// IngestPipeline assembles a durable streaming-ingest pipeline over the
// cluster's storage nodes (the data-owning side of the split and sos
// configurations): Storage[0] is the authority whose group commits anchor
// acks, any further nodes replicate every batch in order. The cluster's
// monitor gates every record (policy compliance, timely deletion, audit) and
// the cluster epoch is bound into each authorization. Caller-supplied knobs
// (BatchMax, QueueMax, Budget, Pressure, OnNodeDown, Logf) pass through.
func (c *Cluster) IngestPipeline(opts ingest.Config) (*ingest.Pipeline, error) {
	if c.hostDB != nil {
		return nil, fmt.Errorf("ironsafe: mode %s keeps data on the host; ingest targets storage-owning modes", c.cfg.Mode)
	}
	nodes := make([]ingest.Node, 0, len(c.Storage))
	for _, s := range c.Storage {
		nodes = append(nodes, ingest.NewServerNode(s))
	}
	opts.Nodes = nodes
	if opts.Authorizer == nil {
		opts.Authorizer = c.Monitor
	}
	if opts.Database == "" {
		opts.Database = c.database
	}
	if opts.HostID == "" {
		opts.HostID = "host-1"
	}
	if opts.Epoch == nil {
		opts.Epoch = c.Epoch
	}
	return ingest.New(opts)
}
