// Package value defines the typed value model used throughout the IronSafe
// query engine: SQL values, comparison and arithmetic semantics, and the
// date/interval calendar arithmetic needed by TPC-H predicates.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

const (
	// KindNull is the SQL NULL marker; a null Value has no payload.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE 754 float (SQL DECIMAL is mapped here).
	KindFloat
	// KindString is a UTF-8 string (CHAR/VARCHAR/TEXT).
	KindString
	// KindDate is a calendar date stored as days since 1970-01-01.
	KindDate
	// KindBool is a boolean.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64 // int, date (days since epoch), bool (0/1)
	f    float64
	s    string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Date returns a date value from days since the Unix epoch.
func Date(days int64) Value { return Value{kind: KindDate, i: days} }

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It panics if the kind is not KindInt,
// KindDate, or KindBool.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt, KindDate, KindBool:
		return v.i
	}
	panic(fmt.Sprintf("value: AsInt on %s", v.kind))
}

// AsFloat returns the value coerced to float64 (ints widen losslessly for
// magnitudes below 2^53). It panics on non-numeric kinds.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic(fmt.Sprintf("value: AsFloat on %s", v.kind))
}

// AsString returns the string payload. It panics if the kind is not KindString.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: AsString on %s", v.kind))
	}
	return v.s
}

// AsBool returns the boolean payload. It panics if the kind is not KindBool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: AsBool on %s", v.kind))
	}
	return v.i != 0
}

// IsNumeric reports whether the value is KindInt or KindFloat.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value the way a query result printer would.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'f', -1, 64)
	case KindString:
		return v.s
	case KindDate:
		y, m, d := CivilFromDays(v.i)
		return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare orders two values. NULLs sort before everything (the caller decides
// SQL three-valued semantics separately via comparison operators). Numeric
// kinds compare cross-kind; otherwise kinds must match.
func Compare(a, b Value) (int, error) {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == KindNull && b.kind == KindNull:
			return 0, nil
		case a.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, nil
			case a.i > b.i:
				return 1, nil
			}
			return 0, nil
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	}
	if a.kind != b.kind {
		return 0, fmt.Errorf("value: cannot compare %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindString:
		return strings.Compare(a.s, b.s), nil
	case KindDate, KindBool:
		switch {
		case a.i < b.i:
			return -1, nil
		case a.i > b.i:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("value: cannot compare kind %s", a.kind)
}

// MustCompare is Compare for callers that have already type-checked.
func MustCompare(a, b Value) int {
	c, err := Compare(a, b)
	if err != nil {
		panic(err)
	}
	return c
}

// Equal reports deep equality (same kind and payload; numeric cross-kind
// equality follows Compare).
func Equal(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return a.kind == b.kind
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Arith applies a binary arithmetic operator (+ - * /) with SQL semantics:
// NULL propagates; int op int stays int except division, which widens when
// inexact; date +/- int shifts by days.
func Arith(op byte, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if a.kind == KindDate && b.kind == KindInt {
		switch op {
		case '+':
			return Date(a.i + b.i), nil
		case '-':
			return Date(a.i - b.i), nil
		}
	}
	if a.kind == KindDate && b.kind == KindDate && op == '-' {
		return Int(a.i - b.i), nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null(), fmt.Errorf("value: arithmetic %c on %s and %s", op, a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case '+':
			return Int(a.i + b.i), nil
		case '-':
			return Int(a.i - b.i), nil
		case '*':
			return Int(a.i * b.i), nil
		case '/':
			if b.i == 0 {
				return Null(), fmt.Errorf("value: division by zero")
			}
			if a.i%b.i == 0 {
				return Int(a.i / b.i), nil
			}
			return Float(float64(a.i) / float64(b.i)), nil
		case '%':
			if b.i == 0 {
				return Null(), fmt.Errorf("value: modulo by zero")
			}
			return Int(a.i % b.i), nil
		}
	}
	if op == '%' {
		return Null(), fmt.Errorf("value: modulo requires integers")
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch op {
	case '+':
		return Float(af + bf), nil
	case '-':
		return Float(af - bf), nil
	case '*':
		return Float(af * bf), nil
	case '/':
		if bf == 0 {
			return Null(), fmt.Errorf("value: division by zero")
		}
		return Float(af / bf), nil
	}
	return Null(), fmt.Errorf("value: unknown arithmetic operator %q", op)
}

// HashKey returns a string usable as a map key for hash joins and group-by.
// Values that compare equal yield identical keys.
func (v Value) HashKey() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindInt:
		return "\x01" + strconv.FormatInt(v.i, 36)
	case KindFloat:
		if v.f == math.Trunc(v.f) && math.Abs(v.f) < 1e15 {
			// Integral floats must collide with equal ints.
			return "\x01" + strconv.FormatInt(int64(v.f), 36)
		}
		return "\x02" + strconv.FormatFloat(v.f, 'b', -1, 64)
	case KindString:
		return "\x03" + v.s
	case KindDate:
		return "\x04" + strconv.FormatInt(v.i, 36)
	case KindBool:
		return "\x05" + strconv.FormatInt(v.i, 2)
	default:
		return "\x7f"
	}
}
