package value

import (
	"fmt"
	"strconv"
)

// Calendar arithmetic implemented directly (proleptic Gregorian) so the
// engine does not depend on time.Time timezone behaviour for DATE values.

// DaysFromCivil converts a civil date to days since 1970-01-01.
// Algorithm from Howard Hinnant's public-domain date algorithms.
func DaysFromCivil(y, m, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	var era int64
	if yy >= 0 {
		era = yy / 400
	} else {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468
}

// CivilFromDays converts days since 1970-01-01 back to a civil date.
func CivilFromDays(z int64) (y, m, d int) {
	z += 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}

// ParseDate parses 'YYYY-MM-DD' into a date Value.
func ParseDate(s string) (Value, error) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return Null(), fmt.Errorf("value: malformed date %q (want YYYY-MM-DD)", s)
	}
	y, err := strconv.Atoi(s[0:4])
	if err != nil {
		return Null(), fmt.Errorf("value: malformed date %q: %v", s, err)
	}
	m, err := strconv.Atoi(s[5:7])
	if err != nil {
		return Null(), fmt.Errorf("value: malformed date %q: %v", s, err)
	}
	d, err := strconv.Atoi(s[8:10])
	if err != nil {
		return Null(), fmt.Errorf("value: malformed date %q: %v", s, err)
	}
	if m < 1 || m > 12 || d < 1 || d > DaysInMonth(y, m) {
		return Null(), fmt.Errorf("value: date out of range %q", s)
	}
	return Date(DaysFromCivil(y, m, d)), nil
}

// MustParseDate is ParseDate for literals known to be valid.
func MustParseDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// IsLeap reports whether year y is a Gregorian leap year.
func IsLeap(y int) bool {
	return y%4 == 0 && (y%100 != 0 || y%400 == 0)
}

// DaysInMonth returns the number of days in month m of year y.
func DaysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	case 2:
		if IsLeap(y) {
			return 29
		}
		return 28
	}
	return 0
}

// AddInterval shifts a date Value by n units ("day", "month", "year").
// Month/year arithmetic clamps the day to the end of the target month,
// matching common SQL engines.
func AddInterval(v Value, n int, unit string) (Value, error) {
	if v.IsNull() {
		return Null(), nil
	}
	if v.Kind() != KindDate {
		return Null(), fmt.Errorf("value: interval arithmetic on %s", v.Kind())
	}
	y, m, d := CivilFromDays(v.AsInt())
	switch unit {
	case "day", "days":
		return Date(v.AsInt() + int64(n)), nil
	case "month", "months":
		total := (y*12 + (m - 1)) + n
		ny := total / 12
		nm := total%12 + 1
		if total < 0 && total%12 != 0 {
			ny = (total - 11) / 12
			nm = total - ny*12 + 1
		}
		if dim := DaysInMonth(ny, nm); d > dim {
			d = dim
		}
		return Date(DaysFromCivil(ny, nm, d)), nil
	case "year", "years":
		ny := y + n
		if dim := DaysInMonth(ny, m); d > dim {
			d = dim
		}
		return Date(DaysFromCivil(ny, m, d)), nil
	default:
		return Null(), fmt.Errorf("value: unknown interval unit %q", unit)
	}
}

// ExtractYear returns the year of a date Value as an int Value.
func ExtractYear(v Value) (Value, error) {
	if v.IsNull() {
		return Null(), nil
	}
	if v.Kind() != KindDate {
		return Null(), fmt.Errorf("value: EXTRACT(YEAR) on %s", v.Kind())
	}
	y, _, _ := CivilFromDays(v.AsInt())
	return Int(int64(y)), nil
}

// ExtractMonth returns the month of a date Value as an int Value.
func ExtractMonth(v Value) (Value, error) {
	if v.IsNull() {
		return Null(), nil
	}
	if v.Kind() != KindDate {
		return Null(), fmt.Errorf("value: EXTRACT(MONTH) on %s", v.Kind())
	}
	_, m, _ := CivilFromDays(v.AsInt())
	return Int(int64(m)), nil
}
