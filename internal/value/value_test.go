package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "DOUBLE",
		KindString: "VARCHAR", KindDate: "DATE", KindBool: "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() should be null")
	}
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got := Float(2.5).AsFloat(); got != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %v", got)
	}
	if got := Str("x").AsString(); got != "x" {
		t.Errorf("Str(x).AsString() = %q", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool roundtrip failed")
	}
	if got := Int(7).AsFloat(); got != 7 {
		t.Errorf("Int widening = %v", got)
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on string", func() { Str("a").AsInt() })
	mustPanic("AsFloat on string", func() { Str("a").AsFloat() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
	mustPanic("AsBool on int", func() { Int(1).AsBool() })
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Null(), Int(1), -1},
		{Int(1), Null(), 1},
		{Null(), Null(), 0},
		{Date(10), Date(20), -1},
		{Bool(false), Bool(true), -1},
	}
	for _, tc := range tests {
		got, err := Compare(tc.a, tc.b)
		if err != nil {
			t.Errorf("Compare(%v,%v): %v", tc.a, tc.b, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompareTypeMismatch(t *testing.T) {
	if _, err := Compare(Str("a"), Int(1)); err == nil {
		t.Error("expected error comparing string to int")
	}
	if _, err := Compare(Date(0), Str("a")); err == nil {
		t.Error("expected error comparing date to string")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Int(5), Float(5)) {
		t.Error("Int(5) should equal Float(5)")
	}
	if Equal(Null(), Int(0)) {
		t.Error("NULL should not equal 0")
	}
	if !Equal(Null(), Null()) {
		t.Error("NULL should Equal NULL (grouping semantics)")
	}
	if Equal(Str("a"), Int(1)) {
		t.Error("mismatched kinds should not be equal")
	}
}

func TestArith(t *testing.T) {
	tests := []struct {
		op   byte
		a, b Value
		want Value
	}{
		{'+', Int(2), Int(3), Int(5)},
		{'-', Int(2), Int(3), Int(-1)},
		{'*', Int(4), Int(3), Int(12)},
		{'/', Int(6), Int(3), Int(2)},
		{'/', Int(7), Int(2), Float(3.5)},
		{'+', Float(1.5), Int(1), Float(2.5)},
		{'*', Float(2), Float(3), Float(6)},
		{'+', Date(100), Int(5), Date(105)},
		{'-', Date(100), Int(5), Date(95)},
		{'-', Date(100), Date(90), Int(10)},
	}
	for _, tc := range tests {
		got, err := Arith(tc.op, tc.a, tc.b)
		if err != nil {
			t.Errorf("Arith(%c,%v,%v): %v", tc.op, tc.a, tc.b, err)
			continue
		}
		if !Equal(got, tc.want) || got.Kind() != tc.want.Kind() {
			t.Errorf("Arith(%c,%v,%v) = %v (%s), want %v (%s)",
				tc.op, tc.a, tc.b, got, got.Kind(), tc.want, tc.want.Kind())
		}
	}
}

func TestArithNullPropagation(t *testing.T) {
	got, err := Arith('+', Null(), Int(1))
	if err != nil || !got.IsNull() {
		t.Errorf("NULL + 1 = %v, %v; want NULL", got, err)
	}
	got, err = Arith('*', Int(1), Null())
	if err != nil || !got.IsNull() {
		t.Errorf("1 * NULL = %v, %v; want NULL", got, err)
	}
}

func TestArithErrors(t *testing.T) {
	if _, err := Arith('/', Int(1), Int(0)); err == nil {
		t.Error("int division by zero should error")
	}
	if _, err := Arith('/', Float(1), Float(0)); err == nil {
		t.Error("float division by zero should error")
	}
	if _, err := Arith('+', Str("a"), Int(1)); err == nil {
		t.Error("string arithmetic should error")
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{Str("hi"), "hi"},
		{MustParseDate("1998-12-01"), "1998-12-01"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%v kind %s) = %q, want %q", tc.v, tc.v.Kind(), got, tc.want)
		}
	}
}

func TestHashKeyEquality(t *testing.T) {
	// Values that compare equal must hash equal.
	if Int(5).HashKey() != Float(5).HashKey() {
		t.Error("Int(5) and Float(5) must share a hash key")
	}
	if Int(5).HashKey() == Int(6).HashKey() {
		t.Error("distinct ints must not collide")
	}
	if Str("5").HashKey() == Int(5).HashKey() {
		t.Error("string '5' must not collide with int 5")
	}
	if Null().HashKey() == Int(0).HashKey() {
		t.Error("NULL must not collide with 0")
	}
	if Date(5).HashKey() == Int(5).HashKey() {
		t.Error("date must not collide with int of same payload")
	}
}

func TestHashKeyProperty(t *testing.T) {
	// Property: Equal(a,b) => HashKey equal, for random numeric values.
	f := func(a, b int32) bool {
		va, vb := Int(int64(a)), Float(float64(b))
		if Equal(va, vb) && va.HashKey() != vb.HashKey() {
			return false
		}
		if !Equal(va, vb) && va.HashKey() == vb.HashKey() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDateRoundTripProperty(t *testing.T) {
	// Property: CivilFromDays(DaysFromCivil(y,m,d)) == (y,m,d).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		y := 1900 + rng.Intn(300)
		m := 1 + rng.Intn(12)
		d := 1 + rng.Intn(DaysInMonth(y, m))
		days := DaysFromCivil(y, m, d)
		gy, gm, gd := CivilFromDays(days)
		if gy != y || gm != m || gd != d {
			t.Fatalf("roundtrip (%d-%d-%d) -> %d -> (%d-%d-%d)", y, m, d, days, gy, gm, gd)
		}
	}
}

func TestDateMonotonicProperty(t *testing.T) {
	// Property: consecutive days differ by exactly one.
	prev := DaysFromCivil(1992, 1, 1)
	for y := 1992; y <= 1999; y++ {
		for m := 1; m <= 12; m++ {
			for d := 1; d <= DaysInMonth(y, m); d++ {
				if y == 1992 && m == 1 && d == 1 {
					continue
				}
				cur := DaysFromCivil(y, m, d)
				if cur != prev+1 {
					t.Fatalf("%04d-%02d-%02d: days %d, prev %d", y, m, d, cur, prev)
				}
				prev = cur
			}
		}
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("1970-01-01")
	if err != nil || v.AsInt() != 0 {
		t.Errorf("epoch parse = %v, %v", v, err)
	}
	v, err = ParseDate("1998-12-01")
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "1998-12-01" {
		t.Errorf("got %s", v.String())
	}
	for _, bad := range []string{"", "1998/12/01", "1998-13-01", "1998-02-30", "98-12-01", "abcd-ef-gh"} {
		if _, err := ParseDate(bad); err == nil {
			t.Errorf("ParseDate(%q) should fail", bad)
		}
	}
}

func TestAddInterval(t *testing.T) {
	d := MustParseDate("1998-12-01")
	tests := []struct {
		n    int
		unit string
		want string
	}{
		{90, "day", "1999-03-01"},
		{-90, "day", "1998-09-02"},
		{3, "month", "1999-03-01"},
		{-3, "month", "1998-09-01"},
		{1, "year", "1999-12-01"},
		{13, "month", "2000-01-01"},
	}
	for _, tc := range tests {
		got, err := AddInterval(d, tc.n, tc.unit)
		if err != nil {
			t.Errorf("AddInterval(%d %s): %v", tc.n, tc.unit, err)
			continue
		}
		if got.String() != tc.want {
			t.Errorf("AddInterval(%d %s) = %s, want %s", tc.n, tc.unit, got, tc.want)
		}
	}
}

func TestAddIntervalClamping(t *testing.T) {
	d := MustParseDate("1996-01-31")
	got, err := AddInterval(d, 1, "month")
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "1996-02-29" {
		t.Errorf("Jan 31 + 1 month (leap year) = %s, want 1996-02-29", got)
	}
	d = MustParseDate("1995-01-31")
	got, _ = AddInterval(d, 1, "month")
	if got.String() != "1995-02-28" {
		t.Errorf("Jan 31 + 1 month = %s, want 1995-02-28", got)
	}
	d = MustParseDate("1996-02-29")
	got, _ = AddInterval(d, 1, "year")
	if got.String() != "1997-02-28" {
		t.Errorf("leap day + 1 year = %s, want 1997-02-28", got)
	}
}

func TestAddIntervalErrors(t *testing.T) {
	if _, err := AddInterval(Int(1), 1, "day"); err == nil {
		t.Error("interval on int should error")
	}
	if _, err := AddInterval(Date(0), 1, "fortnight"); err == nil {
		t.Error("unknown unit should error")
	}
	got, err := AddInterval(Null(), 1, "day")
	if err != nil || !got.IsNull() {
		t.Error("interval on NULL should be NULL")
	}
}

func TestExtract(t *testing.T) {
	d := MustParseDate("1997-06-15")
	y, err := ExtractYear(d)
	if err != nil || y.AsInt() != 1997 {
		t.Errorf("ExtractYear = %v, %v", y, err)
	}
	m, err := ExtractMonth(d)
	if err != nil || m.AsInt() != 6 {
		t.Errorf("ExtractMonth = %v, %v", m, err)
	}
	if _, err := ExtractYear(Int(1)); err == nil {
		t.Error("ExtractYear on int should error")
	}
	if v, err := ExtractYear(Null()); err != nil || !v.IsNull() {
		t.Error("ExtractYear(NULL) should be NULL")
	}
}

func TestIsLeap(t *testing.T) {
	for y, want := range map[int]bool{2000: true, 1900: false, 1996: true, 1997: false, 2400: true} {
		if got := IsLeap(y); got != want {
			t.Errorf("IsLeap(%d) = %v", y, got)
		}
	}
}

func TestArithAlgebraicProperties(t *testing.T) {
	// Commutativity of + and * over random ints (no overflow concerns at
	// this range), and identity elements.
	f := func(a, b int32) bool {
		x, y := Int(int64(a)), Int(int64(b))
		s1, _ := Arith('+', x, y)
		s2, _ := Arith('+', y, x)
		p1, _ := Arith('*', x, y)
		p2, _ := Arith('*', y, x)
		id1, _ := Arith('+', x, Int(0))
		id2, _ := Arith('*', x, Int(1))
		return Equal(s1, s2) && Equal(p1, p2) && Equal(id1, x) && Equal(id2, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		c1, _ := Compare(x, y)
		c2, _ := Compare(y, x)
		return c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDateIntervalInverseProperty(t *testing.T) {
	// Adding then subtracting the same day interval is the identity.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		d := Date(int64(rng.Intn(40000)))
		n := rng.Intn(10000) - 5000
		fwd, err := AddInterval(d, n, "day")
		if err != nil {
			t.Fatal(err)
		}
		back, err := AddInterval(fwd, -n, "day")
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(back, d) {
			t.Fatalf("day interval not invertible: %v +%d -%d = %v", d, n, n, back)
		}
	}
}
