package chaos

import "testing"

// TestRebuildFaultMatrixDeterministic drives the full rebuild fault sweep
// twice with the same seed: every fault point must uphold the
// all-or-quarantined invariant (enforced inside RunRebuildSweep), and the two
// reports must be byte-identical.
func TestRebuildFaultMatrixDeterministic(t *testing.T) {
	cfg := RebuildConfig{Seed: 0xB1D5, Stride: 13}
	a, err := RunRebuildSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points == 0 {
		t.Fatal("sweep exercised zero fault points")
	}
	if a.Absorbed+a.Refused != a.Points {
		t.Errorf("absorbed %d + refused %d != points %d", a.Absorbed, a.Refused, a.Points)
	}
	if a.DeviceWrites == 0 || a.DonorReadOps == 0 || a.TargetWriteOps == 0 {
		t.Errorf("clean counting cycle saw no operations: %+v", a)
	}
	b, err := RunRebuildSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Errorf("sweep not deterministic:\n  run1 %s\n  run2 %s", a.Digest, b.Digest)
	}
	if a.Points != b.Points || a.DeviceWrites != b.DeviceWrites {
		t.Errorf("sweep shape differs across runs: %+v vs %+v", a, b)
	}
}

// TestRebuildReadmitNarrowStride spot-checks the sweep's early fault points
// (the handshake and marker-write windows, where half-admission bugs would
// live) at full resolution over a tiny grid.
func TestRebuildReadmitNarrowStride(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution sweep in -short mode")
	}
	rep, err := RunRebuildSweep(RebuildConfig{Seed: 7, Stride: 97})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refused == 0 {
		t.Error("device sweep exercised zero cut points")
	}
}
