// Adversary sweep: the active-attacker counterpart to the fault sweep. Where
// chaos.Run models accidents, RunAdversary mounts *semantic* protocol attacks
// — replay, duplication, reordering, cross-session splicing, forged frames,
// forged plaintext banners, stale medium reads, and whole-medium rollback —
// at every protocol step, and checks the fail-closed contract:
//
//  1. no attack ever yields wrong or stale rows (absorbed attacks fail over
//     to correct results),
//  2. no ack is ever surfaced for a write the replicas do not hold,
//  3. every surfaced failure is typed (classify never returns "untyped"),
//  4. nothing hangs, and
//  5. the whole run is byte-identical for a fixed seed.
package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"ironsafe"
	"ironsafe/internal/adversary"
	"ironsafe/internal/ctl"
	"ironsafe/internal/ingest"
	"ironsafe/internal/pager"
	"ironsafe/internal/resilience"
	"ironsafe/internal/tpch"
)

// AdversaryConfig scripts one active-adversary conformance run.
type AdversaryConfig struct {
	// Seed drives every attack decision; same seed, same run.
	Seed uint64
	// Queries is the broad-phase query count (0 means 12).
	Queries int
	// Nodes is the storage node count (0 means 2).
	Nodes int
	// MaxSteps bounds how deep into each frame stream the targeted grid
	// plants its per-step attacks (0 means 2: the key-confirmation frame and
	// the first data frame).
	MaxSteps int
	// IngestRecords is the ctl-ingest drill's record count (0 means 10).
	IngestRecords int
	// QueryTimeout is the per-operation hang watchdog (0 means 30s).
	QueryTimeout time.Duration
	// IOTimeout bounds each channel Send/Recv (0 means 250ms).
	IOTimeout time.Duration
	// ScaleFactor is the TPC-H volume (0 means 0.001).
	ScaleFactor float64
}

// AdversaryReport is the full run record.
type AdversaryReport struct {
	// Mounted lists the distinct attack classes actually mounted; Attacks is
	// their total count.
	Mounted []adversary.Class
	Attacks int
	// Cells is how many targeted grid cells ran (one attack class at one
	// protocol step each).
	Cells int
	// Succeeded / Failed partition the watchdogged queries.
	Succeeded, Failed int
	// WrongResults counts successful queries whose rows differed from the
	// attack-free reference (must be zero — the core fail-closed invariant).
	WrongResults int
	// Hangs counts watchdog firings (must be zero).
	Hangs int
	// Untyped counts failures that did not map to a known error class
	// (must be zero: every refusal is typed).
	Untyped int
	// AckViolations counts ingest acks not backed by durable rows on every
	// replica (must be zero: a forged or replayed ack may never stand).
	AckViolations int
	// Digest commits to every outcome plus every engine's attack trace: two
	// runs with the same config must produce the same digest.
	Digest string
}

func (c *AdversaryConfig) fill() {
	if c.Queries == 0 {
		c.Queries = 12
	}
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 2
	}
	if c.IngestRecords == 0 {
		c.IngestRecords = 10
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = 250 * time.Millisecond
	}
	if c.ScaleFactor == 0 {
		c.ScaleFactor = 0.001
	}
}

// adversaryHarness carries the state every phase shares: the generated data,
// the attack-free reference digests, the running report, and the digest
// accumulator all phase outcomes and traces feed.
type adversaryHarness struct {
	cfg      *AdversaryConfig
	data     *tpch.Data
	expected []string // reference row digests, indexed like QueryMix
	rep      *AdversaryReport
	acc      hash.Hash
	mounted  map[adversary.Class]int
}

// RunAdversary executes one scripted adversary run and returns its report.
// The phases, in order: A broad randomized frame attacks under query load;
// B a targeted grid planting every frame-attack class at every early protocol
// step, plus identity-unit (preamble/public-key) replay and splice; C the
// ctl-ingest drill (forged banners, attacked acks, forged-ack durability
// audit); D the medium drills (stale reads at reopen, whole-medium rollback);
// E rebuild under replayed and spliced transfer legs.
func RunAdversary(cfg AdversaryConfig) (*AdversaryReport, error) {
	cfg.fill()
	h := &adversaryHarness{
		cfg:     &cfg,
		data:    tpch.Generate(cfg.ScaleFactor),
		rep:     &AdversaryReport{},
		acc:     sha256.New(),
		mounted: map[adversary.Class]int{},
	}

	// Attack-free reference: defines the correct rows for the query mix.
	ref, _, err := h.cluster(nil, nil)
	if err != nil {
		return nil, fmt.Errorf("adversary sweep: reference cluster: %w", err)
	}
	if err := h.load(ref, accessPolicy); err != nil {
		return nil, err
	}
	refSession := ref.NewSession(clientKey)
	h.expected = make([]string, len(QueryMix))
	for i, qn := range QueryMix {
		r, err := refSession.Query(tpch.Queries[qn])
		if err != nil {
			return nil, fmt.Errorf("adversary sweep: reference q%d: %w", qn, err)
		}
		h.expected[i] = digestRows(r.Result)
	}

	for _, phase := range []func() error{
		h.phaseBroad, h.phaseGrid, h.phaseIngest, h.phaseMedium, h.phaseRebuild,
	} {
		if err := phase(); err != nil {
			return nil, err
		}
	}

	for cls, n := range h.mounted {
		if n > 0 {
			h.rep.Mounted = append(h.rep.Mounted, cls)
			h.rep.Attacks += n
		}
	}
	sort.Slice(h.rep.Mounted, func(i, j int) bool { return h.rep.Mounted[i] < h.rep.Mounted[j] })
	h.rep.Digest = hex.EncodeToString(h.acc.Sum(nil))
	return h.rep, nil
}

// cluster builds a secure cluster with the adversary interposed: eng wraps
// every channel (query and rebuild legs both dial through ConnWrapper), and
// medEng wraps every node's raw medium, returning the wrapped devices by
// node so the medium drills can drive them.
func (h *adversaryHarness) cluster(eng, medEng *adversary.Engine) (*ironsafe.Cluster, map[string]*adversary.Device, error) {
	rc := resilience.Config{
		HandshakeTimeout: 500 * time.Millisecond,
		IOTimeout:        h.cfg.IOTimeout,
		// Sleep stays nil: retries back off virtually, so the run's pacing
		// never depends on the wall clock.
	}
	ic := ironsafe.Config{
		Mode:         ironsafe.IronSafe,
		StorageNodes: h.cfg.Nodes,
		Resilience:   &rc,
	}
	if eng != nil {
		ic.ChannelTransport = true
		ic.ConnWrapper = func(site string, conn net.Conn) net.Conn {
			return adversary.WrapConn(conn, site, adversary.StorageProfile, eng)
		}
	}
	var devs map[string]*adversary.Device
	if medEng != nil {
		devs = map[string]*adversary.Device{}
		var mu sync.Mutex
		ic.StorageDeviceWrapper = func(node string, dev pager.BlockDevice) pager.BlockDevice {
			d := adversary.WrapDevice(dev, "medium:"+node, medEng)
			mu.Lock()
			devs[node] = d
			mu.Unlock()
			return d
		}
	}
	c, err := ironsafe.NewCluster(ic)
	return c, devs, err
}

func (h *adversaryHarness) load(c *ironsafe.Cluster, policy string) error {
	if err := c.LoadTPCHData(h.data); err != nil {
		return err
	}
	return c.SetAccessPolicy(policy)
}

// advOutcome is one watchdogged query's normalized result.
type advOutcome struct {
	ok        bool
	class     string
	rowsOK    bool
	failovers int
}

// runQuery submits one query from the mix under the hang watchdog and folds
// the outcome into the report's invariant counters.
func (h *adversaryHarness) runQuery(session *ironsafe.Session, mix int) advOutcome {
	type qr struct {
		res *ironsafe.QueryResult
		err error
	}
	ch := make(chan qr, 1)
	go func() {
		r, err := session.Query(tpch.Queries[QueryMix[mix]])
		ch <- qr{r, err}
	}()
	select {
	case r := <-ch:
		o := advOutcome{class: classify(r.err)}
		if r.err == nil {
			o.ok = true
			o.rowsOK = digestRows(r.res.Result) == h.expected[mix]
			o.failovers = r.res.Stats.Failovers
			h.rep.Succeeded++
			if !o.rowsOK {
				h.rep.WrongResults++
			}
		} else {
			h.rep.Failed++
			if o.class == "untyped" {
				h.rep.Untyped++
			}
		}
		return o
	case <-time.After(h.cfg.QueryTimeout): //ironsafe:allow wallclock -- hang watchdog, the invariant under test
		h.rep.Hangs++
		return advOutcome{class: "hang"}
	}
}

// guard runs a cluster operation (rebuild, restart) under the hang watchdog:
// an attacked control operation that wedges is as broken as a wedged query.
func (h *adversaryHarness) guard(what string, f func() error) error {
	ch := make(chan error, 1)
	go func() { ch <- f() }()
	select {
	case err := <-ch:
		return err
	case <-time.After(h.cfg.QueryTimeout): //ironsafe:allow wallclock -- hang watchdog, the invariant under test
		h.rep.Hangs++
		return fmt.Errorf("adversary sweep: %s hung", what)
	}
}

// absorb folds an engine's attack trace into the digest and its per-class
// counts into the report.
func (h *adversaryHarness) absorb(tag string, eng *adversary.Engine) {
	for _, line := range eng.Trace() {
		fmt.Fprintf(h.acc, "%s %s\n", tag, line)
	}
	for cls, n := range eng.Stats() {
		h.mounted[cls] += n
	}
}

// phaseBroad drives the query mix with every frame-attack class armed at low
// steady rates across all channel legs — the randomized soak that spreads
// attacks over whatever protocol states the run passes through.
func (h *adversaryHarness) phaseBroad() error {
	eng := adversary.NewEngine(h.cfg.Seed,
		adversary.Rule{Site: ":read", Class: adversary.Replay, Prob: 0.04, After: 2},
		adversary.Rule{Site: ":read", Class: adversary.Duplicate, Prob: 0.03, After: 2},
		adversary.Rule{Site: ":read", Class: adversary.Reorder, Prob: 0.02, After: 2},
		adversary.Rule{Site: ":write", Class: adversary.Inject, Prob: 0.03, After: 2},
		adversary.Rule{Site: ":write", Class: adversary.Splice, Prob: 0.02, After: 2},
	)
	c, _, err := h.cluster(eng, nil)
	if err != nil {
		return fmt.Errorf("adversary sweep: broad cluster: %w", err)
	}
	if err := h.load(c, accessPolicy); err != nil {
		return err
	}
	session := c.NewSession(clientKey)
	for qi := 0; qi < h.cfg.Queries; qi++ {
		mix := qi % len(QueryMix)
		o := h.runQuery(session, mix)
		fmt.Fprintf(h.acc, "A q%02d mix=%d ok=%t class=%s rows-ok=%t failovers=%d\n",
			qi, mix, o.ok, o.class, o.ok && o.rowsOK, o.failovers)
	}
	h.absorb("A", eng)
	return nil
}

// phaseGrid is the conformance grid: a rule-less probe run counts protocol
// units per leg, then every frame-attack class is planted at every early step
// of the most-trafficked node's read and write legs — one fresh cluster, one
// fresh engine, exactly one armed attack per cell — plus replay and splice of
// the identity units (preamble, handshake public keys). Step 0 of a frame leg
// is the key-confirmation frame, so the grid covers the handshake itself.
func (h *adversaryHarness) phaseGrid() error {
	const gridMix = 2 // QueryMix[2] == q6: the cheapest query in the mix

	probe := adversary.NewEngine(h.cfg.Seed)
	c, _, err := h.cluster(probe, nil)
	if err != nil {
		return fmt.Errorf("adversary sweep: probe cluster: %w", err)
	}
	if err := h.load(c, accessPolicy); err != nil {
		return err
	}
	if o := h.runQuery(c.NewSession(clientKey), gridMix); !o.ok || !o.rowsOK {
		return fmt.Errorf("adversary sweep: clean probe failed (class=%s)", o.class)
	}
	ids := nodeIDs(h.cfg.Nodes)
	gridNode := ids[0]
	for _, id := range ids {
		if probe.OpsAt(id+":read") > probe.OpsAt(gridNode+":read") {
			gridNode = id
		}
	}

	frameClasses := []adversary.Class{
		adversary.Replay, adversary.Duplicate, adversary.Reorder,
		adversary.Splice, adversary.Inject,
	}
	cell := 0
	for _, dir := range []string{":read", ":write"} {
		leg := gridNode + dir
		steps := probe.OpsAt(leg)
		if steps > h.cfg.MaxSteps {
			steps = h.cfg.MaxSteps
		}
		for _, cls := range frameClasses {
			for step := 0; step < steps; step++ {
				if err := h.gridCell(cell, gridMix, adversary.Rule{
					Site: leg, Class: cls, Prob: 1, After: step, MaxCount: 1,
				}); err != nil {
					return err
				}
				cell++
			}
		}
	}
	// Identity steps: Replay mounts a unit recorded from a previous session,
	// Splice stitches a different session's unit into this connection setup.
	for _, sub := range []string{":read:pubkey", ":write:pubkey", ":write:preamble"} {
		for _, cls := range []adversary.Class{adversary.Replay, adversary.Splice} {
			if err := h.gridCell(cell, gridMix, adversary.Rule{
				Site: gridNode + sub, Class: cls, Prob: 1, MaxCount: 1,
			}); err != nil {
				return err
			}
			cell++
		}
	}
	h.rep.Cells = cell
	return nil
}

func (h *adversaryHarness) gridCell(idx, mix int, rule adversary.Rule) error {
	eng := adversary.NewEngine(h.cfg.Seed^(uint64(idx+1)*0x9e3779b97f4a7c15), rule)
	seedIdentityMaterial(eng, rule)
	c, _, err := h.cluster(eng, nil)
	if err != nil {
		return fmt.Errorf("adversary sweep: cell %d cluster: %w", idx, err)
	}
	if err := h.load(c, accessPolicy); err != nil {
		return err
	}
	o := h.runQuery(c.NewSession(clientKey), mix)
	fmt.Fprintf(h.acc, "B cell=%02d %s@%s+%d ok=%t class=%s rows-ok=%t failovers=%d\n",
		idx, rule.Class, rule.Site, rule.After, o.ok, o.class, o.ok && o.rowsOK, o.failovers)
	h.absorb(fmt.Sprintf("B%02d", idx), eng)
	return nil
}

// seedIdentityMaterial stocks the adversary's library with previous-session
// identity units so identity-step Replay/Splice cells have real-shaped
// material to mount: a stale session's preamble, a stale session's 32-byte
// public key. Frame cells need nothing — the engine records live frames.
func seedIdentityMaterial(eng *adversary.Engine, rule adversary.Rule) {
	switch {
	case strings.HasSuffix(rule.Site, ":pubkey"):
		old := make([]byte, 32)
		for i := range old {
			old[i] = byte(i*37 + 11)
		}
		eng.Record(rule.Site, old)
		eng.Record("previous-session:pubkey", old)
	case strings.HasSuffix(rule.Site, ":preamble"):
		// Shaped exactly like a live query-session preamble: 1-byte length +
		// "sess-NNNNNN-hhhhhhhh" (20 bytes).
		sid := "sess-999999-deadbeef"
		pre := append([]byte{byte(len(sid))}, sid...)
		eng.Record(rule.Site, pre)
		eng.Record("previous-session:preamble", pre)
	}
}

// advListener adapts a channel of pipe ends to net.Listener so a real
// ctl.Server serves MITM-wrapped in-memory connections.
type advListener struct {
	mu     sync.Mutex
	ch     chan net.Conn
	closed bool
}

func newAdvListener() *advListener { return &advListener{ch: make(chan net.Conn, 8)} }

func (l *advListener) Accept() (net.Conn, error) {
	c, ok := <-l.ch
	if !ok {
		return nil, net.ErrClosed
	}
	return c, nil
}

func (l *advListener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.ch)
	}
	return nil
}

func (l *advListener) Addr() net.Addr { return advAddr{} }

// dial hands the server half of a fresh pipe to the accept loop and returns
// the client half.
func (l *advListener) dial() net.Conn {
	a, b := net.Pipe()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		a.Close()
		b.Close()
		return a
	}
	l.ch <- b
	l.mu.Unlock()
	return a
}

type advAddr struct{}

func (advAddr) Network() string { return "adv-pipe" }
func (advAddr) String() string  { return "adv-pipe" }

// phaseIngest attacks the client→cluster control link under streaming ingest:
// forged plaintext overload banners on dial, replayed and duplicated ack
// frames, forged request frames. The data plane stays honest — the drill's
// subject is the ack contract: after the run, every OK-acked record must be
// durable on every replica. A forged ack toward the client can only manifest
// as an acked-but-absent record, which this audit catches.
func (h *adversaryHarness) phaseIngest() error {
	eng := adversary.NewEngine(h.cfg.Seed^0xA5A5A5A5A5A5A5A5,
		adversary.Rule{Site: "ctl:ingest:read:banner", Class: adversary.Banner, Prob: 1, MaxCount: 1},
		adversary.Rule{Site: "ctl:ingest:read", Class: adversary.Replay, Prob: 0.12, After: 3, MaxCount: 2},
		adversary.Rule{Site: "ctl:ingest:read", Class: adversary.Duplicate, Prob: 0.10, After: 3, MaxCount: 2},
		adversary.Rule{Site: "ctl:ingest:write", Class: adversary.Inject, Prob: 0.10, After: 3, MaxCount: 2},
	)
	c, _, err := h.cluster(nil, nil)
	if err != nil {
		return fmt.Errorf("adversary sweep: ingest cluster: %w", err)
	}
	if err := h.load(c, ingestAccessPolicy); err != nil {
		return err
	}
	for _, s := range c.Storage {
		if _, err := s.DB().Execute("CREATE TABLE ingest_ev (id INTEGER, client TEXT, note TEXT)"); err != nil {
			return err
		}
	}
	pipe, err := c.IngestPipeline(ingest.Config{BatchMax: 4, QueueMax: 256})
	if err != nil {
		return err
	}
	defer pipe.Close()

	psk := []byte("adversary-ctl-psk")
	srv := ctl.NewServer(psk)
	srv.HandshakeTimeout = 2 * time.Second
	ingest.RegisterCtl(srv, pipe)
	ln := newAdvListener()
	defer ln.Close()
	go srv.Serve(ln)

	// Generous I/O bounds: the attacks fail fast via AEAD rejection; the
	// deadlines only exist to bound a truly wedged pipe.
	rcfg := resilience.Config{IOTimeout: 5 * time.Second}.WithDefaults()
	dials := 0
	dial := func() (*ctl.Client, error) {
		for attempt := 0; attempt < 6; attempt++ {
			wrapped := adversary.WrapConn(ln.dial(), "ctl:ingest", adversary.CtlProfile, eng)
			cli, err := ctl.ClientConn(wrapped, psk, rcfg)
			class := classify(err)
			fmt.Fprintf(h.acc, "C dial%02d class=%s\n", dials, class)
			dials++
			if err == nil {
				return cli, nil
			}
			wrapped.Close()
			if class == "untyped" {
				h.rep.Untyped++
			}
		}
		return nil, errors.New("adversary sweep: ctl dial attempts exhausted")
	}

	cli, err := dial()
	if err != nil {
		return err
	}
	acked := make([]bool, h.cfg.IngestRecords)
	for ri := 0; ri < h.cfg.IngestRecords; ri++ {
		sql := fmt.Sprintf("INSERT INTO ingest_ev (id, client, note) VALUES (%d, 'adv', '%s')",
			9000+ri, ingestPayload(h.cfg.Seed, 99, ri, 0))
		ack, err := ingest.SubmitCtl(cli, ingest.Record{Client: ingestClientKey, SQL: sql})
		class := classify(err)
		affected := -1
		if err == nil {
			acked[ri] = true
			affected = ack.Affected
			if affected != 1 {
				h.rep.AckViolations++
			}
		}
		fmt.Fprintf(h.acc, "C r%02d ok=%t class=%s affected=%d\n", ri, err == nil, class, affected)
		if err != nil {
			if class == "untyped" {
				h.rep.Untyped++
			}
			// The channel is torn or poisoned; re-dial. The record is NOT
			// retried — its fate is unknown, and only the ack contract below
			// judges it: errored-but-applied is legal, acked-but-absent never.
			cli.Close()
			if cli, err = dial(); err != nil {
				return err
			}
		}
	}
	cli.Close()

	// The forged-ack audit: every acked insert is durable on every replica.
	ackedCount := 0
	for ri, ok := range acked {
		if !ok {
			continue
		}
		ackedCount++
		for _, s := range c.Storage {
			res, err := s.DB().Execute(fmt.Sprintf("SELECT count(*) FROM ingest_ev WHERE id = %d", 9000+ri))
			if err != nil {
				return err
			}
			if res.Rows[0][0].AsInt() != 1 {
				h.rep.AckViolations++
			}
		}
	}
	// And the replicas agree with each other byte-for-byte logically.
	var first string
	for i, s := range c.Storage {
		d, err := ingestTableDigest(s.DB(), "ingest_ev")
		if err != nil {
			return err
		}
		if i == 0 {
			first = d
		} else if d != first {
			return fmt.Errorf("adversary sweep: ingest replica %d diverged", i)
		}
	}
	fmt.Fprintf(h.acc, "C final %s acked=%d violations=%d\n", first, ackedCount, h.rep.AckViolations)
	h.absorb("C", eng)
	return nil
}

// phaseMedium drives the valid-old-state medium attacks against one node:
// first a reopen whose every read of a since-changed block serves the
// captured stale image (the store's recovery or integrity sweep must refuse
// readmission), then a whole-medium rollback to the captured state (same
// refusal), then an honest restore that must readmit cleanly.
func (h *adversaryHarness) phaseMedium() error {
	eng := adversary.NewEngine(h.cfg.Seed ^ 0x5D5D5D5D5D5D5D5D)
	c, devs, err := h.cluster(nil, eng)
	if err != nil {
		return fmt.Errorf("adversary sweep: medium cluster: %w", err)
	}
	if err := h.load(c, accessPolicy); err != nil {
		return err
	}
	ids := nodeIDs(h.cfg.Nodes)
	victim := ids[len(ids)-1]
	dev := devs[victim]
	if dev == nil {
		return fmt.Errorf("adversary sweep: no wrapped medium for %s", victim)
	}

	// Capture now, then evolve the media past this point so the captured
	// images are genuinely stale valid states — mirroring chaos.Run.
	dev.Capture()
	if err := markMedia(c); err != nil {
		return err
	}
	good, err := c.SnapshotStorage(victim)
	if err != nil {
		return err
	}
	session := c.NewSession(clientKey)

	// Stale-read reopen: recovery and the integrity sweep read the medium,
	// and every shadowed block serves its captured old image. The node must
	// be refused — at reopen (journal recovery detects the stale anchor) or
	// at readmission (the full sweep does) — and the refusal must be typed.
	c.KillStorage(victim)
	dev.ArmStaleReads(1 << 20)
	refusedAt := ""
	switch err := h.guard("stale-read restart", func() error { return c.RestartStorage(victim, nil) }); {
	case errors.Is(err, ironsafe.ErrNodeNotReadmitted):
		refusedAt = "reopen"
	case err != nil:
		return fmt.Errorf("adversary sweep: stale-read restart refusal had wrong type: %w", err)
	default:
		if err := c.ReattestStorage(victim); err == nil {
			return errors.New("adversary sweep: node serving stale reads was readmitted")
		} else if !errors.Is(err, ironsafe.ErrNodeNotReadmitted) {
			return fmt.Errorf("adversary sweep: stale-read refusal had wrong type: %w", err)
		}
		refusedAt = "readmission"
	}
	fmt.Fprintf(h.acc, "D stale-read refused at %s\n", refusedAt)

	// Disarm; the medium underneath was never altered, so an honest reopen
	// readmits and serves correct rows.
	dev.ArmStaleReads(0)
	if err := h.guard("honest restart", func() error { return c.RestartStorage(victim, nil) }); err != nil {
		return fmt.Errorf("adversary sweep: honest restart after stale reads: %w", err)
	}
	if err := c.ReattestStorage(victim); err != nil {
		return fmt.Errorf("adversary sweep: honest readmission after stale reads: %w", err)
	}
	o := h.runQuery(session, 0)
	fmt.Fprintf(h.acc, "D post-stale ok=%t class=%s rows-ok=%t\n", o.ok, o.class, o.ok && o.rowsOK)
	if !o.ok || !o.rowsOK {
		return fmt.Errorf("adversary sweep: post-stale query wrong (class=%s)", o.class)
	}

	// Whole-medium rollback to the captured valid old state.
	c.KillStorage(victim)
	if err := dev.Rollback(); err != nil {
		return err
	}
	switch err := h.guard("rollback restart", func() error { return c.RestartStorage(victim, nil) }); {
	case errors.Is(err, ironsafe.ErrNodeNotReadmitted):
		fmt.Fprintf(h.acc, "D rollback refused at reopen class=%s\n", classify(err))
	case err != nil:
		return fmt.Errorf("adversary sweep: rollback restart refusal had wrong type: %w", err)
	default:
		if err := c.ReattestStorage(victim); err == nil {
			return errors.New("adversary sweep: rolled-back node was readmitted")
		} else if !errors.Is(err, ironsafe.ErrNodeNotReadmitted) {
			return fmt.Errorf("adversary sweep: rollback refusal had wrong type: %w", err)
		}
		fmt.Fprintf(h.acc, "D rollback refused at readmission\n")
	}

	// Honest restore: current state back, readmission passes, rows correct.
	if err := h.guard("restore restart", func() error { return c.RestartStorage(victim, good) }); err != nil {
		return err
	}
	if err := c.ReattestStorage(victim); err != nil {
		return fmt.Errorf("adversary sweep: honest restore refused: %w", err)
	}
	o = h.runQuery(session, 0)
	fmt.Fprintf(h.acc, "D restored ok=%t class=%s rows-ok=%t\n", o.ok, o.class, o.ok && o.rowsOK)
	if !o.ok || !o.rowsOK {
		return fmt.Errorf("adversary sweep: post-restore query wrong (class=%s)", o.class)
	}
	h.absorb("D", eng)
	return nil
}

// phaseRebuild attacks the rebuild transfer itself: the import leg toward the
// rebuilt node replays stale chunks, the export leg from the donor splices in
// other-session material (the malicious-donor shape). Attacked attempts must
// fail typed with the node still quarantined; the bounded attack budget then
// lets a clean attempt through, after which readmission and correct rows are
// required.
func (h *adversaryHarness) phaseRebuild() error {
	eng := adversary.NewEngine(h.cfg.Seed ^ 0xEBEBEBEBEBEBEBEB)
	c, _, err := h.cluster(eng, nil)
	if err != nil {
		return fmt.Errorf("adversary sweep: rebuild cluster: %w", err)
	}
	if err := h.load(c, accessPolicy); err != nil {
		return err
	}
	ids := nodeIDs(h.cfg.Nodes)
	victim, donor := ids[len(ids)-1], ids[0]
	c.KillStorage(victim)

	// Each rebuild attempt dials fresh legs with fresh keys, so a replayed
	// unit is cross-session material by construction.
	eng.Arm(adversary.Rule{Site: "rebuild:" + victim, Class: adversary.Replay, Prob: 1, MaxCount: 2})
	eng.Arm(adversary.Rule{Site: "rebuild:" + donor, Class: adversary.Splice, Prob: 1, MaxCount: 2})

	var rbErr error
	for attempt := 0; attempt < 6; attempt++ {
		rbErr = h.guard("rebuild", func() error { return c.RebuildStorage(victim, donor) })
		class := classify(rbErr)
		fmt.Fprintf(h.acc, "E rebuild attempt=%d ok=%t class=%s\n", attempt, rbErr == nil, class)
		if rbErr == nil {
			break
		}
		if class == "untyped" {
			h.rep.Untyped++
		}
		if !c.NodeDown(victim) {
			return errors.New("adversary sweep: failed rebuild left the node admitted")
		}
	}
	if rbErr != nil {
		return fmt.Errorf("adversary sweep: rebuild never recovered: %w", rbErr)
	}
	if err := c.ReattestStorage(victim); err != nil {
		return fmt.Errorf("adversary sweep: rebuilt node refused: %w", err)
	}
	o := h.runQuery(c.NewSession(clientKey), 0)
	fmt.Fprintf(h.acc, "E rebuilt ok=%t class=%s rows-ok=%t\n", o.ok, o.class, o.ok && o.rowsOK)
	if !o.ok || !o.rowsOK {
		return fmt.Errorf("adversary sweep: post-rebuild query wrong (class=%s)", o.class)
	}
	h.absorb("E", eng)
	return nil
}
