package chaos

import "testing"

// TestIngestSweep drives the full ingest-under-chaos sweep: concurrent
// policy-authorized ingest beside browned-out TPC-H reads, a power cut at
// every write boundary of the streaming write path (clean and torn), and node
// kills mid-batch ridden out via restart + readmission. The acked-write
// contract must hold at every point: no acked record lost, no torn batch
// visible, no hang, no untyped error.
func TestIngestSweep(t *testing.T) {
	rep, err := RunIngest(IngestConfig{Seed: 42, Tear: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nacked != 0 {
		t.Errorf("%d records nacked under chaos, want 0 (every record must ack)", rep.Nacked)
	}
	if rep.TornReads != 0 {
		t.Errorf("%d snapshot probes saw a torn batch, want 0", rep.TornReads)
	}
	if rep.WrongReads != 0 {
		t.Errorf("%d concurrent reads returned wrong rows, want 0", rep.WrongReads)
	}
	if rep.Hangs != 0 {
		t.Errorf("%d hangs, want 0", rep.Hangs)
	}
	if rep.Untyped != 0 {
		t.Errorf("%d untyped errors, want 0 (every write-path failure must be typed)", rep.Untyped)
	}
	if rep.Points != 2*rep.Writes {
		t.Errorf("swept %d points over %d writes, want clean+torn at every k", rep.Points, rep.Writes)
	}
	if rep.LandedOld == 0 {
		t.Error("no crash point recovered to a record's pre-image (journal always won?)")
	}
	if rep.LandedNew == 0 {
		t.Error("no crash point replayed a record's journaled commit (redo never ran?)")
	}
	if rep.Kills != 2 {
		t.Errorf("%d node kills ridden out, want 2 (authority and replica)", rep.Kills)
	}
	if rep.Acked == 0 || rep.Batches == 0 {
		t.Errorf("phase A acked %d records in %d batches, want both nonzero", rep.Acked, rep.Batches)
	}
	t.Logf("ingest sweep: %d acked (%d batches, %d coalesced), reads %d ok / %d failed, %d points (%d old / %d new), %d kills, digest %s",
		rep.Acked, rep.Batches, rep.Coalesced, rep.ReadsOK, rep.ReadsFailed,
		rep.Points, rep.LandedOld, rep.LandedNew, rep.Kills, rep.Digest[:16])
}

// TestIngestSweepDeterministicPerSeed: same config, byte-identical digest —
// concurrency, brown-outs, and recoveries included; a different seed diverges.
func TestIngestSweepDeterministicPerSeed(t *testing.T) {
	cfg := IngestConfig{Seed: 7, Tear: true}
	a, err := RunIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same seed diverged:\n  run1 %s\n  run2 %s", a.Digest, b.Digest)
	}
	cfg.Seed = 8
	c, err := RunIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Error("different seeds produced identical sweeps (payloads not seed-driven?)")
	}
}
