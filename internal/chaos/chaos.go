// Package chaos is IronSafe's fault-injection test harness: it drives a
// multi-node cluster through a long sequence of policy-authorized queries
// while a deterministic fault plan attacks the channels beneath the AEAD
// boundary — connection resets, stalls, corrupted and truncated frames,
// slow peers, whole-node crashes, and restart-with-rollback — and checks the
// three resilience invariants the paper's deployment model needs:
//
//  1. no query ever hangs (deadlines + circuit breaking bound every path),
//  2. no query ever returns a wrong result (a faulted query either fails
//     over to a correct result or fails fast with a typed error), and
//  3. the whole run is byte-for-byte reproducible for a fixed seed.
package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"ironsafe"
	"ironsafe/internal/ctl"
	"ironsafe/internal/faultinject"
	"ironsafe/internal/hostengine"
	"ironsafe/internal/ingest"
	"ironsafe/internal/monitor"
	"ironsafe/internal/resilience"
	"ironsafe/internal/securestore"
	"ironsafe/internal/sql/exec"
	"ironsafe/internal/tpch"
	"ironsafe/internal/transport"
)

// Config scripts one chaos run.
type Config struct {
	// Seed drives every fault decision; same seed, same run.
	Seed uint64
	// Queries is how many queries to submit (rotating through QueryMix).
	Queries int
	// Mode is the cluster configuration under attack.
	Mode ironsafe.Mode
	// Nodes is the storage node count (0 means 2).
	Nodes int
	// Rules arm the fault classes; see DefaultRules.
	Rules []faultinject.Rule
	// CrashRestartAfter is how many queries after a crash the node is
	// restarted and re-attested (0 means 3).
	CrashRestartAfter int
	// RollbackAt scripts a kill + restart-with-stale-medium drill before
	// that query index; negative disables it.
	RollbackAt int
	// QueryTimeout is the per-query hang watchdog (0 means 30s).
	QueryTimeout time.Duration
	// IOTimeout bounds each Send/Recv so stalled peers fail fast
	// (0 means 250ms).
	IOTimeout time.Duration
	// ScaleFactor is the TPC-H volume (0 means 0.001).
	ScaleFactor float64
}

// QueryMix is the rotation of TPC-H queries the run submits — the subset the
// split executor supports end to end.
var QueryMix = []int{1, 3, 6, 13}

// clientKey identifies the chaos client; accessPolicy grants it reads —
// faults must not bypass the policy path, so every chaos query runs under a
// real authorization.
const (
	clientKey    = "chaosclient"
	accessPolicy = "read :- sessionKeyIs(chaosclient)"
)

// DefaultRules arm every channel fault class at low, steady rates, letting
// handshakes mostly complete (After) so faults spread across the protocol
// rather than all landing on byte one.
func DefaultRules() []faultinject.Rule {
	return []faultinject.Rule{
		{Site: ":read", Class: faultinject.Corrupt, Prob: 0.02},
		{Site: ":read", Class: faultinject.Truncate, Prob: 0.015},
		{Site: ":write", Class: faultinject.Reset, Prob: 0.02},
		{Site: ":read", Class: faultinject.Stall, Prob: 0.01, After: 4},
		{Site: ":read", Class: faultinject.Slow, Prob: 0.05},
		{Site: "storage-01", Class: faultinject.Crash, Prob: 0.004, After: 8, MaxCount: 1},
	}
}

// Outcome is one query's normalized result.
type Outcome struct {
	Query int
	SQL   int // index into QueryMix
	OK    bool
	// Class is the normalized failure class ("ok" on success) — typed, so
	// it is stable across runs.
	Class string
	// RowDigest is the canonical encoding digest of the result rows.
	RowDigest string
	Failovers int
	Fallback  bool
	// Hedges counts hedged offload races within the query (gray sweep only;
	// the fail-stop digest predates the field and does not cover it).
	Hedges int
}

// Report is the full run record.
type Report struct {
	Outcomes []Outcome
	// Classes are the distinct fault classes actually injected.
	Classes []faultinject.Class
	// Digest commits to every outcome plus the fault trace: two runs with
	// the same Config must produce the same digest.
	Digest string
	// Hangs counts watchdog firings (must be zero).
	Hangs int
	// WrongResults counts successful queries whose rows differed from the
	// fault-free reference (must be zero).
	WrongResults int
	// Succeeded / Failed partition the outcomes.
	Succeeded, Failed int
	// Untyped counts failures that did not map to a known error class
	// (must be zero: every failure is fail-fast AND typed).
	Untyped int
}

func (c *Config) fill() {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.CrashRestartAfter == 0 {
		c.CrashRestartAfter = 3
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = 250 * time.Millisecond
	}
	if c.ScaleFactor == 0 {
		c.ScaleFactor = 0.001
	}
	if c.Rules == nil {
		c.Rules = DefaultRules()
	}
}

// classify maps an error to its stable class token.
func classify(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ironsafe.ErrNodeNotReadmitted):
		// Checked before ErrRebuilding: a readmission refusal may wrap the
		// store's rebuild-marker error and must keep its own class.
		return "not-readmitted"
	case errors.Is(err, ironsafe.ErrEpochFenced):
		return "epoch-fenced"
	case errors.Is(err, ironsafe.ErrNodeNotDown):
		return "not-down"
	case errors.Is(err, securestore.ErrRebuilding):
		return "rebuilding"
	case errors.Is(err, hostengine.ErrAllNodesFailed):
		return "all-nodes-failed"
	case errors.Is(err, ironsafe.ErrNoStorage):
		return "no-storage"
	case errors.Is(err, resilience.ErrCircuitOpen):
		return "circuit-open"
	case errors.Is(err, resilience.ErrNodeDown):
		return "node-down"
	case errors.Is(err, resilience.ErrBudgetExhausted):
		return "budget-exhausted"
	case errors.Is(err, resilience.ErrExhausted):
		return "exhausted"
	case errors.Is(err, transport.ErrAuth):
		return "channel-auth"
	case errors.Is(err, transport.ErrFrameTooLarge):
		return "channel-framing"
	case errors.Is(err, transport.ErrMalformed):
		return "channel-malformed"
	// A torn channel — the peer closed mid-exchange, typically because it
	// detected an attack on its side and failed closed. The tear itself is a
	// recognizable condition, not an untyped leak; retry and failover absorb
	// it like any connection loss.
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe), errors.Is(err, net.ErrClosed):
		return "channel-torn"
	// Adversary-path classes: every way the secure store can refuse
	// tampered, stale, or rolled-back state must classify, so the adversary
	// sweep can assert no attack ever surfaces untyped.
	case errors.Is(err, securestore.ErrFreshness):
		return "freshness"
	case errors.Is(err, securestore.ErrIntegrity):
		return "integrity"
	case errors.Is(err, securestore.ErrJournalCorrupt):
		return "journal-corrupt"
	case errors.Is(err, securestore.ErrRebuildMismatch):
		return "rebuild-mismatch"
	case errors.Is(err, faultinject.ErrInjected):
		return "injected"
	// Write-path classes: the ingest sweep demands that every refusal on the
	// streaming write path is as typed as the read path's.
	case errors.Is(err, ctl.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, monitor.ErrDenied):
		return "denied"
	case errors.Is(err, ingest.ErrNotDML):
		return "not-dml"
	case errors.Is(err, ingest.ErrClosed):
		return "ingest-closed"
	case errors.Is(err, ingest.ErrDiverged):
		return "ingest-diverged"
	case errors.Is(err, securestore.ErrStoreFailed):
		return "store-failed"
	default:
		return "untyped"
	}
}

func digestRows(res *exec.Result) string {
	blob, err := exec.EncodeResult(res)
	if err != nil {
		return "encode-error"
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:8])
}

func newCluster(cfg *Config, plan *faultinject.Plan) (*ironsafe.Cluster, error) {
	rc := resilience.Config{
		HandshakeTimeout: 500 * time.Millisecond,
		IOTimeout:        cfg.IOTimeout,
		// Sleep stays nil: retries back off virtually, so the chaos run's
		// pacing never depends on the wall clock.
	}
	ic := ironsafe.Config{
		Mode:         cfg.Mode,
		StorageNodes: cfg.Nodes,
		Resilience:   &rc,
	}
	if plan != nil {
		ic.ChannelTransport = true
		ic.ConnWrapper = func(node string, conn net.Conn) net.Conn {
			return faultinject.WrapConn(conn, node, plan)
		}
	}
	return ironsafe.NewCluster(ic)
}

// Run executes one scripted chaos run and returns its report.
func Run(cfg Config) (*Report, error) {
	cfg.fill()
	data := tpch.Generate(cfg.ScaleFactor)

	// Reference run: same data, same mode, no faults. Defines the correct
	// rows for every query in the mix.
	ref, err := newCluster(&cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("chaos: reference cluster: %w", err)
	}
	if err := ref.LoadTPCHData(data); err != nil {
		return nil, err
	}
	if err := ref.SetAccessPolicy(accessPolicy); err != nil {
		return nil, err
	}
	refSession := ref.NewSession(clientKey)
	expected := make([]string, len(QueryMix))
	for i, qn := range QueryMix {
		r, err := refSession.Query(tpch.Queries[qn])
		if err != nil {
			return nil, fmt.Errorf("chaos: reference q%d: %w", qn, err)
		}
		expected[i] = digestRows(r.Result)
	}

	// Cluster under attack.
	plan := faultinject.NewPlan(cfg.Seed, cfg.Rules...)
	c, err := newCluster(&cfg, plan)
	if err != nil {
		return nil, fmt.Errorf("chaos: cluster: %w", err)
	}
	if err := c.LoadTPCHData(data); err != nil {
		return nil, err
	}
	if err := c.SetAccessPolicy(accessPolicy); err != nil {
		return nil, err
	}

	// Evolve the secure media past load state so a rollback to the
	// pre-marker snapshot is genuinely stale (SELECT-only workloads would
	// otherwise leave nothing for the freshness check to catch). Applied
	// identically on every node to keep replicas equivalent.
	stale := make(map[string]*ironsafe.MediumSnapshot)
	for _, id := range nodeIDs(cfg.Nodes) {
		snap, err := c.SnapshotStorage(id)
		if err != nil {
			return nil, err
		}
		stale[id] = snap
	}
	if err := markMedia(c); err != nil {
		return nil, err
	}

	// Crash scheduling: the plan's crash callback downs the node; the run
	// loop restarts + re-attests it CrashRestartAfter queries later.
	restartAt := map[string]int{}
	queryIdx := 0
	plan.OnCrash = func(node string) {
		c.KillStorage(node)
		if _, scheduled := restartAt[node]; !scheduled {
			restartAt[node] = queryIdx + cfg.CrashRestartAfter
		}
	}

	rep := &Report{}
	session := c.NewSession(clientKey)
	for queryIdx = 0; queryIdx < cfg.Queries; queryIdx++ {
		// Scripted rollback drill: kill a node, restart it from the stale
		// snapshot, and require readmission to refuse it.
		if queryIdx == cfg.RollbackAt {
			if err := rollbackDrill(c, plan, stale); err != nil {
				return nil, err
			}
		}
		// Due restarts: node comes back, but only re-enters the offload
		// candidate set after the integrity sweep and re-attestation pass.
		for node, due := range restartAt {
			if queryIdx >= due {
				delete(restartAt, node)
				if err := c.RestartStorage(node, nil); err != nil {
					return nil, err
				}
				if err := c.ReattestStorage(node); err != nil {
					return nil, fmt.Errorf("chaos: readmitting %s: %w", node, err)
				}
			}
		}

		mix := queryIdx % len(QueryMix)
		out := Outcome{Query: queryIdx, SQL: mix}
		type qr struct {
			res *ironsafe.QueryResult
			err error
		}
		ch := make(chan qr, 1)
		go func() {
			r, err := session.Query(tpch.Queries[QueryMix[mix]])
			ch <- qr{r, err}
		}()
		select {
		case r := <-ch:
			out.Class = classify(r.err)
			if r.err == nil {
				out.OK = true
				out.RowDigest = digestRows(r.res.Result)
				out.Failovers = r.res.Stats.Failovers
				out.Fallback = r.res.Stats.HostFallback
				rep.Succeeded++
				if out.RowDigest != expected[mix] {
					rep.WrongResults++
				}
			} else {
				rep.Failed++
				if out.Class == "untyped" {
					rep.Untyped++
				}
			}
		case <-time.After(cfg.QueryTimeout): //ironsafe:allow wallclock -- hang watchdog, the invariant under test
			out.Class = "hang"
			rep.Hangs++
		}
		rep.Outcomes = append(rep.Outcomes, out)
	}

	rep.Classes = plan.ClassesInjected()
	rep.Digest = digestRun(rep, plan)
	return rep, nil
}

// nodeIDs mirrors the cluster's deterministic node naming.
func nodeIDs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("storage-%02d", i+1)
	}
	return out
}

// markMedia writes a marker table on every node so the media diverge from
// their load-time snapshots.
func markMedia(c *ironsafe.Cluster) error {
	for _, s := range c.Storage {
		if _, err := s.DB().Execute("CREATE TABLE chaos_epoch (n INTEGER)"); err != nil {
			return err
		}
		if _, err := s.DB().Execute("INSERT INTO chaos_epoch VALUES (1)"); err != nil {
			return err
		}
	}
	return nil
}

// rollbackDrill kills the last node, restarts it from its stale pre-marker
// snapshot, and verifies the cluster refuses it; the node then restarts from
// honest state and rejoins. On secure configurations the refusal now lands
// at RestartStorage itself: the reopen runs the secure store's journal
// recovery, which distinguishes a mid-commit crash (recoverable) from a
// rolled-back medium (ErrFreshness) before re-attestation even starts.
func rollbackDrill(c *ironsafe.Cluster, plan *faultinject.Plan, stale map[string]*ironsafe.MediumSnapshot) error {
	ids := nodeIDs(len(c.Storage))
	victim := ids[len(ids)-1]
	good, err := c.SnapshotStorage(victim)
	if err != nil {
		return err
	}
	c.KillStorage(victim)
	plan.Record(faultinject.Crash, "drill:"+victim)
	secureStore := c.Mode() == ironsafe.IronSafe || c.Mode() == ironsafe.StorageOnlySecure
	switch err := c.RestartStorage(victim, stale[victim]); {
	case errors.Is(err, ironsafe.ErrNodeNotReadmitted):
		if !secureStore {
			return fmt.Errorf("chaos: non-secure store refused a restart: %w", err)
		}
	case err != nil:
		return err
	default:
		// The reopen accepted the medium (non-secure stores cannot detect
		// rollback); readmission is the remaining gate.
		if err := c.ReattestStorage(victim); err == nil {
			if secureStore {
				return errors.New("chaos: rolled-back node was readmitted")
			}
		} else if !errors.Is(err, ironsafe.ErrNodeNotReadmitted) {
			return fmt.Errorf("chaos: rollback refusal had wrong type: %w", err)
		}
	}
	plan.Record(faultinject.Rollback, "drill:"+victim)
	// Honest restart: back to the current state, readmission must pass.
	if err := c.RestartStorage(victim, good); err != nil {
		return err
	}
	if err := c.ReattestStorage(victim); err != nil {
		return fmt.Errorf("chaos: honest restart refused: %w", err)
	}
	return nil
}

// digestRun commits to the run: every outcome line plus the fault trace.
func digestRun(rep *Report, plan *faultinject.Plan) string {
	var b strings.Builder
	for _, o := range rep.Outcomes {
		fmt.Fprintf(&b, "q%03d mix=%d ok=%t class=%s rows=%s failovers=%d fallback=%t\n",
			o.Query, o.SQL, o.OK, o.Class, o.RowDigest, o.Failovers, o.Fallback)
	}
	for _, line := range plan.Trace() {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
