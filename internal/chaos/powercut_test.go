package chaos

import (
	"errors"
	"testing"

	"ironsafe"
	"ironsafe/internal/faultinject"
	"ironsafe/internal/pager"
	"ironsafe/internal/tpch"
)

// TestPowerCutSweepEveryBoundary is the crash-consistency acceptance gate:
// a power cut at EVERY block-write boundary of a multi-transaction workload
// — clean and torn — must recover to exactly the old or the new state of the
// interrupted transaction. RunSweep fails on the first violating k.
func TestPowerCutSweepEveryBoundary(t *testing.T) {
	rep, err := RunSweep(SweepConfig{Seed: 42, Tear: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points != 2*rep.Writes {
		t.Errorf("swept %d points over %d writes, want clean+torn at every k", rep.Points, rep.Writes)
	}
	if rep.LandedOld == 0 {
		t.Error("no crash point recovered to the pre-transaction state (journal always won?)")
	}
	if rep.LandedNew == 0 {
		t.Error("no crash point replayed the journaled transaction (redo never ran?)")
	}
	t.Logf("sweep: %d writes, %d points, %d landed old / %d landed new, digest %s",
		rep.Writes, rep.Points, rep.LandedOld, rep.LandedNew, rep.Digest[:16])
}

// TestPowerCutSweepDeterministicPerSeed re-runs the identical sweep: the
// digests (covering every crash point's landing) must match byte for byte,
// and a different seed must diverge.
func TestPowerCutSweepDeterministicPerSeed(t *testing.T) {
	cfg := SweepConfig{Seed: 7, Txns: 3, PagesPerTxn: 2, Tear: true}
	a, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same seed diverged:\n  run1 %s\n  run2 %s", a.Digest, b.Digest)
	}
	cfg.Seed = 8
	c, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Error("different seeds produced identical sweeps (workload not seed-driven?)")
	}
}

// TestClusterPowerCutCrashReadmitted cuts power to storage-02 in the middle
// of a group commit, then walks the node through the full lifecycle: restart
// runs journal recovery (a crash is not a rollback, so RestartStorage must
// succeed), re-attestation readmits it — while a restart from a rolled-back
// medium is still refused with ErrNodeNotReadmitted.
func TestClusterPowerCutCrashReadmitted(t *testing.T) {
	var cut *faultinject.PowerCut
	c, err := ironsafe.NewCluster(ironsafe.Config{
		Mode:         ironsafe.IronSafe,
		StorageNodes: 2,
		StorageDeviceWrapper: func(node string, dev pager.BlockDevice) pager.BlockDevice {
			if node != "storage-02" {
				return dev
			}
			cut = faultinject.NewPowerCut(dev, node)
			return cut
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cut == nil {
		t.Fatal("device wrapper never installed on storage-02")
	}
	if err := c.LoadTPCHData(tpch.Generate(0.001)); err != nil {
		t.Fatal(err)
	}
	stale, err := c.SnapshotStorage("storage-02")
	if err != nil {
		t.Fatal(err)
	}

	// Cut power at the second block write of the next commit: the journal
	// record lands, the in-place writes do not — the canonical crash window.
	cut.Arm(2, false, 7)
	err = markMedia(c)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("markMedia over a dying medium = %v, want injected", err)
	}
	c.KillStorage("storage-02")
	cut.Disarm()
	cut.Revive()

	// A crashed-mid-commit node recovers and is readmitted.
	if err := c.RestartStorage("storage-02", nil); err != nil {
		t.Fatalf("crash recovery restart refused: %v", err)
	}
	if err := c.ReattestStorage("storage-02"); err != nil {
		t.Fatalf("recovered node not readmitted: %v", err)
	}
	if c.NodeDown("storage-02") {
		t.Error("readmitted node still marked down")
	}
	good, err := c.SnapshotStorage("storage-02")
	if err != nil {
		t.Fatal(err)
	}

	// A rolled-back medium is not a crash: restart must refuse it.
	c.KillStorage("storage-02")
	err = c.RestartStorage("storage-02", stale)
	if !errors.Is(err, ironsafe.ErrNodeNotReadmitted) {
		t.Fatalf("rolled-back restart = %v, want ErrNodeNotReadmitted", err)
	}
	if !c.NodeDown("storage-02") {
		t.Error("refused node left the quarantine set")
	}

	// Honest restart from the recovered state readmits again.
	if err := c.RestartStorage("storage-02", good); err != nil {
		t.Fatal(err)
	}
	if err := c.ReattestStorage("storage-02"); err != nil {
		t.Fatalf("honest restart refused: %v", err)
	}
}
