package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"strings"
	"time"

	"ironsafe"
	"ironsafe/internal/faultinject"
	"ironsafe/internal/resilience"
	"ironsafe/internal/tpch"
)

// GrayConfig scripts one gray-failure run: a cluster where one node does not
// crash but goes *slow* — the paper's fail-stop machinery (down sets, epochs,
// re-attestation) never triggers, so the tail-tolerance layer (deadline
// budgets, latency-outlier soft-ejection, hedged offloads) is the only
// defense under test.
type GrayConfig struct {
	// Seed drives every fault decision; same seed, same run.
	Seed uint64
	// Queries is how many queries to submit (rotating through QueryMix).
	Queries int
	// Nodes is the storage node count (0 means 3 — ejection needs a cohort).
	Nodes int
	// GrayNode is the victim (default storage-01: the proof-order primary, so
	// its brown-out exercises both ejection and hedged races).
	GrayNode string
	// SlowOps bounds the victim's Slow injections per channel leg; once
	// exhausted the node runs clean again, so the run must observe recovery
	// (readmission) as well as ejection. 0 means 30 — roughly the first
	// third of the default run, leaving the rest for the probe-driven EWMA
	// decay to readmit the node.
	SlowOps int
	// StallOps bounds the victim's Stall injections (deadline-bounded hangs;
	// these consume retry budget). 0 means 2.
	StallOps int
	// QueryTimeout is the per-query hang watchdog (0 means 30s).
	QueryTimeout time.Duration
	// IOTimeout bounds each Send/Recv so stalls fail fast (0 means 250ms).
	IOTimeout time.Duration
	// ScaleFactor is the TPC-H volume (0 means 0.001).
	ScaleFactor float64
}

// GrayReport is the full gray-failure run record.
type GrayReport struct {
	Outcomes []Outcome
	// Digest commits to the deterministic outcome fields (index, mix, ok,
	// class, row digest, failovers, hedges): two runs with the same config
	// must match byte for byte. The fault plan's trace stays out — hedged
	// legs interleave channel operations across site streams, so the
	// trace's global ordering is scheduling-dependent even though each
	// stream (and every outcome) is not.
	Digest string
	// Invariant counters (must all be zero).
	Hangs, WrongResults, Untyped int
	// Succeeded / Failed partition the outcomes.
	Succeeded, Failed int
	// BudgetExhausted counts queries refused because their deadline budget
	// ran dry — bounded overrun, never a hang.
	BudgetExhausted int
	// Hedges / HedgeWins total the hedged offload races across the run.
	Hedges, HedgeWins int
	// Ejections / Readmissions are the tracker's soft-ejection event
	// counters: the gray node must be ejected during the brown-out and
	// readmitted after it clears.
	Ejections, Readmissions int
	// GrayEjectedDuringRun records whether the victim was observed in the
	// soft-ejected state at any point (sampled after every query).
	GrayEjectedDuringRun bool
	// GrayEjectedAtEnd records whether the victim was still ejected after
	// the final query (recovery must readmit it).
	GrayEjectedAtEnd bool
	// GrayVirtualEnd / HealthyVirtualMax are the victim's and the slowest
	// healthy node's final virtual-clock readings — the victim's excess is
	// exactly the injected penalty, so the budgeted paths keep it bounded.
	GrayVirtualEnd, HealthyVirtualMax time.Duration
}

func (c *GrayConfig) fill() {
	if c.Queries == 0 {
		c.Queries = 48
	}
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.GrayNode == "" {
		c.GrayNode = "storage-01"
	}
	if c.SlowOps == 0 {
		c.SlowOps = 30
	}
	if c.StallOps == 0 {
		c.StallOps = 2
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = 250 * time.Millisecond
	}
	if c.ScaleFactor == 0 {
		c.ScaleFactor = 0.001
	}
}

// grayRules arm the victim's channel legs with bounded Slow faults plus a
// couple of deadline-bounded stalls — a brown-out, not a crash: the node
// keeps answering, just late.
func grayRules(cfg *GrayConfig) []faultinject.Rule {
	read := "conn:" + cfg.GrayNode + ":read"
	write := "conn:" + cfg.GrayNode + ":write"
	return []faultinject.Rule{
		{Site: read, Class: faultinject.Slow, Prob: 0.9, MaxCount: cfg.SlowOps},
		{Site: write, Class: faultinject.Slow, Prob: 0.9, MaxCount: cfg.SlowOps},
		{Site: read, Class: faultinject.Stall, Prob: 0.05, After: 4, MaxCount: cfg.StallOps},
	}
}

// newGrayCluster builds the cluster under test. With a plan, the resilience
// layer runs in full tail-tolerance mode with the plan's virtual per-node
// clocks as the latency source — ejection and hedging decisions then follow
// the seeded fault schedule exactly, never the host machine's speed.
func newGrayCluster(cfg *GrayConfig, plan *faultinject.Plan) (*ironsafe.Cluster, error) {
	rc := resilience.Config{
		HandshakeTimeout: 500 * time.Millisecond,
		IOTimeout:        cfg.IOTimeout,
		// Sleep stays nil: retries back off virtually.
	}
	ic := ironsafe.Config{
		Mode:         ironsafe.IronSafe,
		StorageNodes: cfg.Nodes,
		Resilience:   &rc,
	}
	if plan != nil {
		rc.LatencyClock = plan.NodeVirtualNow
		ic.ChannelTransport = true
		ic.ConnWrapper = func(node string, conn net.Conn) net.Conn {
			return faultinject.WrapConn(conn, node, plan)
		}
	}
	return ironsafe.NewCluster(ic)
}

// RunGray executes one scripted gray-failure run and returns its report.
func RunGray(cfg GrayConfig) (*GrayReport, error) {
	cfg.fill()
	data := tpch.Generate(cfg.ScaleFactor)

	// Reference run: same data, no faults, defines the correct rows.
	ref, err := newGrayCluster(&cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("gray: reference cluster: %w", err)
	}
	if err := ref.LoadTPCHData(data); err != nil {
		return nil, err
	}
	if err := ref.SetAccessPolicy(accessPolicy); err != nil {
		return nil, err
	}
	refSession := ref.NewSession(clientKey)
	expected := make([]string, len(QueryMix))
	for i, qn := range QueryMix {
		r, err := refSession.Query(tpch.Queries[qn])
		if err != nil {
			return nil, fmt.Errorf("gray: reference q%d: %w", qn, err)
		}
		expected[i] = digestRows(r.Result)
	}

	// Cluster under brown-out.
	plan := faultinject.NewPlan(cfg.Seed, grayRules(&cfg)...)
	c, err := newGrayCluster(&cfg, plan)
	if err != nil {
		return nil, fmt.Errorf("gray: cluster: %w", err)
	}
	if err := c.LoadTPCHData(data); err != nil {
		return nil, err
	}
	if err := c.SetAccessPolicy(accessPolicy); err != nil {
		return nil, err
	}

	rep := &GrayReport{}
	session := c.NewSession(clientKey)
	for queryIdx := 0; queryIdx < cfg.Queries; queryIdx++ {
		mix := queryIdx % len(QueryMix)
		out := Outcome{Query: queryIdx, SQL: mix}
		type qr struct {
			res *ironsafe.QueryResult
			err error
		}
		ch := make(chan qr, 1)
		go func() {
			r, err := session.Query(tpch.Queries[QueryMix[mix]])
			ch <- qr{r, err}
		}()
		select {
		case r := <-ch:
			out.Class = classify(r.err)
			if r.err == nil {
				out.OK = true
				out.RowDigest = digestRows(r.res.Result)
				out.Failovers = r.res.Stats.Failovers
				out.Hedges = r.res.Stats.Hedges
				rep.Succeeded++
				rep.Hedges += r.res.Stats.Hedges
				rep.HedgeWins += r.res.Stats.HedgeWins
				if out.RowDigest != expected[mix] {
					rep.WrongResults++
				}
			} else {
				rep.Failed++
				if out.Class == "untyped" {
					rep.Untyped++
				}
				if out.Class == "budget-exhausted" {
					rep.BudgetExhausted++
				}
			}
		case <-time.After(cfg.QueryTimeout): //ironsafe:allow wallclock -- hang watchdog, the invariant under test
			out.Class = "hang"
			rep.Hangs++
		}
		rep.Outcomes = append(rep.Outcomes, out)
		if ejectedNow(c, cfg.GrayNode) {
			rep.GrayEjectedDuringRun = true
		}
	}

	rep.GrayEjectedAtEnd = ejectedNow(c, cfg.GrayNode)
	tail := c.Monitor.TailReportNow()
	rep.Ejections = tail.Ejections
	rep.Readmissions = tail.Readmissions
	rep.GrayVirtualEnd = plan.NodeVirtualNow(cfg.GrayNode)
	for _, id := range nodeIDs(cfg.Nodes) {
		if id == cfg.GrayNode {
			continue
		}
		if v := plan.NodeVirtualNow(id); v > rep.HealthyVirtualMax {
			rep.HealthyVirtualMax = v
		}
	}
	rep.Digest = digestGrayRun(rep)
	return rep, nil
}

// ejectedNow reports whether node is currently in the cluster's soft-ejected
// set.
func ejectedNow(c *ironsafe.Cluster, node string) bool {
	return c.Health().Ejected(node)
}

// digestGrayRun commits to the deterministic outcome fields only.
func digestGrayRun(rep *GrayReport) string {
	var b strings.Builder
	for _, o := range rep.Outcomes {
		fmt.Fprintf(&b, "q%03d mix=%d ok=%t class=%s rows=%s failovers=%d hedges=%d\n",
			o.Query, o.SQL, o.OK, o.Class, o.RowDigest, o.Failovers, o.Hedges)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
