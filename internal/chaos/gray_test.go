package chaos

import (
	"testing"
)

// TestGraySweepInvariants is the gray-failure acceptance gate: a 3-node scs
// cluster where the proof-order primary goes slow (bounded Slow faults plus
// a couple of deadline-bounded stalls) but never crashes. The tail-tolerance
// layer must carry the run: zero hangs, zero wrong results, every failure
// typed, the victim soft-ejected during the brown-out and readmitted after
// it clears, hedged races actually fired, and budget overruns bounded.
func TestGraySweepInvariants(t *testing.T) {
	cfg := GrayConfig{Seed: 42, Queries: 40}
	rep, err := RunGray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hangs != 0 {
		t.Errorf("hangs = %d, want 0", rep.Hangs)
	}
	if rep.WrongResults != 0 {
		t.Errorf("wrong results = %d, want 0", rep.WrongResults)
	}
	if rep.Untyped != 0 {
		t.Errorf("untyped failures = %d, want 0", rep.Untyped)
	}
	// A gray node must not take the cluster down: the overwhelming majority
	// of queries succeed (slow ≠ dead).
	if rep.Succeeded < cfg.Queries*9/10 {
		t.Errorf("succeeded = %d of %d, want >= 90%%", rep.Succeeded, cfg.Queries)
	}
	// The latency estimator must both catch the brown-out and let go of it.
	if !rep.GrayEjectedDuringRun {
		t.Error("gray node was never soft-ejected during the brown-out")
	}
	if rep.GrayEjectedAtEnd {
		t.Error("gray node still ejected after the brown-out cleared (no readmission)")
	}
	if rep.Ejections == 0 || rep.Readmissions == 0 {
		t.Errorf("tail events = %d ejections / %d readmissions, want both > 0",
			rep.Ejections, rep.Readmissions)
	}
	// Hedged races must actually fire (ejected primary → immediate race).
	if rep.Hedges == 0 {
		t.Error("no hedged offloads despite an ejected primary in rotation")
	}
	// Budget overrun is bounded: a slow node may burn retry budget, but it
	// must never exhaust more than a sliver of the stream.
	if rep.BudgetExhausted > cfg.Queries/10 {
		t.Errorf("budget-exhausted = %d of %d queries, want <= 10%%",
			rep.BudgetExhausted, cfg.Queries)
	}
	// The victim's virtual clock must show the injected excess (it really
	// was slow) without running away from the healthy cohort unboundedly.
	if rep.GrayVirtualEnd <= rep.HealthyVirtualMax {
		t.Errorf("gray virtual clock %v not ahead of healthy max %v — no brown-out?",
			rep.GrayVirtualEnd, rep.HealthyVirtualMax)
	}
	t.Logf("gray: %d ok / %d failed, hedges %d (wins %d), eject/readmit %d/%d, digest %s",
		rep.Succeeded, rep.Failed, rep.Hedges, rep.HedgeWins,
		rep.Ejections, rep.Readmissions, rep.Digest[:16])
}

// TestGraySweepDeterministicPerSeed runs the identical config twice: the
// outcome digests — and the ejection, readmission, and hedge counters —
// must match byte for byte. Ejection, hedging, and budget decisions all
// derive from the fault plan's virtual clocks, so the whole run replays
// exactly. A different scripted brown-out (another victim) must diverge:
// the hedge pattern follows which node goes gray.
func TestGraySweepDeterministicPerSeed(t *testing.T) {
	cfg := GrayConfig{Seed: 7, Queries: 24}
	a, err := RunGray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same seed diverged:\n  run1 %s\n  run2 %s", a.Digest, b.Digest)
	}
	if a.Ejections != b.Ejections || a.Readmissions != b.Readmissions {
		t.Errorf("tail events diverged: %d/%d vs %d/%d",
			a.Ejections, a.Readmissions, b.Ejections, b.Readmissions)
	}
	if a.Hedges != b.Hedges {
		t.Errorf("hedge counts diverged: %d vs %d", a.Hedges, b.Hedges)
	}
	cfg.GrayNode = "storage-02"
	c, err := RunGray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Error("different victims produced identical runs (digest blind to the brown-out?)")
	}
}
