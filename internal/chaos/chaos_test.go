package chaos

import (
	"errors"
	"net"
	"testing"
	"time"

	"ironsafe"
	"ironsafe/internal/faultinject"
	"ironsafe/internal/resilience"
	"ironsafe/internal/tpch"
)

// TestChaosSuiteInvariants is the acceptance gate: 60 queries against a
// 2-node IronSafe (scs) cluster under every fault class. Each query must
// complete correctly or fail fast with a typed error — zero hangs, zero
// wrong results — and the whole run must be byte-for-byte deterministic.
func TestChaosSuiteInvariants(t *testing.T) {
	cfg := Config{
		Seed:       42,
		Queries:    60,
		Mode:       ironsafe.IronSafe,
		RollbackAt: 20,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hangs != 0 {
		t.Errorf("hangs = %d, want 0", rep.Hangs)
	}
	if rep.WrongResults != 0 {
		t.Errorf("wrong results = %d, want 0", rep.WrongResults)
	}
	if rep.Untyped != 0 {
		t.Errorf("untyped failures = %d, want 0 (every failure must be typed)", rep.Untyped)
	}
	if rep.Succeeded == 0 {
		t.Error("no query succeeded — the cluster never degraded gracefully")
	}
	if len(rep.Classes) < 6 {
		t.Errorf("only %d fault classes injected (%v), want >= 6", len(rep.Classes), rep.Classes)
	}
	if len(rep.Outcomes) != cfg.Queries {
		t.Errorf("outcomes = %d, want %d", len(rep.Outcomes), cfg.Queries)
	}
	t.Logf("chaos: %d ok / %d failed, classes %v, digest %s",
		rep.Succeeded, rep.Failed, rep.Classes, rep.Digest[:16])
}

// TestChaosDeterministicPerSeed runs the identical config twice: the digests
// (covering every outcome, row digest, and fault decision) must match
// byte for byte. A different seed must diverge.
func TestChaosDeterministicPerSeed(t *testing.T) {
	cfg := Config{Seed: 7, Queries: 24, Mode: ironsafe.IronSafe, RollbackAt: 10}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same seed diverged:\n  run1 %s\n  run2 %s", a.Digest, b.Digest)
	}
	cfg.Seed = 8
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Error("different seeds produced identical runs (faults not seed-driven?)")
	}
}

// TestStorageKillMidOffloadSurvived crashes storage-01 on its first offload
// read in full IronSafe mode: the query must fail over to the surviving
// replica and return a verified-proof result; the crashed node must be
// excluded from authorizations until it re-attests, then rejoin.
func TestStorageKillMidOffloadSurvived(t *testing.T) {
	plan := faultinject.NewPlan(1,
		faultinject.Rule{Site: "conn:storage-01:read", Class: faultinject.Crash, Prob: 1, MaxCount: 1})
	rc := chaosResilience()
	c, err := ironsafe.NewCluster(ironsafe.Config{
		Mode:             ironsafe.IronSafe,
		StorageNodes:     2,
		ChannelTransport: true,
		ConnWrapper: func(node string, conn net.Conn) net.Conn {
			return faultinject.WrapConn(conn, node, plan)
		},
		Resilience: rc,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan.OnCrash = c.KillStorage
	if err := c.LoadTPCHData(tpch.Generate(0.001)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetAccessPolicy(accessPolicy); err != nil {
		t.Fatal(err)
	}
	session := c.NewSession(clientKey)

	res, err := session.Query(tpch.Queries[6])
	if err != nil {
		t.Fatalf("query did not survive the mid-offload crash: %v", err)
	}
	if res.Stats.Failovers == 0 {
		t.Error("no failover recorded despite the scripted crash")
	}
	if len(res.Proof.Signature) == 0 {
		t.Error("surviving result has no proof")
	}
	if !c.NodeDown("storage-01") {
		t.Fatal("crashed node not marked down")
	}

	// While down, the monitor must exclude the node from authorizations.
	res2, err := session.Query(tpch.Queries[6])
	if err != nil {
		t.Fatalf("follow-up on surviving node: %v", err)
	}
	for _, id := range res2.Proof.StorageIDs {
		if id == "storage-01" {
			t.Error("downed node still authorized for offloads")
		}
	}

	// Restart + readmission: integrity sweep and re-attestation must pass
	// before the node serves offloads again.
	if err := c.RestartStorage("storage-01", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.ReattestStorage("storage-01"); err != nil {
		t.Fatalf("honest restart refused: %v", err)
	}
	res3, err := session.Query(tpch.Queries[6])
	if err != nil {
		t.Fatal(err)
	}
	readmitted := false
	for _, id := range res3.Proof.StorageIDs {
		if id == "storage-01" {
			readmitted = true
		}
	}
	if !readmitted {
		t.Error("re-attested node absent from new authorizations")
	}
}

// TestRollbackRestartRefused restarts a node with a stale medium snapshot:
// the secure store's journal recovery must refuse the reopen with a typed
// error at RestartStorage (a rolled-back medium is not a crash), and the
// node stays quarantined until an honest restart.
func TestRollbackRestartRefused(t *testing.T) {
	c, err := ironsafe.NewCluster(ironsafe.Config{Mode: ironsafe.IronSafe, StorageNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadTPCHData(tpch.Generate(0.001)); err != nil {
		t.Fatal(err)
	}
	stale, err := c.SnapshotStorage("storage-02")
	if err != nil {
		t.Fatal(err)
	}
	if err := markMedia(c); err != nil {
		t.Fatal(err)
	}
	good, err := c.SnapshotStorage("storage-02")
	if err != nil {
		t.Fatal(err)
	}

	c.KillStorage("storage-02")
	err = c.RestartStorage("storage-02", stale)
	if !errors.Is(err, ironsafe.ErrNodeNotReadmitted) {
		t.Fatalf("rolled-back node restart: %v, want ErrNodeNotReadmitted", err)
	}
	if !c.NodeDown("storage-02") {
		t.Error("refused node left the quarantine set")
	}

	// Honest restart readmits.
	if err := c.RestartStorage("storage-02", good); err != nil {
		t.Fatal(err)
	}
	if err := c.ReattestStorage("storage-02"); err != nil {
		t.Fatalf("honest restart refused: %v", err)
	}
	if c.NodeDown("storage-02") {
		t.Error("readmitted node still marked down")
	}
}

// TestVanillaCSHostFallback kills every storage channel in vcs mode: the
// query must degrade to the host block-fetch path and still return correct
// rows.
func TestVanillaCSHostFallback(t *testing.T) {
	plan := faultinject.NewPlan(1,
		faultinject.Rule{Site: "conn:", Class: faultinject.Reset, Prob: 1})
	c, err := ironsafe.NewCluster(ironsafe.Config{
		Mode:             ironsafe.VanillaCS,
		StorageNodes:     2,
		ChannelTransport: true,
		ConnWrapper: func(node string, conn net.Conn) net.Conn {
			return faultinject.WrapConn(conn, node, plan)
		},
		Resilience: chaosResilience(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadTPCHData(tpch.Generate(0.001)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetAccessPolicy(accessPolicy); err != nil {
		t.Fatal(err)
	}
	res, err := c.NewSession(clientKey).Query(tpch.Queries[6])
	if err != nil {
		t.Fatalf("host fallback did not rescue the query: %v", err)
	}
	if !res.Stats.HostFallback {
		t.Error("fallback flag not set")
	}
	direct, err := c.Storage[0].DB().Execute(res.Stats.RewrittenSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) != len(direct.Rows) {
		t.Errorf("fallback rows = %d, direct = %d", len(res.Result.Rows), len(direct.Rows))
	}
}

func chaosResilience() *resilience.Config {
	return &resilience.Config{
		HandshakeTimeout: 500 * time.Millisecond,
		IOTimeout:        250 * time.Millisecond,
	}
}
