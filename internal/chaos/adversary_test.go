package chaos

import (
	"testing"

	"ironsafe/internal/adversary"
)

// adversaryTestConfig keeps the in-tree runs affordable; the Makefile sweep
// drives the full default grid.
func adversaryTestConfig(seed uint64) AdversaryConfig {
	return AdversaryConfig{
		Seed:          seed,
		Queries:       6,
		MaxSteps:      1,
		IngestRecords: 6,
	}
}

// TestAdversaryConformance runs one full adversary sweep and asserts the
// fail-closed contract: every attack class mounted, zero wrong results, zero
// unbacked acks, zero untyped failures, zero hangs.
func TestAdversaryConformance(t *testing.T) {
	rep, err := RunAdversary(adversaryTestConfig(7))
	if err != nil {
		t.Fatalf("RunAdversary: %v", err)
	}
	if rep.Hangs != 0 {
		t.Errorf("hangs = %d, want 0", rep.Hangs)
	}
	if rep.WrongResults != 0 {
		t.Errorf("wrong results = %d, want 0", rep.WrongResults)
	}
	if rep.Untyped != 0 {
		t.Errorf("untyped failures = %d, want 0", rep.Untyped)
	}
	if rep.AckViolations != 0 {
		t.Errorf("ack violations = %d, want 0", rep.AckViolations)
	}
	if rep.Cells == 0 || rep.Attacks == 0 {
		t.Errorf("cells = %d, attacks = %d; the grid must have run", rep.Cells, rep.Attacks)
	}
	mounted := map[adversary.Class]bool{}
	for _, cls := range rep.Mounted {
		mounted[cls] = true
	}
	for _, cls := range []adversary.Class{
		adversary.Replay, adversary.Duplicate, adversary.Reorder,
		adversary.Splice, adversary.Inject, adversary.Banner,
		adversary.StaleRead, adversary.Rollback,
	} {
		if !mounted[cls] {
			t.Errorf("attack class %s was never mounted", cls)
		}
	}
}

// TestAdversaryDeterminism re-runs the sweep for several seeds and demands
// byte-identical digests: the attack schedule, every outcome, and every trace
// line must be a pure function of the seed.
func TestAdversaryDeterminism(t *testing.T) {
	for _, seed := range []uint64{3, 11, 42} {
		first, err := RunAdversary(adversaryTestConfig(seed))
		if err != nil {
			t.Fatalf("seed %d run 1: %v", seed, err)
		}
		second, err := RunAdversary(adversaryTestConfig(seed))
		if err != nil {
			t.Fatalf("seed %d run 2: %v", seed, err)
		}
		if first.Digest != second.Digest {
			t.Errorf("seed %d digests differ: %s vs %s", seed, first.Digest, second.Digest)
		}
		if first.Attacks != second.Attacks {
			t.Errorf("seed %d attack counts differ: %d vs %d", seed, first.Attacks, second.Attacks)
		}
	}
}
