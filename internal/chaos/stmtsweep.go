// Statement-level power-cut sweep: the whole-statement-atomicity half of the
// crash suite. Where powercut.go sweeps raw store transactions, this sweep
// drives the full engine — INSERT appends, UPDATE/DELETE heap rewrites, and
// the catalog update each statement carries — and proves that a power cut at
// ANY device-write boundary (including inside a rewrite's zeroing pass and
// inside the catalog persist) recovers to a whole-statement boundary: the
// statement's pre-image or post-image, catalog included, never a mix.
package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"ironsafe/internal/engine"
	"ironsafe/internal/faultinject"
	"ironsafe/internal/pager"
	"ironsafe/internal/securestore"
	"ironsafe/internal/simtime"
	"ironsafe/internal/tee/trustzone"
)

// StatementSweepConfig scripts one statement-level power-cut sweep.
type StatementSweepConfig struct {
	// Seed drives row payloads and torn-write cut offsets.
	Seed uint64
	// Tear also sweeps every k with the k-th write torn mid-block.
	Tear bool
}

// StatementSweepReport summarizes a statement sweep.
type StatementSweepReport struct {
	// Writes is the workload's device-write count (the k range); Statements
	// is how many DML statements the workload runs.
	Writes, Statements int
	// Points, LandedOld, LandedNew mirror SweepReport.
	Points, LandedOld, LandedNew int
	// Digest commits to every (k, torn, landing) plus the boundary digests.
	Digest string
}

// stmtSweepWorkload is the scripted DML sequence. Every shape that moves
// pages is covered: multi-row INSERT (append + catalog growth), UPDATE and
// DELETE (whole-heap rewrite: new pages written, old pages zeroed), and a
// trailing INSERT after a rewrite (appends into the rewritten page list).
func stmtSweepWorkload(seed uint64) []string {
	pay := func(i int) string {
		return hex.EncodeToString(sweepPage(seed, 100, i)[:8])
	}
	return []string{
		fmt.Sprintf("INSERT INTO ev (id, client, payload) VALUES (4, 'c1', '%s'), (5, 'c2', '%s'), (6, 'c1', '%s')", pay(0), pay(1), pay(2)),
		fmt.Sprintf("UPDATE ev SET payload = '%s' WHERE id <= 3", pay(3)),
		"DELETE FROM ev WHERE id = 2",
		fmt.Sprintf("INSERT INTO ev (id, client, payload) VALUES (7, 'c2', '%s')", pay(4)),
		fmt.Sprintf("UPDATE ev SET client = 'c3', payload = '%s' WHERE id = 5", pay(5)),
		"DELETE FROM ev WHERE id <= 4",
	}
}

// stmtSweepSetup opens a store+engine over the cut device and loads the
// fixed pre-workload state. Runs unarmed: setup writes are not swept.
func stmtSweepSetup(cut *faultinject.PowerCut, nw *trustzone.NormalWorld, meter *simtime.Meter, slot uint16, seed uint64) (*securestore.Store, *engine.DB, error) {
	s, err := securestore.Open(cut, nw, meter, securestore.Options{RPMBSlot: slot})
	if err != nil {
		return nil, nil, err
	}
	db, err := engine.Open(s, meter)
	if err != nil {
		return nil, nil, err
	}
	if _, err := db.Execute("CREATE TABLE ev (id INTEGER, client TEXT, payload TEXT)"); err != nil {
		return nil, nil, err
	}
	seedStmt := fmt.Sprintf("INSERT INTO ev (id, client, payload) VALUES (1, 'c1', '%s'), (2, 'c2', '%s'), (3, 'c1', '%s')",
		hex.EncodeToString(sweepPage(seed, 99, 0)[:8]),
		hex.EncodeToString(sweepPage(seed, 99, 1)[:8]),
		hex.EncodeToString(sweepPage(seed, 99, 2)[:8]))
	if _, err := db.Execute(seedStmt); err != nil {
		return nil, nil, err
	}
	return s, db, nil
}

// RunStatementSweep executes the statement-level power-cut sweep and fails
// on the first crash point whose recovery is not a whole-statement boundary.
func RunStatementSweep(cfg StatementSweepConfig) (*StatementSweepReport, error) {
	nw, meter, err := bootSweepDevice()
	if err != nil {
		return nil, err
	}
	stmts := stmtSweepWorkload(cfg.Seed)

	// Fault-free reference: write count plus per-statement boundary digests.
	refCut := faultinject.NewPowerCut(pager.NewMemDevice(), "stmtsweep")
	s, db, err := stmtSweepSetup(refCut, nw, meter, 0, cfg.Seed)
	if err != nil {
		return nil, err
	}
	boundaries := make([]string, 0, len(stmts)+1)
	d, err := sweepDigest(s)
	if err != nil {
		return nil, err
	}
	boundaries = append(boundaries, d)
	refCut.Arm(0, false, 1) // count workload writes only
	for _, sql := range stmts {
		if _, err := db.Execute(sql); err != nil {
			return nil, fmt.Errorf("reference run: %s: %w", sql, err)
		}
		if d, err = sweepDigest(s); err != nil {
			return nil, err
		}
		boundaries = append(boundaries, d)
	}
	writes := refCut.Writes()

	rep := &StatementSweepReport{Writes: writes, Statements: len(stmts)}
	acc := sha256.New()
	for _, b := range boundaries {
		acc.Write([]byte(b))
	}
	tears := []bool{false}
	if cfg.Tear {
		tears = append(tears, true)
	}
	slot := uint16(1)
	for _, tear := range tears {
		for k := 1; k <= writes; k++ {
			landed, err := runStmtCrashPoint(&cfg, nw, meter, slot, k, tear, stmts, boundaries)
			if err != nil {
				return nil, err
			}
			rep.Points++
			if landedIsNew(landed) {
				rep.LandedNew++
			} else {
				rep.LandedOld++
			}
			acc.Write([]byte{byte(k), byte(k >> 8), b2b(tear), byte(landed.boundary)})
			slot++
		}
	}
	rep.Digest = hex.EncodeToString(acc.Sum(nil))
	return rep, nil
}

// runStmtCrashPoint replays the DML workload with a power cut at write k,
// recovers, and classifies the landed state against the statement boundaries.
func runStmtCrashPoint(cfg *StatementSweepConfig, nw *trustzone.NormalWorld, meter *simtime.Meter, slot uint16, k int, tear bool, stmts, boundaries []string) (landing, error) {
	var l landing
	medium := pager.NewMemDevice()
	cut := faultinject.NewPowerCut(medium, "stmtsweep")
	_, db, err := stmtSweepSetup(cut, nw, meter, slot, cfg.Seed)
	if err != nil {
		return l, fmt.Errorf("k=%d tear=%t: setup: %w", k, tear, err)
	}
	cut.Arm(k, tear, cfg.Seed)

	failed := -1
	for i, sql := range stmts {
		if _, err := db.Execute(sql); err != nil {
			if !errors.Is(err, faultinject.ErrInjected) {
				return l, fmt.Errorf("k=%d tear=%t: statement %d died of a non-injected error: %w", k, tear, i, err)
			}
			failed = i
			break
		}
	}
	if failed < 0 {
		return l, fmt.Errorf("k=%d tear=%t: workload completed despite the armed cut (writes=%d)", k, tear, cut.Writes())
	}
	l.failed = failed

	// Power back on: journal recovery must land the store on the statement's
	// pre- or post-image — and the catalog must load and scan cleanly, so a
	// heap committed without its catalog (or vice versa) is caught here.
	cut.Disarm()
	cut.Revive()
	opts := securestore.Options{RPMBSlot: slot}
	s2, err := securestore.Open(medium, nw, meter, opts)
	if err != nil {
		return l, fmt.Errorf("k=%d tear=%t: recovery reopen failed: %w", k, tear, err)
	}
	if err := s2.VerifyAll(); err != nil {
		return l, fmt.Errorf("k=%d tear=%t: recovered store failed verification: %w", k, tear, err)
	}
	db2, err := engine.Open(s2, meter)
	if err != nil {
		return l, fmt.Errorf("k=%d tear=%t: recovered catalog failed to load: %w", k, tear, err)
	}
	tab, err := db2.Table("ev")
	if err != nil {
		return l, fmt.Errorf("k=%d tear=%t: recovered catalog lost table ev: %w", k, tear, err)
	}
	if _, err := tab.Count(); err != nil {
		return l, fmt.Errorf("k=%d tear=%t: recovered heap does not scan: %w", k, tear, err)
	}
	d, err := sweepDigest(s2)
	if err != nil {
		return l, fmt.Errorf("k=%d tear=%t: digesting recovered state: %w", k, tear, err)
	}
	switch d {
	case boundaries[failed]:
		l.boundary = failed
	case boundaries[failed+1]:
		l.boundary = failed + 1
	default:
		return l, fmt.Errorf("k=%d tear=%t: recovered state matches neither boundary of statement %d — torn statement survived recovery", k, tear, failed)
	}
	return l, nil
}
