// Power-cut sweep: the crash-consistency half of the chaos suite.
//
// The secure store's redo journal claims that a power cut at ANY block-write
// boundary leaves the medium recoverable to exactly the last or the next
// anchored transaction state — never a torn in-between, never a silent
// rollback. The sweep proves it exhaustively: it first runs a deterministic
// multi-transaction workload fault-free, counting every device write and
// recording the state digest at each transaction boundary; then, for every
// write index k (and, optionally, with the k-th write torn mid-block instead
// of dropped), it replays the workload over a faultinject.PowerCut armed at k,
// revives the medium, reopens the store — which runs journal recovery against
// the RPMB anchor — and asserts the recovered state digests to exactly one of
// the two boundary states flanking the interrupted transaction. The whole
// sweep folds into one digest that is byte-identical for a fixed seed.
package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"ironsafe/internal/faultinject"
	"ironsafe/internal/pager"
	"ironsafe/internal/securestore"
	"ironsafe/internal/simtime"
	"ironsafe/internal/tee/trustzone"
)

// SweepConfig scripts one power-cut sweep.
type SweepConfig struct {
	// Seed drives the workload contents (and torn-write cut offsets).
	Seed uint64
	// Txns is the number of group commits in the workload (0 means 4).
	Txns int
	// PagesPerTxn is the pages each transaction writes (0 means 3).
	PagesPerTxn int
	// Tear also sweeps every k with the k-th write torn mid-block, modeling
	// a cut inside the block transfer rather than between blocks.
	Tear bool
}

// SweepReport summarizes a sweep.
type SweepReport struct {
	// Writes is the workload's total device-write count — the sweep's k range.
	Writes int
	// Points is the number of crash points exercised (Writes, doubled if
	// torn cuts are swept too).
	Points int
	// LandedOld / LandedNew count crash points that recovered to the state
	// before vs after the interrupted transaction.
	LandedOld, LandedNew int
	// Digest commits to every (k, torn, landed-state) triple plus the
	// boundary digests; byte-identical across runs with the same config.
	Digest string
}

func (c *SweepConfig) fill() {
	if c.Txns == 0 {
		c.Txns = 4
	}
	if c.PagesPerTxn == 0 {
		c.PagesPerTxn = 3
	}
}

// bootSweepDevice boots one TrustZone storage device for the sweep. All runs
// share it: media are independent MemDevices and each run anchors in its own
// RPMB slot, so the expensive boot (key generation, image verification)
// happens once.
func bootSweepDevice() (*trustzone.NormalWorld, *simtime.Meter, error) {
	vendor, err := trustzone.NewVendor("sweep-vendor")
	if err != nil {
		return nil, nil, err
	}
	device, err := trustzone.NewDevice("sweep-storage", vendor)
	if err != nil {
		return nil, nil, err
	}
	atf := vendor.SignImage("atf", "2.4", []byte("atf"))
	tos := vendor.SignImage("optee", "3.4", []byte("optee"))
	nwImg := trustzone.FirmwareImage{Name: "nw", Version: "1.0", Code: []byte("storage stack")}
	var m simtime.Meter
	_, nw, err := device.Boot(atf, tos, nwImg, &m)
	if err != nil {
		return nil, nil, err
	}
	return nw, &m, nil
}

// sweepPage deterministically derives the plaintext transaction t writes to
// page p.
func sweepPage(seed uint64, t, p int) []byte {
	h := sha256.Sum256([]byte{
		byte(seed), byte(seed >> 8), byte(seed >> 16), byte(seed >> 24),
		byte(seed >> 32), byte(seed >> 40), byte(seed >> 48), byte(seed >> 56),
		byte(t), byte(t >> 8), byte(p), byte(p >> 8),
	})
	return h[:]
}

// sweepDigest canonically hashes the store's visible plaintext state.
func sweepDigest(s *securestore.Store) (string, error) {
	h := sha256.New()
	n := s.NumPages()
	h.Write([]byte{byte(n), byte(n >> 8), byte(n >> 16), byte(n >> 24)})
	for i := uint32(0); i < n; i++ {
		p, err := s.ReadPage(i)
		if err != nil {
			return "", err
		}
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// RunSweep executes the power-cut sweep and fails on the first crash point
// whose recovery is not exactly-old-or-new.
func RunSweep(cfg SweepConfig) (*SweepReport, error) {
	cfg.fill()
	nw, meter, err := bootSweepDevice()
	if err != nil {
		return nil, err
	}

	// Fault-free reference: total write count plus the digest of every
	// transaction-boundary state.
	ref := faultinject.NewPowerCut(pager.NewMemDevice(), "sweep")
	ref.Arm(0, false, 1)
	s, err := securestore.Open(ref, nw, meter, securestore.Options{RPMBSlot: 0})
	if err != nil {
		return nil, err
	}
	boundaries := make([]string, 0, cfg.Txns+1)
	d, err := sweepDigest(s)
	if err != nil {
		return nil, err
	}
	boundaries = append(boundaries, d)
	for t := 0; t < cfg.Txns; t++ {
		if _, err := sweepTxn(&cfg, s, t); err != nil {
			return nil, err
		}
		if d, err = sweepDigest(s); err != nil {
			return nil, err
		}
		boundaries = append(boundaries, d)
	}
	writes := ref.Writes()

	rep := &SweepReport{Writes: writes}
	acc := sha256.New()
	for _, b := range boundaries {
		acc.Write([]byte(b))
	}

	tears := []bool{false}
	if cfg.Tear {
		tears = append(tears, true)
	}
	slot := uint16(1)
	for _, tear := range tears {
		for k := 1; k <= writes; k++ {
			landed, err := runCrashPoint(&cfg, nw, meter, slot, k, tear, boundaries)
			if err != nil {
				return nil, err
			}
			rep.Points++
			if landedIsNew(landed) {
				rep.LandedNew++
			} else {
				rep.LandedOld++
			}
			acc.Write([]byte{byte(k), byte(k >> 8), b2b(tear), byte(landed.boundary)})
			slot++
		}
	}
	rep.Digest = hex.EncodeToString(acc.Sum(nil))
	return rep, nil
}

// sweepTxn runs one transaction of the workload (t-th overwrite pass).
func sweepTxn(cfg *SweepConfig, s *securestore.Store, t int) (int, error) {
	txn := s.Begin()
	for p := 0; p < cfg.PagesPerTxn; p++ {
		idx := uint32(p)
		var err error
		if t == 0 {
			if idx, err = txn.Allocate(); err != nil {
				return t, err
			}
		}
		if err = txn.WritePage(idx, sweepPage(cfg.Seed, t, p)); err != nil {
			return t, err
		}
	}
	return t, txn.Commit()
}

// landing records where one crash point recovered to.
type landing struct {
	boundary int // index into the boundary-digest list
	failed   int // the transaction the cut interrupted
}

func landedIsNew(l landing) bool { return l.boundary == l.failed+1 }

func b2b(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// runCrashPoint replays the workload with a power cut at write k, then
// recovers and classifies the landed state.
func runCrashPoint(cfg *SweepConfig, nw *trustzone.NormalWorld, meter *simtime.Meter, slot uint16, k int, tear bool, boundaries []string) (landing, error) {
	var l landing
	medium := pager.NewMemDevice()
	cut := faultinject.NewPowerCut(medium, "sweep")
	opts := securestore.Options{RPMBSlot: slot}
	s, err := securestore.Open(cut, nw, meter, opts)
	if err != nil {
		return l, err
	}
	cut.Arm(k, tear, cfg.Seed)

	failed := -1
	for t := 0; t < cfg.Txns; t++ {
		if _, err := sweepTxn(cfg, s, t); err != nil {
			if !errors.Is(err, faultinject.ErrInjected) {
				return l, fmt.Errorf("k=%d tear=%t: txn %d died of a non-injected error: %w", k, tear, t, err)
			}
			failed = t
			break
		}
	}
	if failed < 0 {
		return l, fmt.Errorf("k=%d tear=%t: workload completed despite the armed cut (writes=%d)", k, tear, cut.Writes())
	}
	l.failed = failed

	// Power back on and recover: reopen must always succeed (a crash is not
	// a rollback) and must land on exactly the old or the new boundary state
	// of the interrupted transaction.
	cut.Disarm()
	cut.Revive()
	s2, err := securestore.Open(medium, nw, meter, opts)
	if err != nil {
		return l, fmt.Errorf("k=%d tear=%t: recovery reopen failed: %w", k, tear, err)
	}
	if err := s2.VerifyAll(); err != nil {
		return l, fmt.Errorf("k=%d tear=%t: recovered store failed verification: %w", k, tear, err)
	}
	d, err := sweepDigest(s2)
	if err != nil {
		return l, fmt.Errorf("k=%d tear=%t: digesting recovered state: %w", k, tear, err)
	}
	switch d {
	case boundaries[failed]:
		l.boundary = failed
	case boundaries[failed+1]:
		l.boundary = failed + 1
	default:
		return l, fmt.Errorf("k=%d tear=%t: recovered state matches neither boundary of txn %d — torn state survived recovery", k, tear, failed)
	}
	return l, nil
}
