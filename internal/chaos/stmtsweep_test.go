package chaos

import "testing"

// TestStatementSweepEveryBoundary proves whole-statement crash atomicity: a
// power cut at EVERY device-write boundary of a DML workload — including
// inside UPDATE/DELETE heap rewrites and inside the catalog persist, clean
// and torn — must recover to a statement's pre- or post-image, catalog
// included, never a mix. RunStatementSweep fails on the first violating k.
func TestStatementSweepEveryBoundary(t *testing.T) {
	rep, err := RunStatementSweep(StatementSweepConfig{Seed: 42, Tear: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points != 2*rep.Writes {
		t.Errorf("swept %d points over %d writes, want clean+torn at every k", rep.Points, rep.Writes)
	}
	if rep.LandedOld == 0 {
		t.Error("no crash point recovered to a statement's pre-image (journal always won?)")
	}
	if rep.LandedNew == 0 {
		t.Error("no crash point replayed a statement's journaled commit (redo never ran?)")
	}
	t.Logf("statement sweep: %d statements, %d writes, %d points, %d landed old / %d landed new, digest %s",
		rep.Statements, rep.Writes, rep.Points, rep.LandedOld, rep.LandedNew, rep.Digest[:16])
}

// TestStatementSweepDeterministicPerSeed: identical config must produce a
// byte-identical sweep digest; a different seed must diverge.
func TestStatementSweepDeterministicPerSeed(t *testing.T) {
	cfg := StatementSweepConfig{Seed: 7, Tear: true}
	a, err := RunStatementSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStatementSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same seed diverged:\n  run1 %s\n  run2 %s", a.Digest, b.Digest)
	}
	cfg.Seed = 8
	c, err := RunStatementSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Error("different seeds produced identical sweeps (workload not seed-driven?)")
	}
}
