// Ingest-under-chaos sweep: the acked-write half of the crash suite.
//
// RunIngest drives the durable streaming-ingest pipeline through three
// scripted phases and folds them into one per-seed byte-identical digest:
//
//   - Phase A (concurrency + brown-out): multiple clients stream policy-
//     authorized records into a two-node IronSafe cluster while TPC-H reads
//     run concurrently over brown-out-injected channels (Slow/Stall). Reads
//     must never hang, never return wrong rows, never fail untyped — and a
//     snapshot probe must never observe a torn multi-row insert.
//   - Phase B (power-cut sweep): a single submitter streams a DML workload
//     through the pipeline while a power cut is armed at EVERY device-write
//     boundary, clean and torn. Recovery must land on a record boundary:
//     every acked record survives, the interrupted record is all-or-nothing,
//     catalog included.
//   - Phase C (node kills mid-batch): the authority and then the replica are
//     power-cut mid-batch, restarted, and readmitted via NodeRecovered; the
//     pipeline must reconcile from its batch log and finish with every
//     record acked exactly once and both nodes logically identical.
package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"sort"
	"strings"
	"sync"
	"time"

	"ironsafe"
	"ironsafe/internal/engine"
	"ironsafe/internal/faultinject"
	"ironsafe/internal/ingest"
	"ironsafe/internal/pager"
	"ironsafe/internal/securestore"
	"ironsafe/internal/simtime"
	"ironsafe/internal/sql/ast"
	"ironsafe/internal/sql/exec"
	"ironsafe/internal/storageengine"
	"ironsafe/internal/tee/trustzone"
	"ironsafe/internal/tpch"
)

// ingestClientKey gets the write rule in ingestAccessPolicy; the chaos read
// client keeps its read-only grant, so ingest runs under a real write
// authorization and the concurrent reads under a real read one.
const (
	ingestClientKey    = "ingestclient"
	ingestAccessPolicy = "read :- sessionKeyIs(chaosclient)\nwrite :- sessionKeyIs(ingestclient)"
)

// IngestConfig scripts one ingest-under-chaos sweep.
type IngestConfig struct {
	// Seed drives payloads, fault schedules, and torn-write offsets.
	Seed uint64
	// Clients is the phase-A concurrent submitter count (0 means 4).
	Clients int
	// Records is how many records each phase-A client streams (0 means 6):
	// Records-1 three-row INSERTs followed by one whole-range UPDATE.
	Records int
	// Reads is how many TPC-H queries run concurrently in phase A (0 = 12).
	Reads int
	// Tear also sweeps phase B with every k-th write torn mid-block.
	Tear bool
	// QueryTimeout is the hang watchdog (0 means 30s).
	QueryTimeout time.Duration
	// ScaleFactor is the TPC-H volume for phase A (0 means 0.001).
	ScaleFactor float64
}

// IngestReport is the full sweep record.
type IngestReport struct {
	// Phase A: every submitted record must ack (Nacked must be 0), and the
	// snapshot probe must never observe a row count that is not a whole
	// number of atomic inserts (TornReads must be 0).
	Acked, Nacked                               int
	Batches, Coalesced                          uint64
	ReadsOK, ReadsFailed, WrongReads, TornReads int
	// Phase B mirrors SweepReport, driven through the ingest write path.
	Writes, Points, LandedOld, LandedNew int
	// Phase C: node kills ridden out via restart + NodeRecovered.
	Kills int
	// Invariant counters across all phases (must be zero).
	Hangs, Untyped int
	// Digest commits to every deterministic outcome of all three phases;
	// byte-identical across runs with the same config.
	Digest string
}

func (c *IngestConfig) fill() {
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.Records == 0 {
		c.Records = 6
	}
	if c.Reads == 0 {
		c.Reads = 12
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.ScaleFactor == 0 {
		c.ScaleFactor = 0.001
	}
}

// RunIngest executes the sweep, failing on the first broken invariant.
func RunIngest(cfg IngestConfig) (*IngestReport, error) {
	cfg.fill()
	rep := &IngestReport{}
	acc := sha256.New()
	if err := runIngestPhaseA(&cfg, rep, acc); err != nil {
		return nil, err
	}
	if err := runIngestPhaseB(&cfg, rep, acc); err != nil {
		return nil, err
	}
	if err := runIngestPhaseC(&cfg, rep, acc); err != nil {
		return nil, err
	}
	rep.Digest = hex.EncodeToString(acc.Sum(nil))
	return rep, nil
}

// ingestPayload deterministically derives record payload text.
func ingestPayload(seed uint64, client, rec, row int) string {
	h := sha256.Sum256([]byte{
		byte(seed), byte(seed >> 8), byte(seed >> 16), byte(seed >> 24),
		byte(seed >> 32), byte(seed >> 40), byte(seed >> 48), byte(seed >> 56),
		byte(client), byte(rec), byte(row), 0xA7,
	})
	return hex.EncodeToString(h[:8])
}

// ingestTableDigest canonically hashes a node's ingest table: all rows,
// rendered and sorted, so two logically identical nodes digest identically
// regardless of heap layout or commit grouping.
func ingestTableDigest(db *engine.DB, table string) (string, error) {
	res, err := db.Execute("SELECT * FROM " + table)
	if err != nil {
		return "", err
	}
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		lines = append(lines, strings.Join(parts, "|"))
	}
	sort.Strings(lines)
	sum := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return hex.EncodeToString(sum[:]), nil
}

// ingestBrownOutRules arm bounded Slow faults plus a couple of stalls on the
// primary's channel legs — the read path browns out while ingest (in-process)
// keeps committing. The sequential reader is the only consumer of these fault
// streams, so their schedule stays deterministic under concurrent ingest.
func ingestBrownOutRules() []faultinject.Rule {
	return []faultinject.Rule{
		{Site: "conn:storage-01:read", Class: faultinject.Slow, Prob: 0.5, MaxCount: 20},
		{Site: "conn:storage-01:write", Class: faultinject.Slow, Prob: 0.5, MaxCount: 20},
		{Site: "conn:storage-01:read", Class: faultinject.Stall, Prob: 0.05, After: 4, MaxCount: 2},
	}
}

// runIngestPhaseA: concurrent multi-client ingest + TPC-H reads + brown-out.
// Clients write disjoint id ranges, so the final table state is independent
// of commit interleaving and the phase digests deterministically.
func runIngestPhaseA(cfg *IngestConfig, rep *IngestReport, acc hash.Hash) error {
	data := tpch.Generate(cfg.ScaleFactor)
	base := &Config{Mode: ironsafe.IronSafe, Nodes: 2}
	base.fill()

	// Fault-free reference for the concurrent read mix.
	ref, err := newCluster(base, nil)
	if err != nil {
		return fmt.Errorf("ingest sweep: reference cluster: %w", err)
	}
	if err := ref.LoadTPCHData(data); err != nil {
		return err
	}
	if err := ref.SetAccessPolicy(ingestAccessPolicy); err != nil {
		return err
	}
	refSession := ref.NewSession(clientKey)
	expected := make([]string, len(QueryMix))
	for i, qn := range QueryMix {
		r, err := refSession.Query(tpch.Queries[qn])
		if err != nil {
			return fmt.Errorf("ingest sweep: reference q%d: %w", qn, err)
		}
		expected[i] = digestRows(r.Result)
	}

	// Cluster under ingest + brown-out.
	plan := faultinject.NewPlan(cfg.Seed, ingestBrownOutRules()...)
	c, err := newCluster(base, plan)
	if err != nil {
		return fmt.Errorf("ingest sweep: cluster: %w", err)
	}
	if err := c.LoadTPCHData(data); err != nil {
		return err
	}
	if err := c.SetAccessPolicy(ingestAccessPolicy); err != nil {
		return err
	}
	// The ingest table exists on every node: replicas apply the same batches.
	for _, s := range c.Storage {
		if _, err := s.DB().Execute("CREATE TABLE ingest_ev (id INTEGER, client TEXT, note TEXT)"); err != nil {
			return err
		}
	}
	pipe, err := c.IngestPipeline(ingest.Config{BatchMax: 8, QueueMax: 1024})
	if err != nil {
		return err
	}
	defer pipe.Close()

	// Writers: each client streams its records in order; ids are disjoint.
	type recOutcome struct {
		ok       bool
		class    string
		affected int
	}
	outcomes := make([][]recOutcome, cfg.Clients)
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			name := fmt.Sprintf("c%02d", ci)
			for ri := 0; ri < cfg.Records; ri++ {
				var sql string
				if ri < cfg.Records-1 {
					b := ci*100000 + ri*10
					sql = fmt.Sprintf(
						"INSERT INTO ingest_ev (id, client, note) VALUES (%d, '%s', '%s'), (%d, '%s', '%s'), (%d, '%s', '%s')",
						b, name, ingestPayload(cfg.Seed, ci, ri, 0),
						b+1, name, ingestPayload(cfg.Seed, ci, ri, 1),
						b+2, name, ingestPayload(cfg.Seed, ci, ri, 2))
				} else {
					sql = fmt.Sprintf("UPDATE ingest_ev SET note = '%s' WHERE client = '%s'",
						ingestPayload(cfg.Seed, ci, ri, 0), name)
				}
				ack, err := pipe.Submit(ingest.Record{Client: ingestClientKey, SQL: sql})
				o := recOutcome{ok: err == nil, class: classify(err)}
				if err == nil {
					o.affected = ack.Affected
				}
				outcomes[ci] = append(outcomes[ci], o)
			}
		}(ci)
	}

	// Concurrent reader: the TPC-H mix under brown-out, with the hang
	// watchdog, plus the torn-batch snapshot probe between queries.
	session := c.NewSession(clientKey)
	for qi := 0; qi < cfg.Reads; qi++ {
		mix := qi % len(QueryMix)
		type qr struct {
			res *ironsafe.QueryResult
			err error
		}
		ch := make(chan qr, 1)
		go func() {
			r, err := session.Query(tpch.Queries[QueryMix[mix]])
			ch <- qr{r, err}
		}()
		select {
		case r := <-ch:
			if r.err == nil {
				rep.ReadsOK++
				if digestRows(r.res.Result) != expected[mix] {
					rep.WrongReads++
				}
			} else {
				rep.ReadsFailed++
				if classify(r.err) == "untyped" {
					rep.Untyped++
				}
			}
		case <-time.After(cfg.QueryTimeout): //ironsafe:allow wallclock -- hang watchdog, the invariant under test
			rep.Hangs++
		}
		// Snapshot probe: mid-batch state must never be visible, so a torn
		// multi-row insert would betray itself as a count that is not a
		// multiple of 3 (the UPDATE records do not change counts).
		for _, s := range c.Storage {
			res, err := s.DB().Execute("SELECT count(*) FROM ingest_ev")
			if err != nil {
				return fmt.Errorf("ingest sweep: snapshot probe: %w", err)
			}
			if n := res.Rows[0][0].AsInt(); n%3 != 0 {
				rep.TornReads++
			}
		}
	}

	// Wait out the writers, watchdog-bounded: an acked-write pipeline that
	// hangs under brown-out is as broken as one that loses data.
	writersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(writersDone)
	}()
	select {
	case <-writersDone:
	case <-time.After(cfg.QueryTimeout): //ironsafe:allow wallclock -- hang watchdog, the invariant under test
		rep.Hangs++
		return errors.New("ingest sweep: phase A writers hung")
	}

	// Per-client outcome digest (client-ordered, so concurrency-independent).
	for ci := range outcomes {
		for ri, o := range outcomes[ci] {
			if o.ok {
				rep.Acked++
			} else {
				rep.Nacked++
				if o.class == "untyped" {
					rep.Untyped++
				}
			}
			fmt.Fprintf(acc, "A c%02d r%02d ok=%t class=%s affected=%d\n", ci, ri, o.ok, o.class, o.affected)
		}
	}
	st := pipe.Stats()
	rep.Batches, rep.Coalesced = st.Batches, st.Coalesced

	// Acked-set == recovered-set: every acked insert's rows are present, on
	// every node, and the replicas agree byte-for-byte logically.
	wantRows := int64(cfg.Clients * 3 * (cfg.Records - 1))
	digests := make([]string, len(c.Storage))
	for i, s := range c.Storage {
		res, err := s.DB().Execute("SELECT count(*) FROM ingest_ev")
		if err != nil {
			return err
		}
		if n := res.Rows[0][0].AsInt(); n != wantRows {
			return fmt.Errorf("ingest sweep: node %d holds %d rows, want %d (acked writes lost or duplicated)", i, n, wantRows)
		}
		if digests[i], err = ingestTableDigest(s.DB(), "ingest_ev"); err != nil {
			return err
		}
		if digests[i] != digests[0] {
			return fmt.Errorf("ingest sweep: replica %d diverged from the authority", i)
		}
	}
	fmt.Fprintf(acc, "A final %s\n", digests[0])
	return nil
}

// ingestSweepNode adapts a raw store+engine pair to ingest.Node (phase B).
type ingestSweepNode struct {
	name string
	db   *engine.DB
	s    *securestore.Store
}

func (n *ingestSweepNode) Name() string { return n.name }
func (n *ingestSweepNode) Apply(stmts []ast.Statement) ([]*exec.Result, error) {
	return n.db.ExecuteBatch(stmts)
}
func (n *ingestSweepNode) Seq() uint64 { return n.s.Seq() }

// runIngestPhaseB sweeps a power cut over every device-write boundary of the
// pipeline's write path — one record per batch, covering appends, rewrites,
// and catalog persists — and checks every recovery against the acked-write
// contract.
func runIngestPhaseB(cfg *IngestConfig, rep *IngestReport, acc hash.Hash) error {
	nw, meter, err := bootSweepDevice()
	if err != nil {
		return err
	}
	records := stmtSweepWorkload(cfg.Seed)

	// Fault-free reference: write count, ack-seq discipline, and the state
	// digest at every record boundary.
	refCut := faultinject.NewPowerCut(pager.NewMemDevice(), "ingestsweep")
	s, db, err := stmtSweepSetup(refCut, nw, meter, 0, cfg.Seed)
	if err != nil {
		return err
	}
	pipe, err := ingest.New(ingest.Config{Nodes: []ingest.Node{&ingestSweepNode{"n0", db, s}}})
	if err != nil {
		return err
	}
	boundaries := make([]string, 0, len(records)+1)
	d, err := sweepDigest(s)
	if err != nil {
		return err
	}
	boundaries = append(boundaries, d)
	refCut.Arm(0, false, 1) // count workload writes only
	baseSeq := s.Seq()
	for i, sql := range records {
		ack, err := pipe.Submit(ingest.Record{Client: ingestClientKey, SQL: sql})
		if err != nil {
			return fmt.Errorf("ingest sweep: reference record %d: %w", i, err)
		}
		if ack.Seq != baseSeq+uint64(i)+1 {
			return fmt.Errorf("ingest sweep: record %d acked seq %d, want %d (ack does not name its anchor)",
				i, ack.Seq, baseSeq+uint64(i)+1)
		}
		if d, err = sweepDigest(s); err != nil {
			return err
		}
		boundaries = append(boundaries, d)
	}
	pipe.Close()
	writes := refCut.Writes()
	rep.Writes = writes
	for _, b := range boundaries {
		acc.Write([]byte(b))
	}

	tears := []bool{false}
	if cfg.Tear {
		tears = append(tears, true)
	}
	slot := uint16(1)
	for _, tear := range tears {
		for k := 1; k <= writes; k++ {
			landed, err := runIngestCrashPoint(cfg, nw, meter, slot, k, tear, records, boundaries)
			if err != nil {
				return err
			}
			rep.Points++
			if landedIsNew(landed) {
				rep.LandedNew++
			} else {
				rep.LandedOld++
			}
			acc.Write([]byte{'B', byte(k), byte(k >> 8), b2b(tear), byte(landed.boundary)})
			slot++
		}
	}
	return nil
}

// runIngestCrashPoint streams the records through a fresh pipeline with a
// power cut armed at write k. The cut models whole-process death: OnNodeDown
// closes the pipeline, so the interrupted record nacks and no later record is
// accepted. Recovery must land on a record boundary covering every ack.
func runIngestCrashPoint(cfg *IngestConfig, nw *trustzone.NormalWorld, meter *simtime.Meter, slot uint16, k int, tear bool, records, boundaries []string) (landing, error) {
	var l landing
	medium := pager.NewMemDevice()
	cut := faultinject.NewPowerCut(medium, "ingestsweep")
	s, db, err := stmtSweepSetup(cut, nw, meter, slot, cfg.Seed)
	if err != nil {
		return l, fmt.Errorf("k=%d tear=%t: setup: %w", k, tear, err)
	}
	var pipe *ingest.Pipeline
	pipe, err = ingest.New(ingest.Config{
		Nodes:      []ingest.Node{&ingestSweepNode{"n0", db, s}},
		OnNodeDown: func(string, error) { pipe.Close() }, // power loss kills the process too
	})
	if err != nil {
		return l, err
	}
	cut.Arm(k, tear, cfg.Seed)

	failed, acked := -1, -1
	for i, sql := range records {
		if _, err := pipe.Submit(ingest.Record{Client: ingestClientKey, SQL: sql}); err != nil {
			if !errors.Is(err, ingest.ErrClosed) {
				return l, fmt.Errorf("k=%d tear=%t: record %d nacked with a non-shutdown error: %w", k, tear, i, err)
			}
			failed = i
			break
		}
		acked = i
	}
	if failed < 0 {
		return l, fmt.Errorf("k=%d tear=%t: stream completed despite the armed cut (writes=%d)", k, tear, cut.Writes())
	}
	l.failed = failed

	// Power back on: the recovered store must digest to the interrupted
	// record's pre- or post-image — catalog loading and scanning included —
	// and the landing must cover every acked record.
	cut.Disarm()
	cut.Revive()
	opts := securestore.Options{RPMBSlot: slot}
	s2, err := securestore.Open(medium, nw, meter, opts)
	if err != nil {
		return l, fmt.Errorf("k=%d tear=%t: recovery reopen failed: %w", k, tear, err)
	}
	if err := s2.VerifyAll(); err != nil {
		return l, fmt.Errorf("k=%d tear=%t: recovered store failed verification: %w", k, tear, err)
	}
	db2, err := engine.Open(s2, meter)
	if err != nil {
		return l, fmt.Errorf("k=%d tear=%t: recovered catalog failed to load: %w", k, tear, err)
	}
	tab, err := db2.Table("ev")
	if err != nil {
		return l, fmt.Errorf("k=%d tear=%t: recovered catalog lost table ev: %w", k, tear, err)
	}
	if _, err := tab.Count(); err != nil {
		return l, fmt.Errorf("k=%d tear=%t: recovered heap does not scan: %w", k, tear, err)
	}
	d, err := sweepDigest(s2)
	if err != nil {
		return l, err
	}
	switch d {
	case boundaries[failed]:
		l.boundary = failed
	case boundaries[failed+1]:
		l.boundary = failed + 1
	default:
		return l, fmt.Errorf("k=%d tear=%t: recovered state matches neither boundary of record %d — torn record survived recovery", k, tear, failed)
	}
	if l.boundary <= acked {
		return l, fmt.Errorf("k=%d tear=%t: acked record %d missing from recovered state (landed at boundary %d)", k, tear, acked, l.boundary)
	}
	return l, nil
}

// runIngestPhaseC kills the authority mid-batch, then the replica mid-batch,
// restarting and readmitting each; the stream must finish with every record
// acked and both nodes logically identical.
func runIngestPhaseC(cfg *IngestConfig, rep *IngestReport, acc hash.Hash) error {
	type cnode struct {
		srv *storageengine.Server
		cut *faultinject.PowerCut
	}
	mk := func(name string) (*cnode, error) {
		vendor, err := trustzone.NewVendor("ingest-vendor")
		if err != nil {
			return nil, err
		}
		n := &cnode{}
		var m simtime.Meter
		n.srv, err = storageengine.New(storageengine.Config{
			DeviceID: name, Vendor: vendor, Location: "EU", FWVersion: "3.4",
			Secure: true, Meter: &m,
			MediumWrapper: func(node string, dev pager.BlockDevice) pager.BlockDevice {
				if n.cut == nil {
					n.cut = faultinject.NewPowerCut(dev, node)
				}
				return n.cut
			},
		})
		if err != nil {
			return nil, err
		}
		if _, err := n.srv.DB().Execute("CREATE TABLE ev (id INTEGER, client TEXT, note TEXT)"); err != nil {
			return nil, err
		}
		return n, nil
	}
	a, err := mk("storage-01")
	if err != nil {
		return err
	}
	b, err := mk("storage-02")
	if err != nil {
		return err
	}
	byName := map[string]*cnode{"storage-01": a, "storage-02": b}

	var pipe *ingest.Pipeline
	pipe, err = ingest.New(ingest.Config{
		Nodes: []ingest.Node{ingest.NewServerNode(a.srv), ingest.NewServerNode(b.srv)},
		OnNodeDown: func(name string, cause error) {
			rep.Kills++
			// The operator side: revive the medium, restart the node (journal
			// recovery on the way up), readmit it into the pipeline.
			n := byName[name]
			go func() {
				n.cut.Disarm()
				n.cut.Revive()
				if err := n.srv.Restart(); err == nil {
					pipe.NodeRecovered(name)
				}
			}()
		},
	})
	if err != nil {
		return err
	}
	defer pipe.Close()

	pay := func(r int) string { return ingestPayload(cfg.Seed, 99, r, 0) }
	records := []struct {
		arm string // node whose next device write dies mid-batch
		sql string
	}{
		{sql: fmt.Sprintf("INSERT INTO ev (id, client, note) VALUES (1, 'c1', '%s'), (2, 'c2', '%s')", pay(0), pay(1))},
		{sql: fmt.Sprintf("INSERT INTO ev (id, client, note) VALUES (3, 'c1', '%s'), (4, 'c2', '%s')", pay(2), pay(3))},
		{arm: "storage-01", sql: fmt.Sprintf("UPDATE ev SET note = '%s' WHERE id <= 2", pay(4))},
		{sql: fmt.Sprintf("INSERT INTO ev (id, client, note) VALUES (5, 'c1', '%s')", pay(5))},
		{arm: "storage-02", sql: "DELETE FROM ev WHERE id = 3"},
		{sql: fmt.Sprintf("INSERT INTO ev (id, client, note) VALUES (6, 'c2', '%s'), (7, 'c1', '%s')", pay(6), pay(7))},
	}
	for i, r := range records {
		if r.arm != "" {
			byName[r.arm].cut.Arm(1, false, cfg.Seed)
		}
		type sr struct {
			ack ingest.Ack
			err error
		}
		ch := make(chan sr, 1)
		go func() {
			ack, err := pipe.Submit(ingest.Record{Client: ingestClientKey, SQL: r.sql})
			ch <- sr{ack, err}
		}()
		select {
		case out := <-ch:
			if out.err != nil {
				return fmt.Errorf("ingest sweep: phase C record %d nacked: %w", i, out.err)
			}
			fmt.Fprintf(acc, "C r%02d seq=%d affected=%d\n", i, out.ack.Seq, out.ack.Affected)
		case <-time.After(cfg.QueryTimeout): //ironsafe:allow wallclock -- hang watchdog, the invariant under test
			rep.Hangs++
			return fmt.Errorf("ingest sweep: phase C record %d hung across the node kill", i)
		}
	}

	if got := pipe.Batches(); got != uint64(len(records)) {
		return fmt.Errorf("ingest sweep: phase C committed %d batches, want %d (a kill duplicated or dropped one)", got, len(records))
	}
	if sa, sb := a.srv.StoreSeq(), b.srv.StoreSeq(); sa != sb {
		return fmt.Errorf("ingest sweep: phase C commit seqs diverge after recovery: %d vs %d", sa, sb)
	}
	da, err := ingestTableDigest(a.srv.DB(), "ev")
	if err != nil {
		return err
	}
	dbg, err := ingestTableDigest(b.srv.DB(), "ev")
	if err != nil {
		return err
	}
	if da != dbg {
		return errors.New("ingest sweep: phase C replicas diverged after recovery")
	}
	fmt.Fprintf(acc, "C final %s kills=%d\n", da, rep.Kills)
	return nil
}
