// Rebuild sweep: the anti-entropy half of the chaos suite.
//
// RebuildStorage claims that a fault at ANY point of a replica rebuild —
// a channel fault on either leg, a power cut at any target block write,
// clean or torn — leaves the target either fully consistent with the donor
// or still quarantined (readmission refused), never half-admitted. The sweep
// proves it the same way the power-cut sweep does: a clean rebuild first
// counts every channel operation per leg and every target device write; then
// every fault point on that grid is replayed with exactly one fault armed.
// Channel faults must be absorbed by the retry path (fresh channels, resume
// from the committed prefix); device cuts must fail the rebuild with a typed
// error, leave readmission refused, and a subsequent clean rebuild must
// converge to the donor's exact byte state. The whole sweep folds into one
// digest that is byte-identical for a fixed seed.
package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ironsafe"
	"ironsafe/internal/faultinject"
	"ironsafe/internal/pager"
	"ironsafe/internal/resilience"
	"ironsafe/internal/storageengine"
	"ironsafe/internal/tpch"
)

// RebuildConfig scripts one rebuild sweep.
type RebuildConfig struct {
	// Seed drives fault decisions and torn-write cut offsets.
	Seed uint64
	// Stride sweeps every Stride-th fault point (0 means every point) —
	// the knob trading coverage for runtime.
	Stride int
	// IOTimeout bounds each channel Send/Recv (0 means 250ms).
	IOTimeout time.Duration
	// ScaleFactor is the TPC-H volume (0 means 0.001).
	ScaleFactor float64
}

// RebuildReport summarizes a sweep.
type RebuildReport struct {
	// Points is the number of fault points exercised across both sweeps.
	Points int
	// Absorbed counts channel-fault points the retry path absorbed
	// (must equal the channel point count).
	Absorbed int
	// Refused counts device-cut points where readmission correctly refused
	// the half-rebuilt node (must equal the device point count).
	Refused int
	// DonorReadOps / TargetWriteOps are the clean rebuild's channel
	// operation counts per leg — the channel sweep's k ranges.
	DonorReadOps, TargetWriteOps int
	// DeviceWrites is the clean rebuild's target device write count — the
	// device sweep's k range.
	DeviceWrites int
	// Digest commits to every (point, outcome) pair plus the reference
	// digests; byte-identical across runs with the same config.
	Digest string
	// Trace is the digest's preimage, one line per fault point — what to
	// diff when two same-seed sweeps disagree.
	Trace []string
}

func (c *RebuildConfig) fill() {
	if c.Stride == 0 {
		c.Stride = 1
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = 250 * time.Millisecond
	}
	if c.ScaleFactor == 0 {
		c.ScaleFactor = 0.001
	}
}

// planHolder lets the sweep swap fault plans between rebuild cycles: the
// cluster's ConnWrapper consults it at channel-wrap time, so each cycle's
// fresh channels see that cycle's plan (and a fresh per-site op stream).
type planHolder struct {
	mu   sync.Mutex
	plan *faultinject.Plan
}

func (h *planHolder) set(p *faultinject.Plan) {
	h.mu.Lock()
	h.plan = p
	h.mu.Unlock()
}

func (h *planHolder) get() *faultinject.Plan {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.plan
}

// newRebuildCluster boots the two-node IronSafe cluster under sweep: channel
// transport with holder-driven fault wrapping, and a PowerCut under every
// storage medium (collected into cuts) for the device sweep.
func newRebuildCluster(cfg *RebuildConfig, holder *planHolder, cuts map[string]*faultinject.PowerCut) (*ironsafe.Cluster, error) {
	rc := resilience.Config{
		HandshakeTimeout: 500 * time.Millisecond,
		IOTimeout:        cfg.IOTimeout,
	}
	ic := ironsafe.Config{
		Mode:             ironsafe.IronSafe,
		StorageNodes:     2,
		Resilience:       &rc,
		ChannelTransport: true,
		ConnWrapper: func(node string, conn net.Conn) net.Conn {
			if p := holder.get(); p != nil {
				return faultinject.WrapConn(conn, node, p)
			}
			return conn
		},
		StorageDeviceWrapper: func(node string, dev pager.BlockDevice) pager.BlockDevice {
			cut := faultinject.NewPowerCut(dev, node)
			cuts[node] = cut
			return cut
		},
	}
	return ironsafe.NewCluster(ic)
}

// RunRebuildSweep executes the rebuild fault sweep and fails on the first
// point that violates the all-or-quarantined invariant.
func RunRebuildSweep(cfg RebuildConfig) (*RebuildReport, error) {
	cfg.fill()
	holder := &planHolder{}
	cuts := map[string]*faultinject.PowerCut{}
	c, err := newRebuildCluster(&cfg, holder, cuts)
	if err != nil {
		return nil, fmt.Errorf("chaos: rebuild cluster: %w", err)
	}
	if err := c.LoadTPCHData(tpch.Generate(cfg.ScaleFactor)); err != nil {
		return nil, err
	}
	if err := c.SetAccessPolicy(accessPolicy); err != nil {
		return nil, err
	}
	ids := nodeIDs(2)
	donor, target := ids[0], ids[1]

	// Stale snapshot first, marker table second: restoring the snapshot
	// later rolls the target behind the donor, so every quarantine cycle
	// starts from the same genuinely-stale medium.
	stale, err := c.SnapshotStorage(target)
	if err != nil {
		return nil, err
	}
	if err := markMedia(c); err != nil {
		return nil, err
	}

	session := c.NewSession(clientKey)
	refRes, err := session.Query(tpch.Queries[6])
	if err != nil {
		return nil, fmt.Errorf("chaos: reference query: %w", err)
	}
	refDigest := digestRows(refRes.Result)
	donorDigest, err := sweepDigest(c.Storage[0].SecureStore())
	if err != nil {
		return nil, fmt.Errorf("chaos: donor digest: %w", err)
	}

	// quarantine kills the target and restarts it from the stale snapshot;
	// the secure store must refuse the rollback, leaving the node down with
	// a known medium — the sweep's repeatable starting state.
	quarantine := func() error {
		c.KillStorage(target)
		err := c.RestartStorage(target, stale)
		if !errors.Is(err, ironsafe.ErrNodeNotReadmitted) {
			return fmt.Errorf("chaos: stale restart of %s = %v, want ErrNodeNotReadmitted", target, err)
		}
		return nil
	}
	// checkConverged verifies the rebuilt target readmits and matches the
	// donor byte for byte.
	checkConverged := func(point string) error {
		if err := c.ReattestStorage(target); err != nil {
			return fmt.Errorf("chaos: %s: rebuilt node refused readmission: %w", point, err)
		}
		d, err := sweepDigest(c.Storage[1].SecureStore())
		if err != nil {
			return fmt.Errorf("chaos: %s: target digest: %w", point, err)
		}
		if d != donorDigest {
			return fmt.Errorf("chaos: %s: rebuilt state diverges from donor", point)
		}
		return nil
	}

	// The donor's page-level digest is a same-run quantity: data load is not
	// byte-stable across cluster instances (insertion order), so the
	// cross-run trace commits to the row-level reference and per-point
	// outcomes, while donorDigest anchors the within-run convergence checks.
	rep := &RebuildReport{}
	rep.Trace = append(rep.Trace, "ref="+refDigest)

	// Clean counting cycle: how many channel ops per leg and device writes
	// one rebuild costs — the fault grids.
	if err := quarantine(); err != nil {
		return nil, err
	}
	countPlan := faultinject.NewPlan(cfg.Seed)
	holder.set(countPlan)
	cuts[target].Arm(0, false, 1)
	if err := c.RebuildStorage(target, donor); err != nil {
		return nil, fmt.Errorf("chaos: fault-free rebuild failed: %w", err)
	}
	rep.DeviceWrites = cuts[target].Writes()
	cuts[target].Disarm()
	holder.set(nil)
	donorReadSite := "conn:" + storageengine.RebuildSessionPrefix + donor + ":read"
	targetWriteSite := "conn:" + storageengine.RebuildSessionPrefix + target + ":write"
	rep.DonorReadOps = countPlan.OpsAt(donorReadSite)
	rep.TargetWriteOps = countPlan.OpsAt(targetWriteSite)
	if err := checkConverged("clean"); err != nil {
		return nil, err
	}

	// Serve check: with the donor dead, the rebuilt replica alone must
	// answer correctly — rebuild transferred usable state, not just bytes.
	c.KillStorage(donor)
	servRes, err := session.Query(tpch.Queries[6])
	if err != nil {
		return nil, fmt.Errorf("chaos: rebuilt node failed to serve: %w", err)
	}
	if digestRows(servRes.Result) != refDigest {
		return nil, errors.New("chaos: rebuilt node served wrong rows")
	}
	if err := c.RestartStorage(donor, nil); err != nil {
		return nil, err
	}
	if err := c.ReattestStorage(donor); err != nil {
		return nil, fmt.Errorf("chaos: readmitting donor: %w", err)
	}
	rep.Trace = append(rep.Trace, "serve-ok")

	// Channel sweep: one fault on one leg at each k-th operation. Retry
	// re-handshakes fresh channels and resumes the import, so every point
	// must be absorbed and converge.
	connCases := []struct {
		name  string
		site  string
		class faultinject.Class
		ops   int
	}{
		{"donor-read-corrupt", donorReadSite, faultinject.Corrupt, rep.DonorReadOps},
		{"donor-read-truncate", donorReadSite, faultinject.Truncate, rep.DonorReadOps},
		{"target-write-reset", targetWriteSite, faultinject.Reset, rep.TargetWriteOps},
	}
	for _, cc := range connCases {
		for k := 1; k <= cc.ops; k += cfg.Stride {
			if err := quarantine(); err != nil {
				return nil, err
			}
			plan := faultinject.NewPlan(cfg.Seed,
				faultinject.Rule{Site: cc.site, Class: cc.class, Prob: 1, After: k - 1, MaxCount: 1})
			holder.set(plan)
			err := c.RebuildStorage(target, donor)
			holder.set(nil)
			if err != nil {
				return nil, fmt.Errorf("chaos: %s k=%d not absorbed: %w", cc.name, k, err)
			}
			if err := checkConverged(fmt.Sprintf("%s k=%d", cc.name, k)); err != nil {
				return nil, err
			}
			rep.Points++
			rep.Absorbed++
			rep.Trace = append(rep.Trace, fmt.Sprintf("%s k=%d absorbed", cc.name, k))
		}
	}

	// Device sweep: power cut (clean and torn) at every k-th target write.
	// The rebuild must fail typed, the half-rebuilt node must stay
	// quarantined, and a subsequent clean rebuild must converge.
	for _, tear := range []bool{false, true} {
		for k := 1; k <= rep.DeviceWrites; k += cfg.Stride {
			if err := quarantine(); err != nil {
				return nil, err
			}
			cuts[target].Arm(k, tear, cfg.Seed)
			rbErr := c.RebuildStorage(target, donor)
			cuts[target].Disarm()
			cuts[target].Revive()
			if rbErr == nil {
				return nil, fmt.Errorf("chaos: device cut k=%d tear=%t: rebuild succeeded despite the cut", k, tear)
			}
			rbClass := classify(rbErr)
			if rbClass == "untyped" {
				return nil, fmt.Errorf("chaos: device cut k=%d tear=%t: untyped rebuild failure: %w", k, tear, rbErr)
			}
			// Half-admission check: the interrupted node must be refused.
			raErr := c.ReattestStorage(target)
			if !errors.Is(raErr, ironsafe.ErrNodeNotReadmitted) {
				return nil, fmt.Errorf("chaos: device cut k=%d tear=%t: half-rebuilt node readmitted (err=%v)", k, tear, raErr)
			}
			// Recovery: a clean rebuild resumes (or restarts) and converges.
			if err := c.RebuildStorage(target, donor); err != nil {
				return nil, fmt.Errorf("chaos: device cut k=%d tear=%t: recovery rebuild failed: %w", k, tear, err)
			}
			if err := checkConverged(fmt.Sprintf("device k=%d tear=%t", k, tear)); err != nil {
				return nil, err
			}
			rep.Points++
			rep.Refused++
			rep.Trace = append(rep.Trace, fmt.Sprintf("device k=%d tear=%t rebuild=%s refused", k, tear, rbClass))
		}
	}

	acc := sha256.New()
	for _, line := range rep.Trace {
		acc.Write([]byte(line))
		acc.Write([]byte{'\n'})
	}
	rep.Digest = hex.EncodeToString(acc.Sum(nil))
	return rep, nil
}
