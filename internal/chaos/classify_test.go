package chaos

import (
	"fmt"
	"io"
	"net"
	"testing"

	"ironsafe"
	"ironsafe/internal/ctl"
	"ironsafe/internal/faultinject"
	"ironsafe/internal/hostengine"
	"ironsafe/internal/ingest"
	"ironsafe/internal/monitor"
	"ironsafe/internal/resilience"
	"ironsafe/internal/securestore"
	"ironsafe/internal/transport"
)

// TestClassifyCoversTypedFailures pins the classification of every typed
// error the sweeps — including the adversary sweep — can surface, bare and
// wrapped. No typed failure may leak through as "untyped": the fail-closed
// contract is only checkable if every refusal has a name.
func TestClassifyCoversTypedFailures(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, "ok"},
		{ironsafe.ErrNodeNotReadmitted, "not-readmitted"},
		{ironsafe.ErrEpochFenced, "epoch-fenced"},
		{ironsafe.ErrNodeNotDown, "not-down"},
		{securestore.ErrRebuilding, "rebuilding"},
		{hostengine.ErrAllNodesFailed, "all-nodes-failed"},
		{ironsafe.ErrNoStorage, "no-storage"},
		{resilience.ErrCircuitOpen, "circuit-open"},
		{resilience.ErrNodeDown, "node-down"},
		{resilience.ErrBudgetExhausted, "budget-exhausted"},
		{resilience.ErrExhausted, "exhausted"},
		{transport.ErrAuth, "channel-auth"},
		{transport.ErrFrameTooLarge, "channel-framing"},
		{transport.ErrMalformed, "channel-malformed"},
		{io.EOF, "channel-torn"},
		{io.ErrUnexpectedEOF, "channel-torn"},
		{io.ErrClosedPipe, "channel-torn"},
		{net.ErrClosed, "channel-torn"},
		{securestore.ErrFreshness, "freshness"},
		{securestore.ErrIntegrity, "integrity"},
		{securestore.ErrJournalCorrupt, "journal-corrupt"},
		{securestore.ErrRebuildMismatch, "rebuild-mismatch"},
		{faultinject.ErrInjected, "injected"},
		{ctl.ErrOverloaded, "overloaded"},
		{monitor.ErrDenied, "denied"},
		{ingest.ErrNotDML, "not-dml"},
		{ingest.ErrClosed, "ingest-closed"},
		{ingest.ErrDiverged, "ingest-diverged"},
		{securestore.ErrStoreFailed, "store-failed"},
	}
	for _, tc := range cases {
		if got := classify(tc.err); got != tc.want {
			t.Errorf("classify(%v) = %q, want %q", tc.err, got, tc.want)
		}
		if tc.err == nil {
			continue
		}
		// Wrapped forms — how the errors actually arrive: a dial wrapper, a
		// poisoned-channel wrapper, a retry exhaustion — must keep the class.
		wrapped := fmt.Errorf("hostengine: channel to storage-01 poisoned by earlier exchange failure: %w", tc.err)
		if got := classify(wrapped); got != tc.want {
			t.Errorf("classify(wrapped %v) = %q, want %q", tc.err, got, tc.want)
		}
	}

	// Precedence pins: a readmission refusal that wraps a freshness failure
	// keeps its own (more specific) class.
	combo := fmt.Errorf("%w: %w", ironsafe.ErrNodeNotReadmitted, securestore.ErrFreshness)
	if got := classify(combo); got != "not-readmitted" {
		t.Errorf("classify(not-readmitted wrapping freshness) = %q, want not-readmitted", got)
	}

	// The typed *OverloadedError from a (possibly forged) banner classifies
	// through its ErrOverloaded unwrap.
	if got := classify(&ctl.OverloadedError{RetryAfter: ctl.MaxBannerRetryAfter}); got != "overloaded" {
		t.Errorf("classify(*OverloadedError) = %q, want overloaded", got)
	}
}
