package ingest

import (
	"encoding/json"
	"fmt"

	"ironsafe/internal/ctl"
)

// WireRecord is the ctl wire form of one streamed record.
type WireRecord struct {
	Client string `json:"client"`
	SQL    string `json:"sql"`
	Date   string `json:"date,omitempty"`
}

// WireAck is the ctl wire form of a durable receipt.
type WireAck struct {
	Seq      uint64 `json:"seq"`
	Batch    uint64 `json:"batch"`
	Affected int    `json:"affected"`
}

// RegisterCtl exposes the pipeline on a ctl server as the "ingest" command.
// The server's own admission queue (MaxConns/MaxQueue) bounds concurrent
// submitters; the pipeline's queue bounds coalescing depth — both refuse
// with retry-after rather than queueing unboundedly.
func RegisterCtl(srv *ctl.Server, p *Pipeline) {
	srv.Handle("ingest", func(req []byte) (any, error) {
		var r WireRecord
		if err := json.Unmarshal(req, &r); err != nil {
			return nil, fmt.Errorf("ingest: bad request: %w", err)
		}
		ack, err := p.Submit(Record{Client: r.Client, SQL: r.SQL, Date: r.Date})
		if err != nil {
			return nil, err
		}
		return WireAck{Seq: ack.Seq, Batch: ack.Batch, Affected: ack.Affected}, nil
	})
}

// SubmitCtl streams one record over an established ctl connection and decodes
// the ack.
func SubmitCtl(c *ctl.Client, rec Record) (Ack, error) {
	var wa WireAck
	err := c.Call("ingest", WireRecord{Client: rec.Client, SQL: rec.SQL, Date: rec.Date}, &wa)
	if err != nil {
		return Ack{}, err
	}
	return Ack{Seq: wa.Seq, Batch: wa.Batch, Affected: wa.Affected}, nil
}
