package ingest

import (
	"crypto/sha256"
	"net"
	"strings"
	"testing"

	"ironsafe/internal/ctl"
)

// TestIngestOverCtl: the full wire path — secure ctl channel, JSON record in,
// durable ack out, and handler errors surfacing as typed-by-string refusals.
func TestIngestOverCtl(t *testing.T) {
	e := newEnv(t, "storage-01", false)
	p, err := New(Config{Nodes: []Node{NewServerNode(e.srv)}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	key := sha256.Sum256([]byte("test-deployment-psk"))
	srv := ctl.NewServer(key[:])
	RegisterCtl(srv, p)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)

	c, err := ctl.Dial(ln.Addr().String(), key[:])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ack, err := SubmitCtl(c, Record{Client: "w", SQL: "INSERT INTO ev (id, note) VALUES (1, 'x'), (2, 'y')"})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Affected != 2 || ack.Seq == 0 || ack.Batch != 1 {
		t.Errorf("ack = %+v, want affected 2 in batch 1", ack)
	}
	if n := rowCount(t, e.srv); n != 2 {
		t.Errorf("ev has %d rows, want 2", n)
	}

	// Non-DML and semantic failures refuse over the wire, not hang.
	if _, err := SubmitCtl(c, Record{Client: "w", SQL: "SELECT * FROM ev"}); err == nil || !strings.Contains(err.Error(), "only INSERT") {
		t.Errorf("SELECT over ctl = %v, want ErrNotDML refusal", err)
	}
	if _, err := SubmitCtl(c, Record{Client: "w", SQL: "INSERT INTO nosuch (id) VALUES (1)"}); err == nil {
		t.Error("insert into missing table acked")
	}
}
