package ingest

import (
	"ironsafe/internal/sql/ast"
	"ironsafe/internal/sql/exec"
	"ironsafe/internal/storageengine"
)

// ServerNode adapts a storage server to the pipeline's Node interface: Apply
// is an atomic engine batch (one store commit), Seq the secure store's
// durable commit sequence. The adapter reads the server's current engine on
// every call, so a restarted (recovered) server is picked up transparently.
type ServerNode struct {
	name string
	srv  *storageengine.Server
}

// NewServerNode wraps a storage server for ingest.
func NewServerNode(srv *storageengine.Server) *ServerNode {
	id, _, _ := srv.Info()
	return &ServerNode{name: id, srv: srv}
}

// Name implements Node.
func (n *ServerNode) Name() string { return n.name }

// Apply implements Node.
func (n *ServerNode) Apply(stmts []ast.Statement) ([]*exec.Result, error) {
	return n.srv.DB().ExecuteBatch(stmts)
}

// Seq implements Node.
func (n *ServerNode) Seq() uint64 { return n.srv.StoreSeq() }
