// Package ingest implements IronSafe's durable streaming-ingest pipeline:
// clients stream INSERT/UPDATE/DELETE records in, the pipeline coalesces
// concurrent records into shared engine batches (one store commit — one
// journal record, one RPMB anchor advance — per batch), and acks each record
// only after the group commit that contains it is durable on the authority
// node.
//
// The acked-write contract: an acked record survives any crash (the ack names
// the commit seq that anchors it); an unacked record is atomically
// all-or-nothing — recovery either holds the whole record or none of it,
// never a torn prefix. Backpressure is explicit: a full submission queue
// refuses with ctl.OverloadedError (retry-after) instead of queueing
// unboundedly, and an exhausted deadline budget refuses before any work.
package ingest

import (
	"errors"
	"fmt"
	"time"

	"sync"

	"ironsafe/internal/ctl"
	"ironsafe/internal/faultinject"
	"ironsafe/internal/monitor"
	"ironsafe/internal/resilience"
	"ironsafe/internal/securestore"
	"ironsafe/internal/sql/ast"
	"ironsafe/internal/sql/exec"
	"ironsafe/internal/sql/parser"
)

var (
	// ErrNotDML rejects stream records that are not INSERT/UPDATE/DELETE.
	ErrNotDML = errors.New("ingest: only INSERT, UPDATE, and DELETE are accepted")
	// ErrClosed reports submission to (or interruption by) a closed pipeline.
	ErrClosed = errors.New("ingest: pipeline closed")
	// ErrDiverged is pipeline-fatal: a replica's state contradicts the
	// authority's batch log, so replication can no longer be trusted.
	ErrDiverged = errors.New("ingest: replica diverged from the authority")
)

// Node is one storage node the pipeline replicates batches onto. Nodes[0] is
// the authority: it decides batch semantics and its commit seq anchors acks.
type Node interface {
	Name() string
	// Apply executes the batch atomically (one store commit). A semantic
	// error means the batch is rejected with the store untouched; an error
	// matching faultinject.ErrInjected or securestore.ErrStoreFailed means
	// the NODE failed mid-batch and must be restarted.
	Apply(stmts []ast.Statement) ([]*exec.Result, error)
	// Seq is the node's durable commit sequence (0 on non-secure stores).
	Seq() uint64
}

// Authorizer is the policy gate every record passes before it may enqueue
// (satisfied by *monitor.Monitor). Nil disables policy checks (admin ingest).
type Authorizer interface {
	Authorize(req monitor.AuthRequest) (*monitor.Authorization, error)
	EndSession(id string)
}

// Config assembles a Pipeline.
type Config struct {
	// Nodes receive every batch in order; Nodes[0] is the authority.
	Nodes []Node
	// Authorizer, Database, HostID, Epoch parameterize the per-record policy
	// check. Nil Authorizer skips it.
	Authorizer Authorizer
	Database   string
	HostID     string
	Epoch      func() uint64
	// BatchMax caps how many records one group commit coalesces (default 16).
	BatchMax int
	// QueueMax bounds the submission queue; a full queue refuses with
	// ctl.OverloadedError instead of growing (default 64).
	QueueMax int
	// RetryAfter is the backoff hint refused submissions carry (default 25ms).
	RetryAfter time.Duration
	// Budget, when set, is charged one attempt per submission; an exhausted
	// budget refuses before any parsing or policy work.
	Budget *resilience.Budget
	// Pressure mirrors the queue's overload state outward (PR 7 brown-out
	// plumbing): called with true when submissions start being refused, false
	// when the queue drains.
	Pressure func(bool)
	// OnNodeDown fires once per node failure; the pipeline then blocks the
	// affected batch until NodeRecovered(name) is called.
	OnNodeDown func(name string, cause error)
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Record is one client write in the stream.
type Record struct {
	// Client is the submitting client's key (policy identity).
	Client string
	// SQL is the DML statement.
	SQL string
	// Date is the access date (YYYY-MM-DD) for timely-deletion checks; empty
	// skips them.
	Date string
}

// Ack is the durable receipt for one record.
type Ack struct {
	// Seq is the authority's commit seq after the group commit containing
	// this record: the record is anchored at-or-before Seq forever.
	Seq uint64
	// Batch is the 1-based batch number within this pipeline.
	Batch uint64
	// Affected is the statement's affected-row count; -1 when the batch
	// committed durably but the node crashed before reporting counts
	// (in-doubt recovery on a replica-less deployment).
	Affected int
}

// Stats counts pipeline activity.
type Stats struct {
	// Submitted/Acked/Nacked are records admitted past the queue and their
	// outcomes; Overloaded counts refused submissions.
	Submitted, Acked, Nacked, Overloaded uint64
	// Batches is group commits on the authority; Coalesced counts records
	// that shared their batch with at least one other record.
	Batches, Coalesced uint64
}

// outcome is what a waiting submitter receives: an ack or a rejection.
type outcome struct {
	ack Ack
	err error
}

// pending is one queued record awaiting its group commit.
type pending struct {
	stmt ast.Statement
	ch   chan outcome
}

// deliver acks the record. Must only be called after the batch containing it
// committed durably on the authority (the earlyack analyzer enforces this).
func (pd *pending) deliver(a Ack) { pd.ch <- outcome{ack: a} }

// fail nacks the record.
func (pd *pending) fail(err error) { pd.ch <- outcome{err: err} }

// Pipeline is the durable ingest coalescer. Submissions are safe from any
// number of goroutines; one submitter at a time acts as the group-commit
// leader and drains the queue in BatchMax-sized batches.
type Pipeline struct {
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond // node-recovery and shutdown wakeups
	queue     []*pending
	leading   bool
	pressured bool
	closed    bool
	fatal     error
	down      map[int]bool

	// batches is the applied-batch log; base is each node's commit seq at
	// pipeline start, so node i holds batches [0, Seq()-base[i]).
	batches [][]ast.Statement
	base    []uint64

	stats Stats
}

// New validates the config and builds a pipeline over the given nodes.
func New(cfg Config) (*Pipeline, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("ingest: pipeline needs at least one node")
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 16
	}
	if cfg.QueueMax <= 0 {
		cfg.QueueMax = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 25 * time.Millisecond
	}
	p := &Pipeline{cfg: cfg, down: map[int]bool{}}
	p.cond = sync.NewCond(&p.mu)
	for _, n := range cfg.Nodes {
		p.base = append(p.base, n.Seq())
	}
	return p, nil
}

func (p *Pipeline) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// Submit streams one record in and blocks until its group commit is durable
// (ack) or it is rejected (typed error): resilience.ErrBudgetExhausted when
// the deadline budget is dry, ctl.ErrOverloaded (with retry-after) when the
// queue is full, monitor.ErrDenied on policy violations, ErrNotDML for
// non-DML, ErrClosed after Close.
func (p *Pipeline) Submit(rec Record) (Ack, error) {
	// Admission: budget and overload refuse before any parsing or policy
	// work, so a saturated pipeline sheds load at the door.
	if p.cfg.Budget != nil && !p.cfg.Budget.SpendAttempt() {
		return Ack{}, resilience.ErrBudget("ingest admission")
	}
	stmt, err := parser.Parse(rec.SQL)
	if err != nil {
		return Ack{}, fmt.Errorf("ingest: %w", err)
	}
	switch stmt.(type) {
	case *ast.Insert, *ast.Update, *ast.Delete:
	default:
		return Ack{}, fmt.Errorf("%w (got %T)", ErrNotDML, stmt)
	}
	if p.cfg.Authorizer != nil {
		var epoch uint64
		if p.cfg.Epoch != nil {
			epoch = p.cfg.Epoch()
		}
		auth, err := p.cfg.Authorizer.Authorize(monitor.AuthRequest{
			Database:   p.cfg.Database,
			ClientKey:  rec.Client,
			SQL:        rec.SQL,
			AccessDate: rec.Date,
			HostID:     p.cfg.HostID,
			Epoch:      epoch,
		})
		if err != nil {
			return Ack{}, err
		}
		// Write sessions are one-shot: the authorization is consumed by this
		// record, so revoke the session key immediately.
		p.cfg.Authorizer.EndSession(auth.SessionID)
	}

	pd := &pending{stmt: stmt, ch: make(chan outcome, 1)}
	p.mu.Lock()
	if p.fatal != nil {
		err := p.fatal
		p.mu.Unlock()
		return Ack{}, err
	}
	if p.closed {
		p.mu.Unlock()
		return Ack{}, ErrClosed
	}
	if len(p.queue) >= p.cfg.QueueMax {
		p.stats.Overloaded++
		fire := !p.pressured
		p.pressured = true
		p.mu.Unlock()
		if fire && p.cfg.Pressure != nil {
			p.cfg.Pressure(true)
		}
		return Ack{}, &ctl.OverloadedError{RetryAfter: p.cfg.RetryAfter}
	}
	p.stats.Submitted++
	p.queue = append(p.queue, pd)
	lead := !p.leading
	if lead {
		p.leading = true
	}
	p.mu.Unlock()

	if lead {
		p.runLeader()
	}
	out := <-pd.ch
	p.mu.Lock()
	if out.err != nil {
		p.stats.Nacked++
	} else {
		p.stats.Acked++
	}
	p.mu.Unlock()
	return out.ack, out.err
}

// runLeader drains the queue in batches until it is empty, then steps down.
// The step-down check and enqueue share p.mu, so a record enqueued while a
// leader exists is always drained by that leader.
func (p *Pipeline) runLeader() {
	for {
		p.mu.Lock()
		if p.fatal != nil {
			for _, pd := range p.queue {
				pd.fail(p.fatal)
			}
			p.queue = nil
		}
		if len(p.queue) == 0 {
			p.leading = false
			calm := p.pressured
			p.pressured = false
			p.mu.Unlock()
			if calm && p.cfg.Pressure != nil {
				p.cfg.Pressure(false)
			}
			return
		}
		n := len(p.queue)
		if n > p.cfg.BatchMax {
			n = p.cfg.BatchMax
		}
		group := p.queue[:n:n]
		p.queue = p.queue[n:]
		if n > 1 {
			p.stats.Coalesced += uint64(n)
		}
		p.mu.Unlock()
		p.commitGroup(group)
	}
}

// commitGroup applies one coalesced batch and settles every record in it. A
// semantic rejection of a multi-record group falls back to singleton batches,
// so one offending record cannot nack its innocent batch-mates.
func (p *Pipeline) commitGroup(group []*pending) {
	stmts := make([]ast.Statement, len(group))
	for i, pd := range group {
		stmts[i] = pd.stmt
	}
	results, err := p.applyBatch(stmts)
	if err == nil {
		seq := p.cfg.Nodes[0].Seq()
		p.mu.Lock()
		p.stats.Batches++
		p.mu.Unlock()
		for i, pd := range group {
			pd.deliver(Ack{Seq: seq, Batch: seq - p.base[0], Affected: affectedOf(results, i)})
		}
		return
	}
	p.mu.Lock()
	fatal := p.fatal
	p.mu.Unlock()
	if fatal != nil {
		for _, pd := range group {
			pd.fail(fatal)
		}
		return
	}
	if errors.Is(err, ErrClosed) {
		for _, pd := range group {
			pd.fail(err)
		}
		return
	}
	if len(group) == 1 {
		group[0].fail(err)
		return
	}
	// Semantically-rejected batches touch no device state (staging is
	// memory-only), so re-running each record alone is safe and isolates the
	// offender.
	p.logf("ingest: batch of %d rejected (%v); retrying as singletons", len(group), err)
	for _, pd := range group {
		p.commitGroup([]*pending{pd})
	}
}

// applyBatch applies one batch to the authority, appends it to the batch log,
// then replicates it. Only semantic rejections surface as errors; node
// crashes are ridden out via nodeDownAndWait + seq-based reconciliation.
func (p *Pipeline) applyBatch(stmts []ast.Statement) ([]*exec.Result, error) {
	p.mu.Lock()
	idx := len(p.batches)
	p.mu.Unlock()

	results, err := p.applyNode(0, idx, stmts)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.batches = append(p.batches, stmts)
	p.mu.Unlock()

	for i := 1; i < len(p.cfg.Nodes); i++ {
		res, err := p.applyNode(i, idx, stmts)
		if err != nil {
			if errors.Is(err, ErrClosed) || errors.Is(err, ErrDiverged) {
				return nil, err
			}
			// The authority committed this batch; a replica rejecting it can
			// only mean divergent state. Replication is no longer sound.
			return nil, p.fail(fmt.Errorf("%w: node %s rejected batch %d the authority committed: %v",
				ErrDiverged, p.cfg.Nodes[i].Name(), idx, err))
		}
		if results == nil {
			// The authority crashed after committing but before reporting
			// counts; a replica's deterministic re-execution restores them.
			results = res
		}
	}
	return results, nil
}

// applyNode applies batch idx to node i, riding out node crashes: a crashed
// node is reported down, waited on, and reconciled from the batch log once
// recovered. Returns only semantic rejections, ErrClosed, or divergence.
func (p *Pipeline) applyNode(i, idx int, stmts []ast.Statement) ([]*exec.Result, error) {
	n := p.cfg.Nodes[i]
	for {
		res, err := n.Apply(stmts)
		if err == nil {
			return res, nil
		}
		if !isNodeFailure(err) {
			return nil, err
		}
		if werr := p.nodeDownAndWait(i, err); werr != nil {
			return nil, werr
		}
		// Recovered: seq arithmetic against the batch log says where the
		// node landed. The batch either committed before the crash (durable,
		// results lost) or rolled back whole (reapply).
		have := int(n.Seq() - p.base[i])
		if have > idx+1 {
			return nil, p.fail(fmt.Errorf("%w: node %s recovered ahead of the batch log (holds %d batches, applying batch %d)",
				ErrDiverged, n.Name(), have, idx))
		}
		if have == idx+1 {
			p.logf("ingest: node %s recovered with batch %d already durable", n.Name(), idx)
			return nil, nil
		}
		// Catch up batches the restart may have interrupted earlier, then
		// loop to retry the current one.
		for have < idx {
			p.logf("ingest: node %s catching up batch %d", n.Name(), have)
			if _, err := n.Apply(p.batchAt(have)); err != nil {
				if !isNodeFailure(err) {
					return nil, p.fail(fmt.Errorf("%w: node %s rejected logged batch %d during catch-up: %v",
						ErrDiverged, n.Name(), have, err))
				}
				if werr := p.nodeDownAndWait(i, err); werr != nil {
					return nil, werr
				}
			}
			have = int(n.Seq() - p.base[i])
		}
	}
}

// nodeDownAndWait marks node i down (reporting it once) and blocks until
// NodeRecovered, Close, or pipeline failure.
func (p *Pipeline) nodeDownAndWait(i int, cause error) error {
	n := p.cfg.Nodes[i]
	p.mu.Lock()
	if !p.down[i] && !p.closed && p.fatal == nil {
		p.down[i] = true
		p.mu.Unlock()
		p.logf("ingest: node %s down: %v", n.Name(), cause)
		if p.cfg.OnNodeDown != nil {
			p.cfg.OnNodeDown(n.Name(), cause)
		}
		p.mu.Lock()
	}
	defer p.mu.Unlock()
	for p.down[i] && !p.closed && p.fatal == nil {
		p.cond.Wait()
	}
	if p.fatal != nil {
		return p.fatal
	}
	if p.closed {
		return ErrClosed
	}
	return nil
}

// NodeRecovered readmits a node after the operator restarted (and
// re-attested) it; the blocked batch resumes with seq-based reconciliation.
func (p *Pipeline) NodeRecovered(name string) {
	p.mu.Lock()
	for i, n := range p.cfg.Nodes {
		if n.Name() == name {
			//ironsafe:allow readmit -- pipeline-local liveness, not cluster membership: the caller readmits only after restart, and the stalled batch re-verifies the node's store via seq reconciliation before trusting it
			delete(p.down, i)
		}
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// fail poisons the pipeline: in-flight and future submissions settle with
// the first fatal error.
func (p *Pipeline) fail(err error) error {
	p.mu.Lock()
	if p.fatal == nil {
		p.fatal = err
	}
	err = p.fatal
	p.mu.Unlock()
	p.cond.Broadcast()
	return err
}

// Close shuts the pipeline: queued and blocked records nack with ErrClosed,
// later submissions refuse.
func (p *Pipeline) Close() {
	p.mu.Lock()
	p.closed = true
	queued := p.queue
	p.queue = nil
	p.mu.Unlock()
	p.cond.Broadcast()
	for _, pd := range queued {
		pd.fail(ErrClosed)
	}
}

// Batches returns how many batches the pipeline has committed.
func (p *Pipeline) Batches() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return uint64(len(p.batches))
}

// Stats returns a snapshot of the pipeline counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

func (p *Pipeline) batchAt(i int) []ast.Statement {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.batches[i]
}

// isNodeFailure distinguishes node crashes (injected device faults, a store
// poisoned mid-commit) from semantic rejections of the batch itself.
func isNodeFailure(err error) bool {
	return errors.Is(err, faultinject.ErrInjected) || errors.Is(err, securestore.ErrStoreFailed)
}

// affectedOf extracts one statement's affected-row count from batch results;
// -1 when the counts were lost to an in-doubt recovery.
func affectedOf(results []*exec.Result, i int) int {
	if i >= len(results) || results[i] == nil || len(results[i].Rows) == 0 {
		return -1
	}
	return int(results[i].Rows[0][0].AsInt())
}
