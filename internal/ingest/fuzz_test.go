package ingest

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzWireAck feeds arbitrary bytes to the ingest wire-ack and wire-record
// JSON decoders — the payloads a compromised ctl peer controls. Contract: no
// panic, and any accepted payload must survive a re-marshal/re-unmarshal
// cycle unchanged, so a forged ack cannot decode to a value the audit trail
// would later serialize differently.
func FuzzWireAck(f *testing.F) {
	f.Add([]byte(`{"seq":1,"batch":1,"affected":1}`))
	f.Add([]byte(`{"seq":18446744073709551615,"batch":0,"affected":-1}`))
	f.Add([]byte(`{"client":"c-01","sql":"INSERT INTO ev VALUES (1)","date":"1995-01-27"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seq":"not a number"}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"seq":1e400}`))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		var ack WireAck
		if err := json.Unmarshal(data, &ack); err == nil {
			out, err := json.Marshal(&ack)
			if err != nil {
				t.Fatalf("accepted ack %+v does not re-marshal: %v", ack, err)
			}
			var again WireAck
			if err := json.Unmarshal(out, &again); err != nil || again != ack {
				t.Fatalf("ack round-trip diverged: %+v -> %s -> %+v (%v)", ack, out, again, err)
			}
		}
		var rec WireRecord
		if err := json.Unmarshal(data, &rec); err == nil {
			out, err := json.Marshal(&rec)
			if err != nil {
				t.Fatalf("accepted record %+v does not re-marshal: %v", rec, err)
			}
			var again WireRecord
			if err := json.Unmarshal(out, &again); err != nil || !reflect.DeepEqual(again, rec) {
				t.Fatalf("record round-trip diverged: %+v -> %s -> %+v (%v)", rec, out, again, err)
			}
		}
	})
}
