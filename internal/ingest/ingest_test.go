package ingest

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ironsafe/internal/ctl"
	"ironsafe/internal/faultinject"
	"ironsafe/internal/monitor"
	"ironsafe/internal/pager"
	"ironsafe/internal/resilience"
	"ironsafe/internal/simtime"
	"ironsafe/internal/sql/ast"
	"ironsafe/internal/sql/exec"
	"ironsafe/internal/sql/parser"
	"ironsafe/internal/storageengine"
	"ironsafe/internal/tee/trustzone"
)

// env is one secure storage server, optionally with a power-cut wrapped
// medium, plus the shared meter.
type env struct {
	srv   *storageengine.Server
	meter *simtime.Meter
	cut   *faultinject.PowerCut
}

func newEnv(t *testing.T, name string, withCut bool) *env {
	t.Helper()
	vendor, err := trustzone.NewVendor("acme")
	if err != nil {
		t.Fatal(err)
	}
	var m simtime.Meter
	e := &env{meter: &m}
	cfg := storageengine.Config{
		DeviceID: name, Vendor: vendor,
		Location: "EU", FWVersion: "3.4",
		Secure: true, Meter: &m,
	}
	if withCut {
		cfg.MediumWrapper = func(node string, dev pager.BlockDevice) pager.BlockDevice {
			if e.cut == nil {
				e.cut = faultinject.NewPowerCut(dev, node)
			}
			return e.cut
		}
	}
	e.srv, err = storageengine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.srv.DB().Execute("CREATE TABLE ev (id INTEGER, note TEXT)"); err != nil {
		t.Fatal(err)
	}
	return e
}

func rowCount(t *testing.T, srv *storageengine.Server) int {
	t.Helper()
	tab, err := srv.DB().Table("ev")
	if err != nil {
		t.Fatal(err)
	}
	n, err := tab.Count()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// gateNode blocks every Apply until the gate opens — it makes coalescing
// deterministic: the leader stalls inside its first batch while the other
// submitters enqueue behind it.
type gateNode struct {
	Node
	release chan struct{}
}

func (g *gateNode) Apply(stmts []ast.Statement) ([]*exec.Result, error) {
	<-g.release
	return g.Node.Apply(stmts)
}

func TestIngestAcksDurably(t *testing.T) {
	e := newEnv(t, "storage-01", false)
	p, err := New(Config{Nodes: []Node{NewServerNode(e.srv)}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var last uint64
	for i, sql := range []string{
		"INSERT INTO ev (id, note) VALUES (1, 'a'), (2, 'b')",
		"UPDATE ev SET note = 'c' WHERE id = 2",
		"DELETE FROM ev WHERE id = 1",
	} {
		ack, err := p.Submit(Record{Client: "w", SQL: sql})
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if ack.Seq <= last {
			t.Errorf("record %d: seq %d did not advance past %d", i, ack.Seq, last)
		}
		last = ack.Seq
		want := []int{2, 1, 1}[i]
		if ack.Affected != want {
			t.Errorf("record %d: affected %d, want %d", i, ack.Affected, want)
		}
	}
	if n := rowCount(t, e.srv); n != 1 {
		t.Errorf("ev has %d rows, want 1", n)
	}
	if got := p.Batches(); got != 3 {
		t.Errorf("pipeline committed %d batches, want 3", got)
	}
}

// TestIngestCoalesces: concurrent submissions behind a stalled leader share
// one group commit — and one group commit costs exactly one RPMB write.
func TestIngestCoalesces(t *testing.T) {
	e := newEnv(t, "storage-01", false)
	gate := &gateNode{Node: NewServerNode(e.srv), release: make(chan struct{})}
	p, err := New(Config{Nodes: []Node{gate}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const followers = 5
	rpmb0 := e.meter.Snapshot().RPMBWrites
	acks := make([]Ack, followers+1)
	errs := make([]error, followers+1)
	var wg sync.WaitGroup
	submit := func(i int) {
		defer wg.Done()
		acks[i], errs[i] = p.Submit(Record{Client: "w",
			SQL: "INSERT INTO ev (id, note) VALUES (1, 'x')"})
	}
	wg.Add(1)
	go submit(0) // leader: stalls inside Apply on the gate
	for p.Stats().Submitted < 1 {
		time.Sleep(time.Millisecond)
	}
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go submit(i)
	}
	for p.Stats().Submitted < followers+1 {
		time.Sleep(time.Millisecond)
	}
	close(gate.release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("submitter %d: %v", i, err)
		}
	}
	// Leader's singleton plus one coalesced follower batch.
	if got := p.Batches(); got != 2 {
		t.Errorf("committed %d batches for %d records, want 2", got, followers+1)
	}
	if got := e.meter.Snapshot().RPMBWrites - rpmb0; got != 2 {
		t.Errorf("%d records cost %d RPMB writes, want 2 (one per group commit)", followers+1, got)
	}
	if st := p.Stats(); st.Coalesced != followers {
		t.Errorf("coalesced %d records, want %d", st.Coalesced, followers)
	}
	// Every follower shares the second batch's anchor.
	for i := 2; i <= followers; i++ {
		if acks[i].Seq != acks[1].Seq || acks[i].Batch != acks[1].Batch {
			t.Errorf("follower %d ack %+v, want batch-mate of %+v", i, acks[i], acks[1])
		}
	}
	if n := rowCount(t, e.srv); n != followers+1 {
		t.Errorf("ev has %d rows, want %d", n, followers+1)
	}
}

// TestIngestOverloadTyped: a full queue refuses with ctl.OverloadedError
// carrying retry-after, and the Pressure hook sees the on/off transitions.
func TestIngestOverloadTyped(t *testing.T) {
	e := newEnv(t, "storage-01", false)
	gate := &gateNode{Node: NewServerNode(e.srv), release: make(chan struct{})}
	var mu sync.Mutex
	var transitions []bool
	p, err := New(Config{
		Nodes: []Node{gate}, QueueMax: 1, RetryAfter: 40 * time.Millisecond,
		Pressure: func(on bool) {
			mu.Lock()
			transitions = append(transitions, on)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			if _, err := p.Submit(Record{Client: "w", SQL: "INSERT INTO ev (id) VALUES (1)"}); err != nil {
				t.Errorf("admitted submit failed: %v", err)
			}
		}()
	}
	for p.Stats().Submitted < 2 {
		time.Sleep(time.Millisecond)
	}
	// Leader in flight, queue full: the next submission is refused, typed.
	_, err = p.Submit(Record{Client: "w", SQL: "INSERT INTO ev (id) VALUES (2)"})
	if !errors.Is(err, ctl.ErrOverloaded) {
		t.Fatalf("overloaded submit = %v, want ctl.ErrOverloaded", err)
	}
	var oe *ctl.OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter != 40*time.Millisecond {
		t.Errorf("refusal carries retry-after %v, want 40ms", err)
	}
	close(gate.release)
	wg.Wait()
	mu.Lock()
	got := append([]bool(nil), transitions...)
	mu.Unlock()
	if len(got) != 2 || !got[0] || got[1] {
		t.Errorf("pressure transitions = %v, want [true false]", got)
	}
	if st := p.Stats(); st.Overloaded != 1 {
		t.Errorf("overloaded count = %d, want 1", st.Overloaded)
	}
}

func TestIngestBudgetRefusal(t *testing.T) {
	e := newEnv(t, "storage-01", false)
	bud := resilience.NewBudget(time.Millisecond, time.Second)
	bud.Spend(time.Millisecond) // drain it
	p, err := New(Config{Nodes: []Node{NewServerNode(e.srv)}, Budget: bud})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	_, err = p.Submit(Record{Client: "w", SQL: "INSERT INTO ev (id) VALUES (1)"})
	if !errors.Is(err, resilience.ErrBudgetExhausted) {
		t.Fatalf("budget-dry submit = %v, want ErrBudgetExhausted", err)
	}
	if n := rowCount(t, e.srv); n != 0 {
		t.Errorf("refused record reached the store (%d rows)", n)
	}
}

func TestIngestRejectsNonDML(t *testing.T) {
	e := newEnv(t, "storage-01", false)
	p, err := New(Config{Nodes: []Node{NewServerNode(e.srv)}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Submit(Record{Client: "w", SQL: "SELECT * FROM ev"}); !errors.Is(err, ErrNotDML) {
		t.Errorf("SELECT = %v, want ErrNotDML", err)
	}
	if _, err := p.Submit(Record{Client: "w", SQL: "DROP TABLE ev"}); !errors.Is(err, ErrNotDML) {
		t.Errorf("DROP = %v, want ErrNotDML", err)
	}
	if _, err := p.Submit(Record{Client: "w", SQL: "not sql"}); err == nil {
		t.Error("garbage accepted")
	}
}

// stubAuth is a scripted Authorizer.
type stubAuth struct {
	deny  bool
	mu    sync.Mutex
	ended []string
}

func (a *stubAuth) Authorize(req monitor.AuthRequest) (*monitor.Authorization, error) {
	if a.deny {
		return nil, monitor.ErrDenied
	}
	return &monitor.Authorization{SessionID: "sess-" + req.ClientKey}, nil
}

func (a *stubAuth) EndSession(id string) {
	a.mu.Lock()
	a.ended = append(a.ended, id)
	a.mu.Unlock()
}

func TestIngestPolicyGate(t *testing.T) {
	e := newEnv(t, "storage-01", false)
	auth := &stubAuth{deny: true}
	p, err := New(Config{Nodes: []Node{NewServerNode(e.srv)}, Authorizer: auth})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Submit(Record{Client: "w", SQL: "INSERT INTO ev (id) VALUES (1)"}); !errors.Is(err, monitor.ErrDenied) {
		t.Fatalf("denied submit = %v, want monitor.ErrDenied", err)
	}
	if n := rowCount(t, e.srv); n != 0 {
		t.Errorf("denied record reached the store (%d rows)", n)
	}
	auth.deny = false
	if _, err := p.Submit(Record{Client: "w", SQL: "INSERT INTO ev (id) VALUES (1)"}); err != nil {
		t.Fatal(err)
	}
	auth.mu.Lock()
	defer auth.mu.Unlock()
	if len(auth.ended) != 1 || auth.ended[0] != "sess-w" {
		t.Errorf("one-shot write session not revoked: %v", auth.ended)
	}
}

// TestIngestSemanticSplit: one bad record in a coalesced group nacks alone —
// its batch-mates re-commit as singletons and ack.
func TestIngestSemanticSplit(t *testing.T) {
	e := newEnv(t, "storage-01", false)
	p, err := New(Config{Nodes: []Node{NewServerNode(e.srv)}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	mk := func(sql string) *pending {
		stmt, err := parser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		return &pending{stmt: stmt, ch: make(chan outcome, 1)}
	}
	group := []*pending{
		mk("INSERT INTO ev (id, note) VALUES (1, 'good')"),
		mk("INSERT INTO ev (bogus) VALUES (2)"), // no such column
		mk("INSERT INTO ev (id, note) VALUES (3, 'good')"),
	}
	p.commitGroup(group)
	for i, pd := range group {
		out := <-pd.ch
		if i == 1 {
			if out.err == nil {
				t.Error("bad record acked")
			}
			continue
		}
		if out.err != nil {
			t.Errorf("good record %d nacked: %v", i, out.err)
		}
	}
	if n := rowCount(t, e.srv); n != 2 {
		t.Errorf("ev has %d rows, want 2", n)
	}
	if got := p.Batches(); got != 2 {
		t.Errorf("split committed %d batches, want 2 singletons", got)
	}
}

// TestIngestNodeCrashRecovery: a power cut mid-batch loses nothing — the
// pipeline reports the node down, waits for restart + NodeRecovered, reapplies
// the rolled-back batch, and acks with the real affected count.
func TestIngestNodeCrashRecovery(t *testing.T) {
	e := newEnv(t, "storage-01", true)
	downs := make(chan string, 1)
	p, err := New(Config{
		Nodes:      []Node{NewServerNode(e.srv)},
		OnNodeDown: func(name string, cause error) { downs <- name },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	e.cut.Arm(1, false, 7) // first device write of the batch dies
	ackc := make(chan outcome, 1)
	go func() {
		ack, err := p.Submit(Record{Client: "w",
			SQL: "INSERT INTO ev (id, note) VALUES (1, 'x'), (2, 'y')"})
		ackc <- outcome{ack: ack, err: err}
	}()

	select {
	case name := <-downs:
		if name != "storage-01" {
			t.Fatalf("down node %q", name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("node failure never reported")
	}
	e.cut.Disarm()
	e.cut.Revive()
	if err := e.srv.Restart(); err != nil {
		t.Fatal(err)
	}
	p.NodeRecovered("storage-01")

	select {
	case out := <-ackc:
		if out.err != nil {
			t.Fatalf("submit after recovery: %v", out.err)
		}
		if out.ack.Affected != 2 {
			t.Errorf("affected = %d, want 2", out.ack.Affected)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("submit hung after recovery")
	}
	if n := rowCount(t, e.srv); n != 2 {
		t.Errorf("ev has %d rows, want 2", n)
	}
}

// TestIngestReplicates: every batch lands on every node, in order, with
// matching commit seqs.
func TestIngestReplicates(t *testing.T) {
	a := newEnv(t, "storage-01", false)
	b := newEnv(t, "storage-02", false)
	p, err := New(Config{Nodes: []Node{NewServerNode(a.srv), NewServerNode(b.srv)}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 3; i++ {
		if _, err := p.Submit(Record{Client: "w", SQL: "INSERT INTO ev (id) VALUES (1)"}); err != nil {
			t.Fatal(err)
		}
	}
	if na, nb := rowCount(t, a.srv), rowCount(t, b.srv); na != 3 || nb != 3 {
		t.Errorf("replicas diverge: authority %d rows, replica %d rows", na, nb)
	}
	if sa, sb := a.srv.StoreSeq(), b.srv.StoreSeq(); sa != sb {
		t.Errorf("commit seqs diverge: %d vs %d", sa, sb)
	}
}

// TestIngestReplicaDivergenceFatal: a replica rejecting a batch the authority
// committed poisons the pipeline with ErrDiverged.
func TestIngestReplicaDivergenceFatal(t *testing.T) {
	a := newEnv(t, "storage-01", false)
	b := newEnv(t, "storage-02", false)
	if _, err := b.srv.DB().Execute("DROP TABLE ev"); err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Nodes: []Node{NewServerNode(a.srv), NewServerNode(b.srv)}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Submit(Record{Client: "w", SQL: "INSERT INTO ev (id) VALUES (1)"}); !errors.Is(err, ErrDiverged) {
		t.Fatalf("diverging submit = %v, want ErrDiverged", err)
	}
	if _, err := p.Submit(Record{Client: "w", SQL: "INSERT INTO ev (id) VALUES (2)"}); !errors.Is(err, ErrDiverged) {
		t.Fatalf("post-divergence submit = %v, want ErrDiverged", err)
	}
}

func TestIngestClosedRefuses(t *testing.T) {
	e := newEnv(t, "storage-01", false)
	p, err := New(Config{Nodes: []Node{NewServerNode(e.srv)}})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Submit(Record{Client: "w", SQL: "INSERT INTO ev (id) VALUES (1)"}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
}
