// Package audit implements the tamper-evident log the trusted monitor keeps
// for GDPR transparency (who queried what, under which policy) and breach
// recording. Entries form a hash chain; each entry is additionally signed by
// the monitor, so an auditor holding the monitor's public key can verify
// both integrity (no entry modified, reordered, or dropped) and authenticity.
package audit

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
)

// Entry is one audit record.
type Entry struct {
	Seq       uint64 `json:"seq"`
	Timestamp int64  `json:"ts"` // unix nanos, supplied by the caller
	Actor     string `json:"actor"`
	Kind      string `json:"kind"` // e.g. "query", "attestation", "violation"
	Detail    string `json:"detail"`
	PrevHash  []byte `json:"prev_hash"`
	Hash      []byte `json:"hash"`
	Signature []byte `json:"sig,omitempty"`
}

func entryHash(e *Entry) []byte {
	h := sha256.New()
	h.Write([]byte("audit-v1|"))
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], e.Seq)
	binary.LittleEndian.PutUint64(b[8:16], uint64(e.Timestamp))
	h.Write(b[:])
	h.Write([]byte(e.Actor))
	h.Write([]byte{'|'})
	h.Write([]byte(e.Kind))
	h.Write([]byte{'|'})
	h.Write([]byte(e.Detail))
	h.Write(e.PrevHash)
	return h.Sum(nil)
}

// Log is an append-only hash-chained audit log.
type Log struct {
	mu      sync.RWMutex
	entries []Entry
	signKey ed25519.PrivateKey
	pubKey  ed25519.PublicKey
}

// NewLog creates a log signing with key (nil disables signing).
func NewLog(key ed25519.PrivateKey) *Log {
	l := &Log{signKey: key}
	if key != nil {
		l.pubKey = key.Public().(ed25519.PublicKey)
	}
	return l
}

// Append adds an entry and returns its sequence number.
func (l *Log) Append(ts int64, actor, kind, detail string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Entry{
		Seq:       uint64(len(l.entries)),
		Timestamp: ts,
		Actor:     actor,
		Kind:      kind,
		Detail:    detail,
	}
	if len(l.entries) > 0 {
		e.PrevHash = l.entries[len(l.entries)-1].Hash
	}
	e.Hash = entryHash(&e)
	if l.signKey != nil {
		e.Signature = ed25519.Sign(l.signKey, e.Hash)
	}
	l.entries = append(l.entries, e)
	return e.Seq
}

// Len returns the number of entries.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Entries returns a copy of all entries (the audit trail handed to the
// regulatory authority in the paper's workflow).
func (l *Log) Entries() []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Entry{}, l.entries...)
}

// EntriesByActor filters the trail to one actor (GDPR right of access:
// "whom has my data been shared with").
func (l *Log) EntriesByActor(actor string) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Entry
	for _, e := range l.entries {
		if e.Actor == actor {
			out = append(out, e)
		}
	}
	return out
}

// Export serializes the log for external audit.
func (l *Log) Export() ([]byte, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return json.Marshal(l.entries)
}

// Verify checks the whole chain and every signature against pub (which may
// be nil to skip signature checks). It detects modified, reordered, dropped,
// and truncated-then-extended entries.
func Verify(entries []Entry, pub ed25519.PublicKey) error {
	var prev []byte
	for i, e := range entries {
		if e.Seq != uint64(i) {
			return fmt.Errorf("audit: entry %d has sequence %d (reorder or drop)", i, e.Seq)
		}
		if !equalBytes(e.PrevHash, prev) {
			return fmt.Errorf("audit: entry %d chain break", i)
		}
		if !equalBytes(e.Hash, entryHash(&e)) {
			return fmt.Errorf("audit: entry %d content hash mismatch (tampered)", i)
		}
		if pub != nil {
			if len(e.Signature) == 0 {
				return fmt.Errorf("audit: entry %d unsigned", i)
			}
			if !ed25519.Verify(pub, e.Hash, e.Signature) {
				return fmt.Errorf("audit: entry %d signature invalid", i)
			}
		}
		prev = e.Hash
	}
	return nil
}

// VerifyImport parses an Export blob and verifies it.
func VerifyImport(blob []byte, pub ed25519.PublicKey) ([]Entry, error) {
	var entries []Entry
	if err := json.Unmarshal(blob, &entries); err != nil {
		return nil, errors.New("audit: malformed export")
	}
	if err := Verify(entries, pub); err != nil {
		return nil, err
	}
	return entries, nil
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PublicKey returns the log's verification key.
func (l *Log) PublicKey() ed25519.PublicKey { return l.pubKey }
