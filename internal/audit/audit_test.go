package audit

import (
	"crypto/ed25519"
	"crypto/rand"
	"testing"
)

func newLog(t *testing.T) *Log {
	t.Helper()
	_, key, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return NewLog(key)
}

func fill(l *Log, n int) {
	for i := 0; i < n; i++ {
		l.Append(int64(1000+i), "actor-"+string(rune('A'+i%3)), "query", "SELECT ...")
	}
}

func TestAppendAndVerify(t *testing.T) {
	l := newLog(t)
	fill(l, 10)
	if l.Len() != 10 {
		t.Errorf("len = %d", l.Len())
	}
	if err := Verify(l.Entries(), l.PublicKey()); err != nil {
		t.Errorf("genuine log failed verify: %v", err)
	}
}

func TestVerifyEmptyLog(t *testing.T) {
	l := newLog(t)
	if err := Verify(l.Entries(), l.PublicKey()); err != nil {
		t.Errorf("empty log: %v", err)
	}
}

func TestTamperedDetailDetected(t *testing.T) {
	l := newLog(t)
	fill(l, 5)
	entries := l.Entries()
	entries[2].Detail = "SELECT * FROM secrets"
	if err := Verify(entries, l.PublicKey()); err == nil {
		t.Error("tampered detail accepted")
	}
}

func TestDroppedEntryDetected(t *testing.T) {
	l := newLog(t)
	fill(l, 5)
	entries := l.Entries()
	entries = append(entries[:2], entries[3:]...)
	if err := Verify(entries, l.PublicKey()); err == nil {
		t.Error("dropped entry accepted")
	}
}

func TestReorderDetected(t *testing.T) {
	l := newLog(t)
	fill(l, 5)
	entries := l.Entries()
	entries[1], entries[2] = entries[2], entries[1]
	if err := Verify(entries, l.PublicKey()); err == nil {
		t.Error("reordered log accepted")
	}
}

func TestTruncationDetectedBySeq(t *testing.T) {
	l := newLog(t)
	fill(l, 5)
	entries := l.Entries()[1:] // drop the head
	if err := Verify(entries, l.PublicKey()); err == nil {
		t.Error("truncated head accepted")
	}
}

func TestForgedEntryDetected(t *testing.T) {
	l := newLog(t)
	fill(l, 3)
	entries := l.Entries()
	// Attacker fabricates a consistent chain entry but cannot sign it.
	forged := Entry{Seq: 3, Timestamp: 9999, Actor: "evil", Kind: "query", Detail: "x", PrevHash: entries[2].Hash}
	forged.Hash = entryHash(&forged)
	entries = append(entries, forged)
	if err := Verify(entries, l.PublicKey()); err == nil {
		t.Error("unsigned forged entry accepted")
	}
	// Without signature checking, the chain itself is consistent.
	if err := Verify(entries, nil); err != nil {
		t.Errorf("chain-only verify should pass: %v", err)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	l := newLog(t)
	fill(l, 3)
	pub, _, _ := ed25519.GenerateKey(rand.Reader)
	if err := Verify(l.Entries(), pub); err == nil {
		t.Error("wrong verification key accepted")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	l := newLog(t)
	fill(l, 7)
	blob, err := l.Export()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := VerifyImport(blob, l.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Errorf("imported %d entries", len(entries))
	}
	if _, err := VerifyImport([]byte("not json"), l.PublicKey()); err == nil {
		t.Error("garbage import accepted")
	}
}

func TestEntriesByActor(t *testing.T) {
	l := newLog(t)
	fill(l, 9) // actors A, B, C round-robin
	got := l.EntriesByActor("actor-A")
	if len(got) != 3 {
		t.Errorf("actor-A entries = %d", len(got))
	}
	for _, e := range got {
		if e.Actor != "actor-A" {
			t.Errorf("wrong actor %q", e.Actor)
		}
	}
}

func TestUnsignedLog(t *testing.T) {
	l := NewLog(nil)
	l.Append(1, "a", "k", "d")
	if err := Verify(l.Entries(), nil); err != nil {
		t.Errorf("unsigned log chain verify: %v", err)
	}
}

func TestRandomizedTamperAlwaysDetected(t *testing.T) {
	// Property: any single-field mutation of any entry breaks verification.
	l := newLog(t)
	fill(l, 12)
	clean := l.Entries()
	if err := Verify(clean, l.PublicKey()); err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		for field := 0; field < 4; field++ {
			entries := append([]Entry{}, clean...)
			switch field {
			case 0:
				entries[i].Timestamp += 1
			case 1:
				entries[i].Actor += "x"
			case 2:
				entries[i].Kind = "forged"
			case 3:
				entries[i].Detail += "!"
			}
			if err := Verify(entries, l.PublicKey()); err == nil {
				t.Errorf("mutation of entry %d field %d undetected", i, field)
			}
		}
	}
}
