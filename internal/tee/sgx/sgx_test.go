package sgx

import (
	"bytes"
	"errors"
	"testing"

	"ironsafe/internal/simtime"
)

func newTestPlatform(t *testing.T) (*Platform, *AttestationService) {
	t.Helper()
	ias := NewAttestationService()
	p, err := NewPlatform("plat-A", ias)
	if err != nil {
		t.Fatal(err)
	}
	return p, ias
}

func TestMeasurementDeterministic(t *testing.T) {
	a := MeasureCode([]byte("engine v1"))
	b := MeasureCode([]byte("engine v1"))
	c := MeasureCode([]byte("engine v2"))
	if a != b {
		t.Error("same image must measure equal")
	}
	if a == c {
		t.Error("different images must measure differently")
	}
	if a.String() == "" {
		t.Error("empty measurement string")
	}
}

func TestEnclaveRequiresMeter(t *testing.T) {
	p, _ := newTestPlatform(t)
	if _, err := p.CreateEnclave([]byte("x"), Config{}); err == nil {
		t.Error("nil meter should be rejected")
	}
}

func TestECallChargesTransitions(t *testing.T) {
	p, _ := newTestPlatform(t)
	var m simtime.Meter
	e, err := p.CreateEnclave([]byte("x"), Config{Meter: &m})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := e.ECall(func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("ECall did not run fn")
	}
	if err := e.OCall(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().EnclaveTransitions; got != 2 {
		t.Errorf("transitions = %d, want 2", got)
	}
	wantErr := errors.New("boom")
	if err := e.ECall(func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("ECall error passthrough = %v", err)
	}
}

func TestDestroyedEnclaveRejectsECalls(t *testing.T) {
	p, _ := newTestPlatform(t)
	var m simtime.Meter
	e, _ := p.CreateEnclave([]byte("x"), Config{Meter: &m})
	e.Destroy()
	if err := e.ECall(func() error { return nil }); err == nil {
		t.Error("destroyed enclave should reject ECall")
	}
}

func TestEPCPagingWithinLimitNoFaults(t *testing.T) {
	p, _ := newTestPlatform(t)
	var m simtime.Meter
	e, _ := p.CreateEnclave([]byte("x"), Config{Meter: &m, EPCLimitBytes: 1 << 20})
	e.Touch(0, 512<<10) // half the EPC
	if got := m.Snapshot().EPCFaults; got != 0 {
		t.Errorf("faults within limit = %d", got)
	}
	if e.ResidentBytes() != 512<<10 {
		t.Errorf("resident = %d", e.ResidentBytes())
	}
	// Re-touching resident pages is free.
	e.Touch(0, 512<<10)
	if got := m.Snapshot().EPCFaults; got != 0 {
		t.Errorf("faults on warm touch = %d", got)
	}
}

func TestEPCPagingBeyondLimitFaults(t *testing.T) {
	p, _ := newTestPlatform(t)
	var m simtime.Meter
	e, _ := p.CreateEnclave([]byte("x"), Config{Meter: &m, EPCLimitBytes: 64 << 10})
	e.Touch(0, 128<<10) // 2x the EPC
	if got := m.Snapshot().EPCFaults; got == 0 {
		t.Error("expected EPC faults beyond the limit")
	}
	if e.ResidentBytes() > 64<<10 {
		t.Errorf("resident %d exceeds limit", e.ResidentBytes())
	}
}

func TestAllocGrowsWorkingSet(t *testing.T) {
	p, _ := newTestPlatform(t)
	var m simtime.Meter
	e, _ := p.CreateEnclave([]byte("x"), Config{Meter: &m, EPCLimitBytes: 1 << 20})
	e.Alloc("merkle", 256<<10)
	r1 := e.ResidentBytes()
	e.Alloc("merkle", 512<<10) // grow
	r2 := e.ResidentBytes()
	if r2 <= r1 {
		t.Errorf("Alloc growth: %d -> %d", r1, r2)
	}
	e.Alloc("merkle", 512<<10) // same size: no change
	if e.ResidentBytes() != r2 {
		t.Error("re-Alloc same size changed resident set")
	}
}

func TestQuoteVerifies(t *testing.T) {
	p, ias := newTestPlatform(t)
	var m simtime.Meter
	e, _ := p.CreateEnclave([]byte("host-engine"), Config{Meter: &m})
	var rd [64]byte
	copy(rd[:], "client-nonce")
	q := e.GetQuote(rd)
	if err := ias.Verify(q); err != nil {
		t.Fatalf("genuine quote rejected: %v", err)
	}
	if q.Measurement != MeasureCode([]byte("host-engine")) {
		t.Error("quote carries wrong measurement")
	}
}

func TestQuoteTamperDetected(t *testing.T) {
	p, ias := newTestPlatform(t)
	var m simtime.Meter
	e, _ := p.CreateEnclave([]byte("host-engine"), Config{Meter: &m})
	q := e.GetQuote([64]byte{})

	bad := q
	bad.Measurement[0] ^= 1
	if err := ias.Verify(bad); err == nil {
		t.Error("tampered measurement accepted")
	}
	bad = q
	bad.ReportData[5] ^= 1
	if err := ias.Verify(bad); err == nil {
		t.Error("tampered report data accepted")
	}
	bad = q
	bad.Signature = append([]byte(nil), q.Signature...)
	bad.Signature[0] ^= 1
	if err := ias.Verify(bad); err == nil {
		t.Error("tampered signature accepted")
	}
	bad = q
	bad.PlatformID = "plat-unknown"
	if err := ias.Verify(bad); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestForgedQuoteFromOtherPlatformRejected(t *testing.T) {
	ias := NewAttestationService()
	p1, _ := NewPlatform("p1", ias)
	p2, _ := NewPlatform("p2", ias)
	var m simtime.Meter
	e2, _ := p2.CreateEnclave([]byte("evil"), Config{Meter: &m})
	q := e2.GetQuote([64]byte{})
	q.PlatformID = "p1" // claim to be p1
	if err := ias.Verify(q); err == nil {
		t.Error("cross-platform forgery accepted")
	}
	_ = p1
}

func TestSealUnsealRoundTrip(t *testing.T) {
	p, _ := newTestPlatform(t)
	var m simtime.Meter
	e, _ := p.CreateEnclave([]byte("x"), Config{Meter: &m})
	secret := []byte("database master key material")
	sealed, err := e.Seal(secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, secret) {
		t.Error("sealed blob leaks plaintext")
	}
	got, err := e.Unseal(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Error("unseal mismatch")
	}
}

func TestSealBoundToIdentity(t *testing.T) {
	p, _ := newTestPlatform(t)
	var m simtime.Meter
	e1, _ := p.CreateEnclave([]byte("good"), Config{Meter: &m})
	e2, _ := p.CreateEnclave([]byte("evil"), Config{Meter: &m})
	sealed, _ := e1.Seal([]byte("secret"))
	if _, err := e2.Unseal(sealed); err == nil {
		t.Error("different measurement unsealed the blob")
	}
	// Different platform, same measurement: must also fail.
	p2, _ := NewPlatform("other", nil)
	e3, _ := p2.CreateEnclave([]byte("good"), Config{Meter: &m})
	if _, err := e3.Unseal(sealed); err == nil {
		t.Error("different platform unsealed the blob")
	}
}

func TestSealTamperDetected(t *testing.T) {
	p, _ := newTestPlatform(t)
	var m simtime.Meter
	e, _ := p.CreateEnclave([]byte("x"), Config{Meter: &m})
	sealed, _ := e.Seal([]byte("secret"))
	sealed[len(sealed)-1] ^= 1
	if _, err := e.Unseal(sealed); err == nil {
		t.Error("tampered sealed blob accepted")
	}
	if _, err := e.Unseal([]byte{1, 2}); err == nil {
		t.Error("short blob accepted")
	}
}

func TestDeriveSealedKeyDeterministicAndBound(t *testing.T) {
	p, _ := newTestPlatform(t)
	var m simtime.Meter
	e1, _ := p.CreateEnclave([]byte("engine"), Config{Meter: &m})
	k1, err := e1.DeriveSealedKey("page-enc")
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := e1.DeriveSealedKey("page-enc")
	if !bytes.Equal(k1, k2) {
		t.Error("sealed key not deterministic")
	}
	k3, _ := e1.DeriveSealedKey("page-mac")
	if bytes.Equal(k1, k3) {
		t.Error("labels must derive different keys")
	}
	// Different measurement on the same platform: different key.
	e2, _ := p.CreateEnclave([]byte("other engine"), Config{Meter: &m})
	k4, _ := e2.DeriveSealedKey("page-enc")
	if bytes.Equal(k1, k4) {
		t.Error("sealed key not bound to measurement")
	}
	// Same measurement on a different platform: different key.
	p2, _ := NewPlatform("other-plat", nil)
	e3, _ := p2.CreateEnclave([]byte("engine"), Config{Meter: &m})
	k5, _ := e3.DeriveSealedKey("page-enc")
	if bytes.Equal(k1, k5) {
		t.Error("sealed key not bound to platform")
	}
}

func TestPlatformAttestationPublicKey(t *testing.T) {
	ias := NewAttestationService()
	p, _ := NewPlatform("p", nil) // not registered at creation
	ias.RegisterPlatform("p", p.AttestationPublicKey())
	var m simtime.Meter
	e, _ := p.CreateEnclave([]byte("x"), Config{Meter: &m})
	if err := ias.Verify(e.GetQuote([64]byte{})); err != nil {
		t.Errorf("out-of-band provisioned platform rejected: %v", err)
	}
}
