package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
)

// aeadSeal encrypts with AES-256-GCM under key (32 bytes), prefixing a random
// nonce.
func aeadSeal(key, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("sgx: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: gcm: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("sgx: nonce: %w", err)
	}
	return gcm.Seal(nonce, nonce, plaintext, nil), nil
}

// aeadOpen reverses aeadSeal.
func aeadOpen(key, sealed []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("sgx: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: gcm: %w", err)
	}
	if len(sealed) < gcm.NonceSize() {
		return nil, errors.New("sgx: sealed blob too short")
	}
	nonce, ct := sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():]
	pt, err := gcm.Open(nil, nonce, ct, nil)
	if err != nil {
		return nil, errors.New("sgx: unseal failed (wrong identity or tampered)")
	}
	return pt, nil
}
