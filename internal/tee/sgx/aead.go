package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
)

// aeadSeal encrypts with AES-256-GCM under key (32 bytes), prefixing a random
// nonce.
func aeadSeal(key, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("sgx: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: gcm: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("sgx: nonce: %w", err)
	}
	//ironsafe:allow noncereuse -- sealing-identity blobs are written a handful of times per enclave lifetime; a fresh crypto/rand nonce cannot collide at that rate
	return gcm.Seal(nonce, nonce, plaintext, nil), nil
}

// aeadOpen reverses aeadSeal.
func aeadOpen(key, sealed []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("sgx: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: gcm: %w", err)
	}
	if len(sealed) < gcm.NonceSize() {
		return nil, errors.New("sgx: sealed blob too short")
	}
	nonce, ct := sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():]
	//ironsafe:allow noncereuse -- nonce is carried in the sealed blob and authenticated by the GCM tag; unsealing accepts only blobs this identity sealed
	pt, err := gcm.Open(nil, nonce, ct, nil)
	if err != nil {
		return nil, errors.New("sgx: unseal failed (wrong identity or tampered)")
	}
	return pt, nil
}
