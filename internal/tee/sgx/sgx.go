// Package sgx simulates the Intel SGX primitives IronSafe needs on the host
// side: enclave creation with code measurement, ECALL/OCALL transition
// accounting, an EPC (enclave page cache) model with paging beyond the
// hardware limit, sealed storage, and remote attestation quotes verified by a
// simulated Intel Attestation Service.
//
// The real hardware's security guarantees obviously cannot be reproduced in
// software; what is reproduced is the complete protocol and performance
// surface: everything the rest of IronSafe observes about SGX (measurements,
// quotes, signatures, transition and paging costs) behaves as on hardware.
package sgx

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"ironsafe/internal/simtime"
)

// Measurement is the SHA-256 hash of an enclave's initial code and data
// (MRENCLAVE in real SGX).
type Measurement [32]byte

// String renders the measurement as hex.
func (m Measurement) String() string { return fmt.Sprintf("%x", m[:8]) }

// MeasureCode computes the measurement of an enclave image.
func MeasureCode(image []byte) Measurement {
	return Measurement(sha256.Sum256(image))
}

// Platform models one SGX-capable CPU package: it owns the fused attestation
// key whose public half the (simulated) Intel Attestation Service knows.
type Platform struct {
	ID      string
	signKey ed25519.PrivateKey
	sealKey []byte // root sealing secret fused into the CPU

	mu       sync.Mutex
	enclaves map[uint64]*Enclave
	nextID   uint64
}

// NewPlatform creates a platform and registers it with the attestation
// service so its quotes verify.
func NewPlatform(id string, ias *AttestationService) (*Platform, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("sgx: generating platform key: %w", err)
	}
	seal := make([]byte, 32)
	if _, err := rand.Read(seal); err != nil {
		return nil, fmt.Errorf("sgx: generating seal key: %w", err)
	}
	p := &Platform{ID: id, signKey: priv, sealKey: seal, enclaves: map[uint64]*Enclave{}}
	if ias != nil {
		ias.RegisterPlatform(id, pub)
	}
	return p, nil
}

// Enclave is a protected execution context. All query processing on the host
// side runs "inside" an enclave: callers wrap entry points in ECall so
// transition and paging costs are charged exactly where real SGX charges
// them.
type Enclave struct {
	platform    *Platform
	id          uint64
	measurement Measurement
	meter       *simtime.Meter

	mu        sync.Mutex
	destroyed bool
	epcLimit  int64
	resident  int64            // bytes currently resident in EPC
	pages     map[uint64]bool  // resident page set (4 KiB granules)
	lru       []uint64         // FIFO eviction order (clock approximation)
	heap      map[string]int64 // named allocations
}

const epcPageSize = 4096

// Config controls enclave creation.
type Config struct {
	// EPCLimitBytes bounds resident enclave memory; beyond it touches fault.
	// Zero means the platform default of 96 MiB.
	EPCLimitBytes int64
	// Meter receives transition and paging counters. Must not be nil.
	Meter *simtime.Meter
}

// AttestationPublicKey exposes the platform's attestation verification key
// for out-of-band IAS provisioning (what Intel's manufacturing flow does).
func (p *Platform) AttestationPublicKey() ed25519.PublicKey {
	return p.signKey.Public().(ed25519.PublicKey)
}

// CreateEnclave loads an image, measures it, and returns the running enclave.
func (p *Platform) CreateEnclave(image []byte, cfg Config) (*Enclave, error) {
	if cfg.Meter == nil {
		return nil, errors.New("sgx: enclave requires a meter")
	}
	limit := cfg.EPCLimitBytes
	if limit == 0 {
		limit = 96 << 20
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	e := &Enclave{
		platform:    p,
		id:          p.nextID,
		measurement: MeasureCode(image),
		meter:       cfg.Meter,
		epcLimit:    limit,
		pages:       map[uint64]bool{},
		heap:        map[string]int64{},
	}
	p.enclaves[e.id] = e
	return e, nil
}

// Measurement returns the enclave's code measurement.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// ECall enters the enclave, runs fn, and exits, charging one transition pair.
// Nested ECalls charge again, as on hardware.
func (e *Enclave) ECall(fn func() error) error {
	e.mu.Lock()
	if e.destroyed {
		e.mu.Unlock()
		return errors.New("sgx: enclave destroyed")
	}
	e.mu.Unlock()
	e.meter.EnclaveTransitions.Add(1)
	return fn()
}

// OCall models the enclave calling out to the untrusted runtime (e.g. for a
// syscall); it charges a transition pair.
func (e *Enclave) OCall(fn func() error) error {
	e.meter.EnclaveTransitions.Add(1)
	return fn()
}

// Touch records that the enclave's working set references size bytes starting
// at a virtual offset. If the resident set exceeds the EPC limit, pages are
// evicted and the reload is charged as EPC faults — the mechanism behind the
// paper's hos slowdowns at scale factors whose Merkle trees exceed 96 MiB.
func (e *Enclave) Touch(base uint64, size int64) {
	if size <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	first := base / epcPageSize
	last := (base + uint64(size) - 1) / epcPageSize
	for pg := first; pg <= last; pg++ {
		if e.pages[pg] {
			continue
		}
		// Evict until there is room.
		for e.resident+epcPageSize > e.epcLimit && len(e.lru) > 0 {
			victim := e.lru[0]
			e.lru = e.lru[1:]
			if e.pages[victim] {
				delete(e.pages, victim)
				e.resident -= epcPageSize
				e.meter.EPCFaults.Add(1)
			}
		}
		e.pages[pg] = true
		e.lru = append(e.lru, pg)
		e.resident += epcPageSize
	}
}

// Alloc registers a named allocation of the given size inside the enclave and
// touches it. Realloc with a new size adjusts the working set.
func (e *Enclave) Alloc(name string, size int64) {
	e.mu.Lock()
	prev := e.heap[name]
	e.heap[name] = size
	e.mu.Unlock()
	if size > prev {
		// Place allocations at disjoint synthetic addresses per name.
		h := sha256.Sum256([]byte(name))
		base := binary.LittleEndian.Uint64(h[:8]) &^ 0xFFF
		e.Touch(base+uint64(prev), size-prev)
	}
}

// ResidentBytes reports the current EPC-resident working set.
func (e *Enclave) ResidentBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.resident
}

// Destroy tears the enclave down; subsequent ECalls fail.
func (e *Enclave) Destroy() {
	e.mu.Lock()
	e.destroyed = true
	e.pages = map[uint64]bool{}
	e.lru = nil
	e.resident = 0
	e.mu.Unlock()
	e.platform.mu.Lock()
	delete(e.platform.enclaves, e.id)
	e.platform.mu.Unlock()
}

// Quote is a remote attestation quote: the platform vouches (with its fused
// key) that an enclave with the given measurement is running and bound the
// caller-supplied report data (typically a public key or nonce).
type Quote struct {
	PlatformID  string
	Measurement Measurement
	ReportData  [64]byte
	Signature   []byte
}

func quoteDigest(platformID string, m Measurement, rd [64]byte) []byte {
	h := sha256.New()
	h.Write([]byte("sgx-quote-v1|"))
	h.Write([]byte(platformID))
	h.Write([]byte{'|'})
	h.Write(m[:])
	h.Write(rd[:])
	return h.Sum(nil)
}

// GetQuote produces an attestation quote for the enclave binding reportData.
func (e *Enclave) GetQuote(reportData [64]byte) Quote {
	e.meter.EnclaveTransitions.Add(1) // quote generation is an ECall
	sig := ed25519.Sign(e.platform.signKey, quoteDigest(e.platform.ID, e.measurement, reportData))
	return Quote{
		PlatformID:  e.platform.ID,
		Measurement: e.measurement,
		ReportData:  reportData,
		Signature:   sig,
	}
}

// Seal encrypts data so only an enclave with the same measurement on the same
// platform can recover it (MRENCLAVE sealing policy). The result is
// confidential and integrity protected.
func (e *Enclave) Seal(plaintext []byte) ([]byte, error) {
	key := deriveSealKey(e.platform.sealKey, e.measurement)
	return aeadSeal(key, plaintext)
}

// DeriveSealedKey deterministically derives a 32-byte key bound to this
// enclave's identity and the label — the SGX EGETKEY sealing-key primitive.
// Only an enclave with the same measurement on the same platform derives the
// same key.
func (e *Enclave) DeriveSealedKey(label string) ([]byte, error) {
	mac := hmac.New(sha256.New, deriveSealKey(e.platform.sealKey, e.measurement))
	mac.Write([]byte("egetkey|"))
	mac.Write([]byte(label))
	return mac.Sum(nil), nil
}

// Unseal reverses Seal for the same enclave identity.
func (e *Enclave) Unseal(sealed []byte) ([]byte, error) {
	key := deriveSealKey(e.platform.sealKey, e.measurement)
	return aeadOpen(key, sealed)
}

func deriveSealKey(root []byte, m Measurement) []byte {
	mac := hmac.New(sha256.New, root)
	mac.Write([]byte("seal|"))
	mac.Write(m[:])
	return mac.Sum(nil)
}

// AttestationService simulates the Intel Attestation Service (IAS): it knows
// the attestation public key of every genuine platform and verdicts quotes.
type AttestationService struct {
	mu        sync.RWMutex
	platforms map[string]ed25519.PublicKey
}

// NewAttestationService returns an empty IAS.
func NewAttestationService() *AttestationService {
	return &AttestationService{platforms: map[string]ed25519.PublicKey{}}
}

// RegisterPlatform records a genuine platform's attestation public key.
func (s *AttestationService) RegisterPlatform(id string, pub ed25519.PublicKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.platforms[id] = pub
}

// Verify checks a quote's signature against the registered platform key.
func (s *AttestationService) Verify(q Quote) error {
	s.mu.RLock()
	pub, ok := s.platforms[q.PlatformID]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("sgx: unknown platform %q", q.PlatformID)
	}
	if !ed25519.Verify(pub, quoteDigest(q.PlatformID, q.Measurement, q.ReportData), q.Signature) {
		return errors.New("sgx: quote signature invalid")
	}
	return nil
}
