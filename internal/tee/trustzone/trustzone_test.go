package trustzone

import (
	"bytes"
	"testing"

	"ironsafe/internal/simtime"
)

// bootDevice manufactures a device and boots it with a standard image set.
func bootDevice(t *testing.T) (*Vendor, *Device, *SecureWorld, *NormalWorld, *simtime.Meter) {
	t.Helper()
	vendor, err := NewVendor("acme")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice("storage-01", vendor)
	if err != nil {
		t.Fatal(err)
	}
	atf := vendor.SignImage("atf", "2.4", []byte("arm trusted firmware"))
	tos := vendor.SignImage("optee", "3.4", []byte("op-tee trusted os"))
	nwImg := FirmwareImage{Name: "normal-world", Version: "1.0", Code: []byte("linux + storage engine")}
	var m simtime.Meter
	sw, nw, err := dev.Boot(atf, tos, nwImg, &m)
	if err != nil {
		t.Fatal(err)
	}
	return vendor, dev, sw, nw, &m
}

func TestTrustedBootProducesChain(t *testing.T) {
	_, _, sw, nw, _ := bootDevice(t)
	chain := sw.BootChain()
	if len(chain) != 3 {
		t.Fatalf("boot chain length = %d", len(chain))
	}
	if chain[0].Stage != "atf" || chain[1].Stage != "optee" || chain[2].Stage != "normal-world" {
		t.Errorf("chain stages = %v", chain)
	}
	if nw.Measurement != MeasureImage([]byte("linux + storage engine")) {
		t.Error("normal world measurement mismatch")
	}
	if sw.NormalWorldMeasurement() != nw.Measurement {
		t.Error("secure/normal measurement disagreement")
	}
	if nw.FirmwareVersion != "1.0" {
		t.Errorf("fw version = %q", nw.FirmwareVersion)
	}
}

func TestBootRejectsUnsignedFirmware(t *testing.T) {
	vendor, _ := NewVendor("acme")
	evil, _ := NewVendor("evil")
	dev, _ := NewDevice("d", vendor)
	good := vendor.SignImage("atf", "2.4", []byte("atf"))
	tos := vendor.SignImage("optee", "3.4", []byte("optee"))
	nw := FirmwareImage{Name: "nw", Version: "1", Code: []byte("nw")}
	var m simtime.Meter

	// Image signed by the wrong vendor.
	badATF := evil.SignImage("atf", "2.4", []byte("atf"))
	if _, _, err := dev.Boot(badATF, tos, nw, &m); err == nil {
		t.Error("boot accepted wrong-vendor ATF")
	}
	// Tampered code under a valid signature.
	tampered := good
	tampered.Code = []byte("backdoored atf")
	if _, _, err := dev.Boot(tampered, tos, nw, &m); err == nil {
		t.Error("boot accepted tampered image")
	}
	// Version rollback under a signature for another version.
	rolled := good
	rolled.Version = "1.0"
	if _, _, err := dev.Boot(rolled, tos, nw, &m); err == nil {
		t.Error("boot accepted version-swapped image")
	}
	if _, _, err := dev.Boot(good, tos, nw, nil); err == nil {
		t.Error("boot without meter should fail")
	}
	// Sanity: the unmodified chain boots.
	if _, _, err := dev.Boot(good, tos, nw, &m); err != nil {
		t.Errorf("genuine boot failed: %v", err)
	}
}

func TestWorldSwitchAccounting(t *testing.T) {
	_, _, _, nw, m := bootDevice(t)
	before := m.Snapshot().WorldSwitches
	if _, err := nw.DeriveStorageKey("db"); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().WorldSwitches - before; got != 1 {
		t.Errorf("world switches per TA call = %d", got)
	}
}

func TestDeriveStorageKeyDeterministicPerLabel(t *testing.T) {
	_, _, _, nw, _ := bootDevice(t)
	k1, err := nw.DeriveStorageKey("db")
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := nw.DeriveStorageKey("db")
	k3, _ := nw.DeriveStorageKey("other")
	if !bytes.Equal(k1, k2) {
		t.Error("same label must derive same key")
	}
	if bytes.Equal(k1, k3) {
		t.Error("different labels must derive different keys")
	}
	if len(k1) != 32 {
		t.Errorf("key length = %d", len(k1))
	}
	if _, err := nw.DeriveStorageKey(""); err == nil {
		t.Error("empty label should fail")
	}
}

func TestDeriveKeyDeviceBound(t *testing.T) {
	vendor, _ := NewVendor("acme")
	d1, _ := NewDevice("a", vendor)
	d2, _ := NewDevice("b", vendor)
	img := vendor.SignImage("atf", "1", []byte("atf"))
	tos := vendor.SignImage("optee", "1", []byte("tos"))
	nwImg := FirmwareImage{Name: "nw", Version: "1", Code: []byte("nw")}
	var m simtime.Meter
	_, nw1, _ := d1.Boot(img, tos, nwImg, &m)
	_, nw2, _ := d2.Boot(img, tos, nwImg, &m)
	k1, _ := nw1.DeriveStorageKey("db")
	k2, _ := nw2.DeriveStorageKey("db")
	if bytes.Equal(k1, k2) {
		t.Error("storage keys must be device-unique (HUK-bound)")
	}
}

func TestAttestationRoundTrip(t *testing.T) {
	vendor, _, _, nw, _ := bootDevice(t)
	challenge := []byte("monitor-nonce-123")
	report, err := nw.Attest(challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReport(report, vendor.ROTPK, challenge); err != nil {
		t.Fatalf("genuine report rejected: %v", err)
	}
	if report.NormalWorld != nw.Measurement {
		t.Error("report attests wrong normal world")
	}
	if len(report.BootChain) != 3 {
		t.Errorf("boot chain in report = %d records", len(report.BootChain))
	}
}

func TestAttestationTamperDetected(t *testing.T) {
	vendor, _, _, nw, _ := bootDevice(t)
	challenge := []byte("nonce")
	report, _ := nw.Attest(challenge)

	bad := *report
	bad.NormalWorld[0] ^= 1
	if err := VerifyReport(&bad, vendor.ROTPK, challenge); err == nil {
		t.Error("tampered NW measurement accepted")
	}
	bad = *report
	bad.DeviceID = "impostor"
	if err := VerifyReport(&bad, vendor.ROTPK, challenge); err == nil {
		t.Error("device ID spoof accepted")
	}
	if err := VerifyReport(report, vendor.ROTPK, []byte("other-nonce")); err == nil {
		t.Error("replayed report (wrong challenge) accepted")
	}
	bad = *report
	bad.BootChain = bad.BootChain[:1]
	if err := VerifyReport(&bad, vendor.ROTPK, challenge); err == nil {
		t.Error("truncated boot chain accepted")
	}
	otherVendor, _ := NewVendor("other")
	if err := VerifyReport(report, otherVendor.ROTPK, challenge); err == nil {
		t.Error("report accepted under wrong ROTPK")
	}
}

func TestAttestationImpersonationRejected(t *testing.T) {
	// An attacker device from another vendor presents its own cert while
	// claiming a trusted vendor's identity.
	vendor, _ := NewVendor("acme")
	evilVendor, _ := NewVendor("evil")
	evilDev, _ := NewDevice("storage-01", evilVendor) // same ID as real device
	atf := evilVendor.SignImage("atf", "2.4", []byte("atf"))
	tos := evilVendor.SignImage("optee", "3.4", []byte("tos"))
	nwImg := FirmwareImage{Name: "nw", Version: "1", Code: []byte("nw")}
	var m simtime.Meter
	_, evilNW, err := evilDev.Boot(atf, tos, nwImg, &m)
	if err != nil {
		t.Fatal(err)
	}
	report, _ := evilNW.Attest([]byte("nonce"))
	if err := VerifyReport(report, vendor.ROTPK, []byte("nonce")); err == nil {
		t.Error("impersonating device accepted under victim ROTPK")
	}
}

func TestRPMBWriteReadRoundTrip(t *testing.T) {
	_, _, _, nw, m := bootDevice(t)
	payload := []byte("merkle-root-hmac")
	if err := nw.RPMBWrite(7, payload); err != nil {
		t.Fatal(err)
	}
	resp, err := nw.RPMBRead(7, []byte("nonce1"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, payload) {
		t.Errorf("read back %q", resp.Data)
	}
	if resp.Counter != 1 {
		t.Errorf("counter = %d, want 1", resp.Counter)
	}
	s := m.Snapshot()
	if s.RPMBWrites != 1 || s.RPMBReads != 1 {
		t.Errorf("rpmb accounting = %+v", s)
	}
}

func TestRPMBCounterMonotonic(t *testing.T) {
	_, _, _, nw, _ := bootDevice(t)
	for i := 0; i < 5; i++ {
		if err := nw.RPMBWrite(0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	resp, _ := nw.RPMBRead(0, []byte("n"))
	if resp.Counter != 5 {
		t.Errorf("counter = %d, want 5", resp.Counter)
	}
	if resp.Data[0] != 4 {
		t.Errorf("latest write lost: %v", resp.Data)
	}
}

func TestRPMBReplayedWriteRejected(t *testing.T) {
	_, dev, _, nw, _ := bootDevice(t)
	if err := nw.RPMBWrite(0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Capture a valid frame for counter 1, then replay it after another
	// write advanced the counter.
	frameMAC := dev.rpmb.MakeWriteMAC(0, []byte("v1-replay"), 1)
	if err := dev.rpmb.AuthorizedWrite(0, []byte("v1-replay"), 1, frameMAC); err != nil {
		t.Fatal(err)
	}
	if err := dev.rpmb.AuthorizedWrite(0, []byte("v1-replay"), 1, frameMAC); err == nil {
		t.Error("replayed write frame accepted")
	}
}

func TestRPMBBadMACRejected(t *testing.T) {
	_, dev, _, _, _ := bootDevice(t)
	err := dev.rpmb.AuthorizedWrite(0, []byte("x"), 0, []byte("not-a-mac"))
	if err == nil {
		t.Error("bad write MAC accepted")
	}
	if err := dev.rpmb.AuthorizedWrite(0, make([]byte, RPMBBlockSize+1), 0, nil); err == nil {
		t.Error("oversized block accepted")
	}
}

func TestRPMBRawTamperDetectedByMAC(t *testing.T) {
	_, dev, _, nw, _ := bootDevice(t)
	if err := nw.RPMBWrite(3, []byte("root-v1")); err != nil {
		t.Fatal(err)
	}
	resp, _ := nw.RPMBRead(3, []byte("n1"))
	// Physical attacker rewrites flash out of band.
	dev.rpmb.RawTamper(3, []byte("root-v0"))
	resp2, _ := nw.RPMBRead(3, []byte("n1"))
	if bytes.Equal(resp2.Data, resp.Data) {
		t.Skip("tamper did not change data")
	}
	// The freshness check is done by comparing the stored root against the
	// recomputed one; here we just confirm the stale data is visible and
	// distinguishable — securestore tests cover end-to-end detection.
	if bytes.Equal(resp2.Data, []byte("root-v1")) {
		t.Error("tamper had no effect")
	}
}

func TestInvokeUnknownTA(t *testing.T) {
	_, _, sw, nw, _ := bootDevice(t)
	if _, err := nw.InvokeTA("no-such-ta", "x", nil); err == nil {
		t.Error("unknown TA accepted")
	}
	if _, err := sw.InvokeTA(AttestationTAName, "bogus-cmd", nil); err == nil {
		t.Error("unknown command accepted")
	}
	if _, err := sw.InvokeTA(AttestationTAName, "attest", nil); err == nil {
		t.Error("empty challenge accepted")
	}
}

func TestInstallCustomTA(t *testing.T) {
	_, _, sw, nw, _ := bootDevice(t)
	sw.InstallTA("echo", echoTA{})
	out, err := nw.InvokeTA("echo", "say", []byte("hi"))
	if err != nil || string(out) != "hi" {
		t.Errorf("custom TA: %q, %v", out, err)
	}
}

type echoTA struct{}

func (echoTA) Invoke(cmd string, req []byte) ([]byte, error) { return req, nil }
