package trustzone

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
)

// Names of the built-in trusted applications.
const (
	// AttestationTAName generates remote attestation reports.
	AttestationTAName = "attestation-ta"
	// SecureStorageTAName derives HUK-bound keys and brokers RPMB access.
	SecureStorageTAName = "secure-storage-ta"
)

func (s *SecureWorld) installBuiltinTAs() {
	s.tas[AttestationTAName] = &attestationTA{sw: s}
	s.tas[SecureStorageTAName] = &secureStorageTA{sw: s}
}

// AttestationReport is the storage system's answer to a monitor challenge:
// the device signs (challenge, normal-world hash, boot chain) with its
// ROTPK-certified attestation key.
type AttestationReport struct {
	DeviceID    string      `json:"device_id"`
	Challenge   []byte      `json:"challenge"`
	NormalWorld Measurement `json:"normal_world"`
	BootChain   BootChain   `json:"boot_chain"`
	Cert        DeviceCert  `json:"cert"`
	Signature   []byte      `json:"signature"`
}

func reportDigest(r *AttestationReport) []byte {
	h := sha256.New()
	h.Write([]byte("tz-report-v1|"))
	h.Write([]byte(r.DeviceID))
	h.Write([]byte{'|'})
	h.Write(r.Challenge)
	h.Write(r.NormalWorld[:])
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(r.BootChain)))
	h.Write(n[:])
	for _, rec := range r.BootChain {
		h.Write([]byte(rec.Stage))
		h.Write([]byte{'|'})
		h.Write([]byte(rec.Version))
		h.Write([]byte{'|'})
		h.Write(rec.Measurement[:])
	}
	return h.Sum(nil)
}

// attestationTA implements the remote attestation protocol of §4.2/Fig 4b.
type attestationTA struct {
	sw *SecureWorld
}

// Invoke handles "attest" with the challenge as request body and returns a
// JSON-encoded AttestationReport.
func (ta *attestationTA) Invoke(cmd string, req []byte) ([]byte, error) {
	if cmd != "attest" {
		return nil, fmt.Errorf("trustzone: attestation TA: unknown command %q", cmd)
	}
	if len(req) == 0 {
		return nil, errors.New("trustzone: attestation TA: empty challenge")
	}
	d := ta.sw.device
	report := AttestationReport{
		DeviceID:    d.ID,
		Challenge:   append([]byte(nil), req...),
		NormalWorld: ta.sw.nwMeasurement,
		BootChain:   ta.sw.BootChain(),
		Cert:        d.cert,
	}
	report.Signature = ed25519.Sign(d.attestKey, reportDigest(&report))
	return json.Marshal(report)
}

// VerifyReport validates an attestation report against a vendor ROTPK and
// the challenge the verifier issued. On success it returns nil; the caller
// then decides whether the attested measurements satisfy policy.
func VerifyReport(report *AttestationReport, rotpk ed25519.PublicKey, challenge []byte) error {
	if !ed25519.Verify(rotpk, deviceCertDigest(report.Cert.DeviceID, report.Cert.AttestPK), report.Cert.Sig) {
		return errors.New("trustzone: device certificate not signed by ROTPK")
	}
	if report.Cert.DeviceID != report.DeviceID {
		return fmt.Errorf("trustzone: certificate issued to %q but report claims %q", report.Cert.DeviceID, report.DeviceID)
	}
	if string(report.Challenge) != string(challenge) {
		return errors.New("trustzone: challenge mismatch (replayed report?)")
	}
	if !ed25519.Verify(report.Cert.AttestPK, reportDigest(report), report.Signature) {
		return errors.New("trustzone: report signature invalid")
	}
	return nil
}

// secureStorageTA brokers HUK-derived keys and RPMB access for the trusted
// normal-world storage stack.
type secureStorageTA struct {
	sw *SecureWorld
}

// rpmbWriteReq is the JSON body of an "rpmb-write" command.
type rpmbWriteReq struct {
	Addr uint16 `json:"addr"`
	Data []byte `json:"data"`
}

// rpmbReadReq is the JSON body of an "rpmb-read" command.
type rpmbReadReq struct {
	Addr  uint16 `json:"addr"`
	Nonce []byte `json:"nonce"`
}

// RPMBReadResp is the JSON response of an "rpmb-read" command.
type RPMBReadResp struct {
	Data    []byte `json:"data"`
	Counter uint32 `json:"counter"`
	MAC     []byte `json:"mac"`
}

// Invoke handles:
//
//	"derive":      req is a label; returns a 32-byte HUK-derived key.
//	"rpmb-write":  req is rpmbWriteReq; the TA authenticates the write with
//	               the RPMB key it alone holds.
//	"rpmb-read":   req is rpmbReadReq; returns RPMBReadResp with the MAC
//	               verified by the TA before returning.
func (ta *secureStorageTA) Invoke(cmd string, req []byte) ([]byte, error) {
	d := ta.sw.device
	switch cmd {
	case "derive":
		if len(req) == 0 {
			return nil, errors.New("trustzone: derive: empty label")
		}
		return deriveKey(d.huk[:], "storage|"+string(req)), nil
	case "rpmb-write":
		var r rpmbWriteReq
		if err := json.Unmarshal(req, &r); err != nil {
			return nil, fmt.Errorf("trustzone: rpmb-write: %w", err)
		}
		counter := d.rpmb.WriteCounter()
		mac := d.rpmb.MakeWriteMAC(r.Addr, r.Data, counter)
		ta.sw.meter.RPMBWrites.Add(1)
		if err := d.rpmb.AuthorizedWrite(r.Addr, r.Data, counter, mac); err != nil {
			return nil, err
		}
		return nil, nil
	case "rpmb-read":
		var r rpmbReadReq
		if err := json.Unmarshal(req, &r); err != nil {
			return nil, fmt.Errorf("trustzone: rpmb-read: %w", err)
		}
		ta.sw.meter.RPMBReads.Add(1)
		data, counter, mac := d.rpmb.AuthorizedRead(r.Addr, r.Nonce)
		if !d.rpmb.VerifyReadMAC(r.Addr, data, counter, r.Nonce, mac) {
			return nil, errors.New("trustzone: rpmb read response MAC invalid")
		}
		return json.Marshal(RPMBReadResp{Data: data, Counter: counter, MAC: mac})
	default:
		return nil, fmt.Errorf("trustzone: secure storage TA: unknown command %q", cmd)
	}
}

// RPMBWrite is a normal-world convenience wrapper around the secure-storage
// TA's "rpmb-write" command.
func (n *NormalWorld) RPMBWrite(addr uint16, data []byte) error {
	req, err := json.Marshal(rpmbWriteReq{Addr: addr, Data: data})
	if err != nil {
		return err
	}
	_, err = n.InvokeTA(SecureStorageTAName, "rpmb-write", req)
	return err
}

// RPMBRead is a normal-world convenience wrapper around "rpmb-read".
func (n *NormalWorld) RPMBRead(addr uint16, nonce []byte) (*RPMBReadResp, error) {
	req, err := json.Marshal(rpmbReadReq{Addr: addr, Nonce: nonce})
	if err != nil {
		return nil, err
	}
	out, err := n.InvokeTA(SecureStorageTAName, "rpmb-read", req)
	if err != nil {
		return nil, err
	}
	var resp RPMBReadResp
	if err := json.Unmarshal(out, &resp); err != nil {
		return nil, fmt.Errorf("trustzone: rpmb-read response: %w", err)
	}
	return &resp, nil
}

// Attest is a convenience wrapper invoking the attestation TA.
func (n *NormalWorld) Attest(challenge []byte) (*AttestationReport, error) {
	out, err := n.InvokeTA(AttestationTAName, "attest", challenge)
	if err != nil {
		return nil, err
	}
	var report AttestationReport
	if err := json.Unmarshal(out, &report); err != nil {
		return nil, fmt.Errorf("trustzone: attest response: %w", err)
	}
	return &report, nil
}
