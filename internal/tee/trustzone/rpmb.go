package trustzone

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// RPMB simulates an eMMC replay-protected memory block: a small authenticated
// store whose writes carry a MAC over (key, address, data, write counter) and
// whose reads are bound to a caller nonce. The monotonic write counter is the
// anti-replay/anti-fork anchor: a replayed write frame carries a stale
// counter and is rejected, and two forked replicas cannot both advance the
// same counter.
type RPMB struct {
	mu      sync.Mutex
	key     []byte
	counter uint32
	blocks  map[uint16][]byte
}

// RPMBBlockSize is the fixed block payload size (256 bytes as in eMMC).
const RPMBBlockSize = 256

func newRPMB(key []byte) *RPMB {
	return &RPMB{key: key, blocks: map[uint16][]byte{}}
}

// WriteCounter returns the current monotonic write counter.
func (r *RPMB) WriteCounter() uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counter
}

func (r *RPMB) writeMAC(addr uint16, data []byte, counter uint32) []byte {
	mac := hmac.New(sha256.New, r.key)
	mac.Write([]byte("rpmb-write|"))
	var hdr [6]byte
	binary.BigEndian.PutUint16(hdr[0:2], addr)
	binary.BigEndian.PutUint32(hdr[2:6], counter)
	mac.Write(hdr[:])
	mac.Write(data)
	return mac.Sum(nil)
}

func (r *RPMB) readMAC(addr uint16, data []byte, counter uint32, nonce []byte) []byte {
	mac := hmac.New(sha256.New, r.key)
	mac.Write([]byte("rpmb-read|"))
	var hdr [6]byte
	binary.BigEndian.PutUint16(hdr[0:2], addr)
	binary.BigEndian.PutUint32(hdr[2:6], counter)
	mac.Write(hdr[:])
	mac.Write(nonce)
	mac.Write(data)
	return mac.Sum(nil)
}

// AuthorizedWrite writes one block. The caller must present a MAC computed
// with the RPMB key over (addr, data, expectedCounter); a wrong MAC or stale
// counter is rejected, which is what defeats replayed write frames.
func (r *RPMB) AuthorizedWrite(addr uint16, data []byte, expectedCounter uint32, mac []byte) error {
	if len(data) > RPMBBlockSize {
		return fmt.Errorf("trustzone: rpmb block too large (%d > %d)", len(data), RPMBBlockSize)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if expectedCounter != r.counter {
		return fmt.Errorf("trustzone: rpmb write counter mismatch (got %d, device at %d): replay or fork detected", expectedCounter, r.counter)
	}
	if !hmac.Equal(mac, r.writeMAC(addr, data, expectedCounter)) {
		return errors.New("trustzone: rpmb write MAC invalid")
	}
	r.blocks[addr] = append([]byte(nil), data...)
	r.counter++
	return nil
}

// AuthorizedRead returns (data, counter, mac-over-nonce). The caller verifies
// the MAC with the shared key to authenticate the response and binds it to
// the fresh nonce to prevent response replay.
func (r *RPMB) AuthorizedRead(addr uint16, nonce []byte) (data []byte, counter uint32, mac []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	data = append([]byte(nil), r.blocks[addr]...)
	counter = r.counter
	mac = r.readMAC(addr, data, counter, nonce)
	return data, counter, mac
}

// VerifyReadMAC lets a key-holder validate an AuthorizedRead response.
func (r *RPMB) VerifyReadMAC(addr uint16, data []byte, counter uint32, nonce, mac []byte) bool {
	return hmac.Equal(mac, r.readMAC(addr, data, counter, nonce))
}

// MakeWriteMAC computes the MAC an authorized agent attaches to a write.
// Only holders of the RPMB key (the secure-storage TA) can produce it.
func (r *RPMB) MakeWriteMAC(addr uint16, data []byte, counter uint32) []byte {
	return r.writeMAC(addr, data, counter)
}

// RawTamper models a physical attacker overwriting RPMB flash contents out
// of band (for tests of detection paths). It bypasses authentication on
// purpose — real RPMB would not allow this, but the *detection* of such
// tampering by MAC verification is what IronSafe relies on.
func (r *RPMB) RawTamper(addr uint16, data []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.blocks[addr] = append([]byte(nil), data...)
}
