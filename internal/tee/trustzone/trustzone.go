// Package trustzone simulates the ARM TrustZone stack IronSafe's storage
// system relies on: a secure/normal world split, a trusted-boot chain rooted
// in a vendor ROTPK, trusted applications (attestation and secure storage),
// a hardware-unique key, and an RPMB (replay-protected memory block) region.
//
// As with package sgx, the simulation reproduces the protocol and performance
// surface of the hardware: signature-verified boot stages, boot-time
// measurement of the normal world, ROTPK-rooted attestation reports, HUK-
// derived storage keys, and write-counter-protected RPMB operations. World
// switches and RPMB operations are charged to a Meter.
package trustzone

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"ironsafe/internal/simtime"
)

// Measurement is the SHA-256 hash of a firmware image.
type Measurement [32]byte

// MeasureImage computes the measurement of a firmware image's code.
func MeasureImage(code []byte) Measurement { return Measurement(sha256.Sum256(code)) }

// String renders the measurement as truncated hex.
func (m Measurement) String() string { return fmt.Sprintf("%x", m[:8]) }

// Vendor holds the root-of-trust signing key whose public half (the ROTPK)
// is fused into every device it manufactures.
type Vendor struct {
	Name  string
	ROTPK ed25519.PublicKey
	key   ed25519.PrivateKey
}

// NewVendor creates a vendor with a fresh root-of-trust key pair.
func NewVendor(name string) (*Vendor, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("trustzone: vendor key: %w", err)
	}
	return &Vendor{Name: name, ROTPK: pub, key: priv}, nil
}

// FirmwareImage is one signed boot stage.
type FirmwareImage struct {
	Name    string
	Version string
	Code    []byte
	Sig     []byte // vendor signature over Name|Version|hash(Code)
}

func imageDigest(name, version string, code []byte) []byte {
	h := sha256.New()
	h.Write([]byte("tz-image-v1|"))
	h.Write([]byte(name))
	h.Write([]byte{'|'})
	h.Write([]byte(version))
	h.Write([]byte{'|'})
	m := MeasureImage(code)
	h.Write(m[:])
	return h.Sum(nil)
}

// SignImage produces a signed firmware image.
func (v *Vendor) SignImage(name, version string, code []byte) FirmwareImage {
	return FirmwareImage{
		Name:    name,
		Version: version,
		Code:    code,
		Sig:     ed25519.Sign(v.key, imageDigest(name, version, code)),
	}
}

// DeviceCert binds a device's attestation public key to its identity,
// signed by the vendor ROTPK at manufacturing time.
type DeviceCert struct {
	DeviceID string
	AttestPK ed25519.PublicKey
	Sig      []byte
}

func deviceCertDigest(id string, pk ed25519.PublicKey) []byte {
	h := sha256.New()
	h.Write([]byte("tz-devcert-v1|"))
	h.Write([]byte(id))
	h.Write([]byte{'|'})
	h.Write(pk)
	return h.Sum(nil)
}

// Device models one TrustZone-capable SoC with a fused hardware-unique key
// and the vendor's ROTPK in tamper-proof ROM.
type Device struct {
	ID    string
	rotpk ed25519.PublicKey
	huk   [32]byte
	// attestKey is derived deterministically from the HUK at manufacture;
	// the vendor certifies its public half.
	attestKey ed25519.PrivateKey
	cert      DeviceCert
	rpmb      *RPMB
}

// NewDevice manufactures a device: fuses a HUK, derives the attestation key,
// and has the vendor certify it.
func NewDevice(id string, vendor *Vendor) (*Device, error) {
	var huk [32]byte
	if _, err := rand.Read(huk[:]); err != nil {
		return nil, fmt.Errorf("trustzone: huk: %w", err)
	}
	seed := deriveKey(huk[:], "attest-key")
	attest := ed25519.NewKeyFromSeed(seed)
	pub := attest.Public().(ed25519.PublicKey)
	cert := DeviceCert{
		DeviceID: id,
		AttestPK: pub,
		Sig:      ed25519.Sign(vendor.key, deviceCertDigest(id, pub)),
	}
	d := &Device{ID: id, rotpk: vendor.ROTPK, huk: huk, attestKey: attest, cert: cert}
	d.rpmb = newRPMB(deriveKey(huk[:], "rpmb-key"))
	return d, nil
}

// deriveKey is the HUK-rooted key derivation (HMAC-SHA-256 KDF).
func deriveKey(root []byte, label string) []byte {
	mac := hmac.New(sha256.New, root)
	mac.Write([]byte("tz-kdf-v1|"))
	mac.Write([]byte(label))
	return mac.Sum(nil)
}

// BootRecord is one verified stage of the trusted boot chain.
type BootRecord struct {
	Stage       string
	Version     string
	Measurement Measurement
}

// BootChain is the ordered, attested record of every boot stage.
type BootChain []BootRecord

// Boot performs trusted boot: the ROM verifies the ATF image against the
// ROTPK, ATF verifies the trusted OS, and the trusted OS measures the normal
// world image before handing over control. Any signature failure aborts the
// boot, leaving the device without a running secure world — exactly the
// paper's "ineligible for query offloading" state.
func (d *Device) Boot(atf, tos, normalWorld FirmwareImage, meter *simtime.Meter) (*SecureWorld, *NormalWorld, error) {
	if meter == nil {
		return nil, nil, errors.New("trustzone: boot requires a meter")
	}
	chain := BootChain{}
	for _, img := range []FirmwareImage{atf, tos} {
		if !ed25519.Verify(d.rotpk, imageDigest(img.Name, img.Version, img.Code), img.Sig) {
			return nil, nil, fmt.Errorf("trustzone: secure boot: signature check failed for %q", img.Name)
		}
		chain = append(chain, BootRecord{Stage: img.Name, Version: img.Version, Measurement: MeasureImage(img.Code)})
	}
	// The trusted OS measures the normal world (it need not be vendor
	// signed; its hash is attested instead and checked by the monitor).
	nwMeasurement := MeasureImage(normalWorld.Code)
	chain = append(chain, BootRecord{Stage: normalWorld.Name, Version: normalWorld.Version, Measurement: nwMeasurement})

	sw := &SecureWorld{
		device:        d,
		meter:         meter,
		bootChain:     chain,
		nwMeasurement: nwMeasurement,
		tas:           map[string]TrustedApp{},
	}
	sw.installBuiltinTAs()
	nw := &NormalWorld{secure: sw, Measurement: nwMeasurement, FirmwareVersion: normalWorld.Version}
	return sw, nw, nil
}

// TrustedApp is the interface a TA exposes to the secure world dispatcher.
type TrustedApp interface {
	// Invoke handles one command with an opaque request and response.
	Invoke(cmd string, req []byte) ([]byte, error)
}

// SecureWorld hosts the trusted OS and its TAs.
type SecureWorld struct {
	device        *Device
	meter         *simtime.Meter
	bootChain     BootChain
	nwMeasurement Measurement

	mu  sync.RWMutex
	tas map[string]TrustedApp
}

// BootChain returns the attested boot record.
func (s *SecureWorld) BootChain() BootChain { return append(BootChain{}, s.bootChain...) }

// NormalWorldMeasurement returns the measured hash of the normal world image.
func (s *SecureWorld) NormalWorldMeasurement() Measurement { return s.nwMeasurement }

// InstallTA registers a trusted application under a name.
func (s *SecureWorld) InstallTA(name string, ta TrustedApp) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tas[name] = ta
}

// InvokeTA performs an SMC world switch into the named TA.
func (s *SecureWorld) InvokeTA(name, cmd string, req []byte) ([]byte, error) {
	s.meter.WorldSwitches.Add(1)
	s.mu.RLock()
	ta, ok := s.tas[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("trustzone: no TA %q", name)
	}
	return ta.Invoke(cmd, req)
}

// NormalWorld is the handle the REE software holds: it can invoke TAs but
// cannot read secure-world state.
type NormalWorld struct {
	secure          *SecureWorld
	Measurement     Measurement
	FirmwareVersion string
}

// InvokeTA calls into the secure world from the normal world.
func (n *NormalWorld) InvokeTA(name, cmd string, req []byte) ([]byte, error) {
	return n.secure.InvokeTA(name, cmd, req)
}

// DeriveStorageKey asks the secure-storage TA for a HUK-derived key bound to
// label. This is how the storage engine obtains its page-encryption key
// without the key ever existing outside HUK-derived material.
func (n *NormalWorld) DeriveStorageKey(label string) ([]byte, error) {
	return n.InvokeTA(SecureStorageTAName, "derive", []byte(label))
}
