package analysis_test

import (
	"testing"

	"ironsafe/internal/analysis"
	"ironsafe/internal/analysis/analysistest"
)

func TestRawnetNakedDialAndConnIO(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Rawnet, "internal/ctl/nakeddial")
}

func TestRawnetAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Rawnet, "internal/ctl/rawnetallow")
}

// TestRawnetExemptWrapper pins that the wrapper layers themselves are
// exempt: the same violations under internal/resilience report nothing.
func TestRawnetExemptWrapper(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Rawnet, "internal/resilience/wrapperexempt")
}
