// Package budgetlessout lives outside the cluster/hostengine subtree: the
// budgetless analyzer must not fire here (storage services and tooling run
// no query budget). Asserted by declaring no wants.
package budgetlessout

import "ironsafe/internal/resilience"

func serviceRetry(cfg *resilience.Config) error {
	return resilience.Retry(cfg, 3, func(int) error { return nil })
}
