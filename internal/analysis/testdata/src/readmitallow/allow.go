// Package readmitallow seeds readmit violations suppressed by allow
// directives; the test asserts no diagnostics survive.
package readmitallow

type health interface {
	MarkUp(id string)
}

type cluster struct {
	down   map[string]bool
	health health
}

func (c *cluster) reattest(id string) {
	//ironsafe:allow readmit -- sole legitimate readmission site, behind sweep+attestation
	delete(c.down, id)
	c.health.MarkUp(id) //ironsafe:allow readmit -- paired with the down-set removal above
}
