// Package sealerr seeds one violation per sealerr diagnostic form, plus
// the checked forms that must stay silent.
package sealerr

import (
	"crypto/rand"
	"io"
)

type vault struct{}

func (vault) Seal(dst, nonce, plaintext, ad []byte) ([]byte, error) { return nil, nil }
func (vault) Open(dst, nonce, ciphertext, ad []byte) ([]byte, error) {
	return nil, nil
}
func (vault) Verify() error              { return nil }
func (vault) AttestQuote() error         { return nil }
func Verify(sig []byte) error            { return nil }
func AttestAll() error                   { return nil }
func Unseal(blob []byte) ([]byte, error) { return nil, nil }

func discarded(v vault, r io.Reader) {
	v.Seal(nil, nil, nil, nil) // want `result of Seal call discarded`
	v.Open(nil, nil, nil, nil) // want `result of Open call discarded`
	v.Verify()                 // want `result of Verify call discarded`
	v.AttestQuote()            // want `result of AttestQuote call discarded`
	Verify(nil)                // want `result of Verify call discarded`
	Unseal(nil)                // want `result of Unseal call discarded`

	buf := make([]byte, 32)
	rand.Read(buf)         // want `result of rand\.Read call discarded`
	_, _ = rand.Read(buf)  // want `all results of rand\.Read call assigned to blank`
	n, _ := rand.Read(buf) // want `error result of rand\.Read call assigned to blank`
	_ = n
	_, _ = v.Open(nil, nil, nil, nil) // want `all results of Open call assigned to blank`

	go AttestAll()   // want `result of AttestAll call discarded by go statement`
	defer v.Verify() // want `result of Verify call discarded by defer`

	// Checked forms: no diagnostics.
	if err := Verify(nil); err != nil {
		panic(err)
	}
	if _, err := rand.Read(buf); err != nil {
		panic(err)
	}
	ct, err := v.Seal(nil, nil, nil, nil)
	_, _ = ct, err

	// Read on an arbitrary io.Reader is not a security boundary.
	r.Read(buf)
}
