// Package noncereuseallow seeds non-counter-nonce AEAD calls suppressed by
// allow directives, in both sanctioned placements (the line above and the
// flagged line itself); the test asserts no diagnostics survive.
package noncereuseallow

import "crypto/rand"

type aead struct{}

func (aead) Seal(dst, nonce, plaintext, additionalData []byte) []byte { return nil }
func (aead) Open(dst, nonce, ciphertext, additionalData []byte) ([]byte, error) {
	return nil, nil
}
func (aead) NonceSize() int { return 12 }

func randomSeal(gcm aead, plain []byte) []byte {
	nonce := make([]byte, gcm.NonceSize())
	rand.Read(nonce)
	//ironsafe:allow noncereuse -- fresh 96-bit random nonce per seal; well under the birthday bound for this key's lifetime
	return gcm.Seal(nonce, nonce, plain, nil)
}

func foreignOpen(gcm aead, sealed []byte) ([]byte, error) {
	nonce, ct := sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():]
	return gcm.Open(nil, nonce, ct, nil) //ironsafe:allow noncereuse -- nonce travels with the record and is authenticated by the GCM tag
}
