// Package noncereuse seeds AEAD calls with counter-derived, random, and
// foreign nonces; only the non-counter ones must be flagged.
package noncereuse

import (
	"crypto/rand"
	"encoding/binary"

	"internal/fakestore"
)

type aead struct{}

func (aead) Seal(dst, nonce, plaintext, additionalData []byte) []byte { return nil }
func (aead) Open(dst, nonce, ciphertext, additionalData []byte) ([]byte, error) {
	return nil, nil
}
func (aead) NonceSize() int { return 12 }

// counterSeal is the sanctioned transport pattern: a per-key sequence
// counter serialized into the nonce right before sealing.
func counterSeal(gcm aead, seq uint64, plain []byte) []byte {
	nonce := make([]byte, gcm.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], seq)
	return gcm.Seal(nil, nonce, plain, nil)
}

// counterOpen checks the mirror-image receive sequence.
func counterOpen(gcm aead, seq uint64, ct []byte) ([]byte, error) {
	nonce := make([]byte, gcm.NonceSize())
	binary.LittleEndian.PutUint32(nonce[:4], uint32(seq))
	return gcm.Open(nil, nonce, ct, nil)
}

// randomSeal draws the nonce from the CSPRNG — no visible counter, flagged.
func randomSeal(gcm aead, plain []byte) []byte {
	nonce := make([]byte, gcm.NonceSize())
	rand.Read(nonce)
	return gcm.Seal(nonce, nonce, plain, nil) // want `AEAD Seal nonce is not derived from a sequence counter`
}

// foreignOpen takes the nonce out of the attacker-supplied blob — flagged.
func foreignOpen(gcm aead, sealed []byte) ([]byte, error) {
	nonce, ct := sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():]
	return gcm.Open(nil, nonce, ct, nil) // want `AEAD Open nonce is not derived from a sequence counter`
}

// exprNonce passes a non-identifier nonce expression; derivation cannot be
// proven, so it is flagged even though a counter exists in the function.
func exprNonce(gcm aead, seq uint64, plain []byte) []byte {
	buf := make([]byte, 24)
	binary.BigEndian.PutUint64(buf[:8], seq)
	return gcm.Seal(nil, buf[:gcm.NonceSize()], plain, nil) // want `AEAD Seal nonce is not derived from a sequence counter`
}

// packageOpen is a 4-argument package-level Open — store/file APIs, not an
// AEAD; never flagged.
func packageOpen() {
	fakestore.Open(nil, nil, nil, nil)
}
