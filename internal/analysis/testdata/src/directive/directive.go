// Package directive is golden testdata for the directive auditor: allow
// comments must carry a rationale and name real analyzers.
package directive

//ironsafe:allow wallclock // want "no rationale"
func missingRationale() {}

//ironsafe:allow nosuchanalyzer -- justified at length // want "unknown analyzer"
func unknownName() {}

//ironsafe:allow sealerr -- fixture corpus seeds intentionally broken seals
func fine() {}
