// Package failopenallow seeds a failopen violation and suppresses it with a
// reviewed directive; the test asserts no diagnostics survive.
package failopenallow

import (
	"errors"
	"log"
)

func VerifyChain(b []byte) error { return errors.New("broken chain") }

func bestEffortAudit(b []byte) {
	//ironsafe:allow failopen -- best-effort audit replay: a broken chain is reported to the operator and quarantined by the caller
	err := VerifyChain(b)
	if err != nil {
		log.Printf("audit chain: %v", err)
	}
}
