// Package policypath is golden testdata: it lives under cmd/ so the
// analyzer treats it as a query entry-point package.
package policypath

type Result struct{}

type Host struct{}

func (h *Host) ExecuteLocal(sql string) (*Result, error) { return nil, nil }

type Monitor struct{}

func (m *Monitor) Authorize(sql string) error { return nil }

type Client struct{}

func (c *Client) Call(method string, args ...string) error { return nil }

// Direct violation: execution with no policy decision anywhere before it.
func bad(h *Host) {
	h.ExecuteLocal("SELECT 1") // want "without a prior policy decision"
}

// Dominated: the monitor decided first.
func good(h *Host, m *Monitor) {
	if err := m.Authorize("SELECT 1"); err != nil {
		return
	}
	h.ExecuteLocal("SELECT 1")
}

// helper executes without its own check: flagged here, and — one call
// deep — every undominated call to it is flagged too.
func helper(h *Host) {
	h.ExecuteLocal("SELECT 2") // want "without a prior policy decision"
}

func caller(h *Host) {
	helper(h) // want "executes queries without a policy decision"
}

func callerAuthorized(h *Host, m *Monitor) {
	if err := m.Authorize("SELECT 2"); err != nil {
		return
	}
	helper(h)
}

// authorizeFirst wraps the policy decision; calling it dominates what
// follows.
func authorizeFirst(m *Monitor) error { return m.Authorize("q") }

func callerViaHelper(h *Host, m *Monitor) {
	if err := authorizeFirst(m); err != nil {
		return
	}
	h.ExecuteLocal("SELECT 3")
}

// checkedExec authorizes internally, so callers owe nothing.
func checkedExec(h *Host, m *Monitor) error {
	if err := m.Authorize("q"); err != nil {
		return err
	}
	_, err := h.ExecuteLocal("q")
	return err
}

func callsChecked(h *Host, m *Monitor) {
	checkedExec(h, m)
}

// Control-plane dispatch: Call("authorize", ...) reaches the monitor too.
func viaCtl(c *Client, h *Host) {
	if err := c.Call("authorize", "sql"); err != nil {
		return
	}
	h.ExecuteLocal("SELECT 4")
}
