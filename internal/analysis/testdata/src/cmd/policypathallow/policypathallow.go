// Package policypathallow seeds a policypath violation and suppresses it
// with a reviewed directive; the test asserts no diagnostics survive — both
// at the sink itself and, via the summary filter, at its callers.
package policypathallow

type Result struct{}

type Host struct{}

func (h *Host) ExecuteLocal(sql string) (*Result, error) { return nil, nil }

func maintenance(h *Host) {
	//ironsafe:allow policypath -- offline maintenance shell: runs against a scratch database before any client session exists
	h.ExecuteLocal("VACUUM")
}

// Callers of a suppressed sink are clean too: the exception was reviewed at
// the sink, not re-litigated at every call site.
func runMaintenance(h *Host) {
	maintenance(h)
}
