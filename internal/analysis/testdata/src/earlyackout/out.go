// Package earlyackout lives outside internal/ingest: the acked-write
// contract is the ingest pipeline's, so deliver calls elsewhere are not the
// analyzer's business. The test declares no wants.
package earlyackout

type pending struct {
	ch chan int
}

func (pd *pending) deliver(a int) { pd.ch <- a }

func notIngest(pd *pending) {
	pd.deliver(1)
}
