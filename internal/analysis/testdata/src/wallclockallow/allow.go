// Package wallclockallow seeds wallclock violations that the allow
// directive must suppress — the harness fails on any unexpected diagnostic,
// so this file asserts suppression by declaring no wants.
package wallclockallow

import "time"

func reportLatency() time.Duration {
	start := time.Now() //ironsafe:allow wallclock -- real latency reporting
	work()
	//ironsafe:allow wallclock -- directive on the preceding line also counts
	return time.Since(start)
}

func work() {}
