// Package wallclock seeds one violation per wallclock diagnostic form.
package wallclock

import (
	"time"

	clock "time"
)

func measure() time.Duration {
	start := time.Now() // want `real clock read time\.Now`
	work()
	time.Sleep(time.Millisecond) // want `real clock read time\.Sleep`
	return time.Since(start)     // want `real clock read time\.Since`
}

func aliased() {
	_ = clock.Now() // want `real clock read time\.Now`
}

func notTheClock() {
	// Duration arithmetic and constants are fine: no clock is read.
	d := 5 * time.Second
	_ = d.Round(time.Millisecond)

	// A local identifier shadowing the import is not the time package.
	time := fakeClock{}
	_ = time.Now()
}

type fakeClock struct{}

func (fakeClock) Now() int64 { return 0 }

func work() {}
