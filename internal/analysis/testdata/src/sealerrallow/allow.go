// Package sealerrallow seeds sealerr violations suppressed by allow
// directives; the harness asserts no diagnostic survives.
package sealerrallow

func Verify(sig []byte) error { return nil }

func bestEffortRecheck() {
	// A best-effort advisory re-verification whose failure is handled by
	// the mandatory check that follows on the caller's path.
	Verify(nil) //ironsafe:allow sealerr -- advisory recheck; mandatory verification happens at the monitor
}
