// Package trusted sits inside the trusted set (internal/monitor subtree):
// enclave-private imports are its job, so boundary must stay silent.
package trusted

import (
	_ "ironsafe/internal/tee/sgx"
	_ "ironsafe/internal/tee/trustzone"
)

func attest() {}
