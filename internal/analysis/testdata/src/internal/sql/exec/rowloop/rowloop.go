// Package rowloop seeds per-row Relation.Scan callback loops — the executor
// slow path the rowloop analyzer outlaws in favor of ScanBatch.
package rowloop

type row []int

type relation interface {
	Scan(fn func(row) error) error
	ScanBatch(batchRows int, fn func([]row) error) error
}

// materialize drains a relation one row at a time — one dispatch and one
// accounting touch per tuple.
func materialize(rel relation) ([]row, error) {
	var out []row
	err := rel.Scan(func(r row) error { // want `row-at-a-time Relation.Scan loop in the executor`
		out = append(out, r)
		return nil
	})
	return out, err
}

// countRows loops per row just to count.
func countRows(rel relation) (int, error) {
	n := 0
	err := rel.Scan(func(r row) error { // want `row-at-a-time Relation.Scan loop in the executor`
		n++
		return nil
	})
	return n, err
}

// materializeBatched is the sanctioned shape: one callback per batch.
func materializeBatched(rel relation) ([]row, error) {
	var out []row
	err := rel.ScanBatch(4096, func(rows []row) error {
		out = append(out, rows...)
		return nil
	})
	return out, err
}

// namedCallback passes a named function, not an inline per-row loop body —
// the analyzer targets the literal-callback loop idiom only.
func namedCallback(rel relation, fn func(row) error) error {
	return rel.Scan(fn)
}
