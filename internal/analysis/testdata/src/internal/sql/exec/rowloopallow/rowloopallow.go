// Package rowloopallow holds the sanctioned row-at-a-time fallback: a Scan
// loop annotated with the allow directive and a rationale.
package rowloopallow

type row []int

type relation interface {
	Scan(fn func(row) error) error
}

// fallback is the row-mode pipeline, reachable only when batching is off.
func fallback(rel relation) ([]row, error) {
	var out []row
	//ironsafe:allow rowloop -- ExecBatchRows=1 takes the row-at-a-time path by design
	err := rel.Scan(func(r row) error {
		out = append(out, r)
		return nil
	})
	return out, err
}
