// Package badrand draws randomness from math/rand inside a
// security-critical subtree.
package badrand

import (
	"math/rand" // want `math/rand imported in security-critical package internal/tee/badrand`
)

func nonce() []byte {
	b := make([]byte, 12)
	for i := range b {
		b[i] = byte(rand.Intn(256))
	}
	return b
}
