// Package okrand carries an allow directive on its math/rand import; the
// cryptorand analyzer must report nothing here.
package okrand

import (
	//ironsafe:allow cryptorand -- deterministic fault injection for enclave tests
	"math/rand"
)

func faultPoint(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(100)
}
