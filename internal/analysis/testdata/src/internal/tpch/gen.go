// Package tpch mirrors the real internal/tpch package path, which is on
// the cryptorand allowlist (seeded deterministic benchmark data); no
// diagnostic may fire despite the math/rand import.
package tpch

import "math/rand"

func row(seed int64) int64 {
	return rand.New(rand.NewSource(seed)).Int63()
}
