// Package journalbypass seeds direct-WriteBlock violations inside the
// securestore subtree — the unjournaled mutations the journalbypass analyzer
// outlaws.
package journalbypass

type device interface {
	WriteBlock(idx uint32, data []byte) error
}

type store struct {
	dev device
}

func (s *store) flushHeader(hdr []byte) error {
	return s.dev.WriteBlock(42, hdr) // want `direct WriteBlock bypasses the redo journal`
}

func patch(dev device, idx uint32, data []byte) error {
	return dev.WriteBlock(idx, data) // want `direct WriteBlock bypasses the redo journal`
}
