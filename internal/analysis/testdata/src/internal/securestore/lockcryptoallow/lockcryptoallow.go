// Package lockcryptoallow seeds page-crypto-under-mutex violations
// suppressed by allow directives, in both sanctioned placements (the line
// above and the flagged line itself); the test asserts no diagnostics
// survive.
package lockcryptoallow

import (
	"crypto/hmac"
	"crypto/sha512"
	"sync"
)

type store struct {
	mu     sync.Mutex
	macKey []byte
}

func (s *store) sealPage(idx uint32, plain []byte) ([]byte, []byte, error) {
	return plain, nil, nil
}

func (s *store) gapFill(idx uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//ironsafe:allow lockcrypto -- seals only a bounded number of reserved-but-unwritten zero pages
	_, _, err := s.sealPage(idx, make([]byte, 16))
	return err
}

func (s *store) anchorMAC(data []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	mac := hmac.New(sha512.New, s.macKey) //ironsafe:allow lockcrypto -- constant-size anchor tag, not page-sized work
	mac.Write(data)
	return mac.Sum(nil)
}
