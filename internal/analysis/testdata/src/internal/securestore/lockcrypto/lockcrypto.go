// Package lockcrypto seeds page-crypto-under-mutex violations for the
// lockcrypto analyzer's golden test: every flagged line carries a want
// expectation, and the unlocked or helper-only shapes must stay silent.
package lockcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha512"
	"sync"
)

type store struct {
	mu     sync.Mutex
	encKey []byte
	macKey []byte
}

type rstore struct {
	mu sync.RWMutex
}

func (s *store) sealPage(idx uint32, plain []byte) ([]byte, []byte, error) {
	return plain, nil, nil
}

func (s *store) openPage(idx uint32, record []byte) ([]byte, []byte, error) {
	return record, nil, nil
}

// macUnderDeferredLock holds the mutex to function end, so the HMAC runs
// inside the critical section.
func (s *store) macUnderDeferredLock(data []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	mac := hmac.New(sha512.New, s.macKey) // want "while holding the store mutex"
	mac.Write(data)
	return mac.Sum(nil)
}

// cipherBetweenLockAndUnlock is flagged only inside the explicit region.
func (s *store) cipherBetweenLockAndUnlock(plain []byte) {
	s.mu.Lock()
	block, _ := aes.NewCipher(s.encKey) // want "while holding the store mutex"
	_ = block
	s.mu.Unlock()
	after, _ := aes.NewCipher(s.encKey) // unlocked: fine
	iv := make([]byte, 16)
	cipher.NewCBCEncrypter(after, iv).CryptBlocks(plain, plain)
}

// helperUnderLock calls the store's own seal/open wrappers under the mutex.
func (s *store) helperUnderLock(idx uint32, plain []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, _, err := s.sealPage(idx, plain); err != nil { // want "while holding the store mutex"
		return err
	}
	_, _, err := s.openPage(idx, plain) // want "while holding the store mutex"
	return err
}

func (r *rstore) openPage(idx uint32, record []byte) ([]byte, []byte, error) {
	return record, nil, nil
}

// readLockedCrypto shows an RWMutex read lock serializes ciphers just the
// same.
func (r *rstore) readLockedCrypto(record []byte) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, _, _ = r.openPage(0, record) // want "while holding the store mutex"
}

// sealOutsideThenPublish is the sanctioned shape: crypto first, lock only to
// publish. No diagnostics.
func (s *store) sealOutsideThenPublish(idx uint32, plain []byte) error {
	record, _, err := s.sealPage(idx, plain)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = record
	return nil
}

// callersHoldMu documents the analyzer's lexical limit: helpers without lock
// events of their own are not flagged even though callers hold the mutex.
func (s *store) callersHoldMu(idx uint32, record []byte) ([]byte, error) {
	plain, _, err := s.openPage(idx, record)
	return plain, err
}
