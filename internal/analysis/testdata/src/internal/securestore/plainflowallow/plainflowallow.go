// Package plainflowallow seeds a plainflow violation and suppresses it with
// a reviewed directive; the test asserts no diagnostics survive.
package plainflowallow

import "log"

type Store struct{}

func (s *Store) ReadPage(id uint32) ([]byte, error) { return make([]byte, 8), nil }

func dumpPage(s *Store) {
	p, _ := s.ReadPage(1)
	//ironsafe:allow plainflow -- debugging harness prints a synthetic fixture page, never production data
	log.Printf("page=%x", p)
}
