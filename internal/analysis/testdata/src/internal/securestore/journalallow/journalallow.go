// Package journalallow seeds journalbypass violations suppressed by allow
// directives; the test asserts no diagnostics survive.
package journalallow

type device interface {
	WriteBlock(idx uint32, data []byte) error
}

func commitJournal(dev device, blob []byte) error {
	//ironsafe:allow journalbypass -- this IS the journal commit write
	return dev.WriteBlock(7, blob)
}

func applyEntry(dev device, idx uint32, rec []byte) error {
	return dev.WriteBlock(idx, rec) //ironsafe:allow journalbypass -- in-place apply ordered after the journal record
}
