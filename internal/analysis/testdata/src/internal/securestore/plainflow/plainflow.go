// Package plainflow is golden testdata: the package path sits under
// internal/securestore so the path-scoped source rules treat the
// self-defined ReadPage/DeriveKey as the real secure-store API.
package plainflow

import (
	"fmt"
	"log"
)

type Store struct{}

func (s *Store) ReadPage(id uint32) ([]byte, error) { return make([]byte, 8), nil }

func (s *Store) sealPage(p []byte) []byte { return append([]byte(nil), p...) }

func DeriveKey(label string) []byte { return make([]byte, 32) }

func WriteBlock(id uint32, b []byte) error { return nil }

type SecureConn struct{}

func (c *SecureConn) Send(b []byte) error { return nil }

// Direct flow: plaintext straight into a raw device write.
func direct(s *Store) {
	p, _ := s.ReadPage(1)
	WriteBlock(1, p) // want "verified plaintext reaches raw device write"
}

// Sanitized flow: sealing launders the taint.
func sanitized(s *Store) {
	p, _ := s.ReadPage(1)
	WriteBlock(1, s.sealPage(p))
}

// Propagation through append and a composite literal.
func viaAppend(s *Store) {
	p, _ := s.ReadPage(1)
	buf := append([]byte{0xAA}, p...)
	log.Printf("page=%x", buf) // want "verified plaintext reaches log/print call"
}

// Propagation through copy.
func viaCopy(s *Store) {
	p, _ := s.ReadPage(1)
	dst := make([]byte, len(p))
	copy(dst, p)
	WriteBlock(2, dst) // want "verified plaintext reaches raw device write"
}

// Cross-function, one call deep: the helper's parameter reaches the sink
// inside it, so tainted arguments are flagged at the call site.
func writeRaw(b []byte) {
	WriteBlock(3, b)
}

func crossFuncSink(s *Store) {
	p, _ := s.ReadPage(1)
	writeRaw(p) // want "via call to writeRaw"
}

// Cross-function, one call deep: the helper's result carries the source's
// taint out to its callers.
func fetch(s *Store) []byte {
	p, _ := s.ReadPage(3)
	return p
}

func crossFuncSource(s *Store) {
	fmt.Printf("%v\n", fetch(s)) // want "verified plaintext reaches log/print call"
}

// Key material must not ride the secure channel (it seals with that very
// key); page plaintext through it is the design and stays silent.
func sendPlainOK(s *Store, c *SecureConn) {
	p, _ := s.ReadPage(9)
	c.Send(p)
}

func sendKeyBad(c *SecureConn) {
	k := DeriveKey("session")
	c.Send(k) // want "key material reaches secure-channel send"
}

func logKeyBad() {
	k := DeriveKey("storage")
	log.Println(k) // want "key material reaches log/print call"
}
