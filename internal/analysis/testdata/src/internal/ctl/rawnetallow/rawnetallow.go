// Package rawnetallow seeds rawnet violations suppressed by allow
// directives; the test asserts no diagnostics survive.
package rawnetallow

import "net"

func preamble(conn net.Conn, buf []byte) (int, error) {
	//ironsafe:allow rawnet -- preamble read is guarded by the SetDeadline armed above
	return conn.Read(buf)
}

func probe() (net.Conn, error) {
	return net.Dial("tcp", "127.0.0.1:9") //ironsafe:allow rawnet -- liveness probe; result discarded, never carries frames
}
