// Package nakeddial dials and reads raw connections from a net-trusted
// package (internal/ctl passes the boundary check) — exactly the hole the
// rawnet analyzer closes: no timeout on the dial, no deadline on the read.
package nakeddial

import (
	"net"
	"time"
)

func dial() (net.Conn, error) {
	return net.Dial("tcp", "127.0.0.1:9") // want `naked net.Dial`
}

func dialTimeout() (net.Conn, error) {
	return net.DialTimeout("tcp", "127.0.0.1:9", time.Second) // want `naked net.DialTimeout`
}

func read(conn net.Conn, buf []byte) (int, error) {
	return conn.Read(buf) // want `raw conn.Read outside the channel wrappers`
}

type peer struct {
	conn net.Conn
}

func (p *peer) send(b []byte) (int, error) {
	return p.conn.Write(b) // want `raw conn.Write outside the channel wrappers`
}
