// Package devwrite writes blocks outside internal/securestore — the
// journalbypass analyzer must stay silent here: block devices and their
// wrappers write blocks as their job.
package devwrite

type device interface {
	WriteBlock(idx uint32, data []byte) error
}

func mirror(dst device, idx uint32, data []byte) error {
	return dst.WriteBlock(idx, data)
}
