// Package policyscope asserts the policypath analyzer's scoping: this
// package lives under internal/pager — the mechanism BELOW the monitor —
// so its naked execution call must produce no diagnostics.
package policyscope

type Result struct{}

type Host struct{}

func (h *Host) ExecuteLocal(sql string) (*Result, error) { return nil, nil }

func internalReplay(h *Host) {
	h.ExecuteLocal("SELECT 1")
}
