// Package sendsecret passes enclave-identity key material to transport
// send functions.
package sendsecret

type conn struct{}

func (conn) Send(msgType string, payload []byte) error { return nil }
func (conn) Call(method string, req, resp any) error   { return nil }

type device struct {
	HUK     []byte
	SealKey []byte
}

func leak(c conn, d device, priv []byte) {
	_ = c.Send("provision", d.HUK)           // want `secret key material "HUK" passed to transport Send`
	_ = c.Call("rotate", d.SealKey, nil)     // want `secret key material "SealKey" passed to transport Call`
	_ = c.Send("handshake", priv)            // want `secret key material "priv" passed to transport Send`
	_ = c.Send("result", []byte("row data")) // public payloads are fine
}
