// Package lockedcipher holds a crypto-under-mutex shape OUTSIDE
// internal/securestore; lockcrypto is scoped to the secure store and must
// report nothing here.
package lockedcipher

import (
	"crypto/hmac"
	"crypto/sha512"
	"sync"
)

type checksummer struct {
	mu  sync.Mutex
	key []byte
}

func (c *checksummer) sum(data []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	mac := hmac.New(sha512.New, c.key)
	mac.Write(data)
	return mac.Sum(nil)
}
