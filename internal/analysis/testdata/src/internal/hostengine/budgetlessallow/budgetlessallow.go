// Package budgetlessallow seeds budgetless violations that the allow
// directive must suppress — the harness fails on any unexpected diagnostic,
// so this file asserts suppression by declaring no wants.
package budgetlessallow

import "ironsafe/internal/resilience"

func bootstrapRetry(cfg *resilience.Config) error {
	return resilience.Retry(cfg, 3, func(int) error { return nil }) //ironsafe:allow budgetless -- bootstrap path, no query in flight
}
