// Package budgetless seeds budget-blind retry and deadline sites on the
// offload path — the unbounded-tail holes the budgetless analyzer outlaws.
package budgetless

import (
	"net"

	"ironsafe/internal/resilience"

	res "ironsafe/internal/resilience"
)

func nakedRetry(cfg *resilience.Config) error {
	return resilience.Retry(cfg, 3, func(int) error { return nil }) // want `budget-blind resilience\.Retry`
}

func nakedDeadline(conn net.Conn, cfg *resilience.Config) error {
	return resilience.WithConnDeadline(conn, cfg.IOTimeout, func() error { return nil }) // want `budget-blind resilience\.WithConnDeadline`
}

func aliased(cfg *res.Config) error {
	return res.Retry(cfg, 3, func(int) error { return nil }) // want `budget-blind resilience\.Retry`
}

func budgeted(conn net.Conn, cfg *resilience.Config, bud *resilience.Budget) error {
	// The budget-aware forms are the sanctioned replacements.
	if err := resilience.RetryBudgeted(cfg, 3, bud, func(int) error { return nil }); err != nil {
		return err
	}
	return resilience.WithBudgetedConnDeadline(conn, bud, cfg.IOTimeout, func() error { return nil })
}

func shadowed() error {
	// A local identifier shadowing the import is not the package.
	resilience := fakePkg{}
	return resilience.Retry(nil, 3, nil)
}

type fakePkg struct{}

func (fakePkg) Retry(any, int, any) error { return nil }
