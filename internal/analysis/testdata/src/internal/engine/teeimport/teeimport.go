// Package teeimport sits in the untrusted query-engine subtree yet imports
// an enclave-private package.
package teeimport

import (
	_ "ironsafe/internal/tee/sgx" // want `outside the trusted set but imports enclave-private ironsafe/internal/tee/sgx`
)

func eval() {}
