// Package boundaryallow seeds one violation per boundary sub-check, each
// suppressed by an allow directive; the harness asserts none survive.
package boundaryallow

import (
	//ironsafe:allow boundary -- test harness manufactures its own enclave
	_ "ironsafe/internal/tee/sgx"

	"net" //ironsafe:allow boundary -- loopback-only diagnostics listener
)

type conn struct{}

func (conn) Send(msgType string, payload []byte) error { return nil }

func export(c conn, huk []byte) error {
	_ = net.Flags(0)
	//ironsafe:allow boundary -- sealed escrow export approved by policy §7.2
	return c.Send("escrow", huk)
}
