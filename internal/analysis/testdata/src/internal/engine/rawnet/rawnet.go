// Package rawnet opens a raw socket from the untrusted query-engine
// subtree — a plaintext exfiltration channel bypassing the AEAD transport.
package rawnet

import (
	"net" // want `must not open raw network channels`
)

func dial() (net.Conn, error) {
	return net.Dial("tcp", "127.0.0.1:9")
}
