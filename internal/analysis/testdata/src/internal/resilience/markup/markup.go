// Package markup stands in for the health tracker's own package: MarkUp and
// down-state bookkeeping are its job, so the readmit analyzer exempts the
// internal/resilience subtree.
package markup

type state struct{ down bool }

type tracker struct {
	states map[string]*state
}

func (t *tracker) MarkUp(id string) {
	t.states[id] = &state{}
}

func (t *tracker) reset(id string) {
	t.MarkUp(id)
	delete(t.states, id)
}
