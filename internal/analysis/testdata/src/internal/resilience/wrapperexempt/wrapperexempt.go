// Package wrapperexempt holds the same raw calls as nakeddial but lives
// under internal/resilience — the wrapper layer itself — so rawnet must
// report nothing (no wants in this file).
package wrapperexempt

import "net"

func dial() (net.Conn, error) {
	return net.Dial("tcp", "127.0.0.1:9")
}

func read(conn net.Conn, buf []byte) (int, error) {
	return conn.Read(buf)
}
