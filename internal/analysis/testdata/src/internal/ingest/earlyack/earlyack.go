// Package earlyack seeds ack deliveries that are not dominated by a checked
// durable commit — the data-loss bug class the earlyack analyzer outlaws.
package earlyack

type pending struct {
	ch chan int
}

func (pd *pending) deliver(a int) { pd.ch <- a }
func (pd *pending) fail(err error) {
	_ = err
	pd.ch <- -1
}

type node interface {
	Apply([]string) error
	Commit() error
}

// ackOnEnqueue acks with no commit anywhere in sight.
func ackOnEnqueue(pd *pending) {
	pd.deliver(1) // want `ack delivered without a checked durable commit`
}

// ackBeforeCommit sends the ack first and commits after — a crash between the
// two loses an acked write.
func ackBeforeCommit(pd *pending, n node, stmts []string) error {
	pd.deliver(1) // want `ack delivered without a checked durable commit`
	return n.Apply(stmts)
}

// ackOnUncheckedCommit discards the commit error before acking.
func ackOnUncheckedCommit(pd *pending, n node, stmts []string) {
	_ = n.Apply(stmts)
	pd.deliver(1) // want `ack delivered without a checked durable commit`
}

// ackAfterCheckedApply is the sanctioned shape: apply, check, then ack.
func ackAfterCheckedApply(pd *pending, n node, stmts []string) {
	err := n.Apply(stmts)
	if err == nil {
		pd.deliver(1)
		return
	}
	pd.fail(err)
}

// ackAfterInitCommit checks the commit inside the if-init.
func ackAfterInitCommit(pd *pending, n node) error {
	if err := n.Commit(); err != nil {
		pd.fail(err)
		return err
	}
	pd.deliver(1)
	return nil
}

// nacksNeedNoCommit: failing a record is always allowed.
func nacksNeedNoCommit(pd *pending, err error) {
	pd.fail(err)
}
