// Package earlyackallow seeds a flagged ack delivery suppressed by an allow
// directive with a rationale; the test declares no wants.
package earlyackallow

type pending struct {
	ch chan int
}

func (pd *pending) deliver(a int) { pd.ch <- a }

func replayAck(pd *pending) {
	//ironsafe:allow earlyack -- replaying an ack recorded by a commit that already anchored durably
	pd.deliver(1)
}
