// Package readmit seeds membership readmissions performed outside the
// attested protocol — the half-admissions the readmit analyzer outlaws.
package readmit

type health interface {
	MarkUp(id string)
}

type cluster struct {
	down   map[string]bool
	health health
}

func (c *cluster) sneakBackIn(id string) {
	delete(c.down, id) // want `down-set removal readmits a node without attestation`
}

func (c *cluster) resurrect(id string) {
	c.health.MarkUp(id) // want `health MarkUp readmits a node without attestation`
}

func unrelatedDelete(m map[string]bool, id string) {
	delete(m, id) // a plain map delete is not a membership transition
}
