// Package failopen is golden testdata for the fail-closed analyzer. Some
// fixtures deliberately leave an assigned error unused — a real compile
// error, but the tolerant checker records it and moves on, which is exactly
// the shape the analyzer must catch in hand-reviewed diffs.
package failopen

import (
	"errors"
	"log"
)

func VerifyMAC(b []byte) error { return errors.New("bad mac") }

func process() error { return nil }

// Discarded: assigned, never read.
func discarded(b []byte) {
	err := VerifyMAC(b) // want "assigned but never checked"
	_ = b
}

// Shadowed: overwritten before any read; the later return reads the NEW
// value, not the verification result.
func shadowed(b []byte) error {
	err := VerifyMAC(b) // want "overwritten before being checked"
	err = process()
	return err
}

// Log-only: the failure branch just logs and falls through.
func logOnly(b []byte) {
	err := VerifyMAC(b) // want "without failing closed"
	if err != nil {
		log.Printf("mac check failed: %v", err)
	}
}

// Success-only: the failure path does not even get a branch.
func successOnly(b []byte) {
	err := VerifyMAC(b) // want "without failing closed"
	if err == nil {
		log.Printf("mac ok")
	}
}

// Handled: propagating the error fails closed.
func handled(b []byte) error {
	err := VerifyMAC(b)
	if err != nil {
		return err
	}
	return nil
}

// Handled: terminating on failure fails closed.
func fatals(b []byte) {
	err := VerifyMAC(b)
	if err != nil {
		log.Fatalf("mac check failed: %v", err)
	}
}

// Handled: wrapping counts as real handling, not logging.
func wrapped(b []byte) error {
	err := VerifyMAC(b)
	if err != nil {
		return errors.Join(errors.New("envelope"), err)
	}
	return nil
}

// Handled: a named error result plus bare return propagates it.
func namedResult(b []byte) (err error) {
	err = VerifyMAC(b)
	return
}

// checkEnvelope returns VerifyMAC's error directly, so — one call deep —
// its own callers inherit the fail-closed obligation.
func checkEnvelope(b []byte) error {
	if err := VerifyMAC(b); err != nil {
		return err
	}
	return nil
}

func crossFunc(b []byte) {
	err := checkEnvelope(b) // want "assigned but never checked"
	_ = b
}

func crossFuncHandled(b []byte) error {
	err := checkEnvelope(b)
	if err != nil {
		return err
	}
	return nil
}
