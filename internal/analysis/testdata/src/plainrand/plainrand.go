// Package plainrand imports math/rand outside the security-critical
// subtrees: still flagged, with the softer remediation message.
package plainrand

import "math/rand" // want `use crypto/rand, or add this package to CryptorandAllowedPaths`

func jitter() int { return rand.Intn(10) }
