// Package rowloopout sits outside internal/sql/exec: Scan callback loops
// elsewhere (pager heaps, ingest, tests' fixtures) are not executor operators
// and are not the rowloop analyzer's business.
package rowloopout

type row []int

type relation interface {
	Scan(fn func(row) error) error
}

func drain(rel relation) (int, error) {
	n := 0
	err := rel.Scan(func(r row) error {
		n++
		return nil
	})
	return n, err
}
