package analysis

import (
	"go/ast"
)

// wallclockFuncs are the package-level time functions that read or act on
// the real clock. time.Duration arithmetic and formatting are fine — the
// cost model itself traffics in time.Duration — but a real clock read
// contaminates simulated results with host-machine speed.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

// WallclockAllowedPaths lists module-relative package paths exempt from the
// wallclock check wholesale. Prefer per-line //ironsafe:allow wallclock
// directives — a package-wide exemption hides new clock reads from review.
var WallclockAllowedPaths = map[string]bool{}

// Wallclock flags real-clock reads (time.Now, time.Since, time.Sleep, ...)
// anywhere in the module. IronSafe's benchmark results are simulated times
// computed by internal/simtime from work counters; a stray wall-clock read
// on an execution path silently re-couples "measured" latency to the speed
// of whatever machine runs the suite. Genuinely real-time code (client
// latency reporting, deployed-service timestamps) carries an allow
// directive so every exception is visible.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "flag real clock reads (time.Now/Since/Sleep/...) that would contaminate the simulated cost model",
	Run:  runWallclock,
}

func runWallclock(pass *Pass) error {
	if WallclockAllowedPaths[pass.Path] {
		return nil
	}
	for _, f := range pass.Files {
		names := localNamesFor(f, "time")
		if len(names) == 0 {
			continue
		}
		timeNames := map[string]bool{}
		for _, n := range names {
			timeNames[n] = true
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !wallclockFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !timeNames[id.Name] || id.Obj != nil {
				// id.Obj != nil means a local declaration shadows the
				// import; that is not the time package.
				return true
			}
			pass.Reportf(call.Pos(),
				"real clock read time.%s on a simulation path; use the simtime cost model, or annotate genuinely real-time code with %s wallclock",
				sel.Sel.Name, DirectivePrefix)
			return true
		})
	}
	return nil
}
