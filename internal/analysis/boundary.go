package analysis

import (
	"go/ast"
	"strings"
)

// enclavePrivatePaths hold TEE-private state: the TrustZone HUK and sealing
// keys, the SGX sealing/attestation keys, RPMB write keys. Only the trusted
// computing base may import them.
var enclavePrivatePaths = map[string]bool{
	"ironsafe/internal/tee/sgx":       true,
	"ironsafe/internal/tee/trustzone": true,
}

// boundaryTrustedPrefixes is the trusted set: packages that legitimately
// hold enclave handles. The module root ("") is the public facade that
// wires the simulated cluster together; cmd binaries provision and attest
// platforms.
var boundaryTrustedPrefixes = []string{
	"", // module root package (cluster facade)
	"internal/tee",
	"internal/monitor",
	"internal/securestore",
	"internal/storageengine",
	"internal/hostengine",
	// faultinject wraps the attestation path (it must corrupt reports the
	// monitor then rejects), so it sees the report types — never key
	// material.
	"internal/faultinject",
	// chaos boots simulated TrustZone storage devices for the power-cut
	// crash sweep; it drives the boot/derive APIs, never key material.
	"internal/chaos",
	"cmd",
}

// netTrustedPrefixes may import "net": the AEAD transport, the
// PSK-authenticated control channel, the engine frontends that accept
// connections and immediately wrap them, and the cmd binaries that bind
// listeners. Everything else — the query engine, policy, storage, and TEE
// layers — must have no way to open a raw socket, because a raw socket is
// a plaintext exfiltration channel that bypasses the AEAD boundary.
var netTrustedPrefixes = []string{
	"internal/transport",
	"internal/ctl",
	"internal/hostengine",
	"internal/storageengine",
	// resilience wraps dials/deadlines for the channel layers; faultinject
	// and adversary wrap net.Conn to inject faults and protocol-aware
	// attacks beneath the AEAD boundary; chaos composes them (it installs
	// wrapped conns into clusters but never performs raw I/O itself —
	// rawnet still applies to it).
	"internal/resilience",
	"internal/faultinject",
	"internal/adversary",
	"internal/chaos",
	"cmd",
}

// secretIdentNames match identifiers that name enclave-private key material.
// Matching is by exact lower-cased identifier, so `privilege` or `hukou`
// never trip it. Session keys are deliberately absent: distributing them is
// the monitor's job and happens over authenticated channels.
var secretIdentNames = map[string]bool{
	"huk":        true,
	"priv":       true,
	"privkey":    true,
	"privatekey": true,
	"sealkey":    true,
	"sealingkey": true,
	"secretkey":  true,
}

// transportSendFuncs are the send-side entry points of the trusted channel
// layers: SecureConn.Send and ctl's Client.Call. Anything passed here
// leaves the process.
var transportSendFuncs = map[string]bool{
	"Send": true,
	"Call": true,
}

// Boundary enforces the TEE trust boundary three ways: (1) enclave-private
// packages may only be imported by the trusted set, (2) raw "net" sockets
// are confined to the channel layers and engine frontends, and (3) secret
// key material (HUK, sealing keys, private keys) must never appear as an
// argument to a transport send function — even encrypted channels must not
// carry the keys that define the enclave's identity.
var Boundary = &Analyzer{
	Name: "boundary",
	Doc:  "flag enclave-private imports outside the trusted set, raw net use outside the channel layers, and secret key material passed to transport sends",
	Run:  runBoundary,
}

func pathInPrefixes(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if p == "" {
			if path == "" {
				return true
			}
			continue
		}
		if hasPrefixPath(path, p) {
			return true
		}
	}
	return false
}

func runBoundary(pass *Pass) error {
	trusted := pathInPrefixes(pass.Path, boundaryTrustedPrefixes)
	netOK := pathInPrefixes(pass.Path, netTrustedPrefixes) || pass.Path == ""
	for _, f := range pass.Files {
		if !trusted {
			for path := range enclavePrivatePaths {
				if spec := importSpec(f, path); spec != nil {
					pass.Reportf(spec.Pos(),
						"package %s is outside the trusted set but imports enclave-private %s; route through the monitor or storage engine APIs",
						pass.Path, path)
				}
			}
		}
		if !netOK {
			if spec := importSpec(f, "net"); spec != nil {
				pass.Reportf(spec.Pos(),
					"package %s must not open raw network channels; all traffic goes through internal/transport or internal/ctl",
					pass.Path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !transportSendFuncs[sel.Sel.Name] {
				return true
			}
			for _, arg := range call.Args {
				if name, found := findSecretIdent(arg); found {
					pass.Reportf(arg.Pos(),
						"secret key material %q passed to transport %s; enclave-identity keys never leave the TEE, even encrypted",
						name, sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

// findSecretIdent scans an argument expression for an identifier naming
// secret key material.
func findSecretIdent(e ast.Expr) (string, bool) {
	var hit string
	ast.Inspect(e, func(n ast.Node) bool {
		if hit != "" {
			return false
		}
		var name string
		switch v := n.(type) {
		case *ast.Ident:
			name = v.Name
		case *ast.SelectorExpr:
			name = v.Sel.Name
		default:
			return true
		}
		if secretIdentNames[strings.ToLower(name)] {
			hit = name
			return false
		}
		return true
	})
	return hit, hit != ""
}
