package analysis

import (
	"go/ast"
)

// Plainflow proves plaintext confinement dataflow-style: values produced by
// the secure store's decrypt/verify read path (verified page plaintext) and
// by TEE key-derivation (key material) must pass an AEAD seal or MAC
// sanitizer before reaching a transport write, a log call, or a raw device
// write. The engine is the taint lattice in taint.go: intraprocedural
// fixpoint plus one-call-deep summaries, so a helper that forwards its
// argument to WriteBlock taints its callers' calls too.
//
// Design choices that bound noise: unknown calls produce CLEAN results (the
// alternative — taint-preserving by default — drowns real findings), and
// sinks are the repo's actual egress points rather than every Write method
// in the universe. transport.SecureConn.Send is a sink for key material
// only: sending plaintext through it is the point (it seals internally);
// sending the session key through it would be self-referential key
// disclosure.
var Plainflow = &Analyzer{
	Name: "plainflow",
	Doc:  "verified plaintext and TEE key material must be sealed/MACed before transport, logs, or raw device writes",
	Run:  runPlainflow,
}

// plainflowRules is the shared rule table; tests build engines against it
// directly.
var plainflowRules = &taintRules{
	sources: []*funcRule{
		// Secure-store read path: results carry verified plaintext.
		{name: "ReadPage", modPrefixes: []string{"internal/securestore"}, taint: TaintPlaintext, result: 0},
		{name: "ReadPages", modPrefixes: []string{"internal/securestore"}, taint: TaintPlaintext, result: 0},
		{name: "openPage", modPrefixes: []string{"internal/securestore"}, taint: TaintPlaintext, result: 0},
		{name: "openPageGCM", modPrefixes: []string{"internal/securestore"}, taint: TaintPlaintext, result: 0},
		// TEE key derivation and unsealing: results are key material.
		{name: "DeriveKey", modPrefixes: []string{"internal/securestore", "internal/tee"}, taint: TaintKey, result: 0},
		{name: "DeriveStorageKey", modPrefixes: []string{"internal/tee"}, taint: TaintKey, result: 0},
		{name: "DeriveSealedKey", modPrefixes: []string{"internal/tee"}, taint: TaintKey, result: 0},
		{name: "Unseal", modPrefixes: []string{"internal/tee"}, taint: TaintKey, result: 0},
		{name: "deriveKey", modPrefixes: []string{"internal/securestore", "internal/tee"}, taint: TaintKey, result: 0},
		{name: "deriveSealKey", modPrefixes: []string{"internal/tee"}, taint: TaintKey, result: 0},
	},
	sanitizers: []*funcRule{
		// AEAD sealing / MAC computation launder taint: the result is
		// ciphertext or an authenticator, safe for any channel.
		{name: "sealPage", anyPkg: true},
		{name: "sealPageGCM", anyPkg: true},
		{name: "pageMAC", anyPkg: true},
		{name: "aeadSeal", anyPkg: true},
		{name: "Seal", modPrefixes: []string{"internal/tee"}, stdPaths: []string{"crypto/cipher"}},
		{name: "Sum", stdPaths: []string{"crypto/sha256", "crypto/hmac", "hash"}},
		{name: "Sum256", stdPaths: []string{"crypto/sha256"}},
	},
	sinks: []*sinkRule{
		{
			funcRule: funcRule{name: "WriteBlock", anyPkg: true},
			arg:      -1, bad: TaintPlaintext | TaintKey,
			what: "raw device write",
			fix:  "seal the page (sealPage/AEAD) before writing it to the device",
		},
		{
			funcRule: funcRule{name: "RPMBWrite", anyPkg: true},
			arg:      -1, bad: TaintPlaintext | TaintKey,
			what: "RPMB frame write",
			fix:  "RPMB frames must carry MACed counters/digests, not raw secrets",
		},
		{
			funcRule: funcRule{name: "Send", recv: "SecureConn"},
			arg:      -1, bad: TaintKey,
			what: "secure-channel send",
			fix:  "key material must never leave the TEE, even on a sealed channel",
		},
		{
			funcRule: funcRule{name: "Call", recv: "Client"},
			arg:      -1, bad: TaintKey,
			what: "control-plane RPC",
			fix:  "key material must never ride the control plane",
		},
		{
			funcRule: funcRule{name: "Write", stdPaths: []string{"net"}},
			arg:      -1, bad: TaintPlaintext | TaintKey,
			what: "raw network write",
			fix:  "route through transport.SecureConn so the payload is sealed",
		},
		{
			funcRule: funcRule{name: "Print*", stdPaths: []string{"log", "fmt"}},
			arg:      -1, bad: TaintPlaintext | TaintKey,
			what: "log/print call",
			fix:  "log lengths, digests, or page IDs — never decrypted contents or keys",
		},
		{
			funcRule: funcRule{name: "Fprint*", stdPaths: []string{"fmt"}},
			arg:      -1, bad: TaintPlaintext | TaintKey,
			what: "formatted write",
			fix:  "log lengths, digests, or page IDs — never decrypted contents or keys",
		},
		{
			funcRule: funcRule{name: "Fatal*", stdPaths: []string{"log"}},
			arg:      -1, bad: TaintPlaintext | TaintKey,
			what: "log call",
			fix:  "log lengths, digests, or page IDs — never decrypted contents or keys",
		},
		{
			funcRule: funcRule{name: "Panic*", stdPaths: []string{"log"}},
			arg:      -1, bad: TaintPlaintext | TaintKey,
			what: "log call",
			fix:  "log lengths, digests, or page IDs — never decrypted contents or keys",
		},
		{
			funcRule: funcRule{name: "Output", stdPaths: []string{"log"}},
			arg:      -1, bad: TaintPlaintext | TaintKey,
			what: "log call",
			fix:  "log lengths, digests, or page IDs — never decrypted contents or keys",
		},
		{
			funcRule: funcRule{name: "Logf", anyPkg: true},
			arg:      -1, bad: TaintPlaintext | TaintKey,
			what: "log call",
			fix:  "log lengths, digests, or page IDs — never decrypted contents or keys",
		},
		{
			funcRule: funcRule{name: "logf", anyPkg: true},
			arg:      -1, bad: TaintPlaintext | TaintKey,
			what: "log call",
			fix:  "log lengths, digests, or page IDs — never decrypted contents or keys",
		},
	},
}

func runPlainflow(pass *Pass) error {
	for _, f := range pass.Files {
		if fileIsTest(pass.Fset, f) {
			// Test code prints fixtures and synthetic keys on purpose.
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			eng := newTaintEngine(pass.Pkg, f, plainflowRules, true)
			eng.run(fd.Body, nil)
			for _, hit := range eng.checkSinks(fd.Body) {
				via := ""
				if hit.via != "" {
					via = " via call to " + hit.via
				}
				pass.Reportf(hit.pos, "%s reaches %s%s; %s", hit.taint, hit.rule.what, via, hit.rule.fix)
			}
		}
	}
	return nil
}
