package analysis_test

import (
	"testing"

	"ironsafe/internal/analysis"
	"ironsafe/internal/analysis/analysistest"
)

func TestReadmitOutsideProtocol(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Readmit, "readmit")
}

func TestReadmitAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Readmit, "readmitallow")
}

// TestReadmitExemptsHealthTracker pins that the health tracker's own package
// may manipulate per-node state: the invariant governs its callers.
func TestReadmitExemptsHealthTracker(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Readmit, "internal/resilience/markup")
}
