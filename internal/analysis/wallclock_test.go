package analysis_test

import (
	"testing"

	"ironsafe/internal/analysis"
	"ironsafe/internal/analysis/analysistest"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Wallclock, "wallclock")
}

func TestWallclockAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Wallclock, "wallclockallow")
}
