package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Failopen flags verification errors that are assigned but then mishandled:
// discarded without a read, overwritten before any check, or routed into a
// log call while execution continues. Sealerr owns the blunt shapes (bare
// call statement, blank assignment); failopen owns the subtle ones — the
// error LOOKS handled because it has a name, but the failure path does not
// fail closed.
//
// Guarded producers are Verify*/Attest* anywhere, cipher.AEAD.Open and
// TEE/securestore Open/Unseal, and the monitor's policy entry points
// (Decide/Evaluate/Authorize) — plus, one call deep, any module-internal
// function whose returned error comes straight from one of those (so
// wrapping VerifyProof in a helper does not launder the obligation).
var Failopen = &Analyzer{
	Name: "failopen",
	Doc:  "errors from verification/attestation/policy calls must fail closed, not be dropped, shadowed, or merely logged",
	Run:  runFailopen,
}

// failopenGuards match the calls whose error results carry a fail-closed
// obligation.
var failopenGuards = []*funcRule{
	{name: "Verify*", anyPkg: true},
	{name: "Attest*", anyPkg: true},
	{name: "Open", modPrefixes: []string{"internal/tee", "internal/securestore"}, stdPaths: []string{"crypto/cipher"}},
	{name: "Unseal", modPrefixes: []string{"internal/tee", "internal/securestore"}},
	{name: "Decide", modPrefixes: []string{""}},
	{name: "Evaluate", modPrefixes: []string{""}},
	{name: "Authorize", modPrefixes: []string{""}},
}

// failopenGuardName reports whether call produces a guarded error, with a
// display name for diagnostics.
func failopenGuardName(pkg *Package, f *ast.File, call *ast.CallExpr) (string, bool) {
	for _, r := range failopenGuards {
		if ruleMatches(pkg.Module, pkg.TypesInfo, f, r, call) {
			return calleeName(call), true
		}
	}
	// One call deep: a module-internal function that just returns a guarded
	// call's error is itself guarded.
	if fn := calleeFunc(pkg.TypesInfo, call); fn != nil && pkg.Module != nil {
		if _, isMod := pkg.Module.modRelOf(fn.Pkg()); isMod && pkg.Module.failSummary(fn) {
			return fn.Name(), true
		}
	}
	return "", false
}

// failSummary reports (cached) whether fn's returned error originates from
// a directly-guarded call. Computed without consulting other summaries —
// the obligation propagates exactly one call level.
func (m *Module) failSummary(fn *types.Func) bool {
	if m.failSums == nil {
		m.failSums = map[*types.Func]bool{}
	}
	if v, ok := m.failSums[fn]; ok {
		return v
	}
	m.failSums[fn] = false // self-recursion guard
	if ref := m.funcFor(fn); ref != nil {
		m.failSums[fn] = failSumCompute(ref)
	}
	return m.failSums[fn]
}

func failSumCompute(ref *funcDeclRef) bool {
	fd := ref.decl
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	last := fd.Type.Results.List[len(fd.Type.Results.List)-1]
	if id, ok := last.Type.(*ast.Ident); !ok || id.Name != "error" {
		return false
	}
	file := fileOf(ref.pkg, fd.Pos())
	directGuard := func(call *ast.CallExpr) bool {
		for _, r := range failopenGuards {
			if ruleMatches(ref.pkg.Module, ref.pkg.TypesInfo, file, r, call) {
				return true
			}
		}
		return false
	}
	// Objects assigned (in last position) from a guarded call.
	guardedObjs := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !directGuard(call) {
			return true
		}
		if id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && ref.pkg.TypesInfo != nil {
			if obj := ref.pkg.TypesInfo.Defs[id]; obj != nil {
				guardedObjs[obj] = true
			} else if obj := ref.pkg.TypesInfo.Uses[id]; obj != nil {
				guardedObjs[obj] = true
			}
		}
		return true
	})
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 || found {
			return !found
		}
		switch r := ast.Unparen(ret.Results[len(ret.Results)-1]).(type) {
		case *ast.CallExpr:
			if directGuard(r) {
				found = true
			}
		case *ast.Ident:
			if ref.pkg.TypesInfo != nil && guardedObjs[ref.pkg.TypesInfo.Uses[r]] {
				found = true
			}
		}
		return !found
	})
	return found
}

func runFailopen(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFailopenFunc(pass, f, fd)
			}
		}
	}
	return nil
}

// guardedAssign is one `err := Verify...(...)` site under scrutiny.
type guardedAssign struct {
	call *ast.CallExpr
	name string
	obj  types.Object
	end  token.Pos // end of the assignment statement
}

func checkFailopenFunc(pass *Pass, f *ast.File, fd *ast.FuncDecl) {
	info := pass.Pkg.TypesInfo
	if info == nil {
		return
	}

	// Idents that are plain write targets (LHS of an assignment).
	writes := map[*ast.Ident]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					writes[id] = true
				}
			}
		}
		return true
	})

	var guarded []guardedAssign
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := failopenGuardName(pass.Pkg, f, call)
		if !ok {
			return true
		}
		id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
		if !ok || id.Name == "_" { // blank final result is sealerr's finding
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || !isErrorType(obj.Type()) {
			return true
		}
		guarded = append(guarded, guardedAssign{call: call, name: name, obj: obj, end: as.End()})
		return true
	})
	if len(guarded) == 0 {
		return
	}

	named := map[types.Object]bool{}
	for _, obj := range namedResults(pass.Pkg, fd) {
		if obj != nil {
			named[obj] = true
		}
	}

	for _, g := range guarded {
		checkGuardedUse(pass, f, fd, g, writes, named)
	}
}

// isErrorType reports whether t is the error interface (or unknown —
// tolerated as non-error to stay quiet on broken code).
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

func checkGuardedUse(pass *Pass, f *ast.File, fd *ast.FuncDecl, g guardedAssign, writes map[*ast.Ident]bool, named map[types.Object]bool) {
	info := pass.Pkg.TypesInfo

	// Next write to the variable after this assignment bounds the window in
	// which the error must be checked.
	nextWrite := token.Pos(-1)
	var reads []*ast.Ident
	bareReturn := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			if v.Pos() <= g.end {
				return true
			}
			if info.Uses[v] != g.obj && info.Defs[v] != g.obj {
				return true
			}
			if writes[v] {
				if nextWrite == token.Pos(-1) || v.Pos() < nextWrite {
					nextWrite = v.Pos()
				}
			} else {
				reads = append(reads, v)
			}
		case *ast.ReturnStmt:
			if len(v.Results) == 0 && v.Pos() > g.end && named[g.obj] {
				bareReturn = true
			}
		}
		return true
	})
	if nextWrite != token.Pos(-1) {
		inWindow := reads[:0]
		for _, r := range reads {
			if r.Pos() < nextWrite {
				inWindow = append(inWindow, r)
			}
		}
		reads = inWindow
		if bareReturn {
			// conservatively keep: a bare return after the overwrite returns
			// the new value, but one before it returns ours — we cannot tell
			// lexically, so do not count it against the finding either way.
		}
	}

	if len(reads) == 0 && !bareReturn {
		if nextWrite != token.Pos(-1) {
			pass.Reportf(g.call.Pos(), "error from %s is overwritten before being checked; verification must fail closed", g.name)
		} else {
			pass.Reportf(g.call.Pos(), "error from %s is assigned but never checked; verification must fail closed", g.name)
		}
		return
	}
	if bareReturn {
		return // named error result propagated by bare return
	}

	// Classify each read; one genuinely-handled read clears the obligation.
	logOnly := true
	for _, r := range reads {
		switch classifyErrRead(fd.Body, r, g.obj, info) {
		case readHandled:
			return
		case readFailOpen:
			// keep logOnly, message distinguishes below
		case readLogged:
			// stays log-only
		}
	}
	if logOnly {
		pass.Reportf(g.call.Pos(), "error from %s is logged (or its failure branch falls through) without failing closed; return, abort, or record the failure", g.name)
	}
}

type readKind int

const (
	readHandled readKind = iota // propagated, returned, or fail-closed branch
	readLogged                  // argument to a log-like call only
	readFailOpen                // checked, but the failure branch continues
)

// classifyErrRead decides how one use of the error contributes to handling.
func classifyErrRead(body ast.Node, id *ast.Ident, obj types.Object, info *types.Info) readKind {
	path := pathTo(body, id)
	for i := len(path) - 1; i >= 0; i-- {
		switch anc := path[i].(type) {
		case *ast.CallExpr:
			// Innermost call with id among its arguments decides: a log-like
			// callee is a log read; anything else (fmt.Errorf wrap, handler,
			// channel of errors) is real handling.
			if exprListContainsPos(anc.Args, id.Pos()) {
				if logLikeCall(anc) {
					return readLogged
				}
				return readHandled
			}
		case *ast.IfStmt:
			if anc.Cond != nil && anc.Cond.Pos() <= id.Pos() && id.Pos() < anc.Cond.End() {
				if failureBranchClosed(anc, id) {
					return readHandled
				}
				return readFailOpen
			}
		case *ast.ReturnStmt:
			return readHandled
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			return readHandled // conservative: switch-based handling counts
		}
	}
	return readHandled
}

// exprListContainsPos reports whether pos falls inside any expression of
// the list.
func exprListContainsPos(list []ast.Expr, pos token.Pos) bool {
	for _, e := range list {
		if e.Pos() <= pos && pos < e.End() {
			return true
		}
	}
	return false
}

// logLikeCall matches non-terminating log/print calls. Fatal*/Panic*
// terminate, so they are fail-closed, not log-like.
func logLikeCall(call *ast.CallExpr) bool {
	name := calleeName(call)
	for _, p := range []string{"Print", "print", "Log", "log", "Warn", "Info", "Debug", "Trace"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return name == "Output"
}

// failureBranchClosed locates the branch taken when the check FAILS
// (err != nil → then-branch; err == nil → else-branch) and reports whether
// it fails closed.
func failureBranchClosed(ifStmt *ast.IfStmt, id *ast.Ident) bool {
	polarity := condPolarity(ifStmt.Cond, id)
	var failure []ast.Stmt
	switch polarity {
	case condErrNotNil:
		failure = ifStmt.Body.List
	case condErrNil:
		switch e := ifStmt.Else.(type) {
		case *ast.BlockStmt:
			failure = e.List
		case *ast.IfStmt:
			failure = []ast.Stmt{e}
		case nil:
			// Inverted assertion: `if err == nil { t.Error(...) }` treats
			// SUCCESS as the bug (negative tests, tamper-detection checks).
			// If the then-branch records a failure, the error was handled
			// deliberately; otherwise the failure path falls through.
			return stmtsRecordFailure(ifStmt.Body.List)
		}
	}
	return stmtsFailClosed(failure)
}

type condKind int

const (
	condErrNotNil condKind = iota
	condErrNil
)

// condPolarity decides which branch is the failure path. Unrecognized
// shapes (errors.Is, bare error use) default to "then is the failure
// branch", which matches the idioms in this repo.
func condPolarity(cond ast.Expr, id *ast.Ident) condKind {
	kind := condErrNotNil
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		hasNil := isNilIdent(be.X) || isNilIdent(be.Y)
		containsID := (be.X.Pos() <= id.Pos() && id.Pos() < be.X.End()) ||
			(be.Y.Pos() <= id.Pos() && id.Pos() < be.Y.End())
		if hasNil && containsID {
			if be.Op == token.EQL {
				kind = condErrNil
			}
			return false
		}
		return true
	})
	return kind
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// stmtsFailClosed reports whether the statements contain any fail-closed
// action: return, panic, os.Exit, Fatal*/Panic*, a branch statement, an
// assignment (recording the failure), or a channel send. A branch whose
// only actions are log calls — or an empty branch — fails open.
func stmtsFailClosed(stmts []ast.Stmt) bool {
	closed := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.ReturnStmt, *ast.BranchStmt, *ast.SendStmt, *ast.AssignStmt, *ast.IncDecStmt:
				closed = true
			case *ast.CallExpr:
				if failClosedCall(v) {
					closed = true
				}
			}
			return !closed
		})
		if closed {
			return true
		}
	}
	return false
}

// failClosedCall matches calls that terminate or durably record the
// failure: panic/exit, Fatal*/Panic*, and testing's Error*/Fail*/Skip*.
func failClosedCall(call *ast.CallExpr) bool {
	name := calleeName(call)
	if name == "panic" || name == "Exit" || name == "Goexit" {
		return true
	}
	for _, p := range []string{"Fatal", "fatal", "Panic", "Error", "Fail", "Skip"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// stmtsRecordFailure is the narrower check for inverted assertions: only
// explicit failure-recording calls count, not arbitrary assignments.
func stmtsRecordFailure(stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && failClosedCall(call) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// pathTo returns the ancestor chain from root down to target (inclusive),
// or nil if target is not under root.
func pathTo(root, target ast.Node) []ast.Node {
	var stack, found []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if found != nil {
			return false
		}
		if n == target {
			found = append(append([]ast.Node{}, stack...), n)
			return false
		}
		stack = append(stack, n)
		return true
	})
	return found
}
