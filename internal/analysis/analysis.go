// Package analysis is IronSafe's static-analysis suite: a set of
// repo-specific vet passes that enforce the security invariants the Go
// compiler cannot check — no wall-clock reads on the simulated cost-model
// path, no weak randomness in security packages, no discarded errors from
// seal/open/verify/attest calls, and no enclave-private state or raw network
// channels leaking across the TEE boundary.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Diagnostic) but is built on the standard library
// only: this build environment vendors no third-party modules. The older
// analyzers run syntactically over parsed ASTs with per-file import-alias
// resolution; the dataflow analyzers (plainflow, failopen, policypath)
// additionally consume go/types results — the loader type-checks the whole
// module with a tolerant importer (typecheck.go) and a forward taint engine
// with one-call-deep function summaries runs on top (taint.go). If x/tools
// ever becomes vendorable the analyzers port to real *analysis.Analyzer
// values almost mechanically (see DESIGN.md, "Static analysis &
// invariants").
//
// # Allow directives
//
// Every diagnostic can be suppressed at a specific line with a directive
// comment, on the flagged line or the line immediately above it:
//
//	//ironsafe:allow <check>[,<check>...] -- <rationale>
//
// where <check> is an analyzer name (wallclock, cryptorand, sealerr,
// noncereuse, boundary, rawnet, journalbypass, readmit, lockcrypto,
// plainflow, failopen, policypath, earlyack, rowloop, directive). The rationale text is mandatory — the
// directive analyzer flags suppressions without one — and should say why
// the invariant genuinely does not apply; directives are grep-able so
// reviews can audit every escape hatch in one pass.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package, reporting violations via
	// pass.Reportf. It returns an error only for operational failures, not
	// for findings.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one package's parsed syntax and type
// information.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the module-relative package path: "" for the module root
	// package, "internal/tee/sgx", "cmd/ironsafe-vet", ... Analyzers scope
	// their rules on this path.
	Path string
	// Files holds the package's parsed files, comments included.
	Files []*ast.File
	// Pkg is the full package, including go/types results (Pkg.TypesInfo)
	// and the Module back-reference for cross-package summaries. Type
	// information is tolerant: analyzers must treat missing entries as
	// "unknown", not as errors.
	Pkg *Package

	report func(Diagnostic)
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name, set by the driver
	Message  string
}

// Reportf reports a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// A Finding is a resolved diagnostic (position mapped through the FileSet),
// ready for printing or test comparison.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// DirectivePrefix introduces an allow directive comment.
const DirectivePrefix = "//ironsafe:allow"

// allowSet maps file name -> line -> set of allowed analyzer names.
type allowSet map[string]map[int]map[string]bool

// parseAllows collects every allow directive in the package.
func parseAllows(fset *token.FileSet, files []*ast.File) allowSet {
	allows := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := allows[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					allows[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return allows
}

// parseDirective extracts the analyzer names from one comment, reporting
// whether the comment is an allow directive at all.
func parseDirective(text string) ([]string, bool) {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return nil, false
	}
	rest := text[len(DirectivePrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. //ironsafe:allowx
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// allowed reports whether a diagnostic from analyzer name at position pos is
// covered by a directive on the same line or the line immediately above.
func (a allowSet) allowed(name string, pos token.Position) bool {
	lines := a[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if set := lines[line]; set != nil && set[name] {
			return true
		}
	}
	return false
}

// RunAnalyzers applies each analyzer to the package, filters diagnostics
// through the package's allow directives, and returns the surviving findings
// sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	allows := parseAllows(pkg.Fset, pkg.Files)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg,
		}
		pass.report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if allows.allowed(a.Name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// importsOf resolves the file's imports to a map from local name to import
// path. Unnamed imports use the last path element (the convention every
// stdlib and in-repo package follows); dot and blank imports are recorded
// under "." and "_" and additionally reachable via pathsOf.
func importsOf(f *ast.File) map[string]string {
	m := map[string]string{}
	for _, spec := range f.Imports {
		path, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if spec.Name != nil {
			name = spec.Name.Name
		}
		m[name] = path
	}
	return m
}

// importSpec returns the file's ImportSpec for the exact path, or nil.
func importSpec(f *ast.File, path string) *ast.ImportSpec {
	for _, spec := range f.Imports {
		if p, err := strconv.Unquote(spec.Path.Value); err == nil && p == path {
			return spec
		}
	}
	return nil
}

// localNamesFor returns every local name under which path is imported in f
// (usually zero or one, but aliased re-imports are legal Go).
func localNamesFor(f *ast.File, path string) []string {
	var names []string
	for name, p := range importsOf(f) {
		if p == path {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// hasPrefixPath reports whether pkg path p is exactly prefix or nested under
// it ("internal/tee" covers "internal/tee" and "internal/tee/sgx", not
// "internal/teeth").
func hasPrefixPath(p, prefix string) bool {
	if prefix == "" {
		return true
	}
	return p == prefix || strings.HasPrefix(p, prefix+"/")
}
