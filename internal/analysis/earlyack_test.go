package analysis_test

import (
	"testing"

	"ironsafe/internal/analysis"
	"ironsafe/internal/analysis/analysistest"
)

func TestEarlyackUndominatedDeliveries(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Earlyack, "internal/ingest/earlyack")
}

func TestEarlyackAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Earlyack, "internal/ingest/earlyackallow")
}

// TestEarlyackScopedToIngest pins that the contract governs the ingest
// package only: a deliver method elsewhere is not an ingest ack.
func TestEarlyackScopedToIngest(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Earlyack, "earlyackout")
}
