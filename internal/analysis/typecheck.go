package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
)

// The suite runs the standard go/types checker over every package it
// analyzes. Module-internal imports resolve by loading and checking the
// imported directory from disk; standard-library imports resolve through the
// stdlib source importer (go/importer "source" mode — no x/tools, no
// pre-compiled export data needed); anything else degrades to an empty
// placeholder package so checking stays tolerant. Golden testdata packages
// therefore type-check too, which is what lets the taint engine resolve
// callees by their defining package instead of by spelling.

// sharedFset is the process-wide FileSet every loaded package and the stdlib
// importer share. A single FileSet keeps positions comparable across
// packages and lets the (expensive, ~1.5s cold) stdlib source import be done
// once per process instead of once per Load.
var sharedFset = token.NewFileSet()

var (
	typecheckMu sync.Mutex // serializes all type-checking (importer caches are not concurrency-safe)

	stdImporterOnce sync.Once
	stdImporter     types.ImporterFrom
)

func stdlibImporter() types.ImporterFrom {
	stdImporterOnce.Do(func() {
		if imp, ok := importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom); ok {
			stdImporter = imp
		}
	})
	return stdImporter
}

// modulePathRE extracts the module path from go.mod.
var modulePathRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// modulePathOf reads the module path from root/go.mod, defaulting to
// "ironsafe" when the file is absent (testdata loads have no module root).
func modulePathOf(root string) string {
	if root != "" {
		if data, err := os.ReadFile(filepath.Join(root, "go.mod")); err == nil {
			if m := modulePathRE.FindSubmatch(data); m != nil {
				return string(m[1])
			}
		}
	}
	return "ironsafe"
}

// A Module groups the packages of one Load call with the type-checker state
// they share. Analyzers reach it through Package.Module to resolve
// cross-package function summaries.
type Module struct {
	// RootDir is the module root directory, "" for rootless (testdata)
	// loads — module-internal imports then resolve to placeholders.
	RootDir string
	// Path is the module import path from go.mod ("ironsafe").
	Path string
	Fset *token.FileSet

	// pkgs indexes every checked package (analyzed set plus
	// dependency-loaded ones) by module-relative path.
	pkgs map[string]*Package

	checking map[string]bool // import-cycle guard

	// lazily built analysis state (see taint.go, failopen.go, policypath.go)
	declIndex  map[*types.Func]*funcDeclRef
	taintSums  map[*types.Func]*funcSummary
	failSums   map[*types.Func]bool
	policySums map[*types.Func]*policySummary
}

// funcDeclRef locates one function declaration inside its package.
type funcDeclRef struct {
	pkg  *Package
	decl *ast.FuncDecl
}

func newModule(root string) *Module {
	return &Module{
		RootDir:  root,
		Path:     modulePathOf(root),
		Fset:     sharedFset,
		pkgs:     map[string]*Package{},
		checking: map[string]bool{},
	}
}

// typesPath is the import path the type checker files pkg under.
func (m *Module) typesPath(rel string) string {
	if rel == "" {
		return m.Path
	}
	return m.Path + "/" + rel
}

// relPath inverts typesPath: the module-relative path of a types.Package
// path, and whether it is module-internal at all.
func (m *Module) relPath(typesPath string) (string, bool) {
	if typesPath == m.Path {
		return "", true
	}
	if rest, ok := strings.CutPrefix(typesPath, m.Path+"/"); ok {
		return rest, true
	}
	return "", false
}

// check type-checks pkg in place, resolving imports through the module. It
// never fails: type errors are collected into pkg.TypeErrors and checking
// continues with whatever information survives.
func (m *Module) check(pkg *Package) {
	typecheckMu.Lock()
	defer typecheckMu.Unlock()
	m.checkLocked(pkg)
}

func (m *Module) checkLocked(pkg *Package) {
	if pkg.Types != nil {
		return
	}
	key := pkg.Path
	if pkg.External {
		key += " [test]"
	}
	if m.checking[key] {
		return
	}
	m.checking[key] = true
	defer delete(m.checking, key)
	if _, ok := m.pkgs[key]; !ok {
		m.pkgs[key] = pkg
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			return m.importPkg(path)
		}),
		Error: func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tPath := m.typesPath(pkg.Path)
	if pkg.External {
		// The external test package (package foo_test) must not collide
		// with the real package in the importer cache.
		tPath += "_test"
	}
	// Check never returns a nil package; the error, if any, is already in
	// pkg.TypeErrors via the handler.
	tpkg, _ := conf.Check(tPath, m.Fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.TypesInfo = info
}

// importPkg resolves one import path during type checking.
func (m *Module) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := m.relPath(path); ok {
		if pkg := m.pkgs[rel]; pkg != nil {
			m.checkLocked(pkg)
			if pkg.Types != nil {
				return pkg.Types, nil
			}
			return placeholderPkg(path), nil
		}
		if m.RootDir != "" && !m.checking[rel] {
			dir := filepath.Join(m.RootDir, filepath.FromSlash(rel))
			loaded, err := loadDirWith(dir, rel, LoadConfig{})
			if err == nil && len(loaded) > 0 {
				pkg := loaded[0]
				pkg.Module = m
				m.pkgs[rel] = pkg
				m.checkLocked(pkg)
				if pkg.Types != nil {
					return pkg.Types, nil
				}
			}
		}
		return placeholderPkg(path), nil
	}
	if imp := stdlibImporter(); imp != nil {
		from := m.RootDir
		if from == "" {
			from = "."
		}
		if tpkg, err := imp.ImportFrom(path, from, 0); err == nil {
			return tpkg, nil
		}
	}
	return placeholderPkg(path), nil
}

// placeholderPkg stands in for an unresolvable import so checking continues:
// selections into it become invalid types, which every analyzer treats as
// "no information" rather than an error.
func placeholderPkg(path string) *types.Package {
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	return p
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// funcFor finds the declaration of fn among the module's checked packages.
func (m *Module) funcFor(fn *types.Func) *funcDeclRef {
	if m.declIndex == nil {
		m.declIndex = map[*types.Func]*funcDeclRef{}
		for _, pkg := range m.pkgs {
			if pkg.TypesInfo == nil {
				continue
			}
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
						m.declIndex[obj] = &funcDeclRef{pkg: pkg, decl: fd}
					}
				}
			}
		}
	}
	return m.declIndex[fn]
}

// modRelOf maps a types.Package to its module-relative path: "" for the
// module root, "internal/tee/sgx" for module-internal packages, and
// (path, false) for stdlib or foreign packages.
func (m *Module) modRelOf(tpkg *types.Package) (string, bool) {
	if tpkg == nil {
		return "", false
	}
	return m.relPath(strings.TrimSuffix(tpkg.Path(), "_test"))
}

// typeErrorSummary renders the first few type errors for debugging output.
func (p *Package) typeErrorSummary(max int) string {
	if len(p.TypeErrors) == 0 {
		return ""
	}
	var b strings.Builder
	for i, err := range p.TypeErrors {
		if i == max {
			fmt.Fprintf(&b, "\n... and %d more", len(p.TypeErrors)-max)
			break
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(err.Error())
	}
	return b.String()
}
