package analysis_test

import (
	"testing"

	"ironsafe/internal/analysis"
	"ironsafe/internal/analysis/analysistest"
)

func TestSealerr(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Sealerr, "sealerr")
}

func TestSealerrAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Sealerr, "sealerrallow")
}
