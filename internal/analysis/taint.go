package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the type-aware forward taint engine the dataflow analyzers
// (plainflow, and the summary machinery failopen/policypath reuse) are built
// on. The lattice is a small bitmask of taint kinds; propagation is
// intraprocedural to a fixpoint over assignments, calls, composites, ranges
// and returns, with per-function summaries giving one call level of
// cross-function (and cross-package) flow:
//
//   - a summary records which parameters flow to which results, which
//     results are inherently tainted (the function wraps a source), and
//     which parameters reach a sink inside the function;
//   - summaries are computed WITHOUT consulting other summaries, so taint
//     crosses exactly one call boundary — deep interprocedural chains are
//     out of scope by design (and by the 30s vet budget).
//
// Callees resolve through go/types to their defining package, so rules can
// say "ReadPage on internal/securestore" without matching the unencrypted
// pager path, and golden testdata exercises path-scoped rules by living
// under a matching directory. When type information is missing the engine
// degrades to "no taint" rather than guessing.

// Taint is a bitmask of taint kinds.
type Taint uint8

const (
	// TaintPlaintext marks verified/decrypted page plaintext: the output of
	// the secure store's read path and page-open helpers.
	TaintPlaintext Taint = 1 << iota
	// TaintKey marks TEE-private key material: HUK-derived storage keys,
	// SGX sealing keys, unsealed secrets.
	TaintKey
	// taintTracer is the synthetic marker summary computation seeds
	// parameters with; it never appears in diagnostics.
	taintTracer
)

func (t Taint) String() string {
	switch {
	case t&TaintPlaintext != 0 && t&TaintKey != 0:
		return "plaintext+key material"
	case t&TaintKey != 0:
		return "key material"
	case t&TaintPlaintext != 0:
		return "verified plaintext"
	}
	return "untainted"
}

// A funcRule matches calls to a function or method by name and defining
// package.
type funcRule struct {
	// name is the function/method name; a trailing "*" makes it a prefix.
	name string
	// recv, when non-empty, requires the receiver's named type.
	recv string
	// modPrefixes are module-relative package-path prefixes the callee must
	// be defined under ("internal/securestore" covers its testdata
	// subtrees too).
	modPrefixes []string
	// stdPaths are exact import paths for stdlib/foreign callees.
	stdPaths []string
	// anyPkg accepts the name regardless of defining package — for names
	// that are de-facto reserved in this codebase (WriteBlock, sealPage).
	// anyPkg rules also match syntactically when types are unresolved.
	anyPkg bool
	// taint (sources only): kinds the call's results gain.
	taint Taint
	// result (sources only): which result index is tainted; -1 = all.
	result int
}

func (r *funcRule) nameMatches(name string) bool {
	if n, isPrefix := cutStar(r.name); isPrefix {
		return len(name) > len(n) && name[:len(n)] == n
	}
	return name == r.name
}

func cutStar(s string) (string, bool) {
	if n := len(s); n > 0 && s[n-1] == '*' {
		return s[:n-1], true
	}
	return s, false
}

// A sinkRule marks a call argument position where tainted data must not
// arrive.
type sinkRule struct {
	funcRule
	// arg is the sensitive argument index, -1 for all arguments. For
	// method calls the receiver is not an argument.
	arg int
	// bad is the set of taint kinds forbidden here.
	bad Taint
	// what names the sink in diagnostics ("raw device write").
	what string
	// fix is the remediation hint appended to diagnostics.
	fix string
}

// taintRules is one analyzer's source/sanitizer/sink configuration.
type taintRules struct {
	sources    []*funcRule
	sanitizers []*funcRule
	sinks      []*sinkRule
}

// calleeFunc resolves the function or method a call targets, or nil when
// type information is missing.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	if info == nil {
		return nil
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// recvTypeName returns the name of fn's receiver type ("" for plain
// functions), dereferencing a pointer receiver.
func recvTypeName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch n := t.(type) {
	case *types.Named:
		return n.Obj().Name()
	case *types.Interface:
		return ""
	}
	return ""
}

// calleeName extracts the syntactic name of the called function for
// fallback matching when types are unresolved.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// ruleMatches reports whether call targets a function covered by r.
func ruleMatches(mod *Module, info *types.Info, file *ast.File, r *funcRule, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		// Syntactic fallback. anyPkg rules match on name alone; stdPaths
		// rules match a pkg-qualified selector through the import table.
		name := calleeName(call)
		if name == "" || !r.nameMatches(name) {
			return false
		}
		if r.anyPkg {
			return true
		}
		if len(r.stdPaths) > 0 && file != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if x, ok := sel.X.(*ast.Ident); ok && x.Obj == nil {
					path := importsOf(file)[x.Name]
					for _, p := range r.stdPaths {
						if path == p {
							return true
						}
					}
				}
			}
		}
		return false
	}
	if !r.nameMatches(fn.Name()) {
		return false
	}
	if r.recv != "" && recvTypeName(fn) != r.recv {
		return false
	}
	if r.anyPkg {
		return true
	}
	// A rule with no package constraint (typically name+recv) matches the
	// name/receiver anywhere.
	if len(r.modPrefixes) == 0 && len(r.stdPaths) == 0 {
		return true
	}
	if rel, isModule := mod.modRelOf(fn.Pkg()); isModule {
		for _, p := range r.modPrefixes {
			if hasPrefixPath(rel, p) {
				return true
			}
		}
		return false
	}
	if fn.Pkg() != nil {
		for _, p := range r.stdPaths {
			if fn.Pkg().Path() == p {
				return true
			}
		}
	}
	return false
}

// propagatorPkgs are stdlib packages whose pure functions pass taint from
// arguments to results (byte/string shuffling, encodings).
var propagatorPkgs = map[string]bool{
	"bytes":           true,
	"strings":         true,
	"encoding/hex":    true,
	"encoding/base64": true,
	"encoding/binary": true,
}

// fmtPropagators are the fmt functions that RETURN their formatting instead
// of printing it; printing variants are sinks, not propagators.
var fmtPropagators = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

// isPropagator reports whether the call passes argument taint through to
// its results.
func isPropagator(info *types.Info, file *ast.File, call *ast.CallExpr) bool {
	name := calleeName(call)
	if name == "" {
		return false
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil {
		path := fn.Pkg().Path()
		return propagatorPkgs[path] || (path == "fmt" && fmtPropagators[name])
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok && x.Obj == nil && file != nil {
			path := importsOf(file)[x.Name]
			return propagatorPkgs[path] || (path == "fmt" && fmtPropagators[name])
		}
	}
	return false
}

// paramSinkInfo records that a parameter reaches a sink inside a callee.
type paramSinkInfo struct {
	bad  Taint
	what string
	fix  string
}

// A funcSummary is the one-call-deep interprocedural abstraction of a
// function: parameter-to-result flow, inherent result taint, and parameters
// that reach sinks. Parameter 0 is the receiver for methods.
type funcSummary struct {
	results     int
	resultTaint []Taint
	flows       [][]int
	paramSinks  [][]paramSinkInfo
}

// sinkHit is one taint arrival at a sink.
type sinkHit struct {
	pos   token.Pos
	taint Taint
	rule  *sinkRule
	// via names the callee whose summary carried the flow, "" for direct.
	via string
}

// taintEngine runs the lattice over one function body.
type taintEngine struct {
	pkg          *Package
	file         *ast.File
	rules        *taintRules
	useSummaries bool
	vars         map[types.Object]Taint
}

const maxTaintIters = 8

func newTaintEngine(pkg *Package, file *ast.File, rules *taintRules, useSummaries bool) *taintEngine {
	return &taintEngine{
		pkg:          pkg,
		file:         file,
		rules:        rules,
		useSummaries: useSummaries,
		vars:         map[types.Object]Taint{},
	}
}

func (e *taintEngine) info() *types.Info { return e.pkg.TypesInfo }

func (e *taintEngine) objOf(id *ast.Ident) types.Object {
	if e.info() == nil {
		return nil
	}
	if obj := e.info().Defs[id]; obj != nil {
		return obj
	}
	return e.info().Uses[id]
}

// rootObj finds the variable a write to lvalue ultimately mutates: x, x[i],
// x.f, *x all root at x (weak, field-insensitive updates).
func (e *taintEngine) rootObj(lvalue ast.Expr) types.Object {
	switch v := ast.Unparen(lvalue).(type) {
	case *ast.Ident:
		return e.objOf(v)
	case *ast.IndexExpr:
		return e.rootObj(v.X)
	case *ast.SelectorExpr:
		return e.rootObj(v.X)
	case *ast.StarExpr:
		return e.rootObj(v.X)
	case *ast.SliceExpr:
		return e.rootObj(v.X)
	}
	return nil
}

func (e *taintEngine) taintObj(obj types.Object, t Taint) bool {
	if obj == nil || t == 0 {
		return false
	}
	if e.vars[obj]&t == t {
		return false
	}
	e.vars[obj] |= t
	return true
}

// exprTaint computes the taint of an expression under the current state.
func (e *taintEngine) exprTaint(expr ast.Expr) Taint {
	switch v := expr.(type) {
	case nil:
		return 0
	case *ast.Ident:
		if obj := e.objOf(v); obj != nil {
			return e.vars[obj]
		}
	case *ast.ParenExpr:
		return e.exprTaint(v.X)
	case *ast.SelectorExpr:
		// Method values and package-qualified names carry no data taint;
		// field accesses inherit the struct's taint.
		if e.info() != nil {
			if _, isFn := e.info().Uses[v.Sel].(*types.Func); isFn {
				return 0
			}
			if x, ok := v.X.(*ast.Ident); ok {
				if _, isPkg := e.objOf(x).(*types.PkgName); isPkg {
					return 0
				}
			}
		}
		return e.exprTaint(v.X)
	case *ast.IndexExpr:
		return e.exprTaint(v.X)
	case *ast.SliceExpr:
		return e.exprTaint(v.X)
	case *ast.StarExpr:
		return e.exprTaint(v.X)
	case *ast.UnaryExpr:
		return e.exprTaint(v.X)
	case *ast.BinaryExpr:
		return e.exprTaint(v.X) | e.exprTaint(v.Y)
	case *ast.CompositeLit:
		var t Taint
		for _, el := range v.Elts {
			t |= e.exprTaint(el)
		}
		return t
	case *ast.KeyValueExpr:
		return e.exprTaint(v.Value)
	case *ast.TypeAssertExpr:
		return e.exprTaint(v.X)
	case *ast.CallExpr:
		ts := e.callTaint(v)
		var t Taint
		for _, rt := range ts {
			t |= rt
		}
		return t
	}
	return 0
}

// callResultCount returns how many results the call produces (1 when
// unknown — exprTaint joins them anyway).
func (e *taintEngine) callResultCount(call *ast.CallExpr) int {
	if e.info() != nil {
		if tv, ok := e.info().Types[call]; ok {
			if tuple, ok := tv.Type.(*types.Tuple); ok {
				return tuple.Len()
			}
		}
	}
	return 1
}

// callTaint computes the per-result taint of a call, applying source,
// sanitizer, propagator and summary rules. Side effects: builtin copy
// taints its destination.
func (e *taintEngine) callTaint(call *ast.CallExpr) []Taint {
	n := e.callResultCount(call)
	out := make([]Taint, max(n, 1))

	// Type conversions ([]byte(x), string(x)) pass taint through.
	if e.info() != nil {
		if tv, ok := e.info().Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			out[0] = e.exprTaint(call.Args[0])
			return out
		}
	}

	// Builtins.
	switch calleeName(call) {
	case "append":
		var t Taint
		for _, a := range call.Args {
			t |= e.exprTaint(a)
		}
		out[0] = t
		return out
	case "copy":
		if len(call.Args) == 2 {
			e.taintObj(e.rootObj(call.Args[0]), e.exprTaint(call.Args[1]))
		}
		return out
	case "len", "cap", "min", "max", "make", "new", "clear", "delete", "panic", "print", "println":
		return out
	}

	for _, r := range e.rules.sanitizers {
		if ruleMatches(e.pkg.Module, e.info(), e.file, r, call) {
			return out
		}
	}
	var matched bool
	for _, r := range e.rules.sources {
		if ruleMatches(e.pkg.Module, e.info(), e.file, r, call) {
			matched = true
			if r.result < 0 {
				for i := range out {
					out[i] |= r.taint
				}
			} else if r.result < len(out) {
				out[r.result] |= r.taint
			}
		}
	}
	if matched {
		return out
	}

	if isPropagator(e.info(), e.file, call) {
		var t Taint
		for _, a := range call.Args {
			t |= e.exprTaint(a)
		}
		for i := range out {
			out[i] |= t
		}
		return out
	}

	// One-call-deep summary flow for module-internal callees.
	if e.useSummaries {
		if fn := calleeFunc(e.info(), call); fn != nil {
			if _, isModule := e.pkg.Module.modRelOf(fn.Pkg()); isModule {
				if sum := e.pkg.Module.taintSummary(fn, e.rules); sum != nil {
					args := callArgsWithRecv(call, fn)
					for j, rt := range sum.resultTaint {
						if j < len(out) {
							out[j] |= rt &^ taintTracer
						}
					}
					for i, results := range sum.flows {
						t := e.argTaint(args, i, len(sum.flows))
						if t == 0 {
							continue
						}
						for _, j := range results {
							if j < len(out) {
								out[j] |= t
							}
						}
					}
				}
			}
		}
	}
	return out
}

// callArgsWithRecv returns the call's data arguments with the receiver
// prepended for method calls, aligning with summary parameter indexing.
func callArgsWithRecv(call *ast.CallExpr, fn *types.Func) []ast.Expr {
	args := call.Args
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			args = append([]ast.Expr{sel.X}, args...)
		}
	}
	return args
}

// argTaint maps summary parameter index i to call-site argument taint,
// folding variadic overflow onto the last parameter.
func (e *taintEngine) argTaint(args []ast.Expr, i, nparams int) Taint {
	if i < len(args) {
		t := e.exprTaint(args[i])
		if i == nparams-1 {
			for _, a := range args[i:] {
				t |= e.exprTaint(a)
			}
		}
		return t
	}
	return 0
}

// propagate runs one monotone pass over the body, returning whether the
// state changed. Function literals are analyzed inline: captured variables
// share the engine's state.
func (e *taintEngine) propagate(body ast.Node) bool {
	changed := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			changed = e.assign(stmt.Lhs, stmt.Rhs) || changed
		case *ast.ValueSpec:
			if len(stmt.Values) > 0 {
				lhs := make([]ast.Expr, len(stmt.Names))
				for i, id := range stmt.Names {
					lhs[i] = id
				}
				changed = e.assign(lhs, stmt.Values) || changed
			}
		case *ast.RangeStmt:
			t := e.exprTaint(stmt.X)
			if t != 0 {
				if stmt.Key != nil {
					changed = e.taintObj(e.rootObj(stmt.Key), t) || changed
				}
				if stmt.Value != nil {
					changed = e.taintObj(e.rootObj(stmt.Value), t) || changed
				}
			}
		case *ast.ExprStmt:
			// For side effects: copy(dst, tainted).
			if call, ok := stmt.X.(*ast.CallExpr); ok && calleeName(call) == "copy" && len(call.Args) == 2 {
				changed = e.taintObj(e.rootObj(call.Args[0]), e.exprTaint(call.Args[1])) || changed
			}
		}
		return true
	})
	return changed
}

// assign joins right-hand taint into left-hand roots, handling the
// multi-value call/assert/index forms.
func (e *taintEngine) assign(lhs, rhs []ast.Expr) bool {
	changed := false
	if len(rhs) == 1 && len(lhs) > 1 {
		switch r := ast.Unparen(rhs[0]).(type) {
		case *ast.CallExpr:
			ts := e.callTaint(r)
			for i := range lhs {
				if i < len(ts) {
					changed = e.taintObj(e.rootObj(lhs[i]), ts[i]) || changed
				}
			}
		default:
			// v, ok := m[k] / x.(T) / <-ch: the value is lhs[0].
			changed = e.taintObj(e.rootObj(lhs[0]), e.exprTaint(rhs[0])) || changed
		}
		return changed
	}
	for i := range lhs {
		if i < len(rhs) {
			changed = e.taintObj(e.rootObj(lhs[i]), e.exprTaint(rhs[i])) || changed
		}
	}
	return changed
}

// run seeds the engine and propagates to a fixpoint.
func (e *taintEngine) run(body ast.Node, seed map[types.Object]Taint) {
	for obj, t := range seed {
		e.vars[obj] = t
	}
	for i := 0; i < maxTaintIters; i++ {
		if !e.propagate(body) {
			break
		}
	}
}

// checkSinks walks the body once after the fixpoint, collecting every taint
// arrival at a direct sink or (via summaries) at a sink one call deep.
func (e *taintEngine) checkSinks(body ast.Node) []sinkHit {
	var hits []sinkHit
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, r := range e.rules.sinks {
			if !ruleMatches(e.pkg.Module, e.info(), e.file, &r.funcRule, call) {
				continue
			}
			args := call.Args
			if r.arg >= 0 {
				if r.arg >= len(args) {
					continue
				}
				args = args[r.arg : r.arg+1]
			}
			var t Taint
			for _, a := range args {
				t |= e.exprTaint(a)
			}
			// The tracer bit is kept alongside the bad kinds so summary
			// computation sees parameter-seeded flows; top-level engines
			// never seed it, so reported hits always carry a real kind.
			if t&(r.bad|taintTracer) != 0 {
				hits = append(hits, sinkHit{pos: call.Pos(), taint: t & (r.bad | taintTracer), rule: r})
			}
		}
		// Sanitizer and source calls never forward their arguments to an
		// internal sink we care about.
		if e.useSummaries {
			if fn := calleeFunc(e.info(), call); fn != nil {
				if _, isModule := e.pkg.Module.modRelOf(fn.Pkg()); isModule {
					if sum := e.pkg.Module.taintSummary(fn, e.rules); sum != nil {
						args := callArgsWithRecv(call, fn)
						for i, sinks := range sum.paramSinks {
							if len(sinks) == 0 {
								continue
							}
							t := e.argTaint(args, i, len(sum.flows))
							if t == 0 {
								continue
							}
							for _, ps := range sinks {
								if t&ps.bad != 0 {
									hits = append(hits, sinkHit{
										pos:   call.Pos(),
										taint: t & ps.bad,
										rule:  &sinkRule{what: ps.what, fix: ps.fix, bad: ps.bad},
										via:   fn.Name(),
									})
								}
							}
						}
					}
				}
			}
		}
		return true
	})
	return hits
}

// taintSummary computes (and caches) the one-call-deep summary of a
// module-internal function. Summary engines never consult other summaries.
func (m *Module) taintSummary(fn *types.Func, rules *taintRules) *funcSummary {
	if m.taintSums == nil {
		m.taintSums = map[*types.Func]*funcSummary{}
	}
	if sum, ok := m.taintSums[fn]; ok {
		return sum
	}
	m.taintSums[fn] = nil // cycle/self-recursion guard
	ref := m.funcFor(fn)
	if ref == nil {
		return nil
	}
	sum := computeTaintSummary(ref, rules)
	m.taintSums[fn] = sum
	return sum
}

const maxSummaryParams = 8

func computeTaintSummary(ref *funcDeclRef, rules *taintRules) *funcSummary {
	fd := ref.decl
	pkg := ref.pkg
	file := fileOf(pkg, fd.Pos())
	params := summaryParams(pkg, fd)
	if len(params) > maxSummaryParams {
		return nil
	}
	nresults := 0
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			if n := len(f.Names); n > 0 {
				nresults += n
			} else {
				nresults++
			}
		}
	}
	sum := &funcSummary{
		results:     nresults,
		resultTaint: make([]Taint, nresults),
		flows:       make([][]int, len(params)),
		paramSinks:  make([][]paramSinkInfo, len(params)),
	}
	allows := parseAllows(pkg.Fset, pkg.Files)

	// Inherent result taint: sources inside the body, no seeds.
	base := newTaintEngine(pkg, file, rules, false)
	base.run(fd.Body, nil)
	collectReturnTaint(base, fd, sum.resultTaint, 0)

	// Per-parameter flows: seed one tracer at a time.
	for i, p := range params {
		if p == nil {
			continue
		}
		eng := newTaintEngine(pkg, file, rules, false)
		eng.run(fd.Body, map[types.Object]Taint{p: taintTracer})
		rt := make([]Taint, nresults)
		collectReturnTaint(eng, fd, rt, taintTracer)
		for j, t := range rt {
			if t&taintTracer != 0 {
				sum.flows[i] = append(sum.flows[i], j)
			}
		}
		for _, hit := range eng.checkSinks(fd.Body) {
			if hit.taint&taintTracer == 0 || hit.via != "" {
				continue
			}
			// A suppressed internal sink is a reviewed exception; callers
			// must not re-report it.
			if allows.allowed(currentSinkAnalyzer(rules), pkg.Fset.Position(hit.pos)) {
				continue
			}
			sum.paramSinks[i] = append(sum.paramSinks[i], paramSinkInfo{
				bad:  hit.rule.bad,
				what: hit.rule.what,
				fix:  hit.rule.fix,
			})
		}
	}
	return sum
}

// currentSinkAnalyzer names the analyzer whose allow directives suppress
// summary sink propagation. Today only plainflow feeds sink rules through
// summaries.
func currentSinkAnalyzer(rules *taintRules) string { return "plainflow" }

// collectReturnTaint joins the taint of every return statement's results
// (and named results at bare returns) into out, masked to the kinds present
// when mask is zero or to mask otherwise.
func collectReturnTaint(e *taintEngine, fd *ast.FuncDecl, out []Taint, mask Taint) {
	named := namedResults(e.pkg, fd)
	depth := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			depth++
			// Returns inside nested literals are not this function's.
			ast.Inspect(v.Body, func(ast.Node) bool { return false })
			return false
		case *ast.ReturnStmt:
			if len(v.Results) == 0 {
				for j, obj := range named {
					if j < len(out) && obj != nil {
						out[j] |= filterMask(e.vars[obj], mask)
					}
				}
				return true
			}
			if len(v.Results) == 1 && len(out) > 1 {
				if call, ok := ast.Unparen(v.Results[0]).(*ast.CallExpr); ok {
					ts := e.callTaint(call)
					for j := range out {
						if j < len(ts) {
							out[j] |= filterMask(ts[j], mask)
						}
					}
					return true
				}
			}
			for j, r := range v.Results {
				if j < len(out) {
					out[j] |= filterMask(e.exprTaint(r), mask)
				}
			}
		}
		_ = depth
		return true
	})
}

func filterMask(t, mask Taint) Taint {
	if mask == 0 {
		return t &^ taintTracer
	}
	return t & mask
}

// summaryParams returns the types.Objects of the receiver (methods) and
// parameters in declaration order; unnamed slots are nil.
func summaryParams(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	addField := func(f *ast.Field) {
		if len(f.Names) == 0 {
			out = append(out, nil)
			return
		}
		for _, name := range f.Names {
			var obj types.Object
			if pkg.TypesInfo != nil {
				obj = pkg.TypesInfo.Defs[name]
			}
			out = append(out, obj)
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			addField(f)
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			addField(f)
		}
	}
	return out
}

// namedResults returns the objects of named results, nil entries for
// unnamed ones.
func namedResults(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Results == nil {
		return out
	}
	for _, f := range fd.Type.Results.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			var obj types.Object
			if pkg.TypesInfo != nil {
				obj = pkg.TypesInfo.Defs[name]
			}
			out = append(out, obj)
		}
	}
	return out
}

// fileOf finds the parsed file containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
