package analysis_test

import (
	"testing"

	"ironsafe/internal/analysis"
	"ironsafe/internal/analysis/analysistest"
)

func TestPlainflow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Plainflow, "internal/securestore/plainflow")
}

func TestPlainflowAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Plainflow, "internal/securestore/plainflowallow")
}

func TestFailopen(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Failopen, "failopen")
}

func TestFailopenAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Failopen, "failopenallow")
}

func TestPolicypath(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Policypath, "cmd/policypath")
}

func TestPolicypathAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Policypath, "cmd/policypathallow")
}

func TestPolicypathScope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Policypath, "internal/pager/policyscope")
}

func TestDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Directive, "directive")
}
