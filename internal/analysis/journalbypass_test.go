package analysis_test

import (
	"testing"

	"ironsafe/internal/analysis"
	"ironsafe/internal/analysis/analysistest"
)

func TestJournalbypassDirectWrites(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Journalbypass, "internal/securestore/journalbypass")
}

func TestJournalbypassAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Journalbypass, "internal/securestore/journalallow")
}

// TestJournalbypassScopedToSecurestore pins that WriteBlock elsewhere is
// fine: the pager and fault injectors write blocks as their job.
func TestJournalbypassScopedToSecurestore(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Journalbypass, "internal/pager/devwrite")
}
