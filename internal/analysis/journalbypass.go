package analysis

import (
	"go/ast"
	"strings"
)

// journalbypassScope is the package subtree where direct block writes are
// outlawed: the secure store's crash consistency depends on every mutation
// flowing through the journaled group-commit path.
const journalbypassScope = "internal/securestore"

// Journalbypass flags direct WriteBlock calls inside internal/securestore.
// The redo journal's whole guarantee — a power cut at any write boundary
// recovers to exactly the old or the new anchored state — holds only if
// every medium mutation is ordered behind a journal record. A WriteBlock
// sneaked in anywhere else (a cache flush, a "quick fix" header touch)
// reintroduces the unjournaled-write hole the journal closed. The sanctioned
// sites — the journal record write itself and the in-place applies of
// commit/recovery — carry //ironsafe:allow journalbypass directives naming
// their ordering argument. Test files are exempt: tests deliberately
// construct torn and stale media.
var Journalbypass = &Analyzer{
	Name: "journalbypass",
	Doc:  "flag direct device WriteBlock calls in internal/securestore outside the journaled commit/recovery paths",
	Run:  runJournalbypass,
}

func runJournalbypass(pass *Pass) error {
	if !pathInPrefixes(pass.Path, []string{journalbypassScope}) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "WriteBlock" {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct WriteBlock bypasses the redo journal; stage the write in a Txn (or, on the commit/recovery path itself, annotate the ordering with %s journalbypass)",
				DirectivePrefix)
			return true
		})
	}
	return nil
}
