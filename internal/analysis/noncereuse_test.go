package analysis_test

import (
	"testing"

	"ironsafe/internal/analysis"
	"ironsafe/internal/analysis/analysistest"
)

func TestNonceReuseCounterDerivation(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Noncereuse, "noncereuse")
}

func TestNonceReuseAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Noncereuse, "noncereuseallow")
}
