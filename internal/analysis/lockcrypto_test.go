package analysis_test

import (
	"testing"

	"ironsafe/internal/analysis"
	"ironsafe/internal/analysis/analysistest"
)

func TestLockcryptoUnderMutex(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Lockcrypto, "internal/securestore/lockcrypto")
}

func TestLockcryptoAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Lockcrypto, "internal/securestore/lockcryptoallow")
}

// TestLockcryptoScopedToSecurestore pins that crypto under other packages'
// locks is out of scope: only the secure store's scan path carries the
// seal-outside-the-lock contract.
func TestLockcryptoScopedToSecurestore(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Lockcrypto, "internal/pager/lockedcipher")
}
