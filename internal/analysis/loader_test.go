package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoaderIncludeTests checks the IncludeTests flag: in-package test
// files join the package, external test files (package foo_test) split into
// their own Package, and neither is seen without the flag.
func TestLoaderIncludeTests(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"a.go":          "package x\n\nfunc A() int { return 1 }\n",
		"a_test.go":     "package x\n\nfunc helperForTests() int { return A() }\n",
		"a_ext_test.go": "package x_test\n\nfunc External() {}\n",
	})

	pkgs, err := LoadDirWith(dir, "x", LoadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("without IncludeTests: got %d packages (files %d), want 1 package with 1 file", len(pkgs), len(pkgs[0].Files))
	}

	pkgs, err = LoadDirWith(dir, "x", LoadConfig{IncludeTests: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("with IncludeTests: got %d packages, want package + external test package", len(pkgs))
	}
	if pkgs[0].External || len(pkgs[0].Files) != 2 {
		t.Errorf("in-package: External=%v files=%d, want false/2", pkgs[0].External, len(pkgs[0].Files))
	}
	if !pkgs[1].External || pkgs[1].Name != "x_test" || len(pkgs[1].Files) != 1 {
		t.Errorf("external: External=%v name=%s files=%d, want true/x_test/1", pkgs[1].External, pkgs[1].Name, len(pkgs[1].Files))
	}
	// Both must carry type information; the external package's types path
	// must not collide with the real package's.
	for _, pkg := range pkgs {
		if pkg.Types == nil || pkg.TypesInfo == nil {
			t.Errorf("%s external=%v: missing type info", pkg.Path, pkg.External)
		}
	}
	if pkgs[0].Types.Path() == pkgs[1].Types.Path() {
		t.Errorf("package and external test package share types path %q", pkgs[0].Types.Path())
	}
}

// TestLoaderHonorsBuildTags checks that files excluded by //go:build
// constraints or GOOS file-name suffixes are skipped exactly as the go tool
// would skip them.
func TestLoaderHonorsBuildTags(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"keep.go":    "package x\n\nfunc Keep() {}\n",
		"ignored.go": "//go:build ignore\n\npackage x\n\nfunc Ignored() {}\n",
		// Neither GOOS can be the host: no test box is both.
		"skip_windows.go": "package x\n\nfunc OnWindows() {}\n",
		"skip_plan9.go":   "package x\n\nfunc OnPlan9() {}\n",
	})
	pkg, err := LoadDir(dir, "x")
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatal("no package loaded")
	}
	var names []string
	for _, f := range pkg.Files {
		names = append(names, filepath.Base(pkg.Fset.Position(f.Pos()).Filename))
	}
	if len(names) != 1 || names[0] != "keep.go" {
		t.Errorf("loaded files = %v, want just keep.go", names)
	}
}

// TestLoadWithTestsOverModule smoke-tests a module-wide test-inclusive
// load: the repo's own test files must parse, split, and type-check.
func TestLoadWithTestsOverModule(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadWith(root, []string{"./internal/securestore"}, LoadConfig{IncludeTests: true})
	if err != nil {
		t.Fatal(err)
	}
	testFiles := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if fileIsTest(pkg.Fset, f) {
				testFiles++
			}
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s (external=%v): type error: %v", pkg.Path, pkg.External, terr)
		}
	}
	if testFiles == 0 {
		t.Error("IncludeTests load of internal/securestore found no test files")
	}
}
