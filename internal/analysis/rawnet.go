package analysis

import (
	"go/ast"
	"strings"
)

// rawnetExemptPrefixes are the wrapper layers that legitimately touch raw
// connections and raw dials: resilience owns dialing (timeouts, retry,
// health accounting), transport owns deadline-armed frame I/O, and
// faultinject wraps net.Conn beneath the AEAD boundary to inject faults.
var rawnetExemptPrefixes = []string{
	"internal/resilience",
	"internal/transport",
	"internal/faultinject",
}

// rawnetDialFuncs are the package-level net dial entry points. Every one of
// them can block forever and none of them retries; distributed components
// must dial through resilience.DialTCP instead.
var rawnetDialFuncs = map[string]bool{
	"Dial":        true,
	"DialTimeout": true,
	"DialTCP":     true,
	"DialUDP":     true,
	"DialIP":      true,
	"DialUnix":    true,
}

// Rawnet flags naked network plumbing outside the sanctioned wrappers:
// package-level net.Dial* calls (no timeout, no retry, no health
// accounting — use resilience.DialTCP), and Read/Write calls on raw
// connections (no deadline arming, bypasses the AEAD frame layer — use
// transport.SecureConn). Boundary already confines the "net" import to the
// channel layers; Rawnet polices how those trusted layers use it, so a
// hung peer or dead node can never wedge a component that forgot to arm a
// deadline. Deliberate raw I/O (e.g. a deadline-guarded preamble) carries
// an //ironsafe:allow rawnet directive naming the guard. Test files are
// exempt: tests deliberately act as raw peers — hung servers, adversarial
// framing, half-open sockets.
var Rawnet = &Analyzer{
	Name: "rawnet",
	Doc:  "flag naked net.Dial* and raw conn Read/Write outside the resilience/transport wrappers",
	Run:  runRawnet,
}

func runRawnet(pass *Pass) error {
	if pathInPrefixes(pass.Path, rawnetExemptPrefixes) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		netNames := map[string]bool{}
		for _, n := range localNamesFor(f, "net") {
			netNames[n] = true
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && netNames[id.Name] && id.Obj == nil && rawnetDialFuncs[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"naked net.%s; dial through resilience.DialTCP so the connection gets a bounded timeout, retry policy, and health accounting",
					sel.Sel.Name)
				return true
			}
			if sel.Sel.Name != "Read" && sel.Sel.Name != "Write" {
				return true
			}
			if name, isConn := connReceiverName(sel.X); isConn {
				pass.Reportf(call.Pos(),
					"raw %s.%s outside the channel wrappers; frame I/O belongs in transport.SecureConn, or annotate a deadline-guarded exception with %s rawnet naming the guard",
					name, sel.Sel.Name, DirectivePrefix)
			}
			return true
		})
	}
	return nil
}

// connReceiverName reports whether the receiver expression names a raw
// connection. The check is syntactic (the suite has no type information),
// so it keys on naming convention: an identifier or field whose name
// contains "conn" — which every net.Conn in this codebase follows.
func connReceiverName(e ast.Expr) (string, bool) {
	var name string
	switch v := e.(type) {
	case *ast.Ident:
		name = v.Name
	case *ast.SelectorExpr:
		name = v.Sel.Name
	default:
		return "", false
	}
	if strings.Contains(strings.ToLower(name), "conn") {
		return name, true
	}
	return "", false
}
