package analysis

import (
	"go/ast"
	"strings"
)

// sealerrExact are callee names whose results must always be checked: the
// seal/open pair guards every ciphertext boundary in the system.
var sealerrExact = map[string]bool{
	"Seal":   true,
	"Open":   true,
	"Unseal": true,
}

// sealerrPrefixes extend the set to families: every Verify* (proofs, MACs,
// certificates, Merkle roots) and every Attest* (quotes, reports).
var sealerrPrefixes = []string{"Verify", "Attest"}

// Sealerr flags security-critical calls whose results are discarded. A
// dropped error from Seal/Open/Verify*/Attest* or rand.Read turns a
// detected attack (or an empty entropy read) into silent acceptance — the
// exact failure mode the TEE literature blames for most confidential-query
// bugs. Flagged shapes: the call as a bare statement, as a go/defer
// statement, an assignment of all results to blanks, or an assignment whose
// final (by Go convention, error) result is blank.
var Sealerr = &Analyzer{
	Name: "sealerr",
	Doc:  "flag discarded results from Seal/Open/Verify*/Attest*/rand.Read calls",
	Run:  runSealerr,
}

// sealerrMatches reports whether a call expression targets a guarded
// function, returning the display name.
func sealerrMatches(f *ast.File, call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		// rand.Read: only the crypto/rand package qualifier counts —
		// io.Reader.Read is not a security boundary.
		if name == "Read" {
			if id, ok := fun.X.(*ast.Ident); ok && id.Obj == nil {
				if importsOf(f)[id.Name] == "crypto/rand" {
					return "rand.Read", true
				}
			}
			return "", false
		}
	case *ast.Ident:
		name = fun.Name
	default:
		return "", false
	}
	if sealerrExact[name] {
		return name, true
	}
	for _, p := range sealerrPrefixes {
		if strings.HasPrefix(name, p) && len(name) > len(p) || name == p {
			return name, true
		}
	}
	return "", false
}

func runSealerr(pass *Pass) error {
	for _, f := range pass.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					if name, ok := sealerrMatches(file, call); ok {
						pass.Reportf(call.Pos(), "result of %s call discarded; seal/verify failures must be handled", name)
					}
				}
			case *ast.GoStmt:
				if name, ok := sealerrMatches(file, stmt.Call); ok {
					pass.Reportf(stmt.Call.Pos(), "result of %s call discarded by go statement", name)
				}
			case *ast.DeferStmt:
				if name, ok := sealerrMatches(file, stmt.Call); ok {
					pass.Reportf(stmt.Call.Pos(), "result of %s call discarded by defer", name)
				}
			case *ast.AssignStmt:
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := sealerrMatches(file, call)
				if !ok {
					return true
				}
				allBlank := true
				for _, lhs := range stmt.Lhs {
					if id, isIdent := lhs.(*ast.Ident); !isIdent || id.Name != "_" {
						allBlank = false
						break
					}
				}
				if allBlank {
					pass.Reportf(call.Pos(), "all results of %s call assigned to blank; seal/verify failures must be handled", name)
					return true
				}
				// Multi-result call with the final (error) slot blanked:
				// `n, _ := rand.Read(buf)`.
				if len(stmt.Lhs) > 1 {
					if id, isIdent := stmt.Lhs[len(stmt.Lhs)-1].(*ast.Ident); isIdent && id.Name == "_" {
						pass.Reportf(call.Pos(), "error result of %s call assigned to blank; seal/verify failures must be handled", name)
					}
				}
			}
			return true
		})
	}
	return nil
}
