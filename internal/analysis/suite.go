package analysis

// Suite returns the full ironsafe-vet analyzer suite in stable order.
func Suite() []*Analyzer {
	return []*Analyzer{Wallclock, Cryptorand, Sealerr, Noncereuse, Boundary, Rawnet, Journalbypass, Readmit, Budgetless, Lockcrypto, Plainflow, Failopen, Policypath, Earlyack, Rowloop, Directive}
}

// ByName resolves a comma-separated analyzer name list against the suite.
func ByName(names []string) ([]*Analyzer, bool) {
	byName := map[string]*Analyzer{}
	for _, a := range Suite() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
