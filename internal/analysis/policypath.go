package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// Policypath proves policy-check coverage: in the packages that host query
// entry points (the module root, cmd/*, internal/ctl, examples), every call
// that executes a query or scans storage must be lexically dominated — in
// the same function — by a monitor policy decision (Authorize, VerifyProof,
// Decide, ...). The reference monitor is only complete if there is no
// execution path around it; this analyzer makes "I forgot to authorize
// first" a build break instead of a code-review hope.
//
// One call deep, helpers are summarized: a module-internal function whose
// body executes queries without its own policy check becomes a sink at
// every call site, and a helper that performs a policy check becomes a
// dominator — so extracting either side into a function neither hides a
// violation nor breaks a legitimate flow. Functions named like executors
// (ExecuteLocal et al.) are the mechanism itself; the obligation sits with
// their callers, so their bodies are skipped.
var Policypath = &Analyzer{
	Name: "policypath",
	Doc:  "query execution and storage scans must be preceded by a monitor policy decision in the same function",
	Run:  runPolicypath,
}

// policypathScope are the module-relative path prefixes where query entry
// points live. Engine/pager internals are the mechanism below the monitor
// and are excluded by design (see DESIGN.md).
var policypathScope = []string{"", "cmd", "internal/ctl", "examples"}

func pathInPolicyScope(path string) bool {
	if path == "" {
		return true
	}
	for _, p := range policypathScope[1:] {
		if hasPrefixPath(path, p) {
			return true
		}
	}
	return false
}

// policySinks are the query-execution and storage-scan calls that require a
// prior policy decision.
var policySinks = []*funcRule{
	{name: "ExecuteSplitProvider", anyPkg: true},
	{name: "ExecuteSplit", anyPkg: true},
	{name: "ExecuteLocal", anyPkg: true},
	{name: "ExecOffload", anyPkg: true},
	{name: "Scan", modPrefixes: []string{"internal/pager", "internal/engine"}},
}

// policyDominators are the monitor decision points that discharge the
// obligation.
var policyDominators = []*funcRule{
	{name: "Authorize", anyPkg: true},
	{name: "VerifyProof", anyPkg: true},
	{name: "VerifyHostCert", anyPkg: true},
	{name: "Decide", anyPkg: true},
	{name: "Evaluate", anyPkg: true},
}

// A policySummary abstracts a callee for one-call-deep domination: does its
// body execute queries, and does it perform its own policy check first?
type policySummary struct {
	hasSink bool
	hasDom  bool
}

func isPolicySinkCall(pkg *Package, f *ast.File, call *ast.CallExpr) (string, bool) {
	for _, r := range policySinks {
		if ruleMatches(pkg.Module, pkg.TypesInfo, f, r, call) {
			return calleeName(call), true
		}
	}
	return "", false
}

func isPolicyDomCall(pkg *Package, f *ast.File, call *ast.CallExpr) bool {
	for _, r := range policyDominators {
		if ruleMatches(pkg.Module, pkg.TypesInfo, f, r, call) {
			return true
		}
	}
	// ctl-style dynamic dispatch: client.Call("authorize", ...) reaches the
	// monitor's authorize handler on the other end of the control plane.
	if calleeName(call) == "Call" && len(call.Args) > 0 {
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if s, err := strconv.Unquote(lit.Value); err == nil && s == "authorize" {
				return true
			}
		}
	}
	return false
}

// isExecutorDecl reports whether the function declaration IS one of the
// execution mechanisms (its name matches a sink rule), whose body is
// exempt.
func isExecutorDecl(fd *ast.FuncDecl) bool {
	for _, r := range policySinks {
		if r.anyPkg && r.nameMatches(fd.Name.Name) {
			return true
		}
	}
	return false
}

// policySummaryOf computes (cached) the sink/dominator content of a
// module-internal callee, using only direct rule matches — one call deep.
func (m *Module) policySummaryOf(pkg *Package, call *ast.CallExpr) *policySummary {
	fn := calleeFunc(pkg.TypesInfo, call)
	if fn == nil || m == nil {
		return nil
	}
	if _, isMod := m.modRelOf(fn.Pkg()); !isMod {
		return nil
	}
	if m.policySums == nil {
		m.policySums = map[*types.Func]*policySummary{}
	}
	if sum, ok := m.policySums[fn]; ok {
		return sum
	}
	m.policySums[fn] = nil // self-recursion guard
	ref := m.funcFor(fn)
	if ref == nil {
		return nil
	}
	if isExecutorDecl(ref.decl) {
		return nil // direct sink rules already cover it
	}
	file := fileOf(ref.pkg, ref.decl.Pos())
	sum := &policySummary{}
	allows := parseAllows(ref.pkg.Fset, ref.pkg.Files)
	ast.Inspect(ref.decl.Body, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, isSink := isPolicySinkCall(ref.pkg, file, c); isSink {
			// A suppressed sink in the callee is a reviewed exception and
			// must not resurface at every caller.
			if !allows.allowed("policypath", ref.pkg.Fset.Position(c.Pos())) {
				sum.hasSink = true
			}
		}
		if isPolicyDomCall(ref.pkg, file, c) {
			sum.hasDom = true
		}
		return true
	})
	m.policySums[fn] = sum
	return sum
}

func runPolicypath(pass *Pass) error {
	if !pathInPolicyScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		if fileIsTest(pass.Fset, f) {
			// Tests exercise executors directly against fixtures; the
			// invariant targets production entry points.
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isExecutorDecl(fd) {
				continue
			}
			checkPolicyFunc(pass, f, fd)
		}
	}
	return nil
}

// checkPolicyFunc walks the body in lexical order; a sink is a finding
// unless a dominator appeared earlier in the same body. Function literals
// are analyzed inline, so a dominator in the enclosing flow covers the
// literal (the common pattern: authorize, then hand a closure to the
// executor).
func checkPolicyFunc(pass *Pass, f *ast.File, fd *ast.FuncDecl) {
	mod := pass.Pkg.Module
	domSeen := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPolicyDomCall(pass.Pkg, f, call) {
			domSeen = true
			return true
		}
		if name, isSink := isPolicySinkCall(pass.Pkg, f, call); isSink {
			if !domSeen {
				pass.Reportf(call.Pos(), "%s executes without a prior policy decision in this function; call the monitor (Authorize/VerifyProof/Decide) first", name)
			}
			return true
		}
		if mod != nil {
			if sum := mod.policySummaryOf(pass.Pkg, call); sum != nil {
				if sum.hasDom {
					// The callee performs its own policy check: it both
					// discharges its own sinks and dominates what follows.
					domSeen = true
				} else if sum.hasSink && !domSeen {
					pass.Reportf(call.Pos(), "%s executes queries without a policy decision on any path to it; authorize before calling it", calleeName(call))
				}
			}
		}
		return true
	})
}
