package analysis

import (
	"go/ast"
)

// resiliencePkgPath is the import path budget-blind calls are matched
// against.
const resiliencePkgPath = "ironsafe/internal/resilience"

// budgetlessFuncs maps each budget-blind resilience entry point to its
// budget-aware replacement. Retry loops and armed connection deadlines on
// the offload path must draw on the query's deadline budget, or a
// gray-failing node can consume unbounded retry time that the budget
// machinery never sees.
var budgetlessFuncs = map[string]string{
	"Retry":            "RetryBudgeted",
	"WithConnDeadline": "WithBudgetedConnDeadline",
}

// budgetlessScopes are the module-relative subtrees where every retry or
// deadline must be budget-aware: the cluster runtime (module root) and the
// host engine's offload machinery. The resilience package itself, storage
// services, and tooling are out of scope — they either implement the budget
// primitives or run outside any query.
var budgetlessScopes = []string{"internal/hostengine"}

// Budgetless flags offload-path retry and connection-deadline sites that
// ignore the query's deadline budget. ISSUE: a query's end-to-end deadline
// is only enforceable if every attempt, failover, and handshake on its path
// charges one budget; a naked resilience.Retry or WithConnDeadline re-opens
// the unbounded-tail hole the budget closes. Sites that genuinely run
// outside a query (bootstrap, background rebuild donors) carry an
// //ironsafe:allow budgetless directive. Test files are exempt.
var Budgetless = &Analyzer{
	Name: "budgetless",
	Doc:  "flag budget-blind resilience.Retry/WithConnDeadline calls on the cluster/hostengine offload path",
	Run:  runBudgetless,
}

func runBudgetless(pass *Pass) error {
	if pass.Path != "" && !pathInPrefixes(pass.Path, budgetlessScopes) {
		return nil
	}
	for _, f := range pass.Files {
		if fileIsTest(pass.Fset, f) {
			continue
		}
		names := localNamesFor(f, resiliencePkgPath)
		if len(names) == 0 {
			continue
		}
		resNames := map[string]bool{}
		for _, n := range names {
			resNames[n] = true
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			budgeted, blind := budgetlessFuncs[sel.Sel.Name]
			if !blind {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !resNames[id.Name] || id.Obj != nil {
				// A shadowing local declaration is not the package.
				return true
			}
			pass.Reportf(call.Pos(),
				"budget-blind resilience.%s on the offload path ignores the query's deadline budget; use resilience.%s, or annotate a genuinely query-free site with %s budgetless",
				sel.Sel.Name, budgeted, DirectivePrefix)
			return true
		})
	}
	return nil
}
