package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ironsafe/internal/analysis"
)

// TestRepoClean runs the full suite over the repository itself: the
// acceptance bar is that shipped code carries no un-annotated violations.
// Any new finding either needs a fix or a reviewed //ironsafe:allow
// directive with a rationale.
func TestRepoClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loader found only %d packages; pattern expansion is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		findings, err := analysis.RunAnalyzers(pkg, analysis.Suite())
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}

// TestLoaderSkipsTestdata ensures golden violation packages never leak into
// a repo-wide run.
func TestLoaderSkipsTestdata(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		if strings.Contains(filepath.ToSlash(pkg.Dir), "/testdata/") {
			t.Errorf("loader descended into testdata: %s", pkg.Dir)
		}
	}
}

// TestSuiteNames pins the analyzer names the allow directives reference.
func TestSuiteNames(t *testing.T) {
	var names []string
	for _, a := range analysis.Suite() {
		names = append(names, a.Name)
	}
	want := []string{"wallclock", "cryptorand", "sealerr", "noncereuse", "boundary", "rawnet", "journalbypass", "readmit", "budgetless", "lockcrypto", "plainflow", "failopen", "policypath", "earlyack", "rowloop", "directive"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("suite = %v, want %v", names, want)
	}
	if _, ok := analysis.ByName([]string{"wallclock", "boundary", "plainflow"}); !ok {
		t.Fatal("ByName rejected valid names")
	}
	if _, ok := analysis.ByName([]string{"nonexistent"}); ok {
		t.Fatal("ByName accepted an unknown name")
	}
}

// TestModuleTypeChecks asserts the go/types checker produces clean results
// for every real module package: the dataflow analyzers are only as strong
// as the type information under them, so a type error in shipped code would
// silently degrade them to "unknown callee" syntactic matching.
func TestModuleTypeChecks(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil || pkg.TypesInfo == nil {
			t.Errorf("%s: no type information", pkg.Path)
			continue
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
	}
}

// TestDirectiveInventory asserts every allow directive in the repo carries
// a rationale — the machine-checked form of "each suppression is explained".
func TestDirectiveInventory(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analysis.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.CollectDirectives(pkg) {
			total++
			if d.Rationale == "" {
				t.Errorf("%s: allow directive for %v has no rationale", d.Pos, d.Analyzers)
			}
		}
	}
	if total == 0 {
		t.Fatal("no allow directives found in the repo; CollectDirectives is broken")
	}
}
