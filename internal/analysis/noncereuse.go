package analysis

import (
	"go/ast"
)

// Noncereuse flags AEAD Seal/Open calls whose nonce argument is not visibly
// derived from a sequence counter in the same function. GCM's security
// collapses completely on a repeated (key, nonce) pair — two frames sealed
// under the same nonce leak the XOR of their plaintexts and enough material
// to forge tags — so the repo's standing pattern is the transport one: a
// per-direction uint64 counter serialized into the nonce with
// binary.BigEndian.PutUint64 immediately before the call. On the Open side
// the same derivation is what turns replayed, dropped, or reordered frames
// into authentication failures instead of silent acceptance.
//
// The check is lexical and per-function: a Seal/Open call in AEAD shape
// (four arguments, receiver not an imported package) is fine when its nonce
// argument is an identifier that some binary.{Big,Little}Endian.PutUint64/32
// call in the same function writes into; anything else — a random nonce, a
// nonce parsed out of attacker-supplied bytes, a nonce built elsewhere —
// needs a reviewed //ironsafe:allow noncereuse directive arguing why reuse
// (or acceptance of a foreign nonce) is impossible at that site. Test files
// are exempt: tests forge nonces deliberately.
var Noncereuse = &Analyzer{
	Name: "noncereuse",
	Doc:  "flag AEAD Seal/Open calls whose nonce is not counter-derived in the same function; non-counter nonces need a reviewed allow",
	Run:  runNoncereuse,
}

func runNoncereuse(pass *Pass) error {
	for _, f := range pass.Files {
		if fileIsTest(pass.Fset, f) {
			continue
		}
		imports := importsOf(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			noncereuseCheckFunc(pass, fn, imports)
		}
	}
	return nil
}

func noncereuseCheckFunc(pass *Pass, fn *ast.FuncDecl, imports map[string]string) {
	// First pass: every identifier a counter-serialization call writes into.
	// binary.BigEndian.PutUint64(nonce[...], seq) marks "nonce" as
	// counter-derived for the whole function; slicing and offsets don't
	// matter, only that the bytes come from an integer sequence.
	derived := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 1 || !isPutUintCall(call, imports) {
			return true
		}
		ast.Inspect(call.Args[0], func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				derived[id.Name] = true
			}
			return true
		})
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 4 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Seal" && sel.Sel.Name != "Open") {
			return true
		}
		// A package-level 4-arg Seal/Open (securestore.Open(dev, nw, meter,
		// opts), ...) is not an AEAD call; the AEAD shape is a method on a
		// value.
		if id, ok := sel.X.(*ast.Ident); ok {
			if _, imported := imports[id.Name]; imported {
				return true
			}
		}
		nonce, ok := call.Args[1].(*ast.Ident)
		if !ok || !derived[nonce.Name] {
			pass.Reportf(call.Args[1].Pos(),
				"AEAD %s nonce is not derived from a sequence counter in this function; serialize a per-key counter into it with binary.BigEndian.PutUint64 (or annotate the site with %s noncereuse -- <why reuse is impossible>)",
				sel.Sel.Name, DirectivePrefix)
		}
		return true
	})
}

// isPutUintCall matches binary.{BigEndian,LittleEndian}.PutUint64/PutUint32
// with "binary" resolved through the file's imports to encoding/binary.
func isPutUintCall(call *ast.CallExpr, imports map[string]string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "PutUint64" && sel.Sel.Name != "PutUint32") {
		return false
	}
	order, ok := sel.X.(*ast.SelectorExpr)
	if !ok || (order.Sel.Name != "BigEndian" && order.Sel.Name != "LittleEndian") {
		return false
	}
	pkg, ok := order.X.(*ast.Ident)
	return ok && imports[pkg.Name] == "encoding/binary"
}
