package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A DirectiveInfo is one parsed //ironsafe:allow comment, for auditing and
// the machine-readable findings record.
type DirectiveInfo struct {
	Pos       token.Position
	Analyzers []string
	// Rationale is the free-form justification after " -- ", "" if absent.
	Rationale string
}

// CollectDirectives parses every allow directive in the package.
func CollectDirectives(pkg *Package) []DirectiveInfo {
	var out []DirectiveInfo
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				rationale := ""
				if i := strings.Index(c.Text, " -- "); i >= 0 {
					rationale = strings.TrimSpace(c.Text[i+4:])
				}
				out = append(out, DirectiveInfo{
					Pos:       pkg.Fset.Position(c.Pos()),
					Analyzers: names,
					Rationale: rationale,
				})
			}
		}
	}
	return out
}

// Directive audits the escape hatches themselves: every //ironsafe:allow
// must name analyzers that actually exist and carry a " -- rationale"
// justifying why the invariant does not apply at that site. An allow without
// a rationale is unreviewable — the whole point of the directive is that a
// reviewer can audit every suppression in one grep.
var Directive = &Analyzer{
	Name: "directive",
	Doc:  "flag //ironsafe:allow directives that lack a rationale or name unknown analyzers",
}

func init() {
	// Assigned in init to break the Directive -> runDirective -> Suite ->
	// Directive initialization cycle.
	Directive.Run = runDirective
}

func runDirective(pass *Pass) error {
	known := map[string]bool{}
	for _, a := range Suite() {
		known[a.Name] = true
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				if !strings.Contains(c.Text, " -- ") {
					pass.Reportf(c.Pos(), "allow directive for %s has no rationale; append ` -- <why the invariant does not apply here>`",
						strings.Join(names, ","))
				}
				for _, n := range names {
					if !known[n] {
						pass.Reportf(c.Pos(), "allow directive names unknown analyzer %q (run ironsafe-vet -list)", n)
					}
				}
			}
		}
	}
	return nil
}

// fileIsTest reports whether the file was parsed from a _test.go file.
func fileIsTest(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
