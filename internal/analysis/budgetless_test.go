package analysis_test

import (
	"testing"

	"ironsafe/internal/analysis"
	"ironsafe/internal/analysis/analysistest"
)

func TestBudgetlessOffloadPath(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Budgetless, "internal/hostengine/budgetless")
}

func TestBudgetlessAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Budgetless, "internal/hostengine/budgetlessallow")
}

// TestBudgetlessScopedToOffloadSubtree pins that packages outside the
// cluster root and internal/hostengine are not in scope: services and
// tooling have no query budget to draw on.
func TestBudgetlessScopedToOffloadSubtree(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Budgetless, "budgetlessout")
}
