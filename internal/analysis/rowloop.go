package analysis

import (
	"go/ast"
	"strings"
)

// Rowloop keeps the executor on the vectorized pipeline: inside
// internal/sql/exec, scanning a relation one row at a time — a
// `X.Scan(func(row) ...)` callback loop — is the slow path, paying one
// virtual-dispatch and one accounting touch per tuple where the batched
// pipeline pays them once per ~4096 rows. New operator code should consume
// `ScanBatch` (or the shared row/batch bridges) instead. The sanctioned
// row-at-a-time fallbacks (ExecBatchRows=1, relations without ScanBatch)
// carry an //ironsafe:allow rowloop directive with a rationale; anything
// else is flagged.
var Rowloop = &Analyzer{
	Name: "rowloop",
	Doc:  "flag per-row Relation.Scan callback loops in the executor (use ScanBatch or annotate the sanctioned fallback)",
	Run:  runRowloop,
}

func runRowloop(pass *Pass) error {
	if !hasPrefixPath(pass.Path, "internal/sql/exec") {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Scan" || len(call.Args) != 1 {
				return true
			}
			if _, ok := call.Args[0].(*ast.FuncLit); !ok {
				return true
			}
			pass.Reportf(call.Pos(),
				"row-at-a-time Relation.Scan loop in the executor; consume ScanBatch (batched pipeline) or annotate the sanctioned fallback with %s rowloop",
				DirectivePrefix)
			return true
		})
	}
	return nil
}
