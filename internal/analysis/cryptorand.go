package analysis

// mathRandPaths are the import paths of Go's non-cryptographic PRNGs.
var mathRandPaths = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// CryptorandAllowedPaths exempts whole packages whose use of math/rand is
// load-bearing for correctness rather than a security hazard. Each entry
// documents why.
var CryptorandAllowedPaths = map[string]string{
	// TPC-H data generation must be deterministic: dbgen semantics require
	// that a given scale factor always yields bit-identical tables so runs
	// are comparable and differential tests are stable. The generated
	// values are public benchmark data, never key material, so a seeded
	// math/rand stream is exactly the right tool and crypto/rand (which
	// cannot be seeded) would break the invariant.
	"internal/tpch": "seeded deterministic benchmark data generation; values are public, not key material",
}

// cryptorandCriticalPrefixes are the security-critical subtrees where weak
// randomness is most dangerous — key generation, nonces, attestation
// challenges, transport handshakes. The check covers the whole module, but
// these paths get a sharper message.
var cryptorandCriticalPrefixes = []string{
	"internal/tee",
	"internal/securestore",
	"internal/transport",
	"internal/monitor",
}

// Cryptorand flags any import of math/rand (or math/rand/v2) outside the
// documented allowlist. In the security packages a math/rand nonce or
// challenge is a key-recovery or replay vulnerability; elsewhere it is
// almost always a latent one, because helpers migrate. crypto/rand is the
// only randomness source security code may draw from.
var Cryptorand = &Analyzer{
	Name: "cryptorand",
	Doc:  "flag math/rand imports; security code must use crypto/rand, and exceptions must be allowlisted",
	Run:  runCryptorand,
}

func runCryptorand(pass *Pass) error {
	if _, ok := CryptorandAllowedPaths[pass.Path]; ok {
		return nil
	}
	critical := false
	for _, p := range cryptorandCriticalPrefixes {
		if hasPrefixPath(pass.Path, p) {
			critical = true
			break
		}
	}
	for _, f := range pass.Files {
		for path := range mathRandPaths {
			spec := importSpec(f, path)
			if spec == nil {
				continue
			}
			if critical {
				pass.Reportf(spec.Pos(),
					"%s imported in security-critical package %s; nonces, keys, and challenges must come from crypto/rand",
					path, pass.Path)
			} else {
				pass.Reportf(spec.Pos(),
					"%s imported; use crypto/rand, or add this package to CryptorandAllowedPaths with a rationale if determinism is required",
					path)
			}
		}
	}
	return nil
}
