package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// lockcryptoScope is the package subtree where page crypto under the store
// mutex is outlawed: the batched scan pipeline's whole point is that AES and
// HMAC work happens outside the critical section, on a worker pool.
const lockcryptoScope = "internal/securestore"

// lockcryptoPkgFuncs lists the bulk-crypto entry points per standard-library
// package; a call to any of them while the store mutex is held serializes
// every concurrent reader behind the cipher.
var lockcryptoPkgFuncs = map[string]map[string]bool{
	"crypto/aes":    {"NewCipher": true},
	"crypto/cipher": {"NewCBCEncrypter": true, "NewCBCDecrypter": true, "NewGCM": true},
	"crypto/hmac":   {"New": true},
}

// lockcryptoLocalHelpers names the store's own page seal/open helpers, which
// wrap the primitives above and are equally forbidden under the mutex. Tree
// hashing (leafHash/hashNode/rootTag) is deliberately NOT listed: the Merkle
// tree is mutex-protected state, so hashing it under the lock is inherent.
var lockcryptoLocalHelpers = map[string]bool{
	"sealPage":    true,
	"openPage":    true,
	"sealPageGCM": true,
	"openPageGCM": true,
	"pageMAC":     true,
}

// Lockcrypto flags AES/HMAC page crypto performed while holding the secure
// store's mutex. Sealing or opening a 4 KiB page costs tens of microseconds
// of cipher+MAC work; doing it inside the store's critical section turns the
// mutex into a pipeline-wide stall — exactly the serialization the batched
// read path (ReadPages) exists to avoid. The scan pipeline's contract is:
// snapshot under the lock, decrypt and MAC on an unlocked worker pool,
// re-lock only to verify and publish.
//
// The check is lexical and per-function: it tracks mu.Lock()/mu.Unlock()
// call positions inside each function body (a deferred Unlock keeps the
// function locked to its end) and flags crypto calls at lock depth > 0.
// Helpers whose CALLERS hold the mutex (readPageLocked-style) have no lock
// events of their own and are therefore not flagged — the analyzer catches
// the lock-and-seal pattern where both appear in one function, which is how
// the regression it guards against actually gets written. Test files are
// exempt: tests lock deliberately to probe blocking behaviour.
var Lockcrypto = &Analyzer{
	Name: "lockcrypto",
	Doc:  "flag AES/HMAC page crypto while holding securestore's Store.mu; seal/open belongs outside the critical section",
	Run:  runLockcrypto,
}

func runLockcrypto(pass *Pass) error {
	if !pathInPrefixes(pass.Path, []string{lockcryptoScope}) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		imports := importsOf(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			lockcryptoCheckFunc(pass, fn, imports)
		}
	}
	return nil
}

// lockEvent is one mutex transition at a source position: +1 for Lock,
// -1 for a non-deferred Unlock.
type lockEvent struct {
	pos   token.Pos
	delta int
}

type cryptoCall struct {
	pos  token.Pos
	name string
}

func lockcryptoCheckFunc(pass *Pass, fn *ast.FuncDecl, imports map[string]string) {
	// First pass: positions of deferred calls. A deferred mu.Unlock() runs at
	// function exit, so it must not close the lexical lock region.
	deferred := map[token.Pos]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Call != nil {
			deferred[d.Call.Pos()] = true
		}
		return true
	})

	var events []lockEvent
	var calls []cryptoCall
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if isMuField(sel.X) {
				events = append(events, lockEvent{pos: call.Pos(), delta: +1})
			}
			return true
		case "Unlock", "RUnlock":
			if isMuField(sel.X) && !deferred[call.Pos()] {
				events = append(events, lockEvent{pos: call.Pos(), delta: -1})
			}
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if path, imported := imports[id.Name]; imported {
				if funcs := lockcryptoPkgFuncs[path]; funcs != nil && funcs[sel.Sel.Name] {
					calls = append(calls, cryptoCall{pos: call.Pos(), name: id.Name + "." + sel.Sel.Name})
				}
				return true
			}
		}
		if lockcryptoLocalHelpers[sel.Sel.Name] {
			calls = append(calls, cryptoCall{pos: call.Pos(), name: sel.Sel.Name})
		}
		return true
	})
	if len(calls) == 0 || len(events) == 0 {
		return
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	sort.Slice(calls, func(i, j int) bool { return calls[i].pos < calls[j].pos })

	depth, next := 0, 0
	for _, c := range calls {
		for next < len(events) && events[next].pos < c.pos {
			depth += events[next].delta
			if depth < 0 {
				depth = 0
			}
			next++
		}
		if depth > 0 {
			pass.Reportf(c.pos,
				"page crypto (%s) while holding the store mutex stalls every concurrent reader; seal/open outside the critical section (or annotate the site with %s lockcrypto)",
				c.name, DirectivePrefix)
		}
	}
}

// isMuField reports whether expr denotes a field or variable named "mu"
// (s.mu, t.s.mu, or a bare mu identifier).
func isMuField(expr ast.Expr) bool {
	switch x := expr.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name == "mu"
	case *ast.Ident:
		return x.Name == "mu"
	}
	return false
}
