package analysis_test

import (
	"testing"

	"ironsafe/internal/analysis"
	"ironsafe/internal/analysis/analysistest"
)

func TestBoundaryEnclaveImport(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Boundary, "internal/engine/teeimport")
}

func TestBoundaryRawNet(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Boundary, "internal/engine/rawnet")
}

func TestBoundarySecretPayload(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Boundary, "internal/pager/sendsecret")
}

func TestBoundaryAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Boundary, "internal/engine/boundaryallow")
}

func TestBoundaryTrustedSet(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Boundary, "internal/monitor/trusted")
}
