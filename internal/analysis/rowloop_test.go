package analysis_test

import (
	"testing"

	"ironsafe/internal/analysis"
	"ironsafe/internal/analysis/analysistest"
)

func TestRowloopScanLoops(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Rowloop, "internal/sql/exec/rowloop")
}

func TestRowloopAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Rowloop, "internal/sql/exec/rowloopallow")
}

// TestRowloopScopedToExec pins that the contract governs the executor only:
// a Scan callback loop elsewhere is not an operator pipeline.
func TestRowloopScopedToExec(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Rowloop, "rowloopout")
}
