package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Earlyack enforces the ingest pipeline's acked-write contract at the source
// level: a record's ack (`pending.deliver`) may only be sent after the group
// commit that contains it has durably succeeded. Syntactically, every
// `.deliver(` call in internal/ingest must be preceded — within the same
// function — by a nil-check of an error produced by a commit-family call
// (applyBatch / Apply / Commit / ExecuteBatch). An ack sent with no durable
// commit in sight (acking on enqueue, acking before the journal write, acking
// a batch that was never applied) is exactly the bug class that turns a crash
// into silent data loss: the client moves on, the record evaporates.
//
// The check is a syntactic dominance approximation, like the rest of the
// older suite: it demands evidence of a checked commit lexically before the
// delivery, not a full CFG proof. The escape hatch is the usual
// //ironsafe:allow earlyack directive with a rationale. The `deliver` method
// itself (the channel-send primitive) and test files are exempt.
var Earlyack = &Analyzer{
	Name: "earlyack",
	Doc:  "flag ingest ack deliveries not preceded by a checked durable commit",
	Run:  runEarlyack,
}

// earlyackCommitCallees are the calls whose checked success counts as
// durable-commit evidence on the ingest write path.
var earlyackCommitCallees = map[string]bool{
	"applyBatch":   true,
	"Apply":        true,
	"Commit":       true,
	"ExecuteBatch": true,
}

func runEarlyack(pass *Pass) error {
	if !hasPrefixPath(pass.Path, "internal/ingest") {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				earlyackCheckFunc(pass, fn)
			}
		}
	}
	return nil
}

func earlyackCheckFunc(pass *Pass, fn *ast.FuncDecl) {
	// The delivery primitive itself is the sanctioned sender; the analyzer
	// governs who may call it.
	if fn.Name.Name == "deliver" {
		return
	}

	// Pass 1: collect nil-checks of errors assigned from commit-family calls.
	commitErrs := map[string]token.Pos{} // error ident -> assignment position
	var checks []token.Pos               // positions of if-statements testing such an error
	recordAssign := func(st *ast.AssignStmt) {
		for _, rhs := range st.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !earlyackIsCommitCall(call) {
				continue
			}
			if len(st.Lhs) == 0 {
				continue
			}
			// The error is conventionally the last result.
			if id, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident); ok && id.Name != "_" {
				commitErrs[id.Name] = st.Pos()
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			recordAssign(st)
		case *ast.IfStmt:
			// `if err := n.Commit(); err != nil` binds in its own Init, which
			// Inspect has not visited yet — record it first.
			if init, ok := st.Init.(*ast.AssignStmt); ok {
				recordAssign(init)
			}
			if name, ok := earlyackNilCheck(st.Cond); ok {
				// The binding must precede the condition — an if-init assign
				// sits between st.Pos() and st.Cond.Pos(), so compare against
				// the condition, not the statement.
				if apos, bound := commitErrs[name]; bound && apos < st.Cond.Pos() {
					checks = append(checks, st.Pos())
				}
			}
		}
		return true
	})

	// Pass 2: every deliver call needs a check before it.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "deliver" {
			return true
		}
		for _, cpos := range checks {
			if cpos < call.Pos() {
				return true
			}
		}
		pass.Reportf(call.Pos(),
			"ack delivered without a checked durable commit before it; an ack must follow its group commit's journal write (or annotate with %s earlyack)",
			DirectivePrefix)
		return true
	})
}

// earlyackIsCommitCall reports whether the call's callee name is in the
// commit family, whatever the receiver.
func earlyackIsCommitCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return earlyackCommitCallees[fun.Name]
	case *ast.SelectorExpr:
		return earlyackCommitCallees[fun.Sel.Name]
	}
	return false
}

// earlyackNilCheck matches `x == nil` / `x != nil` and returns x's name.
func earlyackNilCheck(cond ast.Expr) (string, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return "", false
	}
	x, y := be.X, be.Y
	if id, ok := y.(*ast.Ident); ok && id.Name == "nil" {
		if xid, ok := x.(*ast.Ident); ok {
			return xid.Name, true
		}
	}
	if id, ok := x.(*ast.Ident); ok && id.Name == "nil" {
		if yid, ok := y.(*ast.Ident); ok {
			return yid.Name, true
		}
	}
	return "", false
}
