// Package analysistest runs an analyzer over golden testdata packages and
// checks its diagnostics against expectations embedded in the source, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// Testdata layout mirrors x/tools: <testdata>/src/<pkgpath>/*.go, where
// <pkgpath> doubles as the module-relative package path the analyzer sees —
// so a package that must exercise a path-scoped rule lives under a matching
// directory (e.g. src/internal/tee/badrand).
//
// Expectations are trailing comments of the form
//
//	x() // want "regexp"
//	y() // want "first" "second"
//
// Each quoted string is a regular expression that must match the message of
// exactly one diagnostic reported on that line; diagnostics without a
// matching want, and wants without a matching diagnostic, fail the test.
// Diagnostics suppressed by //ironsafe:allow directives are invisible here,
// which is how directive testdata packages assert suppression: they seed a
// violation, add the directive, and declare no wants.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"ironsafe/internal/analysis"
)

// TB is the subset of *testing.T the harness needs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads each package under testdata/src and applies the analyzer,
// comparing surviving findings to // want expectations.
func Run(t TB, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, p := range pkgPaths {
		runOne(t, testdata, a, p)
	}
}

func runOne(t TB, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
	pkg, err := analysis.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	if pkg == nil {
		t.Fatalf("%s: no Go files in %s", pkgPath, dir)
	}
	findings, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}

	wants, err := collectWants(dir)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		ws := wants[key]
		matched := -1
		for i, w := range ws {
			if !w.used && w.re.MatchString(f.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", pkgPath, f)
			continue
		}
		ws[matched].used = true
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: %s: no diagnostic matching %q", pkgPath, key, w.re)
			}
		}
	}
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// collectWants scans every Go file in dir for // want comments, keyed by
// "file.go:line".
func collectWants(dir string) (map[string][]*want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	wants := map[string][]*want{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			patterns, err := splitQuoted(m[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", e.Name(), i+1, err)
			}
			key := fmt.Sprintf("%s:%d", e.Name(), i+1)
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", e.Name(), i+1, p, err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
	return wants, nil
}

// splitQuoted parses a sequence of double-quoted or backquoted strings.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted pattern in %q", s)
			}
			out = append(out, strings.ReplaceAll(s[1:end], `\"`, `"`))
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted pattern in %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
