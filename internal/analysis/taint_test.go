package analysis

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// taintFixture lives (by declared path) under internal/securestore so the
// plainflow source rules treat its ReadPage/DeriveKey as the real API.
const taintFixture = `package tt

type Store struct{}

func (s *Store) ReadPage(id uint32) ([]byte, error) { return nil, nil }
func (s *Store) sealPage(p []byte) []byte           { return p }
func DeriveKey(label string) []byte                 { return nil }
func WriteBlock(id uint32, b []byte) error          { return nil }

func ident(b []byte) []byte { return b }
func sink(b []byte)         { WriteBlock(9, b) }

func assign(s *Store) {
	p, _ := s.ReadPage(1)
	q := p
	_ = q
}

func viaCall(s *Store) {
	p, _ := s.ReadPage(1)
	q := ident(p)
	_ = q
}

func composite(s *Store) {
	p, _ := s.ReadPage(1)
	q := [][]byte{p}
	_ = q
}

func viaReturnHelper(s *Store) []byte {
	p, _ := s.ReadPage(1)
	return p
}

func fromHelper(s *Store) {
	q := viaReturnHelper(s)
	_ = q
}

func sanitized(s *Store) {
	p, _ := s.ReadPage(1)
	q := s.sealPage(p)
	_ = q
}

func sliced(s *Store) {
	p, _ := s.ReadPage(1)
	q := p[1:3]
	k := DeriveKey("x")
	r := append(q, k...)
	_ = r
}

func ranged(s *Store) {
	pages, _ := s.ReadPage(1)
	var q byte
	for _, b := range pages {
		q = b
	}
	_ = q
}

func sinkHitFn(s *Store) {
	p, _ := s.ReadPage(1)
	sink(p)
}

func sinkCleanFn(s *Store) {
	p, _ := s.ReadPage(1)
	sink(s.sealPage(p))
}
`

func loadTaintFixture(t *testing.T) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(taintFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "internal/securestore/tt")
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatal("fixture produced no package")
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture has type errors: %v", pkg.TypeErrors)
	}
	return pkg
}

func funcDeclNamed(t *testing.T, pkg *Package, name string) (*ast.File, *ast.FuncDecl) {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return f, fd
			}
		}
	}
	t.Fatalf("no function %s in fixture", name)
	return nil, nil
}

func varObjNamed(pkg *Package, fd *ast.FuncDecl, name string) types.Object {
	var obj types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if o := pkg.TypesInfo.Defs[id]; o != nil {
				obj = o
			}
		}
		return true
	})
	return obj
}

// TestTaintLattice drives the intraprocedural engine through every
// propagation shape the analyzers rely on.
func TestTaintLattice(t *testing.T) {
	pkg := loadTaintFixture(t)
	cases := []struct {
		fn, v string
		want  Taint
	}{
		{"assign", "q", TaintPlaintext},            // plain assignment
		{"viaCall", "q", TaintPlaintext},           // call via summary flow
		{"composite", "q", TaintPlaintext},         // composite literal
		{"fromHelper", "q", TaintPlaintext},        // summary result taint
		{"sanitized", "q", 0},                      // sanitizer kills taint
		{"sliced", "r", TaintPlaintext | TaintKey}, // slice + append join kinds
		{"ranged", "q", TaintPlaintext},            // range over tainted value
	}
	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			f, fd := funcDeclNamed(t, pkg, tc.fn)
			eng := newTaintEngine(pkg, f, plainflowRules, true)
			eng.run(fd.Body, nil)
			obj := varObjNamed(pkg, fd, tc.v)
			if obj == nil {
				t.Fatalf("no variable %q in %s", tc.v, tc.fn)
			}
			if got := eng.vars[obj]; got != tc.want {
				t.Errorf("taint(%s.%s) = %v, want %v", tc.fn, tc.v, got, tc.want)
			}
		})
	}
}

// TestTaintSummaries checks the one-call-deep function abstractions:
// param-to-result flow, inherent result taint, and parameter sinks.
func TestTaintSummaries(t *testing.T) {
	pkg := loadTaintFixture(t)
	fnOf := func(name string) *types.Func {
		_, fd := funcDeclNamed(t, pkg, name)
		fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			t.Fatalf("no types.Func for %s", name)
		}
		return fn
	}

	sum := pkg.Module.taintSummary(fnOf("ident"), plainflowRules)
	if sum == nil || len(sum.flows) != 1 || len(sum.flows[0]) != 1 || sum.flows[0][0] != 0 {
		t.Errorf("ident summary flows = %+v, want param 0 -> result 0", sum)
	}

	sum = pkg.Module.taintSummary(fnOf("viaReturnHelper"), plainflowRules)
	if sum == nil || len(sum.resultTaint) != 1 || sum.resultTaint[0] != TaintPlaintext {
		t.Errorf("viaReturnHelper summary = %+v, want inherent plaintext result", sum)
	}

	sum = pkg.Module.taintSummary(fnOf("sink"), plainflowRules)
	if sum == nil || len(sum.paramSinks) != 1 || len(sum.paramSinks[0]) == 0 {
		t.Fatalf("sink summary = %+v, want param 0 reaching a sink", sum)
	}
	if ps := sum.paramSinks[0][0]; ps.bad&TaintPlaintext == 0 || ps.what != "raw device write" {
		t.Errorf("sink paramSink = %+v, want plaintext-bad raw device write", ps)
	}
}

// TestTaintSinkViaSummary checks end-to-end that a tainted argument is
// flagged at the call site of a helper whose body contains the sink — and
// that sanitizing the argument clears it.
func TestTaintSinkViaSummary(t *testing.T) {
	pkg := loadTaintFixture(t)

	f, fd := funcDeclNamed(t, pkg, "sinkHitFn")
	eng := newTaintEngine(pkg, f, plainflowRules, true)
	eng.run(fd.Body, nil)
	hits := eng.checkSinks(fd.Body)
	if len(hits) != 1 || hits[0].via != "sink" || hits[0].taint != TaintPlaintext {
		t.Errorf("sinkHitFn hits = %+v, want one plaintext hit via sink", hits)
	}

	f, fd = funcDeclNamed(t, pkg, "sinkCleanFn")
	eng = newTaintEngine(pkg, f, plainflowRules, true)
	eng.run(fd.Body, nil)
	if hits := eng.checkSinks(fd.Body); len(hits) != 0 {
		t.Errorf("sinkCleanFn hits = %+v, want none (argument sealed)", hits)
	}
}

// TestTaintCrossPackage builds a two-package throwaway module and asserts
// taint crosses the package boundary through summaries: a helper package's
// reader is the source, the root package's logger is the finding.
func TestTaintCrossPackage(t *testing.T) {
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module ironsafe\n\ngo 1.21\n",
		"internal/securestore/store.go": `package securestore

type Store struct{}

func (s *Store) ReadPage(id uint32) ([]byte, error) { return nil, nil }
`,
		"cmd/demo/main.go": `package main

import (
	"log"

	"ironsafe/internal/securestore"
)

func main() {
	var s securestore.Store
	p, _ := s.ReadPage(1)
	log.Printf("%x", p)
}
`,
	}
	for name, src := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := RunAnalyzers(pkg, []*Analyzer{Plainflow})
		if err != nil {
			t.Fatal(err)
		}
		findings = append(findings, fs...)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the cross-package log leak", findings)
	}
	if f := findings[0]; f.Analyzer != "plainflow" || filepath.Base(f.Pos.Filename) != "main.go" {
		t.Errorf("finding = %v, want plainflow in main.go", findings[0])
	}
}
