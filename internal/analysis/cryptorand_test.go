package analysis_test

import (
	"testing"

	"ironsafe/internal/analysis"
	"ironsafe/internal/analysis/analysistest"
)

func TestCryptorandCritical(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Cryptorand, "internal/tee/badrand")
}

func TestCryptorandNonCritical(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Cryptorand, "plainrand")
}

func TestCryptorandAllowDirective(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Cryptorand, "internal/tee/okrand")
}

func TestCryptorandAllowlistedPath(t *testing.T) {
	// internal/tpch is on the package allowlist (seeded deterministic
	// benchmark data), so its math/rand import reports nothing.
	analysistest.Run(t, "testdata", analysis.Cryptorand, "internal/tpch")
}
