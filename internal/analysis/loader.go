package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one directory's worth of parsed, non-test Go source.
type Package struct {
	// Name is the package clause name.
	Name string
	// Path is the module-relative package path ("" for the module root).
	Path string
	// Dir is the absolute directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
}

// ModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load resolves package patterns relative to the module rooted at root and
// parses each matched directory into a Package. Patterns follow the go tool:
// a path selects one directory; a path ending in "/..." selects the
// directory and everything below it. Directories named testdata or vendor,
// and hidden directories, are skipped, as are _test.go files — the suite
// checks shipped code, and tests legitimately use real time and test-only
// shortcuts.
func Load(root string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, pat)
		}
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("analysis: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q is not a directory", pat)
		}
		if !recursive {
			dirs[base] = true
			continue
		}
		err = filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			rel = ""
		}
		pkg, err := LoadDir(dir, filepath.ToSlash(rel))
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses the non-test Go files of a single directory into a Package
// with the given module-relative path. It returns (nil, nil) if the
// directory holds no non-test Go files.
func LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkg := &Package{Path: path, Dir: dir, Fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}
