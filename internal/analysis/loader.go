package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one directory's worth of parsed, type-checked Go source.
type Package struct {
	// Name is the package clause name.
	Name string
	// Path is the module-relative package path ("" for the module root).
	Path string
	// Dir is the absolute directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File

	// External marks an external test package (package foo_test) split out
	// of the same directory when tests are loaded.
	External bool

	// Types and TypesInfo are the go/types results for the package. The
	// checker is tolerant: both are non-nil after loading even when
	// TypeErrors is non-empty, and analyzers must treat missing or invalid
	// type information as "unknown", never as an error.
	Types      *types.Package
	TypesInfo  *types.Info
	TypeErrors []error

	// Module links back to the load this package belongs to, giving
	// analyzers access to sibling packages and cross-package summaries.
	Module *Module
}

// LoadConfig tunes Load/LoadDir behaviour.
type LoadConfig struct {
	// IncludeTests parses _test.go files too. In-package test files join
	// the package's file list; external test files (package foo_test)
	// become a separate Package with External set. The invariant suite
	// then applies to test code as well (individual analyzers may still
	// exempt test files where real time or test-only shortcuts are
	// legitimate).
	IncludeTests bool
}

// ModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load resolves package patterns relative to the module rooted at root,
// parses each matched directory into a Package, and runs the go/types
// checker over all of them. Patterns follow the go tool: a path selects one
// directory; a path ending in "/..." selects the directory and everything
// below it. Directories named testdata or vendor, and hidden directories,
// are skipped, as are _test.go files — use LoadWith to include tests.
func Load(root string, patterns []string) ([]*Package, error) {
	return LoadWith(root, patterns, LoadConfig{})
}

// LoadWith is Load with explicit configuration.
func LoadWith(root string, patterns []string, cfg LoadConfig) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, pat)
		}
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("analysis: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q is not a directory", pat)
		}
		if !recursive {
			dirs[base] = true
			continue
		}
		err = filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	mod := newModule(root)
	var pkgs []*Package
	for _, dir := range sorted {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			rel = ""
		}
		loaded, err := loadDirWith(dir, filepath.ToSlash(rel), cfg)
		if err != nil {
			return nil, err
		}
		for _, pkg := range loaded {
			pkg.Module = mod
			key := pkg.Path
			if pkg.External {
				key += " [test]"
			}
			mod.pkgs[key] = pkg
			pkgs = append(pkgs, pkg)
		}
	}
	for _, pkg := range pkgs {
		mod.check(pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the non-test Go files of a single
// directory into a Package with the given module-relative path, outside any
// module (internal imports resolve to placeholders). It returns (nil, nil)
// if the directory holds no non-test Go files.
func LoadDir(dir, path string) (*Package, error) {
	pkgs, err := LoadDirWith(dir, path, LoadConfig{})
	if err != nil || len(pkgs) == 0 {
		return nil, err
	}
	return pkgs[0], nil
}

// LoadDirWith is LoadDir with explicit configuration; with IncludeTests it
// can return two packages (the package and its external test package).
func LoadDirWith(dir, path string, cfg LoadConfig) ([]*Package, error) {
	loaded, err := loadDirWith(dir, path, cfg)
	if err != nil {
		return nil, err
	}
	mod := newModule("")
	for _, pkg := range loaded {
		pkg.Module = mod
		key := pkg.Path
		if pkg.External {
			key += " [test]"
		}
		mod.pkgs[key] = pkg
	}
	for _, pkg := range loaded {
		mod.check(pkg)
	}
	return loaded, nil
}

// loadDirWith parses one directory without type-checking. Build-constrained
// files (//go:build tags, GOOS/GOARCH file name suffixes, "ignore" tags) are
// matched against the host context exactly as the go tool would, so a
// dissatisfied constraint excludes the file here too.
func loadDirWith(dir, path string, cfg LoadConfig) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Fset: sharedFset}
	ext := &Package{Path: path, Dir: dir, Fset: sharedFset, External: true}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !cfg.IncludeTests {
			continue
		}
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			continue
		}
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		target := pkg
		if isTest && strings.HasSuffix(f.Name.Name, "_test") {
			target = ext
		}
		if target.Name == "" {
			target.Name = f.Name.Name
		}
		target.Files = append(target.Files, f)
	}
	var out []*Package
	if len(pkg.Files) > 0 {
		out = append(out, pkg)
	}
	if len(ext.Files) > 0 {
		out = append(out, ext)
	}
	return out, nil
}
