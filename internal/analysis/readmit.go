package analysis

import (
	"go/ast"
	"strings"
)

// readmitExemptPrefixes is where the health tracker itself lives: its own
// package may manipulate per-node state freely — the invariant governs who
// may CALL readmission back into the cluster.
var readmitExemptPrefixes = []string{"internal/resilience"}

// Readmit flags membership readmission performed outside the attested
// protocol. A quarantined node rejoins the offload candidate set only
// through ReattestStorage — integrity sweep, fresh attestation, epoch
// handoff — and that one site pairs the down-set removal with the health
// tracker's MarkUp under the membership lock. Any other `delete(x.down, id)`
// or `.MarkUp(id)` is a half-admission: a node serving queries without
// having proven its store matches the RPMB anchor, or a health record
// resurrected while the membership map still fences the node. The sanctioned
// pair carries //ironsafe:allow readmit directives. Test files are exempt:
// tests deliberately drive nodes through broken admission orders.
var Readmit = &Analyzer{
	Name: "readmit",
	Doc:  "flag down-set removals and health MarkUp calls outside the attested readmission protocol",
	Run:  runReadmit,
}

func runReadmit(pass *Pass) error {
	if pathInPrefixes(pass.Path, readmitExemptPrefixes) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "delete" && len(call.Args) == 2 {
					if sel, ok := call.Args[0].(*ast.SelectorExpr); ok && sel.Sel.Name == "down" {
						pass.Reportf(call.Pos(),
							"down-set removal readmits a node without attestation; route readmission through ReattestStorage (or annotate the sanctioned site with %s readmit)",
							DirectivePrefix)
					}
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "MarkUp" {
					pass.Reportf(call.Pos(),
						"health MarkUp readmits a node without attestation; route readmission through ReattestStorage (or annotate the sanctioned site with %s readmit)",
						DirectivePrefix)
				}
			}
			return true
		})
	}
	return nil
}
