package ctl

import (
	"errors"
	"net"
	"sync"
	"testing"
)

func startServer(t *testing.T, psk []byte) (string, *Server) {
	t.Helper()
	srv := NewServer(psk)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(ln)
	return ln.Addr().String(), srv
}

type echoReq struct {
	Msg string `json:"msg"`
}

func TestCallRoundTrip(t *testing.T) {
	addr, srv := startServer(t, []byte("psk"))
	srv.Handle("echo", func(req []byte) (any, error) {
		return map[string]string{"got": string(req)}, nil
	})
	c, err := Dial(addr, []byte("psk"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp map[string]string
	if err := c.Call("echo", echoReq{Msg: "hi"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp["got"] != `{"msg":"hi"}` {
		t.Errorf("resp = %v", resp)
	}
}

func TestHandlerError(t *testing.T) {
	addr, srv := startServer(t, []byte("psk"))
	srv.Handle("boom", func([]byte) (any, error) {
		return nil, errors.New("kaput")
	})
	c, err := Dial(addr, []byte("psk"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("boom", nil, nil)
	if err == nil || !contains(err.Error(), "kaput") {
		t.Errorf("err = %v", err)
	}
	// The connection survives an error and serves the next call.
	srv.Handle("ok", func([]byte) (any, error) { return 1, nil })
	var n int
	if err := c.Call("ok", nil, &n); err != nil || n != 1 {
		t.Errorf("post-error call: %v, %d", err, n)
	}
}

func TestUnknownCommand(t *testing.T) {
	addr, _ := startServer(t, []byte("psk"))
	c, err := Dial(addr, []byte("psk"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("nope", nil, nil); err == nil {
		t.Error("unknown command accepted")
	}
}

func TestWrongPSKRejected(t *testing.T) {
	addr, _ := startServer(t, []byte("right"))
	if _, err := Dial(addr, []byte("wrong")); err == nil {
		t.Error("wrong psk connected")
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, srv := startServer(t, []byte("psk"))
	srv.Handle("inc", func(req []byte) (any, error) {
		return len(req), nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, []byte("psk"))
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				var n int
				if err := c.Call("inc", echoReq{Msg: "x"}, &n); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
