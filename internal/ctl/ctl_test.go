package ctl

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ironsafe/internal/resilience"
)

func startServer(t *testing.T, psk []byte) (string, *Server) {
	return startServerWith(t, psk, nil)
}

// startServerWith configures the server BEFORE the accept loop starts, so
// admission knobs are never mutated under a running Serve.
func startServerWith(t *testing.T, psk []byte, configure func(*Server)) (string, *Server) {
	t.Helper()
	srv := NewServer(psk)
	if configure != nil {
		configure(srv)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(ln)
	return ln.Addr().String(), srv
}

type echoReq struct {
	Msg string `json:"msg"`
}

func TestCallRoundTrip(t *testing.T) {
	addr, srv := startServer(t, []byte("psk"))
	srv.Handle("echo", func(req []byte) (any, error) {
		return map[string]string{"got": string(req)}, nil
	})
	c, err := Dial(addr, []byte("psk"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp map[string]string
	if err := c.Call("echo", echoReq{Msg: "hi"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp["got"] != `{"msg":"hi"}` {
		t.Errorf("resp = %v", resp)
	}
}

func TestHandlerError(t *testing.T) {
	addr, srv := startServer(t, []byte("psk"))
	srv.Handle("boom", func([]byte) (any, error) {
		return nil, errors.New("kaput")
	})
	c, err := Dial(addr, []byte("psk"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("boom", nil, nil)
	if err == nil || !contains(err.Error(), "kaput") {
		t.Errorf("err = %v", err)
	}
	// The connection survives an error and serves the next call.
	srv.Handle("ok", func([]byte) (any, error) { return 1, nil })
	var n int
	if err := c.Call("ok", nil, &n); err != nil || n != 1 {
		t.Errorf("post-error call: %v, %d", err, n)
	}
}

func TestUnknownCommand(t *testing.T) {
	addr, _ := startServer(t, []byte("psk"))
	c, err := Dial(addr, []byte("psk"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("nope", nil, nil); err == nil {
		t.Error("unknown command accepted")
	}
}

func TestWrongPSKRejected(t *testing.T) {
	addr, _ := startServer(t, []byte("right"))
	if _, err := Dial(addr, []byte("wrong")); err == nil {
		t.Error("wrong psk connected")
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, srv := startServer(t, []byte("psk"))
	srv.Handle("inc", func(req []byte) (any, error) {
		return len(req), nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, []byte("psk"))
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				var n int
				if err := c.Call("inc", echoReq{Msg: "x"}, &n); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestOverloadRefusalIsTyped(t *testing.T) {
	addr, srv := startServerWith(t, []byte("psk"), func(s *Server) {
		s.MaxConns = 1
		s.RetryAfter = 250 * time.Millisecond
	})
	srv.Handle("ping", func([]byte) (any, error) { return 1, nil })

	hold, err := Dial(addr, []byte("psk"))
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()

	// No queue configured: saturation refuses immediately, with the typed
	// banner instead of a silent close. A single-attempt dial observes the
	// refusal directly (multi-attempt dials retry through it by design).
	_, err = DialResilient(addr, []byte("psk"), resilience.Config{DialAttempts: 1}.WithDefaults())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter != 250*time.Millisecond {
		t.Fatalf("err = %v, want advertised 250ms retry-after", err)
	}
	if _, _, shed := srv.Stats(); shed != 1 {
		t.Errorf("shed = %d, want 1", shed)
	}
	// The held connection still serves.
	var n int
	if err := hold.Call("ping", nil, &n); err != nil || n != 1 {
		t.Errorf("held connection broken: %v", err)
	}
}

func TestQueueAdmitsWhenSlotFrees(t *testing.T) {
	addr, srv := startServerWith(t, []byte("psk"), func(s *Server) {
		s.MaxConns = 1
		s.MaxQueue = 1
		s.QueueWait = 5 * time.Second
	})
	srv.Handle("ping", func([]byte) (any, error) { return 1, nil })

	hold, err := Dial(addr, []byte("psk"))
	if err != nil {
		t.Fatal(err)
	}

	type dialOut struct {
		c   *Client
		err error
	}
	ch := make(chan dialOut, 1)
	go func() {
		c, err := Dial(addr, []byte("psk"))
		ch <- dialOut{c, err}
	}()
	// Wait until the second connection is actually queued, then free the slot.
	waitFor(t, func() bool { _, q, _ := srv.Stats(); return q == 1 })

	// A third connection finds the queue full and is refused.
	if _, err := Dial(addr, []byte("psk")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full dial: err = %v, want ErrOverloaded", err)
	}

	hold.Close()
	out := <-ch
	if out.err != nil {
		t.Fatalf("queued dial should be admitted once the slot frees: %v", out.err)
	}
	defer out.c.Close()
	var n int
	if err := out.c.Call("ping", nil, &n); err != nil || n != 1 {
		t.Errorf("admitted-from-queue connection broken: %v", err)
	}
}

func TestQueueWaitExpiryRefusesTyped(t *testing.T) {
	addr, srv := startServerWith(t, []byte("psk"), func(s *Server) {
		s.MaxConns = 1
		s.MaxQueue = 1
		s.QueueWait = 30 * time.Millisecond
	})

	hold, err := Dial(addr, []byte("psk"))
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	if _, err := DialResilient(addr, []byte("psk"), resilience.Config{DialAttempts: 1}.WithDefaults()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expired queue wait: err = %v, want ErrOverloaded", err)
	}
	if _, q, shed := srv.Stats(); q != 0 || shed != 1 {
		t.Errorf("stats after expiry: queued=%d shed=%d, want 0, 1", q, shed)
	}
}

func TestPressureTransitions(t *testing.T) {
	var mu sync.Mutex
	var transitions []bool
	addr, _ := startServerWith(t, []byte("psk"), func(s *Server) {
		s.MaxConns = 1
		s.Pressure = func(on bool) {
			mu.Lock()
			transitions = append(transitions, on)
			mu.Unlock()
		}
	})

	c, err := Dial(addr, []byte("psk"))
	if err != nil {
		t.Fatal(err)
	}
	// One connection saturates MaxConns=1: pressure on.
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(transitions) == 1 && transitions[0]
	})
	c.Close()
	// Slot drains: pressure off.
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(transitions) == 2 && !transitions[1]
	})
}

// waitFor polls cond until it holds or the watchdog expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within watchdog")
		}
		time.Sleep(time.Millisecond)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
