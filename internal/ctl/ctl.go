// Package ctl is the control-plane RPC layer the distributed binaries
// (ironsafe-monitor, ironsafe-host, ironsafe-storage, ironsafe-client) use:
// JSON request/response frames over the session-key-bound secure transport,
// authenticated with a deployment provisioning key (the stand-in for the
// out-of-band provisioning a production rollout would use).
package ctl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ironsafe/internal/resilience"
	"ironsafe/internal/transport"
)

// Handler serves one command.
type Handler func(req []byte) (any, error)

// Server dispatches control commands.
type Server struct {
	psk      []byte
	mu       sync.RWMutex
	handlers map[string]Handler

	// Logf, when set, receives diagnostics the accept/dispatch loop would
	// otherwise have to swallow: failed handshakes, panicking handlers,
	// shed connections. Nil discards them.
	Logf func(format string, args ...any)

	// MaxConns bounds concurrently served connections; excess connections
	// are closed immediately (load shedding) rather than queued without
	// bound. Zero means unlimited.
	MaxConns int

	// HandshakeTimeout bounds the secure-transport handshake per accepted
	// connection so a silent client cannot pin a serving goroutine forever.
	// Zero disables the bound.
	HandshakeTimeout time.Duration

	// AcceptBackoff is the pause after a transient Accept error (e.g.
	// EMFILE) before retrying, preventing a hot error loop. Sleep is the
	// injectable pacer for it; nil skips the pause (tests), and binaries
	// should set resilience.RealSleep.
	AcceptBackoff time.Duration
	Sleep         func(time.Duration)

	semOnce sync.Once
	sem     chan struct{}
}

// NewServer creates a control server bound to the provisioning key.
func NewServer(psk []byte) *Server {
	return &Server{psk: psk, handlers: map[string]Handler{}}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Handle registers a command handler.
func (s *Server) Handle(cmd string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[cmd] = h
}

// acquire reserves a connection slot, reporting false when the server is at
// MaxConns and the connection should be shed.
func (s *Server) acquire() bool {
	if s.MaxConns <= 0 {
		return true
	}
	s.semOnce.Do(func() { s.sem = make(chan struct{}, s.MaxConns) })
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	if s.MaxConns > 0 {
		<-s.sem
	}
}

// Serve accepts control connections until the listener closes. Transient
// accept errors back off and retry; only a dead listener ends the loop.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if isTransient(err) {
				s.logf("ctl: transient accept error, backing off: %v", err)
				if s.Sleep != nil && s.AcceptBackoff > 0 {
					s.Sleep(s.AcceptBackoff)
				}
				continue
			}
			return err
		}
		if !s.acquire() {
			s.logf("ctl: shedding connection from %v: at MaxConns=%d", conn.RemoteAddr(), s.MaxConns)
			conn.Close()
			continue
		}
		go func() {
			defer s.release()
			s.handleConn(conn)
		}()
	}
}

// isTransient reports whether an accept error is worth retrying.
func isTransient(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	if s.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Now().Add(s.HandshakeTimeout)) //ironsafe:allow wallclock -- bounding the handshake against silent clients
	}
	sc, err := transport.Server(conn, s.psk, nil)
	if err != nil {
		// A failed handshake is a signal — misprovisioned peer, replayed
		// session key, or active attack — never silently discard it.
		s.logf("ctl: handshake with %v failed: %v", conn.RemoteAddr(), err)
		return
	}
	if s.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	defer sc.Close()
	for {
		cmd, payload, err := sc.Recv()
		if err != nil {
			return
		}
		s.mu.RLock()
		h, ok := s.handlers[cmd]
		s.mu.RUnlock()
		if !ok {
			sc.Send("error", []byte("unknown command "+cmd))
			continue
		}
		out, err := s.dispatch(cmd, h, payload)
		if err != nil {
			sc.Send("error", []byte(err.Error()))
			continue
		}
		blob, err := json.Marshal(out)
		if err != nil {
			sc.Send("error", []byte(err.Error()))
			continue
		}
		sc.Send("ok", blob)
	}
}

// dispatch runs a handler, converting a panic into an error response so one
// bad request cannot take down the control plane.
func (s *Server) dispatch(cmd string, h Handler, payload []byte) (out any, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("ctl: handler %q panicked: %v", cmd, r)
			err = fmt.Errorf("ctl: internal error handling %q", cmd)
		}
	}()
	return h(payload)
}

// Client is one control connection.
type Client struct {
	mu sync.Mutex
	sc *transport.SecureConn
}

// Dial connects a control client with default resilience.
func Dial(addr string, psk []byte) (*Client, error) {
	return DialResilient(addr, psk, resilience.Config{Sleep: resilience.RealSleep}.WithDefaults())
}

// DialResilient connects a control client with retrying, deadline-bounded
// dial and handshake per the supplied resilience config.
func DialResilient(addr string, psk []byte, cfg resilience.Config) (*Client, error) {
	conn, err := resilience.DialTCP(addr, cfg)
	if err != nil {
		return nil, err
	}
	var sc *transport.SecureConn
	hsErr := resilience.WithConnDeadline(conn, cfg.HandshakeTimeout, func() error {
		var err error
		sc, err = transport.Client(conn, psk, nil)
		return err
	})
	if hsErr != nil {
		conn.Close()
		return nil, fmt.Errorf("ctl: handshake with %s: %w", addr, hsErr)
	}
	if cfg.IOTimeout > 0 {
		sc.SetIOTimeout(cfg.IOTimeout)
	}
	return &Client{sc: sc}, nil
}

// NewClient wraps an already-established secure channel (used by tests and
// in-process deployments).
func NewClient(sc *transport.SecureConn) *Client { return &Client{sc: sc} }

// Call sends one command and decodes the JSON response into resp (which may
// be nil to discard).
func (c *Client) Call(cmd string, req any, resp any) error {
	blob, err := json.Marshal(req)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.sc.Send(cmd, blob); err != nil {
		return err
	}
	typ, payload, err := c.sc.Recv()
	if err != nil {
		return err
	}
	if typ == "error" {
		return fmt.Errorf("ctl: %s: %s", cmd, payload)
	}
	if resp == nil {
		return nil
	}
	return json.Unmarshal(payload, resp)
}

// Close closes the connection.
func (c *Client) Close() error { return c.sc.Close() }
