// Package ctl is the control-plane RPC layer the distributed binaries
// (ironsafe-monitor, ironsafe-host, ironsafe-storage, ironsafe-client) use:
// JSON request/response frames over the session-key-bound secure transport,
// authenticated with a deployment provisioning key (the stand-in for the
// out-of-band provisioning a production rollout would use).
package ctl

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"ironsafe/internal/transport"
)

// Handler serves one command.
type Handler func(req []byte) (any, error)

// Server dispatches control commands.
type Server struct {
	psk      []byte
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewServer creates a control server bound to the provisioning key.
func NewServer(psk []byte) *Server {
	return &Server{psk: psk, handlers: map[string]Handler{}}
}

// Handle registers a command handler.
func (s *Server) Handle(cmd string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[cmd] = h
}

// Serve accepts control connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	sc, err := transport.Server(conn, s.psk, nil)
	if err != nil {
		return
	}
	defer sc.Close()
	for {
		cmd, payload, err := sc.Recv()
		if err != nil {
			return
		}
		s.mu.RLock()
		h, ok := s.handlers[cmd]
		s.mu.RUnlock()
		if !ok {
			sc.Send("error", []byte("unknown command "+cmd))
			continue
		}
		out, err := h(payload)
		if err != nil {
			sc.Send("error", []byte(err.Error()))
			continue
		}
		blob, err := json.Marshal(out)
		if err != nil {
			sc.Send("error", []byte(err.Error()))
			continue
		}
		sc.Send("ok", blob)
	}
}

// Client is one control connection.
type Client struct {
	mu sync.Mutex
	sc *transport.SecureConn
}

// Dial connects a control client.
func Dial(addr string, psk []byte) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc, err := transport.Client(conn, psk, nil)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &Client{sc: sc}, nil
}

// Call sends one command and decodes the JSON response into resp (which may
// be nil to discard).
func (c *Client) Call(cmd string, req any, resp any) error {
	blob, err := json.Marshal(req)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.sc.Send(cmd, blob); err != nil {
		return err
	}
	typ, payload, err := c.sc.Recv()
	if err != nil {
		return err
	}
	if typ == "error" {
		return fmt.Errorf("ctl: %s: %s", cmd, payload)
	}
	if resp == nil {
		return nil
	}
	return json.Unmarshal(payload, resp)
}

// Close closes the connection.
func (c *Client) Close() error { return c.sc.Close() }
