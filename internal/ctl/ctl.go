// Package ctl is the control-plane RPC layer the distributed binaries
// (ironsafe-monitor, ironsafe-host, ironsafe-storage, ironsafe-client) use:
// JSON request/response frames over the session-key-bound secure transport,
// authenticated with a deployment provisioning key (the stand-in for the
// out-of-band provisioning a production rollout would use).
package ctl

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ironsafe/internal/resilience"
	"ironsafe/internal/transport"
)

// Handler serves one command.
type Handler func(req []byte) (any, error)

// ErrOverloaded reports that the control server refused the connection with
// an overload response (typed admission control, not a silent close): the
// client should back off for the advertised retry-after and try again.
var ErrOverloaded = errors.New("ctl: server overloaded")

// MaxBannerRetryAfter caps the retry-after a client will honor from an
// overload banner. The banner is plaintext and pre-handshake — the one
// protocol unit a man-in-the-middle can forge without key material — so its
// retry-after is a *hint*, never an authenticated instruction: an adversary
// advertising a huge backoff can delay a client by at most this much per
// attempt, not deny it.
const MaxBannerRetryAfter = 2 * time.Second

// OverloadedError carries the server's advertised retry-after alongside
// ErrOverloaded.
type OverloadedError struct {
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("ctl: server overloaded, retry after %v", e.RetryAfter)
}

// Unwrap ties the typed response to ErrOverloaded.
func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// Admission banner: one plaintext byte the server sends on every accepted
// connection BEFORE the secure handshake, so an overloaded server can refuse
// cheaply — without spending a key exchange on a connection it is about to
// drop — and the client still learns why it was refused (a silent close is
// indistinguishable from a network fault and provokes immediate retries,
// the exact wrong response to overload).
const (
	bannerProceed    = 0x00
	bannerOverloaded = 0x01 // followed by a 4-byte LE retry-after in ms, then close
)

// Server dispatches control commands.
type Server struct {
	psk      []byte
	mu       sync.RWMutex
	handlers map[string]Handler

	// Logf, when set, receives diagnostics the accept/dispatch loop would
	// otherwise have to swallow: failed handshakes, panicking handlers,
	// shed connections. Nil discards them.
	Logf func(format string, args ...any)

	// MaxConns bounds concurrently served connections. Excess connections
	// enter the bounded admission queue (MaxQueue) when there is room, and
	// are otherwise refused with a typed overload banner carrying a
	// retry-after — never silently closed. Zero means unlimited.
	MaxConns int

	// MaxQueue bounds how many connections may wait for a serving slot when
	// the server is at MaxConns. Zero disables queueing: saturation refuses
	// immediately.
	MaxQueue int

	// QueueWait bounds how long a queued connection waits for a slot before
	// it is refused with the overload banner. Zero means 1s; negative waits
	// without bound (the client's own dial deadline still applies).
	QueueWait time.Duration

	// RetryAfter is the backoff the overload banner advertises to refused
	// clients. Zero means 1s.
	RetryAfter time.Duration

	// Pressure, when set, is notified on overload-pressure transitions:
	// true when the server saturates (every slot busy, or connections
	// queued), false when the pressure drains. Binaries wire this to
	// Cluster.SetBrownOut so optional load — hedged offloads first — sheds
	// while the control plane is saturated.
	Pressure func(on bool)

	// HandshakeTimeout bounds the secure-transport handshake per accepted
	// connection so a silent client cannot pin a serving goroutine forever.
	// Zero disables the bound.
	HandshakeTimeout time.Duration

	// AcceptBackoff is the pause after a transient Accept error (e.g.
	// EMFILE) before retrying, preventing a hot error loop. Sleep is the
	// injectable pacer for it; nil skips the pause (tests), and binaries
	// should set resilience.RealSleep.
	AcceptBackoff time.Duration
	Sleep         func(time.Duration)

	semOnce sync.Once
	sem     chan struct{}

	statMu   sync.Mutex
	active   int
	queued   int
	shed     int
	pressure bool
}

// NewServer creates a control server bound to the provisioning key.
func NewServer(psk []byte) *Server {
	return &Server{psk: psk, handlers: map[string]Handler{}}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Handle registers a command handler.
func (s *Server) Handle(cmd string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[cmd] = h
}

// Stats reports the admission state: connections being served, connections
// waiting in the admission queue, and connections refused with the overload
// banner since the server started.
func (s *Server) Stats() (active, queued, shed int) {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.active, s.queued, s.shed
}

// adjust applies one accounting delta under the stats lock and fires the
// Pressure callback (outside the lock) on overload-pressure transitions.
func (s *Server) adjust(dActive, dQueued, dShed int) {
	s.statMu.Lock()
	fire, on, cb := s.adjustLocked(dActive, dQueued, dShed)
	s.statMu.Unlock()
	if fire && cb != nil {
		cb(on)
	}
}

// adjustLocked applies the delta and recomputes overload pressure: any
// connection queued, or every serving slot busy. Caller holds statMu.
func (s *Server) adjustLocked(dActive, dQueued, dShed int) (fire, on bool, cb func(bool)) {
	s.active += dActive
	s.queued += dQueued
	s.shed += dShed
	on = s.queued > 0 || (s.MaxConns > 0 && s.active >= s.MaxConns)
	fire = on != s.pressure
	s.pressure = on
	return fire, on, s.Pressure
}

// tryEnqueue atomically claims a queue slot if the bounded queue has room.
func (s *Server) tryEnqueue() bool {
	s.statMu.Lock()
	if s.MaxQueue <= 0 || s.queued >= s.MaxQueue {
		s.statMu.Unlock()
		return false
	}
	fire, on, cb := s.adjustLocked(0, 1, 0)
	s.statMu.Unlock()
	if fire && cb != nil {
		cb(on)
	}
	return true
}

func (s *Server) queueWait() time.Duration {
	switch {
	case s.QueueWait > 0:
		return s.QueueWait
	case s.QueueWait < 0:
		return 0 // unbounded
	default:
		return time.Second
	}
}

func (s *Server) retryAfter() time.Duration {
	if s.RetryAfter > 0 {
		return s.RetryAfter
	}
	return time.Second
}

// refuse sends the overload banner — 0x01 plus the 4-byte LE retry-after in
// milliseconds — and closes the connection.
func (s *Server) refuse(conn net.Conn) {
	s.adjust(0, 0, 1)
	s.logf("ctl: shedding connection from %v: at MaxConns=%d", conn.RemoteAddr(), s.MaxConns)
	frame := make([]byte, 5)
	frame[0] = bannerOverloaded
	ms := s.retryAfter().Milliseconds()
	if ms < 1 {
		ms = 1
	}
	binary.LittleEndian.PutUint32(frame[1:], uint32(ms))
	if s.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Now().Add(s.HandshakeTimeout)) //ironsafe:allow wallclock -- bounding the refusal write against a wedged peer
	}
	//ironsafe:allow rawnet -- plaintext pre-handshake overload banner, deadline-guarded by the SetDeadline above
	conn.Write(frame)
	conn.Close()
}

// proceed sends the admission banner and commits the slot accounting. On a
// dead connection the reserved slot (if any) is returned.
func (s *Server) proceed(conn net.Conn, slot bool) bool {
	s.adjust(1, 0, 0)
	//ironsafe:allow rawnet -- plaintext pre-handshake admission banner; the handshake deadline in handleConn bounds the connection right after
	if _, err := conn.Write([]byte{bannerProceed}); err != nil {
		s.adjust(-1, 0, 0)
		if slot {
			<-s.sem
		}
		conn.Close()
		return false
	}
	return true
}

// admit runs admission control for one accepted connection: immediate slot,
// bounded queue, or typed overload refusal. It reports whether the caller
// owns a serving slot and must release it.
func (s *Server) admit(conn net.Conn) bool {
	if s.MaxConns <= 0 {
		return s.proceed(conn, false)
	}
	s.semOnce.Do(func() { s.sem = make(chan struct{}, s.MaxConns) })
	select {
	case s.sem <- struct{}{}:
		return s.proceed(conn, true)
	default:
	}
	// At capacity: wait in the bounded queue if there is room.
	if !s.tryEnqueue() {
		s.refuse(conn)
		return false
	}
	var expired <-chan time.Time
	if wait := s.queueWait(); wait > 0 {
		expired = time.After(wait) //ironsafe:allow wallclock -- genuinely real-time bound on how long a queued control connection may wait
	}
	select {
	case s.sem <- struct{}{}:
		s.adjust(0, -1, 0)
		return s.proceed(conn, true)
	case <-expired:
		s.adjust(0, -1, 0)
		s.refuse(conn)
		return false
	}
}

func (s *Server) release() {
	if s.MaxConns > 0 {
		<-s.sem
	}
	s.adjust(-1, 0, 0)
}

// Serve accepts control connections until the listener closes. Transient
// accept errors back off and retry; only a dead listener ends the loop.
// Each connection passes admission control first: a serving slot when free,
// the bounded queue when saturated, and a typed overload refusal (banner +
// retry-after) when the queue is full or the wait expires.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if isTransient(err) {
				s.logf("ctl: transient accept error, backing off: %v", err)
				if s.Sleep != nil && s.AcceptBackoff > 0 {
					s.Sleep(s.AcceptBackoff)
				}
				continue
			}
			return err
		}
		go func() {
			if !s.admit(conn) {
				return
			}
			defer s.release()
			s.handleConn(conn)
		}()
	}
}

// isTransient reports whether an accept error is worth retrying.
func isTransient(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	if s.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Now().Add(s.HandshakeTimeout)) //ironsafe:allow wallclock -- bounding the handshake against silent clients
	}
	sc, err := transport.Server(conn, s.psk, nil)
	if err != nil {
		// A failed handshake is a signal — misprovisioned peer, replayed
		// session key, or active attack — never silently discard it.
		s.logf("ctl: handshake with %v failed: %v", conn.RemoteAddr(), err)
		return
	}
	if s.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	defer sc.Close()
	for {
		cmd, payload, err := sc.Recv()
		if err != nil {
			return
		}
		s.mu.RLock()
		h, ok := s.handlers[cmd]
		s.mu.RUnlock()
		if !ok {
			sc.Send("error", []byte("unknown command "+cmd))
			continue
		}
		out, err := s.dispatch(cmd, h, payload)
		if err != nil {
			sc.Send("error", []byte(err.Error()))
			continue
		}
		blob, err := json.Marshal(out)
		if err != nil {
			sc.Send("error", []byte(err.Error()))
			continue
		}
		sc.Send("ok", blob)
	}
}

// dispatch runs a handler, converting a panic into an error response so one
// bad request cannot take down the control plane.
func (s *Server) dispatch(cmd string, h Handler, payload []byte) (out any, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("ctl: handler %q panicked: %v", cmd, r)
			err = fmt.Errorf("ctl: internal error handling %q", cmd)
		}
	}()
	return h(payload)
}

// Client is one control connection.
type Client struct {
	mu sync.Mutex
	sc *transport.SecureConn
	// broken poisons the client after a failed Send/Recv exchange: the
	// sequence-bound channel is desynced past repair (a later Recv could
	// only consume a frame belonging to the failed exchange), so every
	// subsequent Call fails fast instead of blocking on stale state.
	broken error
}

// Dial connects a control client with default resilience.
func Dial(addr string, psk []byte) (*Client, error) {
	return DialResilient(addr, psk, resilience.Config{Sleep: resilience.RealSleep}.WithDefaults())
}

// DialResilient connects a control client with retrying, deadline-bounded
// dial and handshake per the supplied resilience config. The server's
// admission banner is read first. An overload refusal is a *hint*, not a
// verdict: the client backs off for the advertised retry-after — capped at
// MaxBannerRetryAfter, since the banner is forgeable plaintext — and
// re-dials, up to cfg.DialAttempts connections. Only after exhausting the
// attempts does the typed *OverloadedError (errors.Is ErrOverloaded)
// surface, so a MITM forging overload banners can delay a client, never
// terminally deny it.
func DialResilient(addr string, psk []byte, cfg resilience.Config) (*Client, error) {
	attempts := cfg.DialAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastOverload error
	for i := 0; i < attempts; i++ {
		conn, err := resilience.DialTCP(addr, cfg)
		if err != nil {
			return nil, err
		}
		c, err := clientConn(conn, psk, cfg)
		if err == nil {
			return c, nil
		}
		conn.Close()
		var oe *OverloadedError
		if !errors.As(err, &oe) {
			return nil, fmt.Errorf("ctl: handshake with %s: %w", addr, err)
		}
		lastOverload = err
		if i+1 < attempts && cfg.Sleep != nil {
			cfg.Sleep(capRetryAfter(oe.RetryAfter))
		}
	}
	return nil, lastOverload
}

// ClientConn runs the control-plane client side — admission banner, secure
// handshake, I/O timeout — over an already-established connection. It is
// DialResilient minus the dialing, for deployments that bring their own
// connections (in-process pipes, custom tunnels). An overload refusal
// surfaces as the typed *OverloadedError with its retry-after capped at
// MaxBannerRetryAfter; the caller owns re-dialing.
func ClientConn(conn net.Conn, psk []byte, cfg resilience.Config) (*Client, error) {
	return clientConn(conn, psk, cfg)
}

func clientConn(conn net.Conn, psk []byte, cfg resilience.Config) (*Client, error) {
	var sc *transport.SecureConn
	hsErr := resilience.WithConnDeadline(conn, cfg.HandshakeTimeout, func() error {
		if err := readBanner(conn); err != nil {
			return err
		}
		var err error
		sc, err = transport.Client(conn, psk, nil)
		return err
	})
	if hsErr != nil {
		return nil, hsErr
	}
	if cfg.IOTimeout > 0 {
		sc.SetIOTimeout(cfg.IOTimeout)
	}
	return &Client{sc: sc}, nil
}

// capRetryAfter bounds an advertised (unauthenticated) retry-after to
// [1ms, MaxBannerRetryAfter].
func capRetryAfter(d time.Duration) time.Duration {
	if d > MaxBannerRetryAfter {
		return MaxBannerRetryAfter
	}
	if d < time.Millisecond {
		return time.Millisecond
	}
	return d
}

// readBanner consumes the server's plaintext admission banner. A proceed
// byte returns nil; an overload byte returns the typed refusal with its
// retry-after payload.
func readBanner(conn net.Conn) error {
	var b [1]byte
	if _, err := io.ReadFull(conn, b[:]); err != nil {
		return fmt.Errorf("ctl: reading admission banner: %w", err)
	}
	switch b[0] {
	case bannerProceed:
		return nil
	case bannerOverloaded:
		retry := time.Second
		var ra [4]byte
		if _, err := io.ReadFull(conn, ra[:]); err == nil {
			retry = time.Duration(binary.LittleEndian.Uint32(ra[:])) * time.Millisecond
		}
		// The banner is forgeable plaintext: its retry-after is advisory and
		// is never honored past MaxBannerRetryAfter.
		return &OverloadedError{RetryAfter: capRetryAfter(retry)}
	default:
		return fmt.Errorf("ctl: unexpected admission banner 0x%02x", b[0])
	}
}

// NewClient wraps an already-established secure channel (used by tests and
// in-process deployments).
func NewClient(sc *transport.SecureConn) *Client { return &Client{sc: sc} }

// Call sends one command and decodes the JSON response into resp (which may
// be nil to discard).
func (c *Client) Call(cmd string, req any, resp any) error {
	blob, err := json.Marshal(req)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return fmt.Errorf("ctl: connection poisoned by earlier exchange failure: %w", c.broken)
	}
	if err := c.sc.Send(cmd, blob); err != nil {
		c.broken = err
		return err
	}
	typ, payload, err := c.sc.Recv()
	if err != nil {
		c.broken = err
		return err
	}
	if typ == "error" {
		return fmt.Errorf("ctl: %s: %s", cmd, payload)
	}
	if resp == nil {
		return nil
	}
	return json.Unmarshal(payload, resp)
}

// Close closes the connection.
func (c *Client) Close() error { return c.sc.Close() }
