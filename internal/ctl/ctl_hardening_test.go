package ctl

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ironsafe/internal/resilience"
)

// logBuf collects Logf output for assertions.
type logBuf struct {
	mu    sync.Mutex
	lines []string
}

func (l *logBuf) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logBuf) contains(sub string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.lines {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

func TestHandshakeFailureIsLogged(t *testing.T) {
	var logs logBuf
	srv := NewServer([]byte("right"))
	srv.Logf = logs.logf
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(ln)

	if _, err := Dial(ln.Addr().String(), []byte("wrong")); err == nil {
		t.Fatal("wrong psk connected")
	}
	deadline := time.Now().Add(2 * time.Second) //ironsafe:allow wallclock -- test watchdog
	for !logs.contains("handshake") {
		if time.Now().After(deadline) { //ironsafe:allow wallclock -- test watchdog
			t.Fatal("failed handshake was not logged")
		}
		time.Sleep(5 * time.Millisecond) //ironsafe:allow wallclock -- polling log buffer
	}
}

func TestPanickingHandlerRecovered(t *testing.T) {
	var logs logBuf
	srv := NewServer([]byte("psk"))
	srv.Logf = logs.logf
	srv.Handle("explode", func([]byte) (any, error) { panic("boom") })
	srv.Handle("ok", func([]byte) (any, error) { return 42, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(ln)

	c, err := Dial(ln.Addr().String(), []byte("psk"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("explode", nil, nil); err == nil {
		t.Error("panicking handler reported success")
	}
	if !logs.contains("panicked") {
		t.Error("panic was not logged")
	}
	// The connection and server both survive the panic.
	var n int
	if err := c.Call("ok", nil, &n); err != nil || n != 42 {
		t.Errorf("post-panic call: %v, %d", err, n)
	}
}

func TestMaxConnsSheds(t *testing.T) {
	var logs logBuf
	srv := NewServer([]byte("psk"))
	srv.Logf = logs.logf
	srv.MaxConns = 1
	srv.Handle("ok", func([]byte) (any, error) { return 1, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(ln)

	first, err := Dial(ln.Addr().String(), []byte("psk"))
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()

	// The second connection must be shed: its handshake dies because the
	// server closes the socket without answering.
	cfg := resilience.Config{DialAttempts: 1, HandshakeTimeout: time.Second}.WithDefaults()
	if _, err := DialResilient(ln.Addr().String(), []byte("psk"), cfg); err == nil {
		t.Error("connection beyond MaxConns was served")
	}
	if !logs.contains("shedding") {
		t.Error("shed connection was not logged")
	}

	// Releasing the first slot readmits new clients.
	first.Close()
	deadline := time.Now().Add(2 * time.Second) //ironsafe:allow wallclock -- test watchdog
	for {
		c, err := Dial(ln.Addr().String(), []byte("psk"))
		if err == nil {
			var n int
			if err := c.Call("ok", nil, &n); err == nil && n == 1 {
				c.Close()
				return
			}
			c.Close()
		}
		if time.Now().After(deadline) { //ironsafe:allow wallclock -- test watchdog
			t.Fatal("slot was never released after Close")
		}
		time.Sleep(10 * time.Millisecond) //ironsafe:allow wallclock -- polling for slot release
	}
}

func TestDialResilientDeadPortTyped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	cfg := resilience.Config{DialAttempts: 2, DialTimeout: 200 * time.Millisecond}.WithDefaults()
	start := time.Now() //ironsafe:allow wallclock -- asserting fail-fast wall time
	_, err = DialResilient(addr, []byte("psk"), cfg)
	if err == nil {
		t.Fatal("dial to dead port succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second { //ironsafe:allow wallclock -- asserting fail-fast wall time
		t.Errorf("dial took %v, want fail-fast", elapsed)
	}
}
