package ctl

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"ironsafe/internal/resilience"
)

// forgedBanner is what a MITM without key material can fabricate: the
// plaintext overload refusal with a hostile (~49 day) retry-after.
func forgedBanner() []byte {
	frame := make([]byte, 5)
	frame[0] = bannerOverloaded
	binary.LittleEndian.PutUint32(frame[1:], 0xFFFFFFFF)
	return frame
}

type sleepLog struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (l *sleepLog) sleep(d time.Duration) {
	l.mu.Lock()
	l.sleeps = append(l.sleeps, d)
	l.mu.Unlock()
}

func (l *sleepLog) all() []time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]time.Duration(nil), l.sleeps...)
}

// TestForgedBannerIsBoundedHint dials through an adversary that forges an
// overload banner with a huge retry-after on every connection. The client
// must treat the unauthenticated hint as bounded — every backoff capped at
// MaxBannerRetryAfter — and, after its dial attempts, surface the typed
// retryable *OverloadedError, never honor the hostile delay.
func TestForgedBannerIsBoundedHint(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Write(forgedBanner())
			conn.Close()
		}
	}()

	var log sleepLog
	cfg := resilience.Config{DialAttempts: 3, Sleep: log.sleep}.WithDefaults()
	_, err = DialResilient(ln.Addr().String(), []byte("psk"), cfg)
	var oe *OverloadedError
	if !errors.As(err, &oe) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want typed *OverloadedError", err)
	}
	if oe.RetryAfter > MaxBannerRetryAfter {
		t.Fatalf("surfaced retry-after %v exceeds cap %v", oe.RetryAfter, MaxBannerRetryAfter)
	}
	sleeps := log.all()
	if len(sleeps) != 2 {
		t.Fatalf("backoffs = %v, want one between each of 3 attempts", sleeps)
	}
	for _, d := range sleeps {
		if d > MaxBannerRetryAfter || d <= 0 {
			t.Fatalf("backoff %v not bounded by (0, %v]", d, MaxBannerRetryAfter)
		}
	}
}

// TestForgedBannerDelaysNotDenies puts a forge-once MITM in front of a real
// server: the first connection gets a forged overload banner, later ones
// pass through. The dial must absorb the forgery — one bounded backoff — and
// land a working control session.
func TestForgedBannerDelaysNotDenies(t *testing.T) {
	addr, srv := startServer(t, []byte("psk"))
	srv.Handle("ping", func([]byte) (any, error) { return 1, nil })

	front, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { front.Close() })
	go func() {
		first := true
		for {
			conn, err := front.Accept()
			if err != nil {
				return
			}
			if first {
				first = false
				conn.Write(forgedBanner())
				conn.Close()
				continue
			}
			up, err := net.Dial("tcp", addr)
			if err != nil {
				conn.Close()
				continue
			}
			go func() { io.Copy(up, conn); up.Close() }()
			go func() { io.Copy(conn, up); conn.Close() }()
		}
	}()

	var log sleepLog
	cfg := resilience.Config{DialAttempts: 3, Sleep: log.sleep}.WithDefaults()
	c, err := DialResilient(front.Addr().String(), []byte("psk"), cfg)
	if err != nil {
		t.Fatalf("dial through forge-once adversary: %v", err)
	}
	defer c.Close()
	var n int
	if err := c.Call("ping", nil, &n); err != nil || n != 1 {
		t.Fatalf("call after absorbed forgery: %v, n=%d", err, n)
	}
	sleeps := log.all()
	if len(sleeps) != 1 || sleeps[0] > MaxBannerRetryAfter {
		t.Fatalf("backoffs = %v, want exactly one bounded backoff", sleeps)
	}
}

// TestClientConnRunsBannerAndHandshake exercises the bring-your-own-conn
// client path end to end against a real server.
func TestClientConnRunsBannerAndHandshake(t *testing.T) {
	addr, srv := startServer(t, []byte("psk"))
	srv.Handle("ping", func([]byte) (any, error) { return 7, nil })
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ClientConn(raw, []byte("psk"), resilience.Config{}.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var n int
	if err := c.Call("ping", nil, &n); err != nil || n != 7 {
		t.Fatalf("call = %v, n=%d", err, n)
	}
}
