package bench

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Text formatters printing each experiment the way the paper's figure/table
// reports it.

// PrintFig6 renders Figure 6 as text bars.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Figure 6: TPC-H speedup of CS execution (higher is better)")
	fmt.Fprintf(w, "%-6s %12s %12s %12s %12s %10s %10s\n",
		"query", "hons", "vcs", "hos", "scs", "hons/vcs", "hos/scs")
	for _, r := range rows {
		fmt.Fprintf(w, "q%-5d %12s %12s %12s %12s %9.2fx %9.2fx\n",
			r.Query, fmtDur(r.HonsTime), fmtDur(r.VcsTime), fmtDur(r.HosTime), fmtDur(r.ScsTime),
			r.NonSecureSpeedup, r.SecureSpeedup)
	}
	fmt.Fprintf(w, "average secure speedup (paper: 2.3x): %.2fx\n", AverageSecureSpeedup(rows))
}

// PrintFig7 renders Figure 7.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Figure 7: host<->storage IO reduction (higher is better)")
	fmt.Fprintf(w, "%-6s %15s %15s %10s\n", "query", "host-only pages", "shipped pages", "reduction")
	for _, r := range rows {
		fmt.Fprintf(w, "q%-5d %15d %15d %9.1fx\n", r.Query, r.HostOnlyPages, r.ShippedPages, r.Reduction)
	}
}

// PrintFig8 renders Figure 8.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "Figure 8: IronSafe cost breakdown (fractions of total)")
	fmt.Fprintf(w, "%-6s %8s %10s %8s %8s\n", "query", "ndp", "freshness", "decrypt", "other")
	for _, r := range rows {
		fmt.Fprintf(w, "q%-5d %7.1f%% %9.1f%% %7.1f%% %7.1f%%\n",
			r.Query, r.NDP*100, r.Freshness*100, r.Decrypt*100, r.Other*100)
	}
}

// PrintFig9a renders Figure 9a.
func PrintFig9a(w io.Writer, rows []Fig9aRow) {
	fmt.Fprintln(w, "Figure 9a: q1 latency vs input size (lower is better)")
	fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "sf", "hos", "scs", "sos")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8g %12s %12s %12s\n", r.ScaleFactor, fmtDur(r.Hos), fmtDur(r.Scs), fmtDur(r.Sos))
	}
}

// PrintFig9b renders Figure 9b.
func PrintFig9b(w io.Writer, rows []Fig9bRow) {
	fmt.Fprintln(w, "Figure 9b: q1 latency vs selectivity (lower is better)")
	fmt.Fprintf(w, "%-12s %12s %12s %12s\n", "selectivity", "hos", "scs", "sos")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d%% %12s %12s %12s\n", r.SelectivityPct, fmtDur(r.Hos), fmtDur(r.Scs), fmtDur(r.Sos))
	}
}

// PrintFig9c renders Figure 9c.
func PrintFig9c(w io.Writer, rows []Fig9cRow) {
	fmt.Fprintln(w, "Figure 9c: sos secure-storage overhead breakdown")
	fmt.Fprintf(w, "%-6s %10s %9s %11s\n", "query", "freshness", "decrypt", "processing")
	for _, r := range rows {
		fmt.Fprintf(w, "q%-5d %9.1f%% %8.1f%% %10.1f%%\n",
			r.Query, r.FreshnessFraction*100, r.DecryptFraction*100, r.ProcessingFraction*100)
	}
}

// PrintFig10 renders Figure 10.
func PrintFig10(w io.Writer, rows []Fig10Row, coreCounts []int) {
	fmt.Fprintln(w, "Figure 10: hos/scs speedup vs storage CPU count (higher is better)")
	fmt.Fprintf(w, "%-6s", "query")
	for _, c := range coreCounts {
		fmt.Fprintf(w, " %7d-cpu", c)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "q%-5d", r.Query)
		for _, c := range coreCounts {
			fmt.Fprintf(w, " %10.2fx", r.Speedups[c])
		}
		fmt.Fprintln(w)
	}
}

// PrintFig11 renders Figure 11.
func PrintFig11(w io.Writer, rows []Fig11Row, budgets []int64) {
	fmt.Fprintln(w, "Figure 11: offloaded-query speedup vs storage memory (vs smallest budget)")
	fmt.Fprintf(w, "%-6s", "query")
	for _, b := range budgets {
		fmt.Fprintf(w, " %9s", fmtBytes(b))
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "q%-5d", r.Query)
		for _, b := range budgets {
			fmt.Fprintf(w, " %8.2fx", r.Speedups[b])
		}
		fmt.Fprintln(w)
	}
}

// PrintFig12 renders Figure 12.
func PrintFig12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintln(w, "Figure 12: storage-side scalability (cumulative work, normalized; linear = ideal)")
	fmt.Fprintf(w, "%-10s %12s %8s\n", "instances", "cumulative", "ideal")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %11.2fx %7dx\n", r.Instances, r.CumulativeNormalized, r.Instances)
	}
}

// PrintTable3 renders Table 3.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: GDPR anti-pattern enforcement cost")
	fmt.Fprintf(w, "%-24s %12s %12s %9s\n", "anti-pattern", "non-secure", "ironsafe", "overhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %12s %12s %8.1fx\n", r.AntiPattern, fmtDur(r.NonSecure), fmtDur(r.IronSafe), r.Overhead)
	}
}

// PrintTable4 renders Table 4.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4: host and storage system attestation breakdown")
	fmt.Fprintf(w, "%-16s %-14s %10s\n", "component", "step", "time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-14s %10s\n", r.Component, r.Step, fmtDur(r.Time))
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMiB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKiB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// SortedBudgets returns budgets ascending (map iteration helper).
func SortedBudgets(m map[int64]float64) []int64 {
	var out []int64
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
