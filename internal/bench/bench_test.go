package bench

import (
	"bytes"
	"testing"

	"ironsafe"
)

// Small scale and query subset keep the harness tests quick; the full sweeps
// run through cmd/ironsafe-bench and the root benchmarks.
const testSF = 0.002

var testQueries = []int{1, 3, 6, 14}

func TestFig6ShapesHold(t *testing.T) {
	rows, err := Fig6(testSF, testQueries)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(testQueries) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Headline property: secure split beats secure host-only on average.
	avg := AverageSecureSpeedup(rows)
	if avg <= 1 {
		t.Errorf("average secure speedup = %.2fx, want > 1x", avg)
	}
	for _, r := range rows {
		if r.ScsTime <= 0 || r.HosTime <= 0 {
			t.Errorf("q%d: zero times %+v", r.Query, r)
		}
	}
	var buf bytes.Buffer
	PrintFig6(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty fig6 output")
	}
}

func TestFig7IOReduction(t *testing.T) {
	rows, err := Fig7(testSF, []int{6, 14})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Selective queries must move less data under CS than host-only.
		if r.Reduction <= 1 {
			t.Errorf("q%d reduction = %.2f, want > 1", r.Query, r.Reduction)
		}
	}
	var buf bytes.Buffer
	PrintFig7(&buf, rows)
}

func TestFig8BreakdownSumsToOne(t *testing.T) {
	rows, err := Fig8(testSF, []int{1, 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		sum := r.NDP + r.Freshness + r.Decrypt + r.Other
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("q%d fractions sum to %.3f", r.Query, sum)
		}
		if r.Freshness <= 0 {
			t.Errorf("q%d: no freshness cost in scs", r.Query)
		}
	}
	var buf bytes.Buffer
	PrintFig8(&buf, rows)
}

func TestFig9aScsWinsAndScales(t *testing.T) {
	rows, err := Fig9a([]float64{0.001, 0.002})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Scs >= r.Hos {
			t.Errorf("sf=%g: scs (%v) should beat hos (%v)", r.ScaleFactor, r.Scs, r.Hos)
		}
	}
	if rows[1].Scs <= rows[0].Scs {
		t.Errorf("scs time should grow with input: %v -> %v", rows[0].Scs, rows[1].Scs)
	}
	var buf bytes.Buffer
	PrintFig9a(&buf, rows)
}

func TestFig9bSelectivity(t *testing.T) {
	rows, err := Fig9b(testSF, []int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Scs >= r.Hos {
			t.Errorf("%d%%: scs (%v) should beat hos (%v)", r.SelectivityPct, r.Scs, r.Hos)
		}
	}
	var buf bytes.Buffer
	PrintFig9b(&buf, rows)
}

func TestFig9cFreshnessDominates(t *testing.T) {
	rows, err := Fig9c(testSF, []int{2, 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The paper reports freshness as the dominant secure-storage cost
		// (~70-80%); require it to at least dominate decryption.
		if r.FreshnessFraction <= r.DecryptFraction {
			t.Errorf("q%d: freshness %.2f <= decrypt %.2f", r.Query, r.FreshnessFraction, r.DecryptFraction)
		}
	}
	var buf bytes.Buffer
	PrintFig9c(&buf, rows)
}

func TestFig10MoreCoresHelp(t *testing.T) {
	cores := []int{1, 4, 16}
	rows, err := Fig10(testSF, []int{1, 6}, cores)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedups[16] < r.Speedups[1] {
			t.Errorf("q%d: 16-core speedup %.2f < 1-core %.2f", r.Query, r.Speedups[16], r.Speedups[1])
		}
	}
	var buf bytes.Buffer
	PrintFig10(&buf, rows, cores)
}

func TestFig11MoreMemoryHelps(t *testing.T) {
	budgets := []int64{8 << 10, 64 << 10, 1 << 20}
	rows, err := Fig11(testSF, []int{3, 9}, budgets)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedups[budgets[len(budgets)-1]] < r.Speedups[budgets[0]] {
			t.Errorf("q%d: more memory slower: %+v", r.Query, r.Speedups)
		}
	}
	var buf bytes.Buffer
	PrintFig11(&buf, rows, budgets)
}

func TestFig12NearLinear(t *testing.T) {
	rows, err := Fig12(0.001, []int{6}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		lo := float64(r.Instances) * 0.7
		hi := float64(r.Instances) * 1.3
		if r.CumulativeNormalized < lo || r.CumulativeNormalized > hi {
			t.Errorf("instances=%d: cumulative %.2f not near linear", r.Instances, r.CumulativeNormalized)
		}
	}
	var buf bytes.Buffer
	PrintFig12(&buf, rows)
}

func TestTable3OverheadsReasonable(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Overhead <= 1 {
			t.Errorf("%s: overhead %.2fx, want > 1x (security costs something)", r.AntiPattern, r.Overhead)
		}
		if r.Overhead > 25 {
			t.Errorf("%s: overhead %.2fx implausibly high", r.AntiPattern, r.Overhead)
		}
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
}

func TestTable4Breakdown(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	var total, sum int64
	for _, r := range rows {
		if r.Component == "Total" {
			total = int64(r.Time)
		} else {
			sum += int64(r.Time)
		}
	}
	if total != sum {
		t.Errorf("total %d != sum %d", total, sum)
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rows)
}

func TestTable2HasFiveConfigs(t *testing.T) {
	if len(Table2()) != 5 {
		t.Error("Table 2 should list five configurations")
	}
}

func TestDefaultQueriesMatchPaper(t *testing.T) {
	qs := DefaultQueries()
	if len(qs) != 16 {
		t.Errorf("evaluated queries = %d, want 16", len(qs))
	}
	_ = ironsafe.IronSafe
}
