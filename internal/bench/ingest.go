package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ironsafe"
	"ironsafe/internal/ingest"
)

// IngestResult is the streaming-ingest throughput record: how fast the
// durable write path acks under concurrency, and how well group commit
// amortizes the per-commit RPMB anchor. Unlike the query series, the
// latencies here are real elapsed time — an ack is a promise to a live
// client, so its cost is wall-clock by definition.
type IngestResult struct {
	Clients          int     `json:"clients"`
	Records          int     `json:"records"`
	WallMicros       float64 `json:"wall_micros"`
	RecordsPerSecond float64 `json:"records_per_second"`
	AckP50Micros     float64 `json:"ack_p50_micros"`
	AckP95Micros     float64 `json:"ack_p95_micros"`
	Batches          uint64  `json:"batches"`
	Coalesced        uint64  `json:"coalesced"`
	RPMBWrites       int64   `json:"rpmb_writes"`
	// BatchesPerRPMB pins the group-commit contract (one anchor per batch,
	// so ~1.0); RecordsPerRPMB is the amortization coalescing buys.
	BatchesPerRPMB float64 `json:"batches_per_rpmb_write"`
	RecordsPerRPMB float64 `json:"records_per_rpmb_write"`
}

// Ingest measures the durable-ingest pipeline: `clients` concurrent writers
// each stream `records` acked single-row INSERTs into a one-node IronSafe
// cluster, every record policy-authorized by the monitor and acked only
// after its group commit's journal write.
func Ingest(clients, records int) (*IngestResult, error) {
	c, err := ironsafe.NewCluster(ironsafe.Config{Mode: ironsafe.IronSafe})
	if err != nil {
		return nil, err
	}
	if err := c.SetAccessPolicy(accessPolicy); err != nil {
		return nil, err
	}
	for _, s := range c.Storage {
		if _, err := s.DB().Execute("CREATE TABLE ingest_bench (id INTEGER, client TEXT, note TEXT)"); err != nil {
			return nil, err
		}
	}
	pipe, err := c.IngestPipeline(ingest.Config{BatchMax: 32, QueueMax: 4096})
	if err != nil {
		return nil, err
	}
	defer pipe.Close()

	rpmb0 := c.StorageMeter.Snapshot().RPMBWrites
	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now() //ironsafe:allow wallclock -- ingest throughput is a real-time measurement, not a priced simulation
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for ri := 0; ri < records; ri++ {
				sql := fmt.Sprintf("INSERT INTO ingest_bench (id, client, note) VALUES (%d, 'c%02d', 'r%06d')",
					ci*1000000+ri, ci, ri)
				t0 := time.Now() //ironsafe:allow wallclock -- ack latency is a real-time measurement
				if _, err := pipe.Submit(ingest.Record{Client: benchClient, SQL: sql}); err != nil {
					errs[ci] = fmt.Errorf("ingest client %d record %d: %w", ci, ri, err)
					return
				}
				lats[ci] = append(lats[ci], time.Since(t0)) //ironsafe:allow wallclock -- ack latency is a real-time measurement
			}
		}(ci)
	}
	wg.Wait()
	wall := time.Since(start) //ironsafe:allow wallclock -- ingest throughput is a real-time measurement, not a priced simulation
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	st := pipe.Stats()
	rpmb := c.StorageMeter.Snapshot().RPMBWrites - rpmb0
	res := &IngestResult{
		Clients:          clients,
		Records:          len(all),
		WallMicros:       float64(wall) / float64(time.Microsecond),
		RecordsPerSecond: float64(len(all)) / wall.Seconds(),
		AckP50Micros:     float64(nearestRank(all, 50)) / float64(time.Microsecond),
		AckP95Micros:     float64(nearestRank(all, 95)) / float64(time.Microsecond),
		Batches:          st.Batches,
		Coalesced:        st.Coalesced,
		RPMBWrites:       rpmb,
	}
	if rpmb > 0 {
		res.BatchesPerRPMB = float64(st.Batches) / float64(rpmb)
		res.RecordsPerRPMB = float64(len(all)) / float64(rpmb)
	}
	return res, nil
}

// nearestRank is the exact nearest-rank percentile over sorted samples.
func nearestRank(sorted []time.Duration, pct int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := pct*len(sorted)/100 + 1
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}
