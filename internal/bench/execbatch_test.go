package bench

import (
	"reflect"
	"testing"

	"ironsafe"
	"ironsafe/internal/tpch"
)

// TestExecBatchMatchesRowModeTPCH is the acceptance gate for the vectorized
// executor: on the full evaluated TPC-H suite (plus q1) the default batched
// pipeline must return rows byte-identical to row-at-a-time execution, with
// identical data-work meters on both engines — the pipelines may differ only
// in the Batches amortization counter, where vectorized must be strictly
// cheaper overall.
func TestExecBatchMatchesRowModeTPCH(t *testing.T) {
	data := tpch.Generate(testSF)
	vec, err := newCluster(ironsafe.IronSafe, data, nil) // default = vectorized
	if err != nil {
		t.Fatal(err)
	}
	row, err := newCluster(ironsafe.IronSafe, data, func(cfg *ironsafe.Config) {
		cfg.ExecBatchRows = 1
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := append([]int{1}, tpch.EvaluatedQueries...)
	var vecBatches, rowBatches int64
	for _, qn := range queries {
		qrV, err := vec.NewSession(benchClient).Query(tpch.Queries[qn])
		if err != nil {
			t.Fatalf("q%d vectorized: %v", qn, err)
		}
		qrR, err := row.NewSession(benchClient).Query(tpch.Queries[qn])
		if err != nil {
			t.Fatalf("q%d row-mode: %v", qn, err)
		}
		if len(qrV.Result.Rows) != len(qrR.Result.Rows) {
			t.Fatalf("q%d: vectorized %d rows, row-mode %d rows",
				qn, len(qrV.Result.Rows), len(qrR.Result.Rows))
		}
		for i := range qrV.Result.Rows {
			if !reflect.DeepEqual(qrV.Result.Rows[i], qrR.Result.Rows[i]) {
				t.Fatalf("q%d row %d diverges:\n  vectorized: %v\n  row-mode:   %v",
					qn, i, qrV.Result.Rows[i], qrR.Result.Rows[i])
			}
		}

		// Meter equality modulo amortization: zero the Batches counters and
		// every remaining counter — tuples touched, pages read, hashes
		// verified, bytes shipped — must match exactly.
		hv, hr := qrV.Stats.Host, qrR.Stats.Host
		sv, sr := qrV.Stats.Storage, qrR.Stats.Storage
		vecBatches += hv.Batches + sv.Batches
		rowBatches += hr.Batches + sr.Batches
		if hv.Batches > hr.Batches || sv.Batches > sr.Batches {
			t.Errorf("q%d: vectorized dispatched MORE batches (host %d vs %d, storage %d vs %d)",
				qn, hv.Batches, hr.Batches, sv.Batches, sr.Batches)
		}
		hv.Batches, hr.Batches = 0, 0
		sv.Batches, sr.Batches = 0, 0
		if hv != hr {
			t.Errorf("q%d: host meters diverge:\n  vectorized: %+v\n  row-mode:   %+v", qn, hv, hr)
		}
		if sv != sr {
			t.Errorf("q%d: storage meters diverge:\n  vectorized: %+v\n  row-mode:   %+v", qn, sv, sr)
		}
	}
	if vecBatches >= rowBatches {
		t.Errorf("vectorized batches = %d, want < row-mode %d (amortization is the point)",
			vecBatches, rowBatches)
	}
}

// TestExecBatchResultsGate pins the BENCH_results.json exec_batch section:
// present, internally consistent, and showing the vectorized pipeline
// strictly cheaper than row-at-a-time on the simulated cost model.
func TestExecBatchResultsGate(t *testing.T) {
	queries := []int{6, 14, 19}
	res, err := CollectResults(testSF, queries)
	if err != nil {
		t.Fatal(err)
	}
	eb := res.ExecBatch
	if eb == nil {
		t.Fatal("exec_batch section missing from results")
	}
	if eb.BatchRows <= 1 {
		t.Errorf("batch_rows = %d, want > 1", eb.BatchRows)
	}
	if eb.VecGeomeanMicros <= 0 || eb.RowGeomeanMicros <= 0 {
		t.Fatalf("geomeans: vec %v, row %v", eb.VecGeomeanMicros, eb.RowGeomeanMicros)
	}
	if eb.VecGeomeanMicros != res.GeomeanMicros["scs"] {
		t.Errorf("vec geomean %v is not the scs series %v (scs must run vectorized by default)",
			eb.VecGeomeanMicros, res.GeomeanMicros["scs"])
	}
	// The hard perf gate: batching must beat row-at-a-time by a real margin
	// on the scan-heavy queries, not round to parity.
	if eb.Speedup < 1.3 {
		t.Errorf("vectorized speedup = %.3f, want >= 1.3", eb.Speedup)
	}
	for _, qn := range queries {
		key := keyFor(qn)
		v, r := eb.VecTimesMicros[key], eb.RowTimesMicros[key]
		if v <= 0 || r <= 0 {
			t.Errorf("%s: times vec=%v row=%v", key, v, r)
		}
		if v >= r {
			t.Errorf("%s: vectorized (%vµs) not cheaper than row-mode (%vµs)", key, v, r)
		}
	}
}
