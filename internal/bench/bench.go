// Package bench is the experiment harness: one function per table/figure of
// the paper's evaluation (§6), each returning the same rows/series the paper
// reports. Latencies are simulated times produced by pricing real measured
// work (pages, tuples, bytes, crypto and TEE operations) with the calibrated
// cost model — see DESIGN.md for why absolute values differ from the paper
// while the shapes are expected to hold.
package bench

import (
	"fmt"
	"sort"
	"time"

	"ironsafe"
	"ironsafe/internal/partition"
	"ironsafe/internal/simtime"
	"ironsafe/internal/sql/parser"
	"ironsafe/internal/tpch"
)

// benchClient is the identity used for all benchmark queries.
const benchClient = "bench"

// accessPolicy grants the benchmark client read+write.
const accessPolicy = "read :- sessionKeyIs(bench)\nwrite :- sessionKeyIs(bench)"

// newCluster builds and loads one configuration.
func newCluster(mode ironsafe.Mode, data *tpch.Data, tweak func(*ironsafe.Config)) (*ironsafe.Cluster, error) {
	cfg := ironsafe.Config{Mode: mode}
	if tweak != nil {
		tweak(&cfg)
	}
	c, err := ironsafe.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	if err := c.LoadTPCHData(data); err != nil {
		return nil, err
	}
	if err := c.SetAccessPolicy(accessPolicy); err != nil {
		return nil, err
	}
	return c, nil
}

// runQuery executes one query and returns its simulated latency and stats.
func runQuery(c *ironsafe.Cluster, sql string) (time.Duration, *ironsafe.QueryStats, error) {
	qr, err := c.NewSession(benchClient).Query(sql)
	if err != nil {
		return 0, nil, err
	}
	return qr.Stats.Cost.Total(), &qr.Stats, nil
}

// Fig6Row is one bar pair of Figure 6.
type Fig6Row struct {
	Query             int
	HonsTime, VcsTime time.Duration
	HosTime, ScsTime  time.Duration
	// NonSecureSpeedup = hons/vcs; SecureSpeedup = hos/scs. > 1 means the
	// computational-storage split wins.
	NonSecureSpeedup float64
	SecureSpeedup    float64
}

// Fig6 reproduces Figure 6: TPC-H speedup of split execution over host-only,
// non-secure (hons vs vcs) and secure (hos vs scs).
func Fig6(sf float64, queries []int) ([]Fig6Row, error) {
	data := tpch.Generate(sf)
	modes := []ironsafe.Mode{ironsafe.HostOnlyNonSecure, ironsafe.VanillaCS, ironsafe.HostOnlySecure, ironsafe.IronSafe}
	clusters := map[ironsafe.Mode]*ironsafe.Cluster{}
	for _, m := range modes {
		c, err := newCluster(m, data, func(cfg *ironsafe.Config) {
			if m == ironsafe.HostOnlySecure {
				// Scaled-down EPC so the secure host-only working set
				// exceeds it the way SF 3-5 exceeds 96 MiB on hardware.
				cfg.EPCLimitBytes = 4 << 20
			}
		})
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", m, err)
		}
		clusters[m] = c
	}
	var rows []Fig6Row
	for _, qn := range queries {
		row := Fig6Row{Query: qn}
		times := map[ironsafe.Mode]time.Duration{}
		for _, m := range modes {
			t, _, err := runQuery(clusters[m], tpch.Queries[qn])
			if err != nil {
				return nil, fmt.Errorf("fig6 q%d %s: %w", qn, m, err)
			}
			times[m] = t
		}
		row.HonsTime = times[ironsafe.HostOnlyNonSecure]
		row.VcsTime = times[ironsafe.VanillaCS]
		row.HosTime = times[ironsafe.HostOnlySecure]
		row.ScsTime = times[ironsafe.IronSafe]
		row.NonSecureSpeedup = ratio(row.HonsTime, row.VcsTime)
		row.SecureSpeedup = ratio(row.HosTime, row.ScsTime)
		rows = append(rows, row)
	}
	return rows, nil
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// AverageSecureSpeedup computes the paper's headline number (2.3x average).
func AverageSecureSpeedup(rows []Fig6Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rows {
		sum += r.SecureSpeedup
	}
	return sum / float64(len(rows))
}

// Fig7Row is one bar of Figure 7: host<->storage IO reduction.
type Fig7Row struct {
	Query int
	// HostOnlyPages is the page traffic of host-only execution; ShippedPages
	// is the page-equivalent of the rows the split shipped.
	HostOnlyPages int64
	ShippedPages  int64
	Reduction     float64 // HostOnlyPages / ShippedPages
}

// Fig7 reproduces Figure 7: data-movement reduction from near-data filtering.
func Fig7(sf float64, queries []int) ([]Fig7Row, error) {
	data := tpch.Generate(sf)
	hons, err := newCluster(ironsafe.HostOnlyNonSecure, data, nil)
	if err != nil {
		return nil, err
	}
	scs, err := newCluster(ironsafe.IronSafe, data, nil)
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, qn := range queries {
		_, honsStats, err := runQuery(hons, tpch.Queries[qn])
		if err != nil {
			return nil, fmt.Errorf("fig7 q%d hons: %w", qn, err)
		}
		_, scsStats, err := runQuery(scs, tpch.Queries[qn])
		if err != nil {
			return nil, fmt.Errorf("fig7 q%d scs: %w", qn, err)
		}
		hostPages := honsStats.Host.BytesReceived / 4096
		shipped := scsStats.BytesShipped / 4096
		if shipped == 0 {
			shipped = 1
		}
		rows = append(rows, Fig7Row{
			Query:         qn,
			HostOnlyPages: hostPages,
			ShippedPages:  shipped,
			Reduction:     float64(hostPages) / float64(shipped),
		})
	}
	return rows, nil
}

// Fig8Row is one stacked bar of Figure 8: where scs time goes.
type Fig8Row struct {
	Query     int
	NDP       float64 // plain near-data processing (the vcs-equivalent work)
	Freshness float64 // Merkle verification + RPMB
	Decrypt   float64 // page decryption
	Other     float64 // channel, TEE transitions, transfer
}

// Fig8 reproduces Figure 8: the relative cost breakdown of running each
// query with IronSafe (fractions sum to 1).
func Fig8(sf float64, queries []int) ([]Fig8Row, error) {
	data := tpch.Generate(sf)
	scs, err := newCluster(ironsafe.IronSafe, data, nil)
	if err != nil {
		return nil, err
	}
	model := scs.CostModel()
	var rows []Fig8Row
	for _, qn := range queries {
		_, stats, err := runQuery(scs, tpch.Queries[qn])
		if err != nil {
			return nil, fmt.Errorf("fig8 q%d: %w", qn, err)
		}
		rows = append(rows, breakdownFractions(qn, model, stats))
	}
	return rows, nil
}

// breakdownFractions prices one split query's stats into the Figure 8 cost
// fractions (shared by the figure reproduction and the JSON emitter).
func breakdownFractions(qn int, model *simtime.CostModel, stats *ironsafe.QueryStats) Fig8Row {
	hostCost := model.PriceCPU(stats.Host, model.Host, 1)
	storCost := model.PriceCPU(stats.Storage, model.Storage, 0)
	ndp := hostCost.Compute + hostCost.PageIO + storCost.Compute + storCost.PageIO
	fresh := hostCost.Freshness + storCost.Freshness +
		time.Duration(stats.Storage.RPMBReads+stats.Storage.RPMBWrites)*model.TEE.RPMBRead
	dec := hostCost.Decrypt + storCost.Decrypt
	other := model.PriceTEE(stats.Host) + model.PriceTEE(stats.Storage) - time.Duration(stats.Storage.RPMBReads+stats.Storage.RPMBWrites)*model.TEE.RPMBRead +
		model.PriceBatchTransitions(stats.Host) + model.PriceBatchTransitions(stats.Storage) +
		model.PriceLink(stats.Host.BytesSent+stats.Host.BytesReceived, int64(stats.Offloads*2))
	total := ndp + fresh + dec + other
	if total == 0 {
		total = 1
	}
	return Fig8Row{
		Query:     qn,
		NDP:       float64(ndp) / float64(total),
		Freshness: float64(fresh) / float64(total),
		Decrypt:   float64(dec) / float64(total),
		Other:     float64(other) / float64(total),
	}
}

// Fig9aRow is one group of Figure 9a: q1 latency by input size.
type Fig9aRow struct {
	ScaleFactor   float64
	Hos, Scs, Sos time.Duration
}

// Fig9a reproduces Figure 9a: query 1 execution time vs input size for the
// three secure configurations (lower is better; scs wins everywhere and hos
// degrades fastest once its working set outgrows the EPC).
func Fig9a(sfs []float64) ([]Fig9aRow, error) {
	var rows []Fig9aRow
	for _, sf := range sfs {
		data := tpch.Generate(sf)
		row := Fig9aRow{ScaleFactor: sf}
		for _, m := range []ironsafe.Mode{ironsafe.HostOnlySecure, ironsafe.IronSafe, ironsafe.StorageOnlySecure} {
			c, err := newCluster(m, data, func(cfg *ironsafe.Config) {
				if m == ironsafe.HostOnlySecure {
					cfg.EPCLimitBytes = 4 << 20
				}
			})
			if err != nil {
				return nil, err
			}
			t, _, err := runQuery(c, tpch.Queries[1])
			if err != nil {
				return nil, fmt.Errorf("fig9a sf=%g %s: %w", sf, m, err)
			}
			switch m {
			case ironsafe.HostOnlySecure:
				row.Hos = t
			case ironsafe.IronSafe:
				row.Scs = t
			case ironsafe.StorageOnlySecure:
				row.Sos = t
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig9bRow is one group of Figure 9b: q1 latency by filter selectivity.
type Fig9bRow struct {
	SelectivityPct int
	Hos, Scs, Sos  time.Duration
}

// selectivityQuery builds the paper's tweaked query 1: a single filter whose
// selectivity is controlled through the quantity threshold (quantity is
// uniform on 1..50, so qty <= 5 ≈ 10%, qty <= 10 ≈ 20%).
func selectivityQuery(pct int) string {
	threshold := pct / 2 // uniform 1..50: P(qty <= t) = t/50
	return fmt.Sprintf(`select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty,
		sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, count(*) as count_order
		from lineitem where l_quantity <= %d
		group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus`, threshold)
}

// Fig9b reproduces Figure 9b: query time vs selectivity (10-20%).
func Fig9b(sf float64, pcts []int) ([]Fig9bRow, error) {
	data := tpch.Generate(sf)
	clusters := map[ironsafe.Mode]*ironsafe.Cluster{}
	for _, m := range []ironsafe.Mode{ironsafe.HostOnlySecure, ironsafe.IronSafe, ironsafe.StorageOnlySecure} {
		c, err := newCluster(m, data, func(cfg *ironsafe.Config) {
			if m == ironsafe.HostOnlySecure {
				cfg.EPCLimitBytes = 4 << 20
			}
		})
		if err != nil {
			return nil, err
		}
		clusters[m] = c
	}
	var rows []Fig9bRow
	for _, pct := range pcts {
		row := Fig9bRow{SelectivityPct: pct}
		q := selectivityQuery(pct)
		var err error
		if row.Hos, _, err = runQuery(clusters[ironsafe.HostOnlySecure], q); err != nil {
			return nil, err
		}
		if row.Scs, _, err = runQuery(clusters[ironsafe.IronSafe], q); err != nil {
			return nil, err
		}
		if row.Sos, _, err = runQuery(clusters[ironsafe.StorageOnlySecure], q); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig9cRow is one bar of Figure 9c: where sos time goes for q2 and q9.
type Fig9cRow struct {
	Query              int
	FreshnessFraction  float64
	DecryptFraction    float64
	ProcessingFraction float64
}

// Fig9c reproduces Figure 9c: the secure-storage overhead breakdown when
// queries run entirely on the storage server (the paper reports ~70-80%
// freshness verification and ~15% decryption).
func Fig9c(sf float64, queries []int) ([]Fig9cRow, error) {
	data := tpch.Generate(sf)
	// Pin the paper's per-read design point: one full Merkle walk per page.
	// Batched verification deliberately destroys this breakdown (that is its
	// job — see BENCH_results.json for the batched numbers), so the figure
	// reproduction keeps the sequential path.
	sos, err := newCluster(ironsafe.StorageOnlySecure, data, func(cfg *ironsafe.Config) {
		cfg.ScanBatchPages = 1
	})
	if err != nil {
		return nil, err
	}
	model := sos.CostModel()
	var rows []Fig9cRow
	for _, qn := range queries {
		_, stats, err := runQuery(sos, tpch.Queries[qn])
		if err != nil {
			return nil, fmt.Errorf("fig9c q%d: %w", qn, err)
		}
		cost := model.PriceCPU(stats.Storage, model.Storage, 1)
		total := cost.Total()
		if total == 0 {
			total = 1
		}
		rows = append(rows, Fig9cRow{
			Query:              qn,
			FreshnessFraction:  float64(cost.Freshness) / float64(total),
			DecryptFraction:    float64(cost.Decrypt) / float64(total),
			ProcessingFraction: float64(cost.Compute+cost.PageIO) / float64(total),
		})
	}
	return rows, nil
}

// Fig10Row is one line point of Figure 10: speedup vs storage CPU count.
type Fig10Row struct {
	Query    int
	Speedups map[int]float64 // cores -> hos/scs speedup
}

// Fig10 reproduces Figure 10: scs speedup over hos as storage cores vary.
func Fig10(sf float64, queries []int, coreCounts []int) ([]Fig10Row, error) {
	data := tpch.Generate(sf)
	hos, err := newCluster(ironsafe.HostOnlySecure, data, func(cfg *ironsafe.Config) {
		cfg.EPCLimitBytes = 4 << 20
	})
	if err != nil {
		return nil, err
	}
	hosTimes := map[int]time.Duration{}
	for _, qn := range queries {
		t, _, err := runQuery(hos, tpch.Queries[qn])
		if err != nil {
			return nil, fmt.Errorf("fig10 q%d hos: %w", qn, err)
		}
		hosTimes[qn] = t
	}
	rows := make([]Fig10Row, len(queries))
	for i, qn := range queries {
		rows[i] = Fig10Row{Query: qn, Speedups: map[int]float64{}}
	}
	for _, cores := range coreCounts {
		scs, err := newCluster(ironsafe.IronSafe, data, func(cfg *ironsafe.Config) {
			cfg.StorageCores = cores
		})
		if err != nil {
			return nil, err
		}
		for i, qn := range queries {
			t, _, err := runQuery(scs, tpch.Queries[qn])
			if err != nil {
				return nil, fmt.Errorf("fig10 q%d cores=%d: %w", qn, cores, err)
			}
			rows[i].Speedups[cores] = ratio(hosTimes[qn], t)
		}
	}
	return rows, nil
}

// Fig11Row is one line of Figure 11: offloaded-query speedup vs memory.
type Fig11Row struct {
	Query    int
	Speedups map[int64]float64 // budget bytes -> speedup over smallest budget
}

// Fig11 reproduces Figure 11: speedup of the offloaded portion as storage
// memory grows (normalized to the smallest budget).
func Fig11(sf float64, queries []int, budgets []int64) ([]Fig11Row, error) {
	data := tpch.Generate(sf)
	times := map[int][]time.Duration{}
	for _, budget := range budgets {
		scs, err := newCluster(ironsafe.IronSafe, data, func(cfg *ironsafe.Config) {
			cfg.StorageMemoryBudget = budget
		})
		if err != nil {
			return nil, err
		}
		model := scs.CostModel()
		for _, qn := range queries {
			_, stats, err := runQuery(scs, tpch.Queries[qn])
			if err != nil {
				return nil, fmt.Errorf("fig11 q%d budget=%d: %w", qn, budget, err)
			}
			// Offloaded portion only: the storage side cost.
			storCost := model.PriceCPU(stats.Storage, model.Storage, 0)
			storCost.TEE = model.PriceTEE(stats.Storage) + model.PriceBatchTransitions(stats.Storage)
			times[qn] = append(times[qn], storCost.Total())
		}
	}
	var rows []Fig11Row
	for _, qn := range queries {
		row := Fig11Row{Query: qn, Speedups: map[int64]float64{}}
		base := times[qn][0]
		for i, budget := range budgets {
			row.Speedups[budget] = ratio(base, times[qn][i])
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig12Row is one line point of Figure 12: storage-side scalability.
type Fig12Row struct {
	Instances int
	// CumulativeNormalized is total work across instances normalized to a
	// single instance; linear scaling tracks the instance count.
	CumulativeNormalized float64
}

// Fig12 reproduces Figure 12: N concurrent engine instances, each on its own
// copy of the secure database, running the offloaded queries.
func Fig12(sf float64, queries []int, instanceCounts []int) ([]Fig12Row, error) {
	data := tpch.Generate(sf)
	// One-instance baseline.
	single, err := fig12Cumulative(data, queries, 1)
	if err != nil {
		return nil, err
	}
	var rows []Fig12Row
	for _, n := range instanceCounts {
		cum, err := fig12Cumulative(data, queries, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig12Row{Instances: n, CumulativeNormalized: ratio(cum, single)})
	}
	return rows, nil
}

// fig12Cumulative runs each query's offloaded fragments on n concurrent
// instances (each over its own copy of the protected database) and sums the
// priced storage-side time across all instances.
func fig12Cumulative(data *tpch.Data, queries []int, n int) (time.Duration, error) {
	c, err := newCluster(ironsafe.IronSafe, data, func(cfg *ironsafe.Config) {
		cfg.StorageNodes = n
	})
	if err != nil {
		return 0, err
	}
	// Gather every query's per-table offload fragments via the partitioner.
	var ships []string
	for _, qn := range queries {
		sel, err := parser.ParseSelect(tpch.Queries[qn])
		if err != nil {
			return 0, err
		}
		split, err := partition.SplitQuery(sel, c.Host.Schemas())
		if err != nil {
			return 0, err
		}
		for _, s := range split.Ships {
			ships = append(ships, s.SQL)
		}
	}
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		srv := c.Storage[i]
		go func() {
			for _, sql := range ships {
				if _, err := srv.ExecOffload(sql); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	model := c.CostModel()
	snap := c.StorageMeter.Snapshot()
	cost := model.PriceCPU(snap, model.Storage, 1)
	cost.TEE = model.PriceTEE(snap) + model.PriceBatchTransitions(snap)
	return cost.Total(), nil
}

// SortedQueries returns the evaluated query list in order.
func SortedQueries() []int {
	out := append([]int{}, tpch.EvaluatedQueries...)
	sort.Ints(out)
	return out
}
