package bench

import (
	"fmt"
	"math"
	"time"

	"ironsafe"
	"ironsafe/internal/sql/exec"
	"ironsafe/internal/tpch"
)

// Results is the machine-readable benchmark record cmd/ironsafe-bench writes
// to BENCH_results.json: per-query simulated latencies for every Table 2
// configuration, the scs cost-breakdown fractions of Figure 8, and the scan
// pipeline's amortization counters — enough to track the perf trajectory of
// the secure scan path across PRs without re-parsing text tables.
type Results struct {
	ScaleFactor float64 `json:"scale_factor"`
	Queries     []int   `json:"queries"`
	// TimesMicros maps config abbreviation (hons/hos/vcs/scs/sos) to
	// per-query simulated latency in microseconds, keyed "q<N>".
	TimesMicros map[string]map[string]float64 `json:"times_micros"`
	// GeomeanMicros is the geometric mean latency per configuration.
	GeomeanMicros map[string]float64 `json:"geomean_micros"`
	// ScsBreakdown holds the Figure 8 cost fractions per query under scs.
	ScsBreakdown map[string]Breakdown `json:"scs_breakdown"`
	// ScsScan holds the scan-pipeline counters per query under scs
	// (storage-side, per-query deltas).
	ScsScan map[string]ScanCounters `json:"scs_scan"`
	// ScsTail maps query class (SQL shape) to its tail-latency summary under
	// scs, as reported by the monitor's tail telemetry.
	ScsTail map[string]TailClass `json:"scs_tail"`
	// TailEjections / TailReadmissions count latency-outlier soft-ejection
	// events observed during the scs run.
	TailEjections    int `json:"tail_ejections"`
	TailReadmissions int `json:"tail_readmissions"`
	// Ingest is the streaming-ingest throughput series: acked-write rate,
	// ack latency percentiles, and group-commit RPMB amortization.
	Ingest *IngestResult `json:"ingest"`
	// ExecBatch compares the vectorized operator pipeline (the default)
	// against row-at-a-time execution (ExecBatchRows=1) under scs.
	ExecBatch *ExecBatchResults `json:"exec_batch"`
}

// ExecBatchResults is the vectorized-executor comparison: the same scs
// cluster and queries, run once with the default columnar batches and once
// with the row-at-a-time pipeline. Rows are byte-identical by construction
// (the differential test enforces it); only the amortization differs —
// per-tuple operator dispatch and per-row enclave-boundary accounting versus
// one charge per ~4096-row batch.
type ExecBatchResults struct {
	// BatchRows is the vectorized pipeline's batch size.
	BatchRows int `json:"batch_rows"`
	// VecGeomeanMicros / RowGeomeanMicros are the scs geometric-mean
	// latencies under each pipeline; Speedup is row/vec.
	VecGeomeanMicros float64 `json:"vec_geomean_micros"`
	RowGeomeanMicros float64 `json:"row_geomean_micros"`
	Speedup          float64 `json:"speedup"`
	// VecTimesMicros / RowTimesMicros are the per-query latencies, keyed "q<N>".
	VecTimesMicros map[string]float64 `json:"vec_times_micros"`
	RowTimesMicros map[string]float64 `json:"row_times_micros"`
}

// TailClass is one query class's tail-latency record: exact nearest-rank
// percentiles over the class's simulated latencies, plus hedging activity.
type TailClass struct {
	Queries   int     `json:"queries"`
	P50Micros float64 `json:"p50_micros"`
	P95Micros float64 `json:"p95_micros"`
	P99Micros float64 `json:"p99_micros"`
	Hedges    int     `json:"hedges"`
	HedgeWins int     `json:"hedge_wins"`
}

// Breakdown is one query's Figure 8 cost split (fractions sum to 1).
type Breakdown struct {
	NDP       float64 `json:"ndp"`
	Freshness float64 `json:"freshness"`
	Decrypt   float64 `json:"decrypt"`
	Other     float64 `json:"other"`
}

// ScanCounters is one query's scan-pipeline work record.
type ScanCounters struct {
	ScanBatches       int64 `json:"scan_batches"`
	MerkleHashes      int64 `json:"merkle_hashes"`
	MerkleHashesSaved int64 `json:"merkle_hashes_saved"`
	PlainCacheHits    int64 `json:"plain_cache_hits"`
	PlainCacheMisses  int64 `json:"plain_cache_misses"`
}

// jsonQueryKey names a query in the JSON maps.
func jsonQueryKey(qn int) string { return fmt.Sprintf("q%d", qn) }

// jsonModes lists the five Table 2 configurations in evaluation order.
var jsonModes = []ironsafe.Mode{
	ironsafe.HostOnlyNonSecure,
	ironsafe.HostOnlySecure,
	ironsafe.VanillaCS,
	ironsafe.IronSafe,
	ironsafe.StorageOnlySecure,
}

// CollectResults runs every query on all five configurations and assembles
// the machine-readable record. The hos cluster uses the same scaled-down EPC
// as the Fig 6 reproduction so its numbers stay comparable across figures.
func CollectResults(sf float64, queries []int) (*Results, error) {
	data := tpch.Generate(sf)
	res := &Results{
		ScaleFactor:   sf,
		Queries:       append([]int(nil), queries...),
		TimesMicros:   map[string]map[string]float64{},
		GeomeanMicros: map[string]float64{},
		ScsBreakdown:  map[string]Breakdown{},
		ScsScan:       map[string]ScanCounters{},
		ScsTail:       map[string]TailClass{},
	}
	for _, m := range jsonModes {
		mode := m
		c, err := newCluster(mode, data, func(cfg *ironsafe.Config) {
			if mode == ironsafe.HostOnlySecure {
				cfg.EPCLimitBytes = 4 << 20
			}
		})
		if err != nil {
			return nil, fmt.Errorf("results %s: %w", mode, err)
		}
		model := c.CostModel()
		times := map[string]float64{}
		logSum, n := 0.0, 0
		for _, qn := range queries {
			t, stats, err := runQuery(c, tpch.Queries[qn])
			if err != nil {
				return nil, fmt.Errorf("results %s q%d: %w", mode, qn, err)
			}
			key := jsonQueryKey(qn)
			us := float64(t) / float64(time.Microsecond)
			times[key] = us
			if us > 0 {
				logSum += math.Log(us)
				n++
			}
			if mode == ironsafe.IronSafe {
				f := breakdownFractions(qn, model, stats)
				res.ScsBreakdown[key] = Breakdown{
					NDP: f.NDP, Freshness: f.Freshness, Decrypt: f.Decrypt, Other: f.Other,
				}
				res.ScsScan[key] = ScanCounters{
					ScanBatches:       stats.Storage.ScanBatches,
					MerkleHashes:      stats.Storage.MerkleHashes,
					MerkleHashesSaved: stats.Storage.MerkleHashesSaved,
					PlainCacheHits:    stats.Storage.PlainCacheHits,
					PlainCacheMisses:  stats.Storage.PlainCacheMisses,
				}
			}
		}
		res.TimesMicros[mode.String()] = times
		if n > 0 {
			res.GeomeanMicros[mode.String()] = math.Exp(logSum / float64(n))
		}
		if mode == ironsafe.IronSafe {
			tail := c.Monitor.TailReportNow()
			for _, tc := range tail.Classes {
				res.ScsTail[tc.Class] = TailClass{
					Queries:   tc.Queries,
					P50Micros: float64(tc.P50) / float64(time.Microsecond),
					P95Micros: float64(tc.P95) / float64(time.Microsecond),
					P99Micros: float64(tc.P99) / float64(time.Microsecond),
					Hedges:    tc.Hedges,
					HedgeWins: tc.HedgeWins,
				}
			}
			res.TailEjections = tail.Ejections
			res.TailReadmissions = tail.Readmissions
		}
	}
	eb, err := collectExecBatch(data, queries, res.TimesMicros[ironsafe.IronSafe.String()], res.GeomeanMicros[ironsafe.IronSafe.String()])
	if err != nil {
		return nil, fmt.Errorf("results exec_batch: %w", err)
	}
	res.ExecBatch = eb

	ing, err := Ingest(4, 50)
	if err != nil {
		return nil, fmt.Errorf("results ingest: %w", err)
	}
	res.Ingest = ing
	return res, nil
}

// collectExecBatch reruns the scs queries with the row-at-a-time executor
// (ExecBatchRows=1) and pairs them with the vectorized series the main loop
// already measured (the scs run uses the default batched pipeline).
func collectExecBatch(data *tpch.Data, queries []int, vecTimes map[string]float64, vecGeomean float64) (*ExecBatchResults, error) {
	c, err := newCluster(ironsafe.IronSafe, data, func(cfg *ironsafe.Config) {
		cfg.ExecBatchRows = 1
	})
	if err != nil {
		return nil, err
	}
	eb := &ExecBatchResults{
		BatchRows:        exec.DefaultBatchRows,
		VecGeomeanMicros: vecGeomean,
		VecTimesMicros:   map[string]float64{},
		RowTimesMicros:   map[string]float64{},
	}
	logSum, n := 0.0, 0
	for _, qn := range queries {
		key := jsonQueryKey(qn)
		eb.VecTimesMicros[key] = vecTimes[key]
		t, _, err := runQuery(c, tpch.Queries[qn])
		if err != nil {
			return nil, fmt.Errorf("row-mode q%d: %w", qn, err)
		}
		us := float64(t) / float64(time.Microsecond)
		eb.RowTimesMicros[key] = us
		if us > 0 {
			logSum += math.Log(us)
			n++
		}
	}
	if n > 0 {
		eb.RowGeomeanMicros = math.Exp(logSum / float64(n))
	}
	if eb.VecGeomeanMicros > 0 {
		eb.Speedup = eb.RowGeomeanMicros / eb.VecGeomeanMicros
	}
	return eb, nil
}
