package bench

import "testing"

// TestIngestSeriesInvariants: the throughput numbers move run to run, but the
// contracts underneath them do not — every record acks, every batch costs
// exactly one RPMB anchor, and the latency percentiles are well-formed.
func TestIngestSeriesInvariants(t *testing.T) {
	res, err := Ingest(3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 3*20 {
		t.Errorf("acked %d records, want %d (an unacked record is a lost write)", res.Records, 3*20)
	}
	if res.Batches == 0 || int64(res.Batches) != res.RPMBWrites {
		t.Errorf("%d batches over %d RPMB writes, want exactly one anchor per batch", res.Batches, res.RPMBWrites)
	}
	if res.RecordsPerRPMB < 1 {
		t.Errorf("records per RPMB write = %.2f, want >= 1", res.RecordsPerRPMB)
	}
	if res.AckP95Micros < res.AckP50Micros || res.AckP95Micros <= 0 {
		t.Errorf("ack percentiles malformed: p50 %.0fus, p95 %.0fus", res.AckP50Micros, res.AckP95Micros)
	}
	if res.RecordsPerSecond <= 0 {
		t.Errorf("records/s = %f", res.RecordsPerSecond)
	}
}
