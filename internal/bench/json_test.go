package bench

import (
	"encoding/json"
	"reflect"
	"testing"

	"ironsafe"
	"ironsafe/internal/tpch"
)

// TestBatchedMatchesSequentialTPCH is the acceptance gate for the pipelined
// scan path: on the full evaluated TPC-H suite (plus q1) the batched scs
// configuration must return rows identical to the paper's sequential
// per-page path, while evaluating strictly fewer Merkle HMACs on the
// multi-page scans.
func TestBatchedMatchesSequentialTPCH(t *testing.T) {
	data := tpch.Generate(testSF)
	batched, err := newCluster(ironsafe.IronSafe, data, nil) // default = batched
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := newCluster(ironsafe.IronSafe, data, func(cfg *ironsafe.Config) {
		cfg.ScanBatchPages = 1
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := append([]int{1}, tpch.EvaluatedQueries...)
	var fewerHashes int
	for _, qn := range queries {
		qrB, err := batched.NewSession(benchClient).Query(tpch.Queries[qn])
		if err != nil {
			t.Fatalf("q%d batched: %v", qn, err)
		}
		qrS, err := sequential.NewSession(benchClient).Query(tpch.Queries[qn])
		if err != nil {
			t.Fatalf("q%d sequential: %v", qn, err)
		}
		if len(qrB.Result.Rows) != len(qrS.Result.Rows) {
			t.Fatalf("q%d: batched %d rows, sequential %d rows",
				qn, len(qrB.Result.Rows), len(qrS.Result.Rows))
		}
		for i := range qrB.Result.Rows {
			if !reflect.DeepEqual(qrB.Result.Rows[i], qrS.Result.Rows[i]) {
				t.Fatalf("q%d row %d diverges:\n  batched:    %v\n  sequential: %v",
					qn, i, qrB.Result.Rows[i], qrS.Result.Rows[i])
			}
		}
		b, s := qrB.Stats.Storage, qrS.Stats.Storage
		if b.MerkleHashes > s.MerkleHashes {
			t.Errorf("q%d: batched evaluated MORE hashes (%d) than sequential (%d)",
				qn, b.MerkleHashes, s.MerkleHashes)
		}
		if b.MerkleHashes < s.MerkleHashes {
			fewerHashes++
			if b.MerkleHashesSaved == 0 {
				t.Errorf("q%d: hashes dropped %d -> %d but MerkleHashesSaved = 0",
					qn, s.MerkleHashes, b.MerkleHashes)
			}
		}
	}
	if fewerHashes == 0 {
		t.Error("no query saved Merkle hashes under batching")
	}
}

// TestCollectResults exercises the BENCH_results.json emitter end to end:
// all five configurations present, per-query times positive, breakdown
// fractions summing to one, and the record round-tripping through JSON.
func TestCollectResults(t *testing.T) {
	queries := []int{1, 6}
	res, err := CollectResults(testSF, queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []string{"hons", "hos", "vcs", "scs", "sos"} {
		times, ok := res.TimesMicros[cfg]
		if !ok {
			t.Fatalf("config %s missing from results", cfg)
		}
		for _, qn := range queries {
			us, ok := times[keyFor(qn)]
			if !ok || us <= 0 {
				t.Errorf("%s %s: time %v (present=%v)", cfg, keyFor(qn), us, ok)
			}
		}
		if res.GeomeanMicros[cfg] <= 0 {
			t.Errorf("%s: geomean %v", cfg, res.GeomeanMicros[cfg])
		}
	}
	for _, qn := range queries {
		b, ok := res.ScsBreakdown[keyFor(qn)]
		if !ok {
			t.Fatalf("scs breakdown missing for %s", keyFor(qn))
		}
		sum := b.NDP + b.Freshness + b.Decrypt + b.Other
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: breakdown sums to %f", keyFor(qn), sum)
		}
		sc, ok := res.ScsScan[keyFor(qn)]
		if !ok {
			t.Fatalf("scs scan counters missing for %s", keyFor(qn))
		}
		if sc.ScanBatches <= 0 {
			t.Errorf("%s: ScanBatches = %d, want > 0 (batching is the default)", keyFor(qn), sc.ScanBatches)
		}
	}
	if len(res.ScsTail) == 0 {
		t.Fatal("scs tail summary missing")
	}
	for class, tc := range res.ScsTail {
		if tc.Queries <= 0 || tc.P50Micros <= 0 || tc.P99Micros < tc.P50Micros {
			t.Errorf("tail class %s: %+v", class, tc)
		}
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Results
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.TimesMicros, back.TimesMicros) {
		t.Error("results do not round-trip through JSON")
	}
}

func keyFor(qn int) string {
	return jsonQueryKey(qn)
}
