package bench

import (
	"fmt"
	"time"

	"ironsafe"
	"ironsafe/internal/tpch"
)

// Table3Row is one row of Table 3: a GDPR anti-pattern enforced by IronSafe,
// compared with the non-secure baseline.
type Table3Row struct {
	AntiPattern string
	NonSecure   time.Duration
	IronSafe    time.Duration
	Overhead    float64
}

// gdprScenario is one anti-pattern workload.
type gdprScenario struct {
	name string
	// setup installs tables, data, and the enforcing access policy.
	setup func(c *ironsafe.Cluster, enforce bool) error
	// query is what the data consumer runs.
	query      string
	clientKey  string
	accessDate string
	execPolicy string
}

// gdprScenarios are the five anti-patterns of Table 3.
func gdprScenarios() []gdprScenario {
	basePII := func(c *ironsafe.Cluster) error {
		if _, err := c.Exec("CREATE TABLE pii (id INTEGER, name VARCHAR(24), email VARCHAR(32), expiry DATE, reuse_map INTEGER)"); err != nil {
			return err
		}
		// Batched multi-row inserts: enough data that query cost is
		// visible next to the per-query fixed costs, as in the paper's
		// millisecond-scale rows.
		const total, batch = 2048, 256
		for lo := 0; lo < total; lo += batch {
			stmt := "INSERT INTO pii VALUES "
			for i := lo; i < lo+batch; i++ {
				expiry := "1999-01-01"
				if i%4 == 0 {
					expiry = "1994-01-01" // already expired
				}
				if i > lo {
					stmt += ", "
				}
				stmt += fmt.Sprintf("(%d, 'user-%d', 'u%d@example.com', '%s', %d)", i, i, i, expiry, i%8)
			}
			if _, err := c.Exec(stmt); err != nil {
				return err
			}
		}
		return nil
	}
	return []gdprScenario{
		{
			name: "#1: Timely deletion",
			setup: func(c *ironsafe.Cluster, enforce bool) error {
				if err := basePII(c); err != nil {
					return err
				}
				if enforce {
					return c.SetAccessPolicy("read :- sessionKeyIs(consumer) & le(T, expiry)")
				}
				return c.SetAccessPolicy("read :- sessionKeyIs(consumer)")
			},
			query: "SELECT name FROM pii ORDER BY id", clientKey: "consumer", accessDate: "1995-06-17",
		},
		{
			name: "#2: Indiscriminate use",
			setup: func(c *ironsafe.Cluster, enforce bool) error {
				if err := basePII(c); err != nil {
					return err
				}
				c.RegisterService("consumer", 2)
				if enforce {
					return c.SetAccessPolicy("read :- reuseMap(reuse_map)")
				}
				return c.SetAccessPolicy("read :- sessionKeyIs(consumer)")
			},
			query: "SELECT name FROM pii ORDER BY id", clientKey: "consumer",
		},
		{
			name: "#3: Transparency",
			setup: func(c *ironsafe.Cluster, enforce bool) error {
				if err := basePII(c); err != nil {
					return err
				}
				if enforce {
					return c.SetAccessPolicy("read :- sessionKeyIs(consumer) & logUpdate(sharing, K, Q)")
				}
				return c.SetAccessPolicy("read :- sessionKeyIs(consumer)")
			},
			query: "SELECT email FROM pii WHERE id < 10", clientKey: "consumer",
		},
		{
			name: "#4: Risk agnostic",
			setup: func(c *ironsafe.Cluster, enforce bool) error {
				if err := basePII(c); err != nil {
					return err
				}
				return c.SetAccessPolicy("read :- sessionKeyIs(consumer)")
			},
			query: "SELECT count(*) FROM pii", clientKey: "consumer",
			execPolicy: "exec :- storageLocIs(EU) & fwVersionStorage(latest) & fwVersionHost(latest)",
		},
		{
			name: "#5: Data breaches",
			setup: func(c *ironsafe.Cluster, enforce bool) error {
				if err := basePII(c); err != nil {
					return err
				}
				if enforce {
					return c.SetAccessPolicy("read :- sessionKeyIs(consumer) & logUpdate(breach_log, K, Q)")
				}
				return c.SetAccessPolicy("read :- sessionKeyIs(consumer)")
			},
			query: "SELECT name, email FROM pii WHERE id % 7 = 0", clientKey: "consumer",
		},
	}
}

// Table3 reproduces Table 3: per-anti-pattern latency, non-secure (vcs, no
// enforcement) vs IronSafe (scs with the enforcing policy), and the overhead
// factor.
func Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, sc := range gdprScenarios() {
		nonSecure, err := table3Run(ironsafe.VanillaCS, sc, false)
		if err != nil {
			return nil, fmt.Errorf("table3 %s non-secure: %w", sc.name, err)
		}
		secure, err := table3Run(ironsafe.IronSafe, sc, true)
		if err != nil {
			return nil, fmt.Errorf("table3 %s ironsafe: %w", sc.name, err)
		}
		rows = append(rows, Table3Row{
			AntiPattern: sc.name,
			NonSecure:   nonSecure,
			IronSafe:    secure,
			Overhead:    ratio(secure, nonSecure),
		})
	}
	return rows, nil
}

func table3Run(mode ironsafe.Mode, sc gdprScenario, enforce bool) (time.Duration, error) {
	c, err := ironsafe.NewCluster(ironsafe.Config{Mode: mode})
	if err != nil {
		return 0, err
	}
	if err := sc.setup(c, enforce); err != nil {
		return 0, err
	}
	sess := c.NewSession(sc.clientKey)
	if sc.accessDate != "" {
		sess = sess.WithAccessDate(sc.accessDate)
	}
	if enforce && sc.execPolicy != "" {
		sess = sess.WithExecPolicy(sc.execPolicy)
	}
	qr, err := sess.Query(sc.query)
	if err != nil {
		return 0, err
	}
	t := qr.Stats.Cost.Total()
	if enforce {
		// The enforcing path includes the monitor control-plane work:
		// attested TLS round trip, policy interpretation, query rewriting,
		// proof signing, and audit appends.
		t += monitorControlCost
	} else {
		// The baseline still pays plain client-connection setup and query
		// delivery (the paper's non-secure rows are millisecond-scale).
		t += baselineControlCost
	}
	return t, nil
}

// Control-plane constants: both systems pay connection setup per query; the
// enforcing path additionally runs the monitor protocol.
const (
	baselineControlCost = 1500 * time.Microsecond
	monitorControlCost  = 9 * time.Millisecond
)

// Table4Row is one row of Table 4: attestation latency breakdown.
type Table4Row struct {
	Component string
	Step      string
	Time      time.Duration
}

// Attestation step costs. These model the hardware-bound steps the paper
// times (IAS round trip, TrustZone TA crypto on the Cortex-A72, normal-world
// measurement, network) around the real protocol operations this repo
// executes; the real signatures/verifications run but their laptop-scale
// wall time is not representative, so Table 4 reports the modeled values.
const (
	casResponseCost  = 140 * time.Millisecond
	teeAttestCost    = 453 * time.Millisecond
	reeMeasureCost   = 54 * time.Millisecond
	interconnectCost = 42 * time.Millisecond
)

// Table4 reproduces Table 4 by running the full attestation protocol (host
// quote + verification, storage challenge-response with certificate chain)
// and reporting the per-step latency under the attestation cost model.
func Table4() ([]Table4Row, error) {
	// Run the real protocol once to confirm every step executes.
	c, err := ironsafe.NewCluster(ironsafe.Config{Mode: ironsafe.IronSafe})
	if err != nil {
		return nil, err
	}
	if _, err := c.Storage[0].Attest([]byte("table4-challenge")); err != nil {
		return nil, err
	}
	rows := []Table4Row{
		{Component: "Host", Step: "CAS response", Time: casResponseCost},
		{Component: "Storage server", Step: "TEE", Time: teeAttestCost},
		{Component: "Storage server", Step: "REE", Time: reeMeasureCost},
		{Component: "Interconnect", Step: "", Time: interconnectCost},
		{Component: "Total", Step: "", Time: casResponseCost + teeAttestCost + reeMeasureCost + interconnectCost},
	}
	return rows, nil
}

// Table2 returns the configuration matrix (for the CLI's -exp table2).
func Table2() []string {
	return []string{
		"hons  Host-only-non-secure   split=no   security=none",
		"hos   Host-only-secure       split=no   security=SGX + secure pages",
		"vcs   Vanilla-CS             split=yes  security=none",
		"scs   IronSafe               split=yes  security=SGX + TrustZone + secure storage",
		"sos   Storage-only-secure    split=no   security=TrustZone + secure storage",
	}
}

// DefaultQueries is the evaluated query set at a workable scale.
func DefaultQueries() []int { return append([]int{}, tpch.EvaluatedQueries...) }
