// Authenticated redo journal and atomic group commit.
//
// Before this journal existed, persisting one page took four independent,
// unordered device writes (data block, meta-region leaf mirror, header, RPMB
// root anchor); a power cut between any two of them left a medium whose
// recomputed Merkle root no longer matched the anchor, indistinguishable from
// a rollback attack. The journal closes that hole with EnclaveDB-style
// trusted logging:
//
//  1. A Txn batches page writes. Commit seals every page, then writes ONE
//     journal record — sequence number, per-page record MACs, full sealed
//     records, pre- and post-state root tags — authenticated under a
//     dedicated HMAC key derived from the hardware-rooted secret.
//  2. Only after the journal record is durably on the medium do the in-place
//     writes (data blocks, leaf mirror, header) proceed, and only after those
//     does the RPMB anchor advance to the post-state tag, which binds the new
//     root, page count, AND the journal sequence number.
//  3. On reopen, recovery compares the rebuilt medium state and the journal
//     against the anchor and deterministically lands on exactly the old or
//     the new anchored state (decision table in DESIGN.md, "Durability &
//     crash consistency"). A stale journal segment, a truncated-but-
//     authenticated-looking record, or a rolled-back medium still fails
//     closed with ErrFreshness or ErrJournalCorrupt.
//
// Group commit also collapses the per-page RPMB traffic: one StoreRoot call
// per transaction instead of one per page, which is the difference between
// O(pages) and O(1) monotonic-counter advances on a bulk load.
package securestore

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"ironsafe/internal/pager"
)

// journalBlock is the reserved device address of the redo journal record.
// Exactly one record lives there at a time: the journal of the most recent
// commit. Older records are overwritten; recovery never needs more than one,
// because the anchor only ever lags the medium by a single transaction.
const journalBlock = uint32(0x7FFF_FFFE)

// journalMagic begins every journal record; a block without it is not a
// journal (e.g. the torn prefix of an interrupted journal write).
var journalMagic = []byte("ISJ1")

// ErrJournalCorrupt reports a journal record that is structurally complete
// but fails authentication — a bit flip or deliberate tamper, never a torn
// power-cut write (a torn prefix cannot include the trailing MAC and is
// classified as absent instead). Recovery fails closed on it.
var ErrJournalCorrupt = errors.New("securestore: journal record corrupt (authentication failed)")

// ErrTxnDone reports use of a transaction after Commit or Abort.
var ErrTxnDone = errors.New("securestore: transaction already finished")

// ErrStoreFailed reports an operation on a store poisoned by a failed commit:
// the medium may hold a torn transaction, so the in-memory state is no longer
// trustworthy. Reopen the store to run journal recovery.
var ErrStoreFailed = errors.New("securestore: store failed mid-commit; reopen to recover")

// journalEntry is one page image inside a journal record.
type journalEntry struct {
	Idx       uint32
	RecordMAC []byte // the per-page MAC bound into the Merkle leaf
	Record    []byte // the full sealed on-medium record (redo image)
}

// journalRecord is the unit of group commit.
type journalRecord struct {
	Seq     uint64 // post-state sequence number (pre-state seq + 1)
	PrevTag []byte // root tag of the state the commit started from
	PostTag []byte // root tag the anchor advances to
	PostN   uint32 // page count after the commit
	Entries []journalEntry
}

// encodeJournal serializes and authenticates a record under the journal key.
func (s *Store) encodeJournal(j *journalRecord) []byte {
	var b bytes.Buffer
	b.Write(journalMagic)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], j.Seq)
	b.Write(u64[:])
	b.Write(j.PrevTag)
	b.Write(j.PostTag)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], j.PostN)
	b.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(j.Entries)))
	b.Write(u32[:])
	for _, e := range j.Entries {
		binary.LittleEndian.PutUint32(u32[:], e.Idx)
		b.Write(u32[:])
		binary.LittleEndian.PutUint32(u32[:], uint32(len(e.RecordMAC)))
		b.Write(u32[:])
		b.Write(e.RecordMAC)
		binary.LittleEndian.PutUint32(u32[:], uint32(len(e.Record)))
		b.Write(u32[:])
		b.Write(e.Record)
	}
	mac := hmac.New(sha256.New, s.jnlKey)
	mac.Write(b.Bytes())
	b.Write(mac.Sum(nil))
	return b.Bytes()
}

// decodeJournal parses and authenticates a journal block. A structurally
// incomplete blob (torn write) returns (nil, nil) — recovery treats it as "no
// journal". A structurally complete blob whose MAC fails returns
// ErrJournalCorrupt — that can only be tampering, so it fails closed.
func (s *Store) decodeJournal(blob []byte) (*journalRecord, error) {
	const tagLen = sha256.Size
	if len(blob) < len(journalMagic) || !bytes.Equal(blob[:len(journalMagic)], journalMagic) {
		return nil, nil
	}
	body := blob
	pos := len(journalMagic)
	need := func(n int) bool { return pos+n <= len(body)-tagLen }
	if !need(8 + tagLen + tagLen + 4 + 4) {
		return nil, nil
	}
	j := &journalRecord{}
	j.Seq = binary.LittleEndian.Uint64(body[pos:])
	pos += 8
	j.PrevTag = append([]byte(nil), body[pos:pos+tagLen]...)
	pos += tagLen
	j.PostTag = append([]byte(nil), body[pos:pos+tagLen]...)
	pos += tagLen
	j.PostN = binary.LittleEndian.Uint32(body[pos:])
	pos += 4
	n := binary.LittleEndian.Uint32(body[pos:])
	pos += 4
	for i := uint32(0); i < n; i++ {
		var e journalEntry
		if !need(8) {
			return nil, nil
		}
		e.Idx = binary.LittleEndian.Uint32(body[pos:])
		pos += 4
		macLen := int(binary.LittleEndian.Uint32(body[pos:]))
		pos += 4
		if macLen < 0 || !need(macLen+4) {
			return nil, nil
		}
		e.RecordMAC = append([]byte(nil), body[pos:pos+macLen]...)
		pos += macLen
		recLen := int(binary.LittleEndian.Uint32(body[pos:]))
		pos += 4
		if recLen < 0 || !need(recLen) {
			return nil, nil
		}
		e.Record = append([]byte(nil), body[pos:pos+recLen]...)
		pos += recLen
		j.Entries = append(j.Entries, e)
	}
	if pos != len(body)-tagLen {
		return nil, nil // trailing garbage or short MAC: not a whole record
	}
	mac := hmac.New(sha256.New, s.jnlKey)
	mac.Write(body[:pos])
	if !hmac.Equal(mac.Sum(nil), body[pos:]) {
		return nil, ErrJournalCorrupt
	}
	return j, nil
}

// readJournal fetches and authenticates the journal block, mapping "never
// written" and "torn" to (nil, nil).
func (s *Store) readJournal() (*journalRecord, error) {
	blob, err := s.dev.ReadBlock(journalBlock)
	if errors.Is(err, pager.ErrBlockNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("securestore: reading journal: %w", err)
	}
	return s.decodeJournal(blob)
}

// Txn batches page writes for one atomic group commit. A Txn is not safe for
// concurrent use; concurrent Txns on one store are (commits serialize, and
// Allocate reserves indices atomically so they never collide).
type Txn struct {
	s     *Store
	pages map[uint32][]byte // staged plaintext page images
	done  bool
}

// Begin opens a transaction.
func (s *Store) Begin() *Txn {
	return &Txn{s: s, pages: map[uint32][]byte{}}
}

// BeginTxn implements pager.TxnStore.
func (s *Store) BeginTxn() pager.StoreTxn { return s.Begin() }

// WritePage stages a logical page write. len(data) must be <= PageSize;
// shorter pages are zero-padded at commit.
func (t *Txn) WritePage(idx uint32, data []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if len(data) > pager.PageSize {
		return fmt.Errorf("securestore: page %d write of %d bytes exceeds page size", idx, len(data))
	}
	t.pages[idx] = append([]byte(nil), data...)
	return nil
}

// Allocate reserves a fresh page index for this transaction and stages it as
// a zero page. The reservation is atomic across concurrent transactions:
// two racing Allocates can never return the same index.
func (t *Txn) Allocate() (uint32, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	s := t.s
	s.mu.Lock()
	idx := s.nextReserve
	s.nextReserve++
	s.mu.Unlock()
	t.pages[idx] = nil
	return idx, nil
}

// Abort discards the staged writes. Indices reserved by Allocate stay
// reserved; the next commit that grows past them persists them as zero pages.
func (t *Txn) Abort() { t.done = true }

// Commit seals the staged pages, writes one authenticated journal record,
// applies the in-place writes, and advances the RPMB anchor — all or nothing
// at every crash point (recovery replays or discards deterministically).
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	if len(t.pages) == 0 {
		return nil
	}
	s := t.s

	// Seal outside the store lock: sealing touches only immutable keys.
	idxs := make([]uint32, 0, len(t.pages))
	maxIdx := uint32(0)
	for idx := range t.pages {
		idxs = append(idxs, idx)
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	entries := make([]journalEntry, 0, len(idxs))
	for _, idx := range idxs {
		plain := make([]byte, pager.PageSize)
		copy(plain, t.pages[idx])
		record, recordMAC, err := s.sealPage(idx, plain)
		if err != nil {
			return err
		}
		entries = append(entries, journalEntry{Idx: idx, RecordMAC: recordMAC, Record: record})
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return fmt.Errorf("%w: %w", ErrStoreFailed, s.failed)
	}

	// Gap-fill: indices reserved (by this or an aborted transaction) below
	// the new high-water mark but never written become real sealed zero
	// pages, so the persisted leaf set is always dense and reopenable.
	oldN := s.nextAlloc
	newN := oldN
	if maxIdx+1 > newN {
		newN = maxIdx + 1
	}
	for idx := oldN; idx < newN; idx++ {
		if _, staged := t.pages[idx]; staged {
			continue
		}
		//ironsafe:allow lockcrypto -- gap-fill seals only reserved-but-unwritten zero pages, bounded by the reservation high-water mark
		record, recordMAC, err := s.sealPage(idx, make([]byte, pager.PageSize))
		if err != nil {
			return err
		}
		entries = append(entries, journalEntry{Idx: idx, RecordMAC: recordMAC, Record: record})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Idx < entries[j].Idx })

	prevTag := s.rootTag()

	// Update the in-memory tree to the post-state.
	if int(newN) > len(s.levels[0]) {
		grown := make([][]byte, newN)
		copy(grown, s.levels[0])
		s.levels[0] = grown
	}
	for _, e := range entries {
		s.levels[0][e.Idx] = s.leafHash(e.Idx, e.RecordMAC)
	}
	if newN > oldN && oldN > 0 {
		// Growth can shift the child range of the boundary node; refresh
		// the old tail's parent chain before the new leaves'.
		s.updatePath(int(oldN) - 1)
	}
	for _, e := range entries {
		s.updatePath(int(e.Idx))
	}
	s.nextAlloc = newN
	if s.nextReserve < newN {
		s.nextReserve = newN
	}
	s.seq++
	// Drop verified marks only for subtrees this transaction actually
	// touched: the ancestors of every written leaf, plus the old tail leaf's
	// path when growth changed the boundary node's child range. The gap-fill
	// above makes entries dense over [oldN, newN), so together these cover
	// every internal node whose value changed; unrelated subtrees stay warm
	// across commits. (Recovery and rebuild still reset the whole map — see
	// readMediumState.)
	if len(s.verified) > 0 {
		for _, e := range entries {
			s.invalidatePath(int(e.Idx))
		}
		if newN > oldN && oldN > 0 {
			s.invalidatePath(int(oldN) - 1)
		}
	}
	if s.cache != nil {
		for _, e := range entries {
			s.cache.invalidate(e.Idx)
		}
	}
	postTag := s.rootTag()

	// Journal first: once this write completes the transaction is durable;
	// a crash at any later point replays it from here.
	jrec := &journalRecord{Seq: s.seq, PrevTag: prevTag, PostTag: postTag, PostN: newN, Entries: entries}
	//ironsafe:allow journalbypass -- this IS the journal commit write
	if err := s.dev.WriteBlock(journalBlock, s.encodeJournal(jrec)); err != nil {
		s.failed = err
		return fmt.Errorf("securestore: journal write: %w", err)
	}
	if err := s.applyEntries(jrec); err != nil {
		s.failed = err
		return err
	}
	s.meter.PagesWritten.Add(int64(len(entries)))
	s.meter.PagesEncrypted.Add(int64(len(entries)))
	// One anchor advance per transaction — the group-commit win.
	if err := s.anchorRoot(); err != nil {
		s.failed = err
		return err
	}
	return nil
}

// applyEntries performs the in-place writes of a journal record: data blocks,
// meta-region leaf mirror (batched one write per meta block), and the header.
// It is the shared redo path of commit and crash recovery, and must stay
// idempotent: recovery may re-run it over a partially applied medium.
func (s *Store) applyEntries(j *journalRecord) error {
	for _, e := range j.Entries {
		//ironsafe:allow journalbypass -- in-place data write ordered after the journal record
		if err := s.dev.WriteBlock(e.Idx, e.Record); err != nil {
			return fmt.Errorf("securestore: page %d write: %w", e.Idx, err)
		}
	}
	// Group leaves by meta block so each block is read-modified-written once.
	byBlock := map[uint32][]journalEntry{}
	for _, e := range j.Entries {
		blk := metaBase + e.Idx/leavesPerMetaBlock
		byBlock[blk] = append(byBlock[blk], e)
	}
	blks := make([]uint32, 0, len(byBlock))
	for blk := range byBlock {
		blks = append(blks, blk)
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
	for _, blk := range blks {
		buf, err := s.dev.ReadBlock(blk)
		if errors.Is(err, pager.ErrBlockNotFound) {
			buf = make([]byte, pager.PageSize)
		} else if err != nil {
			return fmt.Errorf("securestore: meta block %d: %w", blk, err)
		}
		if len(buf) < pager.PageSize {
			buf = append(buf, make([]byte, pager.PageSize-len(buf))...)
		}
		for _, e := range byBlock[blk] {
			off := int(e.Idx%leavesPerMetaBlock) * nodeSize
			copy(buf[off:off+nodeSize], s.leafHash(e.Idx, e.RecordMAC))
		}
		//ironsafe:allow journalbypass -- leaf-mirror write ordered after the journal record
		if err := s.dev.WriteBlock(blk, buf); err != nil {
			return fmt.Errorf("securestore: meta block %d write: %w", blk, err)
		}
	}
	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hdr[0:4], j.PostN)
	binary.LittleEndian.PutUint64(hdr[4:12], j.Seq)
	//ironsafe:allow journalbypass -- header write ordered after the journal record
	if err := s.dev.WriteBlock(headerBlock, hdr); err != nil {
		return fmt.Errorf("securestore: header write: %w", err)
	}
	return nil
}

// recoverState runs the crash-vs-rollback decision procedure at open time.
// The medium state has already been loaded into s (tree, nextAlloc, seq); the
// anchored tag is in anchored. Exactly one of four outcomes results:
//
//	medium == anchor, no bridging journal   -> old state, journal discarded
//	medium == anchor, journal seq == seq+1
//	  and journal.prev == anchor            -> redo (commit was durable but
//	                                           unanchored), anchor advances
//	medium != anchor, journal.prev == anchor-> redo from crash point,
//	                                           anchor advances
//	medium != anchor, journal.post == anchor-> redo restores the already-
//	                                           anchored state
//
// Anything else fails closed with ErrFreshness — a stale or tampered journal
// is never replayed. Authentication gates replay only: a MAC-failing journal
// is DISCARDED when the medium already matches the anchor (a torn journal
// write during a power cut can be byte-indistinguishable from a bit flip, and
// the anchored state needs nothing from the journal), but when the medium
// does not match the anchor the journal is the only bridge, so the same
// failure surfaces as ErrFreshness wrapping ErrJournalCorrupt.
func (s *Store) recoverState(anchored []byte) error {
	jrec, jerr := s.readJournal()
	mediumTag := s.rootTag()
	if hmac.Equal(anchored, mediumTag) {
		if jrec != nil && jrec.Seq == s.seq+1 && hmac.Equal(jrec.PrevTag, mediumTag) {
			return s.redo(jrec, true)
		}
		return nil
	}
	if jerr != nil {
		return fmt.Errorf("%w: medium does not match anchor and %w", ErrFreshness, jerr)
	}
	if jrec != nil && hmac.Equal(jrec.PrevTag, anchored) {
		return s.redo(jrec, true)
	}
	if jrec != nil && hmac.Equal(jrec.PostTag, anchored) {
		// The commit anchored but the medium was rewound to its pre-state;
		// replaying lands exactly on the anchored state, so the rewind
		// achieved nothing.
		return s.redo(jrec, false)
	}
	return ErrFreshness
}

// redo replays a journal record onto the medium, reloads, and verifies the
// result against the record's post-state tag; advance then moves the anchor
// forward. Redo is idempotent — a crash during recovery just reruns it.
func (s *Store) redo(j *journalRecord, advance bool) error {
	if err := s.applyEntries(j); err != nil {
		return err
	}
	if err := s.readMediumState(); err != nil {
		return err
	}
	if !hmac.Equal(s.rootTag(), j.PostTag) {
		return fmt.Errorf("%w: journal replay did not reproduce the recorded post-state", ErrFreshness)
	}
	if advance {
		if err := s.anchorRoot(); err != nil {
			return err
		}
	}
	return s.checkRootAnchor()
}
