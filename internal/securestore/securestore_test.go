package securestore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ironsafe/internal/pager"
	"ironsafe/internal/simtime"
	"ironsafe/internal/tee/trustzone"
)

// testEnv is a booted storage device plus an empty medium.
type testEnv struct {
	dev   *pager.MemDevice
	nw    *trustzone.NormalWorld
	meter *simtime.Meter
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	vendor, err := trustzone.NewVendor("acme")
	if err != nil {
		t.Fatal(err)
	}
	device, err := trustzone.NewDevice("storage-01", vendor)
	if err != nil {
		t.Fatal(err)
	}
	atf := vendor.SignImage("atf", "2.4", []byte("atf"))
	tos := vendor.SignImage("optee", "3.4", []byte("optee"))
	nwImg := trustzone.FirmwareImage{Name: "nw", Version: "1.0", Code: []byte("storage stack")}
	var m simtime.Meter
	_, nw, err := device.Boot(atf, tos, nwImg, &m)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{dev: pager.NewMemDevice(), nw: nw, meter: &m}
}

func (e *testEnv) open(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(e.dev, e.nw, e.meter, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteReadRoundTrip(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	idx, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("sensitive customer record")
	if err := s.WritePage(idx, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPage(idx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, payload) || len(got) != pager.PageSize {
		t.Errorf("read back %d bytes, prefix %q", len(got), got[:8])
	}
}

func TestCiphertextHidesPlaintext(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	idx, _ := s.Allocate()
	secret := []byte("TOP-SECRET-PAYLOAD-0123456789")
	s.WritePage(idx, secret)
	raw, err := e.dev.ReadBlock(idx)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, secret) {
		t.Error("plaintext visible on the untrusted medium")
	}
}

func TestManyPagesRoundTrip(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	const n = 80
	for i := 0; i < n; i++ {
		idx, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WritePage(idx, []byte(fmt.Sprintf("page-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumPages() != n {
		t.Errorf("NumPages = %d", s.NumPages())
	}
	for i := uint32(0); i < n; i++ {
		got, err := s.ReadPage(i)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		want := fmt.Sprintf("page-%03d", i)
		if !bytes.HasPrefix(got, []byte(want)) {
			t.Fatalf("page %d contents %q", i, got[:8])
		}
	}
}

func TestOverwritePage(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	idx, _ := s.Allocate()
	s.WritePage(idx, []byte("v1"))
	s.WritePage(idx, []byte("v2"))
	got, err := s.ReadPage(idx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("v2")) {
		t.Errorf("overwrite lost: %q", got[:2])
	}
}

func TestReadUnallocatedPage(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	if _, err := s.ReadPage(0); err == nil {
		t.Error("read of unallocated page accepted")
	}
}

func TestTamperedCiphertextDetected(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	idx, _ := s.Allocate()
	s.WritePage(idx, []byte("data"))
	// Flip a bit in the middle of the ciphertext.
	if err := e.dev.Corrupt(idx, ivSize+100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadPage(idx); !errors.Is(err, ErrIntegrity) {
		t.Errorf("tampered page read = %v, want ErrIntegrity", err)
	}
}

func TestTamperedIVDetected(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	idx, _ := s.Allocate()
	s.WritePage(idx, []byte("data"))
	e.dev.Corrupt(idx, 0) // first IV byte
	if _, err := s.ReadPage(idx); !errors.Is(err, ErrIntegrity) {
		t.Errorf("tampered IV read = %v", err)
	}
}

func TestTamperedMACDetected(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	idx, _ := s.Allocate()
	s.WritePage(idx, []byte("data"))
	e.dev.Corrupt(idx, recordSize-1)
	if _, err := s.ReadPage(idx); !errors.Is(err, ErrIntegrity) {
		t.Errorf("tampered MAC read = %v", err)
	}
}

func TestPageTransplantDetected(t *testing.T) {
	// Copying page A's (valid) record over page B must be detected because
	// the page index is bound into the MAC.
	e := newEnv(t)
	s := e.open(t, Options{})
	a, _ := s.Allocate()
	b, _ := s.Allocate()
	s.WritePage(a, []byte("A"))
	s.WritePage(b, []byte("B"))
	recA, _ := e.dev.ReadBlock(a)
	e.dev.WriteBlock(b, recA)
	if _, err := s.ReadPage(b); !errors.Is(err, ErrIntegrity) {
		t.Errorf("transplanted page read = %v", err)
	}
}

func TestStalePageReplayDetected(t *testing.T) {
	// Replaying an old (validly MACed) version of the same page must be
	// caught by the Merkle freshness check: the leaf no longer matches.
	e := newEnv(t)
	s := e.open(t, Options{})
	idx, _ := s.Allocate()
	s.WritePage(idx, []byte("v1"))
	old, _ := e.dev.ReadBlock(idx)
	s.WritePage(idx, []byte("v2"))
	e.dev.WriteBlock(idx, old) // roll the single page back
	if _, err := s.ReadPage(idx); !errors.Is(err, ErrIntegrity) {
		t.Errorf("stale page read = %v, want integrity/freshness error", err)
	}
}

func TestWholeMediumRollbackDetectedAtOpen(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	idx, _ := s.Allocate()
	s.WritePage(idx, []byte("v1"))
	snap := e.dev.SnapshotBlocks() // attacker snapshots the whole medium
	s.WritePage(idx, []byte("v2"))
	e.dev.RestoreBlocks(snap) // ... and rolls everything back

	if _, err := Open(e.dev, e.nw, e.meter, Options{}); !errors.Is(err, ErrFreshness) {
		t.Errorf("rolled-back medium open = %v, want ErrFreshness", err)
	}
}

func TestReopenFreshMediumSucceeds(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	for i := 0; i < 10; i++ {
		idx, _ := s.Allocate()
		s.WritePage(idx, []byte{byte(i)})
	}
	s2, err := Open(e.dev, e.nw, e.meter, Options{})
	if err != nil {
		t.Fatalf("legitimate reopen failed: %v", err)
	}
	got, err := s2.ReadPage(7)
	if err != nil || got[0] != 7 {
		t.Errorf("reopened read = %v, %v", got[:1], err)
	}
	if err := s2.VerifyAll(); err != nil {
		t.Errorf("VerifyAll after reopen: %v", err)
	}
}

func TestMetersCharged(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	base := e.meter.Snapshot()
	idx, _ := s.Allocate()
	s.WritePage(idx, []byte("x"))
	s.ReadPage(idx)
	d := e.meter.Snapshot().Sub(base)
	if d.PagesEncrypted < 1 || d.PagesDecrypted != 1 {
		t.Errorf("crypto counters: %+v", d)
	}
	if d.MerkleVerifies != 1 || d.MerkleHashes < 1 {
		t.Errorf("merkle counters: %+v", d)
	}
	if d.RPMBWrites < 1 {
		t.Errorf("rpmb counters: %+v", d)
	}
}

func TestFreshnessCostGrowsWithTreeDepth(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	for i := 0; i < 64; i++ {
		idx, _ := s.Allocate()
		s.WritePage(idx, []byte{byte(i)})
	}
	base := e.meter.Snapshot()
	s.ReadPage(0)
	hashes := e.meter.Snapshot().Sub(base).MerkleHashes
	// Binary tree over 64 leaves: depth 6, so leaf + 6 internal checks.
	if hashes != 7 {
		t.Errorf("verification hashes = %d, want 7", hashes)
	}
}

func TestWideArityReducesDepth(t *testing.T) {
	eBin := newEnv(t)
	sBin := eBin.open(t, Options{Arity: 2})
	eWide := newEnv(t)
	sWide := eWide.open(t, Options{Arity: 16})
	for i := 0; i < 64; i++ {
		i1, _ := sBin.Allocate()
		sBin.WritePage(i1, []byte{byte(i)})
		i2, _ := sWide.Allocate()
		sWide.WritePage(i2, []byte{byte(i)})
	}
	b1 := eBin.meter.Snapshot()
	sBin.ReadPage(0)
	binHashes := eBin.meter.Snapshot().Sub(b1).MerkleHashes
	b2 := eWide.meter.Snapshot()
	sWide.ReadPage(0)
	wideHashes := eWide.meter.Snapshot().Sub(b2).MerkleHashes
	if wideHashes >= binHashes {
		t.Errorf("arity 16 path (%d hashes) should be shorter than binary (%d)", wideHashes, binHashes)
	}
}

func TestVerifiedSubtreeCacheReducesHashes(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{CacheVerifiedSubtrees: true})
	for i := 0; i < 64; i++ {
		idx, _ := s.Allocate()
		s.WritePage(idx, []byte{byte(i)})
	}
	base := e.meter.Snapshot()
	s.ReadPage(0)
	first := e.meter.Snapshot().Sub(base).MerkleHashes
	base = e.meter.Snapshot()
	s.ReadPage(1) // shares the full path above the leaf pair
	second := e.meter.Snapshot().Sub(base).MerkleHashes
	if second >= first {
		t.Errorf("cached verify (%d) should be cheaper than first (%d)", second, first)
	}
	// A write invalidates exactly the written page's ancestor path: the
	// written subtree pays the full path again, while unrelated verified
	// subtrees stay warm across the commit (see journal.go, Commit).
	s.WritePage(5, []byte("new"))
	base = e.meter.Snapshot()
	s.ReadPage(1) // disjoint from page 5 below the invalidated ancestors
	warm := e.meter.Snapshot().Sub(base).MerkleHashes
	if warm >= first {
		t.Errorf("unrelated subtree went cold after commit: %d hashes, first=%d", warm, first)
	}
	base = e.meter.Snapshot()
	s.ReadPage(4) // sibling of the written page: its whole path was dropped
	third := e.meter.Snapshot().Sub(base).MerkleHashes
	if third < first {
		t.Errorf("post-write verify (%d) should pay full path again (first=%d)", third, first)
	}
	// Cache must not mask tampering of a page never yet verified.
	if err := e.dev.Corrupt(40, ivSize+10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadPage(40); !errors.Is(err, ErrIntegrity) {
		t.Errorf("cache masked tampering: %v", err)
	}
}

func TestGCMModeRoundTripAndTamper(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{GCM: true})
	idx, _ := s.Allocate()
	s.WritePage(idx, []byte("gcm payload"))
	got, err := s.ReadPage(idx)
	if err != nil || !bytes.HasPrefix(got, []byte("gcm payload")) {
		t.Fatalf("gcm roundtrip: %v", err)
	}
	e.dev.Corrupt(idx, 20)
	if _, err := s.ReadPage(idx); !errors.Is(err, ErrIntegrity) {
		t.Errorf("gcm tamper = %v", err)
	}
	raw, _ := e.dev.ReadBlock(idx)
	if bytes.Contains(raw, []byte("gcm payload")) {
		t.Error("gcm plaintext leaked")
	}
}

func TestOversizeWriteRejected(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	if err := s.WritePage(0, make([]byte, pager.PageSize+1)); err == nil {
		t.Error("oversized write accepted")
	}
}

func TestRandomizedReadbackProperty(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	rng := rand.New(rand.NewSource(11))
	shadow := map[uint32][]byte{}
	for i := 0; i < 30; i++ {
		idx, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		shadow[idx] = nil
	}
	for op := 0; op < 200; op++ {
		idx := uint32(rng.Intn(30))
		if rng.Intn(2) == 0 {
			data := make([]byte, rng.Intn(512))
			rng.Read(data)
			if err := s.WritePage(idx, data); err != nil {
				t.Fatal(err)
			}
			shadow[idx] = data
		} else {
			got, err := s.ReadPage(idx)
			if err != nil {
				t.Fatalf("op %d read %d: %v", op, idx, err)
			}
			want := shadow[idx]
			if !bytes.HasPrefix(got, want) {
				t.Fatalf("op %d page %d mismatch", op, idx)
			}
		}
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestNonSequentialWriteWithinSession(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	for i := 0; i < 5; i++ {
		idx, _ := s.Allocate()
		s.WritePage(idx, []byte{byte(i)})
	}
	// Overwrite a middle page, then verify every page still checks out.
	if err := s.WritePage(2, []byte("mid")); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 5; i++ {
		if _, err := s.ReadPage(i); err != nil {
			t.Fatalf("page %d after mid-write: %v", i, err)
		}
	}
}

func TestOpenRequiresMeter(t *testing.T) {
	e := newEnv(t)
	if _, err := Open(e.dev, e.nw, nil, Options{}); err == nil {
		t.Error("nil meter accepted")
	}
}

func TestForkedReplicaDetected(t *testing.T) {
	// Fork attack (§3.3): the adversary copies the medium, lets the
	// legitimate store advance, then presents the forked replica. The
	// replica's Merkle root no longer matches the RPMB anchor, whose
	// monotonic counter the attacker cannot rewind.
	e := newEnv(t)
	s := e.open(t, Options{})
	idx, _ := s.Allocate()
	s.WritePage(idx, []byte("v1"))
	fork := e.dev.SnapshotBlocks() // adversary forks the medium here
	s.WritePage(idx, []byte("v2")) // legitimate history advances

	replica := pager.NewMemDevice()
	replica.RestoreBlocks(fork)
	if _, err := Open(replica, e.nw, e.meter, Options{}); !errors.Is(err, ErrFreshness) {
		t.Errorf("forked replica open = %v, want ErrFreshness", err)
	}
}

func TestMetaRegionTamperDetectedAtOpen(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	for i := 0; i < 8; i++ {
		idx, _ := s.Allocate()
		s.WritePage(idx, []byte{byte(i)})
	}
	// Corrupt a leaf hash in the meta region (block metaBase).
	if err := e.dev.Corrupt(metaBase, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(e.dev, e.nw, e.meter, Options{}); !errors.Is(err, ErrFreshness) {
		t.Errorf("tampered meta region open = %v, want ErrFreshness", err)
	}
}

func TestHeaderTamperDetectedAtOpen(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	for i := 0; i < 4; i++ {
		idx, _ := s.Allocate()
		s.WritePage(idx, []byte{byte(i)})
	}
	// Shrink the claimed page count (suppressing recent pages). The last
	// commit's journal record still bridges to the anchored state, so
	// recovery repairs the header by redo and lands on the true state —
	// the tamper achieves nothing.
	hdr := make([]byte, 4)
	hdr[0] = 2
	e.dev.WriteBlock(headerBlock, hdr)
	s2, err := Open(e.dev, e.nw, e.meter, Options{})
	if err != nil {
		t.Fatalf("header tamper with intact journal: %v", err)
	}
	if s2.NumPages() != 4 {
		t.Errorf("repaired store has %d pages, want 4", s2.NumPages())
	}
	if got, err := s2.ReadPage(3); err != nil || got[0] != 3 {
		t.Errorf("suppressed page not restored: %v %v", got[:1], err)
	}

	// With the journal destroyed too, nothing bridges the mismatch: the
	// open must fail closed.
	e.dev.WriteBlock(headerBlock, hdr)
	e.dev.WriteBlock(journalBlock, []byte("not a journal"))
	if _, err := Open(e.dev, e.nw, e.meter, Options{}); !errors.Is(err, ErrFreshness) {
		t.Errorf("truncated header open = %v, want ErrFreshness", err)
	}
}
