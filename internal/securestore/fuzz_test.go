package securestore

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
)

// FuzzDecodeManifest feeds arbitrary bytes to the rebuild-manifest parser.
// Contract: no panic, and any blob the parser accepts must re-encode to the
// exact input — the codec admits only canonical encodings, so a forged
// manifest cannot smuggle unparsed bytes past the target's verification.
func FuzzDecodeManifest(f *testing.F) {
	f.Add(EncodeManifest(&RebuildManifest{}))
	one := &RebuildManifest{Seq: 7}
	h := sha256.Sum256([]byte("page-0"))
	one.PageHashes = append(one.PageHashes, h[:])
	f.Add(EncodeManifest(one))
	three := &RebuildManifest{Seq: 1 << 40}
	for i := 0; i < 3; i++ {
		hh := sha256.Sum256([]byte{byte(i)})
		three.PageHashes = append(three.PageHashes, hh[:])
	}
	f.Add(EncodeManifest(three))
	f.Add([]byte("ISRM"))                                                 // header only
	f.Add(append(EncodeManifest(one), 0x00))                              // trailing byte
	f.Add([]byte("ISRMxxxxxxxx\xff\xff\xff\xff"))                         // forged giant count
	f.Add([]byte("MRSI\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")) // wrong magic

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			if !errors.Is(err, ErrRebuildMismatch) {
				t.Fatalf("decode error is not typed: %v", err)
			}
			return
		}
		if !bytes.Equal(EncodeManifest(m), data) {
			t.Fatalf("accepted manifest (%d hashes) does not round-trip", len(m.PageHashes))
		}
	})
}

// fuzzJournalStore builds a store with only the journal key populated — all
// decodeJournal touches.
func fuzzJournalStore() *Store {
	key := sha256.Sum256([]byte("journal-fuzz-key"))
	return &Store{jnlKey: key[:]}
}

// FuzzDecodeJournal feeds arbitrary bytes to the redo-journal parser under a
// fixed journal key. Contract: no panic; the only errors are nil (absent or
// torn — recovery ignores the journal) and ErrJournalCorrupt (structurally
// complete, authentication failed — recovery fails closed); and an accepted
// record must re-encode to the exact input, so the authenticated encoding is
// canonical.
func FuzzDecodeJournal(f *testing.F) {
	s := fuzzJournalStore()
	tag := func(seed string) []byte {
		h := sha256.Sum256([]byte(seed))
		return h[:]
	}
	empty := &journalRecord{Seq: 1, PrevTag: tag("prev"), PostTag: tag("post"), PostN: 0}
	f.Add(s.encodeJournal(empty))
	rec := &journalRecord{Seq: 42, PrevTag: tag("a"), PostTag: tag("b"), PostN: 2, Entries: []journalEntry{
		{Idx: 0, RecordMAC: tag("mac0"), Record: []byte("sealed-page-record-0")},
		{Idx: 1, RecordMAC: tag("mac1"), Record: bytes.Repeat([]byte{0xC3}, 128)},
	}}
	genuine := s.encodeJournal(rec)
	f.Add(genuine)
	f.Add(genuine[:len(genuine)/2]) // torn write: prefix only
	flipped := append([]byte(nil), genuine...)
	flipped[len(journalMagic)+3] ^= 0x80
	f.Add(flipped) // complete but tampered
	f.Add([]byte("ISJ1"))
	f.Add([]byte("not a journal"))

	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := s.decodeJournal(data)
		if err != nil {
			if !errors.Is(err, ErrJournalCorrupt) {
				t.Fatalf("decode error is not nil or ErrJournalCorrupt: %v", err)
			}
			return
		}
		if j == nil {
			return // absent or torn
		}
		if !bytes.Equal(s.encodeJournal(j), data) {
			t.Fatalf("accepted journal record (seq %d, %d entries) does not round-trip", j.Seq, len(j.Entries))
		}
	})
}
