// Attested replica rebuild: anti-entropy export/import between two secure
// stores that share no keys.
//
// A quarantined store (rollback, torn state, corruption) cannot be repaired
// in place — its medium no longer bridges to its RPMB anchor — but it can be
// rebuilt from a healthy replica. Sealed records never transfer: every
// device seals under its own HUK-derived keys, so the donor exports verified
// PLAINTEXT pages (each read re-checked against the donor's anchored Merkle
// root) plus a manifest of SHA-256 content hashes, and the target re-seals
// each received page under its own keys through the ordinary journaled
// group-commit path. Transit confidentiality/integrity is the AEAD channel's
// job; end-state integrity is re-checked page by page against the manifest
// and sealed by the target's own anchor.
//
// Half-admission is prevented by an on-medium rebuild marker: BeginImport
// persists it (authenticated under the journal key) before the first page
// lands, VerifyAll refuses with ErrRebuilding while it is present, and only
// FinalizeImport — after re-verifying every page against the manifest and
// adopting the donor's commit seq through a journaled zero-entry record —
// clears it. A crash at any point leaves the target either resumable
// (marker + consistent prefix) or refused outright; never readmittable with
// divergent state.
package securestore

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"ironsafe/internal/pager"
	"ironsafe/internal/simtime"
	"ironsafe/internal/tee/trustzone"
)

// rebuildMarkerBlock is the reserved device address of the rebuild marker,
// below the journal block. Non-empty contents mean an import is in flight.
const rebuildMarkerBlock = uint32(0x7FFF_FFFD)

// rebuildMagic begins every rebuild marker.
var rebuildMagic = []byte("ISRB")

// ErrRebuilding reports a store whose medium carries a rebuild marker: a
// partial import from a donor replica that must finish (or be wiped) before
// the store can pass an integrity sweep.
var ErrRebuilding = errors.New("securestore: rebuild in progress; store cannot be verified")

// ErrRebuildMismatch reports imported content that does not match the donor
// manifest — a corrupted transfer or a manifest/page desync.
var ErrRebuildMismatch = errors.New("securestore: rebuild content does not match donor manifest")

// RebuildManifest describes a donor's committed state: per-page SHA-256
// content hashes of the plaintext pages, and the donor's commit sequence
// number the target adopts at finalize.
type RebuildManifest struct {
	Seq        uint64
	PageHashes [][]byte
}

// NumPages is the donor's committed page count.
func (m *RebuildManifest) NumPages() uint32 { return uint32(len(m.PageHashes)) }

// ContentRoot binds the manifest into one digest: the identity of the state
// being transferred, persisted in the target's rebuild marker so a resumed
// rebuild can tell "same donor state" from "start over".
func (m *RebuildManifest) ContentRoot() []byte {
	h := sha256.New()
	h.Write([]byte("ironsafe-rebuild-v1|"))
	var b [12]byte
	binary.LittleEndian.PutUint64(b[0:8], m.Seq)
	binary.LittleEndian.PutUint32(b[8:12], m.NumPages())
	h.Write(b[:])
	for _, ph := range m.PageHashes {
		h.Write(ph)
	}
	return h.Sum(nil)
}

// EncodeManifest serializes a manifest for transfer. The encoding carries no
// own MAC: manifests travel only over the monitor-keyed AEAD channel, and
// the target independently re-verifies every page against it anyway.
func EncodeManifest(m *RebuildManifest) []byte {
	var b bytes.Buffer
	b.Write([]byte("ISRM"))
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], m.Seq)
	b.Write(u64[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], m.NumPages())
	b.Write(u32[:])
	for _, ph := range m.PageHashes {
		b.Write(ph)
	}
	return b.Bytes()
}

// DecodeManifest parses an encoded manifest.
func DecodeManifest(blob []byte) (*RebuildManifest, error) {
	if len(blob) < 16 || !bytes.Equal(blob[:4], []byte("ISRM")) {
		return nil, fmt.Errorf("%w: bad manifest header", ErrRebuildMismatch)
	}
	m := &RebuildManifest{Seq: binary.LittleEndian.Uint64(blob[4:12])}
	n := binary.LittleEndian.Uint32(blob[12:16])
	if uint64(len(blob)) != 16+uint64(n)*nodeSize {
		return nil, fmt.Errorf("%w: manifest length %d does not carry %d hashes", ErrRebuildMismatch, len(blob), n)
	}
	for i := uint32(0); i < n; i++ {
		off := 16 + int(i)*nodeSize
		m.PageHashes = append(m.PageHashes, append([]byte(nil), blob[off:off+nodeSize]...))
	}
	return m, nil
}

// readPageLocked reads, authenticates, decrypts, and freshness-checks one
// page with s.mu already held. It is the under-lock twin of ReadPage, used
// by the export/diff/finalize paths so a whole walk sees one consistent
// committed state (holding the lock blocks commits, which need it
// end-to-end).
func (s *Store) readPageLocked(idx uint32) ([]byte, error) {
	record, err := s.dev.ReadBlock(idx)
	if err != nil {
		return nil, err
	}
	s.meter.PagesRead.Add(1)
	plain, recordMAC, err := s.openPage(idx, record)
	if err != nil {
		return nil, err
	}
	s.meter.PagesDecrypted.Add(1)
	if err := s.verifyPath(idx, recordMAC); err != nil {
		return nil, err
	}
	return plain, nil
}

// ExportManifest walks the donor's committed pages — each re-verified
// against the anchored root on the way — and returns the manifest a target
// rebuilds from. The store lock is held across the whole walk, so the
// manifest always describes one transaction-boundary state.
func (s *Store) ExportManifest() (*RebuildManifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return nil, fmt.Errorf("%w: %w", ErrStoreFailed, s.failed)
	}
	if s.rebuilding {
		return nil, fmt.Errorf("%w: a mid-rebuild store cannot donate", ErrRebuilding)
	}
	if err := s.checkRootAnchor(); err != nil {
		return nil, err
	}
	m := &RebuildManifest{Seq: s.seq, PageHashes: make([][]byte, 0, s.nextAlloc)}
	for i := uint32(0); i < s.nextAlloc; i++ {
		plain, err := s.readPageLocked(i)
		if err != nil {
			return nil, fmt.Errorf("securestore: exporting manifest for page %d: %w", i, err)
		}
		h := sha256.Sum256(plain)
		m.PageHashes = append(m.PageHashes, h[:])
	}
	return m, nil
}

// ExportPages returns the verified plaintext of pages [start, start+count).
func (s *Store) ExportPages(start, count uint32) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return nil, fmt.Errorf("%w: %w", ErrStoreFailed, s.failed)
	}
	if s.rebuilding {
		return nil, fmt.Errorf("%w: a mid-rebuild store cannot donate", ErrRebuilding)
	}
	if start+count < start || start+count > s.nextAlloc {
		return nil, fmt.Errorf("securestore: export range [%d,%d) exceeds %d pages", start, start+count, s.nextAlloc)
	}
	pages := make([][]byte, 0, count)
	for i := start; i < start+count; i++ {
		plain, err := s.readPageLocked(i)
		if err != nil {
			return nil, fmt.Errorf("securestore: exporting page %d: %w", i, err)
		}
		pages = append(pages, plain)
	}
	return pages, nil
}

// DiffManifest compares the store's committed pages against a donor
// manifest and returns the indices that still need transfer (missing pages,
// or pages whose content hash differs). A store holding MORE pages than the
// manifest cannot converge by appending and reports ErrRebuildMismatch — the
// caller wipes and restarts.
func (s *Store) DiffManifest(m *RebuildManifest) ([]uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return nil, fmt.Errorf("%w: %w", ErrStoreFailed, s.failed)
	}
	if s.nextAlloc > m.NumPages() {
		return nil, fmt.Errorf("%w: local store has %d pages, manifest %d", ErrRebuildMismatch, s.nextAlloc, m.NumPages())
	}
	var need []uint32
	for i := uint32(0); i < m.NumPages(); i++ {
		if i >= s.nextAlloc {
			need = append(need, i)
			continue
		}
		plain, err := s.readPageLocked(i)
		if err != nil {
			need = append(need, i)
			continue
		}
		h := sha256.Sum256(plain)
		if !bytes.Equal(h[:], m.PageHashes[i]) {
			need = append(need, i)
		}
	}
	return need, nil
}

// OpenRebuild is OpenRebuildWith over the TrustZone key source and RPMB
// anchor — the storage node's configuration.
func OpenRebuild(dev pager.BlockDevice, nw *trustzone.NormalWorld, meter *simtime.Meter, opts Options) (*Store, error) {
	return OpenRebuildWith(dev, TZKeySource{NW: nw}, RPMBAnchor{NW: nw, Slot: opts.RPMBSlot}, meter, opts)
}

// OpenRebuildWith opens a store for rebuild: a medium that loads cleanly
// (including mid-rebuild media, whose chunk imports went through the normal
// journal path) opens normally for DiffManifest-based resume, and exactly
// one failure shape is additionally tolerated — a fully wiped medium under a
// stale anchor, the administrative wipe that begins a from-scratch rebuild.
// In that case the store comes up empty WITHOUT touching the anchor: only
// journaled import commits ever move it, so a crash between wipe and first
// import still fails closed on the next ordinary open.
func OpenRebuildWith(dev pager.BlockDevice, keys KeySource, anchor RootAnchor, meter *simtime.Meter, opts Options) (*Store, error) {
	s, err := newStore(dev, keys, anchor, meter, opts)
	if err != nil {
		return nil, err
	}
	loadErr := s.load()
	if loadErr == nil {
		return s, nil
	}
	if !errors.Is(loadErr, ErrFreshness) {
		return nil, loadErr
	}
	if _, herr := dev.ReadBlock(headerBlock); !errors.Is(herr, pager.ErrBlockNotFound) {
		return nil, loadErr
	}
	if _, jerr := dev.ReadBlock(journalBlock); !errors.Is(jerr, pager.ErrBlockNotFound) {
		return nil, loadErr
	}
	s.nextAlloc, s.nextReserve, s.seq = 0, 0, 0
	s.rebuildLevels(nil)
	s.verified = map[[2]int]bool{}
	s.rebuilding, s.markerRoot = false, nil
	s.failed = nil
	return s, nil
}

// Rebuilding reports whether the on-medium rebuild marker is present.
func (s *Store) Rebuilding() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuilding
}

// RebuildRoot returns the content root recorded in the rebuild marker (nil
// when no authenticated marker is present).
func (s *Store) RebuildRoot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.markerRoot...)
}

// BeginImport persists the rebuild marker for m's content root. From this
// write until FinalizeImport clears it, VerifyAll refuses the store — the
// half-admission guard.
func (s *Store) BeginImport(m *RebuildManifest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return fmt.Errorf("%w: %w", ErrStoreFailed, s.failed)
	}
	root := m.ContentRoot()
	//ironsafe:allow journalbypass -- the marker is the rebuild's own write-ahead guard: it must land BEFORE any journaled import commit, and recovery treats any non-empty marker as "still rebuilding"
	if err := s.dev.WriteBlock(rebuildMarkerBlock, s.encodeRebuildMarker(root)); err != nil {
		return fmt.Errorf("securestore: writing rebuild marker: %w", err)
	}
	s.rebuilding = true
	s.markerRoot = root
	return nil
}

// ImportPages verifies pages received from a donor against the manifest and
// commits them through the ordinary journaled group-commit path (one chunk =
// one group commit), re-sealed under this store's own keys. Chunks must
// arrive densely: start must equal the committed page count.
func (s *Store) ImportPages(start uint32, pages [][]byte, m *RebuildManifest) error {
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return fmt.Errorf("%w: %w", ErrStoreFailed, err)
	}
	if !s.rebuilding {
		s.mu.Unlock()
		return errors.New("securestore: ImportPages outside an active rebuild")
	}
	if start != s.nextAlloc {
		n := s.nextAlloc
		s.mu.Unlock()
		return fmt.Errorf("%w: chunk starts at %d but %d pages are committed", ErrRebuildMismatch, start, n)
	}
	s.mu.Unlock()
	if uint64(start)+uint64(len(pages)) > uint64(m.NumPages()) {
		return fmt.Errorf("%w: chunk [%d,%d) exceeds manifest's %d pages", ErrRebuildMismatch, start, start+uint32(len(pages)), m.NumPages())
	}
	t := s.Begin()
	for i, p := range pages {
		idx := start + uint32(i)
		if len(p) != pager.PageSize {
			return fmt.Errorf("%w: page %d has %d bytes", ErrRebuildMismatch, idx, len(p))
		}
		h := sha256.Sum256(p)
		if !bytes.Equal(h[:], m.PageHashes[idx]) {
			return fmt.Errorf("%w: page %d hash mismatch", ErrRebuildMismatch, idx)
		}
		if err := t.WritePage(idx, p); err != nil {
			return err
		}
	}
	return t.Commit()
}

// FinalizeImport completes a rebuild: it re-verifies every page against the
// manifest, adopts the donor's commit sequence number through a journaled
// zero-entry record (so a power cut at any point recovers to exactly the
// pre- or post-adoption state), and only then clears the rebuild marker.
// It is idempotent: re-running after a crash converges on the same state.
func (s *Store) FinalizeImport(m *RebuildManifest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return fmt.Errorf("%w: %w", ErrStoreFailed, s.failed)
	}
	if !s.rebuilding {
		return errors.New("securestore: FinalizeImport outside an active rebuild")
	}
	if s.nextAlloc != m.NumPages() {
		return fmt.Errorf("%w: %d pages committed, manifest has %d", ErrRebuildMismatch, s.nextAlloc, m.NumPages())
	}
	for i := uint32(0); i < s.nextAlloc; i++ {
		plain, err := s.readPageLocked(i)
		if err != nil {
			return fmt.Errorf("securestore: finalize verify of page %d: %w", i, err)
		}
		h := sha256.Sum256(plain)
		if !bytes.Equal(h[:], m.PageHashes[i]) {
			return fmt.Errorf("%w: page %d diverges at finalize", ErrRebuildMismatch, i)
		}
	}
	if s.seq != m.Seq {
		prevTag := s.rootTag()
		oldSeq := s.seq
		s.seq = m.Seq
		postTag := s.rootTag()
		jrec := &journalRecord{Seq: m.Seq, PrevTag: prevTag, PostTag: postTag, PostN: s.nextAlloc}
		//ironsafe:allow journalbypass -- this IS the journal commit write of the seq-adoption record
		if err := s.dev.WriteBlock(journalBlock, s.encodeJournal(jrec)); err != nil {
			s.seq = oldSeq
			s.failed = err
			return fmt.Errorf("securestore: seq-adoption journal write: %w", err)
		}
		if err := s.applyEntries(jrec); err != nil {
			s.failed = err
			return err
		}
		if err := s.anchorRoot(); err != nil {
			s.failed = err
			return err
		}
	}
	// Clear the marker only once the anchor certifies the adopted state: a
	// crash before this write re-runs finalize; after it, the store is an
	// ordinary healthy replica.
	//ironsafe:allow journalbypass -- marker clear ordered after the seq-adoption record and its anchor advance
	if err := s.dev.WriteBlock(rebuildMarkerBlock, nil); err != nil {
		return fmt.Errorf("securestore: clearing rebuild marker: %w", err)
	}
	s.rebuilding = false
	s.markerRoot = nil
	return nil
}

// encodeRebuildMarker authenticates the marker under the journal key.
func (s *Store) encodeRebuildMarker(root []byte) []byte {
	mac := hmac.New(sha256.New, s.jnlKey)
	mac.Write([]byte("rebuild-marker|"))
	mac.Write(root)
	blob := append([]byte(nil), rebuildMagic...)
	blob = append(blob, root...)
	return mac.Sum(blob)
}

// readRebuildMarker loads the marker state at open. ANY non-empty marker
// block — authenticated or garbage — sets rebuilding (fail closed: a torn
// marker write still means an import began); only an authenticated marker
// yields a content root for resume.
func (s *Store) readRebuildMarker() error {
	blob, err := s.dev.ReadBlock(rebuildMarkerBlock)
	if errors.Is(err, pager.ErrBlockNotFound) || (err == nil && len(blob) == 0) {
		s.rebuilding = false
		s.markerRoot = nil
		return nil
	}
	if err != nil {
		return fmt.Errorf("securestore: reading rebuild marker: %w", err)
	}
	s.rebuilding = true
	s.markerRoot = nil
	if len(blob) == len(rebuildMagic)+nodeSize+sha256.Size && bytes.Equal(blob[:len(rebuildMagic)], rebuildMagic) {
		root := blob[len(rebuildMagic) : len(rebuildMagic)+nodeSize]
		if hmac.Equal(blob, s.encodeRebuildMarker(root)) {
			s.markerRoot = append([]byte(nil), root...)
		}
	}
	return nil
}
