package securestore

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"testing"

	"ironsafe/internal/pager"
)

// fillPages writes n distinct pages through the journaled commit path and
// returns the expected plaintext prefixes.
func fillPages(t *testing.T, s *Store, n int) []string {
	t.Helper()
	want := make([]string, n)
	txn := s.Begin()
	for i := 0; i < n; i++ {
		idx, err := txn.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fmt.Sprintf("batch-page-%03d", idx)
		if err := txn.WritePage(idx, []byte(want[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestReadPagesMatchesReadPage pins the batched path's contract across the
// option matrix: for any batch shape, ReadPages returns exactly what per-page
// ReadPage calls would.
func TestReadPagesMatchesReadPage(t *testing.T) {
	variants := []struct {
		name string
		opts Options
	}{
		{"default", Options{}},
		{"arity8", Options{Arity: 8}},
		{"gcm", Options{GCM: true}},
		{"verifiedSubtrees", Options{CacheVerifiedSubtrees: true}},
		{"plainCache", Options{PlainCacheBytes: 64 * pager.PageSize}},
	}
	batches := [][]uint32{
		nil,
		{0},
		{3, 4, 5, 6},
		{0, 7, 31, 14, 2}, // unordered, spanning subtrees
		{5, 5, 5},         // duplicates
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			e := newEnv(t)
			s := e.open(t, v.opts)
			fillPages(t, s, 32)
			all := make([]uint32, 32)
			for i := range all {
				all[i] = uint32(i)
			}
			for round := 0; round < 2; round++ { // round 2 hits any caches
				for _, idxs := range append(batches, all) {
					got, err := s.ReadPages(idxs)
					if err != nil {
						t.Fatalf("round %d ReadPages(%v): %v", round, idxs, err)
					}
					if len(got) != len(idxs) {
						t.Fatalf("ReadPages(%v) returned %d pages", idxs, len(got))
					}
					for i, idx := range idxs {
						want, err := s.ReadPage(idx)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(got[i], want) {
							t.Fatalf("round %d page %d: batched read diverges from ReadPage", round, idx)
						}
					}
				}
			}
		})
	}
}

// TestReadPagesFailClosed pins fail-closed batching: one bad page anywhere in
// the batch fails the whole batch with ErrIntegrity — no prefix is released.
func TestReadPagesFailClosed(t *testing.T) {
	t.Run("tamperedRecord", func(t *testing.T) {
		e := newEnv(t)
		s := e.open(t, Options{})
		fillPages(t, s, 16)
		raw, err := e.dev.ReadBlock(9)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x40
		if err := e.dev.WriteBlock(9, raw); err != nil {
			t.Fatal(err)
		}
		idxs := []uint32{7, 8, 9, 10}
		got, err := s.ReadPages(idxs)
		if !errors.Is(err, ErrIntegrity) {
			t.Fatalf("ReadPages over tampered page: err = %v, want ErrIntegrity", err)
		}
		if got != nil {
			t.Fatal("failed batch released pages")
		}
	})
	t.Run("leafMismatch", func(t *testing.T) {
		e := newEnv(t)
		s := e.open(t, Options{})
		fillPages(t, s, 16)
		// Corrupt the trusted leaf so the record authenticates but disagrees
		// with the tree: verifyBatch must refuse the batch.
		s.mu.Lock()
		s.levels[0][5][0] ^= 0x01
		s.mu.Unlock()
		if _, err := s.ReadPages([]uint32{4, 5, 6}); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("leaf mismatch: err = %v, want ErrIntegrity", err)
		}
	})
}

// TestReadPagesRespectsPoisonStates pins that the batched path refuses failed
// and rebuilding stores exactly like the sequential one.
func TestReadPagesRespectsPoisonStates(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	fillPages(t, s, 4)

	s.mu.Lock()
	s.rebuilding = true
	s.mu.Unlock()
	if _, err := s.ReadPages([]uint32{0, 1}); !errors.Is(err, ErrRebuilding) {
		t.Fatalf("rebuilding store: err = %v, want ErrRebuilding", err)
	}
	s.mu.Lock()
	s.rebuilding = false
	s.failed = errors.New("poisoned by test")
	s.mu.Unlock()
	if _, err := s.ReadPages([]uint32{0, 1}); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("failed store: err = %v, want ErrStoreFailed", err)
	}

	if _, err := s.ReadPages([]uint32{99}); err == nil {
		t.Fatal("unallocated page accepted")
	}
}

// TestBatchedVerificationSavesHashes is the meter-level regression test for
// shared-ancestor deduplication: with subtree caching off (the paper's
// default), a whole-range batch must evaluate strictly fewer Merkle HMACs
// than the equivalent per-page reads, and MerkleHashesSaved must account for
// exactly the difference.
func TestBatchedVerificationSavesHashes(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	fillPages(t, s, 32)
	all := make([]uint32, 32)
	for i := range all {
		all[i] = uint32(i)
	}

	before := e.meter.Snapshot()
	for _, idx := range all {
		if _, err := s.ReadPage(idx); err != nil {
			t.Fatal(err)
		}
	}
	seq := e.meter.Snapshot().Sub(before).MerkleHashes

	before = e.meter.Snapshot()
	if _, err := s.ReadPages(all); err != nil {
		t.Fatal(err)
	}
	d := e.meter.Snapshot().Sub(before)

	if d.MerkleHashes >= seq {
		t.Fatalf("batched verify evaluated %d hashes, sequential %d — no dedup", d.MerkleHashes, seq)
	}
	if d.MerkleHashesSaved != seq-d.MerkleHashes {
		t.Fatalf("MerkleHashesSaved = %d, want %d (= %d sequential - %d batched)",
			d.MerkleHashesSaved, seq-d.MerkleHashes, seq, d.MerkleHashes)
	}
	if d.ScanBatches != 1 {
		t.Fatalf("ScanBatches = %d, want 1", d.ScanBatches)
	}
}

// TestPlainCacheServesRescans pins the verified-plaintext cache: a re-scan of
// a cached batch touches neither the device nor the cipher nor the tree, and
// a commit to a cached page invalidates exactly that page.
func TestPlainCacheServesRescans(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{PlainCacheBytes: 64 * pager.PageSize})
	want := fillPages(t, s, 16)
	all := make([]uint32, 16)
	for i := range all {
		all[i] = uint32(i)
	}
	if _, err := s.ReadPages(all); err != nil {
		t.Fatal(err)
	}
	if s.CacheBytes() != 16*pager.PageSize {
		t.Fatalf("CacheBytes = %d after caching 16 pages", s.CacheBytes())
	}

	before := e.meter.Snapshot()
	got, err := s.ReadPages(all)
	if err != nil {
		t.Fatal(err)
	}
	d := e.meter.Snapshot().Sub(before)
	if d.PagesRead != 0 || d.PagesDecrypted != 0 || d.MerkleHashes != 0 {
		t.Fatalf("re-scan did work: PagesRead=%d PagesDecrypted=%d MerkleHashes=%d",
			d.PagesRead, d.PagesDecrypted, d.MerkleHashes)
	}
	if d.PlainCacheHits != 16 || d.PlainCacheMisses != 0 {
		t.Fatalf("hits=%d misses=%d, want 16/0", d.PlainCacheHits, d.PlainCacheMisses)
	}
	for i := range all {
		if !bytes.HasPrefix(got[i], []byte(want[i])) {
			t.Fatalf("cached page %d corrupted", i)
		}
	}

	// Callers own the returned buffers: scribbling on one must not poison
	// the cache.
	got[3][0] = 'X'
	clean, err := s.ReadPages([]uint32{3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(clean[0], []byte(want[3])) {
		t.Fatal("cache returned aliased buffer; caller write leaked in")
	}

	// Commit to page 6: exactly one page re-fetched on the next scan.
	txn := s.Begin()
	if err := txn.WritePage(6, []byte("fresh-contents")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	before = e.meter.Snapshot()
	got, err = s.ReadPages(all)
	if err != nil {
		t.Fatal(err)
	}
	d = e.meter.Snapshot().Sub(before)
	if d.PlainCacheMisses != 1 || d.PagesRead != 1 {
		t.Fatalf("after committing page 6: misses=%d PagesRead=%d, want 1/1", d.PlainCacheMisses, d.PagesRead)
	}
	if !bytes.HasPrefix(got[6], []byte("fresh-contents")) {
		t.Fatal("stale cached page served after commit")
	}
}

// TestPlainCacheEvictsUnderCap pins the byte cap and clock eviction: the
// cache never exceeds its budget no matter how many pages flow through.
func TestPlainCacheEvictsUnderCap(t *testing.T) {
	const capBytes = 4 * pager.PageSize
	e := newEnv(t)
	s := e.open(t, Options{PlainCacheBytes: capBytes})
	fillPages(t, s, 24)
	for lo := uint32(0); lo+8 <= 24; lo += 4 {
		idxs := []uint32{lo, lo + 1, lo + 2, lo + 3, lo + 4, lo + 5, lo + 6, lo + 7}
		if _, err := s.ReadPages(idxs); err != nil {
			t.Fatal(err)
		}
		if cb := s.CacheBytes(); cb > capBytes {
			t.Fatalf("cache grew to %d bytes, cap %d", cb, capBytes)
		}
	}
	if s.CacheBytes() == 0 {
		t.Fatal("cache empty after scans; eviction dropped everything")
	}
}

// TestReadPagesConcurrentWithCommits races whole-range batched reads against
// a committing writer under the race detector. Every successful batch must be
// a single transaction-boundary snapshot — all pages from one generation —
// and the only acceptable failure is ErrSnapshotRetry.
func TestReadPagesConcurrentWithCommits(t *testing.T) {
	const pages = 12
	e := newEnv(t)
	s := e.open(t, Options{PlainCacheBytes: 8 * pager.PageSize})
	fillPages(t, s, pages)
	all := make([]uint32, pages)
	for i := range all {
		all[i] = uint32(i)
	}

	stamp := func(gen, idx int) string { return fmt.Sprintf("gen-%04d-page-%02d", gen, idx) }
	writeGen := func(gen int) error {
		txn := s.Begin()
		for i := 0; i < pages; i++ {
			if err := txn.WritePage(uint32(i), []byte(stamp(gen, i))); err != nil {
				return err
			}
		}
		return txn.Commit()
	}
	if err := writeGen(0); err != nil {
		t.Fatal(err)
	}

	const gens = 40
	var wg sync.WaitGroup
	wg.Add(1)
	writerErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		for g := 1; g <= gens; g++ {
			if err := writeGen(g); err != nil {
				writerErr <- err
				return
			}
		}
	}()

	var snapshots, retries int
	for done := false; !done; {
		select {
		case err := <-writerErr:
			t.Fatalf("writer: %v", err)
		default:
		}
		got, err := s.ReadPages(all)
		if errors.Is(err, ErrSnapshotRetry) {
			retries++
			continue
		}
		if err != nil {
			t.Fatalf("reader: %v", err)
		}
		var gen int
		if _, err := fmt.Sscanf(string(got[0][:len(stamp(0, 0))]), "gen-%04d", &gen); err != nil {
			t.Fatalf("unparsable page stamp %q", got[0][:16])
		}
		for i := range got {
			if want := stamp(gen, i); !bytes.HasPrefix(got[i], []byte(want)) {
				t.Fatalf("torn batch: page 0 is generation %d but page %d reads %q", gen, i, got[i][:16])
			}
		}
		snapshots++
		done = gen == gens
	}
	wg.Wait()
	t.Logf("observed %d consistent snapshots, %d snapshot retries", snapshots, retries)
}

// faultBlockDevice fails the k-th ReadBlock it sees with a deterministic
// error, then recovers.
type faultBlockDevice struct {
	inner  pager.BlockDevice
	count  int
	failAt int // 1-based op number to fail; 0 disables
}

func (d *faultBlockDevice) ReadBlock(idx uint32) ([]byte, error) {
	d.count++
	if d.failAt > 0 && d.count == d.failAt {
		return nil, fmt.Errorf("injected read fault at device op %d (page %d)", d.count, idx)
	}
	return d.inner.ReadBlock(idx)
}

func (d *faultBlockDevice) WriteBlock(idx uint32, data []byte) error {
	return d.inner.WriteBlock(idx, data)
}
func (d *faultBlockDevice) NumBlocks() uint32 { return d.inner.NumBlocks() }

// TestReadPagesFaultSweep injects a device read fault at every operation
// boundary of a batched scan ("Sweep" puts it in the crashsweep gate). Each
// fault point must fail the batch without poisoning the store — the next
// fault-free batch returns correct data — and the full sweep's outcome digest
// must be byte-identical across runs.
func TestReadPagesFaultSweep(t *testing.T) {
	const pages = 16
	runSweep := func() ([32]byte, error) {
		e := newEnv(t)
		s := e.open(t, Options{})
		want := fillPages(t, s, pages)
		all := make([]uint32, pages)
		for i := range all {
			all[i] = uint32(i)
		}
		fd := &faultBlockDevice{inner: e.dev}
		s.dev = fd

		// A clean batch reads exactly `pages` blocks; sweep one past the end
		// to cover the no-fault case inside the same digest.
		var h bytes.Buffer
		for k := 1; k <= pages+1; k++ {
			fd.count, fd.failAt = 0, k
			got, err := s.ReadPages(all)
			if err != nil {
				fmt.Fprintf(&h, "k=%d err=%v\n", k, err)
			} else {
				fmt.Fprintf(&h, "k=%d ok\n", k)
				for i := range got {
					if !bytes.HasPrefix(got[i], []byte(want[i])) {
						return [32]byte{}, fmt.Errorf("k=%d: page %d wrong contents", k, i)
					}
				}
			}
			// Recovery probe: with the fault cleared the same batch succeeds.
			fd.failAt = 0
			got, err = s.ReadPages(all)
			if err != nil {
				return [32]byte{}, fmt.Errorf("k=%d: store poisoned by read fault: %w", k, err)
			}
			for i := range got {
				if !bytes.HasPrefix(got[i], []byte(want[i])) {
					return [32]byte{}, fmt.Errorf("k=%d: post-fault page %d wrong contents", k, i)
				}
			}
		}
		return sha256.Sum256(h.Bytes()), nil
	}

	d1, err := runSweep()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := runSweep()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("fault sweep not deterministic: %x vs %x", d1, d2)
	}
}
