package securestore

import (
	"crypto/hmac"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ironsafe/internal/pager"
)

// This file implements the batched secure read path (see DESIGN.md, "Scan
// pipeline & verification batching"): ReadPages fetches a whole run of
// pages, decrypts and authenticates them in a bounded worker pool outside
// the store mutex, then performs one batched Merkle verification that hashes
// each shared ancestor exactly once instead of once per page. A verified
// batch may be retained in a bounded plaintext cache so re-scans skip the
// device, the crypto, and the tree walk entirely.

// ErrSnapshotRetry reports that a batched read raced concurrent commits
// repeatedly: every attempt observed a commit-sequence bump between fetching
// the records and verifying them against the tree. The batch as returned
// would have mixed two transaction-boundary states, so the store refuses it.
var ErrSnapshotRetry = errors.New("securestore: batched read raced concurrent commits; retry")

// readPagesRetries bounds how many times ReadPages re-fetches a batch that
// lost the race against a concurrent commit before giving up with
// ErrSnapshotRetry.
const readPagesRetries = 4

// ReadPages implements the batched half of pager.PageStore: it returns the
// plaintext of every page in idxs, in order, or fails the whole batch. The
// batch is verified against a single commit-boundary state — if commits land
// between the device fetch and the verification, the batch is re-fetched; a
// persistent race fails with ErrSnapshotRetry rather than ever returning a
// torn view. Any authentication or freshness mismatch fails the whole batch
// with ErrIntegrity (fail closed: no prefix of a bad batch is released).
func (s *Store) ReadPages(idxs []uint32) ([][]byte, error) {
	if len(idxs) == 0 {
		return nil, nil
	}
	for attempt := 0; attempt < readPagesRetries; attempt++ {
		out, retry, err := s.readPagesAt(idxs)
		if err != nil {
			return nil, err
		}
		if !retry {
			return out, nil
		}
	}
	return nil, ErrSnapshotRetry
}

// readPagesAt runs one batched read attempt. retry reports that a concurrent
// commit moved the store past the snapshot this attempt fetched at.
func (s *Store) readPagesAt(idxs []uint32) (out [][]byte, retry bool, err error) {
	out = make([][]byte, len(idxs))

	// Snapshot the commit sequence and satisfy what we can from the
	// verified-plaintext cache, all under one lock hold.
	s.mu.Lock()
	if s.failed != nil {
		ferr := s.failed
		s.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %w", ErrStoreFailed, ferr)
	}
	if s.rebuilding {
		s.mu.Unlock()
		return nil, false, ErrRebuilding
	}
	for _, idx := range idxs {
		if idx >= s.nextAlloc {
			s.mu.Unlock()
			return nil, false, fmt.Errorf("securestore: page %d not allocated", idx)
		}
	}
	seq0 := s.seq
	var hits, misses int64
	for i, idx := range idxs {
		if s.cache != nil {
			if plain, ok := s.cache.get(idx); ok {
				out[i] = plain
				hits++
				continue
			}
		}
		misses++
	}
	s.mu.Unlock()

	s.meter.ScanBatches.Add(1)
	if s.cache != nil {
		s.meter.PlainCacheHits.Add(hits)
		s.meter.PlainCacheMisses.Add(misses)
	}
	if misses == 0 {
		return out, false, nil
	}

	// Fetch the missing records sequentially, in index order: the device-
	// operation sequence must stay a deterministic function of the request,
	// because the fault-injection framework keys its per-site streams on it.
	miss := make([]int, 0, misses)
	records := make([][]byte, 0, misses)
	for i, idx := range idxs {
		if out[i] != nil {
			continue
		}
		record, rerr := s.dev.ReadBlock(idx)
		if rerr != nil {
			return nil, false, rerr
		}
		miss = append(miss, i)
		records = append(records, record)
	}
	s.meter.PagesRead.Add(int64(len(miss)))

	// Decrypt + authenticate outside the lock, across up to NumCPU workers.
	// Errors are collected per page and reported for the lowest page index,
	// so the outcome does not depend on goroutine scheduling.
	plains := make([][]byte, len(miss))
	macs := make([][]byte, len(miss))
	errs := make([]error, len(miss))
	workers := runtime.NumCPU()
	if workers > len(miss) {
		workers = len(miss)
	}
	if workers <= 1 {
		for k := range miss {
			plains[k], macs[k], errs[k] = s.openPage(idxs[miss[k]], records[k])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= len(miss) {
						return
					}
					plains[k], macs[k], errs[k] = s.openPage(idxs[miss[k]], records[k])
				}
			}()
		}
		wg.Wait()
	}
	for k, oerr := range errs {
		if oerr != nil {
			return nil, false, fmt.Errorf("securestore: batched read of page %d: %w", idxs[miss[k]], oerr)
		}
	}
	s.meter.PagesDecrypted.Add(int64(len(miss)))

	// Verify the whole batch against one tree state. A commit may have landed
	// while we were off the lock: its records on the medium no longer match
	// the tree we hold, so the attempt is discarded and re-fetched.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return nil, false, fmt.Errorf("%w: %w", ErrStoreFailed, s.failed)
	}
	if s.seq != seq0 {
		return nil, true, nil
	}
	leafIdxs := make([]uint32, len(miss))
	for k, i := range miss {
		leafIdxs[k] = idxs[i]
	}
	if err := s.verifyBatch(leafIdxs, macs); err != nil {
		return nil, false, err
	}
	for k, i := range miss {
		out[i] = plains[k]
		if s.cache != nil {
			s.cache.put(idxs[i], plains[k])
		}
	}
	return out, false, nil
}

// verifyBatch checks a set of leaves against the trusted in-memory tree with
// shared-ancestor deduplication: the leaf hash of every page is recomputed
// and compared, then the distinct parents form a frontier that is hashed and
// compared level by level — each internal node exactly once, no matter how
// many pages in the batch sit below it. A batch spanning the whole leaf
// range therefore degenerates to one full root recomputation. Any mismatch
// fails the entire batch with ErrIntegrity. The caller holds s.mu.
//
// The MerkleHashes meter charges exactly the HMACs evaluated, and
// MerkleHashesSaved records how many the equivalent sequence of per-page
// verifyPath calls would have evaluated on top of that.
func (s *Store) verifyBatch(idxs []uint32, recordMACs [][]byte) error {
	a := s.opts.arity()

	// Price the sequential baseline first, against the pre-batch verified
	// map, simulating the marks per-page calls would have left as they went.
	baseline := 0
	seen := map[[2]int]bool{}
	for _, idx := range idxs {
		baseline++ // leaf hash
		i := int(idx)
		for lvl := 1; lvl < len(s.levels); lvl++ {
			parent := i / a
			if s.opts.CacheVerifiedSubtrees && (s.verified[[2]int{lvl, parent}] || seen[[2]int{lvl, parent}]) {
				break
			}
			baseline++
			if s.opts.CacheVerifiedSubtrees {
				seen[[2]int{lvl, parent}] = true
			}
			i = parent
		}
	}

	hashed := 0
	for k, idx := range idxs {
		leaf := s.leafHash(idx, recordMACs[k])
		hashed++
		if !hmac.Equal(leaf, s.levels[0][idx]) {
			s.meter.MerkleHashes.Add(int64(hashed))
			return fmt.Errorf("%w: page %d leaf mismatch", ErrIntegrity, idx)
		}
	}

	// Propagate a sorted, deduplicated frontier toward the root. Sorting
	// keeps the comparison order — and therefore which mismatch is reported
	// — deterministic.
	frontier := make([]int, len(idxs))
	for k, idx := range idxs {
		frontier[k] = int(idx)
	}
	sort.Ints(frontier)
	for lvl := 1; lvl < len(s.levels) && len(frontier) > 0; lvl++ {
		parents := frontier[:0]
		last := -1
		for _, i := range frontier {
			parent := i / a
			if parent == last {
				continue
			}
			last = parent
			if s.opts.CacheVerifiedSubtrees && s.verified[[2]int{lvl, parent}] {
				continue // subtree already trusted; nothing above it to recheck
			}
			lo, hi := parent*a, parent*a+a
			if hi > len(s.levels[lvl-1]) {
				hi = len(s.levels[lvl-1])
			}
			node := s.hashNode(lvl, parent, s.levels[lvl-1][lo:hi])
			hashed++
			if !hmac.Equal(node, s.levels[lvl][parent]) {
				s.meter.MerkleHashes.Add(int64(hashed))
				return fmt.Errorf("%w: merkle node (%d,%d) mismatch in batch", ErrIntegrity, lvl, parent)
			}
			if s.opts.CacheVerifiedSubtrees {
				s.verified[[2]int{lvl, parent}] = true
			}
			parents = append(parents, parent)
		}
		frontier = parents
	}

	s.meter.MerkleHashes.Add(int64(hashed))
	if saved := baseline - hashed; saved > 0 {
		s.meter.MerkleHashesSaved.Add(int64(saved))
	}
	s.meter.MerkleVerifies.Add(int64(len(idxs)))
	return nil
}

// invalidatePath drops the verified marks of every ancestor of leaf idx.
// The caller holds s.mu.
func (s *Store) invalidatePath(idx int) {
	a := s.opts.arity()
	for lvl := 1; lvl < len(s.levels); lvl++ {
		idx /= a
		delete(s.verified, [2]int{lvl, idx})
	}
}

// CacheBytes reports the current size of the verified-plaintext page cache.
// Hosts running the store inside an SGX enclave add this to TreeBytes when
// sizing the enclave working set against the EPC limit.
func (s *Store) CacheBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		return 0
	}
	return s.cache.bytes
}

// plainCache is a byte-capped cache of verified plaintext pages with clock
// (second-chance) eviction. All methods are called with the store mutex
// held; entries are copied on the way in and out because heap-file code
// mutates the buffers it is handed.
type plainCache struct {
	capBytes int64
	bytes    int64
	entries  map[uint32]*plainEntry
	ring     []uint32 // clock ring of resident page indices
	hand     int
}

type plainEntry struct {
	data []byte
	ref  bool // second-chance bit
}

func newPlainCache(capBytes int64) *plainCache {
	return &plainCache{capBytes: capBytes, entries: map[uint32]*plainEntry{}}
}

func (c *plainCache) get(idx uint32) ([]byte, bool) {
	e, ok := c.entries[idx]
	if !ok {
		return nil, false
	}
	e.ref = true
	return append([]byte(nil), e.data...), true
}

func (c *plainCache) put(idx uint32, plain []byte) {
	if c.capBytes < int64(len(plain)) {
		return // cache too small to ever hold a page
	}
	if e, ok := c.entries[idx]; ok {
		c.bytes += int64(len(plain)) - int64(len(e.data))
		e.data = append([]byte(nil), plain...)
		e.ref = true
		c.evict()
		return
	}
	c.entries[idx] = &plainEntry{data: append([]byte(nil), plain...)}
	c.ring = append(c.ring, idx)
	c.bytes += int64(len(plain))
	c.evict()
}

// evict advances the clock hand until the cache fits its byte cap: a
// referenced entry gets its second chance (bit cleared, hand moves on), an
// unreferenced one is dropped.
func (c *plainCache) evict() {
	for c.bytes > c.capBytes && len(c.ring) > 0 {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		idx := c.ring[c.hand]
		e, ok := c.entries[idx]
		if !ok {
			// Slot belongs to an invalidated entry; compact it away.
			c.ring = append(c.ring[:c.hand], c.ring[c.hand+1:]...)
			continue
		}
		if e.ref {
			e.ref = false
			c.hand++
			continue
		}
		delete(c.entries, idx)
		c.bytes -= int64(len(e.data))
		c.ring = append(c.ring[:c.hand], c.ring[c.hand+1:]...)
	}
}

// invalidate drops one page (its ring slot is lazily reclaimed by evict).
func (c *plainCache) invalidate(idx uint32) {
	if e, ok := c.entries[idx]; ok {
		c.bytes -= int64(len(e.data))
		delete(c.entries, idx)
	}
}

// clear empties the cache.
func (c *plainCache) clear() {
	c.entries = map[uint32]*plainEntry{}
	c.ring = c.ring[:0]
	c.hand = 0
	c.bytes = 0
}

// compile-time interface check: the secure store satisfies the batched
// PageStore contract.
var _ pager.PageStore = (*Store)(nil)
