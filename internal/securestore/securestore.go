// Package securestore implements IronSafe's secure storage framework for the
// untrusted storage medium (§4.1): every 4 KiB page is individually encrypted
// (AES-256-CBC with a random IV) and authenticated (HMAC-SHA-512), a Merkle
// tree of HMACs spans all pages, and the tree root — keyed with a device-
// unique, HUK-derived key — is persisted in the RPMB so that rollback and
// fork attacks against the medium are detected.
//
// The store exposes the same PageStore interface as the plain pager, so the
// database engine is oblivious to whether it runs on a secure or vanilla
// medium — exactly the paper's SQLite-VFS-callback architecture.
package securestore

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/sha512"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"ironsafe/internal/pager"
	"ironsafe/internal/simtime"
	"ironsafe/internal/tee/trustzone"
)

const (
	ivSize     = aes.BlockSize
	macSize    = sha512.Size
	nodeSize   = sha256.Size
	recordSize = ivSize + pager.PageSize + macSize

	// Device block address map: logical data pages occupy the low range,
	// the Merkle leaf mirror lives in the meta region, a single header
	// block records the page count and commit sequence number, and the
	// block below it holds the redo journal (journal.go).
	metaBase    = uint32(0x8000_0000)
	headerBlock = uint32(0x7FFF_FFFF)

	leavesPerMetaBlock = pager.PageSize / nodeSize

	// headerSize is the on-medium header: page count (u32) then the commit
	// sequence number (u64), both little-endian.
	headerSize = 12
)

// Options configures a Store. The zero value gives the paper's design point.
type Options struct {
	// Arity is the Merkle tree fan-out; 0 means 2 (binary).
	Arity int
	// CacheVerifiedSubtrees trusts already-verified internal nodes until
	// the next write (the ablation in DESIGN.md). Off reproduces the
	// paper's per-read full-path traversal.
	CacheVerifiedSubtrees bool
	// GCM switches page protection from AES-CBC+HMAC-SHA-512 to
	// AES-256-GCM (cipher ablation).
	GCM bool
	// RPMBSlot selects the RPMB address holding the root tag.
	RPMBSlot uint16
	// PlainCacheBytes caps the verified-plaintext page cache (batch.go);
	// 0 disables it. Cached pages skip the device read, the decryption, and
	// the Merkle walk entirely, and are invalidated precisely when a commit
	// overwrites them. The cache lives inside the trust boundary, so hosts
	// running the store in an SGX enclave must count CacheBytes toward the
	// enclave working set (the Fig 9a EPC paging model).
	PlainCacheBytes int64
}

func (o Options) arity() int {
	if o.Arity < 2 {
		return 2
	}
	return o.Arity
}

// KeySource derives the store's keys from a hardware-rooted secret: the
// TrustZone secure-storage TA (HUK-derived) on the storage system, or an
// SGX-sealed secret inside the host enclave for the host-only configuration.
type KeySource interface {
	DeriveKey(label string) ([]byte, error)
}

// RootAnchor persists the Merkle root tag in rollback-protected storage:
// the RPMB on the storage system, or enclave-protected memory on the host.
type RootAnchor interface {
	StoreRoot(tag []byte) error
	LoadRoot(nonce []byte) ([]byte, error)
}

// Store is a confidentiality+integrity+freshness protected PageStore.
type Store struct {
	dev    pager.BlockDevice
	keys   KeySource
	anchor RootAnchor
	meter  *simtime.Meter
	opts   Options

	encKey  []byte // page encryption key (from secure-storage TA)
	macKey  []byte // page HMAC key
	treeKey []byte // Merkle node key
	rootKey []byte // device-bound root-tag key
	jnlKey  []byte // journal-record authentication key

	mu        sync.Mutex
	levels    [][][]byte // levels[0] = leaves; last level = [root]
	nextAlloc uint32     // committed page count
	// nextReserve is the allocation high-water mark, >= nextAlloc: indices
	// in [nextAlloc, nextReserve) are reserved by open transactions and
	// become durable (as written or zero pages) at the next growing commit.
	nextReserve uint32
	seq         uint64          // commit sequence number, bound into the root tag
	verified    map[[2]int]bool // (level, index) -> verified since last write
	cache       *plainCache     // verified-plaintext page cache; nil when disabled
	failed      error           // set when a commit died mid-flight; poisons the store

	// rebuilding is set while the on-medium rebuild marker (rebuild.go) is
	// present: the store is mid-import from a donor replica and must refuse
	// integrity sweeps (and with them readmission) until FinalizeImport.
	rebuilding bool
	markerRoot []byte // the marker's manifest content root, for resume checks
}

// ErrFreshness reports a detected rollback, replay, or fork of the medium.
var ErrFreshness = errors.New("securestore: freshness violation (rollback or fork detected)")

// ErrIntegrity reports a tampered or corrupted page.
var ErrIntegrity = errors.New("securestore: integrity violation")

// Open initializes (or re-attaches to) a secure store on dev with keys from
// the TrustZone secure world and the root anchored in RPMB — the storage
// system's configuration. Reopening a rolled-back medium fails with
// ErrFreshness.
func Open(dev pager.BlockDevice, nw *trustzone.NormalWorld, meter *simtime.Meter, opts Options) (*Store, error) {
	return OpenWith(dev, TZKeySource{NW: nw}, RPMBAnchor{NW: nw, Slot: opts.RPMBSlot}, meter, opts)
}

// OpenWith is Open with explicit key and anchor providers (used by the
// host-only-secure configuration, where both live inside the SGX enclave).
func OpenWith(dev pager.BlockDevice, keys KeySource, anchor RootAnchor, meter *simtime.Meter, opts Options) (*Store, error) {
	s, err := newStore(dev, keys, anchor, meter, opts)
	if err != nil {
		return nil, err
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// newStore constructs a store and derives its keys, without loading the
// medium (the shared front half of OpenWith and OpenRebuildWith).
func newStore(dev pager.BlockDevice, keys KeySource, anchor RootAnchor, meter *simtime.Meter, opts Options) (*Store, error) {
	if meter == nil {
		return nil, errors.New("securestore: meter required")
	}
	s := &Store{dev: dev, keys: keys, anchor: anchor, meter: meter, opts: opts, verified: map[[2]int]bool{}}
	if opts.PlainCacheBytes > 0 {
		s.cache = newPlainCache(opts.PlainCacheBytes)
	}
	for _, k := range []struct {
		label string
		dst   *[]byte
	}{
		{"page-enc", &s.encKey},
		{"page-mac", &s.macKey},
		{"merkle-tree", &s.treeKey},
		{"merkle-root", &s.rootKey},
		{"journal-mac", &s.jnlKey},
	} {
		key, err := keys.DeriveKey(k.label)
		if err != nil {
			return nil, fmt.Errorf("securestore: deriving %s: %w", k.label, err)
		}
		*k.dst = key
	}
	return s, nil
}

// TZKeySource derives keys via the TrustZone secure-storage TA.
type TZKeySource struct{ NW *trustzone.NormalWorld }

// DeriveKey implements KeySource.
func (t TZKeySource) DeriveKey(label string) ([]byte, error) {
	return t.NW.DeriveStorageKey(label)
}

// RPMBAnchor stores the root tag in the device RPMB via the secure world.
type RPMBAnchor struct {
	NW   *trustzone.NormalWorld
	Slot uint16
}

// StoreRoot implements RootAnchor.
func (a RPMBAnchor) StoreRoot(tag []byte) error { return a.NW.RPMBWrite(a.Slot, tag) }

// LoadRoot implements RootAnchor.
func (a RPMBAnchor) LoadRoot(nonce []byte) ([]byte, error) {
	resp, err := a.NW.RPMBRead(a.Slot, nonce)
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// load reads the medium, then runs the journal recovery decision procedure
// against the anchor: the store deterministically opens at exactly the old or
// the new anchored state of the most recent commit, or fails closed.
func (s *Store) load() error {
	if err := s.readRebuildMarker(); err != nil {
		return err
	}
	if err := s.readMediumState(); err != nil {
		return err
	}
	anchored, err := s.loadAnchor()
	if err != nil {
		return err
	}
	if len(anchored) == 0 {
		// Never anchored: the first open of this medium+anchor pairing
		// initializes the anchor to the empty-store tag. A medium that
		// already carries state while the anchor is empty means the anchor
		// was wiped or swapped out from under the store.
		if s.nextAlloc != 0 || s.seq != 0 {
			return fmt.Errorf("%w: medium carries state but the anchor is empty", ErrFreshness)
		}
		return s.anchorRoot()
	}
	return s.recoverState(anchored)
}

// readMediumState reads the header and meta region and rebuilds the in-memory
// tree, without judging it: recovery decides afterwards whether this state is
// the anchored one. An absent header is the empty state; unreadable leaf
// slots load as zero leaves so a torn meta region still produces a tag for
// recovery to compare (a mismatch without a bridging journal fails closed).
func (s *Store) readMediumState() error {
	hdr, err := s.dev.ReadBlock(headerBlock)
	if errors.Is(err, pager.ErrBlockNotFound) {
		s.nextAlloc = 0
		s.seq = 0
		s.rebuildLevels(nil)
		s.verified = map[[2]int]bool{}
		if s.cache != nil {
			s.cache.clear()
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("securestore: reading header: %w", err)
	}
	if len(hdr) < headerSize {
		// A torn write of the first-ever header leaves a short block. Zero-
		// pad and parse best-effort: the resulting tag matches the anchor
		// only if the bytes are genuine, and recovery fails closed (or
		// redoes the journal) otherwise — the tag, not the header, is the
		// integrity gate.
		hdr = append(append([]byte(nil), hdr...), make([]byte, headerSize-len(hdr))...)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	leaves := make([][]byte, n)
	for i := uint32(0); i < n; i++ {
		blk := metaBase + i/leavesPerMetaBlock
		buf, err := s.dev.ReadBlock(blk)
		if err != nil && !errors.Is(err, pager.ErrBlockNotFound) {
			return fmt.Errorf("securestore: reading meta block %d: %w", blk, err)
		}
		off := int(i%leavesPerMetaBlock) * nodeSize
		leaf := make([]byte, nodeSize)
		if off+nodeSize <= len(buf) {
			copy(leaf, buf[off:off+nodeSize])
		}
		leaves[i] = leaf
	}
	s.nextAlloc = n
	s.seq = binary.LittleEndian.Uint64(hdr[4:12])
	if s.nextReserve < n {
		s.nextReserve = n
	}
	s.rebuildLevels(leaves)
	// The medium was re-read wholesale (open, journal redo, rebuild import):
	// everything previously verified or cached describes a different state.
	s.verified = map[[2]int]bool{}
	if s.cache != nil {
		s.cache.clear()
	}
	return nil
}

// rebuildLevels constructs the in-memory (untrusted-mirror) tree from leaves.
func (s *Store) rebuildLevels(leaves [][]byte) {
	a := s.opts.arity()
	s.levels = [][][]byte{leaves}
	cur := leaves
	for len(cur) > 1 {
		next := make([][]byte, (len(cur)+a-1)/a)
		for i := range next {
			lo := i * a
			hi := lo + a
			if hi > len(cur) {
				hi = len(cur)
			}
			next[i] = s.hashNode(len(s.levels), i, cur[lo:hi])
		}
		s.levels = append(s.levels, next)
		cur = next
	}
}

// hashNode computes an internal node HMAC over its children. The level and
// index are bound into the MAC so nodes cannot be transplanted.
func (s *Store) hashNode(level, idx int, children [][]byte) []byte {
	mac := hmac.New(sha256.New, s.treeKey)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(level))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(idx))
	mac.Write(hdr[:])
	for _, c := range children {
		mac.Write(c)
	}
	return mac.Sum(nil)
}

// leafHash computes the Merkle leaf for a page record.
func (s *Store) leafHash(idx uint32, recordMAC []byte) []byte {
	mac := hmac.New(sha256.New, s.treeKey)
	mac.Write([]byte("leaf|"))
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], idx)
	mac.Write(b[:])
	mac.Write(recordMAC)
	return mac.Sum(nil)
}

// root returns the current tree root (the empty-store root is a fixed tag).
func (s *Store) root() []byte {
	top := s.levels[len(s.levels)-1]
	if len(top) == 0 {
		return s.hashNode(0, -1, nil) // canonical empty root
	}
	return top[0]
}

// rootTag binds the root, the page count, and the commit sequence number to
// the device key for RPMB anchoring. Binding seq means two states with
// identical content but different commit histories carry different tags, so
// a stale journal record can never masquerade as the bridge to the anchor.
func (s *Store) rootTag() []byte {
	mac := hmac.New(sha256.New, s.rootKey)
	mac.Write([]byte("root|"))
	mac.Write(s.root())
	var b [12]byte
	binary.LittleEndian.PutUint32(b[0:4], s.nextAlloc)
	binary.LittleEndian.PutUint64(b[4:12], s.seq)
	mac.Write(b[:])
	return mac.Sum(nil)
}

// anchorRoot writes the current root tag to the anchor.
func (s *Store) anchorRoot() error {
	if err := s.anchor.StoreRoot(s.rootTag()); err != nil {
		return fmt.Errorf("securestore: anchoring root: %w", err)
	}
	return nil
}

// loadAnchor reads the anchored tag with a fresh nonce; empty means the
// anchor slot has never been written.
func (s *Store) loadAnchor() ([]byte, error) {
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	stored, err := s.anchor.LoadRoot(nonce)
	if err != nil {
		return nil, fmt.Errorf("securestore: reading root anchor: %w", err)
	}
	return stored, nil
}

// checkRootAnchor compares the recomputed root tag with the anchored copy.
func (s *Store) checkRootAnchor() error {
	stored, err := s.loadAnchor()
	if err != nil {
		return err
	}
	if !hmac.Equal(stored, s.rootTag()) {
		return ErrFreshness
	}
	return nil
}

// NumPages implements pager.PageStore.
func (s *Store) NumPages() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextAlloc
}

// Allocate implements pager.PageStore as a single-operation transaction: the
// index reservation and the commit are atomic, so concurrent Allocate calls
// can never hand out the same page (the pre-journal implementation read
// nextAlloc under the lock but wrote the page after releasing it).
func (s *Store) Allocate() (uint32, error) {
	t := s.Begin()
	idx, err := t.Allocate()
	if err != nil {
		return 0, err
	}
	if err := t.Commit(); err != nil {
		return 0, err
	}
	return idx, nil
}

// WritePage encrypts, MACs, and stores the page as a single-page group
// commit: the write goes through the redo journal, so a power cut at any
// point leaves the store recoverable to exactly the old or the new state.
func (s *Store) WritePage(idx uint32, data []byte) error {
	t := s.Begin()
	if err := t.WritePage(idx, data); err != nil {
		return err
	}
	return t.Commit()
}

// updatePath recomputes internal nodes from leaf idx to the root, charging
// one HMAC per recomputed node.
func (s *Store) updatePath(idx int) {
	a := s.opts.arity()
	lvl := 1
	for len(s.levels[lvl-1]) > 1 {
		below := s.levels[lvl-1]
		want := (len(below) + a - 1) / a
		if lvl >= len(s.levels) {
			s.levels = append(s.levels, make([][]byte, want))
		} else if len(s.levels[lvl]) != want {
			grown := make([][]byte, want)
			copy(grown, s.levels[lvl])
			if len(s.levels[lvl]) > want {
				grown = grown[:want]
			}
			s.levels[lvl] = grown
		}
		idx /= a
		// Recompute the written node and any nodes invalidated by growth.
		for i := range s.levels[lvl] {
			if s.levels[lvl][i] == nil || i == idx {
				clo, chi := i*a, i*a+a
				if chi > len(below) {
					chi = len(below)
				}
				s.levels[lvl][i] = s.hashNode(lvl, i, below[clo:chi])
				s.meter.MerkleHashes.Add(1)
			}
		}
		lvl++
	}
	// Trim unreachable levels (a shrink cannot happen today, but keep the
	// invariant that the top level is the root).
	s.levels = s.levels[:lvl]
}

// ReadPage fetches, authenticates, decrypts, and freshness-checks a page.
func (s *Store) ReadPage(idx uint32) ([]byte, error) {
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %w", ErrStoreFailed, err)
	}
	if idx >= s.nextAlloc {
		s.mu.Unlock()
		return nil, fmt.Errorf("securestore: page %d not allocated", idx)
	}
	s.mu.Unlock()

	record, err := s.dev.ReadBlock(idx)
	if err != nil {
		return nil, err
	}
	s.meter.PagesRead.Add(1)
	plain, recordMAC, err := s.openPage(idx, record)
	if err != nil {
		return nil, err
	}
	s.meter.PagesDecrypted.Add(1)

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.verifyPath(idx, recordMAC); err != nil {
		return nil, err
	}
	return plain, nil
}

// verifyPath recomputes the Merkle path from the page's leaf to the root and
// compares against the trusted root, charging one HMAC per node visited.
// With CacheVerifiedSubtrees, verification stops at an already-verified
// ancestor.
func (s *Store) verifyPath(idx uint32, recordMAC []byte) error {
	leaf := s.leafHash(idx, recordMAC)
	s.meter.MerkleHashes.Add(1)
	if !hmac.Equal(leaf, s.levels[0][idx]) {
		return fmt.Errorf("%w: page %d leaf mismatch", ErrIntegrity, idx)
	}
	a := s.opts.arity()
	i := int(idx)
	for lvl := 1; lvl < len(s.levels); lvl++ {
		parent := i / a
		if s.opts.CacheVerifiedSubtrees && s.verified[[2]int{lvl, parent}] {
			s.meter.MerkleVerifies.Add(1)
			return nil
		}
		lo, hi := parent*a, parent*a+a
		if hi > len(s.levels[lvl-1]) {
			hi = len(s.levels[lvl-1])
		}
		node := s.hashNode(lvl, parent, s.levels[lvl-1][lo:hi])
		s.meter.MerkleHashes.Add(1)
		if !hmac.Equal(node, s.levels[lvl][parent]) {
			return fmt.Errorf("%w: page %d merkle node (%d,%d) mismatch", ErrIntegrity, idx, lvl, parent)
		}
		if s.opts.CacheVerifiedSubtrees {
			s.verified[[2]int{lvl, parent}] = true
		}
		i = parent
	}
	s.meter.MerkleVerifies.Add(1)
	return nil
}

// Quiesce runs fn while the store's commit lock is held. Commit holds the
// lock across the whole journal-write → in-place-apply → anchor sequence, so
// inside fn the medium is always at a transaction boundary: a snapshot taken
// here can be stale relative to later commits but never torn.
func (s *Store) Quiesce(fn func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fn()
}

// Seq reports the commit sequence number bound into the anchored root tag.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// TreeBytes reports the in-memory size of the Merkle tree — the working-set
// contribution that causes EPC paging when the store is verified inside an
// SGX enclave (the paper's Fig 9a effect).
func (s *Store) TreeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, lvl := range s.levels {
		n += int64(len(lvl)) * nodeSize
	}
	return n
}

// VerifyAll re-verifies every allocated page against the anchored root.
// A store mid-rebuild refuses the sweep outright: its content is a partial
// import of a donor replica and must never be certified as readmittable.
func (s *Store) VerifyAll() error {
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return fmt.Errorf("%w: %w", ErrStoreFailed, err)
	}
	if s.rebuilding {
		s.mu.Unlock()
		return ErrRebuilding
	}
	n := s.nextAlloc
	s.mu.Unlock()
	if err := s.checkRootAnchor(); err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		if _, err := s.ReadPage(i); err != nil {
			return err
		}
	}
	return nil
}

// sealPage encrypts and MACs a plaintext page.
func (s *Store) sealPage(idx uint32, plain []byte) (record, recordMAC []byte, err error) {
	if s.opts.GCM {
		return s.sealPageGCM(idx, plain)
	}
	iv := make([]byte, ivSize)
	if _, err := rand.Read(iv); err != nil {
		return nil, nil, err
	}
	block, err := aes.NewCipher(s.encKey)
	if err != nil {
		return nil, nil, err
	}
	ct := make([]byte, pager.PageSize)
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(ct, plain)
	mac := s.pageMAC(idx, iv, ct)
	record = make([]byte, 0, recordSize)
	record = append(record, iv...)
	record = append(record, ct...)
	record = append(record, mac...)
	return record, mac, nil
}

// openPage verifies and decrypts a stored record.
func (s *Store) openPage(idx uint32, record []byte) (plain, recordMAC []byte, err error) {
	if s.opts.GCM {
		return s.openPageGCM(idx, record)
	}
	if len(record) != recordSize {
		return nil, nil, fmt.Errorf("%w: page %d record size %d", ErrIntegrity, idx, len(record))
	}
	iv := record[:ivSize]
	ct := record[ivSize : ivSize+pager.PageSize]
	mac := record[ivSize+pager.PageSize:]
	want := s.pageMAC(idx, iv, ct)
	if !hmac.Equal(mac, want) {
		return nil, nil, fmt.Errorf("%w: page %d HMAC mismatch", ErrIntegrity, idx)
	}
	block, err := aes.NewCipher(s.encKey)
	if err != nil {
		return nil, nil, err
	}
	plain = make([]byte, pager.PageSize)
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(plain, ct)
	return plain, mac, nil
}

// pageMAC computes HMAC-SHA-512 over (index, IV, ciphertext); binding the
// index prevents page transplantation.
func (s *Store) pageMAC(idx uint32, iv, ct []byte) []byte {
	mac := hmac.New(sha512.New, s.macKey)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], idx)
	mac.Write(b[:])
	mac.Write(iv)
	mac.Write(ct)
	return mac.Sum(nil)
}

func (s *Store) sealPageGCM(idx uint32, plain []byte) (record, recordMAC []byte, err error) {
	block, err := aes.NewCipher(s.encKey)
	if err != nil {
		return nil, nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, nil, err
	}
	var ad [4]byte
	binary.LittleEndian.PutUint32(ad[:], idx)
	//ironsafe:allow noncereuse -- fresh 96-bit crypto/rand nonce per seal, stored with the record; collision odds stay below 2^-32 past 2^32 page writes
	ct := gcm.Seal(nil, nonce, plain, ad[:])
	record = append(append([]byte{}, nonce...), ct...)
	// The GCM tag (last 16 bytes) doubles as the record MAC for leaves.
	return record, ct[len(ct)-16:], nil
}

func (s *Store) openPageGCM(idx uint32, record []byte) (plain, recordMAC []byte, err error) {
	block, err := aes.NewCipher(s.encKey)
	if err != nil {
		return nil, nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, nil, err
	}
	if len(record) < gcm.NonceSize()+16 {
		return nil, nil, fmt.Errorf("%w: page %d record too short", ErrIntegrity, idx)
	}
	nonce, ct := record[:gcm.NonceSize()], record[gcm.NonceSize():]
	var ad [4]byte
	binary.LittleEndian.PutUint32(ad[:], idx)
	//ironsafe:allow noncereuse -- nonce travels inside the record and is authenticated by the GCM tag; freshness comes from the Merkle root + RPMB anchor, not the nonce
	plain, err = gcm.Open(nil, nonce, ct, ad[:])
	if err != nil {
		return nil, nil, fmt.Errorf("%w: page %d GCM auth failed", ErrIntegrity, idx)
	}
	return plain, ct[len(ct)-16:], nil
}

// Equal reports whether two byte slices match in constant time (exported for
// tests of detection paths).
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }
