package securestore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"ironsafe/internal/pager"
)

// fillDonor commits n pages to s, one page per group commit, so the donor's
// seq diverges from whatever chunking the importer uses.
func fillDonor(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		idx, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WritePage(idx, []byte(fmt.Sprintf("donor page %d", i))); err != nil {
			t.Fatal(err)
		}
	}
}

// importAll streams the donor's pages into rs in chunks of two.
func importAll(t *testing.T, donor, rs *Store, m *RebuildManifest, from uint32) {
	t.Helper()
	for start := from; start < m.NumPages(); {
		count := uint32(2)
		if m.NumPages()-start < count {
			count = m.NumPages() - start
		}
		pages, err := donor.ExportPages(start, count)
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.ImportPages(start, pages, m); err != nil {
			t.Fatal(err)
		}
		start += count
	}
}

func TestRebuildExportImportRoundTrip(t *testing.T) {
	donorEnv, targetEnv := newEnv(t), newEnv(t) // distinct HUKs: no key crosses
	donor := donorEnv.open(t, Options{})
	fillDonor(t, donor, 5)

	m, err := donor.ExportManifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPages() != 5 || m.Seq != donor.Seq() {
		t.Fatalf("manifest = %d pages seq %d, want 5/%d", m.NumPages(), m.Seq, donor.Seq())
	}
	// The wire encoding round-trips.
	m2, err := DecodeManifest(EncodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.ContentRoot(), m2.ContentRoot()) {
		t.Fatal("manifest encoding does not round-trip")
	}

	rs, err := OpenRebuild(targetEnv.dev, targetEnv.nw, targetEnv.meter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.BeginImport(m); err != nil {
		t.Fatal(err)
	}
	importAll(t, donor, rs, m, 0)
	if err := rs.FinalizeImport(m); err != nil {
		t.Fatal(err)
	}
	if rs.Seq() != m.Seq {
		t.Errorf("target seq %d, want donor's %d", rs.Seq(), m.Seq)
	}

	// An ordinary open over the rebuilt medium must verify and serve the
	// donor's exact plaintext, sealed under the target's own keys.
	s2, err := Open(targetEnv.dev, targetEnv.nw, targetEnv.meter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.VerifyAll(); err != nil {
		t.Fatalf("rebuilt store failed verification: %v", err)
	}
	for i := uint32(0); i < 5; i++ {
		dp, err := donor.ReadPage(i)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := s2.ReadPage(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dp, tp) {
			t.Errorf("page %d diverges after rebuild", i)
		}
	}
}

func TestRebuildMarkerRefusesVerification(t *testing.T) {
	donorEnv, targetEnv := newEnv(t), newEnv(t)
	donor := donorEnv.open(t, Options{})
	fillDonor(t, donor, 4)
	m, err := donor.ExportManifest()
	if err != nil {
		t.Fatal(err)
	}

	rs, err := OpenRebuild(targetEnv.dev, targetEnv.nw, targetEnv.meter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.BeginImport(m); err != nil {
		t.Fatal(err)
	}
	pages, err := donor.ExportPages(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.ImportPages(0, pages, m); err != nil {
		t.Fatal(err)
	}
	// The mid-rebuild store refuses its integrity sweep...
	if err := rs.VerifyAll(); !errors.Is(err, ErrRebuilding) {
		t.Errorf("mid-rebuild VerifyAll = %v, want ErrRebuilding", err)
	}
	// ...and so does an ordinary reopen of the same medium.
	s2, err := Open(targetEnv.dev, targetEnv.nw, targetEnv.meter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.VerifyAll(); !errors.Is(err, ErrRebuilding) {
		t.Errorf("reopened mid-rebuild VerifyAll = %v, want ErrRebuilding", err)
	}
	// A mid-rebuild store cannot donate either.
	if _, err := s2.ExportManifest(); !errors.Is(err, ErrRebuilding) {
		t.Errorf("mid-rebuild export = %v, want ErrRebuilding", err)
	}
}

func TestRebuildGarbageMarkerFailsClosed(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	fillDonor(t, s, 2)
	// A torn/garbage marker write still means an import began: the store
	// must refuse verification even though the marker does not authenticate.
	if err := e.dev.WriteBlock(rebuildMarkerBlock, []byte("torn garbage")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(e.dev, e.nw, e.meter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.VerifyAll(); !errors.Is(err, ErrRebuilding) {
		t.Errorf("garbage marker VerifyAll = %v, want ErrRebuilding", err)
	}
	if root := s2.RebuildRoot(); len(root) != 0 {
		t.Errorf("garbage marker yielded a resume root %x", root)
	}
}

func TestRebuildResumesFromCommittedPrefix(t *testing.T) {
	donorEnv, targetEnv := newEnv(t), newEnv(t)
	donor := donorEnv.open(t, Options{})
	fillDonor(t, donor, 6)
	m, err := donor.ExportManifest()
	if err != nil {
		t.Fatal(err)
	}

	rs, err := OpenRebuild(targetEnv.dev, targetEnv.nw, targetEnv.meter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.BeginImport(m); err != nil {
		t.Fatal(err)
	}
	pages, err := donor.ExportPages(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.ImportPages(0, pages, m); err != nil {
		t.Fatal(err)
	}

	// "Crash": reopen the medium for rebuild; the committed prefix and the
	// marker's content root survive, so the import resumes at page 2.
	rs2, err := OpenRebuild(targetEnv.dev, targetEnv.nw, targetEnv.meter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rs2.Rebuilding() {
		t.Fatal("reopened target lost the rebuild marker")
	}
	if !bytes.Equal(rs2.RebuildRoot(), m.ContentRoot()) {
		t.Fatal("reopened target lost the marker's content root")
	}
	need, err := rs2.DiffManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(need) == 0 || need[0] != 2 {
		t.Fatalf("diff = %v, want resume from page 2", need)
	}
	importAll(t, donor, rs2, m, 2)
	if err := rs2.FinalizeImport(m); err != nil {
		t.Fatal(err)
	}
	if err := rs2.VerifyAll(); err != nil {
		t.Fatalf("resumed rebuild failed verification: %v", err)
	}
}

func TestRebuildFinalizeAdoptsDonorSeq(t *testing.T) {
	donorEnv, targetEnv := newEnv(t), newEnv(t)
	donor := donorEnv.open(t, Options{})
	fillDonor(t, donor, 6) // donor seq 6; target imports in 3 chunk commits
	m, err := donor.ExportManifest()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := OpenRebuild(targetEnv.dev, targetEnv.nw, targetEnv.meter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.BeginImport(m); err != nil {
		t.Fatal(err)
	}
	importAll(t, donor, rs, m, 0)
	if rs.Seq() == m.Seq {
		t.Fatal("test needs target seq != donor seq before finalize")
	}
	if err := rs.FinalizeImport(m); err != nil {
		t.Fatal(err)
	}
	if rs.Seq() != m.Seq {
		t.Fatalf("seq after finalize = %d, want %d", rs.Seq(), m.Seq)
	}

	// Crash window: marker re-persisted after the seq adoption (as if the
	// cut landed between adoption and marker clear). Re-running finalize
	// must converge on the same healthy state instead of re-adopting.
	if err := rs.BeginImport(m); err != nil {
		t.Fatal(err)
	}
	rs2, err := OpenRebuild(targetEnv.dev, targetEnv.nw, targetEnv.meter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs2.FinalizeImport(m); err != nil {
		t.Fatalf("idempotent finalize re-run: %v", err)
	}
	if rs2.Seq() != m.Seq {
		t.Errorf("seq after finalize re-run = %d, want %d", rs2.Seq(), m.Seq)
	}
	if err := rs2.VerifyAll(); err != nil {
		t.Errorf("converged store failed verification: %v", err)
	}
}

func TestRebuildImportRefusesBadChunks(t *testing.T) {
	donorEnv, targetEnv := newEnv(t), newEnv(t)
	donor := donorEnv.open(t, Options{})
	fillDonor(t, donor, 4)
	m, err := donor.ExportManifest()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := OpenRebuild(targetEnv.dev, targetEnv.nw, targetEnv.meter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.BeginImport(m); err != nil {
		t.Fatal(err)
	}
	pages, err := donor.ExportPages(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order chunk: refused.
	if err := rs.ImportPages(2, pages, m); !errors.Is(err, ErrRebuildMismatch) {
		t.Errorf("non-dense chunk = %v, want ErrRebuildMismatch", err)
	}
	// Bit-flipped page: refused before anything commits.
	bad := append([][]byte{}, append([]byte(nil), pages[0]...), pages[1])
	bad[0][17] ^= 0x40
	if err := rs.ImportPages(0, bad, m); !errors.Is(err, ErrRebuildMismatch) {
		t.Errorf("corrupted page = %v, want ErrRebuildMismatch", err)
	}
	// Finalize before the import completes: refused.
	if err := rs.FinalizeImport(m); !errors.Is(err, ErrRebuildMismatch) {
		t.Errorf("early finalize = %v, want ErrRebuildMismatch", err)
	}
}

// TestQuiesceSnapshotsLandOnTxnBoundaries is the store-level half of the
// cluster's quiesced-snapshot guarantee: a snapshot taken under Quiesce while
// commits race is always cleanly stale — restoring it either opens (latest
// state) or fails freshness (stale state), but never fails as corruption.
func TestQuiesceSnapshotsLandOnTxnBoundaries(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	idx, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(idx, []byte("v0")); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.WritePage(idx, []byte(fmt.Sprintf("v%d", i+1))); err != nil {
				t.Errorf("concurrent commit: %v", err)
				return
			}
		}
	}()

	for i := 0; i < 25; i++ {
		var snap map[uint32][]byte
		if err := s.Quiesce(func() error {
			snap = e.dev.SnapshotBlocks()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		dev2 := pager.NewMemDevice()
		dev2.RestoreBlocks(snap)
		if _, err := Open(dev2, e.nw, e.meter, Options{}); err != nil && !errors.Is(err, ErrFreshness) {
			t.Fatalf("snapshot %d restored torn (not cleanly stale): %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// With the writer stopped, the final quiesced snapshot IS the anchored
	// state and must open cleanly.
	var snap map[uint32][]byte
	if err := s.Quiesce(func() error {
		snap = e.dev.SnapshotBlocks()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	dev2 := pager.NewMemDevice()
	dev2.RestoreBlocks(snap)
	s2, err := Open(dev2, e.nw, e.meter, Options{})
	if err != nil {
		t.Fatalf("final quiesced snapshot refused: %v", err)
	}
	if err := s2.VerifyAll(); err != nil {
		t.Fatalf("final quiesced snapshot failed verification: %v", err)
	}
}
