package securestore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"testing"

	"ironsafe/internal/faultinject"
	"ironsafe/internal/pager"
)

// stateDigest canonically hashes the store's visible state: page count plus
// every page's plaintext.
func stateDigest(t *testing.T, s *Store) string {
	t.Helper()
	h := sha256.New()
	n := s.NumPages()
	fmt.Fprintf(h, "n=%d|", n)
	for i := uint32(0); i < n; i++ {
		p, err := s.ReadPage(i)
		if err != nil {
			t.Fatalf("digest read page %d: %v", i, err)
		}
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestGroupCommitOneRPMBWritePerTxn(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	const pages = 10

	base := e.meter.Snapshot()
	seq0 := s.Seq()
	txn := s.Begin()
	for i := 0; i < pages; i++ {
		idx, err := txn.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := txn.WritePage(idx, []byte(fmt.Sprintf("txn-page-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	grouped := e.meter.Snapshot().Sub(base).RPMBWrites
	if grouped != 1 {
		t.Errorf("group commit of %d pages cost %d RPMB writes, want 1", pages, grouped)
	}
	// The commit seq is the ingest ack's anchor: one group commit advances it
	// by exactly one, no matter how many writers' pages share the txn.
	if got := s.Seq(); got != seq0+1 {
		t.Errorf("group commit advanced seq %d -> %d, want exactly +1", seq0, got)
	}

	// An empty txn is a no-op: no journal record, no RPMB advance, no seq —
	// an ack anchored on its "commit" would be a lie.
	base = e.meter.Snapshot()
	if err := s.Begin().Commit(); err != nil {
		t.Fatal(err)
	}
	if got := e.meter.Snapshot().Sub(base).RPMBWrites; got != 0 {
		t.Errorf("empty txn cost %d RPMB writes, want 0", got)
	}
	if got := s.Seq(); got != seq0+1 {
		t.Errorf("empty txn advanced seq to %d, want it held at %d", got, seq0+1)
	}

	base = e.meter.Snapshot()
	for i := 0; i < pages; i++ {
		if err := s.WritePage(uint32(i), []byte("single")); err != nil {
			t.Fatal(err)
		}
	}
	single := e.meter.Snapshot().Sub(base).RPMBWrites
	if single != pages {
		t.Errorf("%d single-page writes cost %d RPMB writes, want %d", pages, single, pages)
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnCommitVisibilityAndReopen(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	idx, _ := s.Allocate()
	s.WritePage(idx, []byte("old"))

	txn := s.Begin()
	if err := txn.WritePage(idx, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPage(idx)
	if err != nil || !bytes.HasPrefix(got, []byte("old")) {
		t.Fatalf("staged write visible before commit: %q %v", got[:3], err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err = s.ReadPage(idx)
	if err != nil || !bytes.HasPrefix(got, []byte("new")) {
		t.Fatalf("committed write not visible: %q %v", got[:3], err)
	}

	s2, err := Open(e.dev, e.nw, e.meter, Options{})
	if err != nil {
		t.Fatalf("reopen after txn commit: %v", err)
	}
	if err := s2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnAbortDiscardsAndReservationsGapFill(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	txn := s.Begin()
	a, _ := txn.Allocate()
	txn.WritePage(a, []byte("doomed"))
	txn.Abort()
	if err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("commit after abort = %v, want ErrTxnDone", err)
	}
	if s.NumPages() != 0 {
		t.Errorf("aborted txn leaked pages: NumPages = %d", s.NumPages())
	}
	// The aborted reservation stays reserved: the next allocation skips it,
	// and committing past it persists the gap as a zero page.
	idx, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if idx == a {
		t.Errorf("aborted reservation %d handed out again", a)
	}
	gap, err := s.ReadPage(a)
	if err != nil {
		t.Fatalf("gap page %d unreadable: %v", a, err)
	}
	if !bytes.Equal(gap, make([]byte, pager.PageSize)) {
		t.Error("gap page not zero")
	}
	if _, err := Open(e.dev, e.nw, e.meter, Options{}); err != nil {
		t.Fatalf("reopen after gap fill: %v", err)
	}
}

func TestConcurrentAllocateDistinctIndices(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	const goroutines = 8
	const perG = 6
	var wg sync.WaitGroup
	got := make([][]uint32, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				idx, err := s.Allocate()
				if err != nil {
					errs[g] = err
					return
				}
				got[g] = append(got[g], idx)
			}
		}(g)
	}
	wg.Wait()
	seen := map[uint32]bool{}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		for _, idx := range got[g] {
			if seen[idx] {
				t.Fatalf("page index %d allocated twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != goroutines*perG {
		t.Errorf("allocated %d distinct pages, want %d", len(seen), goroutines*perG)
	}
	if err := s.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(e.dev, e.nw, e.meter, Options{}); err != nil {
		t.Fatalf("reopen after concurrent allocates: %v", err)
	}
}

// crashCommit runs a two-page overwrite transaction over a PowerCut armed at
// write k, then revives the device; it returns the error the commit died with.
func crashCommit(t *testing.T, e *testEnv, s *Store, cut *faultinject.PowerCut, k int, tear bool) error {
	t.Helper()
	cut.Arm(k, tear, 77)
	txn := s.Begin()
	for i := uint32(0); i < 2; i++ {
		if err := txn.WritePage(i, []byte(fmt.Sprintf("crashed-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	err := txn.Commit()
	cut.Disarm()
	cut.Revive()
	return err
}

// setupCrashWindow builds the canonical mid-commit crash state: two pages
// committed honestly, then a second transaction whose in-place writes die
// after the journal record and the data/meta writes but before the header —
// the medium no longer matches the anchor and only the journal bridges them.
func setupCrashWindow(t *testing.T, tear bool) (*testEnv, string) {
	t.Helper()
	e := newEnv(t)
	cut := faultinject.NewPowerCut(e.dev, "unit")
	s, err := Open(cut, e.nw, e.meter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	txn := s.Begin()
	for i := 0; i < 2; i++ {
		idx, _ := txn.Allocate()
		txn.WritePage(idx, []byte(fmt.Sprintf("base-%d", i)))
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	want := stateDigest(t, s)
	// Overwrite commit write sequence: journal, data x2, meta x1, header.
	// Kill the header write (write 5) so leaves are new but the header and
	// anchor still describe the old state.
	if err := crashCommit(t, e, s, cut, 5, tear); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("crash commit error = %v, want injected", err)
	}
	// Recovery must replay the journal: the post-state digest is the
	// crashed transaction's contents.
	return e, want
}

func TestCrashMidCommitRecoversToNewState(t *testing.T) {
	for _, tear := range []bool{false, true} {
		e, _ := setupCrashWindow(t, tear)
		s, err := Open(e.dev, e.nw, e.meter, Options{})
		if err != nil {
			t.Fatalf("tear=%t: reopen after mid-commit crash: %v", tear, err)
		}
		for i := uint32(0); i < 2; i++ {
			got, err := s.ReadPage(i)
			if err != nil {
				t.Fatalf("tear=%t: page %d after recovery: %v", tear, i, err)
			}
			if want := fmt.Sprintf("crashed-%d", i); !bytes.HasPrefix(got, []byte(want)) {
				t.Errorf("tear=%t: page %d = %q, want %q", tear, i, got[:9], want)
			}
		}
		if err := s.VerifyAll(); err != nil {
			t.Fatalf("tear=%t: VerifyAll after recovery: %v", tear, err)
		}
	}
}

func TestCrashAfterJournalCompletesCommit(t *testing.T) {
	e := newEnv(t)
	cut := faultinject.NewPowerCut(e.dev, "unit")
	s, err := Open(cut, e.nw, e.meter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	txn := s.Begin()
	for i := 0; i < 2; i++ {
		idx, _ := txn.Allocate()
		txn.WritePage(idx, []byte("v1"))
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// Kill the first in-place write (write 2): only the journal record made
	// it. The commit is durable from the journal alone.
	if err := crashCommit(t, e, s, cut, 2, false); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("crash commit error = %v", err)
	}
	s2, err := Open(e.dev, e.nw, e.meter, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := s2.ReadPage(0)
	if err != nil || !bytes.HasPrefix(got, []byte("crashed-0")) {
		t.Errorf("journaled commit not replayed: %q %v", got[:9], err)
	}
	if err := s2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashDuringJournalWriteKeepsOldState(t *testing.T) {
	for _, tear := range []bool{false, true} {
		e := newEnv(t)
		cut := faultinject.NewPowerCut(e.dev, "unit")
		s, err := Open(cut, e.nw, e.meter, Options{})
		if err != nil {
			t.Fatal(err)
		}
		txn := s.Begin()
		for i := 0; i < 2; i++ {
			idx, _ := txn.Allocate()
			txn.WritePage(idx, []byte(fmt.Sprintf("old-%d", i)))
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		want := stateDigest(t, s)
		// Kill the journal write itself (write 1): nothing of the new
		// transaction may survive.
		if err := crashCommit(t, e, s, cut, 1, tear); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("tear=%t: crash commit error = %v", tear, err)
		}
		s2, err := Open(e.dev, e.nw, e.meter, Options{})
		if err != nil {
			t.Fatalf("tear=%t: reopen: %v", tear, err)
		}
		if got := stateDigest(t, s2); got != want {
			t.Errorf("tear=%t: state after torn journal write differs from pre-commit state", tear)
		}
	}
}

func TestPoisonedStoreRefusesIO(t *testing.T) {
	e := newEnv(t)
	cut := faultinject.NewPowerCut(e.dev, "unit")
	s, err := Open(cut, e.nw, e.meter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := s.Allocate()
	s.WritePage(idx, []byte("ok"))
	cut.Arm(3, false, 1)
	txn := s.Begin()
	txn.WritePage(idx, []byte("boom"))
	txn.WritePage(idx+5, []byte("boom2"))
	if err := txn.Commit(); err == nil {
		t.Fatal("commit over dying device succeeded")
	}
	if _, err := s.ReadPage(idx); !errors.Is(err, ErrStoreFailed) {
		t.Errorf("read on poisoned store = %v, want ErrStoreFailed", err)
	}
	if err := s.VerifyAll(); !errors.Is(err, ErrStoreFailed) {
		t.Errorf("VerifyAll on poisoned store = %v, want ErrStoreFailed", err)
	}
	txn2 := s.Begin()
	txn2.WritePage(0, []byte("x"))
	if err := txn2.Commit(); !errors.Is(err, ErrStoreFailed) {
		t.Errorf("commit on poisoned store = %v, want ErrStoreFailed", err)
	}
	cut.Disarm()
	cut.Revive()
	if _, err := Open(e.dev, e.nw, e.meter, Options{}); err != nil {
		t.Fatalf("reopen after poisoned commit: %v", err)
	}
}

func TestCrashBetweenHeaderAndAnchorRecovers(t *testing.T) {
	// The one crash point no device-write boundary reaches: every in-place
	// write landed but the RPMB anchor never advanced. Recovery must replay
	// (idempotently) and advance the anchor itself.
	e := newEnv(t)
	anchor := &failingAnchor{inner: RPMBAnchor{NW: e.nw}}
	s, err := OpenWith(e.dev, TZKeySource{NW: e.nw}, anchor, e.meter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := s.Allocate()
	s.WritePage(idx, []byte("v1"))
	anchor.failNext = true
	if err := s.WritePage(idx, []byte("v2")); err == nil {
		t.Fatal("commit with dead anchor succeeded")
	}
	s2, err := Open(e.dev, e.nw, e.meter, Options{})
	if err != nil {
		t.Fatalf("reopen after anchor-write crash: %v", err)
	}
	got, err := s2.ReadPage(idx)
	if err != nil || !bytes.HasPrefix(got, []byte("v2")) {
		t.Errorf("anchored recovery lost the committed write: %q %v", got[:2], err)
	}
	if err := s2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// failingAnchor fails StoreRoot once on demand — the crash between the
// header write and the anchor advance.
type failingAnchor struct {
	inner    RPMBAnchor
	failNext bool
}

func (a *failingAnchor) StoreRoot(tag []byte) error {
	if a.failNext {
		a.failNext = false
		return errors.New("simulated power cut before RPMB write")
	}
	return a.inner.StoreRoot(tag)
}

func (a *failingAnchor) LoadRoot(nonce []byte) ([]byte, error) { return a.inner.LoadRoot(nonce) }

func TestStaleJournalSegmentDiscardedOnConsistentMedium(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	idx, _ := s.Allocate()
	s.WritePage(idx, []byte("v1"))
	staleJournal, err := e.dev.ReadBlock(journalBlock)
	if err != nil {
		t.Fatal(err)
	}
	s.WritePage(idx, []byte("v2"))
	// Replay the old (validly MACed) journal segment onto the newer state.
	e.dev.WriteBlock(journalBlock, staleJournal)
	s2, err := Open(e.dev, e.nw, e.meter, Options{})
	if err != nil {
		t.Fatalf("open with stale journal: %v", err)
	}
	got, err := s2.ReadPage(idx)
	if err != nil || !bytes.HasPrefix(got, []byte("v2")) {
		t.Errorf("stale journal rolled the page back: %q %v", got[:2], err)
	}
	if err := s2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestStaleJournalOntoRolledBackMediumRefused(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	idx, _ := s.Allocate()
	snap := e.dev.SnapshotBlocks() // pre-state of the v1 commit
	s.WritePage(idx, []byte("v1"))
	staleJournal, _ := e.dev.ReadBlock(journalBlock) // v1's journal record
	s.WritePage(idx, []byte("v2"))                   // anchor advances past v1

	// Roll the medium back to v1's pre-state and replay v1's journal: the
	// journal bridges pre-v1 -> v1, but the anchor is at v2. Fail closed.
	e.dev.RestoreBlocks(snap)
	e.dev.WriteBlock(journalBlock, staleJournal)
	if _, err := Open(e.dev, e.nw, e.meter, Options{}); !errors.Is(err, ErrFreshness) {
		t.Errorf("stale journal replay open = %v, want ErrFreshness", err)
	}
}

func TestRollbackToPreStateOfAnchoredCommitReplaysForward(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	idx, _ := s.Allocate()
	s.WritePage(idx, []byte("v1"))
	snap := e.dev.SnapshotBlocks() // state v1 (with v1's journal)
	s.WritePage(idx, []byte("v2")) // anchored
	v2Journal, _ := e.dev.ReadBlock(journalBlock)

	// Rewind the medium to v1 but leave v2's journal in place: replaying it
	// reproduces exactly the anchored v2 state, so the rewind achieves
	// nothing.
	e.dev.RestoreBlocks(snap)
	e.dev.WriteBlock(journalBlock, v2Journal)
	s2, err := Open(e.dev, e.nw, e.meter, Options{})
	if err != nil {
		t.Fatalf("open after one-commit rewind with intact journal: %v", err)
	}
	got, err := s2.ReadPage(idx)
	if err != nil || !bytes.HasPrefix(got, []byte("v2")) {
		t.Errorf("replay did not restore the anchored state: %q %v", got[:2], err)
	}
	if err := s2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedJournalTailFailsClosed(t *testing.T) {
	e, _ := setupCrashWindow(t, false)
	blob, err := e.dev.ReadBlock(journalBlock)
	if err != nil {
		t.Fatal(err)
	}
	e.dev.WriteBlock(journalBlock, blob[:len(blob)/2])
	if _, err := Open(e.dev, e.nw, e.meter, Options{}); !errors.Is(err, ErrFreshness) {
		t.Errorf("truncated journal open = %v, want ErrFreshness", err)
	}
}

func TestBitFlippedJournalFailsClosed(t *testing.T) {
	e, _ := setupCrashWindow(t, false)
	if err := e.dev.Corrupt(journalBlock, 100); err != nil {
		t.Fatal(err)
	}
	_, err := Open(e.dev, e.nw, e.meter, Options{})
	if !errors.Is(err, ErrFreshness) {
		t.Errorf("bit-flipped journal open = %v, want ErrFreshness", err)
	}
	if !errors.Is(err, ErrJournalCorrupt) {
		t.Errorf("bit-flipped journal open = %v, want ErrJournalCorrupt cause", err)
	}
}

func TestJournalRecordRoundTripAndTornDecode(t *testing.T) {
	e := newEnv(t)
	s := e.open(t, Options{})
	jrec := &journalRecord{
		Seq:     7,
		PrevTag: bytes.Repeat([]byte{1}, 32),
		PostTag: bytes.Repeat([]byte{2}, 32),
		PostN:   3,
		Entries: []journalEntry{
			{Idx: 0, RecordMAC: []byte("mac0"), Record: []byte("record-zero")},
			{Idx: 2, RecordMAC: []byte("mac2"), Record: []byte("record-two")},
		},
	}
	blob := s.encodeJournal(jrec)
	got, err := s.decodeJournal(blob)
	if err != nil || got == nil {
		t.Fatalf("decode: %v %v", got, err)
	}
	if got.Seq != 7 || got.PostN != 3 || len(got.Entries) != 2 ||
		got.Entries[1].Idx != 2 || !bytes.Equal(got.Entries[1].Record, []byte("record-two")) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	// Every strict prefix is structurally incomplete: torn, not corrupt.
	for cut := 1; cut < len(blob); cut += 7 {
		j, err := s.decodeJournal(blob[:cut])
		if err != nil || j != nil {
			t.Fatalf("prefix of %d bytes decoded to %v, %v; want nil, nil", cut, j, err)
		}
	}
	// A complete blob with one flipped bit is corrupt.
	bad := append([]byte(nil), blob...)
	bad[50] ^= 1
	if _, err := s.decodeJournal(bad); !errors.Is(err, ErrJournalCorrupt) {
		t.Errorf("flipped journal decode = %v, want ErrJournalCorrupt", err)
	}
}
