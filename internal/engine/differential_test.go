package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"ironsafe/internal/pager"
	"ironsafe/internal/schema"
	"ironsafe/internal/simtime"
	"ironsafe/internal/value"
)

// TestRandomizedPredicateDifferential compares the SQL engine against a
// direct Go evaluation of the same predicates over randomized data: for
// each generated WHERE clause, the engine's matching ids must equal the
// reference set exactly.
func TestRandomizedPredicateDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	dev := pager.NewMemDevice()
	var m simtime.Meter
	db, err := Open(pager.NewPager(dev, &m, 256), &m)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE items (id INTEGER, qty INTEGER, price DOUBLE, tag VARCHAR(8), shipped DATE)`)

	type item struct {
		id, qty int64
		price   float64
		tag     string
		shipped int64 // days
	}
	tags := []string{"alpha", "beta", "gamma", "delta"}
	epoch := value.DaysFromCivil(1995, 1, 1)
	var items []item
	rows := make([]schema.Row, 400)
	for i := range rows {
		it := item{
			id:      int64(i),
			qty:     int64(rng.Intn(50)),
			price:   float64(rng.Intn(10000)) / 100,
			tag:     tags[rng.Intn(len(tags))],
			shipped: epoch + int64(rng.Intn(365)),
		}
		items = append(items, it)
		rows[i] = schema.Row{
			value.Int(it.id), value.Int(it.qty), value.Float(it.price),
			value.Str(it.tag), value.Date(it.shipped),
		}
	}
	if err := db.InsertRows("items", rows); err != nil {
		t.Fatal(err)
	}

	// Predicate generators: each returns (SQL fragment, reference func).
	type pred struct {
		sql string
		ref func(item) bool
	}
	genPred := func() pred {
		switch rng.Intn(6) {
		case 0:
			n := int64(rng.Intn(50))
			return pred{fmt.Sprintf("qty < %d", n), func(i item) bool { return i.qty < n }}
		case 1:
			n := float64(rng.Intn(100))
			return pred{fmt.Sprintf("price >= %g", n), func(i item) bool { return i.price >= n }}
		case 2:
			tg := tags[rng.Intn(len(tags))]
			return pred{fmt.Sprintf("tag = '%s'", tg), func(i item) bool { return i.tag == tg }}
		case 3:
			lo, hi := int64(rng.Intn(25)), int64(25+rng.Intn(25))
			return pred{fmt.Sprintf("qty BETWEEN %d AND %d", lo, hi),
				func(i item) bool { return i.qty >= lo && i.qty <= hi }}
		case 4:
			days := rng.Intn(300)
			y, mo, d := value.CivilFromDays(epoch + int64(days))
			cut := fmt.Sprintf("%04d-%02d-%02d", y, mo, d)
			cutDays := epoch + int64(days)
			return pred{fmt.Sprintf("shipped > date '%s'", cut),
				func(i item) bool { return i.shipped > cutDays }}
		default:
			t1, t2 := tags[rng.Intn(len(tags))], tags[rng.Intn(len(tags))]
			return pred{fmt.Sprintf("tag IN ('%s', '%s')", t1, t2),
				func(i item) bool { return i.tag == t1 || i.tag == t2 }}
		}
	}

	for trial := 0; trial < 200; trial++ {
		// Combine 1-3 predicates with AND/OR.
		n := 1 + rng.Intn(3)
		preds := make([]pred, n)
		ops := make([]string, n-1)
		for i := range preds {
			preds[i] = genPred()
		}
		where := preds[0].sql
		for i := 1; i < n; i++ {
			op := "AND"
			if rng.Intn(2) == 0 {
				op = "OR"
			}
			ops[i-1] = op
			where += " " + op + " " + preds[i].sql
		}
		// Left-associative reference evaluation matching the parser
		// (AND binds tighter than OR).
		ref := func(it item) bool {
			// Evaluate respecting precedence: split at ORs.
			orGroups := [][]int{{0}}
			for i, op := range ops {
				if op == "OR" {
					orGroups = append(orGroups, []int{i + 1})
				} else {
					last := len(orGroups) - 1
					orGroups[last] = append(orGroups[last], i+1)
				}
			}
			for _, g := range orGroups {
				all := true
				for _, pi := range g {
					if !preds[pi].ref(it) {
						all = false
						break
					}
				}
				if all {
					return true
				}
			}
			return false
		}

		res, err := db.Execute("SELECT id FROM items WHERE " + where + " ORDER BY id")
		if err != nil {
			t.Fatalf("trial %d %q: %v", trial, where, err)
		}
		var want []int64
		for _, it := range items {
			if ref(it) {
				want = append(want, it.id)
			}
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("trial %d %q: engine %d rows, reference %d", trial, where, len(res.Rows), len(want))
		}
		for i, r := range res.Rows {
			if r[0].AsInt() != want[i] {
				t.Fatalf("trial %d %q: row %d = %v, want %d", trial, where, i, r[0], want[i])
			}
		}
	}
}

// TestRandomizedAggregateDifferential checks SUM/COUNT/MIN/MAX/AVG grouped
// by tag against direct computation.
func TestRandomizedAggregateDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dev := pager.NewMemDevice()
	var m simtime.Meter
	db, err := Open(pager.NewPager(dev, &m, 256), &m)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE s (tag VARCHAR(4), v INTEGER)`)
	sums := map[string]int64{}
	counts := map[string]int64{}
	mins := map[string]int64{}
	maxs := map[string]int64{}
	var rows []schema.Row
	for i := 0; i < 500; i++ {
		tag := string(rune('a' + rng.Intn(5)))
		v := int64(rng.Intn(1000))
		rows = append(rows, schema.Row{value.Str(tag), value.Int(v)})
		sums[tag] += v
		counts[tag]++
		if counts[tag] == 1 || v < mins[tag] {
			mins[tag] = v
		}
		if v > maxs[tag] {
			maxs[tag] = v
		}
	}
	if err := db.InsertRows("s", rows); err != nil {
		t.Fatal(err)
	}
	res, err := db.Execute("SELECT tag, sum(v), count(*), min(v), max(v), avg(v) FROM s GROUP BY tag ORDER BY tag")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(sums) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(sums))
	}
	for _, r := range res.Rows {
		tag := r[0].AsString()
		if r[1].AsInt() != sums[tag] || r[2].AsInt() != counts[tag] ||
			r[3].AsInt() != mins[tag] || r[4].AsInt() != maxs[tag] {
			t.Errorf("tag %s: got (%v,%v,%v,%v), want (%d,%d,%d,%d)",
				tag, r[1], r[2], r[3], r[4], sums[tag], counts[tag], mins[tag], maxs[tag])
		}
		wantAvg := float64(sums[tag]) / float64(counts[tag])
		if d := r[5].AsFloat() - wantAvg; d > 1e-9 || d < -1e-9 {
			t.Errorf("tag %s: avg %v, want %g", tag, r[5], wantAvg)
		}
	}
}
