package engine

import (
	"fmt"
	"strings"

	"ironsafe/internal/pager"
	"ironsafe/internal/sql/ast"
	"ironsafe/internal/sql/exec"
)

// This file implements atomic statement batches: every DML statement in a
// batch plus the catalog update land in ONE store transaction (one journal
// record, one RPMB anchor advance on the secure store). A crash at any point
// recovers to the whole-batch boundary — the pre-image or the post-image,
// never a mix of heap and catalog, and never a partially applied statement.
//
// The single-statement INSERT/UPDATE/DELETE paths route through the same
// machinery (a batch of one), which closes the crash window the two-txn
// layout had: heap pages committed in one transaction, catalog pages in a
// later one, with a torn statement visible in between.

// overlayStore is a PageStore view of a store with an open transaction
// layered on top: writes stage into the transaction, reads see staged pages
// first (read-your-writes), and everything else falls through to the base
// store. It deliberately does NOT implement pager.TxnStore, so heap bulk
// paths run their plain (non-committing) bodies against it.
type overlayStore struct {
	base   pager.PageStore
	txn    pager.StoreTxn
	staged map[uint32][]byte
	max    uint32 // one past the highest staged/allocated page
}

func newOverlay(base pager.PageStore, txn pager.StoreTxn) *overlayStore {
	return &overlayStore{base: base, txn: txn, staged: map[uint32][]byte{}, max: base.NumPages()}
}

// ReadPage implements pager.PageStore with read-your-writes semantics.
func (o *overlayStore) ReadPage(idx uint32) ([]byte, error) {
	if b, ok := o.staged[idx]; ok {
		return append([]byte(nil), b...), nil
	}
	return o.base.ReadPage(idx)
}

// ReadPages implements pager.PageStore; per-page semantics match ReadPage.
func (o *overlayStore) ReadPages(idxs []uint32) ([][]byte, error) {
	out := make([][]byte, len(idxs))
	for i, idx := range idxs {
		b, err := o.ReadPage(idx)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// WritePage stages a page write into the transaction.
func (o *overlayStore) WritePage(idx uint32, data []byte) error {
	if len(data) > pager.PageSize {
		return fmt.Errorf("engine: page write of %d bytes exceeds page size", len(data))
	}
	if err := o.txn.WritePage(idx, data); err != nil {
		return err
	}
	buf := make([]byte, pager.PageSize)
	copy(buf, data)
	o.staged[idx] = buf
	if idx+1 > o.max {
		o.max = idx + 1
	}
	return nil
}

// Allocate reserves a fresh page through the transaction.
func (o *overlayStore) Allocate() (uint32, error) {
	idx, err := o.txn.Allocate()
	if err != nil {
		return 0, err
	}
	o.staged[idx] = make([]byte, pager.PageSize)
	if idx+1 > o.max {
		o.max = idx + 1
	}
	return idx, nil
}

// NumPages implements pager.PageStore.
func (o *overlayStore) NumPages() uint32 { return o.max }

// batchCtx is one open atomic batch: an overlay store plus shadow tables.
// Statement execution mutates only the shadows; commit persists the catalog
// into the same transaction, commits it, and installs the shadows into the
// live catalog. Abort leaves the database untouched.
type batchCtx struct {
	db      *DB
	ov      *overlayStore
	txn     pager.StoreTxn
	shadows map[string]*Table
	dropped map[string]bool
	created map[string]bool
}

func (db *DB) newBatch(ts pager.TxnStore) *batchCtx {
	txn := ts.BeginTxn()
	return &batchCtx{
		db:      db,
		ov:      newOverlay(db.store, txn),
		txn:     txn,
		shadows: map[string]*Table{},
		dropped: map[string]bool{},
		created: map[string]bool{},
	}
}

// shadow returns the batch-local view of a table, cloning it from the live
// catalog on first touch. The shadow's heap runs over the overlay store, so
// statements in the batch read their predecessors' staged writes.
func (b *batchCtx) shadow(name string) (*Table, error) {
	key := strings.ToLower(name)
	if b.dropped[key] {
		return nil, fmt.Errorf("engine: no such table %q", name)
	}
	if t, ok := b.shadows[key]; ok {
		return t, nil
	}
	real, err := b.db.Table(name)
	if err != nil {
		return nil, err
	}
	heap := pager.OpenHeapFile(b.ov, real.heap.Pages())
	sh := &Table{Name: real.Name, Sch: real.Sch, heap: heap, db: b.db}
	b.shadows[key] = sh
	return sh, nil
}

// abort discards the batch.
func (b *batchCtx) abort() { b.txn.Abort() }

// commit persists the catalog into the transaction, commits it atomically,
// and installs the shadow tables into the live catalog. The caller must hold
// db.execMu exclusively.
func (b *batchCtx) commit() error {
	if err := b.persistCatalog(); err != nil {
		b.abort()
		return err
	}
	if err := b.txn.Commit(); err != nil {
		return err
	}
	b.db.mu.Lock()
	defer b.db.mu.Unlock()
	for key := range b.dropped {
		delete(b.db.tables, key)
	}
	for key, sh := range b.shadows {
		if b.dropped[key] {
			continue
		}
		heap := pager.OpenHeapFile(b.db.store, sh.heap.Pages())
		heap.SetScanConfig(b.db.scanCfg)
		if real, ok := b.db.tables[key]; ok {
			real.heap = heap
			real.Sch = sh.Sch
		} else {
			b.db.tables[key] = &Table{Name: sh.Name, Sch: sh.Sch, heap: heap, db: b.db}
		}
	}
	return nil
}

// persistCatalog writes the catalog as it will look after the batch —
// shadow page lists where touched, live ones elsewhere, dropped tables
// omitted — through the batch transaction.
func (b *batchCtx) persistCatalog() error {
	b.db.mu.RLock()
	tables := make([]*Table, 0, len(b.db.tables)+len(b.created))
	seen := map[string]bool{}
	for key, t := range b.db.tables {
		if b.dropped[key] {
			continue
		}
		if sh, ok := b.shadows[key]; ok {
			tables = append(tables, sh)
		} else {
			tables = append(tables, t)
		}
		seen[key] = true
	}
	b.db.mu.RUnlock()
	for key, sh := range b.shadows {
		if !seen[key] && !b.dropped[key] {
			tables = append(tables, sh)
		}
	}
	return writeCatalog(b.ov, tables)
}

// ExecuteBatch applies a sequence of DML statements (INSERT/UPDATE/DELETE)
// atomically: on a transactional store, every statement and the catalog
// update commit as one group (exactly one store commit, so on the secure
// store exactly one journal record and one RPMB advance); on a plain store
// the statements run sequentially with no atomicity across them. On error
// nothing is applied. This is the ingest coalescer's substrate: the commit
// seq that anchored the batch is the store's Seq() after a successful call.
func (db *DB) ExecuteBatch(stmts []ast.Statement) ([]*exec.Result, error) {
	db.execMu.Lock()
	defer db.execMu.Unlock()
	return db.executeBatchLocked(stmts)
}

func (db *DB) executeBatchLocked(stmts []ast.Statement) ([]*exec.Result, error) {
	ts, ok := db.store.(pager.TxnStore)
	if !ok {
		results := make([]*exec.Result, 0, len(stmts))
		for _, stmt := range stmts {
			res, err := db.applyPlain(stmt)
			if err != nil {
				return nil, err
			}
			results = append(results, res)
		}
		return results, nil
	}
	b := db.newBatch(ts)
	results := make([]*exec.Result, 0, len(stmts))
	for _, stmt := range stmts {
		res, err := db.applyStaged(b, stmt)
		if err != nil {
			b.abort()
			return nil, err
		}
		results = append(results, res)
	}
	if err := b.commit(); err != nil {
		return nil, err
	}
	return results, nil
}

// applyStaged executes one DML statement against the batch's shadows.
func (db *DB) applyStaged(b *batchCtx, stmt ast.Statement) (*exec.Result, error) {
	switch s := stmt.(type) {
	case *ast.Insert:
		t, err := b.shadow(s.Table)
		if err != nil {
			return nil, err
		}
		rows, err := db.buildInsertRows(t, s)
		if err != nil {
			return nil, err
		}
		if err := t.heap.AppendAll(rows); err != nil {
			return nil, err
		}
		return affected(len(rows)), nil
	case *ast.Update:
		t, err := b.shadow(s.Table)
		if err != nil {
			return nil, err
		}
		rows, changed, err := db.buildUpdateRows(t, s)
		if err != nil {
			return nil, err
		}
		if err := t.heap.Rewrite(rows); err != nil {
			return nil, err
		}
		return affected(changed), nil
	case *ast.Delete:
		t, err := b.shadow(s.Table)
		if err != nil {
			return nil, err
		}
		kept, removed, err := db.buildDeleteRows(t, s)
		if err != nil {
			return nil, err
		}
		if err := t.heap.Rewrite(kept); err != nil {
			return nil, err
		}
		return affected(removed), nil
	default:
		return nil, fmt.Errorf("engine: only INSERT/UPDATE/DELETE allowed in a batch, got %T", stmt)
	}
}

// applyPlain is the non-transactional fallback (plain pager stores): the
// classic two-step heap-then-catalog layout, with no cross-step atomicity.
func (db *DB) applyPlain(stmt ast.Statement) (*exec.Result, error) {
	switch s := stmt.(type) {
	case *ast.Insert:
		t, err := db.Table(s.Table)
		if err != nil {
			return nil, err
		}
		rows, err := db.buildInsertRows(t, s)
		if err != nil {
			return nil, err
		}
		if err := t.heap.AppendAll(rows); err != nil {
			return nil, err
		}
		if err := db.persistCatalogLocked(); err != nil {
			return nil, err
		}
		return affected(len(rows)), nil
	case *ast.Update:
		t, err := db.Table(s.Table)
		if err != nil {
			return nil, err
		}
		rows, changed, err := db.buildUpdateRows(t, s)
		if err != nil {
			return nil, err
		}
		if err := t.heap.Rewrite(rows); err != nil {
			return nil, err
		}
		if err := db.persistCatalogLocked(); err != nil {
			return nil, err
		}
		return affected(changed), nil
	case *ast.Delete:
		t, err := db.Table(s.Table)
		if err != nil {
			return nil, err
		}
		kept, removed, err := db.buildDeleteRows(t, s)
		if err != nil {
			return nil, err
		}
		if err := t.heap.Rewrite(kept); err != nil {
			return nil, err
		}
		if err := db.persistCatalogLocked(); err != nil {
			return nil, err
		}
		return affected(removed), nil
	default:
		return nil, fmt.Errorf("engine: only INSERT/UPDATE/DELETE allowed in a batch, got %T", stmt)
	}
}

func (db *DB) persistCatalogLocked() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.persistCatalog()
}
