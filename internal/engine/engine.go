// Package engine is the database engine: a catalog of heap-file tables over
// a PageStore (plain pager or secure store), with SQL DDL/DML/query execution
// via the exec package. It plays the role SQLite plays in the paper — both
// the on-disk instance on the storage system and the in-memory instance on
// the host run this engine, differing only in the PageStore beneath them.
package engine

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ironsafe/internal/pager"
	"ironsafe/internal/schema"
	"ironsafe/internal/simtime"
	"ironsafe/internal/sql/ast"
	"ironsafe/internal/sql/exec"
	"ironsafe/internal/sql/parser"
	"ironsafe/internal/value"
)

// Table is one stored table.
type Table struct {
	Name string
	Sch  *schema.Schema
	heap *pager.HeapFile
	db   *DB
}

// Schema implements exec.Relation.
func (t *Table) Schema() *schema.Schema { return t.Sch }

// Scan implements exec.Relation.
func (t *Table) Scan(fn func(schema.Row) error) error {
	return t.heap.Scan(fn)
}

// ScanBatch implements exec.BatchRelation: rows stream out of the heap in
// windows of batchRows, wrapped as columnar batches. The underlying window
// slice is reused between callbacks (see pager.HeapFile.ScanRows), so
// consumers must copy out any Row headers they retain.
func (t *Table) ScanBatch(batchRows int, fn func(*exec.Batch) error) error {
	return t.heap.ScanRows(batchRows, func(rows []schema.Row) error {
		return fn(exec.NewBatch(t.Sch, rows))
	})
}

// Count returns the table's row count.
func (t *Table) Count() (int, error) { return t.heap.Count() }

// NumPages returns the number of heap pages the table occupies.
func (t *Table) NumPages() int { return t.heap.NumPages() }

// DB is a database instance over a page store.
type DB struct {
	store pager.PageStore
	meter *simtime.Meter

	mu        sync.RWMutex
	tables    map[string]*Table
	scanCfg   pager.ScanConfig
	execBatch int // executor batch size (0 = exec.DefaultBatchRows, 1 = row-at-a-time)

	// execMu serializes writers against readers: SELECTs run concurrently,
	// DDL/DML take the write lock (SQLite-style multi-reader/one-writer).
	execMu sync.RWMutex
}

// catalogRecord is the persisted form of the catalog.
type catalogRecord struct {
	Tables []tableRecord `json:"tables"`
}

type tableRecord struct {
	Name    string         `json:"name"`
	Columns []columnRecord `json:"columns"`
	Pages   []uint32       `json:"pages"`
}

type columnRecord struct {
	Name string     `json:"name"`
	Kind value.Kind `json:"kind"`
}

// Open attaches to (or initializes) a database on the store. Page 0 is the
// catalog root: [u32 length][u32 page count][page ids...]; catalog JSON
// lives in separately allocated pages so it can grow.
func Open(store pager.PageStore, meter *simtime.Meter) (*DB, error) {
	db := &DB{store: store, meter: meter, tables: map[string]*Table{}}
	if store.NumPages() == 0 {
		if _, err := store.Allocate(); err != nil { // page 0 = catalog root
			return nil, fmt.Errorf("engine: allocating catalog root: %w", err)
		}
		if err := db.persistCatalog(); err != nil {
			return nil, err
		}
		return db, nil
	}
	if err := db.loadCatalog(); err != nil {
		return nil, err
	}
	return db, nil
}

func (db *DB) loadCatalog() error {
	root, err := db.store.ReadPage(0)
	if err != nil {
		return fmt.Errorf("engine: reading catalog root: %w", err)
	}
	length := binary.LittleEndian.Uint32(root[0:4])
	npages := binary.LittleEndian.Uint32(root[4:8])
	if length == 0 {
		return nil
	}
	var blob []byte
	for i := uint32(0); i < npages; i++ {
		id := binary.LittleEndian.Uint32(root[8+4*i : 12+4*i])
		page, err := db.store.ReadPage(id)
		if err != nil {
			return fmt.Errorf("engine: reading catalog page %d: %w", id, err)
		}
		blob = append(blob, page...)
	}
	if uint32(len(blob)) < length {
		return fmt.Errorf("engine: catalog truncated (%d < %d)", len(blob), length)
	}
	var rec catalogRecord
	if err := json.Unmarshal(blob[:length], &rec); err != nil {
		return fmt.Errorf("engine: decoding catalog: %w", err)
	}
	for _, tr := range rec.Tables {
		sch := schema.New()
		for _, c := range tr.Columns {
			sch.Columns = append(sch.Columns, schema.Col(c.Name, c.Kind))
		}
		heap := pager.OpenHeapFile(db.store, tr.Pages)
		heap.SetScanConfig(db.scanCfg)
		db.tables[strings.ToLower(tr.Name)] = &Table{
			Name: tr.Name,
			Sch:  sch,
			heap: heap,
			db:   db,
		}
	}
	return nil
}

// SetScanConfig installs the scan-pipeline configuration on every current
// and future table heap (see pager.ScanConfig; the zero value restores the
// sequential per-page path).
func (db *DB) SetScanConfig(cfg pager.ScanConfig) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.scanCfg = cfg
	for _, t := range db.tables {
		t.heap.SetScanConfig(cfg)
	}
}

// SetExecBatchRows sets the executor batch size for subsequent SELECTs:
// 0 restores exec.DefaultBatchRows, 1 forces the row-at-a-time pipeline.
func (db *DB) SetExecBatchRows(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.execBatch = n
}

// catalogPagesMax bounds how many catalog pages fit in the root page.
const catalogPagesMax = (pager.PageSize - 8) / 4

// catalogWriter is the write-side store subset catalog persistence needs —
// satisfied by both a PageStore and a batch overlay.
type catalogWriter interface {
	WritePage(idx uint32, data []byte) error
	Allocate() (uint32, error)
}

func (db *DB) persistCatalog() error {
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	return writeCatalog(db.store, tables)
}

// writeCatalog persists the catalog for the given tables through w. Tables
// are serialized in name order so the catalog bytes are a pure function of
// the database state — replicas applying the same statements stay
// byte-comparable and the crash sweeps' media digests stay deterministic.
func writeCatalog(w catalogWriter, tables []*Table) error {
	sorted := append([]*Table(nil), tables...)
	sort.Slice(sorted, func(i, j int) bool {
		return strings.ToLower(sorted[i].Name) < strings.ToLower(sorted[j].Name)
	})
	rec := catalogRecord{}
	for _, t := range sorted {
		tr := tableRecord{Name: t.Name, Pages: t.heap.Pages()}
		for _, c := range t.Sch.Columns {
			tr.Columns = append(tr.Columns, columnRecord{Name: c.Name, Kind: c.Kind})
		}
		rec.Tables = append(rec.Tables, tr)
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("engine: encoding catalog: %w", err)
	}
	need := (len(blob) + pager.PageSize - 1) / pager.PageSize
	if need > catalogPagesMax {
		return fmt.Errorf("engine: catalog too large (%d pages)", need)
	}
	root := make([]byte, pager.PageSize)
	binary.LittleEndian.PutUint32(root[0:4], uint32(len(blob)))
	binary.LittleEndian.PutUint32(root[4:8], uint32(need))
	for i := 0; i < need; i++ {
		id, err := w.Allocate()
		if err != nil {
			return fmt.Errorf("engine: allocating catalog page: %w", err)
		}
		binary.LittleEndian.PutUint32(root[8+4*i:12+4*i], id)
		end := (i + 1) * pager.PageSize
		if end > len(blob) {
			end = len(blob)
		}
		if err := w.WritePage(id, blob[i*pager.PageSize:end]); err != nil {
			return err
		}
	}
	return w.WritePage(0, root)
}

// Relation implements exec.Catalog.
func (db *DB) Relation(name string) (exec.Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", name)
	}
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", name)
	}
	return t, nil
}

// TableNames lists the tables in the catalog.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var names []string
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	return names
}

// Execute parses and runs one SQL statement. SELECTs return a result; DDL
// and DML return a result with an "affected" count column.
func (db *DB) Execute(sqlText string) (*exec.Result, error) {
	stmt, err := parser.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	return db.ExecuteStmt(stmt)
}

// ExecuteStmt runs a parsed statement.
func (db *DB) ExecuteStmt(stmt ast.Statement) (*exec.Result, error) {
	switch s := stmt.(type) {
	case *ast.Select:
		db.execMu.RLock()
		defer db.execMu.RUnlock()
		db.mu.RLock()
		batch := db.execBatch
		db.mu.RUnlock()
		return exec.RunBatched(s, db, db.meter, batch)
	case *ast.CreateTable:
		db.execMu.Lock()
		defer db.execMu.Unlock()
		return db.createTable(s)
	case *ast.Insert:
		db.execMu.Lock()
		defer db.execMu.Unlock()
		return db.insert(s)
	case *ast.Update:
		db.execMu.Lock()
		defer db.execMu.Unlock()
		return db.update(s)
	case *ast.Delete:
		db.execMu.Lock()
		defer db.execMu.Unlock()
		return db.delete(s)
	case *ast.DropTable:
		db.execMu.Lock()
		defer db.execMu.Unlock()
		return db.dropTable(s)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

func affected(n int) *exec.Result {
	return &exec.Result{
		Sch:  schema.New(schema.Col("affected", value.KindInt)),
		Rows: []schema.Row{{value.Int(int64(n))}},
	}
}

func (db *DB) createTable(s *ast.CreateTable) (*exec.Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("engine: table %q already exists", s.Name)
	}
	sch := schema.New()
	seen := map[string]bool{}
	for _, c := range s.Columns {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return nil, fmt.Errorf("engine: duplicate column %q", c.Name)
		}
		seen[lc] = true
		sch.Columns = append(sch.Columns, schema.Col(c.Name, c.Kind))
	}
	if ts, ok := db.store.(pager.TxnStore); ok {
		// Atomic DDL: the new (empty) table and the catalog update land in
		// one commit.
		db.mu.Unlock()
		b := db.newBatch(ts)
		heap := pager.OpenHeapFile(b.ov, nil)
		b.shadows[key] = &Table{Name: s.Name, Sch: sch, heap: heap, db: db}
		b.created[key] = true
		err := b.commit()
		db.mu.Lock()
		if err != nil {
			return nil, err
		}
		return affected(0), nil
	}
	heap := pager.NewHeapFile(db.store)
	heap.SetScanConfig(db.scanCfg)
	db.tables[key] = &Table{Name: s.Name, Sch: sch, heap: heap, db: db}
	if err := db.persistCatalog(); err != nil {
		return nil, err
	}
	return affected(0), nil
}

func (db *DB) dropTable(s *ast.DropTable) (*exec.Result, error) {
	db.mu.Lock()
	key := strings.ToLower(s.Name)
	t, exists := db.tables[key]
	if !exists {
		db.mu.Unlock()
		if s.IfExists {
			return affected(0), nil
		}
		return nil, fmt.Errorf("engine: no such table %q", s.Name)
	}
	if ts, ok := db.store.(pager.TxnStore); ok {
		// Atomic drop: page wipe (session-cleanup semantics) and catalog
		// removal commit as one group.
		db.mu.Unlock()
		b := db.newBatch(ts)
		sh, err := b.shadow(s.Name)
		if err != nil {
			b.abort()
			return nil, err
		}
		if err := sh.heap.Rewrite(nil); err != nil {
			b.abort()
			return nil, err
		}
		b.dropped[key] = true
		if err := b.commit(); err != nil {
			return nil, err
		}
		return affected(0), nil
	}
	defer db.mu.Unlock()
	// Wipe the table's pages before dropping (session-cleanup semantics).
	if err := t.heap.Rewrite(nil); err != nil {
		return nil, err
	}
	delete(db.tables, key)
	if err := db.persistCatalog(); err != nil {
		return nil, err
	}
	return affected(0), nil
}

// coerce adapts a literal value to the column kind where lossless.
func coerce(v value.Value, kind value.Kind) (value.Value, error) {
	if v.IsNull() || v.Kind() == kind {
		return v, nil
	}
	switch kind {
	case value.KindFloat:
		if v.Kind() == value.KindInt {
			return value.Float(float64(v.AsInt())), nil
		}
	case value.KindInt:
		if v.Kind() == value.KindFloat && v.AsFloat() == float64(int64(v.AsFloat())) {
			return value.Int(int64(v.AsFloat())), nil
		}
	case value.KindDate:
		if v.Kind() == value.KindString {
			return value.ParseDate(v.AsString())
		}
	}
	return value.Null(), fmt.Errorf("engine: cannot store %s into %s column", v.Kind(), kind)
}

func (db *DB) insert(s *ast.Insert) (*exec.Result, error) {
	return db.applyDML(s)
}

// buildInsertRows evaluates an INSERT's value lists against t's schema.
func (db *DB) buildInsertRows(t *Table, s *ast.Insert) ([]schema.Row, error) {
	// Map insert columns to table positions.
	positions := make([]int, 0, t.Sch.Len())
	if len(s.Columns) == 0 {
		for i := range t.Sch.Columns {
			positions = append(positions, i)
		}
	} else {
		for _, c := range s.Columns {
			idx := t.Sch.IndexOf(c)
			if idx < 0 {
				return nil, fmt.Errorf("engine: no column %q in %q", c, s.Table)
			}
			positions = append(positions, idx)
		}
	}
	rows := make([]schema.Row, 0, len(s.Rows))
	for ri, exprs := range s.Rows {
		if len(exprs) != len(positions) {
			return nil, fmt.Errorf("engine: row %d has %d values, want %d", ri, len(exprs), len(positions))
		}
		row := make(schema.Row, t.Sch.Len())
		for i := range row {
			row[i] = value.Null()
		}
		for i, e := range exprs {
			v, err := evalConst(e)
			if err != nil {
				return nil, fmt.Errorf("engine: row %d: %w", ri, err)
			}
			cv, err := coerce(v, t.Sch.Columns[positions[i]].Kind)
			if err != nil {
				return nil, fmt.Errorf("engine: row %d column %q: %w", ri, t.Sch.Columns[positions[i]].Name, err)
			}
			row[positions[i]] = cv
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// applyDML runs one INSERT/UPDATE/DELETE as a batch of one: on a
// transactional store the heap mutation and the catalog update commit
// atomically (a crash recovers to the whole-statement boundary); a plain
// store keeps the classic two-step layout. Callers hold execMu exclusively.
func (db *DB) applyDML(stmt ast.Statement) (*exec.Result, error) {
	results, err := db.executeBatchLocked([]ast.Statement{stmt})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// InsertRows bulk-loads pre-built rows (used by the TPC-H loader); values
// must already match the schema. On a transactional store the whole load
// and the catalog update are one atomic commit.
func (db *DB) InsertRows(table string, rows []schema.Row) error {
	db.execMu.Lock()
	defer db.execMu.Unlock()
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	for ri, r := range rows {
		if len(r) != t.Sch.Len() {
			return fmt.Errorf("engine: row %d has %d values, want %d", ri, len(r), t.Sch.Len())
		}
	}
	if ts, ok := db.store.(pager.TxnStore); ok {
		b := db.newBatch(ts)
		sh, err := b.shadow(table)
		if err != nil {
			b.abort()
			return err
		}
		if err := sh.heap.AppendAll(rows); err != nil {
			b.abort()
			return err
		}
		return b.commit()
	}
	if err := t.heap.AppendAll(rows); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.persistCatalog()
}

func (db *DB) update(s *ast.Update) (*exec.Result, error) {
	return db.applyDML(s)
}

// buildUpdateRows computes the post-image row set of an UPDATE over t's
// current contents (which, inside a batch, include earlier staged writes).
func (db *DB) buildUpdateRows(t *Table, s *ast.Update) ([]schema.Row, int, error) {
	setIdx := map[int]ast.Expr{}
	for col, e := range s.Set {
		idx := t.Sch.IndexOf(col)
		if idx < 0 {
			return nil, 0, fmt.Errorf("engine: no column %q in %q", col, s.Table)
		}
		setIdx[idx] = e
	}
	var rows []schema.Row
	changed := 0
	err := t.heap.Scan(func(r schema.Row) error {
		match := true
		if s.Where != nil {
			v, err := evalRowPredicate(s.Where, t.Sch, r, db, db.meter)
			if err != nil {
				return err
			}
			match = v
		}
		if match {
			nr := r.Clone()
			for idx, e := range setIdx {
				v, err := evalRowExpr(e, t.Sch, r, db, db.meter)
				if err != nil {
					return err
				}
				cv, err := coerce(v, t.Sch.Columns[idx].Kind)
				if err != nil {
					return err
				}
				nr[idx] = cv
			}
			rows = append(rows, nr)
			changed++
		} else {
			rows = append(rows, r)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return rows, changed, nil
}

func (db *DB) delete(s *ast.Delete) (*exec.Result, error) {
	return db.applyDML(s)
}

// buildDeleteRows computes the surviving row set of a DELETE.
func (db *DB) buildDeleteRows(t *Table, s *ast.Delete) ([]schema.Row, int, error) {
	var kept []schema.Row
	removed := 0
	err := t.heap.Scan(func(r schema.Row) error {
		match := true
		if s.Where != nil {
			v, err := evalRowPredicate(s.Where, t.Sch, r, db, db.meter)
			if err != nil {
				return err
			}
			match = v
		}
		if match {
			removed++
		} else {
			kept = append(kept, r)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return kept, removed, nil
}

// evalConst evaluates an expression with no row context (INSERT values).
func evalConst(e ast.Expr) (value.Value, error) {
	sel := &ast.Select{Items: []ast.SelectItem{{Expr: e}}, Limit: -1}
	res, err := exec.Run(sel, emptyCatalog{}, nil)
	if err != nil {
		return value.Null(), err
	}
	return res.Rows[0][0], nil
}

// evalRowExpr evaluates an expression against one row of a table.
func evalRowExpr(e ast.Expr, sch *schema.Schema, row schema.Row, cat exec.Catalog, meter *simtime.Meter) (value.Value, error) {
	sel := &ast.Select{Items: []ast.SelectItem{{Expr: e}}, Limit: -1}
	env := &exec.Env{Sch: sch, Row: row}
	res, err := exec.RunWithEnv(sel, cat, meter, env)
	if err != nil {
		return value.Null(), err
	}
	return res.Rows[0][0], nil
}

// evalRowPredicate evaluates a WHERE predicate against one row.
func evalRowPredicate(e ast.Expr, sch *schema.Schema, row schema.Row, cat exec.Catalog, meter *simtime.Meter) (bool, error) {
	v, err := evalRowExpr(e, sch, row, cat, meter)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Kind() == value.KindBool && v.AsBool(), nil
}

type emptyCatalog struct{}

func (emptyCatalog) Relation(name string) (exec.Relation, error) {
	return nil, fmt.Errorf("engine: no table %q in constant context", name)
}
