package engine

import (
	"fmt"
	"testing"

	"ironsafe/internal/pager"
	"ironsafe/internal/schema"
	"ironsafe/internal/securestore"
	"ironsafe/internal/simtime"
	"ironsafe/internal/sql/ast"
	"ironsafe/internal/sql/parser"
	"ironsafe/internal/tee/trustzone"
	"ironsafe/internal/value"
)

// secureEnv is an engine over a secure store, for transaction-visible tests.
type secureEnv struct {
	dev   *pager.MemDevice
	nw    *trustzone.NormalWorld
	meter *simtime.Meter
	store *securestore.Store
	db    *DB
}

func newSecureEnv(t *testing.T) *secureEnv {
	t.Helper()
	vendor, err := trustzone.NewVendor("acme")
	if err != nil {
		t.Fatal(err)
	}
	device, err := trustzone.NewDevice("storage-01", vendor)
	if err != nil {
		t.Fatal(err)
	}
	atf := vendor.SignImage("atf", "2.4", []byte("atf"))
	tos := vendor.SignImage("optee", "3.4", []byte("optee"))
	nwImg := trustzone.FirmwareImage{Name: "nw", Version: "1.0", Code: []byte("storage stack")}
	var m simtime.Meter
	_, nw, err := device.Boot(atf, tos, nwImg, &m)
	if err != nil {
		t.Fatal(err)
	}
	dev := pager.NewMemDevice()
	store, err := securestore.Open(dev, nw, &m, securestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(store, &m)
	if err != nil {
		t.Fatal(err)
	}
	return &secureEnv{dev: dev, nw: nw, meter: &m, store: store, db: db}
}

func parseStmts(t *testing.T, sqls ...string) []ast.Statement {
	t.Helper()
	out := make([]ast.Statement, 0, len(sqls))
	for _, s := range sqls {
		stmt, err := parser.Parse(s)
		if err != nil {
			t.Fatalf("parse %s: %v", s, err)
		}
		out = append(out, stmt)
	}
	return out
}

func countRows(t *testing.T, db *DB, table string) int {
	t.Helper()
	tab, err := db.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	n, err := tab.Count()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestBatchOneCommitPerBatch: a batch of DML statements — including the
// catalog update — must advance the store's commit seq exactly once and
// meter exactly one RPMB write. This is the ingest acked-write contract's
// substrate: one group commit, one anchor advance, per coalesced batch.
func TestBatchOneCommitPerBatch(t *testing.T) {
	e := newSecureEnv(t)
	mustExec(t, e.db, "CREATE TABLE ev (id INTEGER, client TEXT, note TEXT)")

	stmts := parseStmts(t,
		"INSERT INTO ev (id, client, note) VALUES (1, 'a', 'x')",
		"INSERT INTO ev (id, client, note) VALUES (2, 'a', 'y'), (3, 'b', 'z')",
		"UPDATE ev SET note = 'w' WHERE id = 2",
		"DELETE FROM ev WHERE id = 1",
	)
	seq0 := e.store.Seq()
	rpmb0 := e.meter.Snapshot().RPMBWrites
	results, err := e.db.ExecuteBatch(stmts)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.store.Seq() - seq0; got != 1 {
		t.Errorf("batch advanced commit seq by %d, want 1", got)
	}
	if got := e.meter.Snapshot().RPMBWrites - rpmb0; got != 1 {
		t.Errorf("batch cost %d RPMB writes, want 1", got)
	}
	wantAffected := []int64{1, 2, 1, 1}
	for i, res := range results {
		if got := res.Rows[0][0].AsInt(); got != wantAffected[i] {
			t.Errorf("stmt %d affected %d, want %d", i, got, wantAffected[i])
		}
	}
	if n := countRows(t, e.db, "ev"); n != 2 {
		t.Errorf("ev has %d rows after batch, want 2", n)
	}
}

// TestBatchReadYourWrites: later statements in a batch must observe earlier
// staged writes — an UPDATE right after an INSERT in the same batch hits the
// freshly inserted row.
func TestBatchReadYourWrites(t *testing.T) {
	e := newSecureEnv(t)
	mustExec(t, e.db, "CREATE TABLE kv (k INTEGER, v TEXT)")

	stmts := parseStmts(t,
		"INSERT INTO kv (k, v) VALUES (1, 'orig')",
		"UPDATE kv SET v = 'patched' WHERE k = 1",
	)
	results, err := e.db.ExecuteBatch(stmts)
	if err != nil {
		t.Fatal(err)
	}
	if got := results[1].Rows[0][0].AsInt(); got != 1 {
		t.Fatalf("UPDATE in batch affected %d rows, want 1 (staged INSERT invisible?)", got)
	}
	res, err := e.db.Execute("SELECT v FROM kv WHERE k = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "patched" {
		t.Fatalf("got %v, want one row 'patched'", res.Rows)
	}
}

// TestBatchAbortLeavesStateUntouched: any statement failing aborts the whole
// batch — no rows, no catalog change, no commit seq advance.
func TestBatchAbortLeavesStateUntouched(t *testing.T) {
	e := newSecureEnv(t)
	mustExec(t, e.db, "CREATE TABLE ev (id INTEGER)")
	mustExec(t, e.db, "INSERT INTO ev (id) VALUES (1)")

	seq0 := e.store.Seq()
	stmts := parseStmts(t,
		"INSERT INTO ev (id) VALUES (2)",
		"INSERT INTO ev (bogus) VALUES (3)", // no such column
	)
	if _, err := e.db.ExecuteBatch(stmts); err == nil {
		t.Fatal("batch with bad statement succeeded")
	}
	if got := e.store.Seq(); got != seq0 {
		t.Errorf("aborted batch advanced seq %d -> %d", seq0, got)
	}
	if n := countRows(t, e.db, "ev"); n != 1 {
		t.Errorf("ev has %d rows after aborted batch, want 1", n)
	}
}

// TestBatchSurvivesReopen: the staged catalog must be the one recovery
// loads — after a batch commits, a fresh store+engine over the same medium
// sees exactly the batch's post-image.
func TestBatchSurvivesReopen(t *testing.T) {
	e := newSecureEnv(t)
	mustExec(t, e.db, "CREATE TABLE ev (id INTEGER, note TEXT)")
	stmts := parseStmts(t,
		"INSERT INTO ev (id, note) VALUES (1, 'a'), (2, 'b'), (3, 'c')",
		"DELETE FROM ev WHERE id = 2",
	)
	if _, err := e.db.ExecuteBatch(stmts); err != nil {
		t.Fatal(err)
	}

	store2, err := securestore.Open(e.dev, e.nw, e.meter, securestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(store2, e.meter)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db2.Execute("SELECT id FROM ev ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, r := range res.Rows {
		got = append(got, r[0].AsInt())
	}
	if fmt.Sprint(got) != "[1 3]" {
		t.Fatalf("reopened ev ids = %v, want [1 3]", got)
	}
}

// TestSingleStatementOneCommit: the plain INSERT/UPDATE/DELETE paths ride
// the same machinery — heap mutation plus catalog in one commit, so a crash
// can never land between them (the old two-txn layout's torn-statement
// window).
func TestSingleStatementOneCommit(t *testing.T) {
	e := newSecureEnv(t)
	mustExec(t, e.db, "CREATE TABLE ev (id INTEGER)")

	for _, sql := range []string{
		"INSERT INTO ev (id) VALUES (1), (2), (3)",
		"UPDATE ev SET id = 9 WHERE id = 2",
		"DELETE FROM ev WHERE id = 3",
	} {
		seq0 := e.store.Seq()
		mustExec(t, e.db, sql)
		if got := e.store.Seq() - seq0; got != 1 {
			t.Errorf("%s advanced commit seq by %d, want 1", sql, got)
		}
	}
}

// TestBatchOnPlainStore: a non-transactional store degrades to sequential
// statement application with the same results.
func TestBatchOnPlainStore(t *testing.T) {
	var m simtime.Meter
	db, err := Open(pager.NewPager(pager.NewMemDevice(), &m, 16), &m)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE ev (id INTEGER)")
	stmts := parseStmts(t,
		"INSERT INTO ev (id) VALUES (1), (2)",
		"DELETE FROM ev WHERE id = 1",
	)
	if _, err := db.ExecuteBatch(stmts); err != nil {
		t.Fatal(err)
	}
	if n := countRows(t, db, "ev"); n != 1 {
		t.Errorf("ev has %d rows, want 1", n)
	}
}

// TestInsertRowsAtomic: the bulk loader path also lands rows + catalog in
// one commit.
func TestInsertRowsAtomic(t *testing.T) {
	e := newSecureEnv(t)
	mustExec(t, e.db, "CREATE TABLE ev (id INTEGER, v TEXT)")
	rows := []schema.Row{
		{value.Int(1), value.Str("a")},
		{value.Int(2), value.Str("b")},
	}
	seq0 := e.store.Seq()
	if err := e.db.InsertRows("ev", rows); err != nil {
		t.Fatal(err)
	}
	if got := e.store.Seq() - seq0; got != 1 {
		t.Errorf("InsertRows advanced commit seq by %d, want 1", got)
	}
	if n := countRows(t, e.db, "ev"); n != 2 {
		t.Errorf("ev has %d rows, want 2", n)
	}
}
