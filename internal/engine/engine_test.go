package engine

import (
	"fmt"
	"sync"
	"testing"

	"ironsafe/internal/pager"
	"ironsafe/internal/schema"
	"ironsafe/internal/simtime"
	"ironsafe/internal/value"
)

func newDB(t *testing.T) (*DB, *pager.MemDevice, *simtime.Meter) {
	t.Helper()
	dev := pager.NewMemDevice()
	var m simtime.Meter
	db, err := Open(pager.NewPager(dev, &m, 64), &m)
	if err != nil {
		t.Fatal(err)
	}
	return db, dev, &m
}

func mustExec(t *testing.T, db *DB, sql string) {
	t.Helper()
	if _, err := db.Execute(sql); err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
}

func seed(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE flights (id INTEGER, pax VARCHAR(32), dest VARCHAR(2), price DECIMAL(10,2), fday DATE)`)
	mustExec(t, db, `INSERT INTO flights VALUES
		(1, 'alice', 'PT', 120.50, '1995-06-01'),
		(2, 'bob', 'DE', 89.00, '1995-06-02'),
		(3, 'carol', 'PT', 240.00, '1995-07-01'),
		(4, 'dave', 'UK', 60.25, '1995-07-04')`)
}

func TestCreateInsertSelect(t *testing.T) {
	db, _, _ := newDB(t)
	seed(t, db)
	res, err := db.Execute("SELECT pax FROM flights WHERE dest = 'PT' ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].AsString() != "alice" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestDateCoercionOnInsert(t *testing.T) {
	db, _, _ := newDB(t)
	seed(t, db)
	res, _ := db.Execute("SELECT fday FROM flights WHERE id = 1")
	if res.Rows[0][0].Kind() != value.KindDate || res.Rows[0][0].String() != "1995-06-01" {
		t.Errorf("date = %v (%s)", res.Rows[0][0], res.Rows[0][0].Kind())
	}
}

func TestIntToFloatCoercion(t *testing.T) {
	db, _, _ := newDB(t)
	mustExec(t, db, "CREATE TABLE t (x DOUBLE)")
	mustExec(t, db, "INSERT INTO t VALUES (5)")
	res, _ := db.Execute("SELECT x FROM t")
	if res.Rows[0][0].Kind() != value.KindFloat {
		t.Errorf("coercion = %s", res.Rows[0][0].Kind())
	}
}

func TestCoercionErrors(t *testing.T) {
	db, _, _ := newDB(t)
	mustExec(t, db, "CREATE TABLE t (x INTEGER)")
	if _, err := db.Execute("INSERT INTO t VALUES ('abc')"); err == nil {
		t.Error("string into int accepted")
	}
	if _, err := db.Execute("INSERT INTO t VALUES (1.5)"); err == nil {
		t.Error("lossy float into int accepted")
	}
	mustExec(t, db, "INSERT INTO t VALUES (2.0)") // lossless is fine
}

func TestInsertWithColumnList(t *testing.T) {
	db, _, _ := newDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b VARCHAR(8), c INTEGER)")
	mustExec(t, db, "INSERT INTO t (c, a) VALUES (3, 1)")
	res, _ := db.Execute("SELECT a, b, c FROM t")
	r := res.Rows[0]
	if r[0].AsInt() != 1 || !r[1].IsNull() || r[2].AsInt() != 3 {
		t.Errorf("row = %v", r)
	}
}

func TestUpdate(t *testing.T) {
	db, _, _ := newDB(t)
	seed(t, db)
	res, err := db.Execute("UPDATE flights SET price = price * 2 WHERE dest = 'PT'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 2 {
		t.Errorf("affected = %v", res.Rows[0][0])
	}
	check, _ := db.Execute("SELECT price FROM flights WHERE id = 1")
	if check.Rows[0][0].AsFloat() != 241 {
		t.Errorf("price = %v", check.Rows[0][0])
	}
	// Unmatched rows untouched.
	check, _ = db.Execute("SELECT price FROM flights WHERE id = 2")
	if check.Rows[0][0].AsFloat() != 89 {
		t.Errorf("untouched price = %v", check.Rows[0][0])
	}
}

func TestDelete(t *testing.T) {
	db, _, _ := newDB(t)
	seed(t, db)
	res, err := db.Execute("DELETE FROM flights WHERE price < 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 2 {
		t.Errorf("deleted = %v", res.Rows[0][0])
	}
	check, _ := db.Execute("SELECT count(*) FROM flights")
	if check.Rows[0][0].AsInt() != 2 {
		t.Errorf("remaining = %v", check.Rows[0][0])
	}
}

func TestDropTable(t *testing.T) {
	db, _, _ := newDB(t)
	seed(t, db)
	mustExec(t, db, "DROP TABLE flights")
	if _, err := db.Execute("SELECT * FROM flights"); err == nil {
		t.Error("dropped table still queryable")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS flights") // idempotent
	if _, err := db.Execute("DROP TABLE flights"); err == nil {
		t.Error("dropping missing table without IF EXISTS accepted")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dev := pager.NewMemDevice()
	var m simtime.Meter
	store := pager.NewPager(dev, &m, 64)
	db, err := Open(store, &m)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INTEGER, s VARCHAR(16))")
	for i := 0; i < 300; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 'row-%d')", i, i))
	}

	// Reopen from the same device with a fresh pager.
	db2, err := Open(pager.NewPager(dev, &m, 64), &m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db2.Execute("SELECT count(*), min(a), max(a) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].AsInt() != 300 || r[1].AsInt() != 0 || r[2].AsInt() != 299 {
		t.Errorf("reopened = %v", r)
	}
}

func TestDuplicateTableAndColumn(t *testing.T) {
	db, _, _ := newDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	if _, err := db.Execute("CREATE TABLE t (b INTEGER)"); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.Execute("CREATE TABLE u (a INTEGER, A VARCHAR(4))"); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestInsertArityMismatch(t *testing.T) {
	db, _, _ := newDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	if _, err := db.Execute("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := db.Execute("INSERT INTO t (zzz) VALUES (1)"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := db.Execute("INSERT INTO missing VALUES (1)"); err == nil {
		t.Error("insert into missing table accepted")
	}
}

func TestInsertRowsBulk(t *testing.T) {
	db, _, _ := newDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER, s VARCHAR(8))")
	rows := make([]schema.Row, 1000)
	for i := range rows {
		rows[i] = schema.Row{value.Int(int64(i)), value.Str("x")}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Execute("SELECT count(*) FROM t")
	if res.Rows[0][0].AsInt() != 1000 {
		t.Errorf("bulk count = %v", res.Rows[0][0])
	}
	if err := db.InsertRows("t", []schema.Row{{value.Int(1)}}); err == nil {
		t.Error("short row accepted")
	}
	if err := db.InsertRows("zzz", nil); err == nil {
		t.Error("bulk into missing table accepted")
	}
}

func TestTableNamesAndCounts(t *testing.T) {
	db, _, _ := newDB(t)
	seed(t, db)
	names := db.TableNames()
	if len(names) != 1 || names[0] != "flights" {
		t.Errorf("names = %v", names)
	}
	tab, err := db.Table("FLIGHTS") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	n, _ := tab.Count()
	if n != 4 {
		t.Errorf("count = %d", n)
	}
	if tab.NumPages() < 1 {
		t.Error("no pages")
	}
}

func TestMeterChargesPages(t *testing.T) {
	db, _, m := newDB(t)
	seed(t, db)
	base := m.Snapshot()
	db.Execute("SELECT count(*) FROM flights")
	d := m.Snapshot().Sub(base)
	if d.TupleWork == 0 {
		t.Errorf("work not charged: %+v", d)
	}
}

func TestUpdateWithSubqueryPredicate(t *testing.T) {
	db, _, _ := newDB(t)
	seed(t, db)
	// Correlate against the same table through the catalog.
	_, err := db.Execute("UPDATE flights SET price = 0 WHERE price = (SELECT max(price) FROM flights)")
	if err != nil {
		t.Fatal(err)
	}
	res, _ := db.Execute("SELECT count(*) FROM flights WHERE price = 0")
	if res.Rows[0][0].AsInt() != 1 {
		t.Errorf("subquery update = %v", res.Rows[0][0])
	}
}

func TestCorruptedCatalogDetected(t *testing.T) {
	dev := pager.NewMemDevice()
	var m simtime.Meter
	db, err := Open(pager.NewPager(dev, &m, 0), &m)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	// Corrupt the catalog root's length field wildly.
	root, _ := dev.ReadBlock(0)
	root[0] = 0xFF
	root[1] = 0xFF
	root[2] = 0xFF
	dev.WriteBlock(0, root)
	if _, err := Open(pager.NewPager(dev, &m, 0), &m); err == nil {
		t.Error("corrupted catalog accepted at open")
	}
}

func TestReopenEmptyDatabase(t *testing.T) {
	dev := pager.NewMemDevice()
	var m simtime.Meter
	if _, err := Open(pager.NewPager(dev, &m, 0), &m); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(pager.NewPager(dev, &m, 0), &m)
	if err != nil {
		t.Fatalf("reopening empty db: %v", err)
	}
	if len(db2.TableNames()) != 0 {
		t.Errorf("tables = %v", db2.TableNames())
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	db, _, _ := newDB(t)
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := db.Execute("SELECT count(*) FROM t")
				if err != nil {
					errs <- err
					return
				}
				if res.Rows[0][0].AsInt() < 3 {
					errs <- fmt.Errorf("count shrank: %v", res.Rows[0][0])
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := db.Execute(fmt.Sprintf("INSERT INTO t VALUES (%d)", 10+i)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	res, _ := db.Execute("SELECT count(*) FROM t")
	if res.Rows[0][0].AsInt() != 33 {
		t.Errorf("final count = %v", res.Rows[0][0])
	}
}
