// Package partition implements IronSafe's query partitioner: it splits a
// SELECT into per-table offload queries (scan + pushed-down filters +
// projection) that run on the storage engine, and a host-side query that
// consumes the shipped, filtered tables. The host query is the original
// query verbatim — the host catalog simply resolves base-table names to the
// shipped subsets, and because every pushed predicate also remains in the
// host query, re-filtering is idempotent and the split is always correct.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"ironsafe/internal/schema"
	"ironsafe/internal/sql/ast"
)

// TableShip describes the offloaded scan for one base table.
type TableShip struct {
	// Table is the base table name on the storage system.
	Table string
	// Columns are the projected columns (nil means all — SELECT *).
	Columns []string
	// Predicate is the pushed-down filter (nil means ship every row).
	Predicate ast.Expr
	// SQL is the offload query text sent to the storage engine.
	SQL string
}

// Split is a partitioned query.
type Split struct {
	// Ships lists one offload query per referenced base table, sorted by
	// table name for determinism.
	Ships []TableShip
	// Host is the query the host engine runs over the shipped tables
	// (identical to the client query).
	Host *ast.Select
}

// SchemaSource resolves a base table's schema (the partitioner needs it to
// distinguish table columns from other names).
type SchemaSource interface {
	TableSchema(name string) (*schema.Schema, error)
}

// SchemaMap is a map-backed SchemaSource.
type SchemaMap map[string]*schema.Schema

// TableSchema implements SchemaSource.
func (m SchemaMap) TableSchema(name string) (*schema.Schema, error) {
	s, ok := m[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("partition: unknown table %q", name)
	}
	return s, nil
}

// tableInfo accumulates facts about one base table across all its refs.
type tableInfo struct {
	name     string
	sch      *schema.Schema
	allCols  bool
	cols     map[string]bool
	shipAll  bool       // some ref has no pushable predicate
	refPreds []ast.Expr // per-ref predicate (to be ORed)
}

// SplitQuery partitions sel. It never fails on odd queries — tables it
// cannot push anything for are shipped whole.
func SplitQuery(sel *ast.Select, src SchemaSource) (*Split, error) {
	tables := map[string]*tableInfo{}
	if err := collect(sel, src, tables, nil); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)

	split := &Split{Host: sel}
	for _, n := range names {
		ti := tables[n]
		ship := TableShip{Table: ti.name}
		if !ti.allCols {
			for c := range ti.cols {
				ship.Columns = append(ship.Columns, c)
			}
			sort.Strings(ship.Columns)
		}
		if !ti.shipAll && len(ti.refPreds) > 0 {
			var pred ast.Expr
			for _, p := range ti.refPreds {
				if pred == nil {
					pred = p
				} else {
					pred = &ast.BinaryExpr{Op: ast.OpOr, Left: pred, Right: p}
				}
			}
			ship.Predicate = pred
		}
		ship.SQL = renderShip(ship)
		split.Ships = append(split.Ships, ship)
	}
	return split, nil
}

// renderShip builds the offload SQL for one table.
func renderShip(s TableShip) string {
	cols := "*"
	if len(s.Columns) > 0 {
		cols = strings.Join(s.Columns, ", ")
	}
	sql := "SELECT " + cols + " FROM " + s.Table
	if s.Predicate != nil {
		sql += " WHERE " + s.Predicate.String()
	}
	return sql
}

// refInfo is one resolvable FROM entry in a scope.
type refInfo struct {
	name  string // alias or table name in scope
	table string // base table name
	sch   *schema.Schema
}

// scope is a lexical FROM scope, chained to enclosing query scopes so
// correlated references resolve to the right outer table.
type scope struct {
	refs   []*refInfo
	parent *scope
}

// resolve finds the ref a column reference binds to, climbing the chain.
func (s *scope) resolve(c *ast.ColumnRef) *refInfo {
	for cur := s; cur != nil; cur = cur.parent {
		if c.Qualifier != "" {
			for _, r := range cur.refs {
				if strings.EqualFold(r.name, c.Qualifier) && r.sch.IndexOf(c.Name) >= 0 {
					return r
				}
			}
			continue
		}
		var found *refInfo
		ambiguous := false
		for _, r := range cur.refs {
			if r.sch.IndexOf(c.Name) >= 0 {
				if found != nil {
					ambiguous = true
					break
				}
				found = r
			}
		}
		if ambiguous {
			return nil
		}
		if found != nil {
			return found
		}
	}
	return nil
}

// local reports whether r belongs to this scope (not an outer one).
func (s *scope) local(r *refInfo) bool {
	for _, own := range s.refs {
		if own == r {
			return true
		}
	}
	return false
}

// collect walks one SELECT (recursing into derived tables and subqueries)
// and accumulates per-table columns and pushable predicates.
func collect(sel *ast.Select, src SchemaSource, tables map[string]*tableInfo, parent *scope) error {
	sc := &scope{parent: parent}
	for _, r := range sel.From {
		if r.Subquery != nil {
			// A derived table's body sees only its own and enclosing
			// scopes; columns it exposes are not base-table columns.
			if err := collect(r.Subquery, src, tables, parent); err != nil {
				return err
			}
			continue
		}
		sch, err := src.TableSchema(r.Table)
		if err != nil {
			return err
		}
		key := strings.ToLower(r.Table)
		sc.refs = append(sc.refs, &refInfo{name: r.Name(), table: key, sch: sch})
		if _, ok := tables[key]; !ok {
			tables[key] = &tableInfo{name: key, sch: sch, cols: map[string]bool{}}
		}
	}
	refs := sc.refs

	belongsTo := func(c *ast.ColumnRef) *refInfo { return sc.resolve(c) }

	// Record referenced columns table-wide, and recurse into expression
	// subqueries.
	var exprs []ast.Expr
	star := false
	for _, it := range sel.Items {
		if it.Star {
			star = true
			continue
		}
		exprs = append(exprs, it.Expr)
	}
	if sel.Where != nil {
		exprs = append(exprs, sel.Where)
	}
	exprs = append(exprs, sel.GroupBy...)
	if sel.Having != nil {
		exprs = append(exprs, sel.Having)
	}
	for _, o := range sel.OrderBy {
		exprs = append(exprs, o.Expr)
	}
	for _, r := range sel.From {
		if r.Join != nil && r.Join.On != nil {
			exprs = append(exprs, r.Join.On)
		}
	}
	var subErr error
	for _, e := range exprs {
		ast.Walk(e, func(x ast.Expr) bool {
			switch q := x.(type) {
			case *ast.ColumnRef:
				if r := belongsTo(q); r != nil {
					tables[r.table].cols[strings.ToLower(q.Name)] = true
				}
			case *ast.Exists:
				if err := collect(q.Subquery, src, tables, sc); err != nil && subErr == nil {
					subErr = err
				}
			case *ast.InSubquery:
				if err := collect(q.Subquery, src, tables, sc); err != nil && subErr == nil {
					subErr = err
				}
			case *ast.ScalarSubquery:
				if err := collect(q.Subquery, src, tables, sc); err != nil && subErr == nil {
					subErr = err
				}
			}
			return true
		})
	}
	if subErr != nil {
		return subErr
	}
	if star {
		for _, r := range refs {
			tables[r.table].allCols = true
		}
	}

	// Pushable predicate per ref from this scope's WHERE.
	conjs := ast.SplitConjuncts(sel.Where)
	refPred := map[*refInfo]ast.Expr{}
	for _, c := range conjs {
		if target, ok := pushableTo(c, sc); ok {
			p := stripQualifiers(c)
			andInto(refPred, target, p)
			continue
		}
		// OR conjunct: if every disjunct constrains ref r, the OR of the
		// per-disjunct single-table parts is a valid relaxed pushdown
		// (TPC-H q19's shape).
		disjuncts := ast.SplitDisjuncts(c)
		if len(disjuncts) < 2 {
			continue
		}
		for _, r := range refs {
			var parts []ast.Expr
			complete := true
			for _, d := range disjuncts {
				var dp ast.Expr
				for _, dc := range ast.SplitConjuncts(d) {
					if target, ok := pushableTo(dc, sc); ok && target == r {
						p := stripQualifiers(dc)
						if dp == nil {
							dp = p
						} else {
							dp = &ast.BinaryExpr{Op: ast.OpAnd, Left: dp, Right: p}
						}
					}
				}
				if dp == nil {
					complete = false
					break
				}
				parts = append(parts, dp)
			}
			if !complete {
				continue
			}
			var orPred ast.Expr
			for _, p := range parts {
				if orPred == nil {
					orPred = p
				} else {
					orPred = &ast.BinaryExpr{Op: ast.OpOr, Left: orPred, Right: p}
				}
			}
			andInto(refPred, r, orPred)
		}
	}

	for _, r := range refs {
		ti := tables[r.table]
		if p, ok := refPred[r]; ok {
			ti.refPreds = append(ti.refPreds, p)
		} else {
			ti.shipAll = true
		}
	}
	return nil
}

func andInto(m map[*refInfo]ast.Expr, r *refInfo, p ast.Expr) {
	if prev, ok := m[r]; ok {
		m[r] = &ast.BinaryExpr{Op: ast.OpAnd, Left: prev, Right: p}
		return
	}
	m[r] = p
}

// pushableTo reports the single local ref a conjunct can be pushed to: all
// its column references bind to that ref, the ref belongs to the current
// scope (outer-correlated predicates vary per outer row and cannot be
// pushed), and it contains no subqueries or aggregates.
func pushableTo(c ast.Expr, sc *scope) (*refInfo, bool) {
	var target *refInfo
	ok := true
	hasCol := false
	ast.Walk(c, func(x ast.Expr) bool {
		switch q := x.(type) {
		case *ast.ColumnRef:
			hasCol = true
			r := sc.resolve(q)
			if r == nil || !sc.local(r) {
				ok = false
				return false
			}
			if target != nil && target != r {
				ok = false
				return false
			}
			target = r
		case *ast.Exists, *ast.InSubquery, *ast.ScalarSubquery:
			ok = false
			return false
		case *ast.FuncCall:
			if q.IsAggregate() {
				ok = false
				return false
			}
		}
		return true
	})
	if !ok || !hasCol || target == nil {
		return nil, false
	}
	return target, true
}

// stripQualifiers rewrites column references to unqualified form so the
// predicate is valid in a single-table offload query.
func stripQualifiers(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case *ast.ColumnRef:
		return &ast.ColumnRef{Name: x.Name}
	case *ast.BinaryExpr:
		return &ast.BinaryExpr{Op: x.Op, Left: stripQualifiers(x.Left), Right: stripQualifiers(x.Right)}
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{Op: x.Op, Expr: stripQualifiers(x.Expr)}
	case *ast.IsNull:
		return &ast.IsNull{Expr: stripQualifiers(x.Expr), Not: x.Not}
	case *ast.Between:
		return &ast.Between{Expr: stripQualifiers(x.Expr), Lo: stripQualifiers(x.Lo), Hi: stripQualifiers(x.Hi), Not: x.Not}
	case *ast.Like:
		return &ast.Like{Expr: stripQualifiers(x.Expr), Pattern: stripQualifiers(x.Pattern), Not: x.Not}
	case *ast.InList:
		items := make([]ast.Expr, len(x.Items))
		for i, it := range x.Items {
			items[i] = stripQualifiers(it)
		}
		return &ast.InList{Expr: stripQualifiers(x.Expr), Items: items, Not: x.Not}
	case *ast.CaseExpr:
		whens := make([]ast.WhenClause, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = ast.WhenClause{Cond: stripQualifiers(w.Cond), Result: stripQualifiers(w.Result)}
		}
		var els ast.Expr
		if x.Else != nil {
			els = stripQualifiers(x.Else)
		}
		return &ast.CaseExpr{Whens: whens, Else: els}
	case *ast.Extract:
		return &ast.Extract{Field: x.Field, Expr: stripQualifiers(x.Expr)}
	case *ast.Substring:
		var fo ast.Expr
		if x.For != nil {
			fo = stripQualifiers(x.For)
		}
		return &ast.Substring{Expr: stripQualifiers(x.Expr), From: stripQualifiers(x.From), For: fo}
	default:
		return e
	}
}

// SelectivityHint summarizes how much a split reduces data movement: the
// fraction of tables with a real pushdown and whether any projection prunes
// columns. The host engine's offload heuristic uses it.
type SelectivityHint struct {
	TablesWithPredicate int
	TablesTotal         int
	ColumnsPruned       bool
}

// Hint computes the selectivity hint for a split against the schemas.
func (s *Split) Hint(src SchemaSource) SelectivityHint {
	h := SelectivityHint{TablesTotal: len(s.Ships)}
	for _, ship := range s.Ships {
		if ship.Predicate != nil {
			h.TablesWithPredicate++
		}
		if len(ship.Columns) > 0 {
			if sch, err := src.TableSchema(ship.Table); err == nil && len(ship.Columns) < sch.Len() {
				h.ColumnsPruned = true
			}
		}
	}
	return h
}

// Beneficial reports whether offloading this split is expected to reduce
// data movement: at least one table gets a real pushdown predicate or a
// pruned projection. This is the paper's "simple heuristic" for the host's
// offload decision — a split with neither property ships whole tables and
// is equivalent to host-only execution.
func (s *Split) Beneficial(src SchemaSource) bool {
	h := s.Hint(src)
	return h.TablesWithPredicate > 0 || h.ColumnsPruned
}
