package partition

import (
	"fmt"
	"strings"
	"testing"

	"ironsafe/internal/engine"
	"ironsafe/internal/pager"
	"ironsafe/internal/simtime"
	"ironsafe/internal/sql/exec"
	"ironsafe/internal/sql/parser"
	"ironsafe/internal/tpch"
	"ironsafe/internal/value"
)

func tpchSchemas(t *testing.T) SchemaMap {
	t.Helper()
	var m simtime.Meter
	db, err := engine.Open(pager.NewPager(pager.NewMemDevice(), &m, 64), &m)
	if err != nil {
		t.Fatal(err)
	}
	for _, ddl := range tpch.DDL {
		if _, err := db.Execute(ddl); err != nil {
			t.Fatal(err)
		}
	}
	sm := SchemaMap{}
	for _, name := range db.TableNames() {
		tab, _ := db.Table(name)
		sm[strings.ToLower(name)] = tab.Sch
	}
	return sm
}

func split(t *testing.T, sql string) *Split {
	t.Helper()
	sel, err := parser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SplitQuery(sel, tpchSchemas(t))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func shipFor(s *Split, table string) *TableShip {
	for i := range s.Ships {
		if s.Ships[i].Table == table {
			return &s.Ships[i]
		}
	}
	return nil
}

func TestSingleTablePushdown(t *testing.T) {
	s := split(t, `SELECT sum(l_extendedprice) FROM lineitem WHERE l_shipdate < date '1995-01-01' AND l_quantity < 24`)
	if len(s.Ships) != 1 {
		t.Fatalf("ships = %d", len(s.Ships))
	}
	ship := s.Ships[0]
	if ship.Table != "lineitem" {
		t.Errorf("table = %q", ship.Table)
	}
	if ship.Predicate == nil {
		t.Fatal("no pushdown predicate")
	}
	sqlText := ship.SQL
	if !strings.Contains(sqlText, "l_shipdate") || !strings.Contains(sqlText, "l_quantity") {
		t.Errorf("ship SQL = %q", sqlText)
	}
	// Projection pruned to the referenced columns.
	if len(ship.Columns) != 3 {
		t.Errorf("columns = %v", ship.Columns)
	}
}

func TestJoinPredicatesNotPushed(t *testing.T) {
	s := split(t, `SELECT o_orderkey FROM orders, lineitem WHERE o_orderkey = l_orderkey AND o_orderdate < date '1995-01-01'`)
	o := shipFor(s, "orders")
	l := shipFor(s, "lineitem")
	if o == nil || l == nil {
		t.Fatalf("ships = %+v", s.Ships)
	}
	if o.Predicate == nil || !strings.Contains(o.SQL, "o_orderdate") {
		t.Errorf("orders pushdown missing: %q", o.SQL)
	}
	if strings.Contains(o.SQL, "l_orderkey") {
		t.Errorf("join predicate leaked into orders ship: %q", o.SQL)
	}
	if l.Predicate != nil {
		t.Errorf("lineitem should ship whole: %q", l.SQL)
	}
}

func TestQualifiedRefsStripped(t *testing.T) {
	s := split(t, `SELECT o.o_orderkey FROM orders o WHERE o.o_totalprice > 100`)
	ship := s.Ships[0]
	if strings.Contains(ship.SQL, "o.o_totalprice") {
		t.Errorf("qualifier not stripped: %q", ship.SQL)
	}
	if !strings.Contains(ship.SQL, "o_totalprice > 100") {
		t.Errorf("predicate missing: %q", ship.SQL)
	}
}

func TestMultiRefTableORsPredicates(t *testing.T) {
	// q21 shape: lineitem appears as l1 (filtered) and in subqueries
	// (unfiltered) -> whole table must ship.
	s := split(t, tpch.Queries[21])
	l := shipFor(s, "lineitem")
	if l == nil {
		t.Fatal("no lineitem ship")
	}
	if l.Predicate != nil {
		t.Errorf("lineitem must ship whole (subquery refs unfiltered): %q", l.SQL)
	}
	o := shipFor(s, "orders")
	if o == nil || o.Predicate == nil || !strings.Contains(o.SQL, "o_orderstatus") {
		t.Errorf("orders pushdown missing: %+v", o)
	}
}

func TestSubqueryTablesCollected(t *testing.T) {
	// q4: lineitem appears only inside EXISTS.
	s := split(t, tpch.Queries[4])
	if shipFor(s, "lineitem") == nil {
		t.Error("subquery table not shipped")
	}
	o := shipFor(s, "orders")
	if o.Predicate == nil || !strings.Contains(o.SQL, "o_orderdate") {
		t.Errorf("orders date pushdown missing: %q", o.SQL)
	}
}

func TestDerivedTableTablesCollected(t *testing.T) {
	// q7: all base tables sit inside a derived table.
	s := split(t, tpch.Queries[7])
	for _, tb := range []string{"supplier", "lineitem", "orders", "customer", "nation"} {
		if shipFor(s, tb) == nil {
			t.Errorf("table %s not shipped", tb)
		}
	}
	l := shipFor(s, "lineitem")
	if l.Predicate == nil || !strings.Contains(l.SQL, "l_shipdate") {
		t.Errorf("lineitem between pushdown missing: %q", l.SQL)
	}
}

func TestQ19ORDistribution(t *testing.T) {
	s := split(t, tpch.Queries[19])
	p := shipFor(s, "part")
	l := shipFor(s, "lineitem")
	if p == nil || p.Predicate == nil || !strings.Contains(p.SQL, "Brand#12") || !strings.Contains(p.SQL, "Brand#34") {
		t.Errorf("part OR pushdown missing: %+v", p)
	}
	if l == nil || l.Predicate == nil || !strings.Contains(l.SQL, "l_quantity") {
		t.Errorf("lineitem OR pushdown missing: %+v", l)
	}
}

func TestStarShipsAllColumns(t *testing.T) {
	s := split(t, "SELECT * FROM nation WHERE n_nationkey < 5")
	ship := s.Ships[0]
	if len(ship.Columns) != 0 {
		t.Errorf("star should ship all columns, got %v", ship.Columns)
	}
	if !strings.HasPrefix(ship.SQL, "SELECT * FROM nation") {
		t.Errorf("sql = %q", ship.SQL)
	}
}

func TestUnknownTable(t *testing.T) {
	sel, _ := parser.ParseSelect("SELECT x FROM mystery")
	if _, err := SplitQuery(sel, tpchSchemas(t)); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestHint(t *testing.T) {
	src := tpchSchemas(t)
	s := split(t, tpch.Queries[6])
	h := s.Hint(src)
	if h.TablesWithPredicate != 1 || h.TablesTotal != 1 || !h.ColumnsPruned {
		t.Errorf("q6 hint = %+v", h)
	}
	s = split(t, "SELECT * FROM nation")
	h = s.Hint(src)
	if h.TablesWithPredicate != 0 || h.ColumnsPruned {
		t.Errorf("full scan hint = %+v", h)
	}
}

// TestSplitEquivalence is the partitioner's key correctness property: for
// every evaluated TPC-H query, running the split (offload queries against
// the full database, host query against the shipped subsets) must produce
// exactly the same result as direct execution.
func TestSplitEquivalence(t *testing.T) {
	var m simtime.Meter
	db, err := engine.Open(pager.NewPager(pager.NewMemDevice(), &m, 4096), &m)
	if err != nil {
		t.Fatal(err)
	}
	if err := tpch.Load(db, tpch.Generate(0.001)); err != nil {
		t.Fatal(err)
	}
	schemas := SchemaMap{}
	for _, name := range db.TableNames() {
		tab, _ := db.Table(name)
		schemas[strings.ToLower(name)] = tab.Sch
	}

	for qn := 1; qn <= 22; qn++ {
		sel, err := parser.ParseSelect(tpch.Queries[qn])
		if err != nil {
			t.Fatalf("q%d: %v", qn, err)
		}
		direct, err := exec.Run(sel, db, nil)
		if err != nil {
			t.Fatalf("q%d direct: %v", qn, err)
		}

		s, err := SplitQuery(sel, schemas)
		if err != nil {
			t.Fatalf("q%d split: %v", qn, err)
		}
		// "Storage side": run each ship against the full database.
		shipped := shippedCatalog{}
		for _, ship := range s.Ships {
			shipSel, err := parser.ParseSelect(ship.SQL)
			if err != nil {
				t.Fatalf("q%d ship %q: %v", qn, ship.SQL, err)
			}
			res, err := exec.Run(shipSel, db, nil)
			if err != nil {
				t.Fatalf("q%d ship %s: %v", qn, ship.Table, err)
			}
			shipped[ship.Table] = &exec.MemRelation{Sch: res.Sch, Rows: res.Rows}
		}
		// "Host side": run the original query over the shipped tables.
		viaSplit, err := exec.Run(s.Host, shipped, nil)
		if err != nil {
			t.Fatalf("q%d host: %v", qn, err)
		}
		if err := sameResult(direct, viaSplit); err != nil {
			t.Errorf("q%d split result differs: %v", qn, err)
		}
	}
}

type shippedCatalog map[string]*exec.MemRelation

func (c shippedCatalog) Relation(name string) (exec.Relation, error) {
	r, ok := c[strings.ToLower(name)]
	if !ok {
		return nil, &missingTable{name}
	}
	return r, nil
}

type missingTable struct{ name string }

func (e *missingTable) Error() string { return "no shipped table " + e.name }

func sameResult(a, b *exec.Result) error {
	if len(a.Rows) != len(b.Rows) {
		return &diffErr{msgf("row counts %d vs %d", len(a.Rows), len(b.Rows))}
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return &diffErr{msgf("row %d width", i)}
		}
		for j := range a.Rows[i] {
			av, bv := a.Rows[i][j], b.Rows[i][j]
			if av.IsNull() != bv.IsNull() {
				return &diffErr{msgf("row %d col %d null mismatch", i, j)}
			}
			if av.IsNull() {
				continue
			}
			if av.Kind() == value.KindFloat || bv.Kind() == value.KindFloat {
				d := av.AsFloat() - bv.AsFloat()
				if d < -1e-6 || d > 1e-6 {
					return &diffErr{msgf("row %d col %d: %v vs %v", i, j, av, bv)}
				}
				continue
			}
			if !value.Equal(av, bv) {
				return &diffErr{msgf("row %d col %d: %v vs %v", i, j, av, bv)}
			}
		}
	}
	return nil
}

type diffErr struct{ s string }

func (e *diffErr) Error() string { return e.s }

func msgf(f string, args ...any) string {
	return fmt.Sprintf(f, args...)
}

func TestBeneficialHeuristic(t *testing.T) {
	src := tpchSchemas(t)
	if !split(t, tpch.Queries[6]).Beneficial(src) {
		t.Error("q6 (selective filter) should be beneficial")
	}
	if !split(t, tpch.Queries[3]).Beneficial(src) {
		t.Error("q3 should be beneficial")
	}
	if split(t, "SELECT * FROM nation").Beneficial(src) {
		t.Error("whole-table star scan should not be beneficial")
	}
	if !split(t, "SELECT n_name FROM nation").Beneficial(src) {
		t.Error("projection pruning alone should count as beneficial")
	}
}
