package simtime

import (
	"sync"
	"testing"
	"time"
)

func TestMeterSnapshotAndReset(t *testing.T) {
	var m Meter
	m.TuplesProcessed.Add(10)
	m.PagesRead.Add(3)
	m.BytesSent.Add(4096)
	s := m.Snapshot()
	if s.TuplesProcessed != 10 || s.PagesRead != 3 || s.BytesSent != 4096 {
		t.Errorf("snapshot = %+v", s)
	}
	m.Reset()
	if s2 := m.Snapshot(); s2 != (Snapshot{}) {
		t.Errorf("after reset = %+v", s2)
	}
}

func TestMeterConcurrency(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.TupleWork.Add(1)
				m.PagesDecrypted.Add(1)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.TupleWork != 8000 || s.PagesDecrypted != 8000 {
		t.Errorf("concurrent adds lost updates: %+v", s)
	}
}

func TestSnapshotSubAdd(t *testing.T) {
	a := Snapshot{TupleWork: 100, PagesRead: 10, EPCFaults: 5}
	b := Snapshot{TupleWork: 40, PagesRead: 4, EPCFaults: 1}
	d := a.Sub(b)
	if d.TupleWork != 60 || d.PagesRead != 6 || d.EPCFaults != 4 {
		t.Errorf("Sub = %+v", d)
	}
	if got := d.Add(b); got != a {
		t.Errorf("Add(Sub) != identity: %+v", got)
	}
}

func TestPriceCPUScalesWithCores(t *testing.T) {
	m := DefaultModel()
	s := Snapshot{TupleWork: 1_000_000}
	one := m.PriceCPU(s, m.Storage, 1).Compute
	four := m.PriceCPU(s, m.Storage, 4).Compute
	if four >= one {
		t.Errorf("4 cores (%v) should beat 1 core (%v)", four, one)
	}
	if one/four < 3 || one/four > 5 {
		t.Errorf("expected ~4x scaling, got %v / %v", one, four)
	}
}

func TestPriceCPUDefaultsAndClamps(t *testing.T) {
	m := DefaultModel()
	s := Snapshot{TupleWork: 1000}
	if got, want := m.PriceCPU(s, m.Host, 0).Compute, m.PriceCPU(s, m.Host, m.Host.Cores).Compute; got != want {
		t.Errorf("cores=0 should use profile cores: %v vs %v", got, want)
	}
	if got, want := m.PriceCPU(s, CPUProfile{TupleUnit: time.Nanosecond}, -3).Compute, 1000*time.Nanosecond; got != want {
		t.Errorf("negative cores should clamp to 1: %v", got)
	}
}

func TestStorageSlowerThanHost(t *testing.T) {
	m := DefaultModel()
	s := Snapshot{TupleWork: 1_000_000, PagesDecrypted: 100, MerkleHashes: 500}
	host := m.PriceCPU(s, m.Host, 1)
	storage := m.PriceCPU(s, m.Storage, 1)
	if storage.Total() <= host.Total() {
		t.Errorf("ARM storage (%v) must be slower than x86 host (%v) per core", storage.Total(), host.Total())
	}
}

func TestPriceTEE(t *testing.T) {
	m := DefaultModel()
	s := Snapshot{EnclaveTransitions: 10, EPCFaults: 2, WorldSwitches: 3, RPMBReads: 1, RPMBWrites: 1}
	got := m.PriceTEE(s)
	want := 10*m.TEE.EnclaveTransition + 2*m.TEE.EPCFault + 3*m.TEE.WorldSwitch + m.TEE.RPMBRead + m.TEE.RPMBWrite
	if got != want {
		t.Errorf("PriceTEE = %v, want %v", got, want)
	}
}

func TestPriceLink(t *testing.T) {
	m := DefaultModel()
	got := m.PriceLink(1000, 2)
	want := 1000*m.Link.PerByte + 2*m.Link.PerMessage
	if got != want {
		t.Errorf("PriceLink = %v, want %v", got, want)
	}
}

func TestQueryCostOverlap(t *testing.T) {
	q := QueryCost{
		Host:     SideCost{Compute: 10 * time.Millisecond},
		Storage:  SideCost{Compute: 20 * time.Millisecond},
		Transfer: 5 * time.Millisecond,
	}
	// Transfer fully overlaps the storage phase.
	if got := q.Total(); got != 30*time.Millisecond {
		t.Errorf("overlapped total = %v, want 30ms", got)
	}
	q.Transfer = 25 * time.Millisecond
	// 5ms of transfer pokes out beyond the storage phase.
	if got := q.Total(); got != 35*time.Millisecond {
		t.Errorf("partially overlapped total = %v, want 35ms", got)
	}
}

func TestSideCostTotal(t *testing.T) {
	c := SideCost{Compute: 1, PageIO: 2, Decrypt: 3, Freshness: 4, TEE: 5}
	if c.Total() != 15 {
		t.Errorf("Total = %v", c.Total())
	}
}

func TestDefaultModelSanity(t *testing.T) {
	m := DefaultModel()
	if m.Storage.TupleUnit <= m.Host.TupleUnit {
		t.Error("storage CPU must be slower per tuple than host")
	}
	if m.TEE.EPCLimitBytes != 96<<20 {
		t.Errorf("EPC limit = %d, want 96 MiB", m.TEE.EPCLimitBytes)
	}
	if m.Storage.Cores != 16 || m.Host.Cores != 10 {
		t.Errorf("core counts = %d/%d", m.Host.Cores, m.Storage.Cores)
	}
}
