// Package simtime provides the calibrated hardware cost model that converts
// measured work counters into simulated execution time.
//
// The paper evaluates IronSafe on real heterogeneous hardware: an SGX-enabled
// Intel i9-10900K host and a TrustZone-enabled 16-core Cortex-A72 storage
// server joined by 40 GbE. That hardware is unavailable here, so the engines
// in this repository execute queries for real (producing real tuples, pages,
// and protocol bytes) while charging every unit of work to a Meter. The cost
// model then prices the counters with per-platform rates so that benchmark
// output exhibits the same causal structure as the paper's figures: slower
// storage-side CPU, expensive SGX transitions and EPC paging, per-page
// decryption and Merkle freshness verification, and a finite network link.
package simtime

import (
	"sync/atomic"
	"time"
)

// Meter accumulates work counters for one execution context. All methods are
// safe for concurrent use.
type Meter struct {
	TuplesProcessed    atomic.Int64 // tuples pulled through operators
	TupleWork          atomic.Int64 // weighted per-tuple work units (ops × width)
	PagesRead          atomic.Int64 // 4 KiB pages fetched from the store
	PagesWritten       atomic.Int64
	PagesDecrypted     atomic.Int64 // AES-CBC page decryptions
	PagesEncrypted     atomic.Int64
	MerkleVerifies     atomic.Int64 // per-page freshness proofs checked
	MerkleHashes       atomic.Int64 // individual HMAC evaluations inside proofs
	RPMBReads          atomic.Int64
	RPMBWrites         atomic.Int64
	EnclaveTransitions atomic.Int64 // SGX ECALL/OCALL pairs
	EPCFaults          atomic.Int64 // enclave pages evicted+reloaded
	WorldSwitches      atomic.Int64 // TrustZone SMC world switches
	BytesSent          atomic.Int64 // host<->storage protocol bytes
	BytesReceived      atomic.Int64
	RowsShipped        atomic.Int64 // filtered rows moved storage->host
	Batches            atomic.Int64 // executor operator-batch dispatches (vectorized pipeline)
	ScanBatches        atomic.Int64 // batched multi-page reads issued by the scan pipeline
	MerkleHashesSaved  atomic.Int64 // HMAC evaluations avoided by batched verification
	PlainCacheHits     atomic.Int64 // verified-plaintext page cache hits
	PlainCacheMisses   atomic.Int64 // verified-plaintext page cache misses
}

// Snapshot is an immutable copy of a Meter's counters.
type Snapshot struct {
	TuplesProcessed    int64
	TupleWork          int64
	PagesRead          int64
	PagesWritten       int64
	PagesDecrypted     int64
	PagesEncrypted     int64
	MerkleVerifies     int64
	MerkleHashes       int64
	RPMBReads          int64
	RPMBWrites         int64
	EnclaveTransitions int64
	EPCFaults          int64
	WorldSwitches      int64
	BytesSent          int64
	BytesReceived      int64
	RowsShipped        int64
	Batches            int64
	ScanBatches        int64
	MerkleHashesSaved  int64
	PlainCacheHits     int64
	PlainCacheMisses   int64
}

// Snapshot captures the current counter values.
func (m *Meter) Snapshot() Snapshot {
	return Snapshot{
		TuplesProcessed:    m.TuplesProcessed.Load(),
		TupleWork:          m.TupleWork.Load(),
		PagesRead:          m.PagesRead.Load(),
		PagesWritten:       m.PagesWritten.Load(),
		PagesDecrypted:     m.PagesDecrypted.Load(),
		PagesEncrypted:     m.PagesEncrypted.Load(),
		MerkleVerifies:     m.MerkleVerifies.Load(),
		MerkleHashes:       m.MerkleHashes.Load(),
		RPMBReads:          m.RPMBReads.Load(),
		RPMBWrites:         m.RPMBWrites.Load(),
		EnclaveTransitions: m.EnclaveTransitions.Load(),
		EPCFaults:          m.EPCFaults.Load(),
		WorldSwitches:      m.WorldSwitches.Load(),
		BytesSent:          m.BytesSent.Load(),
		BytesReceived:      m.BytesReceived.Load(),
		RowsShipped:        m.RowsShipped.Load(),
		Batches:            m.Batches.Load(),
		ScanBatches:        m.ScanBatches.Load(),
		MerkleHashesSaved:  m.MerkleHashesSaved.Load(),
		PlainCacheHits:     m.PlainCacheHits.Load(),
		PlainCacheMisses:   m.PlainCacheMisses.Load(),
	}
}

// Reset zeroes every counter.
func (m *Meter) Reset() {
	*m = Meter{}
}

// Sub returns s - o component-wise; useful for measuring a single query
// against a long-lived meter.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		TuplesProcessed:    s.TuplesProcessed - o.TuplesProcessed,
		TupleWork:          s.TupleWork - o.TupleWork,
		PagesRead:          s.PagesRead - o.PagesRead,
		PagesWritten:       s.PagesWritten - o.PagesWritten,
		PagesDecrypted:     s.PagesDecrypted - o.PagesDecrypted,
		PagesEncrypted:     s.PagesEncrypted - o.PagesEncrypted,
		MerkleVerifies:     s.MerkleVerifies - o.MerkleVerifies,
		MerkleHashes:       s.MerkleHashes - o.MerkleHashes,
		RPMBReads:          s.RPMBReads - o.RPMBReads,
		RPMBWrites:         s.RPMBWrites - o.RPMBWrites,
		EnclaveTransitions: s.EnclaveTransitions - o.EnclaveTransitions,
		EPCFaults:          s.EPCFaults - o.EPCFaults,
		WorldSwitches:      s.WorldSwitches - o.WorldSwitches,
		BytesSent:          s.BytesSent - o.BytesSent,
		BytesReceived:      s.BytesReceived - o.BytesReceived,
		RowsShipped:        s.RowsShipped - o.RowsShipped,
		Batches:            s.Batches - o.Batches,
		ScanBatches:        s.ScanBatches - o.ScanBatches,
		MerkleHashesSaved:  s.MerkleHashesSaved - o.MerkleHashesSaved,
		PlainCacheHits:     s.PlainCacheHits - o.PlainCacheHits,
		PlainCacheMisses:   s.PlainCacheMisses - o.PlainCacheMisses,
	}
}

// Add returns s + o component-wise.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return s.Sub(Snapshot{}.Sub(o))
}

// CPUProfile prices CPU-bound work for one platform.
type CPUProfile struct {
	Name string
	// TupleUnit is the time to process one weighted tuple work unit on a
	// single core: the data work alone (arithmetic, comparison, copy),
	// excluding interpreter dispatch.
	TupleUnit time.Duration
	// BatchDispatch is the per-operator-dispatch overhead: virtual-call
	// chains, expression-tree walking, bounds setup. The tuple-at-a-time
	// executor pays it once per row; the vectorized executor pays it once
	// per batch, which is the MonetDB/X100 observation that interpretation
	// overhead — not data work — dominates row-wise pipelines.
	BatchDispatch time.Duration
	// PageTouch is the CPU cost of staging one 4 KiB page (copy, cache
	// misses) excluding crypto.
	PageTouch time.Duration
	// Cores available for intra-query parallelism of the offloaded part.
	Cores int
	// DecryptPage / EncryptPage price AES-256-CBC + HMAC-SHA-512 on a
	// 4 KiB page for this CPU.
	DecryptPage time.Duration
	EncryptPage time.Duration
	// HashNode prices one HMAC evaluation inside a Merkle proof.
	HashNode time.Duration
}

// LinkProfile prices the host<->storage interconnect.
type LinkProfile struct {
	Name string
	// PerByte is the serialization cost per payload byte (1/bandwidth).
	PerByte time.Duration
	// PerMessage is the fixed per-round-trip latency contribution.
	PerMessage time.Duration
}

// TEEProfile prices trusted-execution overheads.
type TEEProfile struct {
	// EnclaveTransition is the cost of one SGX ECALL/OCALL pair.
	EnclaveTransition time.Duration
	// BatchTransition is the amortized in-enclave cost of one operator
	// batch boundary: spilled-register save/restore and EPC-resident
	// working-set shuffling at each dispatch, far cheaper than a full
	// ECALL/OCALL pair but nonzero (the Figure 8 "other" sliver DuckDB-SGX2
	// measures). Charged per Batches count on secure sides only.
	BatchTransition time.Duration
	// EPCFault is the cost of evicting + reloading one enclave page when
	// the working set exceeds the EPC.
	EPCFault time.Duration
	// EPCLimitBytes is the usable enclave page cache (96 MiB on the
	// paper's hardware).
	EPCLimitBytes int64
	// WorldSwitch is the cost of one TrustZone SMC world switch.
	WorldSwitch time.Duration
	// RPMBRead / RPMBWrite price authenticated RPMB operations.
	RPMBRead  time.Duration
	RPMBWrite time.Duration
}

// CostModel combines platform profiles into a complete pricing of a Snapshot.
type CostModel struct {
	Host    CPUProfile
	Storage CPUProfile
	Link    LinkProfile
	TEE     TEEProfile
}

// DefaultModel returns the calibration used throughout the benchmarks,
// chosen to reflect the paper's testbed ratios: host single-thread ~2.4×
// faster than the Cortex-A72, 40 GbE link, 96 MiB EPC, microsecond-scale
// enclave transitions.
func DefaultModel() CostModel {
	return CostModel{
		Host: CPUProfile{
			Name: "x86-i9-10900K",
			// 15 + 40 preserves the former 55 ns/tuple total, so the
			// row-at-a-time path (one dispatch per tuple) prices as before
			// while batched dispatch amortizes the 40 ns across ~4K rows.
			TupleUnit:     15 * time.Nanosecond,
			BatchDispatch: 40 * time.Nanosecond,
			PageTouch:     350 * time.Nanosecond,
			Cores:         10,
			DecryptPage:   4400 * time.Nanosecond,
			EncryptPage:   4800 * time.Nanosecond,
			HashNode:      1800 * time.Nanosecond,
		},
		Storage: CPUProfile{
			Name: "arm-cortex-a72",
			// 30 + 100 preserves the former 130 ns/tuple total (see Host).
			TupleUnit:     30 * time.Nanosecond,
			BatchDispatch: 100 * time.Nanosecond,
			PageTouch:     800 * time.Nanosecond,
			Cores:         16,
			DecryptPage:   10400 * time.Nanosecond,
			EncryptPage:   11200 * time.Nanosecond,
			HashNode:      4200 * time.Nanosecond,
		},
		Link: LinkProfile{
			Name:       "40GbE",
			PerByte:    time.Duration(1), // ~1 ns/byte ≈ 8 Gb/s effective single stream
			PerMessage: 30 * time.Microsecond,
		},
		TEE: TEEProfile{
			EnclaveTransition: 8 * time.Microsecond,
			BatchTransition:   1 * time.Microsecond,
			EPCFault:          12 * time.Microsecond,
			EPCLimitBytes:     96 << 20,
			WorldSwitch:       4 * time.Microsecond,
			RPMBRead:          150 * time.Microsecond,
			RPMBWrite:         400 * time.Microsecond,
		},
	}
}

// SideCost is the priced breakdown for one execution side.
type SideCost struct {
	Compute   time.Duration // tuple processing
	PageIO    time.Duration // page staging
	Decrypt   time.Duration // page decryption/encryption
	Freshness time.Duration // Merkle verification + RPMB
	TEE       time.Duration // enclave transitions, EPC faults, world switches
}

// Total sums all components.
func (c SideCost) Total() time.Duration {
	return c.Compute + c.PageIO + c.Decrypt + c.Freshness + c.TEE
}

// PriceCPU prices a snapshot's CPU-side work with profile p, dividing
// parallelizable work across up to cores cores (0 means p.Cores). Scans —
// including their per-page decryption and freshness verification — are
// embarrassingly parallel, so all components scale; callers price serial
// sections (the host's SQLite-style query section) with cores=1.
func (m CostModel) PriceCPU(s Snapshot, p CPUProfile, cores int) SideCost {
	if cores <= 0 {
		cores = p.Cores
	}
	if cores < 1 {
		cores = 1
	}
	par := time.Duration(cores)
	var c SideCost
	c.Compute = (time.Duration(s.TupleWork)*p.TupleUnit +
		time.Duration(s.Batches)*p.BatchDispatch) / par
	c.PageIO = time.Duration(s.PagesRead+s.PagesWritten) * p.PageTouch / par
	c.Decrypt = (time.Duration(s.PagesDecrypted)*p.DecryptPage +
		time.Duration(s.PagesEncrypted)*p.EncryptPage) / par
	c.Freshness = time.Duration(s.MerkleHashes) * p.HashNode / par
	return c
}

// PriceTEE prices the trusted-execution overheads in a snapshot.
func (m CostModel) PriceTEE(s Snapshot) time.Duration {
	t := m.TEE
	return time.Duration(s.EnclaveTransitions)*t.EnclaveTransition +
		time.Duration(s.EPCFaults)*t.EPCFault +
		time.Duration(s.WorldSwitches)*t.WorldSwitch +
		time.Duration(s.RPMBReads)*t.RPMBRead +
		time.Duration(s.RPMBWrites)*t.RPMBWrite
}

// PriceBatchTransitions prices the amortized in-enclave operator-batch
// boundary cost for one side's snapshot. It is separate from PriceTEE because
// Batches accrue in every execution mode, but only secure sides pay the
// enclave working-set cost per batch — the caller applies it to the TEE
// component of secure sides only.
func (m CostModel) PriceBatchTransitions(s Snapshot) time.Duration {
	return time.Duration(s.Batches) * m.TEE.BatchTransition
}

// PriceLink prices data transfer. messages is the number of protocol round
// trips observed.
func (m CostModel) PriceLink(bytes, messages int64) time.Duration {
	return time.Duration(bytes)*m.Link.PerByte + time.Duration(messages)*m.Link.PerMessage
}

// QueryCost is the full priced execution of one split query.
type QueryCost struct {
	Host     SideCost
	Storage  SideCost
	Transfer time.Duration
}

// Total models the end-to-end latency: the storage phase, the transfer of
// filtered rows (overlapped with storage execution per the paper's
// asynchronous shipping, so only the excess counts), then the host phase.
func (q QueryCost) Total() time.Duration {
	storagePhase := q.Storage.Total()
	transfer := q.Transfer
	if transfer > storagePhase {
		transfer -= storagePhase // shipping overlaps scan
	} else {
		transfer = 0
	}
	return storagePhase + transfer + q.Host.Total()
}
