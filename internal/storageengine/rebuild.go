// Server-side replica rebuild and membership-epoch support: the donor's
// export endpoints, the target's wipe/import/finalize endpoints, and the
// cluster epoch every offload reply is stamped with (cluster_runtime.go
// fences replies from stale epochs).
package storageengine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"ironsafe/internal/pager"
	"ironsafe/internal/securestore"
)

// RebuildSessionPrefix marks a session id as a rebuild control session.
// ServeConn gates on it both ways: rebuild sessions cannot offload queries,
// query sessions cannot drive the rebuild verbs.
const RebuildSessionPrefix = "rebuild:"

// ErrRebuildUnsupported reports a rebuild attempt on a non-secure store —
// the vanilla pager has no manifest/anchor machinery to rebuild against.
var ErrRebuildUnsupported = errors.New("storageengine: rebuild requires the secure store")

// errNoRebuild reports an import call with no BeginRebuild in flight.
var errNoRebuild = errors.New("storageengine: no rebuild in progress")

// SetEpoch advances the node's view of the cluster membership epoch. It
// only ever moves forward: a broadcast arriving late cannot regress a node
// onto a fenced epoch.
func (s *Server) SetEpoch(e uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e > s.epoch {
		s.epoch = e
	}
}

// Epoch reports the node's current membership epoch. Every offload reply is
// stamped with it; the host rejects replies from any other epoch.
func (s *Server) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// SecureStore returns the node's secure store, or nil on vanilla
// configurations.
func (s *Server) SecureStore() *securestore.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss, _ := s.store.(*securestore.Store)
	return ss
}

// SnapshotMedium captures the raw medium at a transaction boundary: on
// secure configurations the snapshot runs inside the store's commit lock, so
// a concurrent group commit can never tear the captured state.
func (s *Server) SnapshotMedium() map[uint32][]byte {
	ss := s.SecureStore()
	if ss == nil {
		return s.medium.SnapshotBlocks()
	}
	var snap map[uint32][]byte
	ss.Quiesce(func() error {
		snap = s.medium.SnapshotBlocks()
		return nil
	})
	return snap
}

// ExportRebuildManifest serializes the donor's committed state description.
func (s *Server) ExportRebuildManifest() ([]byte, error) {
	ss := s.SecureStore()
	if ss == nil {
		return nil, ErrRebuildUnsupported
	}
	m, err := ss.ExportManifest()
	if err != nil {
		return nil, err
	}
	return securestore.EncodeManifest(m), nil
}

// ExportRebuildPages returns verified plaintext pages [start, start+count).
func (s *Server) ExportRebuildPages(start, count uint32) ([][]byte, error) {
	ss := s.SecureStore()
	if ss == nil {
		return nil, ErrRebuildUnsupported
	}
	return ss.ExportPages(start, count)
}

// BeginRebuild prepares the target to import the manifest's state and
// returns the first page index the donor must stream. A medium that loads
// cleanly and carries a matching-content-root rebuild marker resumes from
// its committed prefix; anything else — unreadable, rolled back, diverged,
// or mid-rebuild of a DIFFERENT donor state — is wiped and imported from
// page zero. Either way the rebuild marker is (re)persisted before this
// returns, so the node cannot pass an integrity sweep until FinalizeRebuild.
func (s *Server) BeginRebuild(manifest []byte) (uint32, error) {
	if !s.cfg.Secure {
		return 0, ErrRebuildUnsupported
	}
	m, err := securestore.DecodeManifest(manifest)
	if err != nil {
		return 0, err
	}
	rs, start, err := s.openForImport(m)
	if err != nil {
		return 0, err
	}
	if err := rs.BeginImport(m); err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.store = rs
	s.rebuildM = m
	s.mu.Unlock()
	return start, nil
}

// openForImport opens the target store for the manifest, deciding between
// resume and wipe-and-restart.
func (s *Server) openForImport(m *securestore.RebuildManifest) (*securestore.Store, uint32, error) {
	s.restartMu.Lock()
	defer s.restartMu.Unlock()
	rs, err := securestore.OpenRebuild(s.dev, s.nw, s.cfg.Meter, s.cfg.StoreOptions)
	if err == nil {
		if start, ok := s.resumePoint(rs, m); ok {
			return rs, start, nil
		}
	}
	// Unresumable (or unreadable): wipe the medium — marker included — and
	// open empty. The wipe goes to the raw medium: it is the administrative
	// act that begins a from-scratch rebuild, not a store mutation.
	s.medium.RestoreBlocks(nil)
	rs, err = securestore.OpenRebuild(s.dev, s.nw, s.cfg.Meter, s.cfg.StoreOptions)
	if err != nil {
		return nil, 0, fmt.Errorf("storageengine: reopening wiped medium for rebuild: %w", err)
	}
	return rs, 0, nil
}

// resumePoint reports where a previously interrupted import of the SAME
// donor state can continue, requiring the committed pages to be a dense
// matching prefix of the manifest.
func (s *Server) resumePoint(rs *securestore.Store, m *securestore.RebuildManifest) (uint32, bool) {
	if rs.Rebuilding() && !bytes.Equal(rs.RebuildRoot(), m.ContentRoot()) {
		return 0, false // mid-rebuild of a different donor state
	}
	diff, err := rs.DiffManifest(m)
	if err != nil {
		return 0, false
	}
	n := rs.NumPages()
	if len(diff) == 0 {
		return n, true // everything already present (crash between last chunk and finalize)
	}
	if diff[0] >= n {
		return n, true // committed prefix matches; only the tail is missing
	}
	return 0, false
}

// ImportRebuildPages verifies and commits one chunk received from the donor.
func (s *Server) ImportRebuildPages(start uint32, pages [][]byte) error {
	rs, m := s.rebuildState()
	if rs == nil {
		return errNoRebuild
	}
	return rs.ImportPages(start, pages, m)
}

// FinalizeRebuild completes the import (full re-verification, donor-seq
// adoption, marker clear) and reopens the store and engine over the rebuilt
// medium, leaving the node ready for ReattestStorage.
func (s *Server) FinalizeRebuild() error {
	rs, m := s.rebuildState()
	if rs == nil {
		return errNoRebuild
	}
	if err := rs.FinalizeImport(m); err != nil {
		return err
	}
	s.mu.Lock()
	s.rebuildM = nil
	s.mu.Unlock()
	return s.openStore()
}

// rebuildState fetches the in-flight rebuild's store and manifest.
func (s *Server) rebuildState() (*securestore.Store, *securestore.RebuildManifest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rebuildM == nil {
		return nil, nil
	}
	ss, _ := s.store.(*securestore.Store)
	return ss, s.rebuildM
}

// encodePageList frames a page chunk: count, then length-prefixed pages.
func encodePageList(pages [][]byte) []byte {
	var b bytes.Buffer
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(pages)))
	b.Write(u32[:])
	for _, p := range pages {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(p)))
		b.Write(u32[:])
		b.Write(p)
	}
	return b.Bytes()
}

// decodePageList parses an encoded page chunk.
func decodePageList(blob []byte) ([][]byte, error) {
	if len(blob) < 4 {
		return nil, errors.New("storageengine: short page list")
	}
	n := binary.LittleEndian.Uint32(blob)
	pos := 4
	// Preallocate only what the blob could possibly carry (each page needs at
	// least its 4-byte length header): a forged count from a malicious donor
	// must not drive a giant allocation before the bounds checks below run.
	capHint := uint32(len(blob)-4) / 4
	if n < capHint {
		capHint = n
	}
	pages := make([][]byte, 0, capHint)
	for i := uint32(0); i < n; i++ {
		if pos+4 > len(blob) {
			return nil, errors.New("storageengine: truncated page list")
		}
		l := int(binary.LittleEndian.Uint32(blob[pos:]))
		pos += 4
		if l < 0 || l > pager.PageSize || pos+l > len(blob) {
			return nil, errors.New("storageengine: bad page length in page list")
		}
		pages = append(pages, append([]byte(nil), blob[pos:pos+l]...))
		pos += l
	}
	if pos != len(blob) {
		return nil, errors.New("storageengine: trailing bytes in page list")
	}
	return pages, nil
}
