package storageengine

import (
	"encoding/binary"
	"net"
	"strings"
	"testing"

	"ironsafe/internal/simtime"
	"ironsafe/internal/tee/trustzone"
	"ironsafe/internal/transport"
)

// offloadFrame builds an unbudgeted offload payload (see Serve's protocol
// doc: 8-byte budget prefix, 2^64-1 = unbudgeted, then the SQL).
func offloadFrame(sql string) []byte {
	frame := make([]byte, 8, 8+len(sql))
	binary.LittleEndian.PutUint64(frame, ^uint64(0))
	return append(frame, sql...)
}

func newServer(t *testing.T, secure bool) (*Server, *simtime.Meter) {
	t.Helper()
	vendor, err := trustzone.NewVendor("acme")
	if err != nil {
		t.Fatal(err)
	}
	var m simtime.Meter
	s, err := New(Config{
		DeviceID: "storage-01", Vendor: vendor,
		Location: "EU", FWVersion: "3.4",
		Secure: secure, Meter: &m,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, &m
}

func seed(t *testing.T, s *Server) {
	t.Helper()
	if _, err := s.DB().Execute("CREATE TABLE t (a INTEGER, b VARCHAR(16))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DB().Execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')"); err != nil {
		t.Fatal(err)
	}
}

func TestNewRequiresMeterAndVendor(t *testing.T) {
	vendor, _ := trustzone.NewVendor("v")
	if _, err := New(Config{Vendor: vendor}); err == nil {
		t.Error("nil meter accepted")
	}
	var m simtime.Meter
	if _, err := New(Config{Meter: &m}); err == nil {
		t.Error("nil vendor accepted")
	}
}

func TestExecOffloadSecure(t *testing.T) {
	s, m := newServer(t, true)
	seed(t, s)
	base := m.Snapshot()
	res, err := s.ExecOffload("SELECT a FROM t WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
	d := m.Snapshot().Sub(base)
	if d.PagesDecrypted == 0 || d.MerkleVerifies == 0 {
		t.Errorf("secure offload did not touch secure store: %+v", d)
	}
}

func TestExecOffloadVanillaSkipsCrypto(t *testing.T) {
	s, m := newServer(t, false)
	seed(t, s)
	base := m.Snapshot()
	if _, err := s.ExecOffload("SELECT a FROM t"); err != nil {
		t.Fatal(err)
	}
	d := m.Snapshot().Sub(base)
	if d.PagesDecrypted != 0 || d.MerkleVerifies != 0 {
		t.Errorf("vanilla offload paid crypto: %+v", d)
	}
}

func TestAttestationWorks(t *testing.T) {
	s, _ := newServer(t, true)
	report, err := s.Attest([]byte("challenge"))
	if err != nil {
		t.Fatal(err)
	}
	if report.NormalWorld != s.NormalWorldMeasurement() {
		t.Error("report measurement mismatch")
	}
}

func TestMemoryBudgetSpill(t *testing.T) {
	vendor, _ := trustzone.NewVendor("acme")
	var m simtime.Meter
	s, err := New(Config{
		DeviceID: "s", Vendor: vendor, Secure: false, Meter: &m,
		MemoryBudget: 1024, // absurdly small
	})
	if err != nil {
		t.Fatal(err)
	}
	seed(t, s)
	for i := 0; i < 200; i++ {
		s.DB().Execute("INSERT INTO t VALUES (9, 'padding-row-payload')")
	}
	base := m.Snapshot()
	if _, err := s.ExecOffload("SELECT * FROM t"); err != nil {
		t.Fatal(err)
	}
	d := m.Snapshot().Sub(base)
	if d.PagesWritten == 0 {
		t.Errorf("no spill charged under tiny budget: %+v", d)
	}
}

func TestSessionKeyLifecycle(t *testing.T) {
	s, _ := newServer(t, false)
	s.InstallSessionKey("sess-1", []byte("k"))
	if k, ok := s.sessionKey("sess-1"); !ok || string(k) != "k" {
		t.Error("key not installed")
	}
	s.RevokeSessionKey("sess-1")
	if _, ok := s.sessionKey("sess-1"); ok {
		t.Error("key not revoked")
	}
}

func TestServeOffloadOverTCP(t *testing.T) {
	s, _ := newServer(t, true)
	seed(t, s)
	s.InstallSessionKey("sess-9", []byte("monitor-issued-key"))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go s.Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(append([]byte{byte(len("sess-9"))}, "sess-9"...))
	sc, err := transport.Client(conn, []byte("monitor-issued-key"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := sc.Send("offload", offloadFrame("SELECT a FROM t WHERE a >= 2")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := sc.Recv()
	if err != nil || typ != "result" {
		t.Fatalf("recv = %q, %v", typ, err)
	}
	if len(payload) == 0 {
		t.Error("empty result payload")
	}
	// Errors travel as error frames.
	sc.Send("offload", offloadFrame("SELECT nope FROM t"))
	typ, payload, _ = sc.Recv()
	if typ != "error" || !strings.Contains(string(payload), "nope") {
		t.Errorf("error frame = %q %q", typ, payload)
	}
	// A frame declaring an exhausted deadline budget is refused with a
	// typed "budget" frame before any execution.
	drained := make([]byte, 8)
	sc.Send("offload", append(drained, "SELECT a FROM t"...))
	typ, _, _ = sc.Recv()
	if typ != "budget" {
		t.Errorf("exhausted-budget offload = %q, want budget refusal", typ)
	}
	// So is one below the minimum useful execution slice — the host floors
	// sub-µs remainders to 1µs, so a zero-only check would never fire
	// against a well-behaved host.
	low := make([]byte, 8)
	binary.LittleEndian.PutUint64(low, MinOffloadBudgetMicros-1)
	sc.Send("offload", append(low, "SELECT a FROM t"...))
	typ, _, _ = sc.Recv()
	if typ != "budget" {
		t.Errorf("below-minimum budget offload = %q, want budget refusal", typ)
	}
	// Exactly the minimum is admitted and executes.
	min := make([]byte, 8)
	binary.LittleEndian.PutUint64(min, MinOffloadBudgetMicros)
	sc.Send("offload", append(min, "SELECT a FROM t"...))
	typ, _, _ = sc.Recv()
	if typ != "result" {
		t.Errorf("minimum-budget offload = %q, want result", typ)
	}
	// A frame too short to carry the budget prefix is malformed.
	sc.Send("offload", []byte("SELECT"))
	typ, payload, _ = sc.Recv()
	if typ != "error" || !strings.Contains(string(payload), "budget prefix") {
		t.Errorf("short offload frame = %q %q", typ, payload)
	}
	sc.Send("unknown-cmd", nil)
	typ, _, _ = sc.Recv()
	if typ != "error" {
		t.Errorf("unknown command = %q", typ)
	}
}

func TestServeRejectsUnknownSession(t *testing.T) {
	s, _ := newServer(t, false)
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	go s.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(append([]byte{byte(len("bogus"))}, "bogus"...))
	if _, err := transport.Client(conn, []byte("whatever"), nil); err == nil {
		t.Error("handshake with unknown session succeeded")
	}
}

func TestServeRejectsWrongSessionKey(t *testing.T) {
	s, _ := newServer(t, false)
	s.InstallSessionKey("sess-1", []byte("right-key"))
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	go s.Serve(ln)
	conn, _ := net.Dial("tcp", ln.Addr().String())
	conn.Write(append([]byte{byte(len("sess-1"))}, "sess-1"...))
	if _, err := transport.Client(conn, []byte("wrong-key"), nil); err == nil {
		t.Error("handshake with wrong key succeeded")
	}
}

func TestBlockFetcher(t *testing.T) {
	s, m := newServer(t, false)
	seed(t, s)
	n := s.Blocks()
	if n == 0 {
		t.Fatal("no blocks")
	}
	base := m.Snapshot()
	b, err := s.FetchBlock(0)
	if err != nil || len(b) == 0 {
		t.Fatalf("fetch: %v", err)
	}
	if m.Snapshot().Sub(base).BytesSent == 0 {
		t.Error("fetch did not charge bytes")
	}
	if err := s.StoreBlock(n, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != n+1 {
		t.Errorf("blocks = %d", s.Blocks())
	}
}
