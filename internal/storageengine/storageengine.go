// Package storageengine implements IronSafe's storage system node: a
// TrustZone-booted server whose normal world runs the CSA runtime and the
// on-disk database engine over the secure storage framework, executing
// offloaded query fragments near the data and shipping filtered rows to the
// host.
package storageengine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"ironsafe/internal/engine"
	"ironsafe/internal/pager"
	"ironsafe/internal/securestore"
	"ironsafe/internal/simtime"
	"ironsafe/internal/sql/exec"
	"ironsafe/internal/tee/trustzone"
	"ironsafe/internal/transport"
)

// Config configures a storage server.
type Config struct {
	// DeviceID names this node.
	DeviceID string
	// Vendor signs the firmware and certifies the device (its ROTPK is the
	// monitor's root of trust for this node).
	Vendor *trustzone.Vendor
	// Location and FWVersion are the attributes execution policies check.
	Location  string
	FWVersion string
	// NormalWorldImage is the measured software stack; the monitor must
	// whitelist its measurement.
	NormalWorldImage []byte
	// Secure selects the secure store (scs/sos); false gives the vanilla
	// pager (vcs/hons).
	Secure bool
	// StoreOptions tunes the secure store.
	StoreOptions securestore.Options
	// MemoryBudget bounds memory available to one offloaded query in
	// bytes; materialization beyond it spills, charging extra page IO
	// (Fig 11). Zero means unlimited.
	MemoryBudget int64
	// Cores is the CPU count exposed for offloaded work (Fig 10); it is
	// recorded in the meter pricing, zero means all.
	Cores int
	// Meter receives the node's work counters. Required.
	Meter *simtime.Meter
	// CacheSize is the plain pager's page cache capacity.
	CacheSize int
	// ScanConfig tunes the table-scan pipeline (batched reads + read-ahead)
	// for every heap on this node; the zero value keeps the sequential
	// per-page path.
	ScanConfig pager.ScanConfig
	// ExecBatchRows is the executor batch size for offloaded query phases
	// (0 = exec.DefaultBatchRows, 1 = row-at-a-time).
	ExecBatchRows int
	// MediumWrapper, when set, wraps the node's raw medium before the page
	// store opens over it — the chaos and crash-sweep harnesses hook fault
	// injectors in here. The wrapped device is reused across Restart, so an
	// armed injector keeps faulting the reopened store.
	MediumWrapper func(node string, dev pager.BlockDevice) pager.BlockDevice
}

// Server is one storage system node.
type Server struct {
	cfg    Config
	device *trustzone.Device
	secure *trustzone.SecureWorld
	nw     *trustzone.NormalWorld
	medium *pager.MemDevice
	dev    pager.BlockDevice // medium, possibly wrapped by cfg.MediumWrapper
	store  pager.PageStore
	db     *engine.DB

	// restartMu serializes the reopen paths (Restart, FinalizeRebuild,
	// BeginRebuild's open-for-import): two concurrent journal recoveries
	// over the same medium would interleave their replay writes.
	restartMu sync.Mutex

	mu       sync.Mutex
	booted   bool
	sessions map[string][]byte // session id -> key (from the monitor)
	// epoch is the cluster membership epoch this node believes is current;
	// every offload reply carries it (rebuild.go). A fenced node misses the
	// bump broadcast, so its replies betray their staleness to the host.
	epoch uint64
	// rebuildM is the manifest of an in-flight replica rebuild (rebuild.go).
	rebuildM *securestore.RebuildManifest
}

// New manufactures, boots, and initializes a storage server. Trusted boot
// runs with vendor-signed ATF and OP-TEE images; the normal-world image is
// measured into the boot chain.
func New(cfg Config) (*Server, error) {
	if cfg.Meter == nil {
		return nil, errors.New("storageengine: meter required")
	}
	if cfg.Vendor == nil {
		return nil, errors.New("storageengine: vendor required")
	}
	if len(cfg.NormalWorldImage) == 0 {
		cfg.NormalWorldImage = []byte("ironsafe storage stack " + cfg.FWVersion)
	}
	device, err := trustzone.NewDevice(cfg.DeviceID, cfg.Vendor)
	if err != nil {
		return nil, err
	}
	atf := cfg.Vendor.SignImage("atf", "2.4", []byte("arm trusted firmware"))
	tos := cfg.Vendor.SignImage("optee", "3.4", []byte("op-tee trusted os"))
	nwImg := trustzone.FirmwareImage{Name: "normal-world", Version: cfg.FWVersion, Code: cfg.NormalWorldImage}
	sw, nw, err := device.Boot(atf, tos, nwImg, cfg.Meter)
	if err != nil {
		return nil, fmt.Errorf("storageengine: trusted boot: %w", err)
	}

	s := &Server{
		cfg:      cfg,
		device:   device,
		secure:   sw,
		nw:       nw,
		medium:   pager.NewMemDevice(),
		booted:   true,
		sessions: map[string][]byte{},
	}
	s.dev = s.medium
	if cfg.MediumWrapper != nil {
		s.dev = cfg.MediumWrapper(cfg.DeviceID, s.dev)
	}
	if err := s.openStore(); err != nil {
		return nil, err
	}
	return s, nil
}

// openStore (re)opens the page store and the database engine over the node's
// medium. On the secure configurations this runs the secure store's journal
// recovery: a medium crashed mid-commit deterministically resumes at the old
// or the new anchored state, while a rolled-back medium fails with
// securestore.ErrFreshness.
func (s *Server) openStore() error {
	s.restartMu.Lock()
	defer s.restartMu.Unlock()
	var store pager.PageStore
	if s.cfg.Secure {
		ss, err := securestore.Open(s.dev, s.nw, s.cfg.Meter, s.cfg.StoreOptions)
		if err != nil {
			return err
		}
		store = ss
	} else {
		cache := s.cfg.CacheSize
		if cache == 0 {
			cache = 256
		}
		store = pager.NewPager(s.dev, s.cfg.Meter, cache)
	}
	db, err := engine.Open(store, s.cfg.Meter)
	if err != nil {
		return err
	}
	db.SetScanConfig(s.cfg.ScanConfig)
	db.SetExecBatchRows(s.cfg.ExecBatchRows)
	// Publish the swap atomically: a concurrent reader (integrity sweep,
	// offload) sees either the old consistent pair or the new one.
	s.mu.Lock()
	s.store = store
	s.db = db
	s.mu.Unlock()
	return nil
}

// Restart models the node powering back on after a crash: the store and
// engine reopen from whatever the medium holds, running journal recovery on
// the way up. The caller decides readmission from the returned error.
func (s *Server) Restart() error {
	return s.openStore()
}

// Attest invokes the attestation TA (monitor.StorageAttester).
func (s *Server) Attest(challenge []byte) (*trustzone.AttestationReport, error) {
	return s.nw.Attest(challenge)
}

// Info returns the node's deployment attributes.
func (s *Server) Info() (id, location, fw string) {
	return s.cfg.DeviceID, s.cfg.Location, s.cfg.FWVersion
}

// DB exposes the engine for data loading and the sos configuration.
func (s *Server) DB() *engine.DB {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db
}

// Medium exposes the raw untrusted medium (tests and attack simulations).
func (s *Server) Medium() *pager.MemDevice { return s.medium }

// StoreSeq returns the secure store's committed transaction sequence — the
// durable ingest position. Each engine batch is exactly one store commit, so
// seq arithmetic tells a recovering ingest pipeline which batches a node holds.
// Plain (non-secure) stores have no commit sequence and report 0.
func (s *Server) StoreSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ss, ok := s.store.(*securestore.Store); ok {
		return ss.Seq()
	}
	return 0
}

// NormalWorldMeasurement is the boot-time measurement the monitor whitelists.
func (s *Server) NormalWorldMeasurement() trustzone.Measurement {
	return s.secure.NormalWorldMeasurement()
}

// InstallSessionKey records a monitor-distributed session key so the host
// can open a bound transport channel.
func (s *Server) InstallSessionKey(sessionID string, key []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions[sessionID] = append([]byte(nil), key...)
}

// RevokeSessionKey implements session cleanup on the storage side.
func (s *Server) RevokeSessionKey(sessionID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sessions, sessionID)
}

// sessionKey fetches an installed key.
func (s *Server) sessionKey(sessionID string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k, ok := s.sessions[sessionID]
	return k, ok
}

// ExecOffload runs one offloaded query fragment on the local engine,
// applying the memory-budget spill model.
func (s *Server) ExecOffload(sql string) (*exec.Result, error) {
	res, err := s.DB().Execute(sql)
	if err != nil {
		return nil, fmt.Errorf("storageengine: offload: %w", err)
	}
	s.chargeSpill(res)
	return res, nil
}

// chargeSpill models constrained memory (Fig 11): when an offloaded query's
// materialized output exceeds the budget, the excess spills through the
// (secure) medium in multi-pass fashion — each spilled page is encrypted,
// written, read back, verified, and decrypted, and the merge makes several
// passes, exactly the work a memory-starved external sort/materialization
// performs.
func (s *Server) chargeSpill(res *exec.Result) {
	if s.cfg.MemoryBudget <= 0 {
		return
	}
	var bytes int64
	for _, r := range res.Rows {
		bytes += int64(len(r) * 16) // coarse in-memory row estimate
	}
	if bytes <= s.cfg.MemoryBudget {
		return
	}
	const spillPasses = 3
	spillPages := (bytes - s.cfg.MemoryBudget) / pager.PageSize * spillPasses
	s.cfg.Meter.PagesWritten.Add(spillPages)
	s.cfg.Meter.PagesRead.Add(spillPages)
	if s.cfg.Secure {
		s.cfg.Meter.PagesEncrypted.Add(spillPages)
		s.cfg.Meter.PagesDecrypted.Add(spillPages)
		s.cfg.Meter.MerkleHashes.Add(spillPages * 8)
	}
}

// Cores reports the CPU count used when pricing this node's work.
func (s *Server) Cores() int { return s.cfg.Cores }

// Serve accepts host connections on ln. Protocol (all frames over the
// session-key-bound secure channel):
//
//	-> "offload"  payload = budgetMicros (8B LE; 2^64-1 = unbudgeted) ++ SQL
//	<- "result"   payload = epoch (8B LE) ++ exec wire encoding
//	<- "budget"   payload = empty (deadline budget exhausted; not executed)
//	<- "error"    payload = message
//
// The first frame's session binding: the channel handshake requires the
// session key named in a plaintext preamble frame ("session" + id), which the
// server looks up before upgrading.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn)
	}
}

// PreambleTimeout bounds the plaintext session preamble plus handshake: a
// client that connects and then goes silent must not pin a serving goroutine
// forever.
const PreambleTimeout = 5 * time.Second

// MinOffloadBudgetMicros is the smallest remaining deadline budget (µs) an
// offload is admitted with. Below this no fragment can decrypt, execute, and
// ship rows before the host-side slice armed from the same budget expires —
// the work would be wasted TEE cycles. Admission compares against this
// minimum rather than only zero: the host floors sub-µs remainders to 1µs
// (0 means exhausted), so a zero-only check could never fire against a
// well-behaved host and the server-side enforcement would be dead code.
const MinOffloadBudgetMicros = 1000

// ServeConn serves one host connection — exported so single-process
// deployments (and the chaos harness) can drive the full wire protocol over
// in-process pipes, optionally wrapped with fault injectors.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(PreambleTimeout)) //ironsafe:allow wallclock -- bounding preamble+handshake against silent clients
	// Plaintext preamble: the session id length-prefixed.
	var idLen [1]byte
	if _, err := readFull(conn, idLen[:]); err != nil {
		return
	}
	idBuf := make([]byte, idLen[0])
	if _, err := readFull(conn, idBuf); err != nil {
		return
	}
	sessionID := string(idBuf)
	key, ok := s.sessionKey(sessionID)
	if !ok {
		return // unknown session: refuse to handshake
	}
	rebuildSession := strings.HasPrefix(sessionID, RebuildSessionPrefix)
	sc, err := transport.Server(conn, key, s.cfg.Meter)
	if err != nil {
		return
	}
	conn.SetDeadline(time.Time{})
	defer sc.Close()
	for {
		typ, payload, err := sc.Recv()
		if err != nil {
			return
		}
		if typ != "bye" && strings.HasPrefix(typ, "rebuild-") != rebuildSession {
			// Gate both ways: rebuild sessions cannot offload queries, and
			// query sessions cannot drive the rebuild verbs.
			sc.Send("error", []byte("command "+typ+" not permitted on this session"))
			continue
		}
		switch typ {
		case "offload":
			// Offload frames carry an 8-byte little-endian deadline-budget
			// prefix (remaining µs; math.MaxUint64 = unbudgeted) ahead of the
			// SQL. The storage node enforces the budget at admission: a
			// fragment arriving with less than the minimum useful execution
			// slice gets a typed "budget" refusal instead of burning TEE
			// cycles on a result the host can no longer use. (The in-flight
			// slice itself is bounded by the channel deadline the host arms
			// from the same budget.)
			if len(payload) < 8 {
				sc.Send("error", []byte("offload frame too short for budget prefix"))
				continue
			}
			budgetMicros := binary.LittleEndian.Uint64(payload[:8])
			if budgetMicros < MinOffloadBudgetMicros {
				sc.Send("budget", nil)
				continue
			}
			res, err := s.ExecOffload(string(payload[8:]))
			if err != nil {
				sc.Send("error", []byte(err.Error()))
				continue
			}
			blob, err := exec.EncodeResult(res)
			if err != nil {
				sc.Send("error", []byte(err.Error()))
				continue
			}
			s.cfg.Meter.RowsShipped.Add(int64(len(res.Rows)))
			// The reply is stamped with this node's membership epoch; the
			// host rejects any stamp that differs from the cluster's.
			out := make([]byte, 8, 8+len(blob))
			binary.LittleEndian.PutUint64(out, s.Epoch())
			sc.Send("result", append(out, blob...))
		case "rebuild-manifest":
			blob, err := s.ExportRebuildManifest()
			if err != nil {
				sc.Send("error", []byte(err.Error()))
				continue
			}
			sc.Send("manifest", blob)
		case "rebuild-read":
			if len(payload) != 8 {
				sc.Send("error", []byte("bad rebuild-read request"))
				continue
			}
			start := binary.LittleEndian.Uint32(payload[0:4])
			count := binary.LittleEndian.Uint32(payload[4:8])
			pages, err := s.ExportRebuildPages(start, count)
			if err != nil {
				sc.Send("error", []byte(err.Error()))
				continue
			}
			sc.Send("pages", encodePageList(pages))
		case "rebuild-begin":
			start, err := s.BeginRebuild(payload)
			if err != nil {
				sc.Send("error", []byte(err.Error()))
				continue
			}
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], start)
			sc.Send("begin-ok", b[:])
		case "rebuild-pages":
			if len(payload) < 4 {
				sc.Send("error", []byte("bad rebuild-pages request"))
				continue
			}
			pages, err := decodePageList(payload[4:])
			if err != nil {
				sc.Send("error", []byte(err.Error()))
				continue
			}
			if err := s.ImportRebuildPages(binary.LittleEndian.Uint32(payload[0:4]), pages); err != nil {
				sc.Send("error", []byte(err.Error()))
				continue
			}
			sc.Send("ok", nil)
		case "rebuild-finalize":
			if err := s.FinalizeRebuild(); err != nil {
				sc.Send("error", []byte(err.Error()))
				continue
			}
			sc.Send("ok", nil)
		case "bye":
			return
		default:
			sc.Send("error", []byte("unknown command "+typ))
		}
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		//ironsafe:allow rawnet -- preamble read; ServeConn arms a PreambleTimeout deadline before calling here
		m, err := conn.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// FetchBlock serves a raw medium block to a remote host (the NFS-like path
// of the host-only configurations). The block moves over the link, so the
// storage side charges its bytes here.
func (s *Server) FetchBlock(idx uint32) ([]byte, error) {
	b, err := s.medium.ReadBlock(idx)
	if err != nil {
		return nil, err
	}
	s.cfg.Meter.BytesSent.Add(int64(len(b)))
	return b, nil
}

// StoreBlock writes a raw medium block on behalf of a remote host.
func (s *Server) StoreBlock(idx uint32, data []byte) error {
	s.cfg.Meter.BytesReceived.Add(int64(len(data)))
	return s.medium.WriteBlock(idx, data)
}

// Blocks reports the medium size for remote mounting.
func (s *Server) Blocks() uint32 { return s.medium.NumBlocks() }

// VerifyStore re-verifies every page of the secure store against the RPMB
// anchor — the audit-time integrity sweep a regulator or operator can
// request. It is a no-op success on non-secure configurations.
func (s *Server) VerifyStore() error {
	if ss := s.SecureStore(); ss != nil {
		return ss.VerifyAll()
	}
	return nil
}
