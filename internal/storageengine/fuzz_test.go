package storageengine

import (
	"bytes"
	"testing"

	"ironsafe/internal/pager"
)

// FuzzDecodePageList feeds arbitrary bytes to the rebuild page-chunk parser —
// the one wire structure a compromised donor controls end to end (pages are
// re-verified against the manifest afterwards, but the framing itself must
// hold). Contract: no panic, no forged-count resource blowup, and an accepted
// chunk must re-encode to the exact input.
func FuzzDecodePageList(f *testing.F) {
	f.Add(encodePageList(nil))
	f.Add(encodePageList([][]byte{{}}))
	f.Add(encodePageList([][]byte{[]byte("page one"), bytes.Repeat([]byte{0x5A}, pager.PageSize)}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})                 // forged count, no payload
	f.Add([]byte{0x02, 0x00, 0x00, 0x00, 0x01, 0x00})     // truncated mid-header
	f.Add(append(encodePageList([][]byte{{0x01}}), 0x00)) // trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		pages, err := decodePageList(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodePageList(pages), data) {
			t.Fatalf("accepted page list (%d pages) does not round-trip", len(pages))
		}
		for i, p := range pages {
			if len(p) > pager.PageSize {
				t.Fatalf("page %d oversized: %d bytes", i, len(p))
			}
		}
	})
}
