package transport

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"ironsafe/internal/simtime"
)

func TestPipeRoundTrip(t *testing.T) {
	key := []byte("session-key-1234")
	var cm, sm simtime.Meter
	client, server, err := Pipe(key, &cm, &sm)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	defer server.Close()

	done := make(chan error, 1)
	go func() {
		typ, payload, err := server.Recv()
		if err != nil {
			done <- err
			return
		}
		if typ != "query" || string(payload) != "SELECT 1" {
			t.Errorf("server got %q %q", typ, payload)
		}
		done <- server.Send("result", []byte("ok"))
	}()
	if err := client.Send("query", []byte("SELECT 1")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if typ != "result" || string(payload) != "ok" {
		t.Errorf("client got %q %q", typ, payload)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if cm.Snapshot().BytesSent == 0 || sm.Snapshot().BytesReceived == 0 {
		t.Error("byte counters not charged")
	}
}

func TestRealTCPRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	key := []byte("k")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		sc, err := Server(conn, key, nil)
		if err != nil {
			t.Error(err)
			return
		}
		defer sc.Close()
		typ, p, err := sc.Recv()
		if err != nil || typ != "ping" {
			t.Errorf("server recv: %q %v", typ, err)
			return
		}
		sc.Send("pong", p)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Client(conn, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	big := bytes.Repeat([]byte("x"), 1<<16)
	if err := sc.Send("ping", big); err != nil {
		t.Fatal(err)
	}
	typ, p, err := sc.Recv()
	if err != nil || typ != "pong" || !bytes.Equal(p, big) {
		t.Errorf("client recv: %q len=%d %v", typ, len(p), err)
	}
	wg.Wait()
}

func TestWrongSessionKeyFailsHandshake(t *testing.T) {
	a, b := net.Pipe()
	errs := make(chan error, 2)
	// Whichever side detects the mismatch closes both pipe ends so the
	// peer's blocked read unblocks too.
	go func() {
		_, err := Server(b, []byte("key-A"), nil)
		if err != nil {
			a.Close()
			b.Close()
		}
		errs <- err
	}()
	go func() {
		_, err := Client(a, []byte("key-B"), nil)
		if err != nil {
			a.Close()
			b.Close()
		}
		errs <- err
	}()
	e1, e2 := <-errs, <-errs
	if e1 == nil && e2 == nil {
		t.Error("mismatched session keys completed the handshake")
	}
}

func TestEavesdropperSeesOnlyCiphertext(t *testing.T) {
	// Wire-tap the client->server direction.
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	var captured bytes.Buffer
	serverReady := make(chan *SecureConn, 1)
	go func() {
		conn, _ := ln.Accept()
		tap := &tapConn{Conn: conn, buf: &captured}
		sc, err := Server(tap, []byte("k"), nil)
		if err != nil {
			serverReady <- nil
			return
		}
		serverReady <- sc
	}()
	conn, _ := net.Dial("tcp", ln.Addr().String())
	client, err := Client(conn, []byte("k"), nil)
	if err != nil {
		t.Fatal(err)
	}
	server := <-serverReady
	if server == nil {
		t.Fatal("server handshake failed")
	}
	secret := []byte("super-secret-query-SELECT-ssn-FROM-patients")
	go client.Send("q", secret)
	if _, _, err := server.Recv(); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(captured.Bytes(), secret) {
		t.Error("plaintext visible on the wire")
	}
}

type tapConn struct {
	net.Conn
	buf *bytes.Buffer
}

func (c *tapConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.buf.Write(p[:n])
	return n, err
}

func TestTamperedFrameRejected(t *testing.T) {
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	srvErr := make(chan error, 1)
	go func() {
		conn, _ := ln.Accept()
		flip := &flipConn{Conn: conn}
		sc, err := Server(flip, []byte("k"), nil)
		if err != nil {
			srvErr <- err
			return
		}
		flip.armed = true // start corrupting after the handshake
		_, _, err = sc.Recv()
		srvErr <- err
	}()
	conn, _ := net.Dial("tcp", ln.Addr().String())
	client, err := Client(conn, []byte("k"), nil)
	if err != nil {
		t.Fatal(err)
	}
	client.Send("q", []byte("payload"))
	if err := <-srvErr; err == nil {
		t.Error("tampered frame accepted")
	}
}

// flipConn corrupts the last byte of each read once armed.
type flipConn struct {
	net.Conn
	armed bool
}

func (c *flipConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if c.armed && n > 0 {
		p[n-1] ^= 1
	}
	return n, err
}

func TestManyMessagesSequenced(t *testing.T) {
	client, server, err := Pipe(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			client.Send("m", []byte{byte(i)})
		}
	}()
	for i := 0; i < n; i++ {
		_, p, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if p[0] != byte(i) {
			t.Fatalf("message %d out of order: %d", i, p[0])
		}
	}
}

func TestOversizeTypeRejected(t *testing.T) {
	client, _, err := Pipe(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	longType := string(bytes.Repeat([]byte("t"), 300))
	if err := client.Send(longType, nil); err == nil {
		t.Error("oversize type accepted")
	}
}

// TestReorderedFramesRejected verifies the per-direction nonce sequence
// defeats a network attacker who buffers and swaps two frames.
func TestReorderedFramesRejected(t *testing.T) {
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	srvErr := make(chan error, 1)
	go func() {
		conn, _ := ln.Accept()
		swap := &swapConn{Conn: conn}
		sc, err := Server(swap, []byte("k"), nil)
		if err != nil {
			srvErr <- err
			return
		}
		swap.armed = true
		// Read two frames; the swap delivers them out of order.
		if _, _, err := sc.Recv(); err != nil {
			srvErr <- err
			return
		}
		_, _, err = sc.Recv()
		srvErr <- err
	}()
	conn, _ := net.Dial("tcp", ln.Addr().String())
	client, err := Client(conn, []byte("k"), nil)
	if err != nil {
		t.Fatal(err)
	}
	client.Send("a", []byte("first"))
	client.Send("b", []byte("second"))
	if err := <-srvErr; err == nil {
		t.Error("reordered frames accepted")
	}
}

// swapConn buffers whole frames after arming and delivers the first two in
// swapped order.
type swapConn struct {
	net.Conn
	armed  bool
	buf    bytes.Buffer
	queued []byte
}

func (c *swapConn) Read(p []byte) (int, error) {
	if !c.armed {
		return c.Conn.Read(p)
	}
	if c.queued == nil {
		// Accumulate two complete frames.
		frames := make([][]byte, 0, 2)
		for len(frames) < 2 {
			var hdr [4]byte
			if _, err := readFullConn(c.Conn, hdr[:]); err != nil {
				return 0, err
			}
			n := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
			body := make([]byte, n)
			if _, err := readFullConn(c.Conn, body); err != nil {
				return 0, err
			}
			frames = append(frames, append(hdr[:], body...))
		}
		c.queued = append(frames[1], frames[0]...) // swapped
	}
	n := copy(p, c.queued)
	c.queued = c.queued[n:]
	return n, nil
}

func readFullConn(c net.Conn, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := c.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// TestReplayedFrameRejected: replaying a captured (valid) frame fails
// because the receiver's nonce counter has moved on.
func TestReplayedFrameRejected(t *testing.T) {
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	srvErr := make(chan error, 1)
	go func() {
		conn, _ := ln.Accept()
		rep := &replayConn{Conn: conn}
		sc, err := Server(rep, []byte("k"), nil)
		if err != nil {
			srvErr <- err
			return
		}
		rep.armed = true
		if _, _, err := sc.Recv(); err != nil { // original
			srvErr <- err
			return
		}
		_, _, err = sc.Recv() // replay of the same frame
		srvErr <- err
	}()
	conn, _ := net.Dial("tcp", ln.Addr().String())
	client, err := Client(conn, []byte("k"), nil)
	if err != nil {
		t.Fatal(err)
	}
	client.Send("a", []byte("payload"))
	if err := <-srvErr; err == nil {
		t.Error("replayed frame accepted")
	}
}

// replayConn duplicates the first complete frame it sees after arming.
type replayConn struct {
	net.Conn
	armed  bool
	queued []byte
}

func (c *replayConn) Read(p []byte) (int, error) {
	if !c.armed {
		return c.Conn.Read(p)
	}
	if c.queued == nil {
		var hdr [4]byte
		if _, err := readFullConn(c.Conn, hdr[:]); err != nil {
			return 0, err
		}
		n := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
		body := make([]byte, n)
		if _, err := readFullConn(c.Conn, body); err != nil {
			return 0, err
		}
		frame := append(hdr[:], body...)
		c.queued = append(append([]byte{}, frame...), frame...) // twice
	}
	n := copy(p, c.queued)
	c.queued = c.queued[n:]
	return n, nil
}
