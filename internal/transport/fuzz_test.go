package transport

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// fuzzAEAD is the deterministic receive AEAD every fuzz input is parsed
// under — the same construction the handshake derives.
func fuzzAEAD(tb testing.TB) cipher.AEAD {
	key := sha256.Sum256([]byte("transport-fuzz-key"))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		tb.Fatal(err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		tb.Fatal(err)
	}
	return aead
}

// fuzzSeal produces the genuine wire frame for (msgType, payload) at seq —
// the encoder FuzzRecv's accepted inputs are checked against.
func fuzzSeal(aead cipher.AEAD, seq uint64, msgType string, payload []byte) []byte {
	plain := make([]byte, 0, 1+len(msgType)+len(payload))
	plain = append(plain, byte(len(msgType)))
	plain = append(plain, msgType...)
	plain = append(plain, payload...)
	nonce := make([]byte, aead.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], seq)
	ct := aead.Seal(nil, nonce, plain, nil)
	frame := make([]byte, 4, 4+len(ct))
	binary.BigEndian.PutUint32(frame, uint32(len(ct)))
	return append(frame, ct...)
}

// fuzzWire serves a byte blob as a net.Conn read side.
type fuzzWire struct{ r *bytes.Reader }

func (w *fuzzWire) Read(p []byte) (int, error)       { return w.r.Read(p) }
func (w *fuzzWire) Write(p []byte) (int, error)      { return len(p), nil }
func (w *fuzzWire) Close() error                     { return nil }
func (w *fuzzWire) LocalAddr() net.Addr              { return nil }
func (w *fuzzWire) RemoteAddr() net.Addr             { return nil }
func (w *fuzzWire) SetDeadline(time.Time) error      { return nil }
func (w *fuzzWire) SetReadDeadline(time.Time) error  { return nil }
func (w *fuzzWire) SetWriteDeadline(time.Time) error { return nil }

// FuzzRecv feeds arbitrary wire bytes to the frame parser. The contract: no
// panic, and anything Recv accepts must be byte-identical to the genuine
// sealing of the returned message at the expected sequence number — i.e. only
// an authentic frame is ever surfaced as data; everything else is a typed
// error.
func FuzzRecv(f *testing.F) {
	aead := fuzzAEAD(f)
	f.Add(fuzzSeal(aead, 0, "result", []byte("rows")))
	f.Add(fuzzSeal(aead, 0, "", nil))
	f.Add(fuzzSeal(aead, 1, "offload", bytes.Repeat([]byte{0xA5}, 256))) // wrong seq
	corrupt := fuzzSeal(aead, 0, "result", []byte("rows"))
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x01})                     // truncated body
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00})               // oversized length header
	f.Add(append([]byte{0x00, 0x00, 0x00, 0x00}, 0xAA, 0xBB)) // empty frame + trailing junk

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := &SecureConn{conn: &fuzzWire{r: bytes.NewReader(data)}, recvAEAD: aead}
		msgType, payload, err := sc.Recv()
		if err != nil {
			return
		}
		if len(data) < 4 {
			t.Fatalf("accepted a %d-byte blob", len(data))
		}
		n := binary.BigEndian.Uint32(data[:4])
		if uint64(len(data)) < 4+uint64(n) {
			t.Fatal("accepted a truncated frame")
		}
		want := fuzzSeal(aead, 0, msgType, payload)
		if !bytes.Equal(want, data[:4+n]) {
			t.Fatalf("accepted frame is not the genuine sealing of %q/%d bytes", msgType, len(payload))
		}
	})
}

// FuzzRecvRejectsTamper seals a genuine frame from fuzzed content, flips a
// fuzz-chosen byte, and demands the typed ErrAuth — no tampered frame may
// parse, and no tamper may crash the parser.
func FuzzRecvRejectsTamper(f *testing.F) {
	f.Add("result", []byte("payload"), 5)
	f.Add("", []byte{}, 0)
	f.Add("x", bytes.Repeat([]byte{0x42}, 128), 70)

	aead := fuzzAEAD(f)
	f.Fuzz(func(t *testing.T, msgType string, payload []byte, flip int) {
		if len(msgType) > 255 {
			msgType = msgType[:255]
		}
		frame := fuzzSeal(aead, 0, msgType, payload)
		if flip < 0 {
			flip = -flip
		}
		// Flip one ciphertext byte (never the length header: that is framing,
		// not authentication).
		idx := 4 + flip%(len(frame)-4)
		frame[idx] ^= 0x01
		sc := &SecureConn{conn: &fuzzWire{r: bytes.NewReader(frame)}, recvAEAD: aead}
		if _, _, err := sc.Recv(); !errors.Is(err, ErrAuth) {
			t.Fatalf("tampered frame at byte %d = %v, want ErrAuth", idx, err)
		}
	})
}
