package transport

import (
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"
)

// faultPair builds a handshaked client plus a raw conn speaking directly to
// the server side's underlying socket, so tests can write hostile bytes.
func rawServerPair(t *testing.T) (*SecureConn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	ch := make(chan *SecureConn, 1)
	go func() {
		sc, err := Server(b, []byte("k"), nil)
		if err != nil {
			b.Close()
			ch <- nil
			return
		}
		ch <- sc
	}()
	client, err := Client(a, []byte("k"), nil)
	if err != nil {
		t.Fatal(err)
	}
	server := <-ch
	if server == nil {
		t.Fatal("server handshake failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	// Return the server SecureConn and the client's raw pipe end: past the
	// handshake, bytes written raw on a reach the server unencrypted.
	return server, a
}

// TestOversizedLengthHeaderTyped: a length header past MaxFrame must fail
// with ErrFrameTooLarge before any allocation or read of the body.
func TestOversizedLengthHeaderTyped(t *testing.T) {
	server, raw := rawServerPair(t)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	errc := make(chan error, 1)
	go func() {
		_, _, err := server.Recv()
		errc <- err
	}()
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Errorf("err = %v, want ErrFrameTooLarge", err)
		}
	case <-time.After(2 * time.Second): //ironsafe:allow wallclock -- test watchdog
		t.Fatal("Recv hung on oversized header")
	}
}

// TestBitFlippedCiphertextTyped: any flipped ciphertext bit must surface as
// ErrAuth, and the connection must not desync into accepting later frames.
func TestBitFlippedCiphertextTyped(t *testing.T) {
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	srvErrs := make(chan error, 2)
	go func() {
		conn, _ := ln.Accept()
		flip := &flipConn{Conn: conn}
		sc, err := Server(flip, []byte("k"), nil)
		if err != nil {
			srvErrs <- err
			return
		}
		flip.armed = true
		_, _, err = sc.Recv()
		srvErrs <- err
		flip.armed = false
		_, _, err = sc.Recv() // after an auth failure the channel stays dead-safe
		srvErrs <- err
	}()
	conn, _ := net.Dial("tcp", ln.Addr().String())
	client, err := Client(conn, []byte("k"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Send("q", []byte("payload"))
	if err := <-srvErrs; !errors.Is(err, ErrAuth) {
		t.Errorf("flipped bit: err = %v, want ErrAuth", err)
	}
	// A follow-up clean frame must ALSO fail with a typed error: the
	// receiver burned a nonce (and possibly its framing alignment) on the
	// corrupted frame, so nothing after it may be silently accepted.
	client.Send("q2", []byte("clean"))
	if err := <-srvErrs; !errors.Is(err, ErrAuth) && !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("post-corruption frame: err = %v, want typed rejection (no desync)", err)
	}
}

// TestTruncatedFrameFailsFast: a frame cut short by a dying peer must error
// out once the conn closes — never hang, never deliver partial plaintext.
func TestTruncatedFrameFailsFast(t *testing.T) {
	server, raw := rawServerPair(t)
	// Announce 100 bytes, deliver 10, then die.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	errc := make(chan error, 1)
	go func() {
		_, _, err := server.Recv()
		errc <- err
	}()
	raw.Write(hdr[:])
	raw.Write(make([]byte, 10))
	raw.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("truncated frame delivered successfully")
		}
	case <-time.After(2 * time.Second): //ironsafe:allow wallclock -- test watchdog
		t.Fatal("Recv hung on truncated frame")
	}
}

// TestSetIOTimeoutUnblocksSilentPeer: with an I/O timeout armed, Recv on a
// silent connection returns a timeout error instead of blocking forever.
func TestSetIOTimeoutUnblocksSilentPeer(t *testing.T) {
	client, _, err := Pipe(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetIOTimeout(50 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, _, err := client.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Errorf("err = %v, want timeout", err)
		}
	case <-time.After(2 * time.Second): //ironsafe:allow wallclock -- test watchdog
		t.Fatal("Recv ignored the I/O timeout")
	}
}

// TestPipeHandshakeFailureLeaksNoGoroutine: the regression this guards
// against is Pipe leaving its server goroutine blocked forever when the
// client side errors first.
func TestPipeHandshakeFailureLeaksNoGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	// Force handshake failures by racing many pipes with mismatched
	// pre-closed conns: simplest deterministic trigger is closing one end.
	for i := 0; i < 20; i++ {
		a, b := net.Pipe()
		a.Close()
		b.Close()
		// Both sides fail immediately; Pipe (which creates its own pipe)
		// can't be forced to fail from outside, so exercise the component
		// path Pipe uses: a Server goroutine plus failing Client.
		ch := make(chan error, 1)
		go func() {
			_, err := Server(b, []byte("k"), nil)
			ch <- err
		}()
		if _, err := Client(a, []byte("k"), nil); err == nil {
			t.Fatal("handshake on closed pipe succeeded")
		}
		if err := <-ch; err == nil {
			t.Fatal("server handshake on closed pipe succeeded")
		}
	}
	// Also run healthy Pipes to ensure the success path leaves nothing.
	for i := 0; i < 5; i++ {
		c, s, err := Pipe([]byte("k"), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
		s.Close()
	}
	deadline := time.Now().Add(2 * time.Second) //ironsafe:allow wallclock -- goroutine-drain watchdog
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) { //ironsafe:allow wallclock -- goroutine-drain watchdog
			t.Fatalf("goroutines leaked: %d -> %d", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond) //ironsafe:allow wallclock -- polling goroutine count
	}
}
