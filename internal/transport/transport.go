// Package transport implements IronSafe's trusted networking layer (§5): an
// authenticated-encryption channel over TCP between client, host, monitor,
// and storage system. A fresh X25519 handshake runs per connection; when the
// trusted monitor has issued a session key, it is mixed into the key
// schedule so the channel is cryptographically bound to the monitor-approved
// session — a peer without the session key cannot complete the handshake.
package transport

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ironsafe/internal/simtime"
)

// MaxFrame bounds a single message (16 MiB).
const MaxFrame = 16 << 20

// Typed failures, so callers can distinguish an attacked or misbehaving
// channel from ordinary I/O trouble and fail fast instead of retrying a
// conversation whose AEAD state is unrecoverably desynchronized.
var (
	// ErrFrameTooLarge reports a length header exceeding MaxFrame — a
	// corrupted or hostile peer; reading on would desync the stream.
	ErrFrameTooLarge = errors.New("transport: frame exceeds limit")
	// ErrAuth reports AEAD verification failure: a corrupted, replayed,
	// reordered, or forged frame. The channel must be abandoned.
	ErrAuth = errors.New("transport: frame authentication failed")
	// ErrMalformed reports a frame that decrypted but violates framing.
	ErrMalformed = errors.New("transport: malformed frame")
)

// SecureConn is an encrypted, integrity-protected message channel.
type SecureConn struct {
	conn  net.Conn
	meter *simtime.Meter

	ioMu      sync.Mutex
	ioTimeout time.Duration

	sendMu    sync.Mutex
	sendAEAD  cipher.AEAD
	sendSeq   uint64
	recvMu    sync.Mutex
	recvAEAD  cipher.AEAD
	recvSeq   uint64
	recvExtra []byte
}

// SetIOTimeout makes every subsequent Send and Recv arm a deadline of d on
// the underlying connection, so a stalled or hung peer surfaces as a timeout
// error instead of blocking forever. Zero disables the deadline.
func (c *SecureConn) SetIOTimeout(d time.Duration) {
	c.ioMu.Lock()
	c.ioTimeout = d
	c.ioMu.Unlock()
}

// armDeadline arms a read or write deadline if an I/O timeout is set; the
// returned func clears it.
func (c *SecureConn) armDeadline(set func(time.Time) error) func() {
	c.ioMu.Lock()
	d := c.ioTimeout
	c.ioMu.Unlock()
	if d <= 0 {
		return func() {}
	}
	set(time.Now().Add(d)) //ironsafe:allow wallclock -- arming a real I/O deadline against hung peers
	return func() { set(time.Time{}) }
}

// deriveKey expands the handshake secret into a directional key.
func deriveKey(shared, sessionKey []byte, label string) []byte {
	mac := hmac.New(sha256.New, sessionKey) // nil key is valid for HMAC
	mac.Write([]byte("ironsafe-transport-v1|"))
	mac.Write([]byte(label))
	mac.Write([]byte{'|'})
	mac.Write(shared)
	return mac.Sum(nil)
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// handshake runs the X25519 exchange; isClient controls key directionality.
func handshake(conn net.Conn, sessionKey []byte, isClient bool, meter *simtime.Meter) (*SecureConn, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("transport: keygen: %w", err)
	}
	pub := priv.PublicKey().Bytes()
	peer := make([]byte, 32)
	// The exchange is strictly ordered (client writes first) so it also
	// works over unbuffered in-process pipes.
	if isClient {
		if _, err := conn.Write(pub); err != nil {
			return nil, fmt.Errorf("transport: sending handshake: %w", err)
		}
		if _, err := io.ReadFull(conn, peer); err != nil {
			return nil, fmt.Errorf("transport: reading handshake: %w", err)
		}
	} else {
		if _, err := io.ReadFull(conn, peer); err != nil {
			return nil, fmt.Errorf("transport: reading handshake: %w", err)
		}
		if _, err := conn.Write(pub); err != nil {
			return nil, fmt.Errorf("transport: sending handshake: %w", err)
		}
	}
	peerKey, err := ecdh.X25519().NewPublicKey(peer)
	if err != nil {
		return nil, fmt.Errorf("transport: peer key: %w", err)
	}
	shared, err := priv.ECDH(peerKey)
	if err != nil {
		return nil, fmt.Errorf("transport: ecdh: %w", err)
	}
	c2s, err := newAEAD(deriveKey(shared, sessionKey, "c2s"))
	if err != nil {
		return nil, err
	}
	s2c, err := newAEAD(deriveKey(shared, sessionKey, "s2c"))
	if err != nil {
		return nil, err
	}
	sc := &SecureConn{conn: conn, meter: meter}
	if isClient {
		sc.sendAEAD, sc.recvAEAD = c2s, s2c
	} else {
		sc.sendAEAD, sc.recvAEAD = s2c, c2s
	}
	if meter != nil {
		meter.BytesSent.Add(32)
		meter.BytesReceived.Add(32)
	}
	// Key confirmation: each side proves it derived the same keys (and
	// therefore held the session key) by exchanging an encrypted probe,
	// again strictly ordered.
	confirm := func() error {
		if err := sc.Send("hello", nil); err != nil {
			return fmt.Errorf("transport: key confirmation send: %w", err)
		}
		return nil
	}
	expect := func() error {
		typ, _, err := sc.Recv()
		if err != nil {
			return fmt.Errorf("transport: key confirmation failed (wrong session key?): %w", err)
		}
		if typ != "hello" {
			return errors.New("transport: unexpected key confirmation message")
		}
		return nil
	}
	steps := []func() error{confirm, expect}
	if !isClient {
		steps = []func() error{expect, confirm}
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

// Client performs the initiator side of the handshake.
func Client(conn net.Conn, sessionKey []byte, meter *simtime.Meter) (*SecureConn, error) {
	return handshake(conn, sessionKey, true, meter)
}

// Server performs the responder side of the handshake.
func Server(conn net.Conn, sessionKey []byte, meter *simtime.Meter) (*SecureConn, error) {
	return handshake(conn, sessionKey, false, meter)
}

// Send transmits one typed message.
func (c *SecureConn) Send(msgType string, payload []byte) error {
	if len(msgType) > 255 {
		return errors.New("transport: message type too long")
	}
	plain := make([]byte, 0, 1+len(msgType)+len(payload))
	plain = append(plain, byte(len(msgType)))
	plain = append(plain, msgType...)
	plain = append(plain, payload...)

	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	nonce := make([]byte, c.sendAEAD.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], c.sendSeq)
	c.sendSeq++
	ct := c.sendAEAD.Seal(nil, nonce, plain, nil)
	frame := make([]byte, 4+len(ct))
	binary.BigEndian.PutUint32(frame, uint32(len(ct)))
	copy(frame[4:], ct)
	clear := c.armDeadline(c.conn.SetWriteDeadline)
	_, err := c.conn.Write(frame)
	clear()
	if err != nil {
		return fmt.Errorf("transport: write: %w", err)
	}
	if c.meter != nil {
		c.meter.BytesSent.Add(int64(len(frame)))
	}
	return nil
}

// Recv receives the next message. Frames are sequenced, so drops, replays,
// and reordering by a network attacker are detected as decryption failures.
func (c *SecureConn) Recv() (string, []byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	clear := c.armDeadline(c.conn.SetReadDeadline)
	defer clear()
	var hdr [4]byte
	if _, err := io.ReadFull(c.conn, hdr[:]); err != nil {
		return "", nil, fmt.Errorf("transport: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return "", nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	ct := make([]byte, n)
	if _, err := io.ReadFull(c.conn, ct); err != nil {
		return "", nil, fmt.Errorf("transport: read body: %w", err)
	}
	nonce := make([]byte, c.recvAEAD.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], c.recvSeq)
	c.recvSeq++
	plain, err := c.recvAEAD.Open(nil, nonce, ct, nil)
	if err != nil {
		return "", nil, ErrAuth
	}
	if c.meter != nil {
		c.meter.BytesReceived.Add(int64(n) + 4)
	}
	if len(plain) < 1 {
		return "", nil, fmt.Errorf("%w: empty frame", ErrMalformed)
	}
	tl := int(plain[0])
	if 1+tl > len(plain) {
		return "", nil, fmt.Errorf("%w: truncated type header", ErrMalformed)
	}
	return string(plain[1 : 1+tl]), plain[1+tl:], nil
}

// Close closes the underlying connection.
func (c *SecureConn) Close() error { return c.conn.Close() }

// Pipe returns a connected in-process SecureConn pair (for single-process
// deployments and tests). The handshake still runs over the pipe.
func Pipe(sessionKey []byte, clientMeter, serverMeter *simtime.Meter) (*SecureConn, *SecureConn, error) {
	a, b := net.Pipe()
	type res struct {
		sc  *SecureConn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		sc, err := Server(b, sessionKey, serverMeter)
		if err != nil {
			// Unblock a client still mid-handshake on the other end;
			// otherwise it would wait forever for a reply that never comes.
			b.Close()
		}
		ch <- res{sc, err}
	}()
	client, err := Client(a, sessionKey, clientMeter)
	if err != nil {
		// Tear down both ends so the server goroutine cannot leak blocked
		// in its half of the handshake, then reap it.
		a.Close()
		b.Close()
		srv := <-ch
		if srv.sc != nil {
			srv.sc.Close()
		}
		return nil, nil, err
	}
	srv := <-ch
	if srv.err != nil {
		client.Close()
		return nil, nil, srv.err
	}
	return client, srv.sc, nil
}
