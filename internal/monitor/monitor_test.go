package monitor

import (
	"crypto/ed25519"
	"errors"
	"strings"
	"testing"

	"ironsafe/internal/audit"
	"ironsafe/internal/policy"
	"ironsafe/internal/simtime"
	"ironsafe/internal/tee/sgx"
	"ironsafe/internal/tee/trustzone"
)

// testRig wires a monitor, one genuine host enclave, and one genuine booted
// storage device.
type testRig struct {
	mon       *Monitor
	ias       *sgx.AttestationService
	vendor    *trustzone.Vendor
	hostEnc   *sgx.Enclave
	hostPub   []byte
	storageNW *trustzone.NormalWorld
	meter     *simtime.Meter
}

const hostImage = "ironsafe host engine v2.1"
const storageImage = "ironsafe storage stack v3.4"

func newRig(t *testing.T) *testRig {
	t.Helper()
	ias := sgx.NewAttestationService()
	platform, err := sgx.NewPlatform("host-platform", ias)
	if err != nil {
		t.Fatal(err)
	}
	var m simtime.Meter
	enc, err := platform.CreateEnclave([]byte(hostImage), sgx.Config{Meter: &m})
	if err != nil {
		t.Fatal(err)
	}
	vendor, err := trustzone.NewVendor("acme")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := trustzone.NewDevice("storage-01", vendor)
	if err != nil {
		t.Fatal(err)
	}
	atf := vendor.SignImage("atf", "2.4", []byte("atf"))
	tos := vendor.SignImage("optee", "3.4", []byte("optee"))
	nwImg := trustzone.FirmwareImage{Name: "nw", Version: "3.4", Code: []byte(storageImage)}
	_, nw, err := dev.Boot(atf, tos, nwImg, &m)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := New(Config{
		IAS:                         ias,
		ROTPKs:                      map[string]ed25519.PublicKey{"acme": vendor.ROTPK},
		ExpectedHostMeasurements:    []sgx.Measurement{sgx.MeasureCode([]byte(hostImage))},
		ExpectedStorageMeasurements: []trustzone.Measurement{trustzone.MeasureImage([]byte(storageImage))},
		LatestHostFW:                "2.1",
		LatestStorageFW:             "3.4",
		Meter:                       &m,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{mon: mon, ias: ias, vendor: vendor, hostEnc: enc, hostPub: []byte("host-transport-pub"), storageNW: nw, meter: &m}
}

// attestHost registers the rig's host with the monitor.
func (r *testRig) attestHost(t *testing.T) []byte {
	t.Helper()
	quote := r.hostEnc.GetQuote(HostKeyDigest(r.hostPub))
	cert, err := r.mon.RegisterHost(NodeInfo{ID: "host-1", Location: "EU", FW: "2.1"}, quote, r.hostPub)
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

// storageNode adapts the rig's normal world to StorageAttester.
type storageNode struct {
	nw   *trustzone.NormalWorld
	info NodeInfo
}

func (s *storageNode) Attest(challenge []byte) (*trustzone.AttestationReport, error) {
	return s.nw.Attest(challenge)
}
func (s *storageNode) Info() NodeInfo { return s.info }

func (r *testRig) attestStorage(t *testing.T) {
	t.Helper()
	node := &storageNode{nw: r.storageNW, info: NodeInfo{ID: "storage-01", Location: "EU", FW: "3.4"}}
	if err := r.mon.RegisterStorage("acme", node); err != nil {
		t.Fatal(err)
	}
}

func (r *testRig) setup(t *testing.T) {
	t.Helper()
	r.attestHost(t)
	r.attestStorage(t)
	r.mon.SetAccessPolicy("flightdb", policy.MustParse(
		"read :- sessionKeyIs(Ka) | sessionKeyIs(Kb)\nwrite :- sessionKeyIs(Ka)"))
}

func TestHostAttestationSuccess(t *testing.T) {
	r := newRig(t)
	cert := r.attestHost(t)
	if !VerifyHostCert(r.mon.PublicKey(), "host-1", r.hostPub, cert) {
		t.Error("host cert does not verify")
	}
	if VerifyHostCert(r.mon.PublicKey(), "host-2", r.hostPub, cert) {
		t.Error("cert valid for wrong host id")
	}
}

func TestHostAttestationRejectsWrongMeasurement(t *testing.T) {
	r := newRig(t)
	platform, _ := sgx.NewPlatform("evil-platform", r.ias)
	var m simtime.Meter
	evil, _ := platform.CreateEnclave([]byte("backdoored engine"), sgx.Config{Meter: &m})
	quote := evil.GetQuote(HostKeyDigest(r.hostPub))
	if _, err := r.mon.RegisterHost(NodeInfo{ID: "host-x"}, quote, r.hostPub); err == nil {
		t.Error("wrong measurement accepted")
	}
}

func TestHostAttestationRejectsKeySubstitution(t *testing.T) {
	r := newRig(t)
	quote := r.hostEnc.GetQuote(HostKeyDigest([]byte("attacker-key")))
	if _, err := r.mon.RegisterHost(NodeInfo{ID: "host-1"}, quote, r.hostPub); err == nil {
		t.Error("key substitution accepted")
	}
}

func TestStorageAttestationSuccess(t *testing.T) {
	r := newRig(t)
	r.attestStorage(t)
}

func TestStorageAttestationRejectsImpersonation(t *testing.T) {
	r := newRig(t)
	evilVendor, _ := trustzone.NewVendor("evil")
	dev, _ := trustzone.NewDevice("storage-01", evilVendor)
	atf := evilVendor.SignImage("atf", "1", []byte("atf"))
	tos := evilVendor.SignImage("optee", "1", []byte("optee"))
	var m simtime.Meter
	_, nw, _ := dev.Boot(atf, tos, trustzone.FirmwareImage{Name: "nw", Version: "1", Code: []byte(storageImage)}, &m)
	node := &storageNode{nw: nw, info: NodeInfo{ID: "storage-01"}}
	if err := r.mon.RegisterStorage("acme", node); err == nil {
		t.Error("impersonating device accepted")
	}
	if err := r.mon.RegisterStorage("unknown-vendor", node); err == nil {
		t.Error("unknown vendor accepted")
	}
}

func TestStorageAttestationRejectsModifiedNormalWorld(t *testing.T) {
	r := newRig(t)
	dev, _ := trustzone.NewDevice("storage-02", r.vendor)
	atf := r.vendor.SignImage("atf", "2.4", []byte("atf"))
	tos := r.vendor.SignImage("optee", "3.4", []byte("optee"))
	var m simtime.Meter
	_, nw, _ := dev.Boot(atf, tos, trustzone.FirmwareImage{Name: "nw", Version: "3.4", Code: []byte("rootkit storage stack")}, &m)
	node := &storageNode{nw: nw, info: NodeInfo{ID: "storage-02"}}
	if err := r.mon.RegisterStorage("acme", node); err == nil {
		t.Error("modified normal world accepted")
	}
}

func TestAuthorizeGrantsAndSignsProof(t *testing.T) {
	r := newRig(t)
	r.setup(t)
	auth, err := r.mon.Authorize(AuthRequest{
		Database: "flightdb", ClientKey: "Ka", HostID: "host-1",
		SQL: "SELECT * FROM flights",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(auth.SessionKey) != 32 || auth.SessionID == "" {
		t.Errorf("session = %+v", auth.SessionID)
	}
	if len(auth.StorageIDs) != 1 || auth.StorageIDs[0] != "storage-01" {
		t.Errorf("storage ids = %v", auth.StorageIDs)
	}
	if !VerifyProof(r.mon.PublicKey(), &auth.Proof) {
		t.Error("proof does not verify")
	}
	bad := auth.Proof
	bad.ClientKey = "Kb"
	if VerifyProof(r.mon.PublicKey(), &bad) {
		t.Error("tampered proof verifies")
	}
}

func TestAuthorizeDeniesWrongClient(t *testing.T) {
	r := newRig(t)
	r.setup(t)
	_, err := r.mon.Authorize(AuthRequest{
		Database: "flightdb", ClientKey: "Kb", HostID: "host-1",
		SQL: "INSERT INTO flights VALUES (1)",
	})
	if !errors.Is(err, ErrDenied) {
		t.Errorf("Kb write = %v, want ErrDenied", err)
	}
	// Reads are fine for Kb.
	if _, err := r.mon.Authorize(AuthRequest{
		Database: "flightdb", ClientKey: "Kb", HostID: "host-1",
		SQL: "SELECT * FROM flights",
	}); err != nil {
		t.Errorf("Kb read denied: %v", err)
	}
	// Unknown client denied entirely.
	if _, err := r.mon.Authorize(AuthRequest{
		Database: "flightdb", ClientKey: "Mallory", HostID: "host-1",
		SQL: "SELECT * FROM flights",
	}); !errors.Is(err, ErrDenied) {
		t.Errorf("Mallory = %v", err)
	}
}

func TestAuthorizeRequiresAttestedHost(t *testing.T) {
	r := newRig(t)
	r.setup(t)
	_, err := r.mon.Authorize(AuthRequest{
		Database: "flightdb", ClientKey: "Ka", HostID: "rogue-host",
		SQL: "SELECT * FROM flights",
	})
	if err == nil {
		t.Error("unattested host accepted")
	}
}

func TestExecutionPolicyFiltersStorageNodes(t *testing.T) {
	r := newRig(t)
	r.setup(t)
	// Storage in EU with fw 3.4 complies.
	auth, err := r.mon.Authorize(AuthRequest{
		Database: "flightdb", ClientKey: "Ka", HostID: "host-1",
		SQL:        "SELECT * FROM flights",
		ExecPolicy: "exec :- storageLocIs(EU) & fwVersionStorage(latest)",
	})
	if err != nil || len(auth.StorageIDs) != 1 {
		t.Errorf("compliant storage filtered out: %v, %v", auth, err)
	}
	// Requiring US location: no storage node complies and host-only
	// cannot satisfy a storage predicate -> denial.
	_, err = r.mon.Authorize(AuthRequest{
		Database: "flightdb", ClientKey: "Ka", HostID: "host-1",
		SQL:        "SELECT * FROM flights",
		ExecPolicy: "exec :- storageLocIs(US)",
	})
	if !errors.Is(err, ErrDenied) {
		t.Errorf("non-compliant exec = %v", err)
	}
	// Host-only-satisfiable policy with no compliant storage: allowed,
	// but with no storage nodes (query runs host-only). The negated
	// predicate rejects the EU node yet holds with no storage at all.
	auth, err = r.mon.Authorize(AuthRequest{
		Database: "flightdb", ClientKey: "Ka", HostID: "host-1",
		SQL:        "SELECT * FROM flights",
		ExecPolicy: "exec :- hostLocIs(EU) & !storageLocIs(EU)",
	})
	if err != nil {
		t.Fatalf("host-only fallback: %v", err)
	}
	if len(auth.StorageIDs) != 0 {
		t.Errorf("expected host-only execution, got storage %v", auth.StorageIDs)
	}
}

func TestTimelyDeletionRewrite(t *testing.T) {
	r := newRig(t)
	r.attestHost(t)
	r.attestStorage(t)
	r.mon.SetAccessPolicy("flightdb", policy.MustParse("read :- sessionKeyIs(Kb) & le(T, expiry)"))
	auth, err := r.mon.Authorize(AuthRequest{
		Database: "flightdb", ClientKey: "Kb", HostID: "host-1",
		SQL:        "SELECT pax FROM flights WHERE dest = 'PT' ORDER BY pax",
		AccessDate: "1995-06-17",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT pax FROM flights WHERE (dest = 'PT') AND expiry >= date '1995-06-17' ORDER BY pax"
	if auth.RewrittenSQL != want {
		t.Errorf("rewrite = %q\nwant %q", auth.RewrittenSQL, want)
	}
}

func TestRewriteWithoutWhere(t *testing.T) {
	r := newRig(t)
	r.attestHost(t)
	r.attestStorage(t)
	r.mon.SetAccessPolicy("db", policy.MustParse("read :- sessionKeyIs(K) & le(T, expiry)"))
	auth, err := r.mon.Authorize(AuthRequest{
		Database: "db", ClientKey: "K", HostID: "host-1",
		SQL: "SELECT pax FROM flights LIMIT 5", AccessDate: "1995-01-01",
	})
	if err != nil {
		t.Fatal(err)
	}
	if auth.RewrittenSQL != "SELECT pax FROM flights WHERE expiry >= date '1995-01-01' LIMIT 5" {
		t.Errorf("rewrite = %q", auth.RewrittenSQL)
	}
}

func TestRewritePreservesSubqueryWhere(t *testing.T) {
	r := newRig(t)
	r.attestHost(t)
	r.attestStorage(t)
	r.mon.SetAccessPolicy("db", policy.MustParse("read :- sessionKeyIs(K) & le(T, expiry)"))
	sql := "SELECT pax FROM flights WHERE id IN (SELECT fid FROM legs WHERE dist > 100)"
	auth, err := r.mon.Authorize(AuthRequest{
		Database: "db", ClientKey: "K", HostID: "host-1",
		SQL: sql, AccessDate: "1995-01-01",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The inner WHERE must not be touched; the filter wraps the outer one.
	if !strings.Contains(auth.RewrittenSQL, "(SELECT fid FROM legs WHERE dist > 100)") {
		t.Errorf("inner query mangled: %q", auth.RewrittenSQL)
	}
	if !strings.Contains(auth.RewrittenSQL, "AND expiry >= date '1995-01-01'") {
		t.Errorf("filter missing: %q", auth.RewrittenSQL)
	}
}

func TestReuseMapRewrite(t *testing.T) {
	r := newRig(t)
	r.attestHost(t)
	r.attestStorage(t)
	r.mon.SetAccessPolicy("db", policy.MustParse("read :- reuseMap(reuse_map)"))
	r.mon.RegisterService("svc-B", 2)
	auth, err := r.mon.Authorize(AuthRequest{
		Database: "db", ClientKey: "svc-B", HostID: "host-1",
		SQL: "SELECT pax FROM flights",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(auth.RewrittenSQL, "(reuse_map % 8) >= 4") {
		t.Errorf("reuse rewrite = %q", auth.RewrittenSQL)
	}
}

func TestLogUpdateObligation(t *testing.T) {
	r := newRig(t)
	r.attestHost(t)
	r.attestStorage(t)
	r.mon.SetAccessPolicy("db", policy.MustParse("read :- logUpdate(sharing, K, Q)"))
	before := r.mon.AuditLog().Len()
	if _, err := r.mon.Authorize(AuthRequest{
		Database: "db", ClientKey: "consumer-B", HostID: "host-1",
		SQL: "SELECT pax FROM flights",
	}); err != nil {
		t.Fatal(err)
	}
	entries := r.mon.AuditLog().Entries()[before:]
	foundSharing := false
	for _, e := range entries {
		if e.Kind == "sharing:sharing" && e.Actor == "consumer-B" {
			foundSharing = true
		}
	}
	if !foundSharing {
		t.Errorf("sharing log entry missing: %+v", entries)
	}
	// The trail itself must verify.
	if err := audit.Verify(r.mon.AuditLog().Entries(), r.mon.PublicKey()); err != nil {
		t.Errorf("audit trail: %v", err)
	}
}

func TestSessionLifecycle(t *testing.T) {
	r := newRig(t)
	r.setup(t)
	auth, err := r.mon.Authorize(AuthRequest{
		Database: "flightdb", ClientKey: "Ka", HostID: "host-1",
		SQL: "SELECT * FROM flights",
	})
	if err != nil {
		t.Fatal(err)
	}
	key, err := r.mon.SessionKeyFor(auth.SessionID)
	if err != nil || len(key) != 32 {
		t.Fatalf("session key: %v", err)
	}
	if r.mon.ActiveSessions() != 1 {
		t.Errorf("active = %d", r.mon.ActiveSessions())
	}
	r.mon.EndSession(auth.SessionID)
	if r.mon.ActiveSessions() != 0 {
		t.Error("session not revoked")
	}
	if _, err := r.mon.SessionKeyFor(auth.SessionID); err == nil {
		t.Error("revoked session key still served")
	}
	r.mon.EndSession(auth.SessionID) // idempotent
}

func TestDenialsAreAudited(t *testing.T) {
	r := newRig(t)
	r.setup(t)
	r.mon.Authorize(AuthRequest{Database: "flightdb", ClientKey: "Mallory", HostID: "host-1", SQL: "SELECT * FROM flights"})
	found := false
	for _, e := range r.mon.AuditLog().Entries() {
		if e.Kind == "denial" && e.Actor == "Mallory" {
			found = true
		}
	}
	if !found {
		t.Error("denial not audited")
	}
}

func TestAuthorizeBadSQL(t *testing.T) {
	r := newRig(t)
	r.setup(t)
	if _, err := r.mon.Authorize(AuthRequest{Database: "flightdb", ClientKey: "Ka", HostID: "host-1", SQL: "NOT SQL"}); err == nil {
		t.Error("bad SQL accepted")
	}
	if _, err := r.mon.Authorize(AuthRequest{Database: "nodb", ClientKey: "Ka", HostID: "host-1", SQL: "SELECT 1"}); err == nil {
		t.Error("missing access policy accepted")
	}
	if _, err := r.mon.Authorize(AuthRequest{Database: "flightdb", ClientKey: "Ka", HostID: "host-1", SQL: "SELECT 1", ExecPolicy: "exec :- bogus()"}); err == nil {
		t.Error("bad exec policy accepted")
	}
}

func TestIndexTopLevel(t *testing.T) {
	if i := indexTopLevel("SELECT A FROM T WHERE X", " WHERE "); i < 0 {
		t.Error("top-level WHERE not found")
	}
	if i := indexTopLevel("SELECT (SELECT B FROM U WHERE Y) FROM T", " WHERE "); i >= 0 {
		t.Error("nested WHERE treated as top-level")
	}
	if i := indexTopLevel("SELECT ' WHERE ' FROM T", " WHERE "); i >= 0 {
		t.Error("string-literal WHERE treated as top-level")
	}
}

func TestInsertComplianceChecks(t *testing.T) {
	r := newRig(t)
	r.attestHost(t)
	r.attestStorage(t)
	r.mon.SetAccessPolicy("db", policy.MustParse(
		"read :- sessionKeyIs(K) & le(T, expiry) & reuseMap(reuse_map)\nwrite :- sessionKeyIs(K)"))

	// Insert naming columns but omitting the expiry column: denied.
	if _, err := r.mon.Authorize(AuthRequest{
		Database: "db", ClientKey: "K", HostID: "host-1",
		SQL: "INSERT INTO pii (id, name) VALUES (1, 'a')",
	}); !errors.Is(err, ErrDenied) {
		t.Errorf("expiry-less insert = %v, want ErrDenied", err)
	}
	// Insert carrying both policy columns: allowed.
	if _, err := r.mon.Authorize(AuthRequest{
		Database: "db", ClientKey: "K", HostID: "host-1",
		SQL: "INSERT INTO pii (id, name, expiry, reuse_map) VALUES (1, 'a', '1999-01-01', 3)",
	}); err != nil {
		t.Errorf("compliant insert denied: %v", err)
	}
	// Positional insert (no column list) targets every column: allowed.
	if _, err := r.mon.Authorize(AuthRequest{
		Database: "db", ClientKey: "K", HostID: "host-1",
		SQL: "INSERT INTO pii VALUES (1, 'a', '1999-01-01', 3)",
	}); err != nil {
		t.Errorf("positional insert denied: %v", err)
	}
}

// TestInsertBornExpired: with an access date supplied, the monitor rejects
// records whose literal expiry value is already in the past — timely-deletion
// enforced at ingest, not just at read time.
func TestInsertBornExpired(t *testing.T) {
	r := newRig(t)
	r.attestHost(t)
	r.attestStorage(t)
	r.mon.SetAccessPolicy("db", policy.MustParse(
		"read :- sessionKeyIs(K) & le(T, expiry)\nwrite :- sessionKeyIs(K)"))

	// Expiry after the access date: allowed.
	if _, err := r.mon.Authorize(AuthRequest{
		Database: "db", ClientKey: "K", HostID: "host-1", AccessDate: "1995-01-01",
		SQL: "INSERT INTO pii (id, expiry) VALUES (1, '1999-01-01')",
	}); err != nil {
		t.Errorf("future-expiry insert denied: %v", err)
	}
	// Expiry before the access date: born expired, denied.
	if _, err := r.mon.Authorize(AuthRequest{
		Database: "db", ClientKey: "K", HostID: "host-1", AccessDate: "1995-01-01",
		SQL: "INSERT INTO pii (id, expiry) VALUES (1, '1994-12-31')",
	}); !errors.Is(err, ErrDenied) {
		t.Errorf("born-expired insert = %v, want ErrDenied", err)
	}
	// One bad row poisons the whole multi-row insert.
	if _, err := r.mon.Authorize(AuthRequest{
		Database: "db", ClientKey: "K", HostID: "host-1", AccessDate: "1995-01-01",
		SQL: "INSERT INTO pii (id, expiry) VALUES (1, '1999-01-01'), (2, '1990-01-01')",
	}); !errors.Is(err, ErrDenied) {
		t.Errorf("multi-row insert with one born-expired row = %v, want ErrDenied", err)
	}
	// The denial is audited.
	found := false
	for _, e := range r.mon.AuditLog().Entries() {
		if e.Kind == "denial" && strings.Contains(e.Detail, "born expired") {
			found = true
		}
	}
	if !found {
		t.Error("born-expired denial not audited")
	}
	// No access date (non-deterministic deployments): the check is skipped.
	if _, err := r.mon.Authorize(AuthRequest{
		Database: "db", ClientKey: "K", HostID: "host-1",
		SQL: "INSERT INTO pii (id, expiry) VALUES (1, '1990-01-01')",
	}); err != nil {
		t.Errorf("insert without access date denied: %v", err)
	}
}

func TestRevocation(t *testing.T) {
	r := newRig(t)
	r.setup(t)
	// Pre-revocation: the storage node is offered.
	auth, err := r.mon.Authorize(AuthRequest{Database: "flightdb", ClientKey: "Ka", HostID: "host-1", SQL: "SELECT 1"})
	if err != nil || len(auth.StorageIDs) != 1 {
		t.Fatalf("pre-revocation: %v %v", auth, err)
	}
	r.mon.RevokeStorage("storage-01")
	auth, err = r.mon.Authorize(AuthRequest{Database: "flightdb", ClientKey: "Ka", HostID: "host-1", SQL: "SELECT 1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(auth.StorageIDs) != 0 {
		t.Errorf("revoked storage still offered: %v", auth.StorageIDs)
	}
	r.mon.RevokeHost("host-1")
	if _, err := r.mon.Authorize(AuthRequest{Database: "flightdb", ClientKey: "Ka", HostID: "host-1", SQL: "SELECT 1"}); err == nil {
		t.Error("revoked host still authorized")
	}
	// Revocations are audited.
	found := 0
	for _, e := range r.mon.AuditLog().Entries() {
		if e.Kind == "revocation" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("revocation audit entries = %d", found)
	}
}
