package monitor

import (
	"testing"

	"ironsafe/internal/simtime"
)

func TestScanTelemetryReport(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ScanTelemetryReport(); len(got) != 0 {
		t.Fatalf("fresh monitor has %d reports", len(got))
	}

	var meter simtime.Meter
	meter.ScanBatches.Add(7)
	meter.MerkleHashes.Add(100)
	meter.MerkleHashesSaved.Add(42)
	meter.PlainCacheHits.Add(3)
	meter.PlainCacheMisses.Add(9)
	m.ReportScanTelemetry("storage-02", meter.Snapshot())
	m.ReportScanTelemetry("storage-01", simtime.Snapshot{})

	got := m.ScanTelemetryReport()
	if len(got) != 2 {
		t.Fatalf("reports = %d, want 2", len(got))
	}
	if got[0].Node != "storage-01" || got[1].Node != "storage-02" {
		t.Fatalf("reports not sorted by node: %v, %v", got[0].Node, got[1].Node)
	}
	r := got[1]
	if r.ScanBatches != 7 || r.MerkleHashes != 100 || r.MerkleHashesSaved != 42 ||
		r.PlainCacheHits != 3 || r.PlainCacheMisses != 9 {
		t.Fatalf("telemetry mismatch: %+v", r)
	}

	// A later report from the same node replaces the earlier one.
	meter.MerkleHashesSaved.Add(8)
	m.ReportScanTelemetry("storage-02", meter.Snapshot())
	got = m.ScanTelemetryReport()
	if got[1].MerkleHashesSaved != 50 {
		t.Fatalf("replacement report lost: %+v", got[1])
	}
}
