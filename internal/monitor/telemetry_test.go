package monitor

import (
	"testing"
	"time"

	"ironsafe/internal/simtime"
)

func TestScanTelemetryReport(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ScanTelemetryReport(); len(got) != 0 {
		t.Fatalf("fresh monitor has %d reports", len(got))
	}

	var meter simtime.Meter
	meter.ScanBatches.Add(7)
	meter.MerkleHashes.Add(100)
	meter.MerkleHashesSaved.Add(42)
	meter.PlainCacheHits.Add(3)
	meter.PlainCacheMisses.Add(9)
	m.ReportScanTelemetry("storage-02", meter.Snapshot())
	m.ReportScanTelemetry("storage-01", simtime.Snapshot{})

	got := m.ScanTelemetryReport()
	if len(got) != 2 {
		t.Fatalf("reports = %d, want 2", len(got))
	}
	if got[0].Node != "storage-01" || got[1].Node != "storage-02" {
		t.Fatalf("reports not sorted by node: %v, %v", got[0].Node, got[1].Node)
	}
	r := got[1]
	if r.ScanBatches != 7 || r.MerkleHashes != 100 || r.MerkleHashesSaved != 42 ||
		r.PlainCacheHits != 3 || r.PlainCacheMisses != 9 {
		t.Fatalf("telemetry mismatch: %+v", r)
	}

	// A later report from the same node replaces the earlier one.
	meter.MerkleHashesSaved.Add(8)
	m.ReportScanTelemetry("storage-02", meter.Snapshot())
	got = m.ScanTelemetryReport()
	if got[1].MerkleHashesSaved != 50 {
		t.Fatalf("replacement report lost: %+v", got[1])
	}
}

func TestNearestRankExactness(t *testing.T) {
	// Nearest-rank over 1..100 is the identity: pN = N.
	pop := make([]time.Duration, 100)
	for i := range pop {
		pop[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, p := range []int{50, 95, 99} {
		if got := nearestRank(pop, p); got != time.Duration(p)*time.Millisecond {
			t.Errorf("p%d over 1..100 = %v, want %dms", p, got, p)
		}
	}
	// Small populations: ceil(p*n/100) picks an actual sample, no interpolation.
	small := []time.Duration{10, 20, 30}
	if got := nearestRank(small, 50); got != 20 {
		t.Errorf("p50 over 3 samples = %v, want 20", got)
	}
	if got := nearestRank(small, 99); got != 30 {
		t.Errorf("p99 over 3 samples = %v, want 30", got)
	}
	if got := nearestRank([]time.Duration{7}, 99); got != 7 {
		t.Errorf("p99 over 1 sample = %v, want 7", got)
	}
	if got := nearestRank(nil, 50); got != 0 {
		t.Errorf("empty population = %v, want 0", got)
	}
}

func TestTailReportAggregation(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := m.TailReportNow(); len(rep.Classes) != 0 || rep.Ejections != 0 {
		t.Fatalf("fresh monitor tail report not empty: %+v", rep)
	}

	// Out-of-order latencies within a class, two classes reported interleaved.
	m.ReportQueryTail("scan", 30*time.Millisecond, 0, 0)
	m.ReportQueryTail("join-agg", 5*time.Millisecond, 1, 1)
	m.ReportQueryTail("scan", 10*time.Millisecond, 1, 0)
	m.ReportQueryTail("scan", 20*time.Millisecond, 2, 1)
	m.ReportTailEvents(3, 2)

	rep := m.TailReportNow()
	if len(rep.Classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(rep.Classes))
	}
	if rep.Classes[0].Class != "join-agg" || rep.Classes[1].Class != "scan" {
		t.Fatalf("classes not sorted by name: %v, %v", rep.Classes[0].Class, rep.Classes[1].Class)
	}
	scan := rep.Classes[1]
	if scan.Queries != 3 || scan.P50 != 20*time.Millisecond || scan.P99 != 30*time.Millisecond {
		t.Fatalf("scan class tail mismatch: %+v", scan)
	}
	if scan.Hedges != 3 || scan.HedgeWins != 1 {
		t.Fatalf("scan hedge totals = %d/%d, want 3/1", scan.Hedges, scan.HedgeWins)
	}
	if rep.Ejections != 3 || rep.Readmissions != 2 {
		t.Fatalf("tail events = %d/%d, want 3/2", rep.Ejections, rep.Readmissions)
	}

	// ReportTailEvents replaces (callers pass cumulative tracker counters).
	m.ReportTailEvents(4, 4)
	if rep := m.TailReportNow(); rep.Ejections != 4 || rep.Readmissions != 4 {
		t.Fatalf("tail events not replaced: %+v", rep)
	}
}

func TestTailSamplesBoundedByRingBuffer(t *testing.T) {
	// A long-running cluster reports every query: retention must stay fixed
	// at tailSampleCap, with percentiles covering the newest window and the
	// cumulative query count intact.
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	total := tailSampleCap + 500
	for i := 0; i < total; i++ {
		// First 500 reports are slow (1s), the rest fast (1ms): once the
		// ring wraps, the slow prefix has been overwritten.
		d := time.Millisecond
		if i < 500 {
			d = time.Second
		}
		m.ReportQueryTail("scan", d, 0, 0)
	}
	tc := m.tailStats["scan"]
	if len(tc.latencies) != tailSampleCap {
		t.Fatalf("retained samples = %d, want cap %d", len(tc.latencies), tailSampleCap)
	}
	rep := m.TailReportNow()
	scan := rep.Classes[0]
	if scan.Queries != total {
		t.Errorf("Queries = %d, want cumulative %d", scan.Queries, total)
	}
	if scan.P99 != time.Millisecond {
		t.Errorf("p99 = %v, want 1ms — the overwritten slow prefix leaked into the window", scan.P99)
	}
}
