// Package monitor implements IronSafe's trusted monitor (§4.2): the unified
// service for remote attestation of the heterogeneous host (SGX) and storage
// (TrustZone) nodes, policy-compliant query authorization and rewriting,
// session key management, per-query proofs of compliance, and the
// tamper-evident audit trail regulators can request.
package monitor

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ironsafe/internal/audit"
	"ironsafe/internal/policy"
	"ironsafe/internal/simtime"
	"ironsafe/internal/sql/ast"
	"ironsafe/internal/sql/parser"
	"ironsafe/internal/tee/sgx"
	"ironsafe/internal/tee/trustzone"
	"ironsafe/internal/value"
)

// NodeInfo is the deployment metadata of a node.
type NodeInfo struct {
	ID       string
	Location string
	FW       string
}

// StorageAttester is how the monitor reaches a storage node's attestation TA
// (directly in-process, or over the network in a distributed deployment).
type StorageAttester interface {
	Attest(challenge []byte) (*trustzone.AttestationReport, error)
	Info() NodeInfo
}

// storageRecord is a registered, attested storage node.
type storageRecord struct {
	info        NodeInfo
	measurement trustzone.Measurement
}

// hostRecord is a registered, attested host node.
type hostRecord struct {
	info        NodeInfo
	measurement sgx.Measurement
}

// Config configures a Monitor.
type Config struct {
	// IAS verifies SGX quotes (the simulated Intel Attestation Service).
	IAS *sgx.AttestationService
	// ROTPKs maps vendor names to root-of-trust public keys for storage
	// attestation.
	ROTPKs map[string]ed25519.PublicKey
	// ExpectedHostMeasurements whitelists host engine enclave builds.
	ExpectedHostMeasurements []sgx.Measurement
	// ExpectedStorageMeasurements whitelists storage normal-world builds.
	ExpectedStorageMeasurements []trustzone.Measurement
	// LatestHostFW / LatestStorageFW resolve the policy 'latest' argument.
	LatestHostFW    string
	LatestStorageFW string
	// Clock supplies timestamps for the audit log.
	Clock func() int64
	// Meter records the monitor's work (may be nil).
	Meter *simtime.Meter
}

// Monitor is the trusted monitor service. In a real deployment it runs
// inside its own SGX enclave; the enclave identity is the signing key pair
// whose public half clients pin.
type Monitor struct {
	cfg     Config
	signKey ed25519.PrivateKey
	pubKey  ed25519.PublicKey
	log     *audit.Log

	mu          sync.Mutex
	hosts       map[string]*hostRecord
	storage     map[string]*storageRecord
	policies    map[string]*policy.Policy // database -> access policy
	serviceBits map[string]int            // client key -> reuse bitmap position
	sessions    map[string]*Session
	seq         uint64
	scanStats   map[string]ScanTelemetry // node -> latest scan-pipeline report

	tailStats                       map[string]*tailClass // query class -> tail accumulator
	tailEjections, tailReadmissions int                   // latest soft-ejection counters
}

// Session is an active authorized query session.
type Session struct {
	ID          string
	Key         []byte
	ClientKey   string
	Database    string
	StorageIDs  []string
	CleanupDone bool
}

// New creates a monitor with a fresh signing identity.
func New(cfg Config) (*Monitor, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("monitor: keygen: %w", err)
	}
	if cfg.Clock == nil {
		var counter atomic.Int64
		cfg.Clock = func() int64 { return counter.Add(1) }
	}
	return &Monitor{
		cfg:         cfg,
		signKey:     priv,
		pubKey:      pub,
		log:         audit.NewLog(priv),
		hosts:       map[string]*hostRecord{},
		storage:     map[string]*storageRecord{},
		policies:    map[string]*policy.Policy{},
		serviceBits: map[string]int{},
		sessions:    map[string]*Session{},
	}, nil
}

// PublicKey returns the monitor's verification key (pinned by clients).
func (m *Monitor) PublicKey() ed25519.PublicKey { return m.pubKey }

// AllowHostMeasurement whitelists an additional host enclave build (used by
// deployments that provision measurements after the monitor starts).
func (m *Monitor) AllowHostMeasurement(mm sgx.Measurement) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg.ExpectedHostMeasurements = append(m.cfg.ExpectedHostMeasurements, mm)
}

// AllowStorageMeasurement whitelists an additional storage normal-world build.
func (m *Monitor) AllowStorageMeasurement(mm trustzone.Measurement) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg.ExpectedStorageMeasurements = append(m.cfg.ExpectedStorageMeasurements, mm)
}

// AddROTPK registers an additional vendor root of trust.
func (m *Monitor) AddROTPK(vendor string, pk ed25519.PublicKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.ROTPKs == nil {
		m.cfg.ROTPKs = map[string]ed25519.PublicKey{}
	}
	m.cfg.ROTPKs[vendor] = pk
}

// AuditLog exposes the tamper-evident trail (read side).
func (m *Monitor) AuditLog() *audit.Log { return m.log }

// RegisterHost attests a host engine enclave (Fig 4a): the quote must verify
// at the IAS, carry a whitelisted measurement, and bind the host's transport
// public key in its report data. On success the monitor certifies that key.
func (m *Monitor) RegisterHost(info NodeInfo, quote sgx.Quote, hostTransportPub []byte) ([]byte, error) {
	if m.cfg.IAS == nil {
		return nil, errors.New("monitor: no attestation service configured")
	}
	if err := m.cfg.IAS.Verify(quote); err != nil {
		m.log.Append(m.cfg.Clock(), info.ID, "attestation-failure", "host quote: "+err.Error())
		return nil, fmt.Errorf("monitor: host attestation: %w", err)
	}
	m.mu.Lock()
	allowed := false
	for _, want := range m.cfg.ExpectedHostMeasurements {
		if quote.Measurement == want {
			allowed = true
		}
	}
	m.mu.Unlock()
	if !allowed {
		m.log.Append(m.cfg.Clock(), info.ID, "attestation-failure", "host measurement "+quote.Measurement.String()+" not whitelisted")
		return nil, fmt.Errorf("monitor: host measurement %s not whitelisted", quote.Measurement)
	}
	want := sha256.Sum256(hostTransportPub)
	if quote.ReportData != sha256To64(want) {
		m.log.Append(m.cfg.Clock(), info.ID, "attestation-failure", "host key binding mismatch")
		return nil, errors.New("monitor: quote does not bind the host transport key")
	}
	m.mu.Lock()
	m.hosts[info.ID] = &hostRecord{info: info, measurement: quote.Measurement}
	m.mu.Unlock()
	m.log.Append(m.cfg.Clock(), info.ID, "attestation", "host attested, measurement "+quote.Measurement.String())
	cert := ed25519.Sign(m.signKey, hostCertDigest(info.ID, hostTransportPub))
	return cert, nil
}

// sha256To64 widens a 32-byte hash into SGX 64-byte report data.
func sha256To64(h [32]byte) [64]byte {
	var out [64]byte
	copy(out[:], h[:])
	return out
}

// HostKeyDigest computes the report data a host must bind in its quote.
func HostKeyDigest(hostTransportPub []byte) [64]byte {
	return sha256To64(sha256.Sum256(hostTransportPub))
}

func hostCertDigest(id string, pub []byte) []byte {
	h := sha256.New()
	h.Write([]byte("ironsafe-hostcert-v1|"))
	h.Write([]byte(id))
	h.Write([]byte{'|'})
	h.Write(pub)
	return h.Sum(nil)
}

// VerifyHostCert lets a client check the monitor-issued host certificate.
func VerifyHostCert(monitorPub ed25519.PublicKey, id string, hostTransportPub, cert []byte) bool {
	return ed25519.Verify(monitorPub, hostCertDigest(id, hostTransportPub), cert)
}

// RegisterStorage runs the Fig 4b protocol: challenge, attestation report,
// ROTPK-rooted verification, measurement whitelist check.
func (m *Monitor) RegisterStorage(vendor string, node StorageAttester) error {
	m.mu.Lock()
	rotpk, ok := m.cfg.ROTPKs[vendor]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("monitor: unknown vendor %q", vendor)
	}
	challenge := make([]byte, 32)
	if _, err := rand.Read(challenge); err != nil {
		return err
	}
	report, err := node.Attest(challenge)
	if err != nil {
		return fmt.Errorf("monitor: storage attestation: %w", err)
	}
	info := node.Info()
	if err := trustzone.VerifyReport(report, rotpk, challenge); err != nil {
		m.log.Append(m.cfg.Clock(), info.ID, "attestation-failure", "storage report: "+err.Error())
		return fmt.Errorf("monitor: storage attestation: %w", err)
	}
	m.mu.Lock()
	allowed := false
	for _, want := range m.cfg.ExpectedStorageMeasurements {
		if report.NormalWorld == want {
			allowed = true
		}
	}
	m.mu.Unlock()
	if !allowed {
		m.log.Append(m.cfg.Clock(), info.ID, "attestation-failure", "storage normal world "+report.NormalWorld.String()+" not whitelisted")
		return fmt.Errorf("monitor: storage normal world %s not whitelisted", report.NormalWorld)
	}
	m.mu.Lock()
	m.storage[info.ID] = &storageRecord{info: info, measurement: report.NormalWorld}
	m.mu.Unlock()
	m.log.Append(m.cfg.Clock(), info.ID, "attestation", "storage attested, normal world "+report.NormalWorld.String())
	return nil
}

// SetAccessPolicy installs the data producer's access policy for a database.
func (m *Monitor) SetAccessPolicy(database string, p *policy.Policy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.policies[database] = p
}

// RegisterService assigns a client identity its reuse-bitmap position
// (anti-pattern #2).
func (m *Monitor) RegisterService(clientKey string, bit int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.serviceBits[clientKey] = bit
}

// AuthRequest asks the monitor to authorize one client query.
type AuthRequest struct {
	Database   string
	ClientKey  string
	SQL        string
	ExecPolicy string // client's execution policy source ("" = none)
	AccessDate string // YYYY-MM-DD, for timely-deletion filters
	HostID     string
	// Epoch is the cluster membership epoch at authorization time. Binding
	// it into the signed proof pins the query to the membership view it was
	// authorized under: a proof minted before an eviction cannot vouch for
	// execution after it.
	Epoch uint64
}

// Authorization is the monitor's approval: session credentials, the
// policy-rewritten query, the compliant storage nodes, and a signed proof.
type Authorization struct {
	SessionID    string
	SessionKey   []byte
	RewrittenSQL string
	StorageIDs   []string
	Proof        Proof
}

// Proof is the per-query proof of integrity/authenticity (§4.2): the monitor
// signs the environment that will execute the query.
type Proof struct {
	SessionID  string
	ClientKey  string
	QueryHash  []byte
	PolicyHash []byte
	HostID     string
	StorageIDs []string
	Epoch      uint64 // cluster membership epoch the authorization is bound to
	Signature  []byte
}

func proofDigest(p *Proof) []byte {
	h := sha256.New()
	h.Write([]byte("ironsafe-proof-v2|"))
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], p.Epoch)
	h.Write(e[:])
	h.Write([]byte(p.SessionID))
	h.Write([]byte{'|'})
	h.Write([]byte(p.ClientKey))
	h.Write([]byte{'|'})
	h.Write(p.QueryHash)
	h.Write(p.PolicyHash)
	h.Write([]byte(p.HostID))
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(p.StorageIDs)))
	h.Write(n[:])
	for _, id := range p.StorageIDs {
		h.Write([]byte(id))
		h.Write([]byte{'|'})
	}
	return h.Sum(nil)
}

// VerifyProof checks a proof against the monitor public key.
func VerifyProof(monitorPub ed25519.PublicKey, p *Proof) bool {
	return ed25519.Verify(monitorPub, proofDigest(p), p.Signature)
}

// ErrDenied reports a policy denial.
var ErrDenied = errors.New("monitor: policy denied")

// Authorize validates the client's permissions and execution policy, rewrites
// the query for compliance, selects compliant storage nodes, and issues
// session credentials (Fig 5).
func (m *Monitor) Authorize(req AuthRequest) (*Authorization, error) {
	stmt, err := parser.Parse(req.SQL)
	if err != nil {
		return nil, fmt.Errorf("monitor: parsing query: %w", err)
	}
	perm := permissionFor(stmt)

	m.mu.Lock()
	accessPolicy := m.policies[req.Database]
	host := m.hosts[req.HostID]
	bit := m.serviceBits[req.ClientKey]
	storageNodes := make([]*storageRecord, 0, len(m.storage))
	for _, s := range m.storage {
		storageNodes = append(storageNodes, s)
	}
	m.mu.Unlock()
	// Deterministic node order: map iteration order must not leak into the
	// authorization (offload placement, and with it every downstream byte,
	// would become nondeterministic across runs).
	sort.Slice(storageNodes, func(i, j int) bool { return storageNodes[i].info.ID < storageNodes[j].info.ID })

	if host == nil {
		return nil, fmt.Errorf("monitor: host %q not attested", req.HostID)
	}
	if accessPolicy == nil {
		return nil, fmt.Errorf("monitor: no access policy for database %q", req.Database)
	}

	baseEnv := policy.Env{
		SessionKey:      req.ClientKey,
		HostLoc:         host.info.Location,
		HostFW:          host.info.FW,
		LatestHostFW:    m.cfg.LatestHostFW,
		LatestStorageFW: m.cfg.LatestStorageFW,
		AccessDate:      req.AccessDate,
		ServiceBit:      bit,
	}

	// Access check (producer policy).
	allowed, effects, err := accessPolicy.Evaluate(perm, baseEnv)
	if err != nil {
		return nil, err
	}
	if !allowed {
		m.log.Append(m.cfg.Clock(), req.ClientKey, "denial", perm+" denied on "+req.Database)
		return nil, fmt.Errorf("%w: %s on %q for client %s", ErrDenied, perm, req.Database, req.ClientKey)
	}

	// Execution policy (client constraints on the environment).
	var execPol *policy.Policy
	policySrc := req.ExecPolicy
	if policySrc != "" {
		execPol, err = policy.Parse(policySrc)
		if err != nil {
			return nil, fmt.Errorf("monitor: execution policy: %w", err)
		}
	}
	var compliantStorage []string
	if execPol != nil {
		for _, s := range storageNodes {
			env := baseEnv
			env.StorageLoc = s.info.Location
			env.StorageFW = s.info.FW
			ok, _, err := execPol.Evaluate("exec", env)
			if err != nil {
				return nil, err
			}
			if ok {
				compliantStorage = append(compliantStorage, s.info.ID)
			}
		}
		// If the policy has an exec rule and no storage node satisfies it
		// even together with the host, check whether host-only execution
		// satisfies it (empty storage attributes).
		if _, has := execPol.Rules["exec"]; has && len(compliantStorage) == 0 {
			env := baseEnv
			ok, _, err := execPol.Evaluate("exec", env)
			if err != nil {
				return nil, err
			}
			if !ok {
				m.log.Append(m.cfg.Clock(), req.ClientKey, "denial", "no compliant execution environment")
				return nil, fmt.Errorf("%w: no compliant execution environment", ErrDenied)
			}
		}
	} else {
		for _, s := range storageNodes {
			compliantStorage = append(compliantStorage, s.info.ID)
		}
	}

	// Policy-compliant query rewriting: AND the access-policy row filters
	// into SELECT statements.
	rewritten := req.SQL
	if sel, ok := stmt.(*ast.Select); ok && len(effects.RowFilters) > 0 {
		rewritten, err = rewriteSelect(sel, req.SQL, effects.RowFilters)
		if err != nil {
			return nil, err
		}
	}
	// Data-creation compliance (§4.3 anti-patterns #1/#2): inserts into a
	// database whose policy keys on an expiry or reuse column must supply
	// that column — records without their compliance metadata are rejected.
	if ins, ok := stmt.(*ast.Insert); ok {
		if err := checkInsertCompliance(ins, accessPolicy, req.AccessDate); err != nil {
			m.log.Append(m.cfg.Clock(), req.ClientKey, "denial", err.Error())
			return nil, fmt.Errorf("%w: %v", ErrDenied, err)
		}
	}

	// Session issue.
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.seq++
	// The ID tag derives from non-secret request content, never from the key:
	// session IDs circulate in plaintext (audit trail, storage control plane),
	// and the audit trail of two identical runs must be byte-identical.
	tag := sha256.Sum256([]byte(fmt.Sprintf("%d|%s|%s", m.seq, req.ClientKey, req.Database)))
	id := fmt.Sprintf("sess-%06d-%s", m.seq, hex.EncodeToString(tag[:4]))
	sess := &Session{ID: id, Key: key, ClientKey: req.ClientKey, Database: req.Database, StorageIDs: compliantStorage}
	m.sessions[id] = sess
	m.mu.Unlock()

	// Obligations: logUpdate effects plus the always-on query record.
	qh := sha256.Sum256([]byte(req.SQL))
	for _, la := range effects.LogActions {
		m.log.Append(m.cfg.Clock(), req.ClientKey, "sharing:"+la.Log,
			fmt.Sprintf("fields=%s query=%s", strings.Join(la.Fields, ","), req.SQL))
	}
	m.log.Append(m.cfg.Clock(), req.ClientKey, "query",
		fmt.Sprintf("db=%s perm=%s hash=%x", req.Database, perm, qh[:8]))

	ph := sha256.Sum256([]byte(policySrc + "\x00" + accessPolicy.String()))
	proof := Proof{
		SessionID:  id,
		ClientKey:  req.ClientKey,
		QueryHash:  qh[:],
		PolicyHash: ph[:],
		HostID:     req.HostID,
		StorageIDs: compliantStorage,
		Epoch:      req.Epoch,
	}
	proof.Signature = ed25519.Sign(m.signKey, proofDigest(&proof))

	return &Authorization{
		SessionID:    id,
		SessionKey:   key,
		RewrittenSQL: rewritten,
		StorageIDs:   compliantStorage,
		Proof:        proof,
	}, nil
}

// SessionKeyFor returns the key for an active session (used by storage nodes
// fetching keys over the monitor control channel).
func (m *Monitor) SessionKeyFor(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("monitor: no session %q", id)
	}
	return s.Key, nil
}

// EndSession revokes the session key and records cleanup (§4.2's session
// cleanup protocol). Idempotent.
func (m *Monitor) EndSession(id string) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	if ok {
		m.log.Append(m.cfg.Clock(), s.ClientKey, "cleanup", "session "+id+" closed, key revoked")
	}
}

// ActiveSessions reports the number of live sessions.
func (m *Monitor) ActiveSessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// permissionFor maps a statement to the policy permission it needs.
func permissionFor(stmt ast.Statement) string {
	switch stmt.(type) {
	case *ast.Select:
		return "read"
	default:
		return "write"
	}
}

// checkInsertCompliance rejects INSERTs that omit columns the access policy
// keys on (le's expiry column, reuseMap's consent bitmap). An INSERT without
// a column list targets every table column positionally and passes. When the
// caller supplies an access date, records whose literal expiry value is
// already in the past are rejected too (timely-deletion at ingest: a record
// born expired would be unreadable under the policy yet still occupy — and
// leak through — storage).
func checkInsertCompliance(ins *ast.Insert, p *policy.Policy, accessDate string) error {
	if len(ins.Columns) == 0 {
		return nil
	}
	have := map[string]int{}
	for i, c := range ins.Columns {
		have[strings.ToLower(c)] = i + 1
	}
	for _, pred := range p.Predicates() {
		var col string
		expiry := false
		switch pred.Name {
		case "le":
			if pred.Args[0] == "T" {
				col = pred.Args[1]
				expiry = true
			}
		case "reuseMap":
			col = pred.Args[0]
		}
		if col == "" {
			continue
		}
		pos := have[strings.ToLower(col)]
		if pos == 0 {
			return fmt.Errorf("monitor: insert omits policy column %q (records need their compliance metadata)", col)
		}
		if !expiry || accessDate == "" {
			continue
		}
		access, err := value.ParseDate(accessDate)
		if err != nil {
			return fmt.Errorf("monitor: access date: %v", err)
		}
		for ri, row := range ins.Rows {
			if pos-1 >= len(row) {
				continue
			}
			lit, ok := row[pos-1].(*ast.Literal)
			if !ok {
				continue // non-literal expiry: checked at read time by the row filter
			}
			var exp value.Value
			switch lit.Value.Kind() {
			case value.KindDate:
				exp = lit.Value
			case value.KindString:
				exp, err = value.ParseDate(lit.Value.AsString())
				if err != nil {
					return fmt.Errorf("monitor: row %d: expiry column %q: %v", ri, col, err)
				}
			default:
				continue
			}
			if exp.AsInt() < access.AsInt() {
				return fmt.Errorf("monitor: row %d is born expired (%s expires %s, access date %s)",
					ri, col, lit.String(), accessDate)
			}
		}
	}
	return nil
}

// rewriteSelect ANDs extra filter conjuncts into a SELECT's WHERE clause.
func rewriteSelect(sel *ast.Select, original string, filters []string) (string, error) {
	conj := strings.Join(filters, " AND ")
	// Re-parse the filters to validate them before splicing.
	if _, err := parser.ParseExpr(conj); err != nil {
		return "", fmt.Errorf("monitor: invalid policy filter %q: %w", conj, err)
	}
	// Splice at the text level, preserving the client's query otherwise.
	upper := strings.ToUpper(original)
	whereIdx := indexTopLevel(upper, " WHERE ")
	if whereIdx < 0 {
		// Insert before GROUP/ORDER/LIMIT, or at the end.
		insertAt := len(original)
		for _, kw := range []string{" GROUP BY ", " ORDER BY ", " LIMIT "} {
			if i := indexTopLevel(upper, kw); i >= 0 && i < insertAt {
				insertAt = i
			}
		}
		return original[:insertAt] + " WHERE " + conj + original[insertAt:], nil
	}
	// Wrap the existing WHERE: ... WHERE (old) AND new.
	endIdx := len(original)
	for _, kw := range []string{" GROUP BY ", " ORDER BY ", " LIMIT "} {
		if i := indexTopLevel(upper, kw); i > whereIdx && i < endIdx {
			endIdx = i
		}
	}
	old := original[whereIdx+len(" WHERE ") : endIdx]
	return original[:whereIdx] + " WHERE (" + old + ") AND " + conj + original[endIdx:], nil
}

// indexTopLevel finds a keyword outside parentheses and string literals.
func indexTopLevel(s, kw string) int {
	depth := 0
	inStr := false
	for i := 0; i+len(kw) <= len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\'' {
				inStr = false
			}
		case c == '\'':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case depth == 0 && s[i:i+len(kw)] == kw:
			return i
		}
	}
	return -1
}

// RevokeStorage removes a storage node from the attested set (operator
// response to a compromise report); subsequent authorizations exclude it.
func (m *Monitor) RevokeStorage(id string) {
	m.mu.Lock()
	_, ok := m.storage[id]
	delete(m.storage, id)
	m.mu.Unlock()
	if ok {
		m.log.Append(m.cfg.Clock(), id, "revocation", "storage node revoked")
	}
}

// RevokeHost removes a host from the attested set.
func (m *Monitor) RevokeHost(id string) {
	m.mu.Lock()
	_, ok := m.hosts[id]
	delete(m.hosts, id)
	m.mu.Unlock()
	if ok {
		m.log.Append(m.cfg.Clock(), id, "revocation", "host revoked")
	}
}
