package monitor

import (
	"sort"

	"ironsafe/internal/simtime"
)

// ScanTelemetry is one node's scan-pipeline health report: how much work the
// batched secure read path saved. The monitor collects these so operators
// (and cmd/ironsafe-bench) can watch the freshness-verification amortization
// across the fleet without scraping per-node meters.
type ScanTelemetry struct {
	Node              string
	ScanBatches       int64
	MerkleHashes      int64
	MerkleHashesSaved int64
	PlainCacheHits    int64
	PlainCacheMisses  int64
}

// ReportScanTelemetry records a node's current scan-pipeline counters,
// replacing any earlier report from the same node.
func (m *Monitor) ReportScanTelemetry(node string, snap simtime.Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.scanStats == nil {
		m.scanStats = map[string]ScanTelemetry{}
	}
	m.scanStats[node] = ScanTelemetry{
		Node:              node,
		ScanBatches:       snap.ScanBatches,
		MerkleHashes:      snap.MerkleHashes,
		MerkleHashesSaved: snap.MerkleHashesSaved,
		PlainCacheHits:    snap.PlainCacheHits,
		PlainCacheMisses:  snap.PlainCacheMisses,
	}
}

// ScanTelemetryReport returns the latest report of every node, sorted by
// node ID.
func (m *Monitor) ScanTelemetryReport() []ScanTelemetry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ScanTelemetry, 0, len(m.scanStats))
	for _, t := range m.scanStats {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
