package monitor

import (
	"sort"
	"time"

	"ironsafe/internal/simtime"
)

// ScanTelemetry is one node's scan-pipeline health report: how much work the
// batched secure read path saved. The monitor collects these so operators
// (and cmd/ironsafe-bench) can watch the freshness-verification amortization
// across the fleet without scraping per-node meters.
type ScanTelemetry struct {
	Node              string
	ScanBatches       int64
	MerkleHashes      int64
	MerkleHashesSaved int64
	PlainCacheHits    int64
	PlainCacheMisses  int64
}

// ReportScanTelemetry records a node's current scan-pipeline counters,
// replacing any earlier report from the same node.
func (m *Monitor) ReportScanTelemetry(node string, snap simtime.Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.scanStats == nil {
		m.scanStats = map[string]ScanTelemetry{}
	}
	m.scanStats[node] = ScanTelemetry{
		Node:              node,
		ScanBatches:       snap.ScanBatches,
		MerkleHashes:      snap.MerkleHashes,
		MerkleHashesSaved: snap.MerkleHashesSaved,
		PlainCacheHits:    snap.PlainCacheHits,
		PlainCacheMisses:  snap.PlainCacheMisses,
	}
}

// ScanTelemetryReport returns the latest report of every node, sorted by
// node ID.
func (m *Monitor) ScanTelemetryReport() []ScanTelemetry {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ScanTelemetry, 0, len(m.scanStats))
	for _, t := range m.scanStats {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// TailTelemetry is one query class's tail-latency summary: exact
// nearest-rank percentiles over the class's simulated end-to-end latencies
// (the cost model's deterministic output, so the report is reproducible),
// plus its hedging activity. Queries counts every query ever reported for
// the class; the percentiles cover the most recent tailSampleCap of them
// (the retention window), so a long-running cluster's report tracks current
// tail behavior instead of averaging over its whole life.
type TailTelemetry struct {
	Class     string
	Queries   int
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
	Hedges    int
	HedgeWins int
}

// tailSampleCap bounds each query class's retained latency samples: a ring
// buffer keeps the newest tailSampleCap observations and overwrites the
// oldest, so per-class memory is fixed no matter how long the cluster
// serves. Large enough that every deterministic sweep (tens of queries) is
// covered exactly.
const tailSampleCap = 4096

// TailReport is the fleet-wide tail health report: per-class latency
// distributions plus the gray-failure event counters.
type TailReport struct {
	Classes []TailTelemetry
	// Ejections / Readmissions count latency-outlier soft-ejection events
	// from the cluster's health tracker (cumulative).
	Ejections    int
	Readmissions int
}

// tailClass accumulates one class's raw observations. latencies is a ring
// buffer capped at tailSampleCap; next is the overwrite cursor once full.
type tailClass struct {
	latencies []time.Duration
	next      int
	queries   int
	hedges    int
	hedgeWins int
}

// ReportQueryTail records one completed query's simulated latency and hedge
// activity under its query class.
func (m *Monitor) ReportQueryTail(class string, latency time.Duration, hedges, hedgeWins int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.tailStats == nil {
		m.tailStats = map[string]*tailClass{}
	}
	tc := m.tailStats[class]
	if tc == nil {
		tc = &tailClass{}
		m.tailStats[class] = tc
	}
	if len(tc.latencies) < tailSampleCap {
		tc.latencies = append(tc.latencies, latency)
	} else {
		tc.latencies[tc.next] = latency
		tc.next = (tc.next + 1) % tailSampleCap
	}
	tc.queries++
	tc.hedges += hedges
	tc.hedgeWins += hedgeWins
}

// ReportTailEvents replaces the cumulative soft-ejection counters (the
// caller reads them off the health tracker, which already accumulates).
func (m *Monitor) ReportTailEvents(ejections, readmissions int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tailEjections = ejections
	m.tailReadmissions = readmissions
}

// nearestRank is the exact nearest-rank percentile over sorted (ascending)
// samples: the smallest value with at least p% of the samples at or below
// it. No interpolation — small chaos-sweep populations stay exact and
// deterministic.
func nearestRank(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p*n/100)
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TailReportNow summarizes everything reported so far, classes sorted by
// name.
func (m *Monitor) TailReportNow() TailReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := TailReport{Ejections: m.tailEjections, Readmissions: m.tailReadmissions}
	for class, tc := range m.tailStats {
		sorted := append([]time.Duration(nil), tc.latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		rep.Classes = append(rep.Classes, TailTelemetry{
			Class:     class,
			Queries:   tc.queries,
			P50:       nearestRank(sorted, 50),
			P95:       nearestRank(sorted, 95),
			P99:       nearestRank(sorted, 99),
			Hedges:    tc.hedges,
			HedgeWins: tc.hedgeWins,
		})
	}
	sort.Slice(rep.Classes, func(i, j int) bool { return rep.Classes[i].Class < rep.Classes[j].Class })
	return rep
}
