package policy

import (
	"fmt"
)

// Env is the attested environment the monitor evaluates policies against.
type Env struct {
	// SessionKey is the connecting client's identity key fingerprint.
	SessionKey string
	// Host / storage attributes, from attestation.
	HostLoc    string
	StorageLoc string
	HostFW     string
	StorageFW  string
	// Latest firmware versions known to the monitor, resolving the
	// 'latest' argument.
	LatestHostFW    string
	LatestStorageFW string
	// AccessDate is the query's access time as 'YYYY-MM-DD' (used by the
	// timely-deletion rewrite).
	AccessDate string
	// ServiceBit is the connecting client's position in reuse bitmaps.
	ServiceBit int
}

// LogAction is an obligation to record query metadata in a named log.
type LogAction struct {
	Log    string   // log name (first logUpdate argument)
	Fields []string // remaining arguments, e.g. K (identity) and Q (query)
}

// Effects are the obligations attached to a satisfied policy.
type Effects struct {
	// RowFilters are SQL predicates the monitor ANDs into the client's
	// query during policy-compliant rewriting.
	RowFilters []string
	// LogActions are audit-log obligations.
	LogActions []LogAction
}

func (e Effects) merge(o Effects) Effects {
	return Effects{
		RowFilters: append(append([]string{}, e.RowFilters...), o.RowFilters...),
		LogActions: append(append([]LogAction{}, e.LogActions...), o.LogActions...),
	}
}

// Evaluate checks whether env satisfies the rule for perm, returning the
// effects of the satisfying branch. A permission with no rule is denied.
func (p *Policy) Evaluate(perm string, env Env) (bool, Effects, error) {
	rule, ok := p.Rules[perm]
	if !ok {
		return false, Effects{}, nil
	}
	return evalNode(rule, env)
}

func evalNode(n Node, env Env) (bool, Effects, error) {
	switch x := n.(type) {
	case *And:
		lok, leff, err := evalNode(x.L, env)
		if err != nil {
			return false, Effects{}, err
		}
		if !lok {
			return false, Effects{}, nil
		}
		rok, reff, err := evalNode(x.R, env)
		if err != nil || !rok {
			return false, Effects{}, err
		}
		return true, leff.merge(reff), nil
	case *Or:
		lok, leff, err := evalNode(x.L, env)
		if err != nil {
			return false, Effects{}, err
		}
		if lok {
			return true, leff, nil
		}
		return evalNode(x.R, env)
	case *Not:
		ok, eff, err := evalNode(x.X, env)
		if err != nil {
			return false, Effects{}, err
		}
		if len(eff.RowFilters) > 0 || len(eff.LogActions) > 0 {
			return false, Effects{}, fmt.Errorf("policy: cannot negate effect predicates")
		}
		return !ok, Effects{}, nil
	case *Pred:
		return evalPred(x, env)
	default:
		return false, Effects{}, fmt.Errorf("policy: unknown node %T", n)
	}
}

func evalPred(p *Pred, env Env) (bool, Effects, error) {
	switch p.Name {
	case "sessionKeyIs":
		return env.SessionKey == p.Args[0], Effects{}, nil
	case "hostLocIs":
		return env.HostLoc == p.Args[0], Effects{}, nil
	case "storageLocIs":
		return env.StorageLoc == p.Args[0], Effects{}, nil
	case "fwVersionHost":
		want := p.Args[0]
		if want == "latest" {
			want = env.LatestHostFW
		}
		return CompareVersions(env.HostFW, want) >= 0, Effects{}, nil
	case "fwVersionStorage":
		want := p.Args[0]
		if want == "latest" {
			want = env.LatestStorageFW
		}
		return CompareVersions(env.StorageFW, want) >= 0, Effects{}, nil
	case "le":
		// le(T, col): access time must not exceed the per-record expiry
		// column — enforced as a row filter on the rewritten query.
		col := p.Args[1]
		if p.Args[0] != "T" {
			// Generality: le(colA, colB) compares two columns directly.
			return true, Effects{RowFilters: []string{fmt.Sprintf("%s <= %s", p.Args[0], col)}}, nil
		}
		if env.AccessDate == "" {
			return false, Effects{}, fmt.Errorf("policy: le(T, %s) requires an access date", col)
		}
		return true, Effects{RowFilters: []string{fmt.Sprintf("%s >= date '%s'", col, env.AccessDate)}}, nil
	case "reuseMap":
		// reuseMap(col): the record's opt-in bitmap must have the
		// client's service bit set.
		col := p.Args[0]
		if env.ServiceBit < 0 || env.ServiceBit > 62 {
			return false, Effects{}, fmt.Errorf("policy: reuseMap service bit %d out of range", env.ServiceBit)
		}
		// Bit b of the bitmap is set iff (m % 2^(b+1)) >= 2^b — pure
		// modulo arithmetic, valid in the engine's integer semantics.
		mask := int64(1) << uint(env.ServiceBit)
		return true, Effects{RowFilters: []string{fmt.Sprintf("(%s %% %d) >= %d", col, mask*2, mask)}}, nil
	case "logUpdate":
		return true, Effects{LogActions: []LogAction{{Log: p.Args[0], Fields: p.Args[1:]}}}, nil
	}
	return false, Effects{}, fmt.Errorf("policy: unknown predicate %q", p.Name)
}

// Predicates returns every predicate mentioned in the policy (for audit
// display and validation).
func (p *Policy) Predicates() []*Pred {
	var out []*Pred
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *And:
			walk(x.L)
			walk(x.R)
		case *Or:
			walk(x.L)
			walk(x.R)
		case *Not:
			walk(x.X)
		case *Pred:
			out = append(out, x)
		}
	}
	for _, perm := range p.Order {
		walk(p.Rules[perm])
	}
	return out
}
