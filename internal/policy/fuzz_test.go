package policy

import "testing"

// FuzzParse checks the policy parser is total over arbitrary input.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"read :- sessionKeyIs(Ka)",
		"read ::= sessionKeyIs(Ka) | sessionKeyIs(Kb) & le(T, expiry)",
		"exec :- fwVersionStorage('3.4') & !hostLocIs(EU)",
		"read :- logUpdate(l, K, Q) -- comment\n; write :- reuseMap(m)",
		"read :- ((sessionKeyIs(a)))",
		"::- &|!()",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err == nil {
			// Render/reparse stability on anything accepted.
			if _, err := Parse(p.String()); err != nil {
				t.Errorf("accepted %q but rendering %q fails: %v", input, p.String(), err)
			}
		}
	})
}
