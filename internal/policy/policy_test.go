package policy

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestParseSimpleRule(t *testing.T) {
	p, err := Parse("read :- sessionKeyIs(Ka)")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	pred, ok := p.Rules["read"].(*Pred)
	if !ok || pred.Name != "sessionKeyIs" || pred.Args[0] != "Ka" {
		t.Errorf("rule = %v", p.Rules["read"])
	}
}

func TestParsePaperExamples(t *testing.T) {
	srcs := []string{
		"read ::= sessionKeyIs(Ka)\nwrite ::= sessionKeyIs(Kb)\nexec ::= fwVersionStorage(latest) & fwVersionHost(latest)",
		"read :- sessionKeyIs(Ka) | sessionKeyIs(Kb) & le(T, expiry)",
		"read :- reuseMap(reuse_map)",
		"read :- logUpdate(l, K, Q)",
	}
	for _, src := range srcs {
		if _, err := Parse(src); err != nil {
			t.Errorf("paper example %q: %v", src, err)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	p := MustParse("read :- sessionKeyIs(a) | sessionKeyIs(b) & le(T, exp)")
	or, ok := p.Rules["read"].(*Or)
	if !ok {
		t.Fatalf("top = %T (| should bind loosest)", p.Rules["read"])
	}
	if _, ok := or.R.(*And); !ok {
		t.Errorf("right = %T", or.R)
	}
	// Parentheses override.
	p = MustParse("read :- (sessionKeyIs(a) | sessionKeyIs(b)) & le(T, exp)")
	if _, ok := p.Rules["read"].(*And); !ok {
		t.Errorf("parenthesized top = %T", p.Rules["read"])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"read sessionKeyIs(a)",
		"grant :- sessionKeyIs(a)",
		"read :- frobnicate(a)",
		"read :- sessionKeyIs",
		"read :- sessionKeyIs(a, b)",
		"read :- sessionKeyIs(a) &",
		"read :- (sessionKeyIs(a)",
		"read :- sessionKeyIs('unterminated)",
		"read :- le(T)",
		"read :- sessionKeyIs(a)\nread :- sessionKeyIs(b)",
		"read :- logUpdate()",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted bad policy %q", src)
		}
	}
}

func TestCommentsAndSeparators(t *testing.T) {
	p, err := Parse("read :- sessionKeyIs(a) -- only A\n; write :- sessionKeyIs(b)")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 2 {
		t.Errorf("rules = %d", len(p.Rules))
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := "read :- sessionKeyIs(Ka) | sessionKeyIs(Kb) & le(T, expiry)\nexec :- fwVersionHost(latest)"
	p := MustParse(src)
	rendered := p.String()
	p2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("reparse %q: %v", rendered, err)
	}
	if p2.String() != rendered {
		t.Errorf("unstable rendering:\n%s\nvs\n%s", rendered, p2.String())
	}
}

func TestEvaluateSessionKey(t *testing.T) {
	p := MustParse("read :- sessionKeyIs(Ka)\nwrite :- sessionKeyIs(Kb)")
	ok, _, err := p.Evaluate("read", Env{SessionKey: "Ka"})
	if err != nil || !ok {
		t.Errorf("Ka read = %v, %v", ok, err)
	}
	ok, _, _ = p.Evaluate("write", Env{SessionKey: "Ka"})
	if ok {
		t.Error("Ka granted write")
	}
	ok, _, _ = p.Evaluate("exec", Env{SessionKey: "Ka"})
	if ok {
		t.Error("missing rule granted")
	}
}

func TestEvaluateLocationsAndVersions(t *testing.T) {
	p := MustParse("exec :- hostLocIs(EU) & storageLocIs(EU) & fwVersionStorage('3.4') & fwVersionHost(latest)")
	env := Env{HostLoc: "EU", StorageLoc: "EU", HostFW: "2.1", StorageFW: "3.4", LatestHostFW: "2.1", LatestStorageFW: "3.4"}
	ok, _, err := p.Evaluate("exec", env)
	if err != nil || !ok {
		t.Errorf("compliant env rejected: %v, %v", ok, err)
	}
	env.StorageFW = "3.3"
	if ok, _, _ := p.Evaluate("exec", env); ok {
		t.Error("downlevel storage firmware accepted")
	}
	env.StorageFW = "3.5" // newer than required is fine
	if ok, _, _ := p.Evaluate("exec", env); !ok {
		t.Error("newer firmware rejected")
	}
	env.HostFW = "2.0" // below latest
	if ok, _, _ := p.Evaluate("exec", env); ok {
		t.Error("stale host firmware accepted against 'latest'")
	}
	env.HostFW = "2.1"
	env.HostLoc = "US"
	if ok, _, _ := p.Evaluate("exec", env); ok {
		t.Error("wrong location accepted")
	}
}

func TestEvaluateOrTakesSatisfyingBranchEffects(t *testing.T) {
	p := MustParse("read :- sessionKeyIs(Ka) | sessionKeyIs(Kb) & le(T, expiry)")
	// Ka branch: no effects.
	ok, eff, err := p.Evaluate("read", Env{SessionKey: "Ka", AccessDate: "1995-06-17"})
	if err != nil || !ok || len(eff.RowFilters) != 0 {
		t.Errorf("Ka = %v, %+v, %v", ok, eff, err)
	}
	// Kb branch: expiry filter attaches.
	ok, eff, err = p.Evaluate("read", Env{SessionKey: "Kb", AccessDate: "1995-06-17"})
	if err != nil || !ok {
		t.Fatalf("Kb = %v, %v", ok, err)
	}
	if len(eff.RowFilters) != 1 || eff.RowFilters[0] != "expiry >= date '1995-06-17'" {
		t.Errorf("filters = %v", eff.RowFilters)
	}
}

func TestEvaluateReuseMap(t *testing.T) {
	p := MustParse("read :- reuseMap(reuse_map)")
	ok, eff, err := p.Evaluate("read", Env{ServiceBit: 3})
	if err != nil || !ok {
		t.Fatal(err)
	}
	if len(eff.RowFilters) != 1 || eff.RowFilters[0] != "(reuse_map % 16) >= 8" {
		t.Errorf("filters = %v", eff.RowFilters)
	}
	if _, _, err := p.Evaluate("read", Env{ServiceBit: 99}); err == nil {
		t.Error("out-of-range bit accepted")
	}
}

func TestEvaluateLogUpdate(t *testing.T) {
	p := MustParse("read :- logUpdate(sharing_log, K, Q)")
	ok, eff, err := p.Evaluate("read", Env{})
	if err != nil || !ok {
		t.Fatal(err)
	}
	if len(eff.LogActions) != 1 || eff.LogActions[0].Log != "sharing_log" {
		t.Errorf("log actions = %+v", eff.LogActions)
	}
	if len(eff.LogActions[0].Fields) != 2 {
		t.Errorf("fields = %v", eff.LogActions[0].Fields)
	}
}

func TestEvaluateNot(t *testing.T) {
	p := MustParse("read :- !sessionKeyIs(banned)")
	if ok, _, _ := p.Evaluate("read", Env{SessionKey: "alice"}); !ok {
		t.Error("non-banned rejected")
	}
	if ok, _, _ := p.Evaluate("read", Env{SessionKey: "banned"}); ok {
		t.Error("banned accepted")
	}
	// Negating an effect predicate is an error.
	p = MustParse("read :- !le(T, expiry)")
	if _, _, err := p.Evaluate("read", Env{AccessDate: "1995-01-01"}); err == nil {
		t.Error("negated effect predicate accepted")
	}
}

func TestLeRequiresAccessDate(t *testing.T) {
	p := MustParse("read :- le(T, expiry)")
	if _, _, err := p.Evaluate("read", Env{}); err == nil {
		t.Error("le without access date accepted")
	}
}

func TestLeColumnToColumn(t *testing.T) {
	p := MustParse("read :- le(created, expiry)")
	ok, eff, err := p.Evaluate("read", Env{})
	if err != nil || !ok || len(eff.RowFilters) != 1 {
		t.Fatalf("col-col le: %v %v %v", ok, eff, err)
	}
	if !strings.Contains(eff.RowFilters[0], "created <= expiry") {
		t.Errorf("filter = %q", eff.RowFilters[0])
	}
}

func TestCompareVersions(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"3.4", "3.4", 0}, {"3.5", "3.4", 1}, {"3.4", "3.10", -1},
		{"2", "2.0", 0}, {"2.0.1", "2", 1}, {"1.9", "2.0", -1},
	}
	for _, tc := range cases {
		if got := CompareVersions(tc.a, tc.b); got != tc.want {
			t.Errorf("CompareVersions(%s, %s) = %d", tc.a, tc.b, got)
		}
	}
}

func TestPredicates(t *testing.T) {
	p := MustParse("read :- sessionKeyIs(a) & le(T, exp)\nexec :- hostLocIs(EU)")
	preds := p.Predicates()
	if len(preds) != 3 {
		t.Errorf("predicates = %d", len(preds))
	}
}

// TestRandomPolicyRoundTripProperty generates random policy trees, renders
// them, reparses, and requires identical re-rendering (parse . render = id).
func TestRandomPolicyRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	preds := []func() string{
		func() string { return fmt.Sprintf("sessionKeyIs(K%d)", rng.Intn(5)) },
		func() string { return fmt.Sprintf("hostLocIs(L%d)", rng.Intn(3)) },
		func() string { return fmt.Sprintf("storageLocIs(L%d)", rng.Intn(3)) },
		func() string { return fmt.Sprintf("fwVersionHost('%d.%d')", rng.Intn(4), rng.Intn(10)) },
		func() string { return "le(T, expiry)" },
		func() string { return "reuseMap(reuse_map)" },
		func() string { return "logUpdate(l, K, Q)" },
	}
	var gen func(depth int) string
	gen = func(depth int) string {
		if depth <= 0 || rng.Intn(3) == 0 {
			return preds[rng.Intn(len(preds))]()
		}
		switch rng.Intn(3) {
		case 0:
			return gen(depth-1) + " & " + gen(depth-1)
		case 1:
			return gen(depth-1) + " | " + gen(depth-1)
		default:
			return "(" + gen(depth-1) + ")"
		}
	}
	for i := 0; i < 500; i++ {
		src := "read :- " + gen(3)
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("iter %d: parse %q: %v", i, src, err)
		}
		rendered := p.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("iter %d: reparse %q: %v", i, rendered, err)
		}
		if p2.String() != rendered {
			t.Fatalf("iter %d: unstable rendering:\n%s\nvs\n%s", i, rendered, p2.String())
		}
	}
}

// TestRandomPolicyEvaluationTotal checks that evaluation never panics and is
// deterministic for random policies and environments.
func TestRandomPolicyEvaluationTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	srcs := []string{
		"read :- sessionKeyIs(K1) | sessionKeyIs(K2) & le(T, expiry)",
		"read :- reuseMap(m) & (hostLocIs(EU) | hostLocIs(US))",
		"read :- !sessionKeyIs(banned) & logUpdate(l, K, Q)",
		"exec :- fwVersionHost(latest) & fwVersionStorage('3.4') | storageLocIs(EU)",
	}
	for i := 0; i < 400; i++ {
		p := MustParse(srcs[rng.Intn(len(srcs))])
		env := Env{
			SessionKey:      fmt.Sprintf("K%d", rng.Intn(4)),
			HostLoc:         []string{"EU", "US"}[rng.Intn(2)],
			StorageLoc:      []string{"EU", "US"}[rng.Intn(2)],
			HostFW:          fmt.Sprintf("%d.%d", rng.Intn(3), rng.Intn(5)),
			StorageFW:       fmt.Sprintf("%d.%d", rng.Intn(4), rng.Intn(5)),
			LatestHostFW:    "2.1",
			LatestStorageFW: "3.4",
			AccessDate:      "1995-06-17",
			ServiceBit:      rng.Intn(8),
		}
		perm := []string{"read", "exec"}[rng.Intn(2)]
		ok1, eff1, err1 := p.Evaluate(perm, env)
		ok2, eff2, err2 := p.Evaluate(perm, env)
		if ok1 != ok2 || (err1 == nil) != (err2 == nil) ||
			len(eff1.RowFilters) != len(eff2.RowFilters) ||
			len(eff1.LogActions) != len(eff2.LogActions) {
			t.Fatalf("iter %d: nondeterministic evaluation", i)
		}
	}
}
