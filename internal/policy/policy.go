// Package policy implements IronSafe's declarative policy specification
// language (§4.3): a rule per permission built from predicates, parsed by a
// small recursive-descent parser and evaluated by the trusted monitor.
//
// Syntax (':-' and the paper's '::=' are both accepted; '&' is conjunction,
// '|' is disjunction with lower precedence, '!' negation):
//
//	read  :- sessionKeyIs(Ka) | sessionKeyIs(Kb) & le(T, expiry)
//	write :- sessionKeyIs(Ka)
//	exec  :- fwVersionStorage('3.4') & fwVersionHost(latest) & storageLocIs('EU')
//
// Predicates are of two kinds. Admission predicates (sessionKeyIs,
// hostLocIs, storageLocIs, fwVersionHost, fwVersionStorage) evaluate against
// the attested environment. Effect predicates (le, reuseMap, logUpdate)
// always hold but attach obligations to the satisfying branch: row filters
// the monitor compiles into the query rewrite, and log actions it performs —
// this is how the GDPR anti-patterns of §4.3 are enforced.
package policy

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is a policy condition tree node.
type Node interface {
	String() string
}

// Pred is one predicate invocation.
type Pred struct {
	Name string
	Args []string
}

// String implements Node.
func (p *Pred) String() string {
	args := make([]string, len(p.Args))
	for i, a := range p.Args {
		args[i] = renderArg(a)
	}
	return p.Name + "(" + strings.Join(args, ", ") + ")"
}

// renderArg quotes an argument unless it is a bare word the parser accepts
// unquoted, so rendering always reparses to the same tree.
func renderArg(a string) string {
	bare := a != ""
	for i := 0; i < len(a); i++ {
		if !isAlnum(a[i]) && a[i] != '_' && a[i] != '.' && a[i] != '-' && a[i] != '#' {
			bare = false
			break
		}
	}
	if bare {
		return a
	}
	return "'" + a + "'"
}

// And is conjunction.
type And struct{ L, R Node }

// String implements Node.
func (a *And) String() string { return "(" + a.L.String() + " & " + a.R.String() + ")" }

// Or is disjunction.
type Or struct{ L, R Node }

// String implements Node.
func (o *Or) String() string { return "(" + o.L.String() + " | " + o.R.String() + ")" }

// Not is negation.
type Not struct{ X Node }

// String implements Node.
func (n *Not) String() string { return "!" + n.X.String() }

// Policy is a set of permission rules.
type Policy struct {
	Rules map[string]Node // permission -> condition
	Order []string        // declaration order, for display
}

// String renders the policy back to source form.
func (p *Policy) String() string {
	var sb strings.Builder
	for _, perm := range p.Order {
		fmt.Fprintf(&sb, "%s :- %s\n", perm, p.Rules[perm].String())
	}
	return sb.String()
}

// Permissions the language recognises on the left-hand side.
var validPerms = map[string]bool{"read": true, "write": true, "exec": true}

// knownPredicates and their argument counts (-1 = variadic >= 1).
var knownPredicates = map[string]int{
	"sessionKeyIs":     1,
	"hostLocIs":        1,
	"storageLocIs":     1,
	"fwVersionHost":    1,
	"fwVersionStorage": 1,
	"le":               2,
	"reuseMap":         1,
	"logUpdate":        -1,
}

// Parse parses policy source: one rule per line (';' also separates rules),
// '--' starts a comment.
func Parse(src string) (*Policy, error) {
	p := &Policy{Rules: map[string]Node{}}
	lines := strings.FieldsFunc(src, func(r rune) bool { return r == '\n' || r == ';' })
	for _, line := range lines {
		if i := strings.Index(line, "--"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		sep := ":-"
		idx := strings.Index(line, ":-")
		if j := strings.Index(line, "::="); j >= 0 && (idx < 0 || j < idx) {
			sep, idx = "::=", j
		}
		if idx < 0 {
			return nil, fmt.Errorf("policy: rule %q missing ':-'", line)
		}
		perm := strings.TrimSpace(line[:idx])
		if !validPerms[perm] {
			return nil, fmt.Errorf("policy: unknown permission %q (want read, write, or exec)", perm)
		}
		if _, dup := p.Rules[perm]; dup {
			return nil, fmt.Errorf("policy: duplicate rule for %q", perm)
		}
		cond, err := parseCondition(strings.TrimSpace(line[idx+len(sep):]))
		if err != nil {
			return nil, fmt.Errorf("policy: rule %q: %w", perm, err)
		}
		p.Rules[perm] = cond
		p.Order = append(p.Order, perm)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("policy: empty policy")
	}
	return p, nil
}

// MustParse is Parse for known-good literals.
func MustParse(src string) *Policy {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// --- condition parser ---

type condParser struct {
	s   string
	pos int
}

func parseCondition(s string) (Node, error) {
	cp := &condParser{s: s}
	n, err := cp.parseOr()
	if err != nil {
		return nil, err
	}
	cp.skipSpace()
	if cp.pos != len(cp.s) {
		return nil, fmt.Errorf("trailing input at %q", cp.s[cp.pos:])
	}
	return n, nil
}

func (c *condParser) skipSpace() {
	for c.pos < len(c.s) && (c.s[c.pos] == ' ' || c.s[c.pos] == '\t') {
		c.pos++
	}
}

func (c *condParser) peekByte() byte {
	c.skipSpace()
	if c.pos >= len(c.s) {
		return 0
	}
	return c.s[c.pos]
}

func (c *condParser) parseOr() (Node, error) {
	left, err := c.parseAnd()
	if err != nil {
		return nil, err
	}
	for c.peekByte() == '|' {
		c.pos++
		right, err := c.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Or{L: left, R: right}
	}
	return left, nil
}

func (c *condParser) parseAnd() (Node, error) {
	left, err := c.parseUnary()
	if err != nil {
		return nil, err
	}
	for c.peekByte() == '&' {
		c.pos++
		right, err := c.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &And{L: left, R: right}
	}
	return left, nil
}

func (c *condParser) parseUnary() (Node, error) {
	switch c.peekByte() {
	case '!':
		c.pos++
		inner, err := c.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{X: inner}, nil
	case '(':
		c.pos++
		inner, err := c.parseOr()
		if err != nil {
			return nil, err
		}
		if c.peekByte() != ')' {
			return nil, fmt.Errorf("missing ')'")
		}
		c.pos++
		return inner, nil
	}
	return c.parsePred()
}

func (c *condParser) parsePred() (Node, error) {
	c.skipSpace()
	start := c.pos
	for c.pos < len(c.s) && (isAlnum(c.s[c.pos]) || c.s[c.pos] == '_') {
		c.pos++
	}
	name := c.s[start:c.pos]
	if name == "" {
		return nil, fmt.Errorf("expected predicate at %q", c.s[start:])
	}
	arity, known := knownPredicates[name]
	if !known {
		return nil, fmt.Errorf("unknown predicate %q", name)
	}
	if c.peekByte() != '(' {
		return nil, fmt.Errorf("predicate %q requires arguments", name)
	}
	c.pos++
	var args []string
	for {
		arg, err := c.parseArg()
		if err != nil {
			return nil, err
		}
		args = append(args, arg)
		if c.peekByte() == ',' {
			c.pos++
			continue
		}
		break
	}
	if c.peekByte() != ')' {
		return nil, fmt.Errorf("predicate %q missing ')'", name)
	}
	c.pos++
	if arity >= 0 && len(args) != arity {
		return nil, fmt.Errorf("predicate %q takes %d argument(s), got %d", name, arity, len(args))
	}
	if arity < 0 && len(args) < 1 {
		return nil, fmt.Errorf("predicate %q needs at least one argument", name)
	}
	return &Pred{Name: name, Args: args}, nil
}

func (c *condParser) parseArg() (string, error) {
	c.skipSpace()
	if c.pos >= len(c.s) {
		return "", fmt.Errorf("unexpected end of argument list")
	}
	if c.s[c.pos] == '\'' {
		end := strings.IndexByte(c.s[c.pos+1:], '\'')
		if end < 0 {
			return "", fmt.Errorf("unterminated string argument")
		}
		arg := c.s[c.pos+1 : c.pos+1+end]
		c.pos += end + 2
		return arg, nil
	}
	start := c.pos
	for c.pos < len(c.s) && (isAlnum(c.s[c.pos]) || c.s[c.pos] == '_' || c.s[c.pos] == '.' || c.s[c.pos] == '-' || c.s[c.pos] == '#') {
		c.pos++
	}
	if c.pos == start {
		return "", fmt.Errorf("bad argument at %q", c.s[start:])
	}
	return c.s[start:c.pos], nil
}

func isAlnum(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// CompareVersions orders dotted numeric versions: -1, 0, 1.
func CompareVersions(a, b string) int {
	as := strings.Split(a, ".")
	bs := strings.Split(b, ".")
	for i := 0; i < len(as) || i < len(bs); i++ {
		av, bv := 0, 0
		if i < len(as) {
			av, _ = strconv.Atoi(as[i])
		}
		if i < len(bs) {
			bv, _ = strconv.Atoi(bs[i])
		}
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}
