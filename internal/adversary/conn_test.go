package adversary

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"ironsafe/internal/transport"
)

// mitmPipe returns a transport-layer victim pair: the client side is wrapped
// by the adversary, the server side is honest. The server goroutine echoes
// each request payload back as a "reply" message and reports its terminal
// error (nil on clean EOF) on the returned channel, closing its conn on the
// way out so a blocked peer unwedges.
func mitmPipe(t *testing.T, eng *Engine, site string) (*transport.SecureConn, chan error) {
	t.Helper()
	clientRaw, serverRaw := net.Pipe()
	wrapped := WrapConn(clientRaw, site, TransportProfile, eng)

	serverErr := make(chan error, 1)
	go func() {
		defer serverRaw.Close()
		srv, err := transport.Server(serverRaw, []byte("adversary-test-key"), nil)
		if err != nil {
			serverErr <- err
			return
		}
		for {
			typ, payload, err := srv.Recv()
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = nil
				}
				serverErr <- err
				return
			}
			if typ == "bye" {
				serverErr <- nil
				return
			}
			if err := srv.Send("reply", payload); err != nil {
				serverErr <- err
				return
			}
		}
	}()

	cli, err := transport.Client(wrapped, []byte("adversary-test-key"), nil)
	if err != nil {
		clientRaw.Close()
		t.Fatalf("handshake through idle adversary: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli, serverErr
}

func exchange(cli *transport.SecureConn, payload string) (string, error) {
	if err := cli.Send("req", []byte(payload)); err != nil {
		return "", err
	}
	typ, got, err := cli.Recv()
	if err != nil {
		return "", err
	}
	if typ != "reply" {
		return "", errors.New("unexpected reply type " + typ)
	}
	return string(got), nil
}

// TestMitmReplayedReplyFailsClosed replays an earlier recorded server frame
// in place of the reply to the second request: the sequence-bound AEAD must
// reject it as ErrAuth — never deliver it as the answer.
func TestMitmReplayedReplyFailsClosed(t *testing.T) {
	// Client read-leg frame stream: op0 = server key-confirm, op1 = reply 1,
	// op2 = reply 2 (attacked; library holds two genuine frames by then).
	eng := NewEngine(11, Rule{Site: ":read", Class: Replay, Prob: 1, After: 2, MaxCount: 1})
	cli, _ := mitmPipe(t, eng, "node-r")
	if got, err := exchange(cli, "one"); err != nil || got != "one" {
		t.Fatalf("clean exchange: %q, %v", got, err)
	}
	_, err := exchange(cli, "two")
	if !errors.Is(err, transport.ErrAuth) {
		t.Fatalf("replayed reply produced %v, want transport.ErrAuth", err)
	}
	if eng.Stats()[Replay] != 1 {
		t.Fatalf("replay not traced: %v", eng.Stats())
	}
}

// TestMitmDuplicatedReplyFailsClosed delivers the genuine first reply and
// queues a byte-identical copy behind it. The copy must not be consumed as
// the answer to the next request.
func TestMitmDuplicatedReplyFailsClosed(t *testing.T) {
	eng := NewEngine(5, Rule{Site: ":read", Class: Duplicate, Prob: 1, After: 1, MaxCount: 1})
	cli, _ := mitmPipe(t, eng, "node-d")
	if got, err := exchange(cli, "one"); err != nil || got != "one" {
		t.Fatalf("duplicated genuine reply must still arrive intact: %q, %v", got, err)
	}
	got, err := exchange(cli, "two")
	if err == nil {
		t.Fatalf("stale duplicate consumed as fresh reply: got %q", got)
	}
	if !errors.Is(err, transport.ErrAuth) {
		t.Fatalf("duplicate produced %v, want transport.ErrAuth", err)
	}
}

// TestMitmReorderedReplyFailsClosed swaps the first reply with older
// recorded material; the out-of-order frame must be rejected.
func TestMitmReorderedReplyFailsClosed(t *testing.T) {
	eng := NewEngine(9, Rule{Site: ":read", Class: Reorder, Prob: 1, After: 1, MaxCount: 1})
	cli, _ := mitmPipe(t, eng, "node-o")
	_, err := exchange(cli, "one")
	if !errors.Is(err, transport.ErrAuth) {
		t.Fatalf("reordered reply produced %v, want transport.ErrAuth", err)
	}
}

// TestMitmInjectedRequestFailsClosed prepends a forged ciphertext frame in
// front of a genuine request: the server must reject it as ErrAuth and tear
// the channel down, surfacing as a send/recv error at the client — never as
// a processed request.
func TestMitmInjectedRequestFailsClosed(t *testing.T) {
	eng := NewEngine(13, Rule{Site: ":write", Class: Inject, Prob: 1, After: 2, MaxCount: 1})
	cli, serverErr := mitmPipe(t, eng, "node-i")
	if got, err := exchange(cli, "one"); err != nil || got != "one" {
		t.Fatalf("clean exchange: %q, %v", got, err)
	}
	if _, err := exchange(cli, "two"); err == nil {
		t.Fatal("exchange across an injected forged frame unexpectedly succeeded")
	}
	if err := <-serverErr; !errors.Is(err, transport.ErrAuth) {
		t.Fatalf("server saw %v for the forged frame, want transport.ErrAuth", err)
	}
}

// TestMitmSplicedHandshakeFailsConfirmation splices a public key recorded
// from a different session into a new connection's handshake: key
// confirmation must fail on both sides — the adversary cannot stitch
// sessions together without the session key.
func TestMitmSplicedHandshakeFailsConfirmation(t *testing.T) {
	eng := NewEngine(17)
	// Session A runs clean so the adversary's library holds its identity
	// material (client + server public keys).
	cliA, _ := mitmPipe(t, eng, "node-a")
	if got, err := exchange(cliA, "warm"); err != nil || got != "warm" {
		t.Fatalf("session A: %q, %v", got, err)
	}

	// Session B: the server public key the client reads is replaced by one
	// of session A's recorded keys.
	eng.Arm(Rule{Site: "node-b:read:pubkey", Class: Splice, Prob: 1, MaxCount: 1})
	clientRaw, serverRaw := net.Pipe()
	wrapped := WrapConn(clientRaw, "node-b", TransportProfile, eng)
	serverErr := make(chan error, 1)
	go func() {
		defer serverRaw.Close()
		_, err := transport.Server(serverRaw, []byte("adversary-test-key"), nil)
		serverErr <- err
	}()
	_, err := transport.Client(wrapped, []byte("adversary-test-key"), nil)
	clientRaw.Close()
	if err == nil {
		t.Fatal("handshake over a spliced public key unexpectedly succeeded")
	}
	if !strings.Contains(err.Error(), "key confirmation") {
		t.Fatalf("client error %v, want key-confirmation failure", err)
	}
	if srvErr := <-serverErr; !errors.Is(srvErr, transport.ErrAuth) {
		t.Fatalf("server saw %v, want transport.ErrAuth from key confirmation", srvErr)
	}
}

// TestMitmForgedBannerIsOnlyPlaintextSurface forges the one protocol unit an
// adversary can fabricate without keys — the plaintext ctl admission banner —
// and checks the forgery is exactly what a client would parse: overloaded,
// with a hostile retry-after.
func TestMitmForgedBannerIsOnlyPlaintextSurface(t *testing.T) {
	eng := NewEngine(23, Rule{Site: ":read:banner", Class: Banner, Prob: 1, MaxCount: 1})
	clientRaw, serverRaw := net.Pipe()
	wrapped := WrapConn(clientRaw, "ctl", CtlProfile, eng)
	go func() {
		// Honest server admits the client immediately.
		serverRaw.Write([]byte{0x00})
	}()
	banner := make([]byte, 5)
	if _, err := io.ReadFull(wrapped, banner); err != nil {
		t.Fatal(err)
	}
	clientRaw.Close()
	if banner[0] != 0x01 {
		t.Fatalf("forged banner byte = %#x, want overloaded marker 0x01", banner[0])
	}
	retryMS := binary.LittleEndian.Uint32(banner[1:])
	if retryMS < 1<<30 {
		t.Fatalf("forged retry-after = %d ms, want a hostile (huge) delay", retryMS)
	}
	if eng.Stats()[Banner] != 1 {
		t.Fatalf("banner forgery not traced: %v", eng.Stats())
	}
}
