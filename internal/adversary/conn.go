package adversary

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"time"
)

// Profile names the wire protocol spoken across a wrapped connection, so the
// man-in-the-middle can parse whole protocol units (preamble, handshake
// public key, admission banner, AEAD frame) instead of flipping bits in an
// opaque stream — the attacks are semantic, mounted at unit granularity.
type Profile int

const (
	// TransportProfile is a bare secure channel: client writes its 32-byte
	// handshake public key first, then length-prefixed AEAD frames flow both
	// ways (transport.Client / transport.Server with nothing in front).
	TransportProfile Profile = iota
	// StorageProfile is the host→storage query/rebuild channel: a plaintext
	// session preamble (1-byte length + session id) precedes the handshake
	// on the write side (storageengine.ServeConn).
	StorageProfile
	// CtlProfile is the control-plane client connection: the server's
	// plaintext admission banner precedes the handshake on the read side
	// (ctl.DialResilient / ctl.ClientConn).
	CtlProfile
)

// protocol steps per direction.
type step int

const (
	stepBanner   step = iota // ctl read side: 1 byte, +4 when overloaded
	stepPreamble             // storage write side: 1-byte length + session id
	stepPubkey               // both sides: 32-byte X25519 public key
	stepFrame                // steady state: 4-byte BE length + ciphertext
)

// frameHeaderLen and pubkeyLen pin the wire shapes the parser assembles.
const (
	frameHeaderLen = 4
	pubkeyLen      = 32
	// maxParseFrame bounds a frame the MITM will buffer; matches
	// transport.MaxFrame. A larger header means the stream is already
	// garbage, so the remaining bytes pass through unparsed.
	maxParseFrame = 16 << 20
	// forgedFrameBody is the ciphertext length of fabricated frames: long
	// enough to look like a small real reply, cheap to generate.
	forgedFrameBody = 48
)

// Conn is the protocol-aware man-in-the-middle. It wraps the host/client
// side of a connection: Write carries client→server units, Read carries
// server→client units. Each direction runs its own unit parser and consults
// the engine once per unit; attacks substitute, duplicate, hold, or prepend
// whole recorded or forged units. The conn never stalls on its own — timing
// attacks belong to faultinject; this layer mounts only semantic ones.
type Conn struct {
	inner   net.Conn
	eng     *Engine
	site    string
	profile Profile

	rd dirState // server→client units, consumed by Read
	wr dirState // client→server units, produced by Write
}

type dirState struct {
	mu   sync.Mutex
	leg  string // "<site>:read" / "<site>:write"
	step step
	// pending accumulates raw bytes until a whole unit is parseable
	// (write side; the read side assembles units with blocking reads).
	pending []byte
	// out is transformed bytes ready to deliver to the local reader.
	out []byte
	// held is a unit parked by Reorder, released before the next unit.
	held []byte
	// raw disables parsing: the stream degraded to passthrough (oversized
	// header or post-attack desync); remaining bytes flow untouched.
	raw bool
}

// WrapConn interposes the adversary on conn. site names the channel in legs
// and rule matching ("storage-01", "rebuild:storage-02", "ctl:ingest").
func WrapConn(inner net.Conn, site string, profile Profile, eng *Engine) *Conn {
	c := &Conn{inner: inner, eng: eng, site: site, profile: profile}
	c.rd.leg = site + ":read"
	c.wr.leg = site + ":write"
	switch profile {
	case CtlProfile:
		c.rd.step = stepBanner
		c.wr.step = stepPubkey
	case StorageProfile:
		c.rd.step = stepPubkey
		c.wr.step = stepPreamble
	default:
		c.rd.step = stepPubkey
		c.wr.step = stepPubkey
	}
	return c
}

var _ net.Conn = (*Conn)(nil)

// forgeFrame fabricates a plausible ciphertext frame from deterministic bits.
func forgeFrame(bits uint64) []byte {
	frame := make([]byte, frameHeaderLen+forgedFrameBody)
	binary.BigEndian.PutUint32(frame, forgedFrameBody)
	x := bits | 1
	for i := frameHeaderLen; i < len(frame); i++ {
		x = xorshift(x)
		frame[i] = byte(x)
	}
	return frame
}

// forgeBanner fabricates a plaintext overload banner with a deterministic —
// and deliberately hostile — retry-after (up to ~49 days), probing that the
// client treats the hint as bounded.
func forgeBanner(bits uint64) []byte {
	b := make([]byte, 5)
	b[0] = 0x01
	binary.LittleEndian.PutUint32(b[1:], uint32(bits|0x40000000))
	return b
}

// subLeg derives the per-step decision leg so sweeps can target the
// handshake units independently of steady-state frames.
func subLeg(leg string, st step) string {
	switch st {
	case stepBanner:
		return leg + ":banner"
	case stepPreamble:
		return leg + ":preamble"
	case stepPubkey:
		return leg + ":pubkey"
	}
	return leg
}

// attack resolves one unit through the engine: the genuine unit was just
// assembled on d's current step; the return value is what the peer (or the
// local reader) actually gets. Steps advance here, so the parser and the
// attack schedule can never drift apart.
func (c *Conn) attack(d *dirState, unit []byte) []byte {
	leg := subLeg(d.leg, d.step)
	dec := c.eng.Decide(leg)

	// Whatever happens, a Reorder-parked unit is released first: it rides
	// immediately in front of the unit after the one that displaced it.
	var out []byte
	if d.held != nil {
		out = append(out, d.held...)
		d.held = nil
	}

	switch d.step {
	case stepBanner:
		if dec.Class == Banner {
			out = append(out, forgeBanner(dec.Bits)...)
		} else {
			out = append(out, unit...)
		}
		d.step = stepPubkey
		return out
	case stepPreamble, stepPubkey:
		// Identity units: Replay/Splice substitute a recorded counterpart
		// (cross-session identity stitched into connection setup); other
		// classes are frame-shaped and pass the unit through.
		sub := unit
		switch dec.Class {
		case Replay:
			if r := c.eng.RecordedSameLegSized(leg, dec.Bits, len(unit)); r != nil {
				sub = r
			}
		case Splice:
			if r := c.eng.RecordedOtherLegSized(leg, dec.Bits, len(unit)); r != nil {
				sub = r
			}
		}
		c.eng.Record(leg, unit)
		if d.step == stepPreamble {
			d.step = stepPubkey
		} else {
			d.step = stepFrame
		}
		return append(out, sub...)
	}

	// Steady-state AEAD frame.
	switch dec.Class {
	case Replay:
		sub := c.eng.RecordedSameLeg(leg, dec.Bits)
		if sub == nil {
			sub = forgeFrame(dec.Bits)
		}
		c.eng.Record(leg, unit) // the suppressed genuine frame joins the library
		return append(out, sub...)
	case Splice:
		sub := c.eng.RecordedOtherLeg(leg, dec.Bits)
		if sub == nil {
			// No foreign material yet: a same-leg frame from an earlier
			// (re-keyed) session is still a cross-session splice; failing
			// that, forge.
			if sub = c.eng.RecordedSameLeg(leg, dec.Bits); sub == nil {
				sub = forgeFrame(dec.Bits)
			}
		}
		c.eng.Record(leg, unit)
		return append(out, sub...)
	case Duplicate:
		c.eng.Record(leg, unit)
		out = append(out, unit...)
		return append(out, unit...)
	case Reorder:
		// Park the genuine frame; something older (recorded, else forged)
		// takes its place. The parked frame is released before the next
		// unit — frames k and k+1 arrive swapped.
		swap := c.eng.RecordedSameLeg(leg, dec.Bits)
		if swap == nil {
			swap = forgeFrame(dec.Bits)
		}
		c.eng.Record(leg, unit)
		d.held = append([]byte(nil), unit...)
		return append(out, swap...)
	case Inject:
		c.eng.Record(leg, unit)
		out = append(out, forgeFrame(dec.Bits)...)
		return append(out, unit...)
	}
	c.eng.Record(leg, unit)
	return append(out, unit...)
}

// unitSize inspects the front of buf and reports how many bytes the current
// unit occupies, or 0 when more bytes are needed. ok=false degrades the
// stream to raw passthrough (unparseable header).
func (d *dirState) unitSize(buf []byte) (n int, ok bool) {
	switch d.step {
	case stepBanner:
		if len(buf) < 1 {
			return 0, true
		}
		if buf[0] == 0x01 {
			if len(buf) < 5 {
				return 0, true
			}
			return 5, true
		}
		return 1, true
	case stepPreamble:
		if len(buf) < 1 {
			return 0, true
		}
		if len(buf) < 1+int(buf[0]) {
			return 0, true
		}
		return 1 + int(buf[0]), true
	case stepPubkey:
		if len(buf) < pubkeyLen {
			return 0, true
		}
		return pubkeyLen, true
	default:
		if len(buf) < frameHeaderLen {
			return 0, true
		}
		body := binary.BigEndian.Uint32(buf)
		if body > maxParseFrame {
			return 0, false
		}
		if uint64(len(buf)) < frameHeaderLen+uint64(body) {
			return 0, true
		}
		return frameHeaderLen + int(body), true
	}
}

// Write carries client→server bytes. Units are cut out of the (possibly
// partial) byte stream, attacked, and forwarded; a trailing partial unit
// waits for the next Write. The call reports the full len(b) consumed on
// success — the adversary owns the discrepancy between what the caller sent
// and what the peer received.
func (c *Conn) Write(b []byte) (int, error) {
	d := &c.wr
	d.mu.Lock()
	if d.raw {
		d.mu.Unlock()
		return c.inner.Write(b)
	}
	d.pending = append(d.pending, b...)
	var outbound []byte
	for {
		n, ok := d.unitSize(d.pending)
		if !ok {
			// Unparseable: flush what we have and fall back to passthrough.
			d.raw = true
			outbound = append(outbound, d.pending...)
			d.pending = nil
			break
		}
		if n == 0 {
			break
		}
		unit := d.pending[:n:n]
		d.pending = append([]byte(nil), d.pending[n:]...)
		outbound = append(outbound, c.attack(d, unit)...)
	}
	d.mu.Unlock()
	if len(outbound) > 0 {
		if _, err := c.inner.Write(outbound); err != nil {
			return 0, err
		}
	}
	return len(b), nil
}

// Read carries server→client bytes. It serves from the transformed output
// queue, assembling (and attacking) one whole unit from the inner connection
// whenever the queue runs dry. Assembly blocks exactly like the untampered
// read would, and honors whatever read deadline the caller armed.
func (c *Conn) Read(b []byte) (int, error) {
	d := &c.rd
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.out) == 0 {
		if d.raw {
			return c.inner.Read(b)
		}
		if err := c.assembleLocked(d); err != nil {
			return 0, err
		}
	}
	n := copy(b, d.out)
	d.out = append([]byte(nil), d.out[n:]...)
	return n, nil
}

// assembleLocked blocks until one whole unit is read from inner, attacks it,
// and appends the result to d.out. An attack may legitimately produce bytes
// for several Recv calls (Duplicate) or none at all this round (a Reorder
// whose substitute is empty can't happen — substitutes are never empty), so
// the Read loop re-checks the queue.
func (c *Conn) assembleLocked(d *dirState) error {
	var buf []byte
	tmp := make([]byte, 4096)
	for {
		n, ok := d.unitSize(buf)
		if !ok {
			d.raw = true
			d.out = append(d.out, buf...)
			return nil
		}
		if n > 0 {
			unit := buf[:n:n]
			if n < len(buf) {
				// More than one unit arrived in one gulp: keep the tail in
				// the queue raw? No — re-run the parser on it next round.
				d.out = append(d.out, c.attack(d, unit)...)
				rest := append([]byte(nil), buf[n:]...)
				buf = rest
				continue
			}
			d.out = append(d.out, c.attack(d, unit)...)
			return nil
		}
		rn, err := c.inner.Read(tmp)
		if rn > 0 {
			buf = append(buf, tmp[:rn]...)
			continue
		}
		if err != nil {
			if len(buf) > 0 {
				// Partial unit at stream end: deliver it raw so the caller
				// sees the same truncation the wire carried.
				d.out = append(d.out, buf...)
				return nil
			}
			if err == io.EOF {
				return io.EOF
			}
			return err
		}
	}
}

// Close implements net.Conn.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn, forwarded so the victim's deadlines keep
// bounding every read and write under attack.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
