package adversary

// SoakRules is the broad-spectrum rule set the deployment binaries arm for
// adversarial soak runs (ironsafe-host -adversary-seed, and the sweep's
// broad phase uses its own tuning of the same shape): every frame attack
// class at a low per-unit probability, skipping each leg's first two units
// so handshakes complete and the attacks land on authenticated traffic,
// where fail-closed behaviour — not connection refusal — is the property
// under test.
func SoakRules() []Rule {
	return []Rule{
		{Site: ":read", Class: Replay, Prob: 0.05, After: 2},
		{Site: ":read", Class: Duplicate, Prob: 0.04, After: 2},
		{Site: ":read", Class: Reorder, Prob: 0.03, After: 2},
		{Site: ":write", Class: Inject, Prob: 0.04, After: 2},
		{Site: ":write", Class: Splice, Prob: 0.03, After: 2},
	}
}

// SoakEngine builds a seeded engine armed with SoakRules.
func SoakEngine(seed uint64) *Engine {
	return NewEngine(seed, SoakRules()...)
}
