// Package adversary is IronSafe's active-attacker harness: a seeded,
// deterministic man-in-the-middle that sits on the untrusted substrates —
// transport channels, control-plane connections, and the raw storage medium —
// and mounts *semantic* protocol attacks rather than random corruption.
//
// Where faultinject models accidents (resets, stalls, bit flips), adversary
// models the paper's real threat: privileged software that records, replays,
// reorders, duplicates, splices, and forges whole protocol units. Every
// attack is decided by a per-site xorshift stream keyed by (seed, site), so a
// fixed seed mounts exactly the same attack sequence — the conformance
// sweep's byte-identical digests rest on this.
//
// The attacks are deliberately *valid-looking*: a replayed frame is a real
// frame the peer once sent (just at the wrong time), a spliced frame is a
// real frame from a different session, a rolled-back medium is a valid old
// state (not a bit flip). The defense contract under test is fail-closed:
// every attack must be absorbed by retry/failover or surface as a typed
// error — never as wrong rows, a false ack, an untyped failure, or a hang.
package adversary

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Class enumerates the semantic attack classes.
type Class int

const (
	// None means the unit passes unharmed.
	None Class = iota
	// Replay substitutes the unit with an earlier frame recorded on the
	// same leg. Frames recorded before a channel was re-dialed belong to a
	// *previous session* (fresh handshake, fresh keys), so a replay across a
	// redial is a cross-session replay; within one session it is a stale
	// retransmission. Either way the sequence-bound AEAD must reject it —
	// including replayed offload replies whose sealed payload carries a
	// stale epoch or stale budget prefix.
	Replay
	// Duplicate delivers the genuine unit and then injects a byte-identical
	// copy behind it, so the *next* exchange on the channel finds a stale
	// valid frame where its reply should be.
	Duplicate
	// Reorder holds the genuine unit back and delivers an out-of-order
	// frame (a recorded one, or a forgery when none exists) in its place;
	// the held unit is released in front of the next one.
	Reorder
	// Splice substitutes a frame recorded on a DIFFERENT leg — cross-
	// session, cross-node traffic stitched into this channel. At the
	// preamble or handshake step it splices another session's identity into
	// the connection setup.
	Splice
	// Inject prepends a forged ciphertext frame of plausible shape before
	// the genuine unit.
	Inject
	// Banner forges a plaintext pre-handshake overload banner (0x01 +
	// retry-after) on a control-plane connection — the one protocol unit an
	// off-path attacker can fabricate without any key material.
	Banner
	// StaleRead is the medium-level attack: a read of a block that changed
	// since the adversary's capture returns the captured *valid old* image.
	StaleRead
	// Rollback is recorded when the harness reverts the whole medium to a
	// captured valid old state (Device.Rollback).
	Rollback
)

// String names a class for traces and stats.
func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Replay:
		return "replay"
	case Duplicate:
		return "duplicate"
	case Reorder:
		return "reorder"
	case Splice:
		return "splice"
	case Inject:
		return "inject"
	case Banner:
		return "banner"
	case StaleRead:
		return "stale-read"
	case Rollback:
		return "rollback"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Rule arms one attack class against matching legs. Legs are hierarchical
// strings like "storage-01:read", "storage-01:write:preamble", or
// "ctl:ingest:read:banner"; a Rule matches when Site is a substring of the
// leg, mirroring faultinject's matching so sweep configs compose the same
// way.
type Rule struct {
	// Site substring to match ("" matches everything).
	Site string
	// Class to mount.
	Class Class
	// Prob is the per-unit attack probability (0..1]. Rules on one unit
	// occupy disjoint bands of a single uniform draw, so probabilities add.
	Prob float64
	// After skips the leg's first After units (lets handshakes complete, or
	// targets them specifically with After: 0).
	After int
	// MaxCount bounds attacks from this rule per leg stream (0 = unlimited).
	MaxCount int
}

// Decision is one resolved attack.
type Decision struct {
	Class Class
	Leg   string
	// Bits is deterministic entropy for the attack body (forged frame
	// contents, library index, forged retry-after).
	Bits uint64
}

// maxLibraryPerLeg bounds recorded frames per leg; maxLibraryTotal bounds the
// cross-leg splice pool. Oldest entries are evicted first.
const (
	maxLibraryPerLeg = 16
	maxLibraryTotal  = 64
)

type libFrame struct {
	leg   string
	frame []byte
}

// Engine is a deterministic attack plan plus the adversary's recording
// library. Safe for concurrent use; determinism holds as long as each leg's
// units occur in a deterministic order (the conformance sweep runs its
// traffic sequentially for exactly this reason).
type Engine struct {
	seed uint64

	mu      sync.Mutex
	rules   []Rule
	streams map[string]*stream
	counts  map[Class]int
	log     []string
	perLeg  map[string][][]byte
	pool    []libFrame
}

type stream struct {
	rng       uint64
	ops       int
	ruleCount map[int]int
}

// NewEngine creates an engine from a seed and initial rules. Rules may also
// be armed later with Arm (drills target one protocol step at a time).
func NewEngine(seed uint64, rules ...Rule) *Engine {
	return &Engine{
		seed:    seed,
		rules:   rules,
		streams: map[string]*stream{},
		counts:  map[Class]int{},
		perLeg:  map[string][][]byte{},
	}
}

// Arm appends a rule to the plan. Calling it at a deterministic point in the
// run keeps the whole schedule reproducible.
func (e *Engine) Arm(r Rule) {
	e.mu.Lock()
	e.rules = append(e.rules, r)
	e.mu.Unlock()
}

func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func xorshift(x uint64) uint64 {
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	return x
}

func (e *Engine) stream(leg string) *stream {
	s, ok := e.streams[leg]
	if !ok {
		seed := e.seed ^ fnv1a(leg)
		if seed == 0 {
			seed = 1
		}
		s = &stream{rng: seed, ruleCount: map[int]int{}}
		e.streams[leg] = s
	}
	return s
}

func (s *stream) next() (float64, uint64) {
	s.rng = xorshift(s.rng)
	bits := s.rng * 0x2545f4914f6cdd1d
	return float64(bits>>11) / float64(1<<53), bits
}

// Decide returns the attack (if any) to mount on leg's next protocol unit.
// Exactly one rule can fire per unit; rules are consulted in order over
// disjoint probability bands of one draw.
func (e *Engine) Decide(leg string) Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stream(leg)
	op := s.ops
	s.ops++
	u, bits := s.next()
	for i, r := range e.rules {
		if r.Class == None || r.Prob <= 0 {
			continue
		}
		if r.Site != "" && !strings.Contains(leg, r.Site) {
			continue
		}
		if op < r.After {
			continue
		}
		if r.MaxCount > 0 && s.ruleCount[i] >= r.MaxCount {
			continue
		}
		if u >= r.Prob {
			u -= r.Prob
			continue
		}
		s.ruleCount[i]++
		e.counts[r.Class]++
		e.log = append(e.log, fmt.Sprintf("%s@%s#%d", r.Class, leg, op))
		return Decision{Class: r.Class, Leg: leg, Bits: bits}
	}
	return Decision{Class: None, Leg: leg}
}

// OpsAt reports how many units leg has decided so far — the conformance
// sweep counts a clean pass's units per leg, then replays with an attack
// armed at each ordinal.
func (e *Engine) OpsAt(leg string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.streams[leg]; ok {
		return s.ops
	}
	return 0
}

// Legs lists every leg that has decided at least one unit, sorted.
func (e *Engine) Legs() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.streams))
	for leg := range e.streams {
		out = append(out, leg)
	}
	sort.Strings(out)
	return out
}

// Record adds a genuine observed unit to the adversary's library so later
// Replay/Splice decisions have real material to mount.
func (e *Engine) Record(leg string, frame []byte) {
	cp := append([]byte(nil), frame...)
	e.mu.Lock()
	defer e.mu.Unlock()
	frames := append(e.perLeg[leg], cp)
	if len(frames) > maxLibraryPerLeg {
		frames = frames[1:]
	}
	e.perLeg[leg] = frames
	e.pool = append(e.pool, libFrame{leg: leg, frame: cp})
	if len(e.pool) > maxLibraryTotal {
		e.pool = e.pool[1:]
	}
}

// RecordedSameLeg returns a deterministic earlier frame recorded on leg, or
// nil when the library is empty for it.
func (e *Engine) RecordedSameLeg(leg string, bits uint64) []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	frames := e.perLeg[leg]
	if len(frames) == 0 {
		return nil
	}
	return append([]byte(nil), frames[int(bits%uint64(len(frames)))]...)
}

// RecordedOtherLeg returns a deterministic frame recorded on any leg other
// than leg (cross-session splice material), or nil when none exists.
func (e *Engine) RecordedOtherLeg(leg string, bits uint64) []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	var candidates [][]byte
	for _, lf := range e.pool {
		if lf.leg != leg {
			candidates = append(candidates, lf.frame)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return append([]byte(nil), candidates[int(bits%uint64(len(candidates)))]...)
}

// RecordedSameLegSized is RecordedSameLeg restricted to units of exactly
// size bytes — identity units (preambles, public keys) can only be
// substituted by same-shaped material.
func (e *Engine) RecordedSameLegSized(leg string, bits uint64, size int) []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	var candidates [][]byte
	for _, f := range e.perLeg[leg] {
		if len(f) == size {
			candidates = append(candidates, f)
		}
	}
	return pickSized(candidates, bits)
}

// RecordedOtherLegSized is RecordedOtherLeg restricted to units of exactly
// size bytes.
func (e *Engine) RecordedOtherLegSized(leg string, bits uint64, size int) []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	var candidates [][]byte
	for _, lf := range e.pool {
		if lf.leg != leg && len(lf.frame) == size {
			candidates = append(candidates, lf.frame)
		}
	}
	return pickSized(candidates, bits)
}

func pickSized(candidates [][]byte, bits uint64) []byte {
	if len(candidates) == 0 {
		return nil
	}
	return append([]byte(nil), candidates[int(bits%uint64(len(candidates)))]...)
}

// Note appends a harness-mounted attack (medium rollback, scripted drills)
// to the trace so Stats and Trace cover every class exercised.
func (e *Engine) Note(class Class, leg string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.counts[class]++
	e.log = append(e.log, fmt.Sprintf("%s@%s", class, leg))
}

// Stats returns attacks mounted per class.
func (e *Engine) Stats() map[Class]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[Class]int, len(e.counts))
	for k, v := range e.counts {
		out[k] = v
	}
	return out
}

// ClassesMounted returns the distinct classes mounted so far, sorted.
func (e *Engine) ClassesMounted() []Class {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Class
	for c, n := range e.counts {
		if n > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Trace returns the attack log in order — part of the conformance sweep's
// determinism digest.
func (e *Engine) Trace() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.log...)
}
