package adversary

import (
	"reflect"
	"testing"

	"ironsafe/internal/pager"
)

func drive(e *Engine, legs []string) []Decision {
	var out []Decision
	for _, leg := range legs {
		out = append(out, e.Decide(leg))
	}
	return out
}

func TestAdversaryEngineDeterministicSchedule(t *testing.T) {
	rules := []Rule{
		{Site: ":read", Class: Replay, Prob: 0.2},
		{Site: ":read", Class: Duplicate, Prob: 0.2},
		{Site: ":write", Class: Inject, Prob: 0.3, After: 1},
	}
	legs := []string{
		"storage-01:read", "storage-01:write", "storage-01:read",
		"storage-02:read", "storage-01:write", "storage-01:read",
		"storage-02:write", "storage-01:read", "storage-01:write",
		"storage-02:read", "storage-01:read", "storage-01:write",
	}
	a := drive(NewEngine(7, rules...), legs)
	b := drive(NewEngine(7, rules...), legs)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	ta := NewEngine(7, rules...)
	tb := NewEngine(7, rules...)
	drive(ta, legs)
	drive(tb, legs)
	if !reflect.DeepEqual(ta.Trace(), tb.Trace()) {
		t.Fatalf("traces diverged: %v vs %v", ta.Trace(), tb.Trace())
	}
	attacked := false
	for seed := uint64(1); seed < 32 && !attacked; seed++ {
		for _, d := range drive(NewEngine(seed, rules...), legs) {
			if d.Class != None {
				attacked = true
				break
			}
		}
	}
	if !attacked {
		t.Fatal("no seed in 1..31 mounted any attack; probability bands broken")
	}
}

func TestAdversaryEngineRuleBounds(t *testing.T) {
	e := NewEngine(3, Rule{Site: "x", Class: Replay, Prob: 1, After: 2, MaxCount: 2})
	var fired int
	for i := 0; i < 10; i++ {
		if e.Decide("node:x:read").Class == Replay {
			fired++
			if i < 2 {
				t.Fatalf("rule fired at op %d despite After: 2", i)
			}
		}
	}
	if fired != 2 {
		t.Fatalf("rule fired %d times, want exactly MaxCount=2", fired)
	}
	if e.Decide("other-leg").Class != None {
		t.Fatal("rule matched a leg not containing Site")
	}
	if got := e.OpsAt("node:x:read"); got != 10 {
		t.Fatalf("OpsAt = %d, want 10", got)
	}
}

func TestAdversaryEngineLibraryLookups(t *testing.T) {
	e := NewEngine(1)
	e.Record("a:read", []byte("frame-one"))
	e.Record("a:read", make([]byte, 32))
	e.Record("b:read", []byte("frame-two"))
	if e.RecordedSameLeg("c:read", 5) != nil {
		t.Fatal("empty leg returned material")
	}
	if got := e.RecordedSameLegSized("a:read", 5, 32); len(got) != 32 {
		t.Fatalf("sized same-leg lookup = %d bytes, want 32", len(got))
	}
	if got := e.RecordedOtherLegSized("b:read", 5, 32); len(got) != 32 {
		t.Fatalf("sized other-leg lookup = %d bytes, want 32", len(got))
	}
	if e.RecordedOtherLegSized("a:read", 5, 32) != nil {
		t.Fatal("other-leg lookup returned material recorded on the same leg")
	}
	got := e.RecordedOtherLeg("a:read", 0)
	if string(got) != "frame-two" {
		t.Fatalf("other-leg lookup = %q, want frame-two", got)
	}
}

func TestAdversaryDeviceStaleReadServesCapturedImage(t *testing.T) {
	eng := NewEngine(1)
	dev := WrapDevice(pager.NewMemDevice(), "medium:test", eng)
	if err := dev.WriteBlock(0, []byte("old-state")); err != nil {
		t.Fatal(err)
	}
	dev.Capture()
	if err := dev.WriteBlock(0, []byte("new-state")); err != nil {
		t.Fatal(err)
	}
	got, err := dev.ReadBlock(0)
	if err != nil || string(got) != "new-state" {
		t.Fatalf("unarmed read = %q, %v; want new-state", got, err)
	}
	dev.ArmStaleReads(1)
	got, err = dev.ReadBlock(0)
	if err != nil || string(got) != "old-state" {
		t.Fatalf("armed stale read = %q, %v; want captured old-state", got, err)
	}
	got, err = dev.ReadBlock(0)
	if err != nil || string(got) != "new-state" {
		t.Fatalf("read after budget spent = %q, %v; want new-state", got, err)
	}
}

func TestAdversaryDeviceRevertRestoresValidOldState(t *testing.T) {
	eng := NewEngine(1)
	dev := WrapDevice(pager.NewMemDevice(), "medium:test", eng)
	if err := dev.WriteBlock(0, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteBlock(1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	dev.Capture()
	if err := dev.WriteBlock(1, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteBlock(1, []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if err := dev.Rollback(); err != nil {
		t.Fatal(err)
	}
	got, err := dev.ReadBlock(1)
	if err != nil || string(got) != "v1" {
		t.Fatalf("rolled-back block = %q, %v; want first captured pre-image v1", got, err)
	}
	got, err = dev.ReadBlock(0)
	if err != nil || string(got) != "keep" {
		t.Fatalf("untouched block = %q, %v; want keep", got, err)
	}
	stats := eng.Stats()
	if stats[Rollback] != 1 {
		t.Fatalf("rollback not traced: %v", stats)
	}
}
