package adversary

import (
	"sync"

	"ironsafe/internal/pager"
)

// Device wraps a pager.BlockDevice as an adversary-controlled medium. The
// attacks are *valid-state* attacks, not corruption: after Capture, the
// device shadows the pre-image of every block overwritten, so it can later
// serve stale-but-valid reads (ArmStaleReads) or revert the whole medium to
// the captured old state (Rollback). The securestore freshness root — not
// byte integrity — is the defense under test: every stale image is a real
// block the store once wrote.
type Device struct {
	inner pager.BlockDevice
	eng   *Engine
	site  string

	mu        sync.Mutex
	capturing bool
	// shadow maps block index → pre-capture image (nil = the block did not
	// exist before its first post-capture write).
	shadow map[uint32][]byte
	// staleReads is a budget: while positive, reads of shadowed blocks
	// return the shadow image instead of the live one.
	staleReads int
}

// WrapDevice interposes the adversary on dev. site names the medium in the
// trace ("medium:storage-02").
func WrapDevice(dev pager.BlockDevice, site string, eng *Engine) *Device {
	return &Device{inner: dev, eng: eng, site: site, shadow: map[uint32][]byte{}}
}

var _ pager.BlockDevice = (*Device)(nil)

// Capture snapshots nothing eagerly: it clears the shadow set and starts
// copy-on-first-write, so the shadow converges to "the medium as it was at
// Capture time" restricted to blocks that changed since.
func (d *Device) Capture() {
	d.mu.Lock()
	d.capturing = true
	d.shadow = map[uint32][]byte{}
	d.staleReads = 0
	d.mu.Unlock()
}

// ArmStaleReads makes the next n reads of since-changed blocks return their
// captured old images — valid stale data a rolled-back medium would serve.
func (d *Device) ArmStaleReads(n int) {
	d.mu.Lock()
	d.staleReads = n
	d.mu.Unlock()
}

// Rollback reverts every since-capture write to its captured pre-image: the
// whole-medium rollback-to-valid-old-state attack. Blocks that did not
// exist at capture time keep their current content (a real rollback of a
// grow-only medium leaves residue past the old end; the store's freshness
// anchor must reject the state either way). Shadowing stops and the shadow
// set clears.
func (d *Device) Rollback() error {
	d.mu.Lock()
	shadow := d.shadow
	d.shadow = map[uint32][]byte{}
	d.capturing = false
	d.staleReads = 0
	d.mu.Unlock()
	for idx, img := range shadow {
		if img == nil {
			continue
		}
		if err := d.inner.WriteBlock(idx, img); err != nil {
			return err
		}
	}
	d.eng.Note(Rollback, d.site)
	return nil
}

// ReadBlock serves the stale captured image while the stale-read budget
// lasts; otherwise it reads through.
func (d *Device) ReadBlock(idx uint32) ([]byte, error) {
	d.mu.Lock()
	var stale []byte
	if d.staleReads > 0 {
		if img, ok := d.shadow[idx]; ok && img != nil {
			stale = append([]byte(nil), img...)
			d.staleReads--
		}
	}
	d.mu.Unlock()
	if stale != nil {
		d.eng.Note(StaleRead, d.site)
		return stale, nil
	}
	return d.inner.ReadBlock(idx)
}

// WriteBlock records the pre-image on the first post-capture write to each
// block, then writes through.
func (d *Device) WriteBlock(idx uint32, data []byte) error {
	d.mu.Lock()
	capture := d.capturing
	_, seen := d.shadow[idx]
	d.mu.Unlock()
	if capture && !seen {
		pre, err := d.inner.ReadBlock(idx)
		if err != nil {
			pre = nil
		}
		d.mu.Lock()
		if _, raced := d.shadow[idx]; !raced && d.capturing {
			d.shadow[idx] = pre
		}
		d.mu.Unlock()
	}
	return d.inner.WriteBlock(idx, data)
}

// NumBlocks reports the live medium size.
func (d *Device) NumBlocks() uint32 { return d.inner.NumBlocks() }
