package schema

import "ironsafe/internal/value"

// ColVec is a typed column vector: one column of a row batch, decomposed into
// a flat array so vectorized operators can run tight kernels over it instead
// of per-row interface dispatch. A column whose values all share one kind
// (with no NULLs) is stored unboxed — Int/Date/Bool in Ints, Float in Floats,
// String in Strs — and reboxed losslessly on demand (value constructors are
// pure, so Value(i) reconstructs a struct-equal value.Value). Mixed or
// NULL-bearing columns fall back to the Boxed representation, where the zero
// value is SQL NULL.
type ColVec struct {
	// Kind is the element kind of the unboxed representations; for Boxed
	// vectors it is KindNull and per-element kinds live in the values.
	Kind value.Kind
	// Const marks a vector whose n elements are all the single stored
	// element (used for literals and correlated outer-row columns).
	Const bool

	Ints   []int64
	Floats []float64
	Strs   []string
	Boxed  []value.Value

	n int
}

// NewColVec returns a boxed vector of n SQL NULLs, for kernels that build
// output element-wise via Set.
func NewColVec(n int) *ColVec {
	return &ColVec{Boxed: make([]value.Value, n), n: n}
}

// ConstVec returns a length-n vector whose every element is v.
func ConstVec(v value.Value, n int) *ColVec {
	return &ColVec{Const: true, Boxed: []value.Value{v}, n: n}
}

// IntVec wraps an int64 kernel output as a vector of kind (KindInt, KindDate,
// or KindBool — Bool encodes false/true as 0/1).
func IntVec(kind value.Kind, ints []int64) *ColVec {
	return &ColVec{Kind: kind, Ints: ints, n: len(ints)}
}

// FloatVec wraps a float64 kernel output.
func FloatVec(floats []float64) *ColVec {
	return &ColVec{Kind: value.KindFloat, Floats: floats, n: len(floats)}
}

// FromRows extracts column col of rows into a vector, choosing the unboxed
// representation when every element shares one non-null kind.
func FromRows(rows []Row, col int) *ColVec {
	n := len(rows)
	kind := value.KindNull
	uniform := true
	for _, r := range rows {
		v := r[col]
		if v.IsNull() {
			uniform = false
			break
		}
		if kind == value.KindNull {
			kind = v.Kind()
		} else if v.Kind() != kind {
			uniform = false
			break
		}
	}
	if !uniform || n == 0 {
		cv := &ColVec{Boxed: make([]value.Value, n), n: n}
		for i, r := range rows {
			cv.Boxed[i] = r[col]
		}
		return cv
	}
	switch kind {
	case value.KindInt, value.KindDate, value.KindBool:
		cv := &ColVec{Kind: kind, Ints: make([]int64, n), n: n}
		for i, r := range rows {
			cv.Ints[i] = r[col].AsInt()
		}
		return cv
	case value.KindFloat:
		cv := &ColVec{Kind: kind, Floats: make([]float64, n), n: n}
		for i, r := range rows {
			cv.Floats[i] = r[col].AsFloat()
		}
		return cv
	case value.KindString:
		cv := &ColVec{Kind: kind, Strs: make([]string, n), n: n}
		for i, r := range rows {
			cv.Strs[i] = r[col].String()
		}
		return cv
	default:
		cv := &ColVec{Boxed: make([]value.Value, n), n: n}
		for i, r := range rows {
			cv.Boxed[i] = r[col]
		}
		return cv
	}
}

// Len returns the element count.
func (cv *ColVec) Len() int { return cv.n }

// Value reboxes element i. For unboxed vectors this reconstructs a
// struct-equal value.Value; for boxed vectors it returns the stored value.
func (cv *ColVec) Value(i int) value.Value {
	if cv.Const {
		return cv.Boxed[0]
	}
	switch {
	case cv.Ints != nil:
		switch cv.Kind {
		case value.KindDate:
			return value.Date(cv.Ints[i])
		case value.KindBool:
			return value.Bool(cv.Ints[i] != 0)
		default:
			return value.Int(cv.Ints[i])
		}
	case cv.Floats != nil:
		return value.Float(cv.Floats[i])
	case cv.Strs != nil:
		return value.Str(cv.Strs[i])
	default:
		return cv.Boxed[i]
	}
}

// Set stores v at element i. Only boxed non-const vectors are writable; Set
// is the output primitive paired with NewColVec.
func (cv *ColVec) Set(i int, v value.Value) { cv.Boxed[i] = v }
