package schema

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ironsafe/internal/value"
)

func lineitemish() *Schema {
	return New(
		Col("l_orderkey", value.KindInt),
		Col("l_quantity", value.KindFloat),
		Col("l_returnflag", value.KindString),
		Col("l_shipdate", value.KindDate),
	)
}

func TestIndexOf(t *testing.T) {
	s := lineitemish()
	if got := s.IndexOf("l_quantity"); got != 1 {
		t.Errorf("IndexOf(l_quantity) = %d", got)
	}
	if got := s.IndexOf("L_QUANTITY"); got != 1 {
		t.Errorf("case-insensitive IndexOf = %d", got)
	}
	if got := s.IndexOf("nope"); got != -1 {
		t.Errorf("IndexOf(nope) = %d", got)
	}
}

func TestIndexOfQualified(t *testing.T) {
	s := lineitemish().Qualify("l")
	if got := s.IndexOf("l.l_orderkey"); got != 0 {
		t.Errorf("qualified lookup = %d", got)
	}
	if got := s.IndexOf("l_orderkey"); got != 0 {
		t.Errorf("unqualified lookup against qualified schema = %d", got)
	}
	// Ambiguity: two qualifiers exposing the same suffix.
	amb := s.Concat(lineitemish().Qualify("r"))
	if got := amb.IndexOf("l_orderkey"); got != -1 {
		t.Errorf("ambiguous lookup should fail, got %d", got)
	}
	if got := amb.IndexOf("r.l_orderkey"); got != 4 {
		t.Errorf("qualified disambiguation = %d", got)
	}
}

func TestIndexOfQualifiedRequestUnqualifiedSchema(t *testing.T) {
	s := lineitemish()
	if got := s.IndexOf("l.l_shipdate"); got != 3 {
		t.Errorf("qualified request against plain schema = %d", got)
	}
}

func TestQualifyStripsOldQualifier(t *testing.T) {
	s := lineitemish().Qualify("a").Qualify("b")
	if s.Columns[0].Name != "b.l_orderkey" {
		t.Errorf("requalify = %q", s.Columns[0].Name)
	}
}

func TestConcatAndString(t *testing.T) {
	a := New(Col("x", value.KindInt))
	b := New(Col("y", value.KindString))
	c := a.Concat(b)
	if c.Len() != 2 || c.Columns[1].Name != "y" {
		t.Errorf("Concat = %v", c)
	}
	if got := c.String(); got != "x INTEGER, y VARCHAR" {
		t.Errorf("String = %q", got)
	}
	// Concat must not alias the inputs.
	c.Columns[0].Name = "z"
	if a.Columns[0].Name != "x" {
		t.Error("Concat aliased its input")
	}
}

func sampleRow() Row {
	return Row{
		value.Int(42),
		value.Float(3.25),
		value.Str("hello world"),
		value.MustParseDate("1995-03-15"),
		value.Bool(true),
		value.Null(),
		value.Int(-9999999),
		value.Str(""),
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	r := sampleRow()
	buf := EncodeRow(nil, r)
	if len(buf) != EncodedSize(r) {
		t.Errorf("EncodedSize = %d, actual %d", EncodedSize(r), len(buf))
	}
	got, n, err := DecodeRow(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("roundtrip mismatch: %v vs %v", got, r)
	}
}

func TestRowsCodecRoundTrip(t *testing.T) {
	rows := []Row{sampleRow(), {value.Int(1)}, {}}
	buf := EncodeRows(rows)
	got, err := DecodeRows(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Errorf("batch roundtrip mismatch")
	}
}

func TestDecodeRowTruncation(t *testing.T) {
	full := EncodeRow(nil, sampleRow())
	for i := 0; i < len(full); i++ {
		if _, _, err := DecodeRow(full[:i]); err == nil {
			t.Errorf("truncation at %d bytes not detected", i)
		}
	}
}

func TestDecodeRowGarbage(t *testing.T) {
	if _, _, err := DecodeRow([]byte{1, 0, 0xFF}); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := DecodeRows(nil); err == nil {
		t.Error("empty batch buffer should error")
	}
}

func TestRowCodecProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := func() Row {
		n := rng.Intn(12)
		r := make(Row, n)
		for i := range r {
			switch rng.Intn(6) {
			case 0:
				r[i] = value.Null()
			case 1:
				r[i] = value.Int(rng.Int63() - (1 << 62))
			case 2:
				r[i] = value.Float(rng.NormFloat64() * 1e6)
			case 3:
				b := make([]byte, rng.Intn(64))
				rng.Read(b)
				r[i] = value.Str(string(b))
			case 4:
				r[i] = value.Date(int64(rng.Intn(40000)))
			default:
				r[i] = value.Bool(rng.Intn(2) == 0)
			}
		}
		return r
	}
	for i := 0; i < 500; i++ {
		r := gen()
		buf := EncodeRow(nil, r)
		got, n, err := DecodeRow(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("iter %d: decode err %v n=%d/%d", i, err, n, len(buf))
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("iter %d: mismatch", i)
		}
		if EncodedSize(r) != len(buf) {
			t.Fatalf("iter %d: size mismatch", i)
		}
	}
}

func TestEncodeDeterministicProperty(t *testing.T) {
	f := func(a int64, s string, b bool) bool {
		r := Row{value.Int(a), value.Str(s), value.Bool(b)}
		return bytes.Equal(EncodeRow(nil, r), EncodeRow(nil, r))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{value.Int(1), value.Str("a")}
	c := r.Clone()
	c[0] = value.Int(2)
	if r[0].AsInt() != 1 {
		t.Error("Clone aliased the original")
	}
}
