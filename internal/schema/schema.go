// Package schema describes table shapes and provides the binary row codec
// used for on-page storage and for the host/storage wire protocol.
package schema

import (
	"fmt"
	"strings"

	"ironsafe/internal/value"
)

// Column is one column of a table or intermediate result.
type Column struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// New builds a schema from (name, kind) pairs.
func New(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Col is a convenience constructor for a Column.
func Col(name string, kind value.Kind) Column {
	return Column{Name: name, Kind: kind}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// IndexOf returns the position of the named column, or -1. Lookup is
// case-insensitive and also accepts "qualifier.name" forms: an unqualified
// request matches a qualified column when the suffix matches unambiguously.
func (s *Schema) IndexOf(name string) int {
	lower := strings.ToLower(name)
	// Exact match first.
	for i, c := range s.Columns {
		if strings.ToLower(c.Name) == lower {
			return i
		}
	}
	// Unqualified request against qualified columns.
	if !strings.Contains(lower, ".") {
		found := -1
		for i, c := range s.Columns {
			cn := strings.ToLower(c.Name)
			if idx := strings.LastIndexByte(cn, '.'); idx >= 0 && cn[idx+1:] == lower {
				if found >= 0 {
					return -1 // ambiguous
				}
				found = i
			}
		}
		return found
	}
	// Qualified request against unqualified columns: match on suffix.
	if idx := strings.LastIndexByte(lower, '.'); idx >= 0 {
		suffix := lower[idx+1:]
		for i, c := range s.Columns {
			if strings.ToLower(c.Name) == suffix {
				return i
			}
		}
	}
	return -1
}

// Qualify returns a copy of the schema with every column name prefixed
// "alias.name" (stripping any existing qualifier).
func (s *Schema) Qualify(alias string) *Schema {
	out := &Schema{Columns: make([]Column, len(s.Columns))}
	for i, c := range s.Columns {
		name := c.Name
		if idx := strings.LastIndexByte(name, '.'); idx >= 0 {
			name = name[idx+1:]
		}
		out.Columns[i] = Column{Name: alias + "." + name, Kind: c.Kind}
	}
	return out
}

// Concat returns a schema holding s's columns followed by t's.
func (s *Schema) Concat(t *Schema) *Schema {
	out := &Schema{Columns: make([]Column, 0, len(s.Columns)+len(t.Columns))}
	out.Columns = append(out.Columns, s.Columns...)
	out.Columns = append(out.Columns, t.Columns...)
	return out
}

// String renders "name kind, name kind, ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = fmt.Sprintf("%s %s", c.Name, c.Kind)
	}
	return strings.Join(parts, ", ")
}

// Row is a tuple of values matching a schema positionally.
type Row []value.Value

// Clone returns a copy of the row (values are immutable, so a shallow copy
// of the slice is a deep copy of the tuple).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
