package schema

import (
	"encoding/binary"
	"fmt"
	"math"

	"ironsafe/internal/value"
)

// Binary row codec. Layout per row:
//
//	u16 column count
//	per column: u8 kind, then payload:
//	  NULL           -> nothing
//	  INTEGER/DATE   -> varint (zig-zag)
//	  DOUBLE         -> 8-byte little-endian IEEE bits
//	  VARCHAR        -> uvarint length + bytes
//	  BOOLEAN        -> 1 byte
//
// The codec is self-describing (kinds travel with the data) so shipped rows
// can be decoded without out-of-band schema agreement, which keeps the
// host/storage wire protocol honest about what was transferred.

// EncodeRow appends the binary encoding of r to dst and returns the result.
func EncodeRow(dst []byte, r Row) []byte {
	var tmp [binary.MaxVarintLen64]byte
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r)))
	for _, v := range r {
		dst = append(dst, byte(v.Kind()))
		switch v.Kind() {
		case value.KindNull:
		case value.KindInt, value.KindDate:
			n := binary.PutVarint(tmp[:], v.AsInt())
			dst = append(dst, tmp[:n]...)
		case value.KindFloat:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.AsFloat()))
		case value.KindString:
			s := v.AsString()
			n := binary.PutUvarint(tmp[:], uint64(len(s)))
			dst = append(dst, tmp[:n]...)
			dst = append(dst, s...)
		case value.KindBool:
			if v.AsBool() {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	}
	return dst
}

// DecodeRow decodes one row from buf, returning the row and the number of
// bytes consumed.
func DecodeRow(buf []byte) (Row, int, error) {
	if len(buf) < 2 {
		return nil, 0, fmt.Errorf("schema: short row header")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	pos := 2
	row := make(Row, 0, n)
	for i := 0; i < n; i++ {
		if pos >= len(buf) {
			return nil, 0, fmt.Errorf("schema: truncated row at column %d", i)
		}
		kind := value.Kind(buf[pos])
		pos++
		switch kind {
		case value.KindNull:
			row = append(row, value.Null())
		case value.KindInt, value.KindDate:
			v, sz := binary.Varint(buf[pos:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("schema: bad varint at column %d", i)
			}
			pos += sz
			if kind == value.KindInt {
				row = append(row, value.Int(v))
			} else {
				row = append(row, value.Date(v))
			}
		case value.KindFloat:
			if pos+8 > len(buf) {
				return nil, 0, fmt.Errorf("schema: truncated float at column %d", i)
			}
			row = append(row, value.Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))))
			pos += 8
		case value.KindString:
			l, sz := binary.Uvarint(buf[pos:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("schema: bad string length at column %d", i)
			}
			pos += sz
			if uint64(pos)+l > uint64(len(buf)) {
				return nil, 0, fmt.Errorf("schema: truncated string at column %d", i)
			}
			row = append(row, value.Str(string(buf[pos:pos+int(l)])))
			pos += int(l)
		case value.KindBool:
			if pos >= len(buf) {
				return nil, 0, fmt.Errorf("schema: truncated bool at column %d", i)
			}
			row = append(row, value.Bool(buf[pos] != 0))
			pos++
		default:
			return nil, 0, fmt.Errorf("schema: unknown kind %d at column %d", kind, i)
		}
	}
	return row, pos, nil
}

// EncodeRows encodes a batch of rows with a uvarint count prefix.
func EncodeRows(rows []Row) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(rows)))
	out := append([]byte{}, tmp[:n]...)
	for _, r := range rows {
		out = EncodeRow(out, r)
	}
	return out
}

// DecodeRows decodes a batch written by EncodeRows.
func DecodeRows(buf []byte) ([]Row, error) {
	count, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("schema: bad batch header")
	}
	pos := sz
	rows := make([]Row, 0, count)
	for i := uint64(0); i < count; i++ {
		r, n, err := DecodeRow(buf[pos:])
		if err != nil {
			return nil, fmt.Errorf("schema: row %d: %w", i, err)
		}
		rows = append(rows, r)
		pos += n
	}
	return rows, nil
}

// EncodedSize returns the encoded length of a row without allocating.
func EncodedSize(r Row) int {
	size := 2
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range r {
		size++
		switch v.Kind() {
		case value.KindInt, value.KindDate:
			size += binary.PutVarint(tmp[:], v.AsInt())
		case value.KindFloat:
			size += 8
		case value.KindString:
			s := v.AsString()
			size += binary.PutUvarint(tmp[:], uint64(len(s))) + len(s)
		case value.KindBool:
			size++
		}
	}
	return size
}
