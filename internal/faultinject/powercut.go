package faultinject

import (
	"sync"

	"ironsafe/internal/pager"
)

// PowerCut wraps a pager.BlockDevice and models a hard power loss at an
// exact block-write boundary: the k-th write since Arm either never reaches
// the medium (a clean cut) or persists only a deterministic prefix of the
// block (a torn cut), and every subsequent access fails until Revive — the
// device is off. Sweeping k across a workload's full write sequence visits
// every crash point the medium can experience, which is how the chaos
// suite's crash-consistency sweep proves the secure store's journal recovery
// deterministic at all of them.
type PowerCut struct {
	inner pager.BlockDevice
	node  string

	mu     sync.Mutex
	armed  bool
	failAt int  // 1-based write index that dies; 0 = count only
	tear   bool // torn cut (prefix persists) vs clean cut (nothing persists)
	rng    uint64
	writes int
	dead   bool
}

var _ pager.BlockDevice = (*PowerCut)(nil)

// NewPowerCut wraps inner; the device starts live and unarmed, passing all
// I/O through while counting nothing.
func NewPowerCut(inner pager.BlockDevice, node string) *PowerCut {
	return &PowerCut{inner: inner, node: node}
}

// Arm resets the write counter and schedules the power cut at the failAt-th
// subsequent write (1-based). failAt 0 arms pure counting: no cut fires, but
// Writes reports the workload's write total — the sweep's upper bound for k.
// tear selects a torn final write; seed drives the deterministic tear offset.
func (p *PowerCut) Arm(failAt int, tear bool, seed uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.armed = true
	p.failAt = failAt
	p.tear = tear
	if seed == 0 {
		seed = 1
	}
	p.rng = seed
	p.writes = 0
}

// Disarm stops counting and scheduling; the device stays in its current
// live/dead state.
func (p *PowerCut) Disarm() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.armed = false
	p.failAt = 0
}

// Revive powers the device back on (the medium keeps whatever the cut left).
func (p *PowerCut) Revive() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dead = false
}

// Writes reports how many writes have been attempted since Arm.
func (p *PowerCut) Writes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writes
}

// site names this device's fault site in injected errors.
func (p *PowerCut) site() string { return "powercut:" + p.node + ":write" }

// ReadBlock implements pager.BlockDevice.
func (p *PowerCut) ReadBlock(idx uint32) ([]byte, error) {
	p.mu.Lock()
	dead := p.dead
	p.mu.Unlock()
	if dead {
		return nil, &InjectedError{Class: Crash, Site: "powercut:" + p.node + ":read"}
	}
	return p.inner.ReadBlock(idx)
}

// WriteBlock implements pager.BlockDevice.
func (p *PowerCut) WriteBlock(idx uint32, data []byte) error {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return &InjectedError{Class: Crash, Site: p.site()}
	}
	if !p.armed {
		p.mu.Unlock()
		return p.inner.WriteBlock(idx, data)
	}
	p.writes++
	fire := p.failAt > 0 && p.writes == p.failAt
	var tear bool
	var cutBits uint64
	if fire {
		p.dead = true
		tear = p.tear
		p.rng = xorshift(p.rng)
		cutBits = p.rng
	}
	p.mu.Unlock()
	if !fire {
		return p.inner.WriteBlock(idx, data)
	}
	if tear {
		old, rerr := p.inner.ReadBlock(idx)
		if rerr != nil {
			old = nil
		}
		cut := tornCut(int(cutBits&0x7fffffff), len(data))
		if werr := p.inner.WriteBlock(idx, tornMerge(old, data, cut)); werr != nil {
			return werr
		}
		return &InjectedError{Class: TornWrite, Site: p.site()}
	}
	return &InjectedError{Class: Crash, Site: p.site()}
}

// NumBlocks implements pager.BlockDevice (metadata, never faulted).
func (p *PowerCut) NumBlocks() uint32 { return p.inner.NumBlocks() }
