package faultinject

import (
	"bytes"
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"ironsafe/internal/pager"
)

// decisions drains n decisions from a fresh plan at site.
func decisions(seed uint64, site string, n int, rules ...Rule) []Class {
	p := NewPlan(seed, rules...)
	out := make([]Class, n)
	for i := range out {
		out[i] = p.Decide(site).Class
	}
	return out
}

func TestPlanDeterministicPerSeed(t *testing.T) {
	rules := []Rule{{Class: Reset, Prob: 0.3}, {Class: Corrupt, Prob: 0.2}}
	a := decisions(99, "conn:n1:read", 200, rules...)
	b := decisions(99, "conn:n1:read", 200, rules...)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: %v != %v (same seed must inject identically)", i, a[i], b[i])
		}
	}
	c := decisions(100, "conn:n1:read", 200, rules...)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestPlanSitesIndependent(t *testing.T) {
	p := NewPlan(7, Rule{Class: Reset, Prob: 0.5})
	a := make([]Class, 100)
	b := make([]Class, 100)
	for i := range a {
		a[i] = p.Decide("conn:n1:read").Class
		b[i] = p.Decide("conn:n2:read").Class
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("distinct sites share a decision stream")
	}
}

func TestRuleAfterAndMaxCount(t *testing.T) {
	got := decisions(1, "s", 50, Rule{Class: Reset, Prob: 1, After: 10, MaxCount: 3})
	for i := 0; i < 10; i++ {
		if got[i] != None {
			t.Fatalf("op %d faulted before After", i)
		}
	}
	n := 0
	for _, c := range got {
		if c == Reset {
			n++
		}
	}
	if n != 3 {
		t.Errorf("injected %d resets, want MaxCount=3", n)
	}
}

func TestRuleSiteFilter(t *testing.T) {
	p := NewPlan(3, Rule{Site: "storage-02", Class: Reset, Prob: 1})
	if f := p.Decide("conn:storage-01:read"); f.Class != None {
		t.Errorf("rule for storage-02 fired on storage-01")
	}
	if f := p.Decide("conn:storage-02:read"); f.Class != Reset {
		t.Errorf("rule did not fire on matching site")
	}
}

func TestConnResetPoisons(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := WrapConn(a, "n1", NewPlan(1, Rule{Class: Reset, Prob: 1}))
	buf := make([]byte, 4)
	_, err := fc.Read(buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read: %v, want injected", err)
	}
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("write after reset: %v, want poisoned", err)
	}
}

func TestConnStallHonorsDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := WrapConn(a, "n1", NewPlan(1, Rule{Class: Stall, Prob: 1}))
	fc.SetReadDeadline(time.Now().Add(30 * time.Millisecond)) //ironsafe:allow wallclock -- test arms a real I/O deadline
	_, err := fc.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("stalled read: %v, want deadline exceeded", err)
	}
}

func TestConnStallUnblocksOnClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := WrapConn(a, "n1", NewPlan(1, Rule{Class: Stall, Prob: 1}))
	done := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 1))
		done <- err
	}()
	fc.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("stalled read after close: %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second): //ironsafe:allow wallclock -- test watchdog
		t.Fatal("stalled read did not unblock on Close")
	}
}

func TestConnCorruptFlipsOneBit(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := WrapConn(a, "n1", NewPlan(1, Rule{Class: Corrupt, Prob: 1}))
	payload := []byte("hello, world")
	go b.Write(payload)
	buf := make([]byte, len(payload))
	n, err := fc.Read(buf)
	if err != nil || n != len(payload) {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	bits := 0
	for i := range payload {
		x := buf[i] ^ payload[i]
		for x != 0 {
			bits += int(x & 1)
			x >>= 1
		}
	}
	if bits != 1 {
		t.Errorf("corrupt flipped %d bits, want exactly 1", bits)
	}
}

func TestConnCrashCallback(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	plan := NewPlan(1, Rule{Class: Crash, Prob: 1})
	var crashed string
	plan.OnCrash = func(node string) { crashed = node }
	fc := WrapConn(a, "storage-07", plan)
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read: %v", err)
	}
	if crashed != "storage-07" {
		t.Errorf("OnCrash got %q, want storage-07", crashed)
	}
}

func TestDeviceCorruptDetectedAsSingleBit(t *testing.T) {
	dev := pager.NewMemDevice()
	orig := bytes.Repeat([]byte{0xAA}, 64)
	if err := dev.WriteBlock(0, orig); err != nil {
		t.Fatal(err)
	}
	fd := WrapDevice(dev, "n1", NewPlan(5, Rule{Site: ":read", Class: Corrupt, Prob: 1}))
	got, err := fd.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	bits := 0
	for i := range got {
		x := got[i] ^ orig[i]
		for x != 0 {
			bits += int(x & 1)
			x >>= 1
		}
	}
	if bits != 1 {
		t.Errorf("device corrupt flipped %d bits, want 1", bits)
	}
}

func TestStatsAndTrace(t *testing.T) {
	p := NewPlan(2, Rule{Class: Reset, Prob: 1, MaxCount: 2})
	p.Decide("s")
	p.Decide("s")
	p.Decide("s")
	p.Record(Rollback, "storage-01")
	stats := p.Stats()
	if stats[Reset] != 2 || stats[Rollback] != 1 {
		t.Errorf("stats = %v", stats)
	}
	if got := p.ClassesInjected(); len(got) != 2 {
		t.Errorf("classes = %v", got)
	}
	if tr := p.Trace(); len(tr) != 3 {
		t.Errorf("trace = %v", tr)
	}
}
